module solarml

go 1.22
