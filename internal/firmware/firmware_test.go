package firmware

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"solarml/internal/dataset"
	"solarml/internal/dsp"
	"solarml/internal/nas"
)

func TestBrightLightSparseEventsAllComplete(t *testing.T) {
	sim, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One interaction per 2 minutes at 500 lux: harvesting easily keeps up
	// (a session costs ≈3 mJ, 2 min harvests ≈25 mJ).
	events := []float64{120, 240, 360, 480, 600}
	stats, err := sim.Run(700, events)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counts[Completed] != len(events) {
		t.Fatalf("completed %d of %d: %s", stats.Counts[Completed], len(events), stats.Summary())
	}
	if stats.ConsumedJ <= 0 || stats.HarvestedJ <= 0 {
		t.Fatalf("energy accounting broken: %s", stats.Summary())
	}
}

func TestWeakLightBlocksEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lux = ConstantLux(10)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(600, []float64{100, 300, 500})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counts[BlockedWeakLight] != 3 {
		t.Fatalf("expected all events blocked by N2: %s", stats.Summary())
	}
	if stats.ConsumedJ != 0 {
		t.Fatal("blocked events must consume nothing")
	}
}

func TestDepletedSupercapBlocksBoot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialV = 1.0 // below the circuit's VMinSupercap
	cfg.Lux = ConstantLux(100)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(60, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counts[BlockedLowSupercap] != 1 {
		t.Fatalf("expected a low-supercap block: %s", stats.Summary())
	}
}

func TestVThetaRejection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialV = 1.9 // boots (≥1.8) but fails the V>2.0 policy
	cfg.Lux = ConstantLux(100)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(30, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counts[RejectedVTheta] != 1 {
		t.Fatalf("expected a V_θ rejection: %s", stats.Summary())
	}
	// The rejected boot still costs the wake-up energy.
	if stats.ConsumedJ <= 0 {
		t.Fatal("a rejected boot must cost the wake-up energy")
	}
}

func TestFrequentEventsInDimLightDegrade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lux = ConstantLux(120)
	cfg.InitialV = 2.01 // barely above V_θ
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A hover every 2 s: harvesting (~50 µW) cannot refill ≈3 mJ sessions.
	var events []float64
	for ti := 2.0; ti < 120; ti += 2 {
		events = append(events, ti)
	}
	stats, err := sim.Run(130, events)
	if err != nil {
		t.Fatal(err)
	}
	notCompleted := len(stats.Events) - stats.Counts[Completed]
	if notCompleted == 0 {
		t.Fatalf("dim light + rapid events should exhaust the supercap: %s", stats.Summary())
	}
}

func TestEnergyConservation(t *testing.T) {
	cfg := DefaultConfig()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e0 := 0.5 * sim.harv.Cap.Farads * cfg.InitialV * cfg.InitialV
	stats, err := sim.Run(600, []float64{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	eEnd := 0.5 * sim.harv.Cap.Farads * stats.FinalV * stats.FinalV
	// e0 + harvested − consumed ≈ eEnd (leakage is folded into the
	// harvested-gain accounting, clamping at VMax may shed a little).
	balance := e0 + stats.HarvestedJ - stats.ConsumedJ
	if math.Abs(balance-eEnd) > 1e-3 {
		t.Fatalf("energy imbalance: %.4f J vs %.4f J", balance, eEnd)
	}
}

func TestOfficeDayProfileShape(t *testing.T) {
	p := OfficeDay(500)
	if p.Lux(0) > 50 {
		t.Fatal("early morning should be dim")
	}
	if v := p.Lux(3 * 3600); v != 500 {
		t.Fatalf("working hours should hit the plateau, got %v", v)
	}
	if v := p.Lux(5.5 * 3600); v >= 500 {
		t.Fatalf("lunch dip missing: %v", v)
	}
	if v := p.Lux(13 * 3600); v > 10 {
		t.Fatalf("night should be dark: %v", v)
	}
}

func TestPoissonArrivalsStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	events := PoissonArrivals(rng, 100_000, 50)
	if len(events) < 1500 || len(events) > 2500 {
		t.Fatalf("expected ≈2000 arrivals, got %d", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i] <= events[i-1] {
			t.Fatal("arrivals must be increasing")
		}
	}
}

func TestRunRejectsOutOfRangeEvents(t *testing.T) {
	sim, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(100, []float64{200}); err == nil {
		t.Fatal("out-of-range event must error")
	}
}

func TestSummaryMentionsOutcomes(t *testing.T) {
	sim, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(300, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats.Summary(), "completed") {
		t.Fatalf("summary: %s", stats.Summary())
	}
	if stats.Rate(Completed) != 1 {
		t.Fatalf("completion rate %v", stats.Rate(Completed))
	}
}

func TestOfficeDaySimulation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lux = OfficeDay(500)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	day := 12 * 3600.0
	events := PoissonArrivals(rng, day, 600) // one interaction per ~10 min
	stats, err := sim.Run(day, events)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rate(Completed) < 0.8 {
		t.Fatalf("an office day should complete most interactions: %s", stats.Summary())
	}
	// Early-morning events (first half hour) may be blocked by weak light.
	if stats.FinalV <= 0 {
		t.Fatal("supercap must survive the day")
	}
}

func TestKWSTaskSimulation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Task = nas.TaskKWS
	cfg.Audio = dsp.FrontEndConfig{SampleRate: dataset.AudioRateHz,
		StripeMS: 20, DurationMS: 25, NumFeatures: 13}
	cfg.InitialV = 2.5
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(600, []float64{100, 300, 500})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counts[Completed] != 3 {
		t.Fatalf("KWS sessions should complete: %s", stats.Summary())
	}
	// A KWS session costs more than a gesture session (mic + DSP).
	gest, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gJ, _ := gest.sessionEnergyFor(DefaultConfig().InferMACs)
	kJ, _ := sim.sessionEnergyFor(cfg.InferMACs)
	if kJ <= gJ {
		t.Fatalf("KWS session %.1f mJ should exceed gesture %.1f mJ", kJ*1e3, gJ*1e3)
	}
}

func TestKWSConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Task = nas.TaskKWS // Audio left zero → invalid
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid audio config must be rejected")
	}
}
