package firmware

import (
	"fmt"
	"math/rand"

	"solarml/internal/compute"
	"solarml/internal/obs/energy"
	"solarml/internal/obs/fleetobs"
)

// FleetConfig parameterizes a multi-device lifetime simulation: N
// independent platforms, each with its own supercap state and seeded
// Poisson arrival stream, sharing one deployment configuration.
type FleetConfig struct {
	// Base is the per-device configuration. Base.Obs is ignored — per-
	// interaction spans do not scale to fleets — but Base.Energy, when set,
	// is shared by every device: the joule ledger is lock-free, so the
	// fleet's aggregate energy books race-free into one set of accounts.
	// At fleet scale prefer Ledger below; it overrides Base.Energy.
	Base Config
	// Devices is the fleet size.
	Devices int
	// DurationS is the simulated horizon per device, in seconds.
	DurationS float64
	// MeanGapS is the mean inter-arrival gap of each device's Poisson
	// interaction stream.
	MeanGapS float64
	// Seed derives the per-device streams: device i draws from Seed+i, so
	// the fleet is reproducible and each device independent.
	Seed int64
	// Workers bounds the simulation parallelism (≤0 uses every core).
	// Results are identical for every worker count: devices are
	// independent and aggregation runs in device order.
	Workers int
	// FixedStepS, when positive, runs every device on the fixed-step
	// integrator with that step instead of the event-driven core — the
	// accuracy/throughput baseline the fleet benchmark compares against.
	FixedStepS float64
	// Ledger, when set, books every device's energy on its worker's stripe
	// of the sharded ledger (overriding Base.Energy), so fleet energy
	// attribution costs no shared cache lines. Size it with FleetWorkers.
	Ledger *energy.ShardedLedger
	// Inspect, when set, receives per-device completion events for the
	// /debug/fleet live inspector. Size it with FleetWorkers.
	Inspect *fleetobs.Inspector
}

// FleetWorkers returns the worker count RunFleet will actually use for the
// requested value (≤0 means every core) — the stripe count to size a
// ShardedLedger or Inspector with so each fleet worker gets a private lane.
func FleetWorkers(requested int) int {
	if requested <= 0 || requested > fleetPool.Workers() {
		return fleetPool.Workers()
	}
	return requested
}

// FleetStats aggregates a fleet run. Per-event detail is dropped — at
// fleet scale the outcome counters and energy totals are the story.
type FleetStats struct {
	Devices           int
	DeviceSeconds     float64
	Interactions      int
	Counts            map[EventOutcome]int
	ExitCounts        map[int]int
	VThetaUpCrossings int
	HarvestedJ        float64
	ConsumedJ         float64
	// FinalVMean is the fleet-average supercap voltage at the horizon.
	FinalVMean float64
	// Dists are the per-device outcome distributions — the spread behind
	// the fleet means. Integer-count capture in device order keeps them
	// bit-identical across worker counts.
	Dists FleetDists
}

// Rate returns the fraction of all interactions with the given outcome.
func (f *FleetStats) Rate(outcome EventOutcome) float64 {
	if f.Interactions == 0 {
		return 0
	}
	return float64(f.Counts[outcome]) / float64(f.Interactions)
}

// Summary renders a one-paragraph fleet report.
func (f *FleetStats) Summary() string {
	out := fmt.Sprintf("%d devices × %.1f h: %d interactions: ",
		f.Devices, f.DeviceSeconds/float64(f.Devices)/3600, f.Interactions)
	for _, o := range []EventOutcome{Completed, RejectedVTheta, BrownOut, BlockedLowSupercap, BlockedWeakLight} {
		if n := f.Counts[o]; n > 0 {
			out += fmt.Sprintf("%d %s, ", n, o)
		}
	}
	out += fmt.Sprintf("harvested %.1f J, consumed %.1f J, mean final %.2f V",
		f.HarvestedJ, f.ConsumedJ, f.FinalVMean)
	if f.Dists.Interactions.Count() > 0 {
		out += fmt.Sprintf(
			"\nper-device p50/p95/p99: interactions %s, brown-outs %s, harvested %s J, final %s V",
			quantileLine(&f.Dists.Interactions, "%.0f"),
			quantileLine(&f.Dists.BrownOuts, "%.0f"),
			quantileLine(&f.Dists.HarvestedJ, "%.2f"),
			quantileLine(&f.Dists.FinalV, "%.2f"))
	}
	return out
}

// fleetPool is the shared worker pool for fleet runs. One persistent pool
// (sized to the machine) serves every RunFleet call; per-call worker
// budgets are enforced through the dispatch grain, so no goroutines leak
// per run.
var fleetPool = compute.NewParallel(0)

// fleetSource is a splitmix64 rand.Source64. Seeding math/rand's default
// source fills a 607-word lagged-Fibonacci table (~50 µs) — on the event
// core that would rival a whole simulated device-day — while splitmix64
// seeds in one word and still gives every device an independent,
// well-mixed stream from consecutive seeds.
type fleetSource struct{ s uint64 }

// Seed implements rand.Source.
func (f *fleetSource) Seed(seed int64) { f.s = uint64(seed) }

// Uint64 implements rand.Source64 (splitmix64 finalizer).
func (f *fleetSource) Uint64() uint64 {
	f.s += 0x9e3779b97f4a7c15
	z := f.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (f *fleetSource) Int63() int64 { return int64(f.Uint64() >> 1) }

// fleetRng returns device i's arrival stream generator.
func fleetRng(seed int64) *rand.Rand { return rand.New(&fleetSource{s: uint64(seed)}) }

// RunFleet simulates fc.Devices independent devices and aggregates their
// outcome counters and energy totals in device order, so the result is
// bit-identical for every worker count.
func RunFleet(fc FleetConfig) (*FleetStats, error) {
	if fc.Devices <= 0 {
		return nil, fmt.Errorf("firmware: fleet needs at least one device, got %d", fc.Devices)
	}
	if fc.DurationS <= 0 {
		return nil, fmt.Errorf("firmware: fleet needs a positive horizon, got %v", fc.DurationS)
	}
	if fc.MeanGapS <= 0 {
		return nil, fmt.Errorf("firmware: fleet needs a positive mean arrival gap, got %v", fc.MeanGapS)
	}
	workers := FleetWorkers(fc.Workers)
	results := make([]*Stats, fc.Devices)
	errs := make([]error, fc.Devices)
	grain := (fc.Devices + workers - 1) / workers
	fleetPool.For(fc.Devices, grain, func(i0, i1 int) {
		// Chunks are grain-aligned, so i0/grain is this chunk's worker
		// index — the stripe every sharded instrument write lands on.
		w := i0 / grain
		for i := i0; i < i1; i++ {
			cfg := fc.Base
			cfg.Obs = nil
			if fc.Ledger != nil {
				cfg.Energy = fc.Ledger.Stripe(w)
			}
			dev, err := New(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			dev.leanStats = true // the per-event log is dropped unread below
			times := PoissonArrivals(fleetRng(fc.Seed+int64(i)), fc.DurationS, fc.MeanGapS)
			var st *Stats
			if fc.FixedStepS > 0 {
				st, err = dev.RunFixedStep(fc.DurationS, times, fc.FixedStepS)
			} else {
				st, err = dev.Run(fc.DurationS, times)
			}
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = st
			fc.Inspect.Advance(w, 1, fc.DurationS)
		}
	})
	agg := &FleetStats{
		Devices:       fc.Devices,
		DeviceSeconds: float64(fc.Devices) * fc.DurationS,
		Counts:        make(map[EventOutcome]int),
		ExitCounts:    make(map[int]int),
		Dists:         NewFleetDists(),
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("firmware: fleet device %d: %w", i, err)
		}
	}
	for _, st := range results {
		agg.Interactions += st.Interactions
		for o, n := range st.Counts {
			agg.Counts[o] += n
		}
		for k, n := range st.ExitCounts {
			agg.ExitCounts[k] += n
		}
		agg.VThetaUpCrossings += st.VThetaUpCrossings
		agg.HarvestedJ += st.HarvestedJ
		agg.ConsumedJ += st.ConsumedJ
		agg.FinalVMean += st.FinalV
		agg.Dists.Observe(st)
	}
	agg.FinalVMean /= float64(fc.Devices)
	return agg, nil
}
