package firmware

import (
	"fmt"
	"io"

	"solarml/internal/obs"
	"solarml/internal/obs/fleetobs"
)

// Registry histogram names for the per-device fleet distributions.
const (
	// HistFleetInteractions counts interactions survived per device.
	HistFleetInteractions = "fleet.device_interactions"
	// HistFleetBrownOuts counts brown-outs per device.
	HistFleetBrownOuts = "fleet.device_brownouts"
	// HistFleetHarvestedJ is the joules harvested per device.
	HistFleetHarvestedJ = "fleet.device_harvested_j"
	// HistFleetFinalV is the supercap voltage per device at the horizon.
	HistFleetFinalV = "fleet.device_final_v"
)

// Fixed bucket ladders for the per-device distributions. Geometric ladders
// cover minutes-long smoke fleets and device-year runs with the same flat
// arrays; quantiles interpolate inside buckets (fleetobs.Dist).
var (
	fleetInteractionBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1e3, 2.5e3, 5e3, 1e4, 1e5}
	fleetBrownOutBounds    = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 1e3}
	fleetHarvestedBounds   = []float64{1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 50, 100, 1e3}
	fleetFinalVBounds      = []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5, 6}
)

// FleetDists holds the fleet's per-device outcome distributions: where the
// fleet aggregate says "2 % of interactions browned out", the distributions
// say whether that is every device browning out rarely or a dark-corner
// cohort browning out constantly. Capture is flat-array and allocation-free
// per device (fleetobs.Dist), so ten-million-device fleets pay a few
// hundred bytes total.
type FleetDists struct {
	Interactions fleetobs.Dist
	BrownOuts    fleetobs.Dist
	HarvestedJ   fleetobs.Dist
	FinalV       fleetobs.Dist
}

// NewFleetDists returns empty distributions over the fixed fleet ladders.
func NewFleetDists() FleetDists {
	return FleetDists{
		Interactions: fleetobs.NewDist(fleetInteractionBounds),
		BrownOuts:    fleetobs.NewDist(fleetBrownOutBounds),
		HarvestedJ:   fleetobs.NewDist(fleetHarvestedBounds),
		FinalV:       fleetobs.NewDist(fleetFinalVBounds),
	}
}

// Observe records one device's run into the distributions.
func (d *FleetDists) Observe(st *Stats) {
	if d == nil || st == nil {
		return
	}
	d.Interactions.Observe(float64(st.Interactions))
	d.BrownOuts.Observe(float64(st.Counts[BrownOut]))
	d.HarvestedJ.Observe(st.HarvestedJ)
	d.FinalV.Observe(st.FinalV)
}

// PublishTo merges the distributions into the registry under the fleet.*
// histogram names, so they ride along in metrics snapshots, /metrics
// scrapes, and obs-report -fleet. Call once per run.
func (d *FleetDists) PublishTo(reg *obs.Registry) {
	if d == nil || reg == nil {
		return
	}
	d.Interactions.PublishTo(reg, HistFleetInteractions)
	d.BrownOuts.PublishTo(reg, HistFleetBrownOuts)
	d.HarvestedJ.PublishTo(reg, HistFleetHarvestedJ)
	d.FinalV.PublishTo(reg, HistFleetFinalV)
}

// WriteCSV writes all four distributions as one artifact (header included).
func (d *FleetDists) WriteCSV(w io.Writer) error {
	if d == nil {
		return nil
	}
	if err := fleetobs.WriteCSVHeader(w); err != nil {
		return err
	}
	for _, row := range []struct {
		name string
		dist *fleetobs.Dist
	}{
		{"interactions", &d.Interactions},
		{"brownouts", &d.BrownOuts},
		{"harvested_j", &d.HarvestedJ},
		{"final_v", &d.FinalV},
	} {
		if err := row.dist.WriteCSV(w, row.name); err != nil {
			return err
		}
	}
	return nil
}

// quantileLine renders one distribution's p50/p95/p99 with the given format
// verb per value.
func quantileLine(d *fleetobs.Dist, format string) string {
	return fmt.Sprintf(format+"/"+format+"/"+format,
		d.Quantile(0.50), d.Quantile(0.95), d.Quantile(0.99))
}
