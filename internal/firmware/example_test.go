package firmware_test

import (
	"fmt"

	"solarml/internal/firmware"
)

// Example simulates a morning of deployment: the platform harvests office
// light while three users interact with it.
func Example() {
	cfg := firmware.DefaultConfig()
	cfg.Lux = firmware.ConstantLux(500)
	sim, err := firmware.New(cfg)
	if err != nil {
		panic(err)
	}
	stats, err := sim.Run(1800, []float64{300, 900, 1500})
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed %d of %d interactions\n", stats.Counts[firmware.Completed], len(stats.Events))
	fmt.Printf("net energy positive: %v\n", stats.HarvestedJ > stats.ConsumedJ)
	// Output:
	// completed 3 of 3 interactions
	// net energy positive: true
}
