package firmware

import (
	"math"
	"testing"
)

// knotSim builds a simulator over the office profile with a mid-band
// supercap, positioned to charge across the lunch-dip discontinuity.
func knotSim(t *testing.T) *Simulator {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Lux = OfficeDay(500)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.harv.Cap.V = 2.5
	return s
}

// TestKnotHarvestMatchesPiecewiseExactIntegral is the regression pin for
// the profile-sampling error at lighting discontinuities: the lunch dip at
// t=5 h drops 500 → 300 lux instantaneously, and the legacy 60 s chunks
// sample illuminance at chunk midpoints, so the chunk straddling the knot
// books its whole minute at the wrong level. The event core splits exactly
// at the knot and must match a fine-step oracle to 0.1%, while the 60 s
// integrator is demonstrably off by more than 1% — the gap this PR closes.
func TestKnotHarvestMatchesPiecewiseExactIntegral(t *testing.T) {
	const knot = 5 * 3600.0
	t0, t1 := knot-90, knot+90

	gain := func(s *Simulator, advance func(s *Simulator)) float64 {
		e0 := s.harv.Cap.Energy()
		advance(s)
		return s.harv.Cap.Energy() - e0
	}

	oracle := gain(knotSim(t), func(s *Simulator) { s.charge(t0, t1, 0.01, false) })
	legacy := gain(knotSim(t), func(s *Simulator) { s.charge(t0, t1, 60, false) })
	analytic := gain(knotSim(t), func(s *Simulator) {
		s.harv.Now = t0
		s.advanceCharge(t1)
	})

	if relErr := math.Abs(analytic-oracle) / oracle; relErr > 1e-3 {
		t.Fatalf("event core off the piecewise-exact integral by %.3f%%: %.6f mJ vs %.6f mJ",
			relErr*100, analytic*1e3, oracle*1e3)
	}
	if relErr := math.Abs(legacy-oracle) / oracle; relErr < 1e-2 {
		t.Fatalf("expected the 60 s chunks to smear the knot by >1%%, got %.3f%% — regression pin is vacuous",
			relErr*100)
	}
}

// TestKnotRampPieceExact covers the dawn ramp knot at t=1 h, where the
// profile bends (continuous, derivative jump): the analytic ramp advance
// across [0.5 h, 1.5 h] must also land on the oracle.
func TestKnotRampPieceExact(t *testing.T) {
	t0, t1 := 0.5*3600, 1.5*3600

	mk := func() *Simulator { return knotSim(t) }
	oracle := mk()
	oe0 := oracle.harv.Cap.Energy()
	oracle.charge(t0, t1, 0.01, false)
	oracleGain := oracle.harv.Cap.Energy() - oe0

	ev := mk()
	ev.harv.Now = t0
	ee0 := ev.harv.Cap.Energy()
	ev.advanceCharge(t1)
	evGain := ev.harv.Cap.Energy() - ee0

	if relErr := math.Abs(evGain-oracleGain) / oracleGain; relErr > 1e-3 {
		t.Fatalf("ramp knot advance off by %.3f%%: %.6f mJ vs %.6f mJ",
			relErr*100, evGain*1e3, oracleGain*1e3)
	}
}

// TestOfficeDayBreakpoints pins the knot list the event queue splits at.
func TestOfficeDayBreakpoints(t *testing.T) {
	p := OfficeDay(500)
	got := p.Breakpoints(0, 13*3600)
	want := []float64{1 * 3600, 5 * 3600, 6 * 3600, 11 * 3600, 12 * 3600}
	if len(got) != len(want) {
		t.Fatalf("breakpoints %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("breakpoints %v, want %v", got, want)
		}
	}
	if bps := p.Breakpoints(2*3600, 4*3600); len(bps) != 0 {
		t.Fatalf("plateau interior should have no knots, got %v", bps)
	}
	if bps := ConstantLux(500).Breakpoints(0, 1e6); len(bps) != 0 {
		t.Fatalf("constant profile should have no knots, got %v", bps)
	}
}
