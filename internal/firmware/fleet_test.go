package firmware

import (
	"testing"

	"solarml/internal/obs/energy"
)

func fleetCfg(devices, workers int) FleetConfig {
	base := DefaultConfig()
	base.Lux = OfficeDay(500)
	return FleetConfig{
		Base:      base,
		Devices:   devices,
		DurationS: 2 * 3600,
		MeanGapS:  300,
		Seed:      1,
		Workers:   workers,
	}
}

func TestRunFleetAggregates(t *testing.T) {
	fs, err := RunFleet(fleetCfg(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Devices != 8 || fs.DeviceSeconds != 8*2*3600 {
		t.Fatalf("fleet extent wrong: %+v", fs)
	}
	if fs.Interactions == 0 || fs.Counts[Completed] == 0 {
		t.Fatalf("fleet saw no activity: %s", fs.Summary())
	}
	total := 0
	for _, n := range fs.Counts {
		total += n
	}
	if total != fs.Interactions {
		t.Fatalf("outcome counts %d do not cover %d interactions", total, fs.Interactions)
	}
	if fs.HarvestedJ <= 0 || fs.ConsumedJ <= 0 || fs.FinalVMean <= 0 {
		t.Fatalf("fleet energy totals broken: %s", fs.Summary())
	}
	if fs.Rate(Completed) <= 0 {
		t.Fatal("completion rate must be positive")
	}
}

// TestRunFleetDeterministicAcrossWorkers pins the determinism contract:
// devices are independent and aggregation runs in device order, so worker
// count must not change a single bit of the aggregate.
func TestRunFleetDeterministicAcrossWorkers(t *testing.T) {
	one, err := RunFleet(fleetCfg(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunFleet(fleetCfg(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	if one.Interactions != many.Interactions ||
		one.HarvestedJ != many.HarvestedJ ||
		one.ConsumedJ != many.ConsumedJ ||
		one.FinalVMean != many.FinalVMean {
		t.Fatalf("worker count changed the fleet result:\n1: %s\n4: %s", one.Summary(), many.Summary())
	}
	for o, n := range one.Counts {
		if many.Counts[o] != n {
			t.Fatalf("outcome %s: %d vs %d", o, n, many.Counts[o])
		}
	}
}

// TestRunFleetMatchesSequentialDevices checks the fleet against hand-rolled
// per-device runs with the same derived seeds.
func TestRunFleetMatchesSequentialDevices(t *testing.T) {
	fc := fleetCfg(3, 2)
	fs, err := RunFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	wantInteractions := 0
	wantHarvested := 0.0
	for i := 0; i < fc.Devices; i++ {
		dev, err := New(fc.Base)
		if err != nil {
			t.Fatal(err)
		}
		times := PoissonArrivals(fleetRng(fc.Seed+int64(i)), fc.DurationS, fc.MeanGapS)
		st, err := dev.Run(fc.DurationS, times)
		if err != nil {
			t.Fatal(err)
		}
		wantInteractions += len(st.Events)
		wantHarvested += st.HarvestedJ
	}
	if fs.Interactions != wantInteractions {
		t.Fatalf("interactions %d, sequential %d", fs.Interactions, wantInteractions)
	}
	if fs.HarvestedJ != wantHarvested {
		t.Fatalf("harvested %.9f J, sequential %.9f J", fs.HarvestedJ, wantHarvested)
	}
}

func TestRunFleetSharedLedger(t *testing.T) {
	fc := fleetCfg(4, 0)
	led := energy.NewLedger(nil)
	fc.Base.Energy = led
	fs, err := RunFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	snap := led.Snapshot()
	if snap.HarvestedJ <= 0 {
		t.Fatal("shared ledger booked no harvest income")
	}
	if snap.Account(energy.AccountLeak) <= 0 {
		t.Fatal("shared ledger booked no leak")
	}
	if fs.Counts[Completed] > 0 && snap.Account(energy.AccountInfer) <= 0 {
		t.Fatal("completed sessions must book inference energy")
	}
}

func TestRunFleetValidates(t *testing.T) {
	if _, err := RunFleet(FleetConfig{Devices: 0, DurationS: 10, MeanGapS: 1, Base: DefaultConfig()}); err == nil {
		t.Fatal("zero devices must error")
	}
	if _, err := RunFleet(FleetConfig{Devices: 1, DurationS: 0, MeanGapS: 1, Base: DefaultConfig()}); err == nil {
		t.Fatal("zero horizon must error")
	}
	if _, err := RunFleet(FleetConfig{Devices: 1, DurationS: 10, MeanGapS: 0, Base: DefaultConfig()}); err == nil {
		t.Fatal("zero arrival gap must error")
	}
	bad := fleetCfg(2, 0)
	bad.Base.Lux = nil
	if _, err := RunFleet(bad); err == nil {
		t.Fatal("invalid base config must surface the device error")
	}
}

// TestRunFleetFixedStepBaseline exercises the baseline integrator path and
// sanity-checks it against the event-driven fleet on aggregate outcomes.
func TestRunFleetFixedStepBaseline(t *testing.T) {
	fc := fleetCfg(3, 0)
	ev, err := RunFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	fc.FixedStepS = 60
	fs, err := RunFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Interactions != fs.Interactions {
		t.Fatalf("arrival streams diverged: %d vs %d", ev.Interactions, fs.Interactions)
	}
	if ev.Counts[Completed] != fs.Counts[Completed] {
		t.Fatalf("completed counts: event %d vs fixed-step %d", ev.Counts[Completed], fs.Counts[Completed])
	}
}
