package firmware

import (
	"strings"
	"testing"

	"solarml/internal/obs"
	"solarml/internal/obs/energy"
	"solarml/internal/obs/fleetobs"
)

func fleetCfg(devices, workers int) FleetConfig {
	base := DefaultConfig()
	base.Lux = OfficeDay(500)
	return FleetConfig{
		Base:      base,
		Devices:   devices,
		DurationS: 2 * 3600,
		MeanGapS:  300,
		Seed:      1,
		Workers:   workers,
	}
}

func TestRunFleetAggregates(t *testing.T) {
	fs, err := RunFleet(fleetCfg(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Devices != 8 || fs.DeviceSeconds != 8*2*3600 {
		t.Fatalf("fleet extent wrong: %+v", fs)
	}
	if fs.Interactions == 0 || fs.Counts[Completed] == 0 {
		t.Fatalf("fleet saw no activity: %s", fs.Summary())
	}
	total := 0
	for _, n := range fs.Counts {
		total += n
	}
	if total != fs.Interactions {
		t.Fatalf("outcome counts %d do not cover %d interactions", total, fs.Interactions)
	}
	if fs.HarvestedJ <= 0 || fs.ConsumedJ <= 0 || fs.FinalVMean <= 0 {
		t.Fatalf("fleet energy totals broken: %s", fs.Summary())
	}
	if fs.Rate(Completed) <= 0 {
		t.Fatal("completion rate must be positive")
	}
}

// TestRunFleetDeterministicAcrossWorkers pins the determinism contract:
// devices are independent and aggregation runs in device order, so worker
// count must not change a single bit of the aggregate.
func TestRunFleetDeterministicAcrossWorkers(t *testing.T) {
	one, err := RunFleet(fleetCfg(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunFleet(fleetCfg(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	if one.Interactions != many.Interactions ||
		one.HarvestedJ != many.HarvestedJ ||
		one.ConsumedJ != many.ConsumedJ ||
		one.FinalVMean != many.FinalVMean {
		t.Fatalf("worker count changed the fleet result:\n1: %s\n4: %s", one.Summary(), many.Summary())
	}
	for o, n := range one.Counts {
		if many.Counts[o] != n {
			t.Fatalf("outcome %s: %d vs %d", o, n, many.Counts[o])
		}
	}
}

// TestRunFleetMatchesSequentialDevices checks the fleet against hand-rolled
// per-device runs with the same derived seeds.
func TestRunFleetMatchesSequentialDevices(t *testing.T) {
	fc := fleetCfg(3, 2)
	fs, err := RunFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	wantInteractions := 0
	wantHarvested := 0.0
	for i := 0; i < fc.Devices; i++ {
		dev, err := New(fc.Base)
		if err != nil {
			t.Fatal(err)
		}
		times := PoissonArrivals(fleetRng(fc.Seed+int64(i)), fc.DurationS, fc.MeanGapS)
		st, err := dev.Run(fc.DurationS, times)
		if err != nil {
			t.Fatal(err)
		}
		wantInteractions += len(st.Events)
		wantHarvested += st.HarvestedJ
	}
	if fs.Interactions != wantInteractions {
		t.Fatalf("interactions %d, sequential %d", fs.Interactions, wantInteractions)
	}
	if fs.HarvestedJ != wantHarvested {
		t.Fatalf("harvested %.9f J, sequential %.9f J", fs.HarvestedJ, wantHarvested)
	}
}

func TestRunFleetSharedLedger(t *testing.T) {
	fc := fleetCfg(4, 0)
	led := energy.NewLedger(nil)
	fc.Base.Energy = led
	fs, err := RunFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	snap := led.Snapshot()
	if snap.HarvestedJ <= 0 {
		t.Fatal("shared ledger booked no harvest income")
	}
	if snap.Account(energy.AccountLeak) <= 0 {
		t.Fatal("shared ledger booked no leak")
	}
	if fs.Counts[Completed] > 0 && snap.Account(energy.AccountInfer) <= 0 {
		t.Fatal("completed sessions must book inference energy")
	}
}

func TestRunFleetValidates(t *testing.T) {
	if _, err := RunFleet(FleetConfig{Devices: 0, DurationS: 10, MeanGapS: 1, Base: DefaultConfig()}); err == nil {
		t.Fatal("zero devices must error")
	}
	if _, err := RunFleet(FleetConfig{Devices: 1, DurationS: 0, MeanGapS: 1, Base: DefaultConfig()}); err == nil {
		t.Fatal("zero horizon must error")
	}
	if _, err := RunFleet(FleetConfig{Devices: 1, DurationS: 10, MeanGapS: 0, Base: DefaultConfig()}); err == nil {
		t.Fatal("zero arrival gap must error")
	}
	bad := fleetCfg(2, 0)
	bad.Base.Lux = nil
	if _, err := RunFleet(bad); err == nil {
		t.Fatal("invalid base config must surface the device error")
	}
}

// TestRunFleetFixedStepBaseline exercises the baseline integrator path and
// sanity-checks it against the event-driven fleet on aggregate outcomes.
func TestRunFleetFixedStepBaseline(t *testing.T) {
	fc := fleetCfg(3, 0)
	ev, err := RunFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	fc.FixedStepS = 60
	fs, err := RunFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Interactions != fs.Interactions {
		t.Fatalf("arrival streams diverged: %d vs %d", ev.Interactions, fs.Interactions)
	}
	if ev.Counts[Completed] != fs.Counts[Completed] {
		t.Fatalf("completed counts: event %d vs fixed-step %d", ev.Counts[Completed], fs.Counts[Completed])
	}
}

// TestRunFleetInstrumentedBitIdentical pins the ISSUE contract: attaching
// the sharded ledger, the inspector, and distribution capture must not
// change a single bit of the fleet outcome, across worker counts.
func TestRunFleetInstrumentedBitIdentical(t *testing.T) {
	plain, err := RunFleet(fleetCfg(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		fc := fleetCfg(6, workers)
		fc.Ledger = energy.NewShardedLedger(nil, FleetWorkers(workers))
		fc.Inspect = fleetobs.NewInspector("devices", fc.Devices, FleetWorkers(workers))
		inst, err := RunFleet(fc)
		if err != nil {
			t.Fatal(err)
		}
		fc.Inspect.Finish()
		if inst.Interactions != plain.Interactions ||
			inst.HarvestedJ != plain.HarvestedJ ||
			inst.ConsumedJ != plain.ConsumedJ ||
			inst.FinalVMean != plain.FinalVMean {
			t.Fatalf("instrumentation changed the fleet result (workers=%d):\nplain: %s\ninst:  %s",
				workers, plain.Summary(), inst.Summary())
		}
		for o, n := range plain.Counts {
			if inst.Counts[o] != n {
				t.Fatalf("outcome %s: %d vs %d", o, n, inst.Counts[o])
			}
		}
		// The distributions are integer per-device captures in device
		// order: identical across worker counts.
		for i, want := range plain.Dists.Interactions.Snapshot().Counts {
			if got := inst.Dists.Interactions.Snapshot().Counts[i]; got != want {
				t.Fatalf("interactions dist bucket %d: %d vs %d", i, got, want)
			}
		}
		if fc.Inspect.Status().Done != int64(fc.Devices) {
			t.Fatalf("inspector saw %d devices, want %d", fc.Inspect.Status().Done, fc.Devices)
		}
	}
}

// TestRunFleetShardedLedgerBooks checks the striped ledger books the same
// energy a shared ledger would.
func TestRunFleetShardedLedgerBooks(t *testing.T) {
	shared := fleetCfg(4, 2)
	sharedLed := energy.NewLedger(nil)
	shared.Base.Energy = sharedLed
	if _, err := RunFleet(shared); err != nil {
		t.Fatal(err)
	}

	striped := fleetCfg(4, 2)
	striped.Ledger = energy.NewShardedLedger(nil, FleetWorkers(2))
	if _, err := RunFleet(striped); err != nil {
		t.Fatal(err)
	}

	a, b := sharedLed.Snapshot(), striped.Ledger.Snapshot()
	if diff := a.HarvestedJ - b.HarvestedJ; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("harvested: shared %.12g striped %.12g", a.HarvestedJ, b.HarvestedJ)
	}
	for _, acct := range energy.Accounts() {
		if diff := a.Account(acct) - b.Account(acct); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("account %s: shared %.12g striped %.12g", acct, a.Account(acct), b.Account(acct))
		}
	}
}

// TestFleetDistsCapture sanity-checks the per-device distributions and
// their Summary/CSV/registry surfaces.
func TestFleetDistsCapture(t *testing.T) {
	fs, err := RunFleet(fleetCfg(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.Dists.Interactions.Count(); got != 8 {
		t.Fatalf("interactions dist saw %d devices, want 8", got)
	}
	if fs.Dists.FinalV.Quantile(0.5) <= 0 {
		t.Fatal("final-V p50 must be positive")
	}
	if s := fs.Summary(); !strings.Contains(s, "per-device p50/p95/p99") {
		t.Fatalf("Summary missing distribution line:\n%s", s)
	}

	reg := obs.NewRegistry()
	fs.Dists.PublishTo(reg)
	snap := reg.Snapshot()
	for _, name := range []string{HistFleetInteractions, HistFleetBrownOuts, HistFleetHarvestedJ, HistFleetFinalV} {
		if snap.Histograms[name].Count != 8 {
			t.Fatalf("registry histogram %s count = %d, want 8", name, snap.Histograms[name].Count)
		}
	}

	var csv strings.Builder
	if err := fs.Dists.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dist,stat,le,value", "interactions,p95,,", "final_v,bucket,"} {
		if !strings.Contains(csv.String(), want) {
			t.Fatalf("fleet CSV missing %q:\n%s", want, csv.String())
		}
	}
}
