package firmware

import (
	"math"
	"math/rand"
	"testing"

	"solarml/internal/obs/energy"
)

// newPair builds two identical simulators with fresh ledgers for an
// event-driven vs fixed-step comparison run.
func newPair(t *testing.T, mod func(cfg *Config)) (evSim, fsSim *Simulator, evLed, fsLed *energy.Ledger) {
	t.Helper()
	mk := func() (*Simulator, *energy.Ledger) {
		cfg := DefaultConfig()
		if mod != nil {
			mod(&cfg)
		}
		led := energy.NewLedger(nil)
		cfg.Energy = led
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s, led
	}
	evSim, evLed = mk()
	fsSim, fsLed = mk()
	return evSim, fsSim, evLed, fsLed
}

// checkOutcomesEqual pins the event-driven run to the fixed-step run
// event-by-event: same outcome, same exit, same consumed energy.
func checkOutcomesEqual(t *testing.T, ev, fs *Stats) {
	t.Helper()
	if len(ev.Events) != len(fs.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(ev.Events), len(fs.Events))
	}
	for i := range ev.Events {
		a, b := ev.Events[i], fs.Events[i]
		if a.Outcome != b.Outcome {
			t.Fatalf("event %d at t=%.1f: %s vs %s", i, a.T, a.Outcome, b.Outcome)
		}
		if a.Exit != b.Exit {
			t.Fatalf("event %d: exit %d vs %d", i, a.Exit, b.Exit)
		}
		if diff := math.Abs(a.EnergyJ - b.EnergyJ); diff > 1e-9+1e-4*b.EnergyJ {
			t.Fatalf("event %d: consumed %.9f J vs %.9f J", i, a.EnergyJ, b.EnergyJ)
		}
	}
}

// checkLedgerClose compares per-account ledger totals within relTol.
func checkLedgerClose(t *testing.T, ev, fs *energy.Ledger, relTol float64) {
	t.Helper()
	a, b := ev.Snapshot(), fs.Snapshot()
	cmp := func(name string, x, y float64) {
		if diff := math.Abs(x - y); diff > 1e-9+relTol*math.Abs(y) {
			t.Errorf("%s: event-driven %.9f J vs fixed-step %.9f J", name, x, y)
		}
	}
	cmp("harvested", a.HarvestedJ, b.HarvestedJ)
	cmp("consumed", a.ConsumedJ, b.ConsumedJ)
	for _, acc := range []energy.Account{
		energy.AccountDetect, energy.AccountSense, energy.AccountInfer, energy.AccountLeak,
	} {
		cmp(acc.String(), a.Account(acc), b.Account(acc))
	}
}

// TestEventRunEquivalentConstantLux is the headline equivalence pin: under
// constant illuminance (where the legacy midpoint-lux chunks commit no
// profile-sampling error) a seeded event-driven run must reproduce the
// fixed-step integrator's outcome for every interaction exactly, and land
// every ledger account within 0.1%.
func TestEventRunEquivalentConstantLux(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const duration = 4 * 3600.0
	times := PoissonArrivals(rng, duration, 300)
	evSim, fsSim, evLed, fsLed := newPair(t, nil)
	ev, err := evSim.Run(duration, times)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fsSim.RunFixedStep(duration, times, 60)
	if err != nil {
		t.Fatal(err)
	}
	checkOutcomesEqual(t, ev, fs)
	// The 60 s chunks carry a leak-splitting bias of ~0.2% (they decay the
	// whole chunk's deposit for the whole chunk), so the 0.1% per-account
	// pin runs against a 5 s baseline, which converges on the closed form.
	checkLedgerClose(t, evLed, fsLed, 2e-3)
	fineSim, _, fineLed, _ := newPair(t, nil)
	fine, err := fineSim.RunFixedStep(duration, times, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkOutcomesEqual(t, ev, fine)
	checkLedgerClose(t, evLed, fineLed, 1e-3)
	if diff := math.Abs(ev.FinalV - fs.FinalV); diff > 1e-3 {
		t.Fatalf("final V: %.6f vs %.6f", ev.FinalV, fs.FinalV)
	}
	if diff := math.Abs(ev.HarvestedJ - fs.HarvestedJ); diff > 1e-3*fs.HarvestedJ {
		t.Fatalf("harvested: %.6f J vs %.6f J", ev.HarvestedJ, fs.HarvestedJ)
	}
}

// TestEventRunEquivalentOverlappingSessions drives the arrival-overrun path
// hard — hovers every 2 s in dim light, sessions overlapping arrivals, the
// supercap collapsing through rejections and brown-outs — and still expects
// per-event outcome equality with the chunked integrator (whose cursor
// rewind on overrun the event path replicates).
func TestEventRunEquivalentOverlappingSessions(t *testing.T) {
	var times []float64
	for ti := 2.0; ti < 120; ti += 2 {
		times = append(times, ti)
	}
	mod := func(cfg *Config) {
		cfg.Lux = ConstantLux(120)
		cfg.InitialV = 2.01
	}
	evSim, fsSim, evLed, fsLed := newPair(t, mod)
	ev, err := evSim.Run(130, times)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fsSim.RunFixedStep(130, times, 60)
	if err != nil {
		t.Fatal(err)
	}
	checkOutcomesEqual(t, ev, fs)
	checkLedgerClose(t, evLed, fsLed, 1e-3)
	if ev.Counts[Completed] == len(times) {
		t.Fatal("stress run unexpectedly completed everything — not exercising the failure paths")
	}
}

// TestEventRunEquivalentOfficeDay compares a full seeded office day. The
// fixed-step integrator smears illuminance across profile knots (the very
// error the event core removes), so per-event voltages differ slightly near
// knots; outcome classification must still agree everywhere for this seed,
// with the ledger within 1%.
func TestEventRunEquivalentOfficeDay(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const day = 12 * 3600.0
	times := PoissonArrivals(rng, day, 600)
	mod := func(cfg *Config) { cfg.Lux = OfficeDay(500) }
	evSim, fsSim, evLed, fsLed := newPair(t, mod)
	ev, err := evSim.Run(day, times)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fsSim.RunFixedStep(day, times, 60)
	if err != nil {
		t.Fatal(err)
	}
	checkOutcomesEqual(t, ev, fs)
	checkLedgerClose(t, evLed, fsLed, 1e-2)
}

// TestEventRunLedgerInvariant holds the event-driven path to the exact
// conservation law the ledger was built around: harvested − consumed equals
// the stored-energy delta, independent of any fixed-step reference.
func TestEventRunLedgerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const day = 12 * 3600.0
	times := PoissonArrivals(rng, day, 400)
	cfg := DefaultConfig()
	cfg.Lux = OfficeDay(500)
	led := energy.NewLedger(nil)
	cfg.Energy = led
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e0 := s.harv.Cap.Energy()
	stats, err := s.Run(day, times)
	if err != nil {
		t.Fatal(err)
	}
	snap := led.Snapshot()
	dStored := s.harv.Cap.Energy() - e0
	if diff := math.Abs(snap.HarvestedJ - snap.ConsumedJ - dStored); diff > 1e-6 {
		t.Fatalf("ledger invariant broken: harvested−consumed = %.9f J, Δstored = %.9f J",
			snap.HarvestedJ-snap.ConsumedJ, dStored)
	}
	if stats.VThetaUpCrossings < 0 {
		t.Fatal("negative crossing count")
	}
}

// TestEventRunCountsVThetaRecoveries arranges a drain-then-recover cycle:
// a burst of sessions pulls the supercap below V_θ, then quiet bright
// charging lifts it back through the threshold. The event core must see
// that recovery as a crossing event.
func TestEventRunCountsVThetaRecoveries(t *testing.T) {
	cfg := DefaultConfig()
	// Barely above V_θ: a couple of ~3 mJ sessions push V under 2.0, then
	// the remaining ~30 min at 500 lux recharge up through it.
	cfg.InitialV = 2.002
	led := energy.NewLedger(nil)
	cfg.Energy = led
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Run(2000, []float64{1, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalV <= s.cfg.VTheta {
		t.Fatalf("setup broken: expected recovery above V_θ, final %.3f V", stats.FinalV)
	}
	if stats.Counts[Completed] == 0 {
		t.Fatalf("setup broken: no session drained the supercap: %s", stats.Summary())
	}
	if stats.VThetaUpCrossings == 0 {
		t.Fatal("recovery through V_θ not counted as a crossing event")
	}
}
