package firmware

import (
	"testing"

	"solarml/internal/nn"
)

// exitLadder is a three-rung model ladder, shallow to deep.
func exitLadder() []map[nn.LayerKind]int64 {
	return []map[nn.LayerKind]int64{
		{nn.KindConv: 40_000, nn.KindDense: 5_000},
		{nn.KindConv: 200_000, nn.KindDense: 20_000},
		{nn.KindConv: 900_000, nn.KindDense: 60_000},
	}
}

func TestMultiExitPrefersDeepestWhenRich(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExitMACs = exitLadder()
	cfg.InitialV = 3.0 // plenty stored
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(300, []float64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counts[Completed] != 2 {
		t.Fatalf("expected both to complete: %s", stats.Summary())
	}
	if stats.ExitCounts[2] != 2 {
		t.Fatalf("rich supercap should use the deepest exit: %v", stats.ExitCounts)
	}
}

func TestMultiExitDegradesWhenPoor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExitMACs = exitLadder()
	cfg.VTheta = 2.0
	// Stored energy above V_θ: ½·(V²−V_θ²). Pick V so only the shallow
	// exits fit: session costs ≈2.3–4 mJ; V=2.0008 stores ≈1.6 mJ above
	// V_θ... too little for all; V=2.0015 ≈ 3 mJ fits rung 0/1 only.
	cfg.InitialV = 2.0015
	cfg.Lux = ConstantLux(80) // barely harvesting (but above weak-light cutoff)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(20, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counts[Completed] != 1 {
		t.Fatalf("should complete via a shallow exit: %s", stats.Summary())
	}
	if stats.ExitCounts[2] != 0 {
		t.Fatalf("deep exit should be unaffordable: %v", stats.ExitCounts)
	}
	used := stats.Events[0].Exit
	if used != 0 && used != 1 {
		t.Fatalf("expected a shallow exit, got %d", used)
	}
}

func TestMultiExitRejectsWhenNothingFits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExitMACs = exitLadder()
	cfg.VTheta = 2.0
	cfg.InitialV = 2.0001 // ≈0.2 mJ above V_θ: nothing fits
	cfg.Lux = ConstantLux(80)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(10, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counts[RejectedVTheta] != 1 {
		t.Fatalf("expected a rejection: %s", stats.Summary())
	}
}

func TestMultiExitAdaptsAsEnergyAccumulates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExitMACs = exitLadder()
	cfg.VTheta = 2.0
	cfg.InitialV = 2.002
	cfg.Lux = ConstantLux(500)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First event immediately (little energy), second after two minutes
	// of harvesting (≈25 mJ more).
	stats, err := sim.Run(200, []float64{1, 150})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counts[Completed] != 2 {
		t.Fatalf("both should complete: %s", stats.Summary())
	}
	first, second := stats.Events[0].Exit, stats.Events[1].Exit
	if second < first {
		t.Fatalf("more stored energy should not pick a shallower exit: %d then %d", first, second)
	}
	if second != 2 {
		t.Fatalf("after two minutes at 500 lux the deepest exit should fit, got %d", second)
	}
}
