package firmware

import (
	"testing"

	"solarml/internal/obs/energy"
	"solarml/internal/obs/fleetobs"
)

// benchFleet runs one fleet configuration and reports simulated
// device-years per wall-clock second — the fleet-scale throughput figure
// of merit. fixedStep selects the baseline integrator; 0 the event core;
// instrumented attaches the full fleet observability stack (sharded
// ledger, inspector, distribution capture runs unconditionally).
func benchFleet(b *testing.B, devices int, fixedStep float64, instrumented bool) {
	base := DefaultConfig()
	base.Lux = OfficeDay(500)
	const hours = 12.0
	fc := FleetConfig{
		Base:       base,
		Devices:    devices,
		DurationS:  hours * 3600,
		MeanGapS:   600,
		Seed:       1,
		FixedStepS: fixedStep,
	}
	if instrumented {
		workers := FleetWorkers(0)
		fc.Ledger = energy.NewShardedLedger(nil, workers)
		fc.Inspect = fleetobs.NewInspector("devices", devices, workers)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFleet(fc); err != nil {
			b.Fatal(err)
		}
	}
	deviceYears := float64(b.N) * float64(devices) * hours / (24 * 365)
	b.ReportMetric(deviceYears/b.Elapsed().Seconds(), "device-years/sec")
}

// BenchmarkFleetDeviceYears measures the event-driven fleet: a device-day
// is a few hundred events, each an O(1) closed-form ODE advance.
func BenchmarkFleetDeviceYears(b *testing.B) { benchFleet(b, 32, 0, false) }

// BenchmarkFleetDeviceYearsInstrumented is the same fleet with the full
// observability stack attached — striped joule ledger, live inspector,
// per-device distributions. The delta against BenchmarkFleetDeviceYears is
// the total observability overhead; the ISSUE pins it at no throughput
// loss.
func BenchmarkFleetDeviceYearsInstrumented(b *testing.B) { benchFleet(b, 32, 0, true) }

// BenchmarkFleetDeviceYearsFixedStep is the accuracy-matched baseline: the
// fixed-step integrator at 1 s steps (the convergence and knot-regression
// tests show the historical 60 s chunks are not accuracy-comparable near
// profile discontinuities). A device-day is 43 200 chunk steps.
func BenchmarkFleetDeviceYearsFixedStep(b *testing.B) { benchFleet(b, 32, 1, false) }
