package firmware

import (
	"bytes"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"solarml/internal/obs"
	"solarml/internal/obs/energy"
)

var updateGolden = flag.Bool("update", false, "rewrite golden test files")

// seededRun executes a deterministic two-hour lifetime simulation with the
// ledger attached and returns the ledger, the run stats, and the initial
// stored energy.
func seededRun(t *testing.T, led *energy.Ledger, rec *obs.Recorder) (*Stats, float64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Energy = led
	cfg.Obs = rec
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	initialJ := sim.harv.Cap.Energy()
	const duration = 2 * 3600.0
	times := PoissonArrivals(rand.New(rand.NewSource(1)), duration, 300)
	stats, err := sim.Run(duration, times)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Events) == 0 || stats.Counts[Completed] == 0 {
		t.Fatalf("degenerate seeded run: %+v", stats.Counts)
	}
	return stats, initialJ
}

// TestLedgerAgreesWithEnergyModel pins the acceptance criterion that the
// per-phase joules the ledger books for a seeded lifetime run agree with
// internal/energymodel's totals: every completed session charges exactly
// the model's wake/sense/infer split, every rejection exactly the wake
// energy.
func TestLedgerAgreesWithEnergyModel(t *testing.T) {
	led := energy.NewLedger(nil)
	stats, _ := seededRun(t, led, nil)
	if stats.Counts[BrownOut] != 0 {
		t.Fatalf("seeded run browned out %d times; pick a gentler scenario", stats.Counts[BrownOut])
	}

	sim, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cost := sim.sessionCostFor(DefaultConfig().InferMACs)
	nDone := float64(stats.Counts[Completed])
	nRej := float64(stats.Counts[RejectedVTheta])

	check := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("%s = %.12g J, energymodel says %.12g J", name, got, want)
		}
	}
	check("detect", led.Consumed(energy.AccountDetect), (nDone+nRej)*cost.WakeJ)
	check("sense", led.Consumed(energy.AccountSense), nDone*cost.SenseJ)
	check("infer", led.Consumed(energy.AccountInfer), nDone*cost.InferJ)
	check("sessions total",
		led.Consumed(energy.AccountDetect)+led.Consumed(energy.AccountSense)+led.Consumed(energy.AccountInfer),
		stats.ConsumedJ)
}

// TestLedgerEnergyBalance pins the conservation law the ledger makes
// checkable: harvested income minus leak minus session drains equals the
// change in stored supercap energy.
func TestLedgerEnergyBalance(t *testing.T) {
	led := energy.NewLedger(nil)
	stats, initialJ := seededRun(t, led, nil)

	s := led.Snapshot()
	finalJ := s.SupercapJ
	balance := s.HarvestedJ - s.ConsumedJ
	delta := finalJ - initialJ
	if math.Abs(balance-delta) > 1e-9*math.Max(1, math.Abs(delta)) {
		t.Errorf("energy not conserved: harvested-consumed = %.12g J but Δstored = %.12g J", balance, delta)
	}
	if s.Account(energy.AccountLeak) <= 0 {
		t.Error("no leak booked over a two-hour run")
	}
	if got := s.ConsumedJ - s.Account(energy.AccountLeak); math.Abs(got-stats.ConsumedJ) > 1e-9 {
		t.Errorf("non-leak consumption %.12g J != stats.ConsumedJ %.12g J", got, stats.ConsumedJ)
	}
}

// TestSessionSpansCarryEnergy checks the trace side: firmware.session spans
// have detect/sense/infer children whose energy_uj attributes sum to the
// ledger's session totals.
func TestSessionSpansCarryEnergy(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	led := energy.NewLedger(nil)
	seededRun(t, led, rec)
	rec.Finish("ok")
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	events, skipped, err := obs.ScanTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("%d unparseable trace lines", skipped)
	}
	sums := map[string]float64{}
	sessions := 0
	for _, ev := range events {
		switch ev.Name {
		case "firmware.session":
			sessions++
		case "firmware.detect", "firmware.sense", "firmware.infer":
			sums[ev.Name] += ev.Float(obs.AttrEnergyUJ)
		}
	}
	if sessions == 0 {
		t.Fatal("no firmware.session spans in trace")
	}
	for name, acc := range map[string]energy.Account{
		"firmware.detect": energy.AccountDetect,
		"firmware.sense":  energy.AccountSense,
		"firmware.infer":  energy.AccountInfer,
	} {
		wantUJ := led.Consumed(acc) * 1e6
		if math.Abs(sums[name]-wantUJ) > 1e-6*math.Max(1, wantUJ) {
			t.Errorf("%s spans carry %.6g µJ, ledger booked %.6g µJ", name, sums[name], wantUJ)
		}
	}
}

// TestGoldenMetricsScrape pins the Prometheus exposition of the energy
// series for the seeded run: counter µJ values, gauges, and the
// joules-per-interaction histogram, byte for byte. Regenerate with
// `go test ./internal/firmware -run TestGoldenMetricsScrape -update`.
func TestGoldenMetricsScrape(t *testing.T) {
	reg := obs.NewRegistry()
	led := energy.NewLedger(reg)
	seededRun(t, led, nil)
	led.Sync()

	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "metrics_scrape.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("metrics scrape drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
