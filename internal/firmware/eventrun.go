package firmware

import (
	"fmt"
	"math"
	"sort"

	"solarml/internal/harvest"
	"solarml/internal/sim"
)

// Event kinds on the lifetime simulation's queue.
const (
	// evArrival is a user interaction (hover / keyword).
	evArrival sim.Kind = iota
	// evBreakpoint is a lighting-profile knot: the input power law changes,
	// so any scheduled threshold crossing must be recomputed.
	evBreakpoint
	// evVTheta is a predicted supercap recovery up through V_θ. Data carries
	// the scheduling generation; a pop whose generation is stale is skipped.
	evVTheta
	// evEnd closes the run at `duration`.
	evEnd
)

// advanceDepth caps the adaptive bisection of one inter-knot piece. The
// built-in profiles are piecewise linear and never split; a smooth LuxFunc
// splits until the midpoint test passes. Both halves of a curved piece may
// split, so the worst case is 2^advanceDepth ramp advances — 12 keeps that
// bounded at 4096 while sub-piece curvature error stays negligible.
const advanceDepth = 12

// pieceLux reconstructs the (assumed linear) illuminance over (a, b) from
// three interior samples. Sampling strictly inside the interval makes the
// reconstruction robust to profile discontinuities that sit exactly on the
// piece edges — the knots the event queue splits at — where Lux(a) would
// report the neighbouring piece's value.
func (s *Simulator) pieceLux(a, b float64) (la, lb, lm float64) {
	w := b - a
	q1 := s.cfg.Lux.Lux(a + 0.25*w)
	lm = s.cfg.Lux.Lux(a + 0.5*w)
	q3 := s.cfg.Lux.Lux(a + 0.75*w)
	return 1.5*q1 - 0.5*q3, 1.5*q3 - 0.5*q1, lm
}

// advancePiece advances the harvester analytically from its clock to b
// across one knot-free piece of the profile, returning the stored-energy
// delta. Constant pieces take the closed-form constant solution, linear
// pieces the ramp solution; anything whose midpoint sample disagrees with
// the linear reconstruction is bisected.
func (s *Simulator) advancePiece(b float64, depth int) float64 {
	a := s.harv.Now
	if b <= a {
		return 0
	}
	la, lb, lm := s.pieceLux(a, b)
	tol := 1e-6 * (math.Abs(la) + math.Abs(lb) + 1)
	switch {
	case math.Abs(la-lb) <= tol && math.Abs(lm-(la+lb)/2) <= tol:
		return s.harv.AdvanceTo(b, lm)
	case math.Abs(lm-(la+lb)/2) <= tol || depth <= 0:
		return s.harv.AdvanceToRamp(b, la, lb)
	default:
		dE := s.advancePiece(a+(b-a)/2, depth-1)
		return dE + s.advancePiece(b, depth-1)
	}
}

// advanceCharge advances the harvester from its clock to t1 under the
// lighting profile, splitting at profile knots so every analytic piece is
// smooth, and returns the harvested energy (the sum of positive per-piece
// stored-energy gains, mirroring the fixed-step per-chunk accounting).
func (s *Simulator) advanceCharge(t1 float64) float64 {
	if t1 <= s.harv.Now {
		return 0
	}
	harvested := 0.0
	for _, b := range s.cfg.Lux.Breakpoints(s.harv.Now, t1) {
		if dE := s.advancePiece(b, advanceDepth); dE > 0 {
			harvested += dE
		}
	}
	if dE := s.advancePiece(t1, advanceDepth); dE > 0 {
		harvested += dE
	}
	return harvested
}

// scratch returns a throwaway harvester sharing the live one's array and
// electrical parameters but owning a copy of the supercap state, for
// crossing-time probes that must not disturb the run.
func (s *Simulator) scratch() *harvest.Harvester {
	capCopy := *s.harv.Cap
	return &harvest.Harvester{
		Array:      s.harv.Array,
		Cap:        &capCopy,
		Now:        s.harv.Now,
		Efficiency: s.harv.Efficiency,
		QuiescentW: s.harv.QuiescentW,
	}
}

// vthetaCrossing finds when the supercap, charging from the current state,
// first reaches V_θ within the knot-free piece [harv.Now, b]. Constant
// pieces use the closed form; ramp pieces bisect on probe advances over a
// scratch copy. Reports false when the crossing is not inside the piece.
func (s *Simulator) vthetaCrossing(b float64) (float64, bool) {
	a := s.harv.Now
	if b <= a {
		return 0, false
	}
	la, lb, _ := s.pieceLux(a, b)
	tol := 1e-6 * (math.Abs(la) + math.Abs(lb) + 1)
	if math.Abs(la-lb) <= tol {
		tc := s.harv.TimeToVoltage(s.cfg.VTheta, (la+lb)/2)
		if math.IsInf(tc, 1) || a+tc > b {
			return 0, false
		}
		return a + tc, true
	}
	probe := func(t float64) float64 {
		h := s.scratch()
		h.AdvanceToRamp(t, la, la+(lb-la)*(t-a)/(b-a))
		return h.Cap.V
	}
	if probe(b) < s.cfg.VTheta {
		return 0, false
	}
	lo, hi := a, b
	for i := 0; i < 64 && hi-lo > 1e-9; i++ {
		mid := lo + (hi-lo)/2
		if probe(mid) >= s.cfg.VTheta {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// scheduleVTheta predicts the next supercap recovery up through V_θ and
// pushes it as an event tagged with the current scheduling generation.
// Only the piece up to the next profile knot is searched: the knot's own
// event re-runs the scheduler under the new lighting law, so crossings
// beyond it are never stale guesses.
func (s *Simulator) scheduleVTheta(q *sim.Queue, gen int64, limit float64) {
	if s.harv.Cap.V > s.cfg.VTheta || s.harv.Now >= limit {
		return
	}
	b := limit
	if bps := s.cfg.Lux.Breakpoints(s.harv.Now, limit); len(bps) > 0 {
		b = bps[0]
	}
	if tc, ok := s.vthetaCrossing(b); ok {
		q.Push(tc, evVTheta, gen)
	}
}

// Run simulates `duration` seconds with user interactions at the given
// times (need not be sorted), on the event queue: arrivals, lighting-knot
// breakpoints, and predicted V_θ recoveries are the only points where
// state changes hands, and between them the charge+leak ODE is advanced in
// closed form. Outcomes match RunFixedStep's historical 60 s integrator
// (pinned by equivalence tests) at a fraction of the work — a device-day
// is a few hundred events instead of tens of thousands of chunk steps.
func (s *Simulator) Run(duration float64, eventTimes []float64) (*Stats, error) {
	times := append([]float64(nil), eventTimes...)
	sort.Float64s(times)
	for _, et := range times {
		if et < 0 || et > duration {
			return nil, fmt.Errorf("firmware: event time %.1f outside [0, %.1f]", et, duration)
		}
	}
	stats := &Stats{Duration: duration, Counts: make(map[EventOutcome]int), ExitCounts: make(map[int]int)}
	if !s.leanStats {
		stats.Events = make([]Event, 0, len(times))
	}
	baseCost := s.sessionCostFor(s.cfg.InferMACs)

	// Arrivals are exogenous and already sorted, so they ride beside the
	// queue as a pre-sorted stream (the classic calendar-of-known-events
	// split) instead of churning the heap; the queue carries the
	// endogenous schedule — lighting knots, predicted V_θ crossings, and
	// the end of the run. At equal timestamps the arrival goes first,
	// matching the FIFO order a single queue would give events pushed
	// arrivals-first — the order the sequential integrator implied.
	q := sim.NewQueue()
	for _, bp := range s.cfg.Lux.Breakpoints(0, duration) {
		q.Push(bp, evBreakpoint, 0)
	}
	q.Push(duration, evEnd, 0)

	// session advances the shaded array for the interaction's duration in
	// one analytic step at midpoint illuminance — the same sampling the
	// fixed-step path uses for its (single, sub-minute) session chunk.
	session := func(durS float64) float64 {
		t0 := s.harv.Now
		dE := s.harv.AdvanceToShaded(t0+durS, s.cfg.Lux.Lux(t0+durS/2), 0.4, 0.8, true)
		if dE > 0 {
			return dE
		}
		return 0
	}

	var clk sim.Clock
	var gen int64
	s.scheduleVTheta(q, gen, duration)
	ai := 0
	for {
		var ev sim.Event
		qev, qok := q.Peek()
		if ai < len(times) && (!qok || times[ai] <= qev.T) {
			ev = sim.Event{T: times[ai], Kind: evArrival}
			ai++
		} else if qok {
			q.Pop()
			ev = qev
		} else {
			break
		}
		clk.AdvanceTo(ev.T)
		switch ev.Kind {
		case evArrival:
			if ev.T >= s.harv.Now {
				stats.HarvestedJ += s.advanceCharge(ev.T)
			} else {
				// The previous session overran this arrival. The chunked
				// integrator rewound its cursor to the arrival time and
				// re-charged the overlap; replicate that exactly.
				s.harv.Now = ev.T
			}
			s.interact(ev.T, baseCost, stats, session)
			gen++
			s.scheduleVTheta(q, gen, duration)
		case evBreakpoint:
			stats.HarvestedJ += s.advanceCharge(ev.T)
			gen++
			s.scheduleVTheta(q, gen, duration)
		case evVTheta:
			if ev.Data != gen {
				continue // superseded by a later arrival or knot
			}
			stats.HarvestedJ += s.advanceCharge(ev.T)
			stats.VThetaUpCrossings++
		case evEnd:
			stats.HarvestedJ += s.advanceCharge(ev.T)
		}
	}
	stats.FinalV = s.harv.Cap.V
	return stats, nil
}
