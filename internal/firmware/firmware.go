// Package firmware glues the SolarML subsystems into a discrete-event
// lifetime simulation: the supercap charges continuously from the array,
// user hover events arrive over hours, and each event runs the §III-B
// energy-management policy — the passive circuit boots the MCU only in
// sufficient light and with a charged supercap, the firmware proceeds with
// inference only when the stored voltage clears the threshold V_θ, and a
// session that outruns the stored energy browns out. This is the layer a
// deployment would actually run, and it exposes duty-cycle statistics that
// none of the single-session experiments can show.
package firmware

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"solarml/internal/circuit"
	"solarml/internal/dataset"
	"solarml/internal/dsp"
	"solarml/internal/energymodel"
	"solarml/internal/harvest"
	"solarml/internal/mcu"
	"solarml/internal/nas"
	"solarml/internal/nn"
	"solarml/internal/obs"
	"solarml/internal/obs/energy"
	"solarml/internal/quant"
	"solarml/internal/solar"
)

// LuxProfile maps simulation time (seconds) to illuminance. Profiles also
// expose their knots, which lets the event-driven simulation core advance
// the charge ODE analytically over whole inter-knot pieces instead of
// replaying fixed steps.
type LuxProfile interface {
	// Lux returns the illuminance at time t (seconds).
	Lux(t float64) float64
	// Breakpoints returns the profile's knots strictly inside (t0, t1), in
	// ascending order. Between consecutive knots the profile must be smooth
	// — linear for an exact analytic advance, anything else is handled by
	// adaptive bisection.
	Breakpoints(t0, t1 float64) []float64
}

// LuxFunc adapts a plain function to LuxProfile. It declares no breakpoints;
// smooth nonlinearity is still advanced correctly (the event core's midpoint
// consistency check bisects adaptively), but a discontinuous LuxFunc should
// be converted to a knotted profile instead.
type LuxFunc func(t float64) float64

// Lux implements LuxProfile.
func (f LuxFunc) Lux(t float64) float64 { return f(t) }

// Breakpoints implements LuxProfile.
func (f LuxFunc) Breakpoints(t0, t1 float64) []float64 { return nil }

// constantLux is a flat profile: no knots, one analytic piece.
type constantLux float64

// Lux implements LuxProfile.
func (c constantLux) Lux(float64) float64 { return float64(c) }

// Breakpoints implements LuxProfile.
func (c constantLux) Breakpoints(t0, t1 float64) []float64 { return nil }

// ConstantLux returns a flat illuminance profile.
func ConstantLux(lux float64) LuxProfile { return constantLux(lux) }

// officeDay is the 12-hour office curve; piecewise linear between its knots.
type officeDay struct{ plateau float64 }

// officeKnots are the hour marks where the office curve bends or jumps:
// dawn ramp start/end, the lunch dip edges, dusk ramp start, lights out.
var officeKnots = [...]float64{0, 1, 5, 6, 11, 12}

// Lux implements LuxProfile.
func (o officeDay) Lux(t float64) float64 {
	h := t / 3600
	switch {
	case h < 0 || h > 12:
		return 5
	case h < 1: // ramp up
		return 5 + (o.plateau-5)*h
	case h >= 5 && h < 6: // lunch dip
		return o.plateau * 0.6
	case h > 11: // ramp down
		return o.plateau * (12 - h)
	default:
		return o.plateau
	}
}

// Breakpoints implements LuxProfile.
func (o officeDay) Breakpoints(t0, t1 float64) []float64 {
	var out []float64
	for _, h := range officeKnots {
		if t := h * 3600; t > t0 && t < t1 {
			out = append(out, t)
		}
	}
	return out
}

// OfficeDay models a 12-hour office lighting curve starting at t=0
// (07:00): lights ramp up to the working-hours plateau, dip over lunch,
// and fall to night levels after hour 11.
func OfficeDay(plateau float64) LuxProfile { return officeDay{plateau: plateau} }

// Config parameterizes a lifetime simulation.
type Config struct {
	// Lux is the lighting profile.
	Lux LuxProfile
	// Task selects the application (gesture by default). Either way, the
	// passive solar-cell hover detector wakes the platform; for KWS the
	// sensing phase is the microphone capture plus the MFCC front-end.
	Task nas.Task
	// Gesture is the deployed sensing configuration for TaskGesture.
	Gesture dataset.GestureConfig
	// Audio is the deployed front-end configuration for TaskKWS.
	Audio dsp.FrontEndConfig
	// InferMACs is the deployed model.
	InferMACs map[nn.LayerKind]int64
	// VTheta is the firmware's minimum supercap voltage to start an
	// inference after boot (§III-B: "checks if the supercap voltage is
	// sufficient (V > V_θ)").
	VTheta float64
	// InitialV is the supercap voltage at t=0.
	InitialV float64
	// ExitMACs, when non-empty, replaces InferMACs with a HarvNet-style
	// multi-exit ladder (shallow→deep): at each event the firmware runs
	// the deepest exit whose session energy fits the energy stored above
	// V_θ, degrading gracefully instead of rejecting outright.
	ExitMACs []map[nn.LayerKind]int64
	// Obs, when set, wraps every booted interaction in a firmware.session
	// span with firmware.detect/sense/infer children, each carrying its
	// phase's energy as an energy_uj attribute.
	Obs *obs.Recorder
	// Energy, when set, books the run into the joule ledger: session
	// phases under detect/sense/infer, harvest income and supercap leak
	// via the harvester, and one joules-per-interaction observation per
	// event. The simulation arithmetic is identical with or without it.
	Energy *energy.Ledger
}

// DefaultConfig returns a deployment-like configuration.
func DefaultConfig() Config {
	return Config{
		Lux: ConstantLux(500),
		Gesture: dataset.GestureConfig{
			Channels: 6, RateHz: 80,
			Quant: quant.Config{Res: quant.Int, Bits: 8},
		},
		InferMACs: map[nn.LayerKind]int64{
			nn.KindConv:  350_000,
			nn.KindDense: 40_000,
		},
		VTheta:   2.0,
		InitialV: 2.2,
	}
}

// EventOutcome classifies what happened to one user interaction.
type EventOutcome int

const (
	// Completed: the full sample→process→infer session ran.
	Completed EventOutcome = iota
	// BlockedWeakLight: the N₂ guard kept the MCU disconnected.
	BlockedWeakLight
	// BlockedLowSupercap: the supercap could not boot the MCU at all.
	BlockedLowSupercap
	// RejectedVTheta: the MCU booted, saw V ≤ V_θ, and powered back down.
	RejectedVTheta
	// BrownOut: the session started but the stored energy ran out.
	BrownOut
)

// String names the outcome.
func (o EventOutcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case BlockedWeakLight:
		return "blocked-weak-light"
	case BlockedLowSupercap:
		return "blocked-low-supercap"
	case RejectedVTheta:
		return "rejected-vtheta"
	case BrownOut:
		return "brown-out"
	}
	return "unknown"
}

// Event records one interaction.
type Event struct {
	T       float64
	Outcome EventOutcome
	// EnergyJ is the energy the event consumed (partial on brown-out).
	EnergyJ float64
	// V is the supercap voltage when the event arrived.
	V float64
	// Exit is the multi-exit ladder rung used (-1 for single-exit runs).
	Exit int
}

// Stats summarizes a simulation run.
type Stats struct {
	Duration float64
	// Events is the per-interaction log. Fleet runs suppress it (the
	// aggregate counters are the story at that scale); Interactions is
	// the arrival count either way.
	Events       []Event
	Interactions int
	Counts       map[EventOutcome]int
	ExitCounts   map[int]int
	HarvestedJ   float64
	ConsumedJ    float64
	FinalV     float64
	// VThetaUpCrossings counts supercap recoveries up through V_θ between
	// interactions. Only the event-driven Run tracks these (they are its
	// threshold-crossing events); RunFixedStep leaves the count at zero.
	VThetaUpCrossings int
}

// Rate returns the completed fraction of all interactions.
func (s *Stats) Rate(outcome EventOutcome) float64 {
	if len(s.Events) == 0 {
		return 0
	}
	return float64(s.Counts[outcome]) / float64(len(s.Events))
}

// Summary renders a one-paragraph report.
func (s *Stats) Summary() string {
	out := fmt.Sprintf("%d interactions over %.1f h: ", len(s.Events), s.Duration/3600)
	for _, o := range []EventOutcome{Completed, RejectedVTheta, BrownOut, BlockedLowSupercap, BlockedWeakLight} {
		if n := s.Counts[o]; n > 0 {
			out += fmt.Sprintf("%d %s, ", n, o)
		}
	}
	out += fmt.Sprintf("harvested %.1f mJ, consumed %.1f mJ, final %.2f V",
		s.HarvestedJ*1e3, s.ConsumedJ*1e3, s.FinalV)
	return out
}

// Simulator runs lifetime simulations.
type Simulator struct {
	cfg     Config
	array   *solar.Array
	harv    *harvest.Harvester
	event   *circuit.EventCircuit
	profile mcu.PowerProfile
	// detect caches the three pure-in-lux detection voltages interact
	// needs per arrival. Indoor profiles hold one plateau illuminance for
	// hours, so consecutive arrivals almost always hit the cache — and the
	// logarithmic Voc behind DetectVoltage is the single hottest call in a
	// fleet run without it.
	detect struct {
		lux, hovered, refVoc, clear float64
		ok                          bool
	}
	// leanStats suppresses the per-interaction Events log (fleet runs
	// aggregate counters and drop the log unread).
	leanStats bool
}

// New returns a simulator over a fresh platform.
func New(cfg Config) (*Simulator, error) {
	if cfg.Lux == nil {
		return nil, fmt.Errorf("firmware: missing lux profile")
	}
	if cfg.Task == nas.TaskKWS {
		if err := cfg.Audio.Validate(); err != nil {
			return nil, err
		}
	} else if err := cfg.Gesture.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:     cfg,
		array:   solar.NewArray(),
		harv:    harvest.New(),
		event:   circuit.NewEventCircuit(),
		profile: mcu.NRF52840(),
	}
	s.harv.Cap.V = cfg.InitialV
	s.harv.Energy = cfg.Energy
	if cfg.Energy != nil {
		cfg.Energy.SetSupercap(s.harv.Cap.V, s.harv.Cap.Energy())
	}
	return s, nil
}

// sessionCost itemizes one full session's energy by phase, mapping onto
// the joule ledger accounts: wake → detect, sampling+processing → sense,
// model execution → infer.
type sessionCost struct {
	WakeJ  float64
	SenseJ float64
	InferJ float64
	DurS   float64
}

// TotalJ sums the phases in fixed wake+sense+infer order (the bit pattern
// the pre-ledger simulator produced).
func (c sessionCost) TotalJ() float64 { return c.WakeJ + c.SenseJ + c.InferJ }

// sessionCostFor returns the per-phase cost of one full session
// (wake + sample + process + infer) through the given model.
func (s *Simulator) sessionCostFor(macs map[nn.LayerKind]int64) sessionCost {
	wake := s.profile.WakeUpS * s.profile.WakeUpW
	var sense, senseDur float64
	if s.cfg.Task == nas.TaskKWS {
		sense = energymodel.AudioSensingTrue(s.profile, s.cfg.Audio)
		senseDur = dataset.AudioDurationS
	} else {
		sense = energymodel.GestureSensingTrue(s.profile, s.cfg.Gesture)
		senseDur = dataset.GestureDurationS
	}
	infer := energymodel.DefaultCoefficients().TrueEnergy(macs)
	return sessionCost{
		WakeJ: wake, SenseJ: sense, InferJ: infer,
		DurS: s.profile.WakeUpS + senseDur + infer/s.profile.ActiveW,
	}
}

// sessionEnergyFor returns the energy and duration of one full session
// through the given model (the aggregate view of sessionCostFor).
func (s *Simulator) sessionEnergyFor(macs map[nn.LayerKind]int64) (float64, float64) {
	c := s.sessionCostFor(macs)
	return c.TotalJ(), c.DurS
}

// chooseExit picks the deepest affordable ladder rung given the energy
// stored above the V_θ reserve. Returns -1 when even the shallowest exit
// does not fit.
func (s *Simulator) chooseExit() (int, sessionCost) {
	available := s.harv.Cap.EnergyAbove(s.cfg.VTheta)
	exit := -1
	var best sessionCost
	for k, macs := range s.cfg.ExitMACs {
		c := s.sessionCostFor(macs)
		if c.TotalJ() <= available {
			exit, best = k, c
		}
	}
	return exit, best
}

// chargePhase books one session phase: a child span named for the phase
// (energy attributed via energy_uj) under parent, and the matching ledger
// account. Span and ledger are independent — either may be disabled.
func (s *Simulator) chargePhase(parent *obs.Span, acc energy.Account, name string, j float64) {
	if j <= 0 {
		return
	}
	if parent.Enabled() {
		child := parent.Child(name, obs.Str("account", acc.String()))
		child.AddEnergy(j)
		child.End()
	}
	s.cfg.Energy.Charge(acc, j)
}

// charge advances the harvester from t0 to t1 with the lighting profile,
// in ≤stepS chunks at midpoint illuminance, and returns the harvested
// energy. During a session (sensing=true) the user's hand additionally
// shadows part of the array.
func (s *Simulator) charge(t0, t1, stepS float64, sensing bool) float64 {
	harvested := 0.0
	for t := t0; t < t1; {
		dt := math.Min(stepS, t1-t)
		before := s.harv.Cap.Energy()
		if sensing {
			s.harv.ChargeShaded(s.cfg.Lux.Lux(t+dt/2), dt, 0.4, 0.8, true)
		} else {
			s.harv.Charge(s.cfg.Lux.Lux(t+dt/2), dt, false)
		}
		if gained := s.harv.Cap.Energy() - before; gained > 0 {
			harvested += gained
		}
		t += dt
	}
	return harvested
}

// interact runs the §III-B decision tree for one arrival at et and books
// the outcome into stats. The session closure charges the (hand-shadowed)
// array for durS seconds from the current charge position and returns the
// harvested gain — the fixed-step and event-driven Run variants supply
// their chunked or analytic implementation; everything else is shared, so
// the two paths cannot drift apart on policy.
func (s *Simulator) interact(et float64, baseCost sessionCost, stats *Stats, session func(durS float64) float64) {
	lux := s.cfg.Lux.Lux(et)
	ev := Event{T: et, V: s.harv.Cap.V, Exit: -1}

	// The passive circuit decides whether the MCU powers at all.
	if !s.detect.ok || s.detect.lux != lux {
		s.detect.lux = lux
		s.detect.hovered = s.array.DetectVoltage(lux, 0.95)
		s.detect.refVoc = s.array.Cell.Voc(lux)
		s.detect.clear = s.array.DetectVoltage(lux, 0)
		s.detect.ok = true
	}
	refVoc := s.detect.refVoc
	booted := s.event.Step(s.detect.hovered, refVoc, s.harv.Cap.V)
	switch {
	case !booted && refVoc < s.event.VWeakLight:
		ev.Outcome = BlockedWeakLight
	case !booted:
		ev.Outcome = BlockedLowSupercap
	default:
		s.event.SetHold(true)
		cost := baseCost
		exit := -1
		if len(s.cfg.ExitMACs) > 0 {
			exit, cost = s.chooseExit()
		}
		// The variadic attrs would heap-allocate per arrival even with
		// observability off; only build the span when someone listens.
		var sp obs.Span
		if s.cfg.Obs != nil {
			sp = s.cfg.Obs.StartSpan("firmware.session",
				obs.F64("t", et), obs.F64("v", ev.V), obs.F64("lux", lux))
		}
		// Firmware policy: proceed only when V > V_θ (and, with a
		// multi-exit ladder, only when some rung fits the budget).
		switch {
		case s.harv.Cap.V <= s.cfg.VTheta, len(s.cfg.ExitMACs) > 0 && exit < 0:
			ev.Outcome = RejectedVTheta
			ev.EnergyJ = s.profile.WakeUpS * s.profile.WakeUpW
			s.harv.Cap.Drain(ev.EnergyJ)
			// The boot attempt is detection work: it spent the wake
			// transition learning there was nothing it could do.
			s.chargePhase(&sp, energy.AccountDetect, "firmware.detect", ev.EnergyJ)
		case s.harv.Cap.Drain(cost.TotalJ()):
			ev.Outcome = Completed
			ev.EnergyJ = cost.TotalJ()
			ev.Exit = exit
			if exit >= 0 {
				stats.ExitCounts[exit]++
			}
			s.chargePhase(&sp, energy.AccountDetect, "firmware.detect", cost.WakeJ)
			s.chargePhase(&sp, energy.AccountSense, "firmware.sense", cost.SenseJ)
			s.chargePhase(&sp, energy.AccountInfer, "firmware.infer", cost.InferJ)
			// Sensing cells are switched out of the harvesting
			// branch for the session.
			stats.HarvestedJ += session(cost.DurS)
		default:
			// Not enough stored energy: the session browns out
			// partway and the supercap is left nearly empty. The
			// partial spend is attributed in session order —
			// wake, then sensing, then inference — each phase
			// clipped by what was actually drained.
			ev.Outcome = BrownOut
			ev.EnergyJ = s.harv.Cap.Energy() * 0.9
			s.harv.Cap.Drain(ev.EnergyJ)
			remain := ev.EnergyJ
			for _, ph := range []struct {
				acc  energy.Account
				name string
				j    float64
			}{
				{energy.AccountDetect, "firmware.detect", cost.WakeJ},
				{energy.AccountSense, "firmware.sense", cost.SenseJ},
				{energy.AccountInfer, "firmware.infer", cost.InferJ},
			} {
				j := math.Min(remain, ph.j)
				s.chargePhase(&sp, ph.acc, ph.name, j)
				remain -= j
			}
		}
		s.event.SetHold(false)
		s.event.Step(s.detect.clear, refVoc, s.harv.Cap.V)
		if s.cfg.Obs != nil {
			sp.End(obs.Str("outcome", ev.Outcome.String()), obs.Int("exit", ev.Exit))
		}
	}
	s.cfg.Energy.ObserveInteraction(ev.EnergyJ)
	stats.ConsumedJ += ev.EnergyJ
	stats.Counts[ev.Outcome]++
	stats.Interactions++
	if !s.leanStats {
		stats.Events = append(stats.Events, ev)
	}
}

// RunFixedStep simulates `duration` seconds with user interactions at the
// given times (need not be sorted), advancing the charge ODE in fixed
// ≤stepS chunks at midpoint illuminance (stepS ≤ 0 selects the historical
// 60 s). This is the pre-event-queue integrator, retained as the
// equivalence baseline the event-driven Run is pinned against and as the
// accuracy ladder for convergence tests; new callers want Run.
func (s *Simulator) RunFixedStep(duration float64, eventTimes []float64, stepS float64) (*Stats, error) {
	if stepS <= 0 {
		stepS = 60
	}
	times := append([]float64(nil), eventTimes...)
	sort.Float64s(times)
	stats := &Stats{Duration: duration, Counts: make(map[EventOutcome]int), ExitCounts: make(map[int]int)}
	now := 0.0
	baseCost := s.sessionCostFor(s.cfg.InferMACs)
	session := func(durS float64) float64 {
		h := s.charge(now, now+durS, stepS, true)
		now += durS
		return h
	}
	for _, et := range times {
		if et < 0 || et > duration {
			return nil, fmt.Errorf("firmware: event time %.1f outside [0, %.1f]", et, duration)
		}
		stats.HarvestedJ += s.charge(now, et, stepS, false)
		now = et
		s.interact(et, baseCost, stats, session)
	}
	stats.HarvestedJ += s.charge(now, duration, stepS, false)
	stats.FinalV = s.harv.Cap.V
	return stats, nil
}

// PoissonArrivals draws event times with the given mean inter-arrival
// seconds over the duration.
func PoissonArrivals(rng *rand.Rand, duration, meanGapS float64) []float64 {
	out := make([]float64, 0, int(duration/meanGapS)+8)
	t := rng.ExpFloat64() * meanGapS
	for t < duration {
		out = append(out, t)
		t += rng.ExpFloat64() * meanGapS
	}
	return out
}
