package energymodel

import (
	"math"
	"math/rand"
	"testing"

	"solarml/internal/dataset"
	"solarml/internal/dsp"
	"solarml/internal/mcu"
	"solarml/internal/nn"
	"solarml/internal/quant"
	"solarml/internal/regress"
)

// randomMACs draws one model from the measurement-campaign zoo.
func randomMACs(rng *rand.Rand) map[nn.LayerKind]int64 { return ZooMACs(rng) }

func randomGestureCfg(rng *rand.Rand) dataset.GestureConfig {
	res := quant.Int
	bits := 1 + rng.Intn(8)
	if rng.Intn(2) == 1 {
		res = quant.Float
		bits = 9 + rng.Intn(24)
	}
	return dataset.GestureConfig{
		Channels: 1 + rng.Intn(9),
		RateHz:   10 + rng.Intn(191),
		Quant:    quant.Config{Res: res, Bits: bits},
	}
}

func randomAudioCfg(rng *rand.Rand) dsp.FrontEndConfig {
	return dsp.FrontEndConfig{
		SampleRate:  dataset.AudioRateHz,
		StripeMS:    10 + rng.Intn(21),
		DurationMS:  18 + rng.Intn(13),
		NumFeatures: 10 + rng.Intn(31),
	}
}

func TestFig7LayerEnergiesAt75kMACs(t *testing.T) {
	c := DefaultCoefficients()
	dense := c.TrueEnergy(map[nn.LayerKind]int64{nn.KindDense: 75_000})
	conv := c.TrueEnergy(map[nn.LayerKind]int64{nn.KindConv: 75_000})
	if math.Abs(dense*1e6-50) > 5 {
		t.Fatalf("Dense at 75k MACs = %.1f µJ, Fig 7 says ≈50", dense*1e6)
	}
	if math.Abs(conv*1e6-175) > 10 {
		t.Fatalf("Conv at 75k MACs = %.1f µJ, Fig 7 says ≈175", conv*1e6)
	}
	if r := conv / dense; math.Abs(r-3.5) > 0.3 {
		t.Fatalf("Conv/Dense ratio %.2f, Fig 7 says ≈3.5", r)
	}
}

func TestTrueEnergyMonotoneInMACs(t *testing.T) {
	c := DefaultCoefficients()
	small := c.TrueEnergy(map[nn.LayerKind]int64{nn.KindConv: 10_000})
	big := c.TrueEnergy(map[nn.LayerKind]int64{nn.KindConv: 100_000})
	if big <= small {
		t.Fatal("more MACs must cost more")
	}
}

func TestMeasureInferenceNoiseBounded(t *testing.T) {
	m := NewMeasurer(1)
	macs := map[nn.LayerKind]int64{nn.KindConv: 100_000}
	truth := m.Coeff.TrueEnergy(macs)
	for i := 0; i < 100; i++ {
		e := m.MeasureInference(macs)
		if math.Abs(e-truth)/truth > 0.5 {
			t.Fatalf("measurement %v too far from truth %v", e, truth)
		}
	}
}

// fitAndScoreInference fits an estimator on 300 train and scores R² on 100
// held-out samples.
func fitAndScoreInference(t *testing.T, reg regress.Model, layerwise bool, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := NewMeasurer(seed)
	var train []InferenceSample
	var evalX []map[nn.LayerKind]int64
	var evalY []float64
	for i := 0; i < 300; i++ {
		macs := randomMACs(rng)
		train = append(train, InferenceSample{MACs: macs, EnergyJ: m.MeasureInference(macs)})
	}
	for i := 0; i < 100; i++ {
		macs := randomMACs(rng)
		evalX = append(evalX, macs)
		evalY = append(evalY, m.MeasureInference(macs))
	}
	est := &InferenceEstimator{Reg: reg, Layerwise: layerwise}
	if err := est.Fit(train); err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, len(evalX))
	for i, macs := range evalX {
		preds[i] = est.Predict(macs)
	}
	return regress.R2(evalY, preds)
}

func TestTable1InferenceEstimatorOrdering(t *testing.T) {
	lrLayer := fitAndScoreInference(t, &regress.Linear{}, true, 10)
	lrTotal := fitAndScoreInference(t, &regress.Linear{}, false, 10)
	logLayer := fitAndScoreInference(t, &regress.Logistic{}, true, 10)
	nrLayer := fitAndScoreInference(t, &regress.Neural{Seed: 3}, true, 10)

	if lrLayer < 0.90 {
		t.Fatalf("layer-wise LR R² = %.3f, Table I says ≈0.96", lrLayer)
	}
	if lrTotal > 0.75 {
		t.Fatalf("total-MACs LR R² = %.3f, Table I says ≈0.46 (must be far below layer-wise)", lrTotal)
	}
	if lrLayer-lrTotal < 0.2 {
		t.Fatalf("layer-wise (%.3f) must clearly beat total-MACs (%.3f)", lrLayer, lrTotal)
	}
	if logLayer > lrLayer-0.3 {
		t.Fatalf("logistic R² = %.3f should collapse vs linear %.3f", logLayer, lrLayer)
	}
	if nrLayer >= lrLayer {
		t.Fatalf("neural R² = %.3f should not beat linear %.3f on linear-ish ground truth", nrLayer, lrLayer)
	}
}

func TestFig9InferenceErrorRates(t *testing.T) {
	// Fig 9b: eNAS layer-wise model ≈12.8% mean error; μNAS total-MACs
	// ≈76.9%. Shapes: ours ≲20%, μNAS several times worse.
	rng := rand.New(rand.NewSource(20))
	m := NewMeasurer(20)
	var train []InferenceSample
	for i := 0; i < 300; i++ {
		macs := randomMACs(rng)
		train = append(train, InferenceSample{MACs: macs, EnergyJ: m.MeasureInference(macs)})
	}
	ours := &InferenceEstimator{Reg: &regress.Linear{}, Layerwise: true}
	munas := &InferenceEstimator{Reg: &regress.Linear{}, Layerwise: false}
	if err := ours.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := munas.Fit(train); err != nil {
		t.Fatal(err)
	}
	var yTrue, oursPred, munasPred []float64
	for i := 0; i < 60; i++ {
		macs := randomMACs(rng)
		yTrue = append(yTrue, m.MeasureInference(macs))
		oursPred = append(oursPred, ours.Predict(macs))
		munasPred = append(munasPred, munas.Predict(macs))
	}
	oursErr := regress.MeanAbsRelError(yTrue, oursPred)
	munasErr := regress.MeanAbsRelError(yTrue, munasPred)
	if oursErr > 0.25 {
		t.Fatalf("layer-wise mean error %.1f%%, paper ≈12.8%%", oursErr*100)
	}
	if munasErr < 2*oursErr {
		t.Fatalf("total-MACs error %.1f%% should be several times layer-wise %.1f%%",
			munasErr*100, oursErr*100)
	}
}

func TestGestureSensingModelFit(t *testing.T) {
	// Table I: gesture sensing LR R² ≈ 0.92.
	rng := rand.New(rand.NewSource(30))
	m := NewMeasurer(30)
	var train []GestureSample
	for i := 0; i < 300; i++ {
		cfg := randomGestureCfg(rng)
		train = append(train, GestureSample{Cfg: cfg, EnergyJ: m.MeasureGestureSensing(cfg)})
	}
	est := &GestureEstimator{Reg: &regress.Linear{}}
	if err := est.Fit(train); err != nil {
		t.Fatal(err)
	}
	var yTrue, yPred []float64
	for i := 0; i < 100; i++ {
		cfg := randomGestureCfg(rng)
		yTrue = append(yTrue, m.MeasureGestureSensing(cfg))
		yPred = append(yPred, est.Predict(cfg))
	}
	r2 := regress.R2(yTrue, yPred)
	if r2 < 0.8 {
		t.Fatalf("gesture sensing LR R² = %.3f, Table I says ≈0.92", r2)
	}
	if err := regress.MeanAbsRelError(yTrue, yPred); err > 0.12 {
		t.Fatalf("gesture sensing mean error %.1f%%, Fig 9a says ≈3.1%%", err*100)
	}
}

func TestAudioSensingModelFit(t *testing.T) {
	// §IV-A2: audio sensing LR R² ≈ 0.99.
	rng := rand.New(rand.NewSource(40))
	m := NewMeasurer(40)
	var train []AudioSample
	for i := 0; i < 300; i++ {
		cfg := randomAudioCfg(rng)
		train = append(train, AudioSample{Cfg: cfg, EnergyJ: m.MeasureAudioSensing(cfg)})
	}
	est := &AudioEstimator{Reg: &regress.Linear{}}
	if err := est.Fit(train); err != nil {
		t.Fatal(err)
	}
	var yTrue, yPred []float64
	for i := 0; i < 100; i++ {
		cfg := randomAudioCfg(rng)
		yTrue = append(yTrue, m.MeasureAudioSensing(cfg))
		yPred = append(yPred, est.Predict(cfg))
	}
	if r2 := regress.R2(yTrue, yPred); r2 < 0.85 {
		t.Fatalf("audio sensing LR R² = %.3f, paper says ≈0.99", r2)
	}
}

func TestGestureSensingTrueMonotone(t *testing.T) {
	p := mcu.NRF52840()
	base := dataset.GestureConfig{Channels: 4, RateHz: 100, Quant: quant.Config{Res: quant.Int, Bits: 8}}
	e0 := GestureSensingTrue(p, base)
	moreCh := base
	moreCh.Channels = 8
	if GestureSensingTrue(p, moreCh) <= e0 {
		t.Fatal("more channels must cost more")
	}
	moreRate := base
	moreRate.RateHz = 200
	if GestureSensingTrue(p, moreRate) <= e0 {
		t.Fatal("higher rate must cost more")
	}
	moreBits := base
	moreBits.Quant = quant.Config{Res: quant.Float, Bits: 32}
	if GestureSensingTrue(p, moreBits) <= e0 {
		t.Fatal("higher fidelity must cost more")
	}
}

func TestAudioSensingTrueMonotone(t *testing.T) {
	p := mcu.NRF52840()
	base := dsp.FrontEndConfig{SampleRate: dataset.AudioRateHz, StripeMS: 20, DurationMS: 25, NumFeatures: 13}
	e0 := AudioSensingTrue(p, base)
	moreFeat := base
	moreFeat.NumFeatures = 40
	if AudioSensingTrue(p, moreFeat) <= e0 {
		t.Fatal("more features must cost more")
	}
	sparser := base
	sparser.StripeMS = 30
	if AudioSensingTrue(p, sparser) >= e0 {
		t.Fatal("longer stripe must cost less")
	}
}

func TestEstimatorPredictClampsNegative(t *testing.T) {
	est := &InferenceEstimator{Reg: &regress.Linear{}, Layerwise: false}
	err := est.Fit([]InferenceSample{
		{MACs: map[nn.LayerKind]int64{nn.KindConv: 100_000}, EnergyJ: 1e-4},
		{MACs: map[nn.LayerKind]int64{nn.KindConv: 200_000}, EnergyJ: 3e-4},
		{MACs: map[nn.LayerKind]int64{nn.KindConv: 300_000}, EnergyJ: 5e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Extrapolating to zero MACs would go negative; Predict must clamp.
	if p := est.Predict(map[nn.LayerKind]int64{}); p < 0 {
		t.Fatalf("negative prediction %v", p)
	}
}

func TestFitRejectsEmpty(t *testing.T) {
	if err := (&InferenceEstimator{}).Fit(nil); err == nil {
		t.Fatal("empty inference fit must fail")
	}
	if err := (&GestureEstimator{}).Fit(nil); err == nil {
		t.Fatal("empty gesture fit must fail")
	}
	if err := (&AudioEstimator{}).Fit(nil); err == nil {
		t.Fatal("empty audio fit must fail")
	}
}

func TestDefaultRegIsLinear(t *testing.T) {
	est := &InferenceEstimator{Layerwise: true}
	err := est.Fit([]InferenceSample{
		{MACs: map[nn.LayerKind]int64{nn.KindConv: 1000}, EnergyJ: 1e-5},
		{MACs: map[nn.LayerKind]int64{nn.KindConv: 2000}, EnergyJ: 2e-5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Reg.Name() != "LR" {
		t.Fatalf("default regressor %s, want LR", est.Reg.Name())
	}
}
