package energymodel

import (
	"math"
	"math/rand"
	"testing"

	"solarml/internal/dataset"
	"solarml/internal/mcu"
	"solarml/internal/quant"
)

// The sensing ground truth has two implementations: the closed-form
// GestureSensingTrue/AudioSensingTrue used by the energy models and NAS,
// and the mcu.Device trace recorder used by the session simulations. They
// must agree exactly, or Fig 2 shares and Fig 10 energies would drift
// apart.

func TestGestureSensingMatchesDeviceTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	p := mcu.NRF52840()
	for i := 0; i < 50; i++ {
		cfg := dataset.GestureConfig{
			Channels: 1 + rng.Intn(9),
			RateHz:   10 + rng.Intn(191),
			Quant:    quant.Config{Res: quant.Int, Bits: 1 + rng.Intn(8)},
		}
		if rng.Intn(2) == 1 {
			cfg.Quant = quant.Config{Res: quant.Float, Bits: 9 + rng.Intn(24)}
		}
		want := GestureSensingTrue(p, cfg)

		dev := mcu.NewDevice()
		bits := cfg.Quant.EffectiveBits()
		got := dev.SampleGesture(cfg.Channels, float64(cfg.RateHz), dataset.GestureDurationS, bits)
		samples := int64(float64(cfg.Channels) * float64(cfg.RateHz) * dataset.GestureDurationS)
		got += dev.Process(3 * samples)

		if math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("config %+v: device trace %.6g J vs closed form %.6g J", cfg, got, want)
		}
	}
}

func TestAudioSensingMatchesDeviceTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	p := mcu.NRF52840()
	for i := 0; i < 50; i++ {
		cfg := randomAudioCfg(rng)
		want := AudioSensingTrue(p, cfg)

		dev := mcu.NewDevice()
		got := dev.SampleAudio(dataset.AudioDurationS)
		got += dev.ProcessDSP(cfg.FrontEndMACs(int(dataset.AudioRateHz * dataset.AudioDurationS)))

		if math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("config %+v: device trace %.6g J vs closed form %.6g J", cfg, got, want)
		}
	}
}
