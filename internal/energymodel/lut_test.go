package energymodel

import (
	"math/rand"
	"testing"

	"solarml/internal/nn"
	"solarml/internal/regress"
)

func TestCalibrateLUTStructure(t *testing.T) {
	m := NewMeasurer(100)
	lut, err := CalibrateLUT(m, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lut.Grid) != len(nn.ComputeKinds()) {
		t.Fatalf("%d kinds in grid", len(lut.Grid))
	}
	// kinds × points × repeats + overhead repeats.
	want := len(nn.ComputeKinds())*6*3 + 3
	if lut.Measurements != want {
		t.Fatalf("%d measurements, want %d", lut.Measurements, want)
	}
	if lut.OverheadJ <= 0 {
		t.Fatal("overhead must be measured")
	}
	for kind, grid := range lut.Grid {
		for i := 1; i < len(grid); i++ {
			if grid[i].MACs <= grid[i-1].MACs {
				t.Fatalf("%v grid not sorted", kind)
			}
			if grid[i].EnergyJ < grid[i-1].EnergyJ {
				t.Fatalf("%v energy not monotone in MACs", kind)
			}
		}
	}
}

func TestLUTAccuracyComparableToRegression(t *testing.T) {
	m := NewMeasurer(101)
	lut, err := CalibrateLUT(m, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(102))
	var yTrue, yLUT []float64
	for i := 0; i < 100; i++ {
		macs := ZooMACs(rng)
		yTrue = append(yTrue, m.MeasureInference(macs))
		yLUT = append(yLUT, lut.Predict(macs))
	}
	r2 := regress.R2(yTrue, yLUT)
	if r2 < 0.9 {
		t.Fatalf("LUT R² = %.3f — the approach is accurate, just expensive to calibrate", r2)
	}
	if err := regress.MeanAbsRelError(yTrue, yLUT); err > 0.25 {
		t.Fatalf("LUT mean error %.1f%%", err*100)
	}
}

func TestLUTCalibrationCostExceedsRegression(t *testing.T) {
	// The paper's point: the LUT needs a dedicated per-layer campaign,
	// while the regression reuses any 300 whole-model measurements.
	m := NewMeasurer(103)
	lut, err := CalibrateLUT(m, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lut.Measurements <= 300 {
		t.Fatalf("representative LUT campaign took only %d measurements", lut.Measurements)
	}
}

func TestLUTInterpolationBounds(t *testing.T) {
	m := NewMeasurer(104)
	lut, err := CalibrateLUT(m, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Below-grid and above-grid MAC counts extrapolate proportionally
	// and stay positive and ordered.
	small := lut.Predict(map[nn.LayerKind]int64{nn.KindConv: 1_000})
	large := lut.Predict(map[nn.LayerKind]int64{nn.KindConv: 10_000_000})
	if small <= 0 || large <= small {
		t.Fatalf("extrapolation broken: %v, %v", small, large)
	}
	if empty := lut.Predict(nil); empty != lut.OverheadJ {
		t.Fatalf("empty model must predict the overhead, got %v", empty)
	}
}

func TestLUTValidation(t *testing.T) {
	m := NewMeasurer(105)
	if _, err := CalibrateLUT(m, 1, 1); err == nil {
		t.Fatal("single-point grid must be rejected")
	}
	if _, err := CalibrateLUT(m, 4, 0); err == nil {
		t.Fatal("zero repeats must be rejected")
	}
}
