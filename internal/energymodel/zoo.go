package energymodel

import (
	"math"
	"math/rand"

	"solarml/internal/nn"
)

// ZooMACs synthesizes the per-kind MAC breakdown of one model from the
// §IV-A measurement campaign: the paper measured 300 models "with different
// layers and numbers of MACs" — deliberately diverse in layer composition
// (conv-heavy CNNs, dense-heavy MLPs, and mixed stacks), which is what
// separates the layer-wise proxy from the single total-MACs proxy in
// Table I. Totals are log-uniform over ≈50 k–800 k MACs.
func ZooMACs(rng *rand.Rand) map[nn.LayerKind]int64 {
	total := math.Pow(10, 4.7+rng.Float64()*1.2)
	style := rng.Intn(3)
	var convFrac, denseFrac float64
	switch style {
	case 0: // conv-heavy CNN
		convFrac = 0.8 + rng.Float64()*0.18
		denseFrac = (1 - convFrac) * rng.Float64() * 0.5
	case 1: // dense-heavy MLP
		denseFrac = 0.8 + rng.Float64()*0.18
		convFrac = (1 - denseFrac) * rng.Float64() * 0.5
	default: // mixed
		convFrac = 0.3 + rng.Float64()*0.3
		denseFrac = 0.2 + rng.Float64()*0.3
	}
	rest := 1 - convFrac - denseFrac
	if rest < 0 {
		rest = 0
	}
	dw := rest * rng.Float64()
	rest -= dw
	mp := rest * rng.Float64()
	rest -= mp
	ap := rest * rng.Float64()
	norm := rest - ap
	return map[nn.LayerKind]int64{
		nn.KindConv:    int64(total * convFrac),
		nn.KindDense:   int64(total * denseFrac),
		nn.KindDWConv:  int64(total * dw),
		nn.KindMaxPool: int64(total * mp),
		nn.KindAvgPool: int64(total * ap),
		nn.KindNorm:    int64(total * norm),
	}
}
