// Package energymodel implements the paper's two energy models and the
// measurement ground truth they are fit against.
//
// Inference: the paper observes (Fig 7) that at equal MAC counts different
// layer types cost very different energy (Dense ≈50 µJ vs Conv ≈175 µJ at
// 75 k MACs), so eNAS fits one coefficient per layer kind:
//
//	E_M = a₁·MAC_AvgPool + a₂·MAC_MaxPool + a₃·MAC_Conv
//	    + a₄·MAC_Dense + a₅·MAC_Norm + a₆·MAC_DWConv + b
//
// against measured energies, while μNAS/HarvNet use a single total-MACs
// model E_M = a·MACs + b. The ground-truth simulator below includes the
// per-kind cost differences plus a mild super-linear memory-pressure term
// and measurement noise, which is what separates the estimators in Table I.
//
// Sensing: for gestures the model is fit over (n, r, b, q) — channels,
// rate, resolution family, quantization depth; for audio over (s, d, f) —
// window stripe, window duration, feature count.
package energymodel

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/dataset"
	"solarml/internal/dsp"
	"solarml/internal/mcu"
	"solarml/internal/nn"
	"solarml/internal/obs/energy"
	"solarml/internal/quant"
	"solarml/internal/regress"
)

// Coefficients are the ground-truth per-kind energy costs of the simulated
// nRF52840, calibrated to Fig 7 (Dense 50 µJ, Conv 175 µJ at 75 k MACs
// including the b overhead).
type Coefficients struct {
	// PerMACJ maps each compute layer kind to its J/MAC cost.
	PerMACJ map[nn.LayerKind]float64
	// OverheadJ is the fixed inference setup cost (b).
	OverheadJ float64
	// MemPressureGamma scales the super-linear cost growth of large
	// layers (cache/RAM pressure), the structural nonlinearity that keeps
	// even the layer-wise linear model from a perfect fit.
	MemPressureGamma float64
	// MemPressureMACs is the layer size where pressure starts to matter.
	MemPressureMACs float64
}

// DefaultCoefficients returns the calibrated ground truth.
func DefaultCoefficients() Coefficients {
	return Coefficients{
		PerMACJ: map[nn.LayerKind]float64{
			nn.KindConv:    2.20e-9,
			nn.KindDWConv:  1.80e-9,
			nn.KindDense:   0.533e-9,
			nn.KindMaxPool: 0.75e-9,
			nn.KindAvgPool: 0.65e-9,
			nn.KindNorm:    1.00e-9,
		},
		OverheadJ:        10e-6,
		MemPressureGamma: 0.12,
		MemPressureMACs:  200_000,
	}
}

// TrueEnergy returns the noise-free inference energy for a per-kind MAC
// breakdown. Kinds are accumulated in a fixed order so the floating-point
// sum is deterministic regardless of map iteration order.
func (c Coefficients) TrueEnergy(macs map[nn.LayerKind]int64) float64 {
	e := c.OverheadJ
	for _, kind := range nn.ComputeKinds() {
		m := macs[kind]
		a, ok := c.PerMACJ[kind]
		if !ok || m == 0 {
			continue
		}
		pressure := 1 + c.MemPressureGamma*math.Log10(1+float64(m)/c.MemPressureMACs)
		e += a * float64(m) * pressure
	}
	return e
}

// Measurer produces "measured" energies: ground truth plus multiplicative
// noise, standing in for the 300 OTII measurement campaigns of §IV-A.
// Inference measurements carry more spread than sensing measurements:
// inference bursts are short (milliseconds) while sensing integrates over
// the whole gesture/clip, averaging supply noise out.
type Measurer struct {
	Coeff            Coefficients
	Profile          mcu.PowerProfile
	InferNoiseFrac   float64
	SensingNoiseFrac float64
	// Ledger, when set, books every measurement's energy into the joule
	// ledger (infer/sense accounts) — a measurement campaign then shows up
	// in the same accounting as a live run. The rng stream is untouched,
	// so seeded campaigns stay bit-identical with or without a ledger.
	Ledger *energy.Ledger
	rng    *rand.Rand
}

// NewMeasurer returns a measurer with the calibrated ground truth.
func NewMeasurer(seed int64) *Measurer {
	return &Measurer{
		Coeff:            DefaultCoefficients(),
		Profile:          mcu.NRF52840(),
		InferNoiseFrac:   0.08,
		SensingNoiseFrac: 0.02,
		rng:              rand.New(rand.NewSource(seed)),
	}
}

// noisy applies multiplicative measurement noise.
func (m *Measurer) noisy(e, frac float64) float64 {
	return e * (1 + m.rng.NormFloat64()*frac)
}

// MeasureInference returns a measured inference energy for a network's
// per-kind MAC breakdown.
func (m *Measurer) MeasureInference(macs map[nn.LayerKind]int64) float64 {
	e := m.noisy(m.Coeff.TrueEnergy(macs), m.InferNoiseFrac)
	m.Ledger.Charge(energy.AccountInfer, e)
	return e
}

// GestureSensingTrue returns the noise-free sensing energy of a gesture
// configuration over one gesture: tickless base power plus per-sample ADC
// conversions plus the normalization pre-processing.
func GestureSensingTrue(p mcu.PowerProfile, cfg dataset.GestureConfig) float64 {
	bits := cfg.Quant.EffectiveBits()
	perScan := p.ScanOverheadJ + float64(cfg.Channels)*p.ADCSampleBaseJ + bits*p.ADCSamplePerBitJ
	sampling := dataset.GestureDurationS * (p.TicklessBaseW + float64(cfg.RateHz)*perScan)
	// Normalization + quantization pass: ≈3 ops per captured sample
	// (whole samples, matching the device trace accounting).
	samples := float64(int64(float64(cfg.Channels) * float64(cfg.RateHz) * dataset.GestureDurationS))
	return sampling + 3*samples*p.CPUPerMACJ
}

// MeasureGestureSensing returns a measured gesture sensing energy.
func (m *Measurer) MeasureGestureSensing(cfg dataset.GestureConfig) float64 {
	e := m.noisy(GestureSensingTrue(m.Profile, cfg), m.SensingNoiseFrac)
	m.Ledger.Charge(energy.AccountSense, e)
	return e
}

// AudioSensingTrue returns the noise-free sensing energy of a KWS front-end
// configuration over one clip: microphone capture plus MFCC processing.
func AudioSensingTrue(p mcu.PowerProfile, cfg dsp.FrontEndConfig) float64 {
	capture := dataset.AudioDurationS * (p.TicklessBaseW + p.MicW)
	procMACs := cfg.FrontEndMACs(int(dataset.AudioRateHz * dataset.AudioDurationS))
	return capture + float64(procMACs)*p.DSPPerMACJ
}

// MeasureAudioSensing returns a measured audio sensing energy.
func (m *Measurer) MeasureAudioSensing(cfg dsp.FrontEndConfig) float64 {
	e := m.noisy(AudioSensingTrue(m.Profile, cfg), m.SensingNoiseFrac)
	m.Ledger.Charge(energy.AccountSense, e)
	return e
}

// --- Feature extractors (the regression proxies of Table I) ---

// LayerwiseFeatures returns per-kind MACs in nn.ComputeKinds order, the
// eNAS proxy.
func LayerwiseFeatures(macs map[nn.LayerKind]int64) []float64 {
	kinds := nn.ComputeKinds()
	out := make([]float64, len(kinds))
	for i, k := range kinds {
		out[i] = float64(macs[k])
	}
	return out
}

// TotalMACsFeature returns the single-total proxy used by μNAS/HarvNet.
func TotalMACsFeature(macs map[nn.LayerKind]int64) []float64 {
	var t float64
	for _, m := range macs {
		t += float64(m)
	}
	return []float64{t}
}

// GestureFeatures returns the (n, r, b, q) proxy of the sensing model.
func GestureFeatures(cfg dataset.GestureConfig) []float64 {
	b := 0.0
	if cfg.Quant.Res == quant.Float {
		b = 1
	}
	return []float64{float64(cfg.Channels), float64(cfg.RateHz), b, float64(cfg.Quant.Bits)}
}

// AudioFeatures returns the (s, d, f) proxy of the audio sensing model.
func AudioFeatures(cfg dsp.FrontEndConfig) []float64 {
	return []float64{float64(cfg.StripeMS), float64(cfg.DurationMS), float64(cfg.NumFeatures)}
}

// --- Fitted estimators ---

// InferenceSample pairs a MAC breakdown with its measured energy.
type InferenceSample struct {
	MACs    map[nn.LayerKind]int64
	EnergyJ float64
}

// InferenceEstimator is a fitted inference energy model.
type InferenceEstimator struct {
	// Reg is the regression family; nil defaults to linear.
	Reg regress.Model
	// Layerwise selects the eNAS per-kind proxy; false selects the
	// μNAS/HarvNet total-MACs proxy.
	Layerwise bool
}

func (e *InferenceEstimator) features(macs map[nn.LayerKind]int64) []float64 {
	if e.Layerwise {
		return LayerwiseFeatures(macs)
	}
	return TotalMACsFeature(macs)
}

// Fit trains the estimator on measured samples.
func (e *InferenceEstimator) Fit(samples []InferenceSample) error {
	if len(samples) == 0 {
		return fmt.Errorf("energymodel: no samples")
	}
	if e.Reg == nil {
		e.Reg = &regress.Linear{}
	}
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		X[i] = e.features(s.MACs)
		y[i] = s.EnergyJ
	}
	return e.Reg.Fit(X, y)
}

// Predict estimates the inference energy of a MAC breakdown.
func (e *InferenceEstimator) Predict(macs map[nn.LayerKind]int64) float64 {
	p := e.Reg.Predict(e.features(macs))
	if p < 0 {
		p = 0
	}
	return p
}

// GestureSample pairs a gesture sensing configuration with its measurement.
type GestureSample struct {
	Cfg     dataset.GestureConfig
	EnergyJ float64
}

// GestureEstimator is a fitted gesture sensing energy model over (n,r,b,q).
type GestureEstimator struct {
	Reg regress.Model
}

// Fit trains the estimator on measured samples.
func (e *GestureEstimator) Fit(samples []GestureSample) error {
	if len(samples) == 0 {
		return fmt.Errorf("energymodel: no samples")
	}
	if e.Reg == nil {
		e.Reg = &regress.Linear{}
	}
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		X[i] = GestureFeatures(s.Cfg)
		y[i] = s.EnergyJ
	}
	return e.Reg.Fit(X, y)
}

// Predict estimates the sensing energy of a configuration.
func (e *GestureEstimator) Predict(cfg dataset.GestureConfig) float64 {
	p := e.Reg.Predict(GestureFeatures(cfg))
	if p < 0 {
		p = 0
	}
	return p
}

// AudioSample pairs an audio front-end configuration with its measurement.
type AudioSample struct {
	Cfg     dsp.FrontEndConfig
	EnergyJ float64
}

// AudioEstimator is a fitted audio sensing energy model over (s,d,f).
type AudioEstimator struct {
	Reg regress.Model
}

// Fit trains the estimator on measured samples.
func (e *AudioEstimator) Fit(samples []AudioSample) error {
	if len(samples) == 0 {
		return fmt.Errorf("energymodel: no samples")
	}
	if e.Reg == nil {
		e.Reg = &regress.Linear{}
	}
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		X[i] = AudioFeatures(s.Cfg)
		y[i] = s.EnergyJ
	}
	return e.Reg.Fit(X, y)
}

// Predict estimates the sensing energy of a front-end configuration.
func (e *AudioEstimator) Predict(cfg dsp.FrontEndConfig) float64 {
	p := e.Reg.Predict(AudioFeatures(cfg))
	if p < 0 {
		p = 0
	}
	return p
}
