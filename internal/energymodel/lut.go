package energymodel

import (
	"fmt"
	"math"
	"sort"

	"solarml/internal/nn"
)

// LUTEstimator is the lookup-table energy model of Micronets/MCUNet [7,3]:
// per layer kind, the energy of isolated layers is measured at a grid of
// MAC counts and whole-model energy is predicted as the interpolated sum.
// It is accurate — the paper's criticism is the calibration cost: the table
// needs kinds × grid × repeats dedicated measurements, where the eNAS
// regression needs one fit over whatever models are available.
type LUTEstimator struct {
	// OverheadJ is the measured fixed cost of an empty inference.
	OverheadJ float64
	// Grid maps each kind to measured (MACs, energy-above-overhead)
	// points sorted by MACs.
	Grid map[nn.LayerKind][]LUTPoint
	// Measurements counts the calibration measurements spent.
	Measurements int
}

// LUTPoint is one calibration measurement.
type LUTPoint struct {
	MACs    int64
	EnergyJ float64
}

// MeasureLayer returns a measured energy for an isolated layer of the
// given kind and MAC count (a single-layer calibration model).
func (m *Measurer) MeasureLayer(kind nn.LayerKind, macs int64) float64 {
	return m.MeasureInference(map[nn.LayerKind]int64{kind: macs})
}

// MeasureOverhead returns a measured empty-model inference cost.
func (m *Measurer) MeasureOverhead() float64 {
	return m.MeasureInference(nil)
}

// CalibrateLUT runs the per-layer measurement campaign: `points` log-spaced
// MAC counts per kind, `repeats` measurements each (averaged), plus the
// overhead measurement.
func CalibrateLUT(m *Measurer, points, repeats int) (*LUTEstimator, error) {
	if points < 2 || repeats < 1 {
		return nil, fmt.Errorf("energymodel: LUT needs ≥2 points and ≥1 repeat")
	}
	l := &LUTEstimator{Grid: make(map[nn.LayerKind][]LUTPoint)}
	var oh float64
	for r := 0; r < repeats; r++ {
		oh += m.MeasureOverhead()
		l.Measurements++
	}
	l.OverheadJ = oh / float64(repeats)
	const minMACs, maxMACs = 5_000.0, 3_000_000.0
	for _, kind := range nn.ComputeKinds() {
		for p := 0; p < points; p++ {
			frac := float64(p) / float64(points-1)
			macs := int64(minMACs * math.Pow(maxMACs/minMACs, frac))
			var e float64
			for r := 0; r < repeats; r++ {
				e += m.MeasureLayer(kind, macs)
				l.Measurements++
			}
			e = e/float64(repeats) - l.OverheadJ
			if e < 0 {
				e = 0
			}
			l.Grid[kind] = append(l.Grid[kind], LUTPoint{MACs: macs, EnergyJ: e})
		}
		sort.Slice(l.Grid[kind], func(i, j int) bool {
			return l.Grid[kind][i].MACs < l.Grid[kind][j].MACs
		})
	}
	return l, nil
}

// layerEnergy interpolates one kind's table log-linearly in MACs.
func (l *LUTEstimator) layerEnergy(kind nn.LayerKind, macs int64) float64 {
	grid := l.Grid[kind]
	if len(grid) == 0 || macs <= 0 {
		return 0
	}
	x := float64(macs)
	if x <= float64(grid[0].MACs) {
		// Extrapolate proportionally below the grid.
		return grid[0].EnergyJ * x / float64(grid[0].MACs)
	}
	last := grid[len(grid)-1]
	if x >= float64(last.MACs) {
		return last.EnergyJ * x / float64(last.MACs)
	}
	i := sort.Search(len(grid), func(k int) bool { return float64(grid[k].MACs) >= x })
	lo, hi := grid[i-1], grid[i]
	f := (math.Log(x) - math.Log(float64(lo.MACs))) /
		(math.Log(float64(hi.MACs)) - math.Log(float64(lo.MACs)))
	return lo.EnergyJ + f*(hi.EnergyJ-lo.EnergyJ)
}

// Predict estimates whole-model inference energy.
func (l *LUTEstimator) Predict(macs map[nn.LayerKind]int64) float64 {
	e := l.OverheadJ
	for _, kind := range nn.ComputeKinds() {
		e += l.layerEnergy(kind, macs[kind])
	}
	return e
}
