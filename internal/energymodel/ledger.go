package energymodel

import (
	"solarml/internal/dataset"
	"solarml/internal/dsp"
	"solarml/internal/mcu"
	"solarml/internal/nn"
	"solarml/internal/obs"
	"solarml/internal/obs/energy"
)

// This file bridges the energy models into the joule ledger: each Charge*
// helper computes the model's noise-free energy and books it — to the
// ledger account and, when a live span is passed, to the span's energy_uj
// attribute. The helpers return the energy so callers drain storage with
// exactly the joules they attributed, keeping the ledger and the supercap
// in balance by construction.

// ChargeInference books the layer-wise inference energy of a per-kind MAC
// breakdown under the infer account. led and sp may be nil.
func (c Coefficients) ChargeInference(led *energy.Ledger, sp *obs.Span, macs map[nn.LayerKind]int64) float64 {
	e := c.TrueEnergy(macs)
	led.ChargeSpan(sp, energy.AccountInfer, e)
	return e
}

// ChargeGestureSensing books one gesture capture's sensing energy under the
// sense account. led and sp may be nil.
func ChargeGestureSensing(led *energy.Ledger, sp *obs.Span, p mcu.PowerProfile, cfg dataset.GestureConfig) float64 {
	e := GestureSensingTrue(p, cfg)
	led.ChargeSpan(sp, energy.AccountSense, e)
	return e
}

// ChargeAudioSensing books one audio clip's sensing energy under the sense
// account. led and sp may be nil.
func ChargeAudioSensing(led *energy.Ledger, sp *obs.Span, p mcu.PowerProfile, cfg dsp.FrontEndConfig) float64 {
	e := AudioSensingTrue(p, cfg)
	led.ChargeSpan(sp, energy.AccountSense, e)
	return e
}
