package detect

import (
	"math"
	"testing"
)

func TestTableIIIWindowEnergies(t *testing.T) {
	// The published 5-second-window energy bands (µJ).
	cases := []struct {
		d     Detector
		loMin float64
		hiMax float64
	}{
		{ProximitySensor{}, 40, 800}, // paper: 45–735
		{ToFSensor{}, 60, 1200},      // paper: 70–1150
		{SolarGest{}, 90, 110},       // paper: ≈100
		{NewSolarML(), 8, 12},        // paper: ≈10
	}
	for _, tc := range cases {
		lo, hi := tc.d.WindowEnergy(5)
		loU, hiU := lo*1e6, hi*1e6
		if loU < tc.loMin || hiU > tc.hiMax {
			t.Fatalf("%s window energy [%.1f, %.1f] µJ outside [%v, %v]",
				tc.d.Name(), loU, hiU, tc.loMin, tc.hiMax)
		}
	}
}

func TestTableIIIExactFigures(t *testing.T) {
	ps := ProximitySensor{}
	lo, hi := ps.WindowEnergy(5)
	if math.Abs(lo*1e6-45) > 1 || math.Abs(hi*1e6-735) > 1 {
		t.Fatalf("PS window energy [%.1f, %.1f] µJ, paper 45–735", lo*1e6, hi*1e6)
	}
	tof := ToFSensor{}
	lo, hi = tof.WindowEnergy(5)
	if math.Abs(lo*1e6-70) > 1 || math.Abs(hi*1e6-1150) > 1 {
		t.Fatalf("ToF window energy [%.1f, %.1f] µJ, paper 70–1150", lo*1e6, hi*1e6)
	}
	sg := SolarGest{}
	lo, _ = sg.WindowEnergy(5)
	if math.Abs(lo*1e6-100) > 1 {
		t.Fatalf("SolarGest window energy %.1f µJ, paper ≈100", lo*1e6)
	}
	sml := NewSolarML()
	lo, hi = sml.WindowEnergy(5)
	if lo*1e6 < 9.9 || hi*1e6 > 10.5 {
		t.Fatalf("SolarML window energy [%.2f, %.2f] µJ, paper ≈10", lo*1e6, hi*1e6)
	}
}

func TestSectionVBRatios(t *testing.T) {
	// §V-B: SolarML is ≈10× below SolarGest, ≈7× below ToF, ≈4× below PS.
	smlLo, smlHi := NewSolarML().WindowEnergy(5)
	sml := (smlLo + smlHi) / 2
	sgLo, _ := SolarGest{}.WindowEnergy(5)
	if r := sgLo / sml; math.Abs(r-10) > 1.5 {
		t.Fatalf("SolarGest/SolarML ratio %.1f, paper ≈10", r)
	}
	tofLo, _ := ToFSensor{}.WindowEnergy(5)
	if r := tofLo / sml; math.Abs(r-7) > 1.5 {
		t.Fatalf("ToF/SolarML ratio %.1f, paper ≈7", r)
	}
	psLo, _ := ProximitySensor{}.WindowEnergy(5)
	if r := psLo / sml; math.Abs(r-4.5) > 1.5 {
		t.Fatalf("PS/SolarML ratio %.1f, paper ≈4", r)
	}
}

func TestResponseTimes(t *testing.T) {
	if lo, hi := (NewSolarML()).ResponseTimeS(); lo != 0.005 || hi != 0.005 {
		t.Fatalf("SolarML response [%v, %v], paper 5 ms", lo, hi)
	}
	if lo, _ := (SolarGest{}).ResponseTimeS(); lo < 1 {
		t.Fatal("SolarGest response must exceed 1 s")
	}
}

func TestRanges(t *testing.T) {
	if _, hi := (ToFSensor{}).RangeMM(); hi != 4000 {
		t.Fatal("ToF range")
	}
	if _, hi := (NewSolarML()).RangeMM(); hi != 20 {
		t.Fatal("SolarML range")
	}
}

func TestAllReturnsFourDetectors(t *testing.T) {
	ds := All()
	if len(ds) != 4 {
		t.Fatalf("All() returned %d detectors", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name()] = true
	}
	for _, want := range []string{"PS", "ToF", "SolarGest", "SolarML"} {
		if !names[want] {
			t.Fatalf("missing detector %q", want)
		}
	}
}

func TestDetectEventsFindsHoverPair(t *testing.T) {
	d := NewSolarML()
	const rate = 1000.0
	v2 := make([]float64, 3000)
	for i := range v2 {
		v2[i] = 0.5
	}
	// Hover 1: samples 100–250. Hover 2: samples 2000–2150.
	for i := 100; i < 250; i++ {
		v2[i] = 0.02
	}
	for i := 2000; i < 2150; i++ {
		v2[i] = 0.02
	}
	events := d.DetectEvents(v2, rate, 0.12, 0.05)
	if len(events) != 2 {
		t.Fatalf("found %d events, want 2", len(events))
	}
	if events[0].StartIdx != 100 || events[0].EndIdx != 250 {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].StartIdx != 2000 {
		t.Fatalf("event 1 = %+v", events[1])
	}
}

func TestDetectEventsDebounce(t *testing.T) {
	d := NewSolarML()
	v2 := make([]float64, 1000)
	for i := range v2 {
		v2[i] = 0.5
	}
	for i := 300; i < 310; i++ { // 10 ms glitch at 1 kHz
		v2[i] = 0.02
	}
	if events := d.DetectEvents(v2, 1000, 0.12, 0.05); len(events) != 0 {
		t.Fatalf("glitch should be debounced, got %d events", len(events))
	}
}

func TestDetectEventsOpenEndedHover(t *testing.T) {
	d := NewSolarML()
	v2 := make([]float64, 500)
	for i := range v2 {
		v2[i] = 0.5
	}
	for i := 400; i < 500; i++ { // hover continues past the trace end
		v2[i] = 0.02
	}
	events := d.DetectEvents(v2, 1000, 0.12, 0.05)
	if len(events) != 1 || events[0].EndIdx != 500 {
		t.Fatalf("open-ended hover: %+v", events)
	}
}

func TestDetectEventsPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSolarML().DetectEvents(nil, 0, 0.1, 0.01)
}

func TestStandbyOrdering(t *testing.T) {
	// SolarML must have the lowest standby draw of all detectors.
	sml := NewSolarML().StandbyPowerW()
	for _, d := range All() {
		if d.Name() == "SolarML" {
			continue
		}
		if d.StandbyPowerW() <= sml {
			t.Fatalf("%s standby %.1f µW not above SolarML's %.1f µW",
				d.Name(), d.StandbyPowerW()*1e6, sml*1e6)
		}
	}
}
