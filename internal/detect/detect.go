// Package detect implements the four event-detection mechanisms compared in
// Table III of the paper: an active proximity sensor (PS), a time-of-flight
// sensor (ToF), SolarGest's software hover detection, and SolarML's passive
// MOSFET circuit. Each exposes the same interface so the Table III
// comparison and the Fig 1 energy-distribution study sweep them uniformly.
// The SolarML detector additionally detects events on real simulated
// detector-cell voltage traces.
package detect

import (
	"fmt"

	"solarml/internal/circuit"
)

// Detector describes one event-detection mechanism with the Table III
// metrics. Power figures are device-level (sensor plus any required MCU
// activity attributable to detection).
type Detector interface {
	// Name returns the Table III row label.
	Name() string
	// RangeMM returns the sensing range in millimetres.
	RangeMM() (lo, hi float64)
	// ResponseTimeS returns the detection latency band in seconds.
	ResponseTimeS() (lo, hi float64)
	// StandbyPowerW returns the idle draw while waiting for events.
	StandbyPowerW() float64
	// WorkingPowerW returns the draw band during active detection.
	WorkingPowerW() (lo, hi float64)
	// WindowEnergy returns the energy band consumed when the detector
	// waits waitS seconds and then performs one detection (Table III
	// reports the 5-second window).
	WindowEnergy(waitS float64) (lo, hi float64)
}

// ProximitySensor models the PS of PROS [12]: an IR emitter polled by the
// MCU; detection requires emitting and processing a reflection.
type ProximitySensor struct{}

// Name implements Detector.
func (ProximitySensor) Name() string { return "PS" }

// RangeMM implements Detector.
func (ProximitySensor) RangeMM() (float64, float64) { return 0, 100 }

// ResponseTimeS implements Detector.
func (ProximitySensor) ResponseTimeS() (float64, float64) { return 0.010, 0.700 }

// StandbyPowerW implements Detector.
func (ProximitySensor) StandbyPowerW() float64 { return 7e-6 }

// WorkingPowerW implements Detector.
func (ProximitySensor) WorkingPowerW() (float64, float64) { return 1000e-6, 1000e-6 }

// WindowEnergy implements Detector: standby for the window, then one
// active burst of the response duration.
func (p ProximitySensor) WindowEnergy(waitS float64) (float64, float64) {
	rLo, rHi := p.ResponseTimeS()
	wLo, wHi := p.WorkingPowerW()
	return p.StandbyPowerW()*waitS + wLo*rLo, p.StandbyPowerW()*waitS + wHi*rHi
}

// ToFSensor models the time-of-flight sensor of [17].
type ToFSensor struct{}

// Name implements Detector.
func (ToFSensor) Name() string { return "ToF" }

// RangeMM implements Detector.
func (ToFSensor) RangeMM() (float64, float64) { return 0, 4000 }

// ResponseTimeS implements Detector.
func (ToFSensor) ResponseTimeS() (float64, float64) { return 0.020, 1.0 }

// StandbyPowerW implements Detector: 10–30 µW depending on ranging mode;
// the midpoint is used as the scalar figure.
func (ToFSensor) StandbyPowerW() float64 { return 10e-6 }

// StandbyPowerHighW returns the upper standby band (long-range mode).
func (ToFSensor) StandbyPowerHighW() float64 { return 30e-6 }

// WorkingPowerW implements Detector.
func (ToFSensor) WorkingPowerW() (float64, float64) { return 1000e-6, 1000e-6 }

// WindowEnergy implements Detector.
func (t ToFSensor) WindowEnergy(waitS float64) (float64, float64) {
	rLo, rHi := t.ResponseTimeS()
	wLo, wHi := t.WorkingPowerW()
	return t.StandbyPowerW()*waitS + wLo*rLo, t.StandbyPowerHighW()*waitS + wHi*rHi
}

// SolarGest models the software hover detection of SolarGest [15]: the MCU
// continuously samples the solar-cell signal at low power; a detection
// requires the user to hover for about a second.
type SolarGest struct{}

// Name implements Detector.
func (SolarGest) Name() string { return "SolarGest" }

// RangeMM implements Detector.
func (SolarGest) RangeMM() (float64, float64) { return 0, 20 }

// ResponseTimeS implements Detector: >1 s by design.
func (SolarGest) ResponseTimeS() (float64, float64) { return 1.0, 1.5 }

// StandbyPowerW implements Detector: there is no standby — sampling never
// stops, so the idle draw equals the working draw.
func (SolarGest) StandbyPowerW() float64 { return 20e-6 }

// WorkingPowerW implements Detector.
func (SolarGest) WorkingPowerW() (float64, float64) { return 20e-6, 20e-6 }

// WindowEnergy implements Detector: continuous sampling for the window.
func (s SolarGest) WindowEnergy(waitS float64) (float64, float64) {
	e := s.StandbyPowerW() * waitS
	return e, e
}

// SolarML is the paper's passive detector built on the Fig 5 circuit.
type SolarML struct {
	Circuit *circuit.EventCircuit
}

// NewSolarML returns the passive detector with prototype thresholds.
func NewSolarML() *SolarML { return &SolarML{Circuit: circuit.NewEventCircuit()} }

// Name implements Detector.
func (*SolarML) Name() string { return "SolarML" }

// RangeMM implements Detector.
func (*SolarML) RangeMM() (float64, float64) { return 0, 20 }

// ResponseTimeS implements Detector: the MOSFET switch responds in ≈5 ms.
func (*SolarML) ResponseTimeS() (float64, float64) { return 0.005, 0.005 }

// StandbyPowerW implements Detector.
func (d *SolarML) StandbyPowerW() float64 { return d.Circuit.StandbyPower() }

// WorkingPowerW implements Detector.
func (*SolarML) WorkingPowerW() (float64, float64) { return 7.5e-6, 28e-6 }

// WindowEnergy implements Detector: passive standby plus a 5 ms switch
// event — the ≈10 µJ per 5 s window of Table III.
func (d *SolarML) WindowEnergy(waitS float64) (float64, float64) {
	rLo, rHi := d.ResponseTimeS()
	wLo, wHi := d.WorkingPowerW()
	return d.StandbyPowerW()*waitS + wLo*rLo, d.StandbyPowerW()*waitS + wHi*rHi
}

// Event is a detected hover on the detector cells.
type Event struct {
	// StartIdx and EndIdx are sample indices of the hover edges.
	StartIdx, EndIdx int
}

// DetectEvents finds hover events on a detector-cell voltage trace sampled
// at rateHz: a falling edge through vTrigger starts an event, the following
// rising edge ends it. Events shorter than debounceS are ignored.
func (d *SolarML) DetectEvents(v2 []float64, rateHz, vTrigger, debounceS float64) []Event {
	if rateHz <= 0 {
		panic(fmt.Sprintf("detect: invalid sample rate %v", rateHz))
	}
	minLen := int(debounceS * rateHz)
	var events []Event
	in := false
	start := 0
	for i, v := range v2 {
		if !in && v < vTrigger {
			in = true
			start = i
		} else if in && v >= vTrigger {
			in = false
			if i-start >= minLen {
				events = append(events, Event{StartIdx: start, EndIdx: i})
			}
		}
	}
	if in && len(v2)-start >= minLen {
		events = append(events, Event{StartIdx: start, EndIdx: len(v2)})
	}
	return events
}

// All returns the Table III detector set in row order.
func All() []Detector {
	return []Detector{ProximitySensor{}, ToFSensor{}, SolarGest{}, NewSolarML()}
}
