package detect_test

import (
	"fmt"

	"solarml/internal/detect"
)

// Example compares the four Table III event detectors on a 5-second
// waiting window.
func Example() {
	for _, d := range detect.All() {
		lo, hi := d.WindowEnergy(5)
		fmt.Printf("%-10s %6.1f – %6.1f µJ\n", d.Name(), lo*1e6, hi*1e6)
	}
	// Output:
	// PS           45.0 –  735.0 µJ
	// ToF          70.0 – 1150.0 µJ
	// SolarGest   100.0 –  100.0 µJ
	// SolarML      10.0 –   10.1 µJ
}

// ExampleSolarML_DetectEvents finds hover events on a detector-cell
// voltage trace.
func ExampleSolarML_DetectEvents() {
	d := detect.NewSolarML()
	v2 := make([]float64, 2000)
	for i := range v2 {
		v2[i] = 0.5 // bright, no hover
	}
	for i := 500; i < 700; i++ {
		v2[i] = 0.02 // a 200 ms hover at 1 kHz
	}
	events := d.DetectEvents(v2, 1000, 0.2, 0.05)
	fmt.Printf("%d event from sample %d to %d\n", len(events), events[0].StartIdx, events[0].EndIdx)
	// Output:
	// 1 event from sample 500 to 700
}
