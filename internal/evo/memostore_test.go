package evo_test

// Memo-file tolerant-reader and merge pins, in the obs.ScanTrace style: a
// killed writer's truncated tail, a corrupt line, a version-skewed entry,
// and duplicate fingerprints must all degrade gracefully — skipped and
// counted — while a wrong scope or a non-memo file is a hard error.

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"solarml/internal/evo"
	"solarml/internal/nas"
)

func memoEntryLine(fp uint64, res nas.Result) string {
	return fmt.Sprintf(`{"v":1,"fp":"%016x","res":"%s"}`, fp, hex.EncodeToString(nas.AppendResult(nil, res)))
}

func writeMemoFile(t *testing.T, name string, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	return path
}

const memoHeader = `{"v":1,"kind":"header","scope":"s"}`

func TestMemoStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.memo")
	s, err := evo.OpenMemoStore(path, "s")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	r1 := nas.Result{Accuracy: 0.5, EnergyJ: 1e-3, TotalMACs: 42}
	r2 := nas.Result{Accuracy: 0.75, SensingJ: 2e-4, InferJ: 3e-4, EnergyJ: 5e-4}
	if err := s.Append(1, r1); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s.Append(2, r2); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Re-appending a known fingerprint is a no-op, not a duplicate line.
	if err := s.Append(1, r2); err != nil {
		t.Fatalf("re-append: %v", err)
	}
	s.Close()

	s2, err := evo.OpenMemoStore(path, "s")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d entries, want 2", s2.Len())
	}
	got := s2.Entries()
	if !sameResult(got[1], r1) || !sameResult(got[2], r2) {
		t.Fatalf("reopened entries diverge: %+v", got)
	}
	if st := s2.Stats(); st.Loaded != 2 || st.Skipped != 0 || st.Duplicates != 0 {
		t.Fatalf("stats = %+v, want 2 loaded and nothing skipped", st)
	}
}

func TestMemoStoreTolerantReads(t *testing.T) {
	good := memoEntryLine(7, nas.Result{Accuracy: 0.9, EnergyJ: 1e-3})

	t.Run("truncated tail", func(t *testing.T) {
		// A killed writer leaves a partial final line.
		path := writeMemoFile(t, "m.memo", memoHeader, good, `{"v":1,"fp":"00000000000000`)
		s, err := evo.OpenMemoStore(path, "s")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer s.Close()
		if st := s.Stats(); st.Loaded != 1 || st.Skipped != 1 {
			t.Fatalf("stats = %+v, want 1 loaded / 1 skipped", st)
		}
	})

	t.Run("corrupt middle line", func(t *testing.T) {
		path := writeMemoFile(t, "m.memo", memoHeader, "!!not json!!", good)
		s, err := evo.OpenMemoStore(path, "s")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer s.Close()
		if st := s.Stats(); st.Loaded != 1 || st.Skipped != 1 {
			t.Fatalf("stats = %+v, want 1 loaded / 1 skipped", st)
		}
	})

	t.Run("bad result hex", func(t *testing.T) {
		path := writeMemoFile(t, "m.memo", memoHeader, `{"v":1,"fp":"0000000000000007","res":"zz"}`, good)
		s, err := evo.OpenMemoStore(path, "s")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer s.Close()
		if st := s.Stats(); st.Loaded != 1 || st.Skipped != 1 {
			t.Fatalf("stats = %+v, want 1 loaded / 1 skipped", st)
		}
	})

	t.Run("version skew", func(t *testing.T) {
		skewed := strings.Replace(memoEntryLine(8, nas.Result{Accuracy: 0.1}), `{"v":1`, `{"v":99`, 1)
		path := writeMemoFile(t, "m.memo", memoHeader, skewed, good)
		s, err := evo.OpenMemoStore(path, "s")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer s.Close()
		if st := s.Stats(); st.Loaded != 1 || st.Skipped != 1 {
			t.Fatalf("stats = %+v, want 1 loaded / 1 skipped", st)
		}
	})

	t.Run("duplicate fingerprint", func(t *testing.T) {
		first := memoEntryLine(7, nas.Result{Accuracy: 0.9, EnergyJ: 1e-3})
		second := memoEntryLine(7, nas.Result{Accuracy: 0.1, EnergyJ: 9e-3})
		path := writeMemoFile(t, "m.memo", memoHeader, first, second)
		s, err := evo.OpenMemoStore(path, "s")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer s.Close()
		if st := s.Stats(); st.Loaded != 1 || st.Duplicates != 1 {
			t.Fatalf("stats = %+v, want 1 loaded / 1 duplicate", st)
		}
		if got := s.Entries()[7]; got.Accuracy != 0.9 {
			t.Fatalf("duplicate resolution kept accuracy %v, want the first entry (0.9)", got.Accuracy)
		}
	})
}

func TestMemoStoreHardErrors(t *testing.T) {
	t.Run("scope mismatch", func(t *testing.T) {
		path := writeMemoFile(t, "m.memo", memoHeader)
		if _, err := evo.OpenMemoStore(path, "other-scope"); err == nil {
			t.Fatal("open with the wrong scope succeeded")
		}
	})
	t.Run("not a memo file", func(t *testing.T) {
		path := writeMemoFile(t, "m.memo", `{"v":1,"fp":"0000000000000001","res":""}`)
		if _, err := evo.OpenMemoStore(path, "s"); err == nil {
			t.Fatal("open without a header line succeeded")
		}
	})
	t.Run("header version skew", func(t *testing.T) {
		path := writeMemoFile(t, "m.memo", `{"v":99,"kind":"header","scope":"s"}`)
		if _, err := evo.OpenMemoStore(path, "s"); err == nil {
			t.Fatal("open with an unsupported header version succeeded")
		}
	})
}

func TestMergeMemoFiles(t *testing.T) {
	rA := nas.Result{Accuracy: 0.5, EnergyJ: 1e-3}
	rB := nas.Result{Accuracy: 0.6, EnergyJ: 2e-3}
	rB2 := nas.Result{Accuracy: 0.99, EnergyJ: 9e-3}
	rC := nas.Result{Accuracy: 0.7, EnergyJ: 3e-3}

	src1 := writeMemoFile(t, "a.memo", memoHeader, memoEntryLine(1, rA), memoEntryLine(2, rB))
	// src2 overlaps on fp 2 (with a different result — dst's existing entry
	// must win) and contributes fp 3 plus a corrupt tail to skip.
	src2 := writeMemoFile(t, "b.memo", memoHeader, memoEntryLine(2, rB2), memoEntryLine(3, rC), `{"v":1,"fp":"trunc`)

	dst := filepath.Join(t.TempDir(), "merged.memo")
	added, err := evo.MergeMemoFiles(dst, src1, src2)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if added != 3 {
		t.Fatalf("merge added %d entries, want 3", added)
	}
	s, err := evo.OpenMemoStore(dst, "s")
	if err != nil {
		t.Fatalf("open merged: %v", err)
	}
	defer s.Close()
	got := s.Entries()
	if len(got) != 3 {
		t.Fatalf("merged store has %d entries, want 3", len(got))
	}
	if !sameResult(got[2], rB) {
		t.Fatalf("merge overwrote fp 2 with the later result; first-wins expected")
	}

	// Merging again is idempotent.
	added, err = evo.MergeMemoFiles(dst, src1, src2)
	if err != nil {
		t.Fatalf("re-merge: %v", err)
	}
	if added != 0 {
		t.Fatalf("re-merge added %d entries, want 0", added)
	}

	// Scope conflicts refuse to merge.
	other := writeMemoFile(t, "c.memo", `{"v":1,"kind":"header","scope":"different"}`, memoEntryLine(9, rA))
	if _, err := evo.MergeMemoFiles(dst, other); err == nil {
		t.Fatal("merge across scopes succeeded")
	}
}
