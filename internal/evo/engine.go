package evo

import (
	"fmt"
	"math"
	"time"

	"solarml/internal/nas"
	"solarml/internal/obs"
)

// engine is the stepwise form of one aging-evolution shard. Run drives it
// fill → step×Cycles → finish in one call; the island and checkpoint layers
// drive the same methods with barriers (and snapshots) between steps. All
// mutable search state lives here, which is what makes a shard serializable:
// population, history, bounds, counters, the policy's per-run state, and the
// snapshotable rng are the whole story — evaluation, telemetry, and the
// memo hold no state the Outcome depends on.
type engine struct {
	pol    Policy
	eval   nas.Evaluator
	cfg    Config
	pre    string
	island int // island index, or -1 for single-shard runs

	rng        *RNG
	out        *Outcome
	population []Entry
	accepted   int
	cycle      int // completed phase-2 cycles

	memo  *memoCache
	warm  nas.WarmStartEvaluator
	timed bool
	rec   *obs.Recorder

	search, phase2 obs.Span

	mEvals, mRejects, mErrors, mAccepted, mFailed, mFillRejects *obs.Counter
	hEval, hUtil                                                *obs.Histogram
}

// newEngine validates the config and builds a shard ready to fill. shared,
// when non-nil, is a memo shared between islands; parent, when enabled,
// roots the shard's search span under the island layer's span.
func newEngine(pol Policy, eval nas.Evaluator, cfg Config, shared *memoCache, parent *obs.Span, island int) (*engine, error) {
	if cfg.Population < 2 || cfg.SampleSize < 1 || cfg.SampleSize > cfg.Population {
		return nil, fmt.Errorf("evo: invalid population/sample (%d/%d)", cfg.Population, cfg.SampleSize)
	}
	e := &engine{
		pol: pol, eval: eval, cfg: cfg, pre: pol.Prefix(), island: island,
		rng: NewRNG(cfg.Seed), out: &Outcome{}, rec: cfg.Obs,
	}
	e.mEvals = cfg.Metrics.Counter(e.pre + ".evaluations")
	e.mRejects = cfg.Metrics.Counter(e.pre + ".constraint_rejects")
	e.mErrors = cfg.Metrics.Counter(e.pre + ".eval_errors")
	e.mAccepted = cfg.Metrics.Counter(e.pre + ".children_accepted")
	e.mFailed = cfg.Metrics.Counter(e.pre + ".cycles_without_child")
	e.mFillRejects = cfg.Metrics.Counter("evo.fill_rejects")
	e.hEval = cfg.Metrics.Histogram(e.pre+".eval_seconds", obs.TimeBuckets)
	e.hUtil = cfg.Metrics.Histogram(e.pre+".worker_utilization", obs.RatioBuckets)
	e.memo = shared
	if e.memo == nil && (cfg.Cache || cfg.Memo != nil) {
		e.memo = newMemoCache(cfg.Metrics.Counter("evo.cache_hits"), cfg.Metrics.Counter("evo.cache_misses"))
		e.memo.attach(cfg.Memo)
	}
	if cfg.Compute != nil {
		if cs, ok := eval.(nas.ComputeSettable); ok {
			cs.SetCompute(cfg.Compute)
		}
	}
	e.warm, _ = eval.(nas.WarmStartEvaluator)
	e.timed = e.rec.Enabled() || cfg.Metrics != nil
	attrs := append([]obs.Attr{
		obs.Int("population", cfg.Population), obs.Int("sample", cfg.SampleSize),
		obs.Int("cycles", cfg.Cycles), obs.Int64("seed", cfg.Seed),
		obs.Int("workers", cfg.Workers),
		obs.Str("compute", cfg.Compute.Name()),
		obs.Int("kernel_workers", cfg.Compute.Workers()),
		obs.Bool("cache", e.memo != nil),
	}, pol.SearchAttrs()...)
	if island >= 0 {
		attrs = append(attrs, obs.Int("island", island))
	}
	if parent != nil && parent.Enabled() {
		e.search = parent.Child(e.pre+".search", attrs...)
	} else {
		e.search = e.rec.StartSpan(e.pre+".search", attrs...)
	}
	return e, nil
}

// evalOne scores a single candidate: static constraint check, memo lookup,
// then the evaluator — via EvaluateFrom when the lineage parent is known and
// the evaluator warm-starts (that path bypasses the memo in both directions:
// its result depends on the parent's weights, not just the fingerprint). It
// records no history; callers merge.
func (e *engine) evalOne(c, parent *nas.Candidate, timeIt bool) (Entry, bool) {
	if c == nil {
		e.mRejects.Inc()
		return Entry{}, false
	}
	warmPath := e.warm != nil && parent != nil
	var fp uint64
	if e.memo != nil && !warmPath {
		// The memo lookup runs before the static check: results are only
		// memoized for candidates that passed it and evaluated cleanly, so
		// a hit skips the constraint-check network build as well.
		fp = c.Fingerprint()
		if res, ok := e.memo.get(fp); ok {
			return Entry{Cand: c, Res: res}, true
		}
	}
	if err := e.cfg.Constraints.CheckStatic(c); err != nil {
		e.mRejects.Inc()
		return Entry{}, false
	}
	var t0 time.Time
	if timeIt {
		t0 = time.Now()
	}
	var res nas.Result
	var err error
	if warmPath {
		res, err = e.warm.EvaluateFrom(c, parent)
	} else {
		res, err = e.eval.Evaluate(c)
	}
	if timeIt {
		e.hEval.Observe(time.Since(t0).Seconds())
	}
	if err != nil {
		e.mErrors.Inc()
		return Entry{}, false
	}
	if e.memo != nil && !warmPath {
		e.memo.put(fp, res)
	}
	return Entry{Cand: c, Res: res}, true
}

func (e *engine) record(ent Entry) {
	e.out.Evaluations++
	e.mEvals.Inc()
	e.out.History = append(e.out.History, ent)
}

func (e *engine) evaluate(c, parent *nas.Candidate) (Entry, bool) {
	ent, ok := e.evalOne(c, parent, e.timed)
	if ok {
		e.record(ent)
	}
	return ent, ok
}

// evaluateAll scores a batch, in parallel when configured, recording history
// and returning successes in input order. span scopes the batch in the
// trace hierarchy; from, when non-nil, is the lineage parent of every
// candidate in the batch (the grid-mutation case: sensing neighbours keep
// the parent architecture), so warm-start weight inheritance applies on the
// parallel path exactly as it does sequentially.
func (e *engine) evaluateAll(span *obs.Span, cands []*nas.Candidate, from *nas.Candidate) []Entry {
	if e.cfg.Workers <= 1 || len(cands) <= 1 {
		var ok []Entry
		for _, c := range cands {
			if ent, k := e.evaluate(c, from); k {
				ok = append(ok, ent)
			}
		}
		return ok
	}
	batch := span.Child(e.pre+".eval_batch",
		obs.Int("n", len(cands)), obs.Int("workers", e.cfg.Workers))
	var t0 time.Time
	if e.timed {
		t0 = time.Now()
	}
	type slot struct {
		e    Entry
		ok   bool
		busy time.Duration
	}
	slots := make([]slot, len(cands))
	ForEach(e.cfg.Workers, len(cands), func(i int) {
		var w0 time.Time
		if e.timed {
			w0 = time.Now()
		}
		slots[i].e, slots[i].ok = e.evalOne(cands[i], from, false)
		if e.timed {
			slots[i].busy = time.Since(w0)
		}
	})
	var ok []Entry
	for _, s := range slots {
		if s.ok {
			e.record(s.e)
			ok = append(ok, s.e)
		}
	}
	if e.timed {
		// Utilization: summed worker busy time over the pool's wall-clock
		// capacity for this batch.
		var busy time.Duration
		for _, s := range slots {
			busy += s.busy
			e.hEval.Observe(s.busy.Seconds())
		}
		util := 0.0
		if wall := time.Since(t0).Seconds() * float64(e.cfg.Workers); wall > 0 {
			util = busy.Seconds() / wall
		}
		e.hUtil.Observe(util)
		batch.End(obs.Int("ok", len(ok)), obs.F64("utilization", util))
	}
	return ok
}

// fill runs Phase 1: broad exploration. Each round draws only the
// still-missing candidates, so the rng stream is identical whether the
// batch is evaluated serially or in parallel. On success the policy is
// initialized with the population's energy bounds and the shard is ready
// to step.
func (e *engine) fill() error {
	phase1 := e.search.Child(e.pre + ".phase1")
	e.population = make([]Entry, 0, e.cfg.Population)
	for rounds := 0; len(e.population) < e.cfg.Population; rounds++ {
		if rounds > fillRounds {
			phase1.End(obs.Str("error", "cannot fill population"))
			e.search.End(obs.Str("error", "cannot fill population"))
			return fmt.Errorf("evo: %s cannot fill population of %d under constraints within %d rounds",
				e.pre, e.cfg.Population, fillRounds)
		}
		need := e.cfg.Population - len(e.population)
		batch := make([]*nas.Candidate, need)
		for i := range batch {
			batch[i] = e.pol.Fill(e.rng.Rand)
		}
		got := e.evaluateAll(&phase1, batch, nil)
		e.mFillRejects.Add(int64(need - len(got)))
		e.population = append(e.population, got...)
	}
	e.out.EMin, e.out.EMax = math.Inf(1), math.Inf(-1)
	for _, ent := range e.population {
		if ent.Res.EnergyJ < e.out.EMin {
			e.out.EMin = ent.Res.EnergyJ
		}
		if ent.Res.EnergyJ > e.out.EMax {
			e.out.EMax = ent.Res.EnergyJ
		}
	}
	phase1.End(obs.Int("evaluations", e.out.Evaluations),
		obs.F64("e_min_j", e.out.EMin), obs.F64("e_max_j", e.out.EMax))
	e.cfg.Metrics.Gauge(e.pre + ".e_min_j").Set(e.out.EMin)
	e.cfg.Metrics.Gauge(e.pre + ".e_max_j").Set(e.out.EMax)
	e.pol.Init(e.population, e.out.EMin, e.out.EMax)
	e.startPhase2()
	return nil
}

func (e *engine) startPhase2() {
	e.phase2 = e.search.Child(e.pre + ".phase2")
}

// step runs one aging-evolution cycle: tournament → mutate (or GRIDMUTATE)
// → evaluate → aging replacement.
func (e *engine) step() {
	e.cycle++
	cycle := e.cycle
	// The policy builds the cycle's scorer first (μNAS draws its
	// scalarization weight here), then one Perm runs the tournament:
	// each sampled index is scored exactly once.
	score := e.pol.CycleScore(e.rng.Rand, cycle)
	sampled := e.rng.Perm(len(e.population))[:e.cfg.SampleSize]
	best := sampled[0]
	bestScore := score(e.population[best])
	for _, idx := range sampled[1:] {
		if s := score(e.population[idx]); s > bestScore {
			best, bestScore = idx, s
		}
	}
	parent := e.population[best]

	var child Entry
	ok := false
	grid := e.pol.GridCycle(cycle)
	if grid {
		// GRIDMUTATE: local grid search over the sensing neighbours.
		// Neighbours keep the parent architecture, so they inherit its
		// trained weights when the evaluator warm-starts.
		bestObj := math.Inf(-1)
		for _, ent := range e.evaluateAll(&e.phase2, e.pol.Neighbors(parent.Cand), parent.Cand) {
			if o := score(ent); o > bestObj {
				bestObj, child, ok = o, ent, true
			}
		}
	} else {
		// One architecture morphism, warm-started from the parent's
		// trained weights when the evaluator supports it.
		for tries := 0; tries < mutateTries && !ok; tries++ {
			child, ok = e.evaluate(e.pol.Mutate(e.rng.Rand, parent.Cand), parent.Cand)
		}
	}
	if ok {
		// Aging: append the child, remove the oldest.
		e.population = append(e.population[1:], child)
		e.accepted++
		e.mAccepted.Inc()
		e.pol.Accepted(child)
	} else {
		e.mFailed.Inc()
	}
	if e.rec.Enabled() {
		// One event per cycle: the policy's running best plus churn.
		_, attrs := e.pol.Report(e.out.History)
		e.phase2.Event(e.pre+".cycle", append([]obs.Attr{
			obs.Int("cycle", cycle),
			obs.Bool("grid", grid),
			obs.Bool("replaced", ok),
			obs.Int("evaluations", e.out.Evaluations),
			obs.Int("accepted", e.accepted),
		}, attrs...)...)
	}
}

// finish closes the phase spans and reports the policy's best entry.
func (e *engine) finish() (*Outcome, error) {
	e.phase2.End(obs.Int("accepted", e.accepted), obs.Int("evaluations", e.out.Evaluations))
	best, attrs := e.pol.Report(e.out.History)
	e.out.Best = best
	if e.out.Best.Cand == nil {
		e.search.End(obs.Str("error", "no feasible candidate"))
		return nil, fmt.Errorf("evo: %s found no feasible candidate in %d evaluations", e.pre, e.out.Evaluations)
	}
	e.search.End(append([]obs.Attr{obs.Int("evaluations", e.out.Evaluations)}, attrs...)...)
	return e.out, nil
}

// emigrants deterministically selects the shard's m best population entries
// under the policy's own reporting convention — Report applied to a
// shrinking copy of the population — without consuming random state.
func (e *engine) emigrants(m int) []Entry {
	pool := append([]Entry(nil), e.population...)
	var out []Entry
	for len(out) < m && len(pool) > 0 {
		best, _ := e.pol.Report(pool)
		if best.Cand == nil {
			break
		}
		for j := range pool {
			if pool[j].Cand == best.Cand {
				pool = append(pool[:j], pool[j+1:]...)
				break
			}
		}
		out = append(out, best)
	}
	return out
}

// immigrate applies the aging discipline to incoming migrants: the oldest
// members leave, the migrants join as the youngest. Migrants carry their
// origin-shard evaluations with them — both repo evaluators are
// deterministic per candidate, so re-evaluating would reproduce the same
// Result. They do not re-enter History (their origin shard recorded them).
func (e *engine) immigrate(in []Entry) {
	if len(in) == 0 {
		return
	}
	if len(in) > len(e.population) {
		in = in[:len(e.population)]
	}
	e.population = append(e.population[len(in):], in...)
}
