package evo_test

// Golden seeded-search tests: the values below were captured from the
// standalone (pre-engine) implementations of enas.Search, munas.Search, and
// harvnet.Search on the surrogate evaluator. The engine refactor must
// reproduce every one byte-identically — fingerprint, accuracy, energy,
// evaluation count — regardless of Workers or Cache, because the engine's
// determinism contract says neither may touch the seeded rng stream or the
// evaluation results.

import (
	"math/rand"
	"testing"

	"solarml/internal/enas"
	"solarml/internal/evo"
	"solarml/internal/harvnet"
	"solarml/internal/munas"
	"solarml/internal/nas"
)

// golden is one pinned pre-refactor search result.
type golden struct {
	fp          uint64
	acc, energy float64
	evals, hist int
}

func (g golden) check(t *testing.T, best evo.Entry, evals, hist int) {
	t.Helper()
	if fp := best.Cand.Fingerprint(); fp != g.fp {
		t.Errorf("best fingerprint = %#016x, want %#016x", fp, g.fp)
	}
	if best.Res.Accuracy != g.acc {
		t.Errorf("best accuracy = %.17g, want %.17g", best.Res.Accuracy, g.acc)
	}
	if best.Res.EnergyJ != g.energy {
		t.Errorf("best energy = %.17g, want %.17g", best.Res.EnergyJ, g.energy)
	}
	if evals != g.evals {
		t.Errorf("evaluations = %d, want %d", evals, g.evals)
	}
	if hist != g.hist {
		t.Errorf("history length = %d, want %d", hist, g.hist)
	}
}

// variants runs fn under every engine configuration that must not change the
// outcome: serial, parallel, and parallel with the evaluation cache.
func variants(t *testing.T, fn func(t *testing.T, workers int, cache bool)) {
	t.Run("serial", func(t *testing.T) { fn(t, 0, false) })
	t.Run("workers4", func(t *testing.T) { fn(t, 4, false) })
	t.Run("workers4_cache", func(t *testing.T) { fn(t, 4, true) })
}

func TestGoldenENASGesture(t *testing.T) {
	want := golden{
		fp:     0xdfadecf0716af117,
		acc:    0.72665438639941482,
		energy: 0.0019313699195431936,
		evals:  73, hist: 73,
	}
	const wantEMin, wantEMax = 0.001012309296562452, 0.0044064109896795886
	variants(t, func(t *testing.T, workers int, cache bool) {
		space := nas.GestureSpace()
		eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
		cfg := enas.DefaultConfig(nas.TaskGesture, 0.5)
		cfg.Population, cfg.SampleSize, cfg.Cycles, cfg.SensingEvery, cfg.Seed = 12, 5, 40, 8, 7
		cfg.Workers, cfg.Cache = workers, cache
		out, err := enas.Search(space, eval, cfg)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		want.check(t, out.Best, out.Evaluations, len(out.History))
		if out.EMin != wantEMin || out.EMax != wantEMax {
			t.Errorf("bounds = (%.17g, %.17g), want (%.17g, %.17g)",
				out.EMin, out.EMax, wantEMin, wantEMax)
		}
	})
}

func TestGoldenENASKWS(t *testing.T) {
	want := golden{
		fp:     0x6653251c72d15d4c,
		acc:    0.70589753447168491,
		energy: 0.0075220272437296733,
		evals:  72, hist: 72,
	}
	variants(t, func(t *testing.T, workers int, cache bool) {
		space := nas.KWSSpace()
		eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
		cfg := enas.DefaultConfig(nas.TaskKWS, 1)
		cfg.Population, cfg.SampleSize, cfg.Cycles, cfg.SensingEvery, cfg.Seed = 12, 5, 40, 8, 3
		cfg.Workers, cfg.Cache = workers, cache
		out, err := enas.Search(space, eval, cfg)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		want.check(t, out.Best, out.Evaluations, len(out.History))
	})
}

func TestGoldenMuNASGesture(t *testing.T) {
	want := golden{
		fp:     0x46b3bff9a2d30dab,
		acc:    0.93867023869738375,
		energy: 0.0041798926571642078,
		evals:  52, hist: 52,
	}
	variants(t, func(t *testing.T, workers int, cache bool) {
		space := nas.GestureSpace()
		sensing := space.RandomCandidate(rand.New(rand.NewSource(1)))
		eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
		cfg := munas.DefaultConfig(nas.TaskGesture)
		cfg.Population, cfg.SampleSize, cfg.Cycles, cfg.Seed = 12, 5, 40, 2
		cfg.Workers, cfg.Cache = workers, cache
		out, err := munas.Search(space, sensing, eval, cfg)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		want.check(t, out.BestAccuracy, out.Evaluations, len(out.History))
	})
}

func TestGoldenMuNASKWS(t *testing.T) {
	want := golden{
		fp:     0xc096cf557fc4d0b2,
		acc:    0.8929033359882208,
		energy: 0.017230159529439792,
		evals:  52, hist: 52,
	}
	variants(t, func(t *testing.T, workers int, cache bool) {
		space := nas.KWSSpace()
		sensing := space.RandomCandidate(rand.New(rand.NewSource(5)))
		eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
		cfg := munas.DefaultConfig(nas.TaskKWS)
		cfg.Population, cfg.SampleSize, cfg.Cycles, cfg.Seed = 12, 5, 40, 6
		cfg.Workers, cfg.Cache = workers, cache
		out, err := munas.Search(space, sensing, eval, cfg)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		want.check(t, out.BestAccuracy, out.Evaluations, len(out.History))
	})
}

func TestGoldenHarvNetGesture(t *testing.T) {
	want := golden{
		fp:     0x1ffcb5c0d0ed5779,
		acc:    0.90335822914524744,
		energy: 0.0037052123732975888,
		evals:  52, hist: 52,
	}
	variants(t, func(t *testing.T, workers int, cache bool) {
		space := nas.GestureSpace()
		sensing := space.RandomCandidate(rand.New(rand.NewSource(1)))
		eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
		cfg := harvnet.DefaultConfig(nas.TaskGesture)
		cfg.Population, cfg.SampleSize, cfg.Cycles, cfg.Seed = 12, 5, 40, 2
		cfg.Workers, cfg.Cache = workers, cache
		out, err := harvnet.Search(space, sensing, eval, cfg)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		want.check(t, out.Best, out.Evaluations, len(out.History))
	})
}

// TestCacheInvariantOutcome pins the cache's core guarantee: a cached run
// returns an Outcome identical to an uncached one, entry for entry — hits
// replay the memoized result and still land in History.
func TestCacheInvariantOutcome(t *testing.T) {
	run := func(cache bool) *enas.Outcome {
		space := nas.GestureSpace()
		eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
		cfg := enas.DefaultConfig(nas.TaskGesture, 0.5)
		cfg.Population, cfg.SampleSize, cfg.Cycles, cfg.SensingEvery, cfg.Seed = 12, 5, 40, 8, 7
		cfg.Cache = cache
		out, err := enas.Search(space, eval, cfg)
		if err != nil {
			t.Fatalf("Search(cache=%v): %v", cache, err)
		}
		return out
	}
	cold, cached := run(false), run(true)
	if cold.Evaluations != cached.Evaluations {
		t.Fatalf("evaluations: cache off %d, on %d", cold.Evaluations, cached.Evaluations)
	}
	if len(cold.History) != len(cached.History) {
		t.Fatalf("history: cache off %d entries, on %d", len(cold.History), len(cached.History))
	}
	for i := range cold.History {
		a, b := cold.History[i], cached.History[i]
		if a.Cand.Fingerprint() != b.Cand.Fingerprint() ||
			a.Res.Accuracy != b.Res.Accuracy || a.Res.EnergyJ != b.Res.EnergyJ {
			t.Fatalf("history[%d] diverges with cache on: %+v vs %+v", i, a.Res, b.Res)
		}
	}
	if cold.Best.Cand.Fingerprint() != cached.Best.Cand.Fingerprint() ||
		cold.Best.Res.Accuracy != cached.Best.Res.Accuracy ||
		cold.Best.Res.EnergyJ != cached.Best.Res.EnergyJ {
		t.Fatalf("best diverges with cache on")
	}
}

// TestMuNASParallelMatchesSequential is the baselines' determinism pin:
// Workers 4 must return the same search as Workers 1, history and all.
func TestMuNASParallelMatchesSequential(t *testing.T) {
	run := func(workers int) *munas.Outcome {
		space := nas.GestureSpace()
		sensing := space.RandomCandidate(rand.New(rand.NewSource(1)))
		eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
		cfg := munas.DefaultConfig(nas.TaskGesture)
		cfg.Population, cfg.SampleSize, cfg.Cycles, cfg.Seed = 12, 5, 40, 2
		cfg.Workers = workers
		out, err := munas.Search(space, sensing, eval, cfg)
		if err != nil {
			t.Fatalf("Search(workers=%d): %v", workers, err)
		}
		return out
	}
	seq, par := run(1), run(4)
	if seq.BestAccuracy.Cand.Fingerprint() != par.BestAccuracy.Cand.Fingerprint() {
		t.Fatalf("best candidate differs between Workers 1 and 4")
	}
	if len(seq.History) != len(par.History) {
		t.Fatalf("history: sequential %d entries, parallel %d", len(seq.History), len(par.History))
	}
	for i := range seq.History {
		if seq.History[i].Cand.Fingerprint() != par.History[i].Cand.Fingerprint() {
			t.Fatalf("history[%d] differs between Workers 1 and 4", i)
		}
	}
}
