package evo

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"solarml/internal/bytecodec"
	"solarml/internal/nas"
)

// memoLineVersion versions the store's line format. Lines carrying a
// different version are skipped (and counted), so a store written by a
// newer revision degrades to a partial cache instead of poisoning results.
const memoLineVersion = 1

// memoLine is one JSONL record of a memo store file. The first line of a
// file is the header (Kind == "header") carrying the store's scope; every
// other line is an entry: a candidate fingerprint plus the hex of the
// versioned binary nas.Result encoding. Binary-in-hex keeps the float bits
// exact (and NaN-safe) where JSON numbers would be a second codec to trust.
type memoLine struct {
	V     int    `json:"v"`
	Kind  string `json:"kind,omitempty"`
	Scope string `json:"scope,omitempty"`
	FP    string `json:"fp,omitempty"`
	Res   string `json:"res,omitempty"`
}

// MemoStats summarizes a tolerant read of a memo file.
type MemoStats struct {
	// Loaded counts entries accepted into the store.
	Loaded int
	// Skipped counts unparseable or version-skewed lines (a truncated
	// tail from a killed run is the common case).
	Skipped int
	// Duplicates counts well-formed entries whose fingerprint was already
	// present; the first occurrence wins (both repo evaluators are
	// deterministic per fingerprint, so later duplicates carry the same
	// result — keeping the first makes merges order-independent).
	Duplicates int
}

// MemoStore is the persistent, mergeable backing of the evaluation memo: an
// append-only JSONL file of fingerprint→Result records that island shards
// share within a run and that separate runs reconcile with MergeMemoFiles.
// The reader is tolerant in the obs.ScanTrace style — corrupt or truncated
// lines are skipped and counted, never fatal — because the writer may have
// been killed mid-line; the scope header is the one hard gate, since a memo
// is only sound for the evaluator configuration it was computed under.
type MemoStore struct {
	mu    sync.Mutex
	path  string
	scope string
	f     *os.File
	w     *bufio.Writer
	known map[uint64]nas.Result
	stats MemoStats
}

// OpenMemoStore opens (or creates) the store at path for the given
// evaluator scope. An existing file must carry the same scope; its entries
// are loaded tolerantly. New entries are appended line-buffered and flushed
// per append, so a killed run loses at most the line being written.
func OpenMemoStore(path, scope string) (*MemoStore, error) {
	s := &MemoStore{path: path, scope: scope, known: make(map[uint64]nas.Result)}
	data, err := os.ReadFile(path)
	fresh := false
	switch {
	case os.IsNotExist(err):
		fresh = true
	case err != nil:
		return nil, err
	case len(data) == 0:
		fresh = true
	default:
		gotScope, entries, stats, rerr := readMemoData(data)
		if rerr != nil {
			return nil, fmt.Errorf("evo: memo %s: %w", path, rerr)
		}
		if gotScope != scope {
			return nil, fmt.Errorf("evo: memo %s has scope %q, want %q (stale cache for a different evaluator configuration)", path, gotScope, scope)
		}
		s.known = entries
		s.stats = stats
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.f, s.w = f, bufio.NewWriter(f)
	if fresh {
		if err := s.writeLine(memoLine{V: memoLineVersion, Kind: "header", Scope: scope}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// Stats returns the tolerant-read statistics of the opening scan.
func (s *MemoStore) Stats() MemoStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of known entries.
func (s *MemoStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.known)
}

// Scope returns the evaluator scope the store was opened with.
func (s *MemoStore) Scope() string { return s.scope }

// Entries returns a copy of the known fingerprint→Result map.
func (s *MemoStore) Entries() map[uint64]nas.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]nas.Result, len(s.known))
	for fp, r := range s.known {
		out[fp] = r
	}
	return out
}

// Append persists one evaluation. Re-appending a known fingerprint is a
// no-op (first result wins), so concurrent shards racing on the same
// candidate cost one duplicate lookup, not duplicate lines.
func (s *MemoStore) Append(fp uint64, res nas.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.known[fp]; ok {
		return nil
	}
	s.known[fp] = res
	return s.writeLine(memoLine{
		V:   memoLineVersion,
		FP:  fmt.Sprintf("%016x", fp),
		Res: hex.EncodeToString(nas.AppendResult(nil, res)),
	})
}

// writeLine marshals, writes, and flushes one record. Callers hold mu (or
// are still single-threaded in Open).
func (s *MemoStore) writeLine(l memoLine) error {
	b, err := json.Marshal(l)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return s.w.Flush()
}

// Close flushes and closes the file handle. The store must not be used
// after Close.
func (s *MemoStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// readMemoData scans a memo file tolerantly: the header line must parse and
// lead (a store whose scope cannot be verified is rejected, not guessed),
// after which corrupt, truncated, or version-skewed lines are skipped and
// counted while every well-formed entry loads.
func readMemoData(data []byte) (scope string, entries map[uint64]nas.Result, stats MemoStats, err error) {
	entries = make(map[uint64]nas.Result)
	sawHeader := false
	for len(data) > 0 {
		line := data
		if i := indexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if len(line) == 0 {
			continue
		}
		var l memoLine
		if json.Unmarshal(line, &l) != nil {
			if !sawHeader {
				return "", nil, stats, fmt.Errorf("not a memo file (unparseable header line)")
			}
			stats.Skipped++
			continue
		}
		if !sawHeader {
			if l.Kind != "header" {
				return "", nil, stats, fmt.Errorf("not a memo file (first line is not a header)")
			}
			if l.V != memoLineVersion {
				return "", nil, stats, fmt.Errorf("unsupported memo version %d (have %d)", l.V, memoLineVersion)
			}
			scope, sawHeader = l.Scope, true
			continue
		}
		if l.Kind == "header" {
			// A second header (concatenated files): scopes must agree.
			if l.Scope != scope {
				return "", nil, stats, fmt.Errorf("conflicting scopes %q and %q in one memo file", scope, l.Scope)
			}
			continue
		}
		if l.V != memoLineVersion {
			stats.Skipped++
			continue
		}
		var fp uint64
		if _, serr := fmt.Sscanf(l.FP, "%016x", &fp); serr != nil || len(l.FP) != 16 {
			stats.Skipped++
			continue
		}
		raw, herr := hex.DecodeString(l.Res)
		if herr != nil {
			stats.Skipped++
			continue
		}
		r := bytecodec.NewReader(raw)
		res, rerr := nas.ReadResult(r)
		if rerr != nil || r.Len() != 0 {
			stats.Skipped++
			continue
		}
		if _, ok := entries[fp]; ok {
			stats.Duplicates++
			continue
		}
		entries[fp] = res
		stats.Loaded++
	}
	if !sawHeader {
		return "", nil, stats, fmt.Errorf("not a memo file (no header line)")
	}
	return scope, entries, stats, nil
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// MergeMemoFiles folds the entries of the src memo files into dst,
// reconciling across runs: scopes must agree (dst adopts the first src's
// scope when it does not exist yet), duplicate fingerprints keep dst's
// existing result, and tolerant reads apply to every input. Returns how
// many entries were added to dst.
func MergeMemoFiles(dst string, srcs ...string) (added int, err error) {
	scope := ""
	type srcSet struct {
		scope   string
		entries map[uint64]nas.Result
	}
	var sets []srcSet
	for _, src := range srcs {
		data, rerr := os.ReadFile(src)
		if rerr != nil {
			return added, rerr
		}
		sscope, entries, _, rerr := readMemoData(data)
		if rerr != nil {
			return added, fmt.Errorf("evo: memo %s: %w", src, rerr)
		}
		if scope == "" {
			scope = sscope
		} else if sscope != scope {
			return added, fmt.Errorf("evo: memo %s has scope %q, want %q", src, sscope, scope)
		}
		sets = append(sets, srcSet{scope: sscope, entries: entries})
	}
	if data, rerr := os.ReadFile(dst); rerr == nil && len(data) > 0 {
		dscope, _, _, derr := readMemoData(data)
		if derr != nil {
			return added, fmt.Errorf("evo: memo %s: %w", dst, derr)
		}
		scope = dscope
	} else if scope == "" {
		return 0, fmt.Errorf("evo: merge needs at least one readable input")
	}
	store, err := OpenMemoStore(dst, scope)
	if err != nil {
		return added, err
	}
	defer store.Close()
	for _, set := range sets {
		if set.scope != scope {
			return added, fmt.Errorf("evo: memo scope %q does not match destination %q", set.scope, scope)
		}
		// Deterministic append order: sorted fingerprints per source.
		fps := make([]uint64, 0, len(set.entries))
		for fp := range set.entries {
			fps = append(fps, fp)
		}
		sortUint64s(fps)
		for _, fp := range fps {
			if _, ok := store.known[fp]; ok {
				continue
			}
			if err := store.Append(fp, set.entries[fp]); err != nil {
				return added, err
			}
			added++
		}
	}
	return added, nil
}

func sortUint64s(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
