package evo

// Internal checkpoint codec pins: encode→decode→encode byte-equality over a
// real filled-and-stepped engine pair, RNG snapshot/restore stream equality,
// and decoder rejection of corrupted containers.

import (
	"bytes"
	"math/rand"
	"testing"

	"solarml/internal/bytecodec"
	"solarml/internal/nas"
	"solarml/internal/obs"
)

// ckptPolicy is a minimal accuracy-objective policy for internal tests.
type ckptPolicy struct {
	NASGenome
	StatelessState
	space *nas.Space
}

func (p *ckptPolicy) Prefix() string                            { return "ckpt" }
func (p *ckptPolicy) Fill(rng *rand.Rand) *nas.Candidate        { return p.space.RandomCandidate(rng) }
func (p *ckptPolicy) SearchAttrs() []obs.Attr                   { return nil }
func (p *ckptPolicy) Init([]Entry, float64, float64)            {}
func (p *ckptPolicy) GridCycle(int) bool                        { return false }
func (p *ckptPolicy) Neighbors(*nas.Candidate) []*nas.Candidate { return nil }
func (p *ckptPolicy) Accepted(Entry)                            {}

func (p *ckptPolicy) CycleScore(*rand.Rand, int) func(Entry) float64 {
	return func(e Entry) float64 { return e.Res.Accuracy }
}

func (p *ckptPolicy) Mutate(rng *rand.Rand, parent *nas.Candidate) *nas.Candidate {
	return p.space.MutateArch(rng, parent)
}

func (p *ckptPolicy) Report(history []Entry) (Entry, []obs.Attr) {
	var best Entry
	for _, e := range history {
		if best.Cand == nil || e.Res.Accuracy > best.Res.Accuracy {
			best = e
		}
	}
	return best, nil
}

func ckptEngines(t *testing.T, steps int) ([]*engine, checkpointHeader, Config) {
	t.Helper()
	cfg := Config{
		Population: 8, SampleSize: 3, Cycles: 20, Seed: 11,
		Constraints: nas.DefaultConstraints(nas.TaskGesture),
	}
	h := checkpointHeader{
		Prefix: "ckpt", Population: 8, SampleSize: 3, Cycles: 20,
		Seed: 11, Islands: 2, Interval: 0, Migrants: 1,
	}
	var engines []*engine
	for i := 0; i < 2; i++ {
		icfg := cfg
		icfg.Seed = cfg.Seed + int64(i)
		e, err := newEngine(&ckptPolicy{space: nas.GestureSpace()},
			nas.NewSurrogateEvaluator(nas.NewTruthEnergy()), icfg, nil, nil, i)
		if err != nil {
			t.Fatalf("newEngine: %v", err)
		}
		if err := e.fill(); err != nil {
			t.Fatalf("fill: %v", err)
		}
		for e.cycle < steps {
			e.step()
		}
		engines = append(engines, e)
	}
	return engines, h, cfg
}

// TestCheckpointEncodeDecodeEncode pins the codec's pure-function property:
// restoring a checkpoint into fresh engines and re-encoding reproduces the
// original container byte for byte.
func TestCheckpointEncodeDecodeEncode(t *testing.T) {
	engines, h, cfg := ckptEngines(t, 7)
	data, err := encodeCheckpoint(h, engines)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, payloads, err := decodeCheckpoint(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != h {
		t.Fatalf("decoded header %+v, want %+v", got, h)
	}
	restored := make([]*engine, len(payloads))
	for i, p := range payloads {
		icfg := cfg
		icfg.Seed = cfg.Seed + int64(i)
		e, err := newEngine(&ckptPolicy{space: nas.GestureSpace()},
			nas.NewSurrogateEvaluator(nas.NewTruthEnergy()), icfg, nil, nil, i)
		if err != nil {
			t.Fatalf("newEngine: %v", err)
		}
		if err := e.restoreState(bytecodec.NewReader(p)); err != nil {
			t.Fatalf("restoreState island %d: %v", i, err)
		}
		restored[i] = e
	}
	data2, err := encodeCheckpoint(h, restored)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("re-encoded checkpoint differs: %d vs %d bytes", len(data), len(data2))
	}
}

// TestCheckpointRejectsCorruption pins the container checks: a flipped bit,
// a truncated file, and a wrong magic must all fail decode loudly.
func TestCheckpointRejectsCorruption(t *testing.T) {
	engines, h, _ := ckptEngines(t, 3)
	data, err := encodeCheckpoint(h, engines)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if _, _, err := decodeCheckpoint(flipped); err == nil {
		t.Error("decode accepted a flipped bit")
	}
	if _, _, err := decodeCheckpoint(data[:len(data)-9]); err == nil {
		t.Error("decode accepted a truncated container")
	}
	bad := append([]byte(nil), data...)
	copy(bad, "NOTACKPT")
	if _, _, err := decodeCheckpoint(bad); err == nil {
		t.Error("decode accepted a wrong magic")
	}
}

// TestRNGSnapshotRestore pins the counting-source contract: the RNG stream
// equals math/rand's for the same seed, and restoring a snapshot resumes
// the stream exactly — including after Perm and Float64 draws.
func TestRNGSnapshotRestore(t *testing.T) {
	ref := rand.New(rand.NewSource(42))
	r := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a, b := ref.Int63(), r.Int63(); a != b {
			t.Fatalf("draw %d: RNG %d != math/rand %d", i, b, a)
		}
	}
	ref.Perm(13)
	r.Perm(13)
	ref.Float64()
	r.Float64()

	st := r.Snapshot()
	r2 := RestoreRNG(st)
	for i := 0; i < 100; i++ {
		a, b := r.Int63(), r2.Int63()
		ra := ref.Int63()
		if a != b || a != ra {
			t.Fatalf("post-restore draw %d: original %d, restored %d, reference %d", i, a, b, ra)
		}
	}
}

// FuzzDecodeCheckpoint: arbitrary bytes must never panic the container
// decoder, and a valid container re-encodes losslessly via the CRC check.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add([]byte("SOLARCKP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payloads, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		if len(payloads) != h.Islands {
			t.Fatalf("decode returned %d payloads for %d islands", len(payloads), h.Islands)
		}
	})
}
