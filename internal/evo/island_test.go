package evo_test

// Island-layer pins: a single island reproduces the single-shard golden
// search exactly; multi-island runs are independent of Workers; a run
// stopped at a checkpoint and resumed is byte-identical to an uninterrupted
// one; and the persistent memo never changes an outcome.

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"solarml/internal/enas"
	"solarml/internal/evo"
	"solarml/internal/nas"
)

// sameResult compares results through the versioned codec, which covers the
// MACsByKind map (not directly comparable) deterministically.
func sameResult(a, b nas.Result) bool {
	return bytes.Equal(nas.AppendResult(nil, a), nas.AppendResult(nil, b))
}

// Pinned values for the three-island golden run (captured from the initial
// implementation; any divergence means the migrant-merge order or the
// per-island PRNG streams changed).
const (
	goldenIslandFP         = uint64(0x525f32898d5047d7)
	goldenIslandEvals      = 241
	goldenIslandMigrations = 9
)

// islandENASConfig is the eNAS gesture golden configuration (seed 7) lifted
// into the island driver.
func islandENASConfig(islands, workers, interval int) evo.IslandConfig {
	return evo.IslandConfig{
		Config: evo.Config{
			Population: 12, SampleSize: 5, Cycles: 40, Seed: 7,
			Constraints: nas.DefaultConstraints(nas.TaskGesture),
			Workers:     workers,
		},
		Islands:           islands,
		MigrationInterval: interval,
		Migrants:          1,
	}
}

func runIslandENAS(t *testing.T, icfg evo.IslandConfig) *evo.IslandOutcome {
	t.Helper()
	out, err := evo.RunIslands(newENASPolicy(t), newSurrogate, icfg)
	if err != nil {
		t.Fatalf("RunIslands: %v", err)
	}
	return out
}

func newENASPolicy(t *testing.T) func() evo.Policy {
	t.Helper()
	space := nas.GestureSpace()
	cfg := enas.DefaultConfig(nas.TaskGesture, 0.5)
	cfg.Population, cfg.SampleSize, cfg.Cycles, cfg.SensingEvery, cfg.Seed = 12, 5, 40, 8, 7
	return func() evo.Policy {
		p, err := enas.NewPolicy(space, cfg)
		if err != nil {
			t.Fatalf("NewPolicy: %v", err)
		}
		return p
	}
}

func newSurrogate() nas.Evaluator {
	return nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
}

// sameOutcome compares two island outcomes entry-for-entry: global best,
// evaluation counts, and every island's full history.
func sameOutcome(t *testing.T, what string, a, b *evo.IslandOutcome) {
	t.Helper()
	if a.Best.Cand.Fingerprint() != b.Best.Cand.Fingerprint() {
		t.Errorf("%s: best fingerprint %#016x vs %#016x",
			what, a.Best.Cand.Fingerprint(), b.Best.Cand.Fingerprint())
	}
	if a.Evaluations != b.Evaluations {
		t.Errorf("%s: evaluations %d vs %d", what, a.Evaluations, b.Evaluations)
	}
	if a.Migrations != b.Migrations {
		t.Errorf("%s: migrations %d vs %d", what, a.Migrations, b.Migrations)
	}
	if len(a.Islands) != len(b.Islands) {
		t.Fatalf("%s: island count %d vs %d", what, len(a.Islands), len(b.Islands))
	}
	for i := range a.Islands {
		ha, hb := a.Islands[i].History, b.Islands[i].History
		if len(ha) != len(hb) {
			t.Fatalf("%s: island %d history %d vs %d entries", what, i, len(ha), len(hb))
		}
		for j := range ha {
			if ha[j].Cand.Fingerprint() != hb[j].Cand.Fingerprint() ||
				!sameResult(ha[j].Res, hb[j].Res) {
				t.Fatalf("%s: island %d history[%d] diverges", what, i, j)
			}
		}
	}
}

// TestIslandsSingleMatchesGolden pins that one island with no migration is
// the same search as the single-shard engine: the eNAS gesture golden values
// hold unchanged under the island driver.
func TestIslandsSingleMatchesGolden(t *testing.T) {
	want := golden{
		fp:     0xdfadecf0716af117,
		acc:    0.72665438639941482,
		energy: 0.0019313699195431936,
		evals:  73, hist: 73,
	}
	out := runIslandENAS(t, islandENASConfig(1, 0, 0))
	want.check(t, out.Best, out.Evaluations, len(out.Islands[0].History))
}

// TestIslandsWorkerIndependence pins the migration barrier discipline:
// islands interact only at barriers, merged in index order, so the complete
// multi-island outcome is identical for any Workers setting.
func TestIslandsWorkerIndependence(t *testing.T) {
	seq := runIslandENAS(t, islandENASConfig(3, 1, 10))
	par := runIslandENAS(t, islandENASConfig(3, 4, 10))
	sameOutcome(t, "workers 1 vs 4", seq, par)
	if seq.Migrations == 0 {
		t.Error("no migrations happened; the barrier path went untested")
	}
}

// TestGoldenIslandsENASGesture pins the multi-island merge order itself: a
// fixed seed, three islands, and a migration every 10 cycles must reproduce
// these values on any machine and worker count.
func TestGoldenIslandsENASGesture(t *testing.T) {
	out := runIslandENAS(t, islandENASConfig(3, 4, 10))
	if got := out.Best.Cand.Fingerprint(); got != goldenIslandFP {
		t.Errorf("best fingerprint = %#016x, want %#016x", got, goldenIslandFP)
	}
	if out.Evaluations != goldenIslandEvals {
		t.Errorf("evaluations = %d, want %d", out.Evaluations, goldenIslandEvals)
	}
	if out.Migrations != goldenIslandMigrations {
		t.Errorf("migrations = %d, want %d", out.Migrations, goldenIslandMigrations)
	}
}

// TestResumeMatchesUninterrupted is the checkpoint layer's central pin: stop
// a two-island run at a mid-search checkpoint barrier, resume it from disk,
// and the combined outcome must match an uninterrupted run of the same
// configuration entry for entry.
func TestResumeMatchesUninterrupted(t *testing.T) {
	full := runIslandENAS(t, islandENASConfig(2, 4, 10))

	ckpt := filepath.Join(t.TempDir(), "search.ckpt")
	stopCfg := islandENASConfig(2, 4, 10)
	stopCfg.Checkpoint = &evo.CheckpointSpec{Path: ckpt, Every: 5, StopAfterCycle: 20}
	if _, err := evo.RunIslands(newENASPolicy(t), newSurrogate, stopCfg); !errors.Is(err, evo.ErrStopped) {
		t.Fatalf("stopped run returned %v, want ErrStopped", err)
	}

	resumeCfg := islandENASConfig(2, 4, 10)
	resumeCfg.Checkpoint = &evo.CheckpointSpec{Path: ckpt, Every: 5}
	resumeCfg.Resume = true
	resumed := runIslandENAS(t, resumeCfg)

	// Migrations before the stop happened in the first process; only count
	// invariants that span both processes.
	if full.Best.Cand.Fingerprint() != resumed.Best.Cand.Fingerprint() {
		t.Errorf("best after resume = %#016x, want %#016x",
			resumed.Best.Cand.Fingerprint(), full.Best.Cand.Fingerprint())
	}
	if !sameResult(full.Best.Res, resumed.Best.Res) {
		t.Errorf("best result after resume = %+v, want %+v", resumed.Best.Res, full.Best.Res)
	}
	for i := range full.Islands {
		ha, hb := full.Islands[i].History, resumed.Islands[i].History
		// The resumed run's history includes everything restored from the
		// checkpoint, so totals must match exactly.
		if len(ha) != len(hb) {
			t.Fatalf("island %d: history %d vs %d entries after resume", i, len(ha), len(hb))
		}
		for j := range ha {
			if ha[j].Cand.Fingerprint() != hb[j].Cand.Fingerprint() || !sameResult(ha[j].Res, hb[j].Res) {
				t.Fatalf("island %d history[%d] diverges after resume", i, j)
			}
		}
	}
}

// TestResumeRejectsConfigSkew pins the config echo: a checkpoint resumed
// under a different search configuration must be refused, not replayed.
func TestResumeRejectsConfigSkew(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "search.ckpt")
	cfg := islandENASConfig(2, 1, 10)
	cfg.Checkpoint = &evo.CheckpointSpec{Path: ckpt, Every: 5, StopAfterCycle: 5}
	if _, err := evo.RunIslands(newENASPolicy(t), newSurrogate, cfg); !errors.Is(err, evo.ErrStopped) {
		t.Fatalf("stopped run returned %v, want ErrStopped", err)
	}
	skew := islandENASConfig(2, 1, 10)
	skew.Seed = 8
	skew.Checkpoint = &evo.CheckpointSpec{Path: ckpt, Every: 5}
	skew.Resume = true
	if _, err := evo.RunIslands(newENASPolicy(t), newSurrogate, skew); err == nil || errors.Is(err, evo.ErrStopped) {
		t.Fatalf("resume with a different seed returned %v, want a config-skew error", err)
	}
}

// TestMemoStoreInvariantOutcome pins the persistent memo's guarantee: a run
// backed by the store — including a second run replaying the first's entries
// — returns the same outcome as a run without it.
func TestMemoStoreInvariantOutcome(t *testing.T) {
	bare := runIslandENAS(t, islandENASConfig(2, 1, 10))

	memoPath := filepath.Join(t.TempDir(), "eval.memo")
	runWithMemo := func() *evo.IslandOutcome {
		store, err := evo.OpenMemoStore(memoPath, "island-test")
		if err != nil {
			t.Fatalf("OpenMemoStore: %v", err)
		}
		defer store.Close()
		cfg := islandENASConfig(2, 1, 10)
		cfg.Memo = store
		return runIslandENAS(t, cfg)
	}
	first := runWithMemo()
	sameOutcome(t, "memo cold", bare, first)

	store, err := evo.OpenMemoStore(memoPath, "island-test")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	loaded := store.Len()
	store.Close()
	if loaded == 0 {
		t.Fatal("store is empty after a memo-backed run")
	}

	second := runWithMemo()
	sameOutcome(t, "memo warm", bare, second)
}
