package evo

import (
	"fmt"
	"math/rand"

	"solarml/internal/bytecodec"
	"solarml/internal/nas"
	"solarml/internal/obs"
)

// Policy is what distinguishes one search algorithm from another once the
// aging-evolution mechanics are shared: where candidates come from, how they
// are scored, how they mutate, and which entry the search reports as best.
// A Policy instance belongs to exactly one Run — it may carry per-run state
// (normalization bounds, a running energy scale) — and its methods are
// called from the engine goroutine only, never from evaluation workers.
//
// rng discipline: only Fill, CycleScore, and Mutate may consume the rng they
// are handed, and CycleScore runs before the cycle's tournament Perm. Any
// other draw would shift the seeded stream and break reproducibility.
type Policy interface {
	// Prefix names the algorithm for spans and metrics ("enas", "munas",
	// "harvnet"): the engine emits <prefix>.search/.phase1/.phase2 spans,
	// <prefix>.cycle events, and <prefix>.* counters.
	Prefix() string
	// Fill draws one population candidate. A nil return counts as a
	// constraint reject (the fixed-sensing baselines return nil when a
	// random architecture does not materialize under their sensing
	// configuration).
	Fill(rng *rand.Rand) *nas.Candidate
	// SearchAttrs returns algorithm-specific attributes for the root
	// search span (eNAS: λ and the grid period).
	SearchAttrs() []obs.Attr
	// Init runs once after the population fill with the filled population
	// and its energy bounds — the Phase 1 normalization bounds policies
	// score against.
	Init(population []Entry, eMin, eMax float64)
	// CycleScore returns the cycle's tournament scorer. It runs before the
	// tournament's Perm and is the one place a policy may consume per-cycle
	// randomness (μNAS draws its scalarization weight here). The returned
	// function also ranks grid-mutation batches, so it must embed any
	// infeasibility penalty.
	CycleScore(rng *rand.Rand, cycle int) func(Entry) float64
	// GridCycle reports whether this cycle takes a sensing grid step
	// (eNAS's GRIDMUTATE every R cycles) instead of an architecture
	// morphism. Fixed-sensing policies always return false.
	GridCycle(cycle int) bool
	// Neighbors enumerates the sensing grid around the parent; called only
	// when GridCycle is true.
	Neighbors(parent *nas.Candidate) []*nas.Candidate
	// Mutate applies one architecture morphism to the parent.
	Mutate(rng *rand.Rand, parent *nas.Candidate) *nas.Candidate
	// Accepted observes a child that survived evaluation and entered the
	// population (μNAS updates its running energy scale here).
	Accepted(e Entry)
	// Report returns the policy's current best over the history — each
	// algorithm's reporting convention: best objective for eNAS, best
	// feasible accuracy for μNAS, best A/E for HarvNet — plus the
	// telemetry attributes describing it. The engine calls it once per
	// cycle while recording, once at the end of the search, and (island
	// runs) on population slices to select migrants deterministically.
	Report(history []Entry) (Entry, []obs.Attr)

	// EncodeGenome serializes one of the policy's candidates for
	// checkpoints; DecodeGenome inverts it. The encoding must be a pure
	// function of the candidate (encode→decode→encode byte-identical) and
	// versioned, so a checkpoint from a different search-space revision is
	// rejected instead of misparsed. The repo adapters embed NASGenome,
	// which delegates to the shared nas candidate codec.
	EncodeGenome(c *nas.Candidate) ([]byte, error)
	DecodeGenome(data []byte) (*nas.Candidate, error)

	// MarshalState serializes the policy's mutable per-run state beyond
	// what Init re-derives from the restored population and bounds (μNAS's
	// running energy scale; nil for stateless policies). On resume the
	// engine calls Init first, then UnmarshalState with the checkpointed
	// bytes.
	MarshalState() []byte
	UnmarshalState(data []byte) error
}

// NASGenome implements the Policy genome codec over the shared nas
// candidate encoding. All three repo adapters embed it: their genomes are
// joint sensing+architecture candidates, so one versioned codec covers
// eNAS, μNAS, and HarvNet alike.
type NASGenome struct{}

// EncodeGenome implements Policy.
func (NASGenome) EncodeGenome(c *nas.Candidate) ([]byte, error) {
	return nas.AppendCandidate(nil, c), nil
}

// DecodeGenome implements Policy.
func (NASGenome) DecodeGenome(data []byte) (*nas.Candidate, error) {
	r := bytecodec.NewReader(data)
	c, err := nas.ReadCandidate(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("evo: %d trailing bytes after genome", r.Len())
	}
	return c, nil
}

// StatelessState implements no-op MarshalState/UnmarshalState for policies
// whose Init call fully restores them (eNAS, HarvNet).
type StatelessState struct{}

// MarshalState implements Policy.
func (StatelessState) MarshalState() []byte { return nil }

// UnmarshalState implements Policy.
func (StatelessState) UnmarshalState(data []byte) error {
	if len(data) != 0 {
		return fmt.Errorf("evo: unexpected %d-byte state for a stateless policy", len(data))
	}
	return nil
}

// FixedSensing returns a Fill source that draws a random architecture from
// the space but keeps the given sensing configuration — the candidate
// source of the fixed-sensing baselines (μNAS and HarvNet search the
// architecture only). It returns nil when the pair does not materialize,
// which the engine counts as a reject.
func FixedSensing(space *nas.Space, sensing *nas.Candidate) func(*rand.Rand) *nas.Candidate {
	return func(rng *rand.Rand) *nas.Candidate {
		c := space.RandomCandidate(rng)
		fixed := sensing.Clone()
		fixed.Arch = c.Arch
		if fixed.Rebind() != nil {
			return nil
		}
		return fixed
	}
}
