// Package evo is the shared aging-evolution engine under the repo's three
// searches (eNAS, μNAS, HarvNet). The engine owns everything the paper's
// comparisons need to hold constant for fairness: population fill with a
// unified retry budget, tournament selection that scores each sampled
// candidate exactly once, the mutation/aging-replacement loop, deterministic
// parallel evaluation (worker pool with input-order merge), warm-start
// lineage routing, constraint handling, compute-context installation, obs
// spans/metrics, and the opt-in fingerprint-keyed evaluation cache. What
// differs between algorithms — the objective, the candidate source, the
// mutation schedule (including eNAS's GRIDMUTATE-every-R), and the reporting
// convention — lives behind the Policy interface, implemented by the thin
// adapters in internal/enas, internal/munas, and internal/harvnet.
//
// Determinism contract: the engine consumes the seeded rng only through
// Policy.Fill, Policy.CycleScore, one rand.Perm per tournament, and
// Policy.Mutate — never from evaluation, telemetry, or the cache — and
// parallel batches merge results in input order. A seeded run therefore
// returns a byte-identical Outcome for any Workers count, with telemetry on
// or off, and with the cache on or off (provided the evaluator is
// deterministic per candidate, which both repo evaluators are on the
// cold-start path).
package evo

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"solarml/internal/compute"
	"solarml/internal/nas"
	"solarml/internal/obs"
)

// Entry pairs a candidate with its evaluation. The search packages alias
// this type, so entries flow between the engine and the adapters unchanged.
type Entry struct {
	Cand *nas.Candidate
	Res  nas.Result
}

// fillRounds caps the population-fill retry loop: each round draws only the
// still-missing candidates, so 200 rounds means at least 200 consecutive
// all-reject batches before the engine gives up. This replaces the two
// budgets the searches used to disagree on (eNAS: 200 rounds; baselines:
// Population×200 single draws).
const fillRounds = 200

// mutateTries caps the per-cycle architecture-mutation attempts (Algorithm 1
// retries a rejected morphism rather than skipping the cycle).
const mutateTries = 16

// Config holds the algorithm-independent engine settings. The per-algorithm
// knobs (λ, grid period, sensing configuration, …) live in the Policy.
type Config struct {
	Population int
	SampleSize int
	Cycles     int
	Seed       int64
	Constraints nas.Constraints
	// Workers sets the evaluation parallelism for the population fill and
	// grid-mutation batches (≤1 means sequential). Results merge in
	// generation order, so the search stays deterministic for a given seed
	// as long as the evaluator itself is deterministic.
	Workers int
	// Compute, when set, is installed on the evaluator (if it implements
	// nas.ComputeSettable) before the fill, so candidate training runs on
	// the configured kernel backend. Budget it against Workers with
	// compute.BudgetWorkers.
	Compute *compute.Context
	// Obs, when set, receives the search telemetry: a <prefix>.search span
	// wrapping <prefix>.phase1/<prefix>.phase2 sub-spans, one <prefix>.cycle
	// event per evolution cycle, and one <prefix>.eval_batch span per
	// parallel batch, where <prefix> is Policy.Prefix(). Telemetry never
	// consumes random state.
	Obs *obs.Recorder
	// Metrics, when set, accumulates <prefix>.* search counters and
	// histograms plus the engine-shared evo.fill_rejects, evo.cache_hits,
	// and evo.cache_misses counters.
	Metrics *obs.Registry
	// Cache enables the evaluation memo: results are memoized per
	// nas.Candidate.Fingerprint() and repeat visits (aging evolution and
	// grid mutation revisit configurations constantly) skip the evaluator.
	// Cached entries still append to History and count toward Evaluations,
	// so a cached run returns an Outcome identical to an uncached one; the
	// savings show up in wall-clock and in the evo.cache_* counters. The
	// cache is bypassed on the warm-start path, where results legitimately
	// depend on the parent's trained weights.
	Cache bool
}

// Outcome is the result of one engine run.
type Outcome struct {
	// Best is the policy's reported best entry (objective for eNAS, highest
	// feasible accuracy for μNAS, best A/E for HarvNet).
	Best Entry
	// History holds every evaluated candidate in evaluation order.
	History []Entry
	// EMin and EMax are the energy bounds of the filled population — the
	// Phase 1 normalization bounds of Algorithm 1.
	EMin, EMax float64
	// Evaluations counts scored candidates (cache hits included, so the
	// count is cache-invariant).
	Evaluations int
}

// Run executes aging evolution under the policy: fill the population, then
// Cycles rounds of tournament → mutate → evaluate → aging replacement.
func Run(pol Policy, eval nas.Evaluator, cfg Config) (*Outcome, error) {
	if cfg.Population < 2 || cfg.SampleSize < 1 || cfg.SampleSize > cfg.Population {
		return nil, fmt.Errorf("evo: invalid population/sample (%d/%d)", cfg.Population, cfg.SampleSize)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &Outcome{}
	pre := pol.Prefix()
	rec := cfg.Obs

	var (
		mEvals       = cfg.Metrics.Counter(pre + ".evaluations")
		mRejects     = cfg.Metrics.Counter(pre + ".constraint_rejects")
		mErrors      = cfg.Metrics.Counter(pre + ".eval_errors")
		mAccepted    = cfg.Metrics.Counter(pre + ".children_accepted")
		mFailed      = cfg.Metrics.Counter(pre + ".cycles_without_child")
		mFillRejects = cfg.Metrics.Counter("evo.fill_rejects")
		hEval        = cfg.Metrics.Histogram(pre+".eval_seconds", obs.TimeBuckets)
		hUtil        = cfg.Metrics.Histogram(pre+".worker_utilization", obs.RatioBuckets)
	)
	var memo *memoCache
	if cfg.Cache {
		memo = newMemoCache(cfg.Metrics.Counter("evo.cache_hits"), cfg.Metrics.Counter("evo.cache_misses"))
	}
	if cfg.Compute != nil {
		if cs, ok := eval.(nas.ComputeSettable); ok {
			cs.SetCompute(cfg.Compute)
		}
	}
	timed := rec.Enabled() || cfg.Metrics != nil
	search := rec.StartSpan(pre+".search", append([]obs.Attr{
		obs.Int("population", cfg.Population), obs.Int("sample", cfg.SampleSize),
		obs.Int("cycles", cfg.Cycles), obs.Int64("seed", cfg.Seed),
		obs.Int("workers", cfg.Workers),
		obs.Str("compute", cfg.Compute.Name()),
		obs.Int("kernel_workers", cfg.Compute.Workers()),
		obs.Bool("cache", cfg.Cache),
	}, pol.SearchAttrs()...)...)

	warm, _ := eval.(nas.WarmStartEvaluator)
	// evalOne scores a single candidate: static constraint check, memo
	// lookup, then the evaluator — via EvaluateFrom when the lineage parent
	// is known and the evaluator warm-starts (that path bypasses the memo in
	// both directions: its result depends on the parent's weights, not just
	// the fingerprint). It records no history; callers merge.
	evalOne := func(c, parent *nas.Candidate, timeIt bool) (Entry, bool) {
		if c == nil {
			mRejects.Inc()
			return Entry{}, false
		}
		warmPath := warm != nil && parent != nil
		var fp uint64
		if memo != nil && !warmPath {
			// The memo lookup runs before the static check: results are only
			// memoized for candidates that passed it and evaluated cleanly, so
			// a hit skips the constraint-check network build as well.
			fp = c.Fingerprint()
			if res, ok := memo.get(fp); ok {
				return Entry{Cand: c, Res: res}, true
			}
		}
		if err := cfg.Constraints.CheckStatic(c); err != nil {
			mRejects.Inc()
			return Entry{}, false
		}
		var t0 time.Time
		if timeIt {
			t0 = time.Now()
		}
		var res nas.Result
		var err error
		if warmPath {
			res, err = warm.EvaluateFrom(c, parent)
		} else {
			res, err = eval.Evaluate(c)
		}
		if timeIt {
			hEval.Observe(time.Since(t0).Seconds())
		}
		if err != nil {
			mErrors.Inc()
			return Entry{}, false
		}
		if memo != nil && !warmPath {
			memo.put(fp, res)
		}
		return Entry{Cand: c, Res: res}, true
	}
	record := func(e Entry) {
		out.Evaluations++
		mEvals.Inc()
		out.History = append(out.History, e)
	}
	evaluate := func(c, parent *nas.Candidate) (Entry, bool) {
		e, ok := evalOne(c, parent, timed)
		if ok {
			record(e)
		}
		return e, ok
	}
	// evaluateAll scores a batch, in parallel when configured, recording
	// history and returning successes in input order. span scopes the batch
	// in the trace hierarchy; from, when non-nil, is the lineage parent of
	// every candidate in the batch (the grid-mutation case: sensing
	// neighbours keep the parent architecture), so warm-start weight
	// inheritance applies on the parallel path exactly as it does
	// sequentially.
	evaluateAll := func(span *obs.Span, cands []*nas.Candidate, from *nas.Candidate) []Entry {
		if cfg.Workers <= 1 || len(cands) <= 1 {
			var ok []Entry
			for _, c := range cands {
				if e, k := evaluate(c, from); k {
					ok = append(ok, e)
				}
			}
			return ok
		}
		batch := span.Child(pre+".eval_batch",
			obs.Int("n", len(cands)), obs.Int("workers", cfg.Workers))
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		type slot struct {
			e    Entry
			ok   bool
			busy time.Duration
		}
		slots := make([]slot, len(cands))
		ForEach(cfg.Workers, len(cands), func(i int) {
			var w0 time.Time
			if timed {
				w0 = time.Now()
			}
			slots[i].e, slots[i].ok = evalOne(cands[i], from, false)
			if timed {
				slots[i].busy = time.Since(w0)
			}
		})
		var ok []Entry
		for _, s := range slots {
			if s.ok {
				record(s.e)
				ok = append(ok, s.e)
			}
		}
		if timed {
			// Utilization: summed worker busy time over the pool's
			// wall-clock capacity for this batch.
			var busy time.Duration
			for _, s := range slots {
				busy += s.busy
				hEval.Observe(s.busy.Seconds())
			}
			util := 0.0
			if wall := time.Since(t0).Seconds() * float64(cfg.Workers); wall > 0 {
				util = busy.Seconds() / wall
			}
			hUtil.Observe(util)
			batch.End(obs.Int("ok", len(ok)), obs.F64("utilization", util))
		}
		return ok
	}

	// Phase 1: broad exploration. Each round draws only the still-missing
	// candidates, so the rng stream is identical whether the batch is
	// evaluated serially or in parallel.
	phase1 := search.Child(pre + ".phase1")
	population := make([]Entry, 0, cfg.Population)
	for rounds := 0; len(population) < cfg.Population; rounds++ {
		if rounds > fillRounds {
			phase1.End(obs.Str("error", "cannot fill population"))
			search.End(obs.Str("error", "cannot fill population"))
			return nil, fmt.Errorf("evo: %s cannot fill population of %d under constraints within %d rounds",
				pre, cfg.Population, fillRounds)
		}
		need := cfg.Population - len(population)
		batch := make([]*nas.Candidate, need)
		for i := range batch {
			batch[i] = pol.Fill(rng)
		}
		got := evaluateAll(&phase1, batch, nil)
		mFillRejects.Add(int64(need - len(got)))
		population = append(population, got...)
	}
	out.EMin, out.EMax = math.Inf(1), math.Inf(-1)
	for _, e := range population {
		if e.Res.EnergyJ < out.EMin {
			out.EMin = e.Res.EnergyJ
		}
		if e.Res.EnergyJ > out.EMax {
			out.EMax = e.Res.EnergyJ
		}
	}
	phase1.End(obs.Int("evaluations", out.Evaluations),
		obs.F64("e_min_j", out.EMin), obs.F64("e_max_j", out.EMax))
	cfg.Metrics.Gauge(pre + ".e_min_j").Set(out.EMin)
	cfg.Metrics.Gauge(pre + ".e_max_j").Set(out.EMax)
	pol.Init(population, out.EMin, out.EMax)

	// Phase 2: aging evolution.
	phase2 := search.Child(pre + ".phase2")
	accepted := 0
	for cycle := 1; cycle <= cfg.Cycles; cycle++ {
		// The policy builds the cycle's scorer first (μNAS draws its
		// scalarization weight here), then one Perm runs the tournament:
		// each sampled index is scored exactly once.
		score := pol.CycleScore(rng, cycle)
		sampled := rng.Perm(len(population))[:cfg.SampleSize]
		best := sampled[0]
		bestScore := score(population[best])
		for _, idx := range sampled[1:] {
			if s := score(population[idx]); s > bestScore {
				best, bestScore = idx, s
			}
		}
		parent := population[best]

		var child Entry
		ok := false
		grid := pol.GridCycle(cycle)
		if grid {
			// GRIDMUTATE: local grid search over the sensing neighbours.
			// Neighbours keep the parent architecture, so they inherit its
			// trained weights when the evaluator warm-starts.
			bestObj := math.Inf(-1)
			for _, e := range evaluateAll(&phase2, pol.Neighbors(parent.Cand), parent.Cand) {
				if o := score(e); o > bestObj {
					bestObj, child, ok = o, e, true
				}
			}
		} else {
			// One architecture morphism, warm-started from the parent's
			// trained weights when the evaluator supports it.
			for tries := 0; tries < mutateTries && !ok; tries++ {
				child, ok = evaluate(pol.Mutate(rng, parent.Cand), parent.Cand)
			}
		}
		if ok {
			// Aging: append the child, remove the oldest.
			population = append(population[1:], child)
			accepted++
			mAccepted.Inc()
			pol.Accepted(child)
		} else {
			mFailed.Inc()
		}
		if rec.Enabled() {
			// One event per cycle: the policy's running best plus churn.
			_, attrs := pol.Report(out.History)
			phase2.Event(pre+".cycle", append([]obs.Attr{
				obs.Int("cycle", cycle),
				obs.Bool("grid", grid),
				obs.Bool("replaced", ok),
				obs.Int("evaluations", out.Evaluations),
				obs.Int("accepted", accepted),
			}, attrs...)...)
		}
	}
	phase2.End(obs.Int("accepted", accepted), obs.Int("evaluations", out.Evaluations))

	best, attrs := pol.Report(out.History)
	out.Best = best
	if out.Best.Cand == nil {
		search.End(obs.Str("error", "no feasible candidate"))
		return nil, fmt.Errorf("evo: %s found no feasible candidate in %d evaluations", pre, out.Evaluations)
	}
	search.End(append([]obs.Attr{obs.Int("evaluations", out.Evaluations)}, attrs...)...)
	return out, nil
}
