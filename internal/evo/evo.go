// Package evo is the shared aging-evolution engine under the repo's three
// searches (eNAS, μNAS, HarvNet). The engine owns everything the paper's
// comparisons need to hold constant for fairness: population fill with a
// unified retry budget, tournament selection that scores each sampled
// candidate exactly once, the mutation/aging-replacement loop, deterministic
// parallel evaluation (worker pool with input-order merge), warm-start
// lineage routing, constraint handling, compute-context installation, obs
// spans/metrics, and the opt-in fingerprint-keyed evaluation cache. What
// differs between algorithms — the objective, the candidate source, the
// mutation schedule (including eNAS's GRIDMUTATE-every-R), and the reporting
// convention — lives behind the Policy interface, implemented by the thin
// adapters in internal/enas, internal/munas, and internal/harvnet.
//
// The engine is layered for scale:
//
//   - The serializable core (engine.go, rng.go, checkpoint.go) runs one
//     shard stepwise — fill, then one cycle at a time — over a snapshotable
//     PRNG, so a search checkpoints to disk at any cycle boundary and
//     resumes bit-identically.
//   - The island layer (island.go) fans N shards out over concurrent
//     workers with periodic deterministic migrant exchange; merges happen
//     in island-index order at barriers, so results are independent of
//     worker count and scheduling.
//   - The evaluation memo (cache.go, memostore.go) is optionally backed by
//     a persistent append-only store that shards share within a run and
//     that Merge reconciles across runs.
//
// Determinism contract: the engine consumes the seeded rng only through
// Policy.Fill, Policy.CycleScore, one rand.Perm per tournament, and
// Policy.Mutate — never from evaluation, telemetry, or the cache — and
// parallel batches merge results in input order. A seeded run therefore
// returns a byte-identical Outcome for any Workers count, with telemetry on
// or off, and with the cache on or off (provided the evaluator is
// deterministic per candidate, which both repo evaluators are on the
// cold-start path). Checkpoint/resume and the island layer preserve the
// contract: a resumed search replays the exact PRNG stream, and migrations
// happen only at barriers, in index order.
package evo

import (
	"solarml/internal/compute"
	"solarml/internal/nas"
	"solarml/internal/obs"
)

// Entry pairs a candidate with its evaluation. The search packages alias
// this type, so entries flow between the engine and the adapters unchanged.
type Entry struct {
	Cand *nas.Candidate
	Res  nas.Result
}

// fillRounds caps the population-fill retry loop: each round draws only the
// still-missing candidates, so 200 rounds means at least 200 consecutive
// all-reject batches before the engine gives up. This replaces the two
// budgets the searches used to disagree on (eNAS: 200 rounds; baselines:
// Population×200 single draws).
const fillRounds = 200

// mutateTries caps the per-cycle architecture-mutation attempts (Algorithm 1
// retries a rejected morphism rather than skipping the cycle).
const mutateTries = 16

// Config holds the algorithm-independent engine settings. The per-algorithm
// knobs (λ, grid period, sensing configuration, …) live in the Policy.
type Config struct {
	Population  int
	SampleSize  int
	Cycles      int
	Seed        int64
	Constraints nas.Constraints
	// Workers sets the evaluation parallelism for the population fill and
	// grid-mutation batches (≤1 means sequential). Results merge in
	// generation order, so the search stays deterministic for a given seed
	// as long as the evaluator itself is deterministic.
	Workers int
	// Compute, when set, is installed on the evaluator (if it implements
	// nas.ComputeSettable) before the fill, so candidate training runs on
	// the configured kernel backend. Budget it against Workers with
	// compute.BudgetWorkers.
	Compute *compute.Context
	// Obs, when set, receives the search telemetry: a <prefix>.search span
	// wrapping <prefix>.phase1/<prefix>.phase2 sub-spans, one <prefix>.cycle
	// event per evolution cycle, and one <prefix>.eval_batch span per
	// parallel batch, where <prefix> is Policy.Prefix(). Telemetry never
	// consumes random state.
	Obs *obs.Recorder
	// Metrics, when set, accumulates <prefix>.* search counters and
	// histograms plus the engine-shared evo.fill_rejects, evo.cache_hits,
	// evo.cache_misses, evo.migrations, evo.checkpoints, and
	// evo.checkpoint_* counters/histograms.
	Metrics *obs.Registry
	// Cache enables the evaluation memo: results are memoized per
	// nas.Candidate.Fingerprint() and repeat visits (aging evolution and
	// grid mutation revisit configurations constantly) skip the evaluator.
	// Cached entries still append to History and count toward Evaluations,
	// so a cached run returns an Outcome identical to an uncached one; the
	// savings show up in wall-clock and in the evo.cache_* counters. The
	// cache is bypassed on the warm-start path, where results legitimately
	// depend on the parent's trained weights.
	Cache bool
	// Memo, when set, backs the evaluation memo with a persistent
	// append-only store (implies Cache): entries loaded from the store
	// replay without touching the evaluator, new evaluations append to it,
	// and island shards share it within a run. The store's scope string
	// guards configuration skew — results are only trusted for the
	// evaluator configuration they were computed under, which is safe
	// because both repo evaluators are pure functions of the candidate
	// fingerprint on the cold-start path.
	Memo *MemoStore
}

// Outcome is the result of one engine run.
type Outcome struct {
	// Best is the policy's reported best entry (objective for eNAS, highest
	// feasible accuracy for μNAS, best A/E for HarvNet).
	Best Entry
	// History holds every evaluated candidate in evaluation order.
	History []Entry
	// EMin and EMax are the energy bounds of the filled population — the
	// Phase 1 normalization bounds of Algorithm 1.
	EMin, EMax float64
	// Evaluations counts scored candidates (cache hits included, so the
	// count is cache-invariant).
	Evaluations int
}

// Run executes aging evolution under the policy: fill the population, then
// Cycles rounds of tournament → mutate → evaluate → aging replacement.
func Run(pol Policy, eval nas.Evaluator, cfg Config) (*Outcome, error) {
	e, err := newEngine(pol, eval, cfg, nil, nil, -1)
	if err != nil {
		return nil, err
	}
	if err := e.fill(); err != nil {
		return nil, err
	}
	for e.cycle < e.cfg.Cycles {
		e.step()
	}
	return e.finish()
}
