package evo

import (
	"sync"

	"solarml/internal/nas"
	"solarml/internal/obs"
)

// memoCache memoizes evaluation results per candidate fingerprint. Aging
// evolution and grid mutation revisit configurations constantly, and both
// repo evaluators are deterministic per candidate on the cold-start path
// (the surrogate's noise and the trainer's init seed both derive from the
// fingerprint), so replaying a memoized Result is indistinguishable from
// re-evaluating — the cache changes wall-clock, never the Outcome. The
// engine never consults it on the warm-start path.
//
// The map is unbounded: a search performs at most Population + Cycles ×
// max(len(neighbors), mutateTries) evaluations and a Result is a few
// hundred bytes, so even paper-scale sweeps stay in the low megabytes.
type memoCache struct {
	mu     sync.Mutex
	res    map[uint64]nas.Result
	store  *MemoStore
	hits   *obs.Counter
	misses *obs.Counter
}

func newMemoCache(hits, misses *obs.Counter) *memoCache {
	return &memoCache{res: make(map[uint64]nas.Result), hits: hits, misses: misses}
}

// attach backs the cache with a persistent store: entries the store loaded
// from disk are primed into the map (so prior runs' evaluations replay as
// hits), and every future put appends to the store. A nil store is a no-op,
// which keeps the Cache-only path allocation-identical to before.
func (m *memoCache) attach(s *MemoStore) {
	if s == nil {
		return
	}
	m.mu.Lock()
	m.store = s
	for fp, r := range s.Entries() {
		m.res[fp] = r
	}
	m.mu.Unlock()
}

func (m *memoCache) get(fp uint64) (nas.Result, bool) {
	m.mu.Lock()
	r, ok := m.res[fp]
	m.mu.Unlock()
	if ok {
		m.hits.Inc()
	} else {
		m.misses.Inc()
	}
	return r, ok
}

func (m *memoCache) put(fp uint64, r nas.Result) {
	m.mu.Lock()
	m.res[fp] = r
	store := m.store
	m.mu.Unlock()
	if store != nil {
		// Persistence is best-effort: a full disk must not abort a search
		// whose in-memory state is still sound. The store records its own
		// dedup, so concurrent shards racing on one fingerprint are fine.
		_ = store.Append(fp, r)
	}
}
