package evo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"solarml/internal/bytecodec"
	"solarml/internal/nas"
	"solarml/internal/obs"
)

// checkpointMagic leads every checkpoint file; checkpointVersion versions
// the container. Engine-state payloads carry the nas genome codec version
// implicitly (every genome is versioned), so a search-space revision is
// rejected at decode, not misparsed.
const (
	checkpointMagic   = "SOLARCKP"
	checkpointVersion = 1
)

// ErrStopped is returned by RunIslands when CheckpointSpec.StopAfterCycle
// asked the run to halt at a checkpoint barrier instead of finishing. The
// written checkpoint is complete; a -resume run continues bit-identically.
var ErrStopped = errors.New("evo: search stopped at checkpoint")

// CheckpointSpec configures periodic checkpointing of an island run.
type CheckpointSpec struct {
	// Path is the checkpoint file. Writes are atomic (temp file + rename in
	// the same directory), so a kill mid-write leaves the previous
	// checkpoint intact.
	Path string
	// Every is the cycle period between checkpoints. A checkpoint is also
	// written right after the population fill (cycle 0), so a kill during
	// early cycles never repeats Phase 1.
	Every int
	// StopAfterCycle, when positive, stops the run gracefully (ErrStopped)
	// at the first checkpoint barrier at or past this cycle — the
	// deterministic stand-in for kill-testing resume in CI, where a real
	// SIGKILL would race the cycle loop.
	StopAfterCycle int
}

// appendState serializes the shard's complete mutable state: the rng
// snapshot, bounds, counters, population and history (genomes via the
// policy's codec, results via the nas result codec), and the policy's own
// per-run state. Population entries are stored as history indices — the
// population is always a subset of history on the originating shard or a
// migrant recorded by another shard, so migrated entries are stored inline
// with a sentinel index.
func (e *engine) appendState(b []byte) ([]byte, error) {
	st := e.rng.Snapshot()
	b = bytecodec.AppendVarint(b, st.Seed)
	b = bytecodec.AppendUvarint(b, st.Draws)
	b = bytecodec.AppendF64(b, e.out.EMin)
	b = bytecodec.AppendF64(b, e.out.EMax)
	b = bytecodec.AppendUvarint(b, uint64(e.out.Evaluations))
	b = bytecodec.AppendUvarint(b, uint64(e.accepted))
	b = bytecodec.AppendUvarint(b, uint64(e.cycle))
	b = bytecodec.AppendUvarint(b, uint64(len(e.out.History)))
	for _, ent := range e.out.History {
		g, err := e.pol.EncodeGenome(ent.Cand)
		if err != nil {
			return nil, err
		}
		b = bytecodec.AppendBytes(b, g)
		b = bytecodec.AppendBytes(b, nas.AppendResult(nil, ent.Res))
	}
	b = bytecodec.AppendUvarint(b, uint64(len(e.population)))
	for _, ent := range e.population {
		g, err := e.pol.EncodeGenome(ent.Cand)
		if err != nil {
			return nil, err
		}
		b = bytecodec.AppendBytes(b, g)
		b = bytecodec.AppendBytes(b, nas.AppendResult(nil, ent.Res))
	}
	b = bytecodec.AppendBytes(b, e.pol.MarshalState())
	return b, nil
}

// restoreState rebuilds the shard from a checkpointed payload and leaves it
// ready to step: rng replayed to the snapshotted draw count, history and
// population decoded through the policy's genome codec, the policy
// re-initialized (Init with the restored population and bounds, then
// UnmarshalState with its checkpointed blob), and the phase-2 span opened
// with a resumed marker.
func (e *engine) restoreState(r *bytecodec.Reader) error {
	seed := r.Varint()
	draws := r.Uvarint()
	e.out.EMin = r.F64()
	e.out.EMax = r.F64()
	e.out.Evaluations = int(r.Uvarint())
	e.accepted = int(r.Uvarint())
	e.cycle = int(r.Uvarint())
	readEntries := func(what string, limit uint64) ([]Entry, error) {
		n := r.Uvarint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if n > limit {
			return nil, fmt.Errorf("implausible %s length %d", what, n)
		}
		out := make([]Entry, 0, n)
		for i := uint64(0); i < n; i++ {
			g := r.Bytes()
			resBytes := r.Bytes()
			if r.Err() != nil {
				return nil, r.Err()
			}
			c, err := e.pol.DecodeGenome(g)
			if err != nil {
				return nil, err
			}
			rr := bytecodec.NewReader(resBytes)
			res, err := nas.ReadResult(rr)
			if err != nil {
				return nil, err
			}
			if rr.Len() != 0 {
				return nil, fmt.Errorf("%d trailing bytes after %s result", rr.Len(), what)
			}
			out = append(out, Entry{Cand: c, Res: res})
		}
		return out, nil
	}
	hist, err := readEntries("history", 1<<24)
	if err != nil {
		return err
	}
	e.out.History = hist
	pop, err := readEntries("population", 1<<20)
	if err != nil {
		return err
	}
	state := r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	if len(pop) != e.cfg.Population {
		return fmt.Errorf("checkpointed population %d does not match configured %d", len(pop), e.cfg.Population)
	}
	e.population = pop
	e.rng = RestoreRNG(RNGState{Seed: seed, Draws: draws})
	e.pol.Init(e.population, e.out.EMin, e.out.EMax)
	if err := e.pol.UnmarshalState(append([]byte(nil), state...)); err != nil {
		return err
	}
	e.search.Event(e.pre+".resume",
		obs.Int("cycle", e.cycle), obs.Int("evaluations", e.out.Evaluations))
	e.startPhase2()
	return nil
}

// checkpointHeader is the config echo every checkpoint carries; resume
// refuses a checkpoint whose search configuration differs from the run's,
// since the PRNG replay would silently diverge.
type checkpointHeader struct {
	Prefix     string
	Population int
	SampleSize int
	Cycles     int
	Seed       int64
	Islands    int
	Interval   int
	Migrants   int
}

func (h checkpointHeader) append(b []byte) []byte {
	b = bytecodec.AppendString(b, h.Prefix)
	b = bytecodec.AppendInt(b, h.Population)
	b = bytecodec.AppendInt(b, h.SampleSize)
	b = bytecodec.AppendInt(b, h.Cycles)
	b = bytecodec.AppendVarint(b, h.Seed)
	b = bytecodec.AppendInt(b, h.Islands)
	b = bytecodec.AppendInt(b, h.Interval)
	b = bytecodec.AppendInt(b, h.Migrants)
	return b
}

func readCheckpointHeader(r *bytecodec.Reader) checkpointHeader {
	return checkpointHeader{
		Prefix:     r.String(),
		Population: r.Int(),
		SampleSize: r.Int(),
		Cycles:     r.Int(),
		Seed:       r.Varint(),
		Islands:    r.Int(),
		Interval:   r.Int(),
		Migrants:   r.Int(),
	}
}

// encodeCheckpoint builds a complete checkpoint: magic, container version,
// config echo, one state payload per island, and a CRC32 (IEEE) trailer over
// everything before it.
func encodeCheckpoint(h checkpointHeader, engines []*engine) ([]byte, error) {
	b := append([]byte(nil), checkpointMagic...)
	b = bytecodec.AppendUvarint(b, checkpointVersion)
	b = h.append(b)
	for _, e := range engines {
		st, err := e.appendState(nil)
		if err != nil {
			return nil, err
		}
		b = bytecodec.AppendBytes(b, st)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// decodeCheckpoint verifies the container (magic, version, CRC) and returns
// the config echo plus the per-island state payloads. Payload bytes alias
// data; callers decode before data goes away.
func decodeCheckpoint(data []byte) (checkpointHeader, [][]byte, error) {
	var h checkpointHeader
	if len(data) < len(checkpointMagic)+4 || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return h, nil, fmt.Errorf("not a checkpoint file")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return h, nil, fmt.Errorf("checksum mismatch (truncated or corrupted checkpoint)")
	}
	r := bytecodec.NewReader(body[len(checkpointMagic):])
	if v := r.Uvarint(); r.Err() == nil && v != checkpointVersion {
		return h, nil, fmt.Errorf("unknown checkpoint version %d (have %d)", v, checkpointVersion)
	}
	h = readCheckpointHeader(r)
	if err := r.Err(); err != nil {
		return h, nil, err
	}
	if h.Islands < 1 || h.Islands > 1<<16 {
		return h, nil, fmt.Errorf("implausible island count %d", h.Islands)
	}
	payloads := make([][]byte, h.Islands)
	for i := range payloads {
		payloads[i] = r.Bytes()
	}
	if err := r.Err(); err != nil {
		return h, nil, err
	}
	if r.Len() != 0 {
		return h, nil, fmt.Errorf("%d trailing bytes after island states", r.Len())
	}
	return h, payloads, nil
}

// writeCheckpointFile writes data atomically: a temp file in the target
// directory, fsync, then rename over the destination.
func writeCheckpointFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
