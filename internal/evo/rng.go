package evo

import "math/rand"

// RNG is the engine's snapshotable pseudo-random source. It produces exactly
// the stream of rand.New(rand.NewSource(seed)) — the golden seeded searches
// depend on that — while counting every draw the underlying generator makes,
// so its full state serializes to sixteen bytes: (seed, draws). Restoring
// replays the counted draws against a fresh stdlib source, which is cheap
// (one 64-bit add per draw; a paper-scale search makes a few thousand) and
// immune to stdlib internals: no reflection into rngSource, no copied state
// tables, and the Go 1 compatibility promise pins the stream itself.
//
// The embedded *rand.Rand is the engine-facing API — policies keep their
// *rand.Rand signatures — and is safe to snapshot at any point where no
// Rand method is mid-flight, because rand.Rand buffers nothing on the
// Int63/Uint64 path (only Read, which the engine never calls, keeps state
// outside the Source).
type RNG struct {
	*rand.Rand
	src  *countingSource
	seed int64
}

// RNGState is a serializable RNG snapshot.
type RNGState struct {
	Seed  int64
	Draws uint64
}

// countingSource wraps the stdlib source and counts generator steps. Int63
// and Uint64 both advance the lagged-Fibonacci generator by exactly one
// step, so one counter covers every rand.Rand method the engine uses.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (s *countingSource) Int63() int64 { s.n++; return s.src.Int63() }

func (s *countingSource) Uint64() uint64 { s.n++; return s.src.Uint64() }

func (s *countingSource) Seed(seed int64) { s.src.Seed(seed); s.n = 0 }

// NewRNG returns a snapshotable RNG seeded like rand.NewSource(seed).
func NewRNG(seed int64) *RNG {
	cs := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &RNG{Rand: rand.New(cs), src: cs, seed: seed}
}

// Snapshot captures the full generator state.
func (r *RNG) Snapshot() RNGState { return RNGState{Seed: r.seed, Draws: r.src.n} }

// RestoreRNG rebuilds an RNG in the exact state captured by Snapshot: the
// next value drawn equals the next value the snapshotted RNG would have
// produced.
func RestoreRNG(st RNGState) *RNG {
	r := NewRNG(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		r.src.src.Int63()
	}
	r.src.n = st.Draws
	return r
}
