package evo_test

import (
	"math/rand"
	"strings"
	"testing"

	"solarml/internal/evo"
	"solarml/internal/nas"
	"solarml/internal/obs"
)

// stubPolicy drives the engine with the gesture space and an accuracy
// objective; fill can be overridden to exercise the reject budget.
type stubPolicy struct {
	evo.NASGenome
	evo.StatelessState
	space *nas.Space
	fill  func(*rand.Rand) *nas.Candidate
}

func (p *stubPolicy) Prefix() string { return "stub" }

func (p *stubPolicy) Fill(rng *rand.Rand) *nas.Candidate {
	if p.fill != nil {
		return p.fill(rng)
	}
	return p.space.RandomCandidate(rng)
}

func (p *stubPolicy) SearchAttrs() []obs.Attr { return nil }

func (p *stubPolicy) Init([]evo.Entry, float64, float64) {}

func (p *stubPolicy) CycleScore(*rand.Rand, int) func(evo.Entry) float64 {
	return func(e evo.Entry) float64 { return e.Res.Accuracy }
}

func (p *stubPolicy) GridCycle(int) bool { return false }

func (p *stubPolicy) Neighbors(*nas.Candidate) []*nas.Candidate { return nil }

func (p *stubPolicy) Mutate(rng *rand.Rand, parent *nas.Candidate) *nas.Candidate {
	return p.space.MutateArch(rng, parent)
}

func (p *stubPolicy) Accepted(evo.Entry) {}

func (p *stubPolicy) Report(history []evo.Entry) (evo.Entry, []obs.Attr) {
	var best evo.Entry
	for _, e := range history {
		if best.Cand == nil || e.Res.Accuracy > best.Res.Accuracy {
			best = e
		}
	}
	return best, nil
}

func stubConfig() evo.Config {
	return evo.Config{
		Population: 8, SampleSize: 3, Cycles: 10, Seed: 1,
		Constraints: nas.DefaultConstraints(nas.TaskGesture),
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	pol := &stubPolicy{space: nas.GestureSpace()}
	eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
	for _, cfg := range []evo.Config{
		{Population: 1, SampleSize: 1},
		{Population: 10, SampleSize: 0},
		{Population: 10, SampleSize: 11},
	} {
		if _, err := evo.Run(pol, eval, cfg); err == nil {
			t.Errorf("Run(%d/%d) succeeded, want invalid-config error", cfg.Population, cfg.SampleSize)
		}
	}
}

// TestRunFillBudget pins the unified retry budget: a policy that can never
// produce a candidate must fail with the engine's single error wording, and
// every rejected draw must land in the shared evo.fill_rejects counter.
func TestRunFillBudget(t *testing.T) {
	pol := &stubPolicy{
		space: nas.GestureSpace(),
		fill:  func(*rand.Rand) *nas.Candidate { return nil },
	}
	eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
	reg := obs.NewRegistry()
	cfg := stubConfig()
	cfg.Metrics = reg
	_, err := evo.Run(pol, eval, cfg)
	if err == nil {
		t.Fatal("Run succeeded with a fill source that always rejects")
	}
	if !strings.Contains(err.Error(), "cannot fill population") {
		t.Fatalf("error = %q, want the engine's fill-budget wording", err)
	}
	if got := reg.Counter("evo.fill_rejects").Value(); got == 0 {
		t.Fatal("evo.fill_rejects counter not incremented")
	}
}

// TestRunCacheMetrics checks the cache counters account for every cold-path
// lookup: hits + misses covers at least one lookup per recorded evaluation,
// and aging evolution on a small space produces actual hits.
func TestRunCacheMetrics(t *testing.T) {
	pol := &stubPolicy{space: nas.GestureSpace()}
	eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
	reg := obs.NewRegistry()
	cfg := stubConfig()
	cfg.Cycles = 40
	cfg.Metrics = reg
	cfg.Cache = true
	out, err := evo.Run(pol, eval, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	hits := reg.Counter("evo.cache_hits").Value()
	misses := reg.Counter("evo.cache_misses").Value()
	if hits+misses < int64(out.Evaluations) {
		t.Errorf("cache lookups %d < evaluations %d", hits+misses, out.Evaluations)
	}
	if misses == 0 {
		t.Error("cache recorded no misses; every evaluation must miss once")
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 17
		seen := make([]int64, n)
		evo.ForEach(workers, n, func(i int) { seen[i]++ })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}
