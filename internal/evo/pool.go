package evo

import "sync"

// ForEach runs fn(0)…fn(n-1) on up to workers goroutines and returns when
// all calls have finished. With workers ≤ 1 (or n ≤ 1) it runs inline, so
// callers need no separate serial path. Each index is handed to exactly one
// worker; callers keep determinism by writing results into per-index slots
// and merging in index order afterwards — the engine's evaluation batches
// and the experiment sweeps share this primitive (and that discipline).
func ForEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
