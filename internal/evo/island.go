package evo

import (
	"fmt"
	"os"
	"time"

	"solarml/internal/bytecodec"
	"solarml/internal/nas"
	"solarml/internal/obs"
)

// IslandConfig configures a multi-shard (island-model) search. Each island
// runs the full aging-evolution loop over its own policy instance,
// evaluator, and PRNG (seeded Seed+island), and islands interact only at
// migration barriers — which is what makes the run's outcome independent of
// worker count and goroutine scheduling, the same discipline firmware's
// fleet fan-out follows.
type IslandConfig struct {
	Config
	// Islands is the shard count. 1 reproduces a single-shard Run (same
	// seed, same stream, same Outcome).
	Islands int
	// MigrationInterval is the cycle period between migrant exchanges
	// (0 = never). At each barrier every island sends its Migrants best
	// entries (by its policy's own reporting convention) around a ring —
	// island i receives from island i-1 — processed in index order.
	MigrationInterval int
	// Migrants is the number of entries exchanged per barrier (default 1).
	Migrants int
	// Checkpoint, when set, persists the full run state (every island) at
	// cycle barriers, atomically.
	Checkpoint *CheckpointSpec
	// Resume restores the run from Checkpoint.Path instead of filling
	// fresh populations. The checkpoint's config echo must match.
	Resume bool
	// Progress, when set, is called from each island's worker after every
	// evolution cycle with (island, cycle). It runs concurrently across
	// islands, so it must be cheap and internally synchronized — the live
	// run inspector's striped Advance is the intended consumer. It must not
	// influence the search: outcomes stay bit-identical with or without it.
	Progress func(island, cycle int)
}

// IslandOutcome is the result of a multi-shard run.
type IslandOutcome struct {
	// Best is the globally best entry: policy Report over the islands'
	// histories concatenated in island order.
	Best Entry
	// Islands holds each shard's own Outcome, in island order.
	Islands []*Outcome
	// Evaluations sums scored candidates across islands.
	Evaluations int
	// Migrations counts entries moved between islands.
	Migrations int
}

// RunIslands executes aging evolution over cfg.Islands concurrent shards.
// newPol and newEval are factories because each island needs its own policy
// instance (policies carry per-run state) and its own evaluator (warm-start
// weight stores must not be shared across islands, or outcomes would depend
// on scheduling). Returns ErrStopped when the checkpoint spec asked the run
// to halt at a barrier; the checkpoint on disk then resumes the run
// bit-identically.
func RunIslands(newPol func() Policy, newEval func() nas.Evaluator, cfg IslandConfig) (*IslandOutcome, error) {
	if cfg.Islands < 1 {
		return nil, fmt.Errorf("evo: invalid island count %d", cfg.Islands)
	}
	if cfg.MigrationInterval < 0 {
		return nil, fmt.Errorf("evo: invalid migration interval %d", cfg.MigrationInterval)
	}
	migrants := cfg.Migrants
	if migrants <= 0 {
		migrants = 1
	}
	if migrants >= cfg.Population {
		return nil, fmt.Errorf("evo: %d migrants would displace the whole population of %d", migrants, cfg.Population)
	}
	n := cfg.Islands

	pols := make([]Policy, n)
	for i := range pols {
		pols[i] = newPol()
	}
	header := checkpointHeader{
		Prefix:     pols[0].Prefix(),
		Population: cfg.Population,
		SampleSize: cfg.SampleSize,
		Cycles:     cfg.Cycles,
		Seed:       cfg.Seed,
		Islands:    n,
		Interval:   cfg.MigrationInterval,
		Migrants:   migrants,
	}

	// One shared memo across islands: shards constantly rediscover each
	// other's candidates, and both repo evaluators are deterministic per
	// fingerprint on the cold path, so sharing changes wall-clock only.
	var shared *memoCache
	if cfg.Cache || cfg.Memo != nil {
		shared = newMemoCache(cfg.Metrics.Counter("evo.cache_hits"), cfg.Metrics.Counter("evo.cache_misses"))
		shared.attach(cfg.Memo)
	}

	var root obs.Span
	var parent *obs.Span
	if n > 1 {
		root = cfg.Obs.StartSpan("evo.islands",
			obs.Str("algo", header.Prefix), obs.Int("islands", n),
			obs.Int("migration_interval", cfg.MigrationInterval),
			obs.Int("migrants", migrants), obs.Int64("seed", cfg.Seed),
			obs.Bool("resume", cfg.Resume))
		parent = &root
	}
	fail := func(err error) (*IslandOutcome, error) {
		if n > 1 {
			root.End(obs.Str("error", err.Error()))
		}
		return nil, err
	}

	engines := make([]*engine, n)
	for i := range engines {
		icfg := cfg.Config
		icfg.Seed = cfg.Seed + int64(i)
		island := i
		if n == 1 {
			island = -1
		}
		e, err := newEngine(pols[i], newEval(), icfg, shared, parent, island)
		if err != nil {
			return fail(err)
		}
		engines[i] = e
	}

	if cfg.Resume {
		if cfg.Checkpoint == nil || cfg.Checkpoint.Path == "" {
			return fail(fmt.Errorf("evo: resume requested without a checkpoint path"))
		}
		data, err := os.ReadFile(cfg.Checkpoint.Path)
		if err != nil {
			return fail(fmt.Errorf("evo: resume: %w", err))
		}
		got, payloads, err := decodeCheckpoint(data)
		if err != nil {
			return fail(fmt.Errorf("evo: checkpoint %s: %w", cfg.Checkpoint.Path, err))
		}
		if got != header {
			return fail(fmt.Errorf("evo: checkpoint %s was written by a different search configuration (%+v, want %+v)",
				cfg.Checkpoint.Path, got, header))
		}
		for i, e := range engines {
			if err := e.restoreState(bytecodec.NewReader(payloads[i])); err != nil {
				return fail(fmt.Errorf("evo: checkpoint %s island %d: %w", cfg.Checkpoint.Path, i, err))
			}
		}
	} else {
		// Fill all islands concurrently; first error in index order wins,
		// so failures are as deterministic as successes.
		errs := make([]error, n)
		ForEach(n, n, func(i int) { errs[i] = engines[i].fill() })
		for _, err := range errs {
			if err != nil {
				return fail(err)
			}
		}
		if cfg.Checkpoint != nil && cfg.Checkpoint.Path != "" {
			// Checkpoint the filled populations: Phase 1 is the expensive
			// part, and a kill during early cycles should not repeat it.
			if err := checkpointAll(header, engines, cfg.Checkpoint, cfg.Metrics, parent); err != nil {
				return fail(err)
			}
		}
	}

	migrations := 0
	mig := cfg.MigrationInterval
	ck := cfg.Checkpoint
	for cur := engines[0].cycle; cur < cfg.Cycles; {
		next := cfg.Cycles
		if n > 1 && mig > 0 {
			if b := nextMultiple(cur, mig); b < next {
				next = b
			}
		}
		if ck != nil && ck.Every > 0 {
			if b := nextMultiple(cur, ck.Every); b < next {
				next = b
			}
		}
		target := next
		ForEach(n, n, func(i int) {
			for engines[i].cycle < target {
				engines[i].step()
				if cfg.Progress != nil {
					cfg.Progress(i, engines[i].cycle)
				}
			}
		})
		cur = target
		if n > 1 && mig > 0 && cur%mig == 0 && cur < cfg.Cycles {
			moved := migrateRing(engines, migrants)
			migrations += moved
			cfg.Metrics.Counter("evo.migrations").Add(int64(moved))
			root.Event("evo.migration", obs.Int("cycle", cur), obs.Int("moved", moved))
		}
		if ck != nil && ck.Path != "" && (cur == cfg.Cycles || (ck.Every > 0 && cur%ck.Every == 0)) {
			if err := checkpointAll(header, engines, ck, cfg.Metrics, parent); err != nil {
				return fail(err)
			}
			if ck.StopAfterCycle > 0 && cur >= ck.StopAfterCycle && cur < cfg.Cycles {
				if n > 1 {
					root.End(obs.Str("stopped_at", fmt.Sprintf("cycle %d", cur)))
				}
				return nil, ErrStopped
			}
		}
	}

	out := &IslandOutcome{Islands: make([]*Outcome, n), Migrations: migrations}
	var combined []Entry
	for i, e := range engines {
		o, err := e.finish()
		if err != nil {
			return fail(err)
		}
		out.Islands[i] = o
		out.Evaluations += o.Evaluations
		combined = append(combined, o.History...)
	}
	best, attrs := pols[0].Report(combined)
	out.Best = best
	if out.Best.Cand == nil {
		return fail(fmt.Errorf("evo: %s found no feasible candidate across %d islands", header.Prefix, n))
	}
	if n > 1 {
		root.End(append([]obs.Attr{
			obs.Int("evaluations", out.Evaluations),
			obs.Int("migrations", migrations),
		}, attrs...)...)
	}
	return out, nil
}

// nextMultiple returns the smallest multiple of k strictly greater than cur.
func nextMultiple(cur, k int) int { return (cur/k + 1) * k }

// migrateRing runs one exchange: every island's emigrants are selected
// first (so selection never observes this barrier's arrivals), then each
// island receives from its left neighbour, in index order. Entries migrate
// by reference — candidates are immutable once evaluated — and keep their
// origin-shard Results, which re-evaluation would reproduce exactly.
func migrateRing(engines []*engine, m int) int {
	n := len(engines)
	out := make([][]Entry, n)
	for i, e := range engines {
		out[i] = e.emigrants(m)
	}
	moved := 0
	for i, e := range engines {
		in := out[(i-1+n)%n]
		e.immigrate(in)
		moved += len(in)
	}
	return moved
}

// checkpointAll encodes and atomically writes the full run state, recording
// size and latency telemetry.
func checkpointAll(h checkpointHeader, engines []*engine, spec *CheckpointSpec, reg *obs.Registry, parent *obs.Span) error {
	t0 := time.Now()
	data, err := encodeCheckpoint(h, engines)
	if err != nil {
		return err
	}
	if err := writeCheckpointFile(spec.Path, data); err != nil {
		return err
	}
	sec := time.Since(t0).Seconds()
	reg.Counter("evo.checkpoints").Inc()
	reg.Gauge("evo.checkpoint_bytes").Set(float64(len(data)))
	reg.Histogram("evo.checkpoint_seconds", obs.TimeBuckets).Observe(sec)
	if parent != nil {
		parent.Event("evo.checkpoint",
			obs.Int("cycle", engines[0].cycle), obs.Int("bytes", len(data)), obs.F64("seconds", sec))
	}
	return nil
}
