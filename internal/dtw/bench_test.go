package dtw

import (
	"math"
	"math/rand"
	"testing"
)

// BenchmarkDistance times one band-limited DTW comparison at gesture size
// (6 channels × 90 samples), the per-template cost of a prediction.
func BenchmarkDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mk := func() [][]float64 {
		tr := make([][]float64, 6)
		for c := range tr {
			tr[c] = make([]float64, 90)
			for j := range tr[c] {
				tr[c][j] = math.Sin(float64(j)*0.2) + rng.NormFloat64()*0.1
			}
		}
		return tr
	}
	a, c := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(a, c, 10)
	}
}
