// Package dtw implements dynamic-time-warping distance and a 1-NN template
// classifier over multichannel sensor traces — the model-free gesture
// recognition approach of SolarGest-class systems [15]. It serves as the
// non-neural baseline in the evaluation: DTW needs no training, but each
// prediction costs O(templates · T² · channels) operations, which is what
// makes learned tinyML models win on energy at matched accuracy.
package dtw

import (
	"fmt"
	"math"
)

// Distance returns the DTW distance between two multichannel sequences
// shaped (channels × T), constrained to a Sakoe-Chiba band of the given
// half-width (0 selects max(|Ta−Tb|, 10% of the longer sequence)).
// Channel counts must match; lengths may differ.
func Distance(a, b [][]float64, window int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dtw: channel mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		panic("dtw: empty sequences")
	}
	ta, tb := len(a[0]), len(b[0])
	if window <= 0 {
		window = int(0.1 * float64(max(ta, tb)))
	}
	if d := abs(ta - tb); window < d {
		window = d
	}
	// Frame-to-frame cost: squared Euclidean across channels.
	cost := func(i, j int) float64 {
		s := 0.0
		for c := range a {
			d := a[c][i] - b[c][j]
			s += d * d
		}
		return s
	}
	const inf = math.MaxFloat64
	prev := make([]float64, tb+1)
	cur := make([]float64, tb+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= ta; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := max(1, i-window)
		hi := min(tb, i+window)
		for j := lo; j <= hi; j++ {
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = cost(i-1, j-1) + best
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(prev[tb])
}

// Classifier is a 1-nearest-neighbour DTW template matcher.
type Classifier struct {
	// Templates are reference traces shaped (channels × T).
	Templates [][][]float64
	Labels    []int
	// Window is the Sakoe-Chiba half-width (0 = automatic).
	Window int
}

// NewClassifier keeps up to perClass templates of each label from the
// reference set (templates beyond the cap are dropped, bounding the
// per-prediction cost exactly as an MCU deployment would).
func NewClassifier(traces [][][]float64, labels []int, perClass, window int) (*Classifier, error) {
	if len(traces) != len(labels) {
		return nil, fmt.Errorf("dtw: %d traces for %d labels", len(traces), len(labels))
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("dtw: no templates")
	}
	c := &Classifier{Window: window}
	counts := make(map[int]int)
	for i, tr := range traces {
		if perClass > 0 && counts[labels[i]] >= perClass {
			continue
		}
		counts[labels[i]]++
		c.Templates = append(c.Templates, tr)
		c.Labels = append(c.Labels, labels[i])
	}
	return c, nil
}

// Predict returns the label of the nearest template.
func (c *Classifier) Predict(x [][]float64) int {
	best, bi := math.Inf(1), 0
	for i, tmpl := range c.Templates {
		if d := Distance(x, tmpl, c.Window); d < best {
			best, bi = d, i
		}
	}
	return c.Labels[bi]
}

// Accuracy evaluates top-1 accuracy over a test set.
func (c *Classifier) Accuracy(xs [][][]float64, ys []int) float64 {
	correct := 0
	for i, x := range xs {
		if c.Predict(x) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(ys))
}

// MACsPerInference estimates the arithmetic work of one prediction against
// traces of length t with the classifier's channel count: each template
// costs ≈ 2·window·t cells (band-limited DP), each cell ≈ channels
// multiply-accumulates plus 3 compares.
func (c *Classifier) MACsPerInference(t int) int64 {
	if len(c.Templates) == 0 {
		return 0
	}
	channels := len(c.Templates[0])
	w := c.Window
	if w <= 0 {
		w = int(0.1 * float64(t))
	}
	cells := int64(t) * int64(2*w+1)
	perTemplate := cells * int64(channels+3)
	return perTemplate * int64(len(c.Templates))
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
