package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func seq(vals ...float64) [][]float64 { return [][]float64{vals} }

func TestDistanceIdenticalIsZero(t *testing.T) {
	a := seq(1, 2, 3, 2, 1)
	if d := Distance(a, a, 0); d != 0 {
		t.Fatalf("self distance %v", d)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(s int64) bool {
		rng := rand.New(rand.NewSource(s))
		n := 5 + rng.Intn(20)
		m := 5 + rng.Intn(20)
		a := [][]float64{make([]float64, n)}
		b := [][]float64{make([]float64, m)}
		for i := range a[0] {
			a[0][i] = rng.NormFloat64()
		}
		for i := range b[0] {
			b[0][i] = rng.NormFloat64()
		}
		// A full window keeps the band symmetric for unequal lengths.
		w := n + m
		return math.Abs(Distance(a, b, w)-Distance(b, a, w)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTimeShiftToleration(t *testing.T) {
	// DTW must forgive a temporal shift that Euclidean distance punishes.
	base := make([]float64, 60)
	shifted := make([]float64, 60)
	for i := range base {
		base[i] = math.Sin(2 * math.Pi * float64(i) / 30)
		shifted[i] = math.Sin(2 * math.Pi * float64(i-4) / 30)
	}
	var euclid float64
	for i := range base {
		d := base[i] - shifted[i]
		euclid += d * d
	}
	euclid = math.Sqrt(euclid)
	if d := Distance(seq(base...), seq(shifted...), 8); d >= euclid/2 {
		t.Fatalf("DTW %v should be well below Euclidean %v for a shift", d, euclid)
	}
}

func TestDistanceDifferentLengths(t *testing.T) {
	a := seq(0, 1, 2, 3, 4, 5)
	b := seq(0, 2, 4) // same ramp, half the samples
	if d := Distance(a, b, 0); d > 2 {
		t.Fatalf("resampled ramp distance %v too large", d)
	}
}

func TestDistanceChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Distance([][]float64{{1}}, [][]float64{{1}, {2}}, 0)
}

func TestDistanceSeparatesShapes(t *testing.T) {
	up := seq(0, 1, 2, 3, 4)
	down := seq(4, 3, 2, 1, 0)
	if Distance(up, down, 0) <= Distance(up, up, 0) {
		t.Fatal("distinct shapes must be farther than identical ones")
	}
}

func makeClassTraces(rng *rand.Rand, n int) ([][][]float64, []int) {
	traces := make([][][]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 3
		tr := make([][]float64, 2)
		for c := range tr {
			tr[c] = make([]float64, 40)
			for j := range tr[c] {
				u := float64(j) / 40
				switch cls {
				case 0:
					tr[c][j] = math.Sin(2 * math.Pi * u)
				case 1:
					tr[c][j] = u * 2
				default:
					tr[c][j] = math.Cos(3 * math.Pi * u)
				}
				tr[c][j] += rng.NormFloat64() * 0.1
			}
		}
		traces[i] = tr
		labels[i] = cls
	}
	return traces, labels
}

func TestClassifierSeparatesClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train, trainY := makeClassTraces(rng, 30)
	test, testY := makeClassTraces(rng, 30)
	c, err := NewClassifier(train, trainY, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if acc := c.Accuracy(test, testY); acc < 0.9 {
		t.Fatalf("DTW 1-NN accuracy %.3f", acc)
	}
}

func TestClassifierTemplateCap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train, trainY := makeClassTraces(rng, 30)
	c, err := NewClassifier(train, trainY, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Templates) != 6 { // 3 classes × 2 templates
		t.Fatalf("%d templates, want 6", len(c.Templates))
	}
}

func TestClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(nil, nil, 1, 0); err == nil {
		t.Fatal("empty template set must error")
	}
	if _, err := NewClassifier(make([][][]float64, 2), []int{1}, 1, 0); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestMACsPerInferenceScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train, trainY := makeClassTraces(rng, 30)
	small, _ := NewClassifier(train, trainY, 2, 5)
	big, _ := NewClassifier(train, trainY, 10, 5)
	if small.MACsPerInference(40) >= big.MACsPerInference(40) {
		t.Fatal("more templates must cost more")
	}
	if small.MACsPerInference(40) >= small.MACsPerInference(80) {
		t.Fatal("longer traces must cost more")
	}
}
