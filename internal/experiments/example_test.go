package experiments_test

import (
	"fmt"

	"solarml/internal/experiments"
	"solarml/internal/nn"
)

// ExampleFig7 regenerates the per-layer energy comparison that motivates
// the layer-wise energy model.
func ExampleFig7() {
	for _, p := range experiments.Fig7() {
		if p.MACs != 75_000 {
			continue
		}
		if p.Kind == nn.KindConv || p.Kind == nn.KindDense {
			fmt.Printf("%s at 75k MACs: %.0f µJ\n", p.Kind, p.EnergyJ*1e6)
		}
	}
	// Output:
	// Conv at 75k MACs: 178 µJ
	// Dense at 75k MACs: 51 µJ
}

// ExampleTable3 reproduces the event-detector comparison rows.
func ExampleTable3() {
	for _, r := range experiments.Table3() {
		if r.Name == "SolarML" {
			fmt.Printf("%s: %.0f µW standby, %.0f ms response\n",
				r.Name, r.StandbyUW, r.RespLoMS)
		}
	}
	// Output:
	// SolarML: 2 µW standby, 5 ms response
}
