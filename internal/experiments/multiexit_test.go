package experiments

import (
	"math"
	"strings"
	"testing"

	"solarml/internal/nas"
	"solarml/internal/pareto"
)

func TestMultiExitExperiment(t *testing.T) {
	res, err := MultiExit(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ExitMACs) != 3 {
		t.Fatalf("%d exits", len(res.ExitMACs))
	}
	// Every exit must learn something well above chance (10 classes).
	for k, acc := range res.ExitAccs {
		if acc < 0.3 {
			t.Fatalf("exit %d accuracy %.3f barely above chance", k, acc)
		}
	}
	// The budget sweep must be monotone: larger budgets never pick a
	// shallower exit.
	prev := -2
	for _, p := range res.Curve {
		if p.Exit < prev {
			t.Fatalf("budget sweep regressed from exit %d to %d", prev, p.Exit)
		}
		prev = p.Exit
	}
	// The smallest budget (20% of the deepest exit) must afford less than
	// the deepest exit; the largest must afford it.
	if res.Curve[0].Exit == len(res.ExitMACs)-1 {
		t.Fatal("tiny budget should not afford the deepest exit")
	}
	if last := res.Curve[len(res.Curve)-1]; last.Exit != len(res.ExitMACs)-1 {
		t.Fatalf("full budget should afford the deepest exit, got %d", last.Exit)
	}
	if res.Confident < 0.3 {
		t.Fatalf("confidence routing accuracy %.3f", res.Confident)
	}
	text := FormatMultiExit(res)
	for _, want := range []string{"exit 0", "budget", "confidence"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, text)
		}
	}
}

func TestHypervolumeGeometry(t *testing.T) {
	front := []pareto.Point{
		{Acc: 0.8, Energy: 1},
		{Acc: 0.9, Energy: 2},
	}
	// Reference: acc 0.7, energy 3. Sweep ascending energy:
	// p(0.8,1): (3-1)·(0.8-0.7)=0.2; p(0.9,2): (3-2)·(0.9-0.8)=0.1.
	if hv := hypervolume(front, 0.7, 3); math.Abs(hv-0.3) > 1e-12 {
		t.Fatalf("hypervolume %v, want 0.3", hv)
	}
	// Points outside the reference box contribute nothing.
	if hv := hypervolume([]pareto.Point{{Acc: 0.6, Energy: 1}}, 0.7, 3); hv != 0 {
		t.Fatalf("below-floor point contributed %v", hv)
	}
	if hv := hypervolume([]pareto.Point{{Acc: 0.9, Energy: 5}}, 0.7, 3); hv != 0 {
		t.Fatalf("over-budget point contributed %v", hv)
	}
}

func TestObjectiveComparisonQuick(t *testing.T) {
	res, err := ObjectiveComparison(nas.TaskGesture, ScaleQuick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.ENASHyper != 1 {
		t.Fatalf("eNAS hypervolume must normalize to 1, got %v", res.ENASHyper)
	}
	if res.RandomHyper <= 0 || res.HarvNetHyper <= 0 {
		t.Fatalf("competing objectives produced empty fronts: %+v", res)
	}
	// The λ-sweep covers at least as much front as the single-run A/E
	// objective (it runs 3× the budget across λ values, which is exactly
	// the controllability argument of §IV-B).
	if res.HarvNetHyper > 1.2 {
		t.Fatalf("A/E objective should not dominate the λ sweep: %+v", res)
	}
}
