package experiments

import "testing"

func TestDTWBaselineShapes(t *testing.T) {
	res, err := DTWBaseline(5)
	if err != nil {
		t.Fatal(err)
	}
	// Both classifiers must work well above chance (10 classes).
	if res.DTWAccuracy < 0.5 {
		t.Fatalf("DTW accuracy %.3f", res.DTWAccuracy)
	}
	if res.CNNAccuracy < 0.5 {
		t.Fatalf("CNN accuracy %.3f", res.CNNAccuracy)
	}
	// The motivating shape: DTW pays far more compute per inference.
	if res.DTWInferJ < 3*res.CNNInferJ {
		t.Fatalf("DTW inference %.0f µJ should dwarf CNN %.0f µJ",
			res.DTWInferJ*1e6, res.CNNInferJ*1e6)
	}
	if res.DTWTemplates != 50 {
		t.Fatalf("%d templates, want 50 (5 × 10 digits)", res.DTWTemplates)
	}
	if res.SensingJ <= 0 {
		t.Fatal("missing sensing energy")
	}
}
