package experiments

import (
	"strings"
	"testing"
)

func TestGenerateReportCoversAllArtifacts(t *testing.T) {
	text, err := GenerateReport(ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Fig 1", "Fig 2", "Fig 6", "Fig 7", "Table I", "Table III",
		"Fig 9", "Fig 10 (gesture)", "Fig 10 (kws)", "§V-D", "DTW baseline",
		"layer-wise MACs", "SolarML",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if strings.Count(text, "##") < 10 {
		t.Fatalf("report has too few sections:\n%s", text[:200])
	}
}
