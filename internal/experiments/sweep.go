package experiments

import (
	"fmt"

	"solarml/internal/enas"
	"solarml/internal/nas"
	"solarml/internal/pareto"
)

// LambdaSweepPoint is one λ setting's ground-truth-rescored winner.
type LambdaSweepPoint struct {
	Lambda float64
	Point  pareto.Point
}

// LambdaSweep traces the objective's trade-off control: eNAS runs across a
// fine λ grid, each winner rescored with ground truth. The paper samples
// λ ∈ {0, 0.5, 1}; the full sweep shows the knob is continuous.
func LambdaSweep(task nas.Task, scale Scale, seed int64, lambdas []float64) ([]LambdaSweepPoint, error) {
	var space *nas.Space
	if task == nas.TaskGesture {
		space = nas.GestureSpace()
	} else {
		space = nas.KWSSpace()
	}
	truth := nas.NewTruthEnergy()
	fitted, err := nas.CalibrateEnergy(space, 300, true, true, seed)
	if err != nil {
		return nil, err
	}
	eval := nas.NewSurrogateEvaluator(fitted)
	out := make([]LambdaSweepPoint, 0, len(lambdas))
	for i, lambda := range lambdas {
		// Shared seed per λ so the sweep isolates the objective knob.
		res, err := enas.Search(space, eval, scale.enasConfig(task, lambda, seed+int64(i)))
		if err != nil {
			return nil, err
		}
		out = append(out, LambdaSweepPoint{
			Lambda: lambda,
			Point:  truthPoint(truth, res.Best.Cand, res.Best.Res, i),
		})
	}
	return out, nil
}

// StabilityResult summarizes the Fig 10 headline ratio across independent
// seeds — the paper's §V-D claim that eNAS's advantage is "consistent and
// robust", quantified.
type StabilityResult struct {
	Target float64
	Ratios []float64
	Mean   float64
	Min    float64
	Max    float64
}

// Fig10Stability reruns the Fig 10 comparison across `seeds` independent
// seeds and collects the µNAS/eNAS energy ratio at the accuracy target.
func Fig10Stability(task nas.Task, scale Scale, target float64, seeds int, seed0 int64) (*StabilityResult, error) {
	res := &StabilityResult{Target: target, Min: 1e18, Max: -1e18}
	for s := 0; s < seeds; s++ {
		f10, err := Fig10(task, scale, seed0+int64(s)*1000)
		if err != nil {
			return nil, err
		}
		_, _, ratio, ok := f10.EnergyRatioAt(target, 0.03)
		if !ok {
			continue
		}
		res.Ratios = append(res.Ratios, ratio)
		res.Mean += ratio
		if ratio < res.Min {
			res.Min = ratio
		}
		if ratio > res.Max {
			res.Max = ratio
		}
	}
	if len(res.Ratios) == 0 {
		return nil, fmt.Errorf("experiments: no seed reached accuracy %.2f", target)
	}
	res.Mean /= float64(len(res.Ratios))
	return res, nil
}

// RSweepPoint is one sensing-mutation period's averaged outcome.
type RSweepPoint struct {
	// R is the grid-mutation period (0 renders as ∞: sensing frozen).
	R     int
	Acc   float64
	E     float64
	Evals float64
}

// RSweep studies the R hyperparameter of Algorithm 1 (the paper sets R=20
// "based on our hardware capabilities and practical experience"): how often
// the sensing parameters take a grid step. Small R spends evaluations on
// sensing neighbours; large R leaves sensing to the Phase 1 lottery. Each
// setting is averaged over three seeds at λ=0.5.
func RSweep(task nas.Task, scale Scale, seed int64, rs []int) ([]RSweepPoint, error) {
	var space *nas.Space
	if task == nas.TaskGesture {
		space = nas.GestureSpace()
	} else {
		space = nas.KWSSpace()
	}
	truth := nas.NewTruthEnergy()
	fitted, err := nas.CalibrateEnergy(space, 300, true, true, seed)
	if err != nil {
		return nil, err
	}
	eval := nas.NewSurrogateEvaluator(fitted)
	const seeds = 3
	out := make([]RSweepPoint, 0, len(rs))
	for _, r := range rs {
		pt := RSweepPoint{R: r}
		for s := int64(0); s < seeds; s++ {
			cfg := scale.enasConfig(task, 0.5, seed+1+s)
			if r <= 0 {
				cfg.SensingEvery = cfg.Cycles + 1
			} else {
				cfg.SensingEvery = r
			}
			res, err := enas.Search(space, eval, cfg)
			if err != nil {
				return nil, err
			}
			p := truthPoint(truth, res.Best.Cand, res.Best.Res, int(s))
			pt.Acc += p.Acc / seeds
			pt.E += p.Energy / seeds
			pt.Evals += float64(res.Evaluations) / seeds
		}
		out = append(out, pt)
	}
	return out, nil
}
