package experiments

import (
	"fmt"
	"strings"

	"solarml/internal/core"
	"solarml/internal/detect"
)

// Fig1 reproduces Fig 1: the E_E/E_S/E_M energy-cost distribution of six
// end-to-end systems with a 3 s event wait.
func Fig1() ([]*core.SessionReport, error) {
	p := core.NewPlatform()
	var out []*core.SessionReport
	for _, cfg := range core.Fig1Systems() {
		rep, err := p.RunSession(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", cfg.Name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// Fig2 reproduces Fig 2: the gesture and KWS energy traces after one minute
// of deep sleep.
func Fig2() ([]*core.SessionReport, error) {
	p := core.NewPlatform()
	var out []*core.SessionReport
	for _, cfg := range core.Fig2Scenarios() {
		rep, err := p.RunSession(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", cfg.Name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// Fig6 reproduces Fig 6: the sleep-mechanism session with and without the
// standby resume path.
func Fig6(lux float64) (single, resumed *core.Fig6Report, err error) {
	// Fresh platforms: the event circuit is stateful.
	single, err = core.NewPlatform().SimulateSleepMechanism(lux, false)
	if err != nil {
		return nil, nil, err
	}
	resumed, err = core.NewPlatform().SimulateSleepMechanism(lux, true)
	if err != nil {
		return nil, nil, err
	}
	return single, resumed, nil
}

// Table3Row is one column of Table III.
type Table3Row struct {
	Name         string
	RangeLoMM    float64
	RangeHiMM    float64
	RespLoMS     float64
	RespHiMS     float64
	StandbyUW    float64
	WorkLoUW     float64
	WorkHiUW     float64
	Window5sLoUJ float64
	Window5sHiUJ float64
}

// Table3 reproduces Table III from the detector models.
func Table3() []Table3Row {
	var out []Table3Row
	for _, d := range detect.All() {
		rLo, rHi := d.RangeMM()
		tLo, tHi := d.ResponseTimeS()
		wLo, wHi := d.WorkingPowerW()
		eLo, eHi := d.WindowEnergy(5)
		out = append(out, Table3Row{
			Name:         d.Name(),
			RangeLoMM:    rLo,
			RangeHiMM:    rHi,
			RespLoMS:     tLo * 1e3,
			RespHiMS:     tHi * 1e3,
			StandbyUW:    d.StandbyPowerW() * 1e6,
			WorkLoUW:     wLo * 1e6,
			WorkHiUW:     wHi * 1e6,
			Window5sLoUJ: eLo * 1e6,
			Window5sHiUJ: eHi * 1e6,
		})
	}
	return out
}

// FormatTable3 renders Table III as text.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %14s %12s %16s %18s\n",
		"Detector", "Range (mm)", "Response (ms)", "Standby(µW)", "Working (µW)", "5-s energy (µJ)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %4.0f-%-7.0f %5.0f-%-8.0f %12.1f %8.1f-%-7.1f %10.1f-%-7.1f\n",
			r.Name, r.RangeLoMM, r.RangeHiMM, r.RespLoMS, r.RespHiMS,
			r.StandbyUW, r.WorkLoUW, r.WorkHiUW, r.Window5sLoUJ, r.Window5sHiUJ)
	}
	return b.String()
}
