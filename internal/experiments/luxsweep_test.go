package experiments

import "testing"

func TestLuxRobustnessCollapsesInDimLight(t *testing.T) {
	pts, err := LuxRobustness(3, []float64{20, 500})
	if err != nil {
		t.Fatal(err)
	}
	dim, bright := pts[0], pts[1]
	if bright.Accuracy < 0.7 {
		t.Fatalf("bright-light accuracy %.3f too low", bright.Accuracy)
	}
	if dim.Accuracy > bright.Accuracy-0.2 {
		t.Fatalf("20 lux accuracy %.3f should collapse versus 500 lux %.3f",
			dim.Accuracy, bright.Accuracy)
	}
}
