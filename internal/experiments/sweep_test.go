package experiments

import (
	"testing"

	"solarml/internal/nas"
)

func TestLambdaSweepEndpoints(t *testing.T) {
	pts, err := LambdaSweep(nas.TaskGesture, ScaleQuick, 9, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	// λ=1 must not pay more energy than λ=0 at the same seed/evaluator.
	if pts[1].Point.Energy > pts[0].Point.Energy {
		t.Fatalf("λ=1 energy %.0f µJ above λ=0's %.0f µJ",
			pts[1].Point.Energy*1e6, pts[0].Point.Energy*1e6)
	}
	for _, p := range pts {
		if p.Point.Acc < 0.75 {
			t.Fatalf("λ=%.1f winner violates the error cap: %.3f", p.Lambda, p.Point.Acc)
		}
	}
}

func TestRSweepShape(t *testing.T) {
	pts, err := RSweep(nas.TaskGesture, ScaleQuick, 9, []int{5, 20, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// More frequent grid mutations spend more evaluations.
	if pts[0].Evals <= pts[2].Evals {
		t.Fatalf("R=5 (%v evals) should outspend frozen sensing (%v evals)",
			pts[0].Evals, pts[2].Evals)
	}
	for _, p := range pts {
		if p.Acc <= 0 || p.E <= 0 {
			t.Fatalf("empty sweep point %+v", p)
		}
	}
}

func TestFig10StabilityAcrossSeeds(t *testing.T) {
	res, err := Fig10Stability(nas.TaskGesture, ScaleQuick, 0.80, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ratios) < 2 {
		t.Fatalf("only %d seeds reached the target", len(res.Ratios))
	}
	// eNAS must win on average across seeds, not just on a lucky one.
	if res.Mean < 1.1 {
		t.Fatalf("mean µNAS/eNAS ratio %.2f — advantage not robust", res.Mean)
	}
	if res.Min < 0.8 {
		t.Fatalf("a seed inverted the result badly: min ratio %.2f", res.Min)
	}
}
