package experiments

import (
	"math"
	"strings"
	"testing"

	"solarml/internal/nas"
	"solarml/internal/nn"
)

func findRow(t *testing.T, rows []Table1Row, proxy, method string) Table1Row {
	t.Helper()
	for _, r := range rows {
		if r.Proxy == proxy && r.Method == method {
			return r
		}
	}
	t.Fatalf("row %s/%s missing", proxy, method)
	return Table1Row{}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(1)
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	lutRow := findRow(t, rows, "per-layer LUT", "interp")
	if lutRow.R2 < 0.9 {
		t.Fatalf("LUT R² %.3f — should be accurate (its cost is calibration, not fit)", lutRow.R2)
	}
	lrLayer := findRow(t, rows, "layer-wise MACs", "LR")
	lrTotal := findRow(t, rows, "MACs (µNAS)", "LR")
	logLayer := findRow(t, rows, "layer-wise MACs", "LogR")
	nrLayer := findRow(t, rows, "layer-wise MACs", "NR")
	// Table I ordering: layer-wise LR ≈0.96 ≫ total-MACs ≈0.46; LogR
	// collapses; NR in between.
	if lrLayer.R2 < 0.9 {
		t.Fatalf("layer-wise LR R² %.3f", lrLayer.R2)
	}
	if lrTotal.R2 > lrLayer.R2-0.2 {
		t.Fatalf("total-MACs LR R² %.3f too close to layer-wise %.3f", lrTotal.R2, lrLayer.R2)
	}
	if logLayer.R2 > 0.5 {
		t.Fatalf("LogR R² %.3f should collapse", logLayer.R2)
	}
	if nrLayer.R2 >= lrLayer.R2 {
		t.Fatalf("NR %.3f should not beat LR %.3f", nrLayer.R2, lrLayer.R2)
	}
	lrSense := findRow(t, rows, "n,r,b,q", "LR")
	if lrSense.R2 < 0.8 {
		t.Fatalf("sensing LR R² %.3f, paper ≈0.92", lrSense.R2)
	}
	for _, r := range rows {
		if !strings.Contains(r.String(), "R²") {
			t.Fatal("row rendering broken")
		}
	}
}

func TestFig7ConvDenseGap(t *testing.T) {
	pts := Fig7()
	var conv, dense float64
	for _, p := range pts {
		if p.MACs != 75_000 {
			continue
		}
		switch p.Kind {
		case nn.KindConv:
			conv = p.EnergyJ
		case nn.KindDense:
			dense = p.EnergyJ
		}
	}
	if conv == 0 || dense == 0 {
		t.Fatal("missing 75k-MAC points")
	}
	if r := conv / dense; math.Abs(r-3.5) > 0.4 {
		t.Fatalf("Conv/Dense ratio %.2f, Fig 7 says ≈3.5", r)
	}
}

func TestFig9ErrorShapes(t *testing.T) {
	res := Fig9(2)
	// Fig 9a: sensing mean error ≈3.1%; ours stays single-digit.
	if res.SensingMean > 0.08 {
		t.Fatalf("sensing mean error %.1f%%, paper ≈3.1%%", res.SensingMean*100)
	}
	// Fig 9b: layer-wise ≈12.8%, μNAS ≈76.9% — shape: several times worse.
	if res.OursMean > 0.25 {
		t.Fatalf("our mean inference error %.1f%%, paper ≈12.8%%", res.OursMean*100)
	}
	if res.MuNASMean < 2*res.OursMean {
		t.Fatalf("µNAS error %.1f%% vs ours %.1f%%: gap too small",
			res.MuNASMean*100, res.OursMean*100)
	}
	// Fig 9c: 90% of sensing estimates below 6% error → loosely, the 90th
	// percentile stays small.
	if p90 := Percentile(res.SensingErrs, 0.9); p90 > 0.12 {
		t.Fatalf("sensing p90 error %.1f%%, paper <6%%", p90*100)
	}
	if ErrCDF(res.OursErrs, 0.3) < 0.85 {
		t.Fatalf("less than 85%% of our estimates within 30%% error")
	}
}

func TestFig1Shapes(t *testing.T) {
	reps, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 6 {
		t.Fatalf("%d systems", len(reps))
	}
}

func TestFig2Shares(t *testing.T) {
	reps, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	ee, es, em := reps[0].Shares()
	if math.Abs(ee-0.38) > 0.10 || math.Abs(es-0.47) > 0.10 || math.Abs(em-0.15) > 0.08 {
		t.Fatalf("gesture shares %.2f/%.2f/%.2f", ee, es, em)
	}
}

func TestFig6BothPaths(t *testing.T) {
	single, resumed, err := Fig6(500)
	if err != nil {
		t.Fatal(err)
	}
	if single.SecondInference || !resumed.SecondInference {
		t.Fatal("resume paths wrong")
	}
	// The resumed session costs more in total but avoids a second boot.
	if resumed.Trace.TotalEnergy() <= single.Trace.TotalEnergy() {
		t.Fatal("second inference must cost energy")
	}
}

func TestTable3RowsAndFormat(t *testing.T) {
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	text := FormatTable3(rows)
	for _, name := range []string{"PS", "ToF", "SolarGest", "SolarML"} {
		if !strings.Contains(text, name) {
			t.Fatalf("missing %s in\n%s", name, text)
		}
	}
}

func TestFig10QuickGesture(t *testing.T) {
	res, err := Fig10(nas.TaskGesture, ScaleQuick, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ENASBest) != 3 || len(res.MuNASBest) != ScaleQuick.munasConfigs() {
		t.Fatalf("points: %d eNAS, %d µNAS", len(res.ENASBest), len(res.MuNASBest))
	}
	if len(res.ENASFront) == 0 || len(res.MuNASFront) == 0 {
		t.Fatal("empty fronts")
	}
	// Headline shape: at a matched accuracy eNAS needs less energy on
	// average than the sensing-blind μNAS runs.
	enasE, munasE, ratio, ok := res.EnergyRatioAt(0.80, 0.05)
	if !ok {
		t.Skip("0.80 accuracy not reached at quick scale")
	}
	if ratio < 1.0 {
		t.Fatalf("µNAS avg (%.3g J) should not undercut eNAS (%.3g J)", munasE, enasE)
	}
}

func TestEndToEndQuick(t *testing.T) {
	res, err := EndToEnd(ScaleQuick, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digits.Savings <= 0 {
		t.Fatalf("digit savings %.2f, paper 27%%", res.Digits.Savings)
	}
	if res.KWS.Savings <= 0 {
		t.Fatalf("KWS savings %.2f, paper 48%%", res.KWS.Savings)
	}
	// Harvesting times ordered by light level.
	d := res.Digits.HarvestTimeS
	if !(d[1000] < d[500] && d[500] < d[250]) {
		t.Fatalf("harvest times %v", d)
	}
}

func TestAblationQuick(t *testing.T) {
	res, err := Ablation(nas.TaskGesture, ScaleQuick, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct {
		name string
		acc  float64
	}{
		{"full", res.Full.Acc}, {"total-macs", res.TotalMACs.Acc},
		{"no-sensing", res.NoSensing.Acc}, {"harvnet", res.HarvNetBest.Acc},
	} {
		if p.acc <= 0 {
			t.Fatalf("%s produced no result", p.name)
		}
	}
}
