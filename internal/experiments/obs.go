package experiments

import (
	"sync/atomic"

	"solarml/internal/compute"
	"solarml/internal/enas"
	"solarml/internal/harvnet"
	"solarml/internal/munas"
	"solarml/internal/obs"
)

// telemetry holds the package's recorder and registry. The experiment
// runners are plain functions shared by the CLI, benchmarks, and tests, so
// the sink attaches process-wide rather than threading through every
// signature; the atomic pointers keep attachment race-free against
// benchmark goroutines. A nil sink (the default) costs nothing.
var telemetry struct {
	rec atomic.Pointer[obs.Recorder]
	reg atomic.Pointer[obs.Registry]
	cmp atomic.Pointer[compute.Context]
}

// SetObs attaches a recorder and metrics registry to every subsequent
// experiment run (either may be nil). Pass nil, nil to detach. Runners wrap
// themselves in experiments.<name> spans and propagate the sink into the
// eNAS searches and platform sessions they launch.
func SetObs(rec *obs.Recorder, reg *obs.Registry) {
	telemetry.rec.Store(rec)
	telemetry.reg.Store(reg)
}

// recorder returns the attached recorder (nil when detached).
func recorder() *obs.Recorder { return telemetry.rec.Load() }

// registry returns the attached registry (nil when detached).
func registry() *obs.Registry { return telemetry.reg.Load() }

// SetCompute attaches a compute context to every subsequent experiment run:
// training runs and eNAS searches launched by the runners use its backend
// and scratch pool. Pass nil to restore the serial default.
func SetCompute(ctx *compute.Context) { telemetry.cmp.Store(ctx) }

// computeCtx returns the attached compute context (nil when detached).
func computeCtx() *compute.Context { return telemetry.cmp.Load() }

// instrument attaches the package sink to an eNAS search configuration.
func instrument(cfg enas.Config) enas.Config {
	cfg.Obs = recorder()
	cfg.Metrics = registry()
	cfg.Compute = computeCtx()
	return cfg
}

// instrumentMunas attaches the package sink to a μNAS search configuration.
func instrumentMunas(cfg munas.Config) munas.Config {
	cfg.Obs = recorder()
	cfg.Metrics = registry()
	cfg.Compute = computeCtx()
	return cfg
}

// instrumentHarvnet attaches the package sink to a HarvNet search
// configuration.
func instrumentHarvnet(cfg harvnet.Config) harvnet.Config {
	cfg.Obs = recorder()
	cfg.Metrics = registry()
	cfg.Compute = computeCtx()
	return cfg
}
