package experiments

import (
	"fmt"
	"math/rand"

	"solarml/internal/core"
	"solarml/internal/enas"
	"solarml/internal/evo"
	"solarml/internal/harvnet"
	"solarml/internal/munas"
	"solarml/internal/nas"
	"solarml/internal/obs"
	"solarml/internal/pareto"
)

// Scale selects the experiment size: the paper's settings or a reduced
// configuration for quick runs and tests.
type Scale int

const (
	// ScaleQuick: population 16, 50 cycles, 6 μNAS sensing configs.
	ScaleQuick Scale = iota
	// ScalePaper: population 50, sample 20, 150 cycles, 20 μNAS configs.
	ScalePaper
)

func (s Scale) enasConfig(task nas.Task, lambda float64, seed int64) enas.Config {
	cfg := enas.DefaultConfig(task, lambda)
	cfg.Seed = seed
	cfg.Workers = 4 // deterministic: results merge in generation order
	cfg.Cache = true
	if s == ScaleQuick {
		cfg.Population, cfg.SampleSize, cfg.Cycles, cfg.SensingEvery = 16, 6, 50, 10
	}
	// Telemetry, when attached via SetObs, rides along; it never consumes
	// random state, so instrumented runs stay seed-reproducible.
	return instrument(cfg)
}

func (s Scale) munasConfig(task nas.Task, seed int64) munas.Config {
	cfg := munas.DefaultConfig(task)
	cfg.Seed = seed
	cfg.Workers = 4
	cfg.Cache = true
	if s == ScaleQuick {
		cfg.Population, cfg.SampleSize, cfg.Cycles = 16, 6, 50
	}
	return instrumentMunas(cfg)
}

func (s Scale) munasConfigs() int {
	if s == ScaleQuick {
		return 6
	}
	return 20
}

// Fig10Result holds one task's accuracy/energy comparison (Fig 10a or 10b).
// All energies are ground-truth rescored (E_S + E_M per inference).
type Fig10Result struct {
	Task nas.Task
	// ENASBest holds the per-λ winners (λ = 0, 0.5, 1).
	ENASLambdas []float64
	ENASBest    []pareto.Point
	ENASEntries []enas.Entry
	// ENASFront is the Pareto front over the whole eNAS history.
	ENASFront []pareto.Point
	// MuNASBest holds each sensing configuration's best-accuracy model;
	// MuNASFront is their Pareto front.
	MuNASBest    []pareto.Point
	MuNASEntries []munas.Entry
	MuNASFront   []pareto.Point
}

// truthPointENAS rescoreds an eNAS entry with ground-truth energy.
func truthPoint(truth *nas.TruthEnergy, cand *nas.Candidate, res nas.Result, tag int) pareto.Point {
	e := truth.SensingEnergy(cand) + truth.InferenceEnergy(res.MACsByKind)
	return pareto.Point{Acc: res.Accuracy, Energy: e, Tag: tag}
}

// Fig10 reproduces Fig 10 for one task: eNAS at λ ∈ {0, 0.5, 1} against
// μNAS runs over 20 random sensing configurations, both using the surrogate
// evaluator with their own fitted energy models during search, and both
// rescored with ground truth for reporting.
func Fig10(task nas.Task, scale Scale, seed int64) (*Fig10Result, error) {
	sp := recorder().StartSpan("experiments.fig10",
		obs.Str("task", task.String()), obs.Int64("seed", seed))
	defer sp.End()
	var space *nas.Space
	if task == nas.TaskGesture {
		space = nas.GestureSpace()
	} else {
		space = nas.KWSSpace()
	}
	truth := nas.NewTruthEnergy()

	// Each method searches with its own fitted energy model (§IV-A).
	enasEnergy, err := nas.CalibrateEnergy(space, 300, true, true, seed)
	if err != nil {
		return nil, fmt.Errorf("fig10: eNAS calibration: %w", err)
	}
	munasEnergy, err := nas.CalibrateEnergy(space, 300, false, false, seed+1)
	if err != nil {
		return nil, fmt.Errorf("fig10: µNAS calibration: %w", err)
	}

	res := &Fig10Result{Task: task}

	// eNAS sweeps λ.
	var enasAll []pareto.Point
	for i, lambda := range []float64{0, 0.5, 1} {
		out, err := enas.Search(space, nas.NewSurrogateEvaluator(enasEnergy), scale.enasConfig(task, lambda, seed+int64(10+i)))
		if err != nil {
			return nil, fmt.Errorf("fig10: eNAS λ=%v: %w", lambda, err)
		}
		res.ENASLambdas = append(res.ENASLambdas, lambda)
		res.ENASBest = append(res.ENASBest, truthPoint(truth, out.Best.Cand, out.Best.Res, i))
		res.ENASEntries = append(res.ENASEntries, out.Best)
		for j, e := range out.History {
			if nas.DefaultConstraints(task).CheckAccuracy(e.Res.Accuracy) != nil {
				continue
			}
			enasAll = append(enasAll, truthPoint(truth, e.Cand, e.Res, i*100000+j))
		}
	}
	res.ENASFront = pareto.Front(enasAll)

	// μNAS: 20 random sensing configurations, architecture-only search.
	// The runs are independent, so they execute in parallel; results are
	// merged in configuration order, keeping the experiment deterministic.
	rng := rand.New(rand.NewSource(seed + 99))
	n := scale.munasConfigs()
	sensings := make([]*nas.Candidate, n)
	for i := range sensings {
		sensings[i] = space.RandomCandidate(rng)
	}
	outs := make([]*munas.Outcome, n)
	errs := make([]error, n)
	evo.ForEach(4, n, func(i int) {
		outs[i], errs[i] = munas.Search(space, sensings[i],
			nas.NewSurrogateEvaluator(munasEnergy), scale.munasConfig(task, seed+int64(100+i)))
	})
	var munasAll []pareto.Point
	for i, out := range outs {
		if errs[i] != nil {
			return nil, fmt.Errorf("fig10: µNAS config %d: %w", i, errs[i])
		}
		best := out.BestAccuracy
		res.MuNASBest = append(res.MuNASBest, truthPoint(truth, best.Cand, best.Res, i))
		res.MuNASEntries = append(res.MuNASEntries, best)
		for j, e := range out.History {
			if nas.DefaultConstraints(task).CheckAccuracy(e.Res.Accuracy) != nil {
				continue
			}
			munasAll = append(munasAll, truthPoint(truth, e.Cand, e.Res, i*100000+j))
		}
	}
	res.MuNASFront = pareto.Front(munasAll)
	return res, nil
}

// EnergyRatioAt reproduces the paper's headline comparison ("for a targeted
// accuracy of X, μNAS spends more than 1.5× energy on average"): the mean
// energy of the μNAS searched models whose accuracy lands near the target
// (within ±tol, or above it) against the cheapest eNAS front point reaching
// the target. ok is false if either side has no qualifying point.
func (r *Fig10Result) EnergyRatioAt(target, tol float64) (enasE, munasAvgE, ratio float64, ok bool) {
	e, okE := pareto.CheapestAbove(r.ENASFront, target)
	if !okE {
		return 0, 0, 0, false
	}
	var sum float64
	n := 0
	for _, p := range r.MuNASBest {
		if p.Acc >= target-tol {
			sum += p.Energy
			n++
		}
	}
	if n == 0 {
		return 0, 0, 0, false
	}
	avg := sum / float64(n)
	return e.Energy, avg, avg / e.Energy, true
}

// AccuracyAtBudget returns each method's best reported accuracy within an
// energy budget (the Fig 10b "given 10 mJ" comparison): the eNAS front
// against the μNAS searched models.
func (r *Fig10Result) AccuracyAtBudget(budgetJ float64) (enasAcc, munasAcc float64, ok bool) {
	e, okE := pareto.BestUnderBudget(r.ENASFront, budgetJ)
	m, okM := pareto.BestUnderBudget(r.MuNASBest, budgetJ)
	if !okE || !okM {
		return 0, 0, false
	}
	return e.Acc, m.Acc, true
}

// EndToEndResult is the §V-D summary: per-task SolarML vs PS+μNAS sessions
// and harvesting times.
type EndToEndResult struct {
	Digits *core.EndToEndComparison
	KWS    *core.EndToEndComparison
}

// EndToEnd reproduces §V-D: it takes each task's Fig 10 outcome, averages
// the eNAS winners into the SolarML session and pairs them against the
// μNAS points with the closest accuracies on a PS + deep-sleep baseline.
func EndToEnd(scale Scale, seed int64) (*EndToEndResult, error) {
	sp := recorder().StartSpan("experiments.endtoend", obs.Int64("seed", seed))
	defer sp.End()
	p := core.NewPlatform()
	p.SetObs(recorder())
	out := &EndToEndResult{}
	for _, task := range []nas.Task{nas.TaskGesture, nas.TaskKWS} {
		fig10, err := Fig10(task, scale, seed)
		if err != nil {
			return nil, err
		}
		cmp, err := endToEndFor(p, task, fig10)
		if err != nil {
			return nil, err
		}
		if task == nas.TaskGesture {
			out.Digits = cmp
		} else {
			out.KWS = cmp
		}
	}
	return out, nil
}

// endToEndFor builds the §V-D comparison for one task from its Fig 10 runs,
// following the paper's averaging protocol: the SolarML side averages the
// eNAS winners across λ ∈ {0, 0.5, 1}; the baseline averages the three μNAS
// points with accuracies closest to the eNAS mean.
func endToEndFor(p *core.Platform, task nas.Task, fig10 *Fig10Result) (*core.EndToEndComparison, error) {
	const waitS = 5
	if len(fig10.ENASEntries) == 0 || len(fig10.MuNASEntries) == 0 {
		return nil, fmt.Errorf("endtoend: empty Fig 10 result for %s", task)
	}
	// Mean eNAS accuracy anchors the μNAS pairing.
	var meanAcc float64
	for _, e := range fig10.ENASEntries {
		meanAcc += e.Res.Accuracy
	}
	meanAcc /= float64(len(fig10.ENASEntries))
	// μNAS points at comparable accuracy: everything within ±0.03 of the
	// eNAS mean, or the three closest points if the band is too thin.
	order := make([]int, len(fig10.MuNASEntries))
	for i := range order {
		order[i] = i
	}
	sortByGap(order, fig10.MuNASEntries, meanAcc)
	nBase := 0
	for _, idx := range order {
		gap := fig10.MuNASEntries[idx].Res.Accuracy - meanAcc
		if gap < 0 {
			gap = -gap
		}
		if gap <= 0.03 {
			nBase++
		}
	}
	if nBase < 3 {
		nBase = 3
	}
	if nBase > len(order) {
		nBase = len(order)
	}

	session := func(cfg core.SessionConfig) (*core.SessionReport, error) {
		return p.RunSession(cfg)
	}
	// Average the eNAS sessions; keep the λ=0.5 report as representative.
	var smlTotal float64
	var smlRep *core.SessionReport
	for i, e := range fig10.ENASEntries {
		rep, err := session(core.SolarMLConfig("SolarML "+task.String(), task,
			e.Cand.Gesture, e.Cand.Audio, e.Res.MACsByKind, waitS))
		if err != nil {
			return nil, err
		}
		smlTotal += rep.Total
		if i == 1 || smlRep == nil {
			smlRep = rep
		}
	}
	smlAvg := smlTotal / float64(len(fig10.ENASEntries))
	// Average the baseline sessions.
	var baseTotal float64
	var baseRep *core.SessionReport
	for k := 0; k < nBase; k++ {
		e := fig10.MuNASEntries[order[k]]
		rep, err := session(core.PSBaselineConfig("PS+µNAS "+task.String(), task,
			e.Cand.Gesture, e.Cand.Audio, e.Res.MACsByKind, waitS))
		if err != nil {
			return nil, err
		}
		baseTotal += rep.Total
		if baseRep == nil {
			baseRep = rep
		}
	}
	baseAvg := baseTotal / float64(nBase)

	smlRep.Total = smlAvg
	baseRep.Total = baseAvg
	cmp := &core.EndToEndComparison{
		SolarML:      smlRep,
		Baseline:     baseRep,
		Savings:      1 - smlAvg/baseAvg,
		HarvestTimeS: make(map[float64]float64),
	}
	for _, lux := range []float64{250, 500, 1000} {
		cmp.HarvestTimeS[lux] = p.HarvestTime(smlAvg, lux)
	}
	return cmp, nil
}

// sortByGap orders indices by |accuracy − target|.
func sortByGap(order []int, entries []munas.Entry, target float64) {
	gap := func(i int) float64 {
		g := entries[i].Res.Accuracy - target
		if g < 0 {
			g = -g
		}
		return g
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && gap(order[j]) < gap(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// AblationResult compares eNAS variants at λ = 1 (energy-focused, where
// energy-model fidelity matters most) under ground-truth rescoring, each
// averaged over three seeds: the full method, a variant searching with the
// μNAS total-MACs energy model, a variant whose sensing parameters are
// never grid-refined, and the HarvNet A/E objective.
type AblationResult struct {
	Full        pareto.Point
	TotalMACs   pareto.Point
	NoSensing   pareto.Point
	HarvNetBest pareto.Point
}

// ablationSeeds is the number of seeds averaged per variant.
const ablationSeeds = 3

// Ablation runs the design-choice ablations of DESIGN.md §4.
func Ablation(task nas.Task, scale Scale, seed int64) (*AblationResult, error) {
	sp := recorder().StartSpan("experiments.ablation",
		obs.Str("task", task.String()), obs.Int64("seed", seed))
	defer sp.End()
	var space *nas.Space
	if task == nas.TaskGesture {
		space = nas.GestureSpace()
	} else {
		space = nas.KWSSpace()
	}
	truth := nas.NewTruthEnergy()
	layerwise, err := nas.CalibrateEnergy(space, 300, true, true, seed)
	if err != nil {
		return nil, err
	}
	totalOnly, err := nas.CalibrateEnergy(space, 300, false, true, seed)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{}

	avgENAS := func(energy nas.EnergyModel, freezeSensing bool) (pareto.Point, error) {
		var acc, e float64
		for s := int64(0); s < ablationSeeds; s++ {
			cfg := scale.enasConfig(task, 1, seed+1+s)
			if freezeSensing {
				cfg.SensingEvery = cfg.Cycles + 1
			}
			out, err := enas.Search(space, nas.NewSurrogateEvaluator(energy), cfg)
			if err != nil {
				return pareto.Point{}, err
			}
			p := truthPoint(truth, out.Best.Cand, out.Best.Res, int(s))
			acc += p.Acc
			e += p.Energy
		}
		return pareto.Point{Acc: acc / ablationSeeds, Energy: e / ablationSeeds}, nil
	}

	if res.Full, err = avgENAS(layerwise, false); err != nil {
		return nil, err
	}
	if res.TotalMACs, err = avgENAS(totalOnly, false); err != nil {
		return nil, err
	}
	if res.NoSensing, err = avgENAS(layerwise, true); err != nil {
		return nil, err
	}

	// HarvNet objective from fixed random sensing configurations.
	var acc, e float64
	for s := int64(0); s < ablationSeeds; s++ {
		rng := rand.New(rand.NewSource(seed + 7 + s))
		sensing := space.RandomCandidate(rng)
		hcfg := harvnet.DefaultConfig(task)
		hcfg.Seed = seed + 8 + s
		hcfg.Workers = 4
		hcfg.Cache = true
		if scale == ScaleQuick {
			hcfg.Population, hcfg.SampleSize, hcfg.Cycles = 16, 6, 50
		}
		hout, err := harvnet.Search(space, sensing, nas.NewSurrogateEvaluator(totalOnly), instrumentHarvnet(hcfg))
		if err != nil {
			return nil, err
		}
		p := truthPoint(truth, hout.Best.Cand, hout.Best.Res, int(s))
		acc += p.Acc
		e += p.Energy
	}
	res.HarvNetBest = pareto.Point{Acc: acc / ablationSeeds, Energy: e / ablationSeeds}
	return res, nil
}
