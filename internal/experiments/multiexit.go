package experiments

import (
	"fmt"
	"math/rand"

	"solarml/internal/dataset"
	"solarml/internal/enas"
	"solarml/internal/energymodel"
	"solarml/internal/nas"
	"solarml/internal/nn"
	"solarml/internal/pareto"
	"solarml/internal/quant"
)

// MultiExitPoint is one budget step of the HarvNet-style evaluation: the
// deepest affordable exit under the budget and its test accuracy.
type MultiExitPoint struct {
	BudgetJ  float64
	Exit     int // -1 when no exit is affordable
	Accuracy float64
	EnergyJ  float64 // actual energy through the chosen exit
}

// MultiExitResult is the accuracy-versus-available-energy curve of a
// trained multi-exit network — the mechanism of the HarvNet baseline [5],
// reproduced here as an extension experiment (the paper cites but does not
// re-evaluate it).
type MultiExitResult struct {
	ExitMACs   []int64
	ExitAccs   []float64
	Curve      []MultiExitPoint
	Confident  float64 // accuracy with τ=0.9 confidence routing
	ShareEarly float64 // fraction of samples leaving before the final exit
}

// MultiExit trains a three-exit gesture network for real and sweeps the
// energy budget.
func MultiExit(seed int64) (*MultiExitResult, error) {
	rng := rand.New(rand.NewSource(seed))
	full := dataset.BuildGestureSet(200, 500, seed)
	train, test := full.Split(4)
	cfg := dataset.GestureConfig{Channels: 6, RateHz: 60,
		Quant: quant.Config{Res: quant.Int, Bits: 8}}
	trX, trY, err := train.Materialize(cfg)
	if err != nil {
		return nil, err
	}
	teX, teY, err := test.Materialize(cfg)
	if err != nil {
		return nil, err
	}
	arch := &nn.Arch{
		Input: cfg.InputShape(),
		Body: []nn.LayerSpec{
			{Kind: nn.KindConv, Out: 4, K: 3, Stride: 1, Pad: 1},
			{Kind: nn.KindReLU}, // exit 0
			{Kind: nn.KindMaxPool, K: 2},
			{Kind: nn.KindConv, Out: 8, K: 3, Stride: 1, Pad: 1},
			{Kind: nn.KindReLU}, // exit 1
			{Kind: nn.KindMaxPool, K: 2},
		},
		Classes: dataset.NumGestureClasses,
	}
	m, err := nn.NewMultiExit(arch, []int{1, 4})
	if err != nil {
		return nil, err
	}
	m.Init(rng)
	m.Fit(trX, trY, nn.FitConfig{Epochs: 10, BatchSize: 16, LR: 0.03, Momentum: 0.9, Seed: seed, Compute: computeCtx()})

	coeff := energymodel.DefaultCoefficients()
	res := &MultiExitResult{}
	for k := 0; k < m.NumExits(); k++ {
		res.ExitMACs = append(res.ExitMACs, m.MACsThroughExit(k))
		res.ExitAccs = append(res.ExitAccs, m.AccuracyAtExit(teX, teY, k))
	}
	// Budget sweep from below the cheapest exit to above the deepest.
	eMax := coeff.TrueEnergy(m.MACsByKindThroughExit(m.NumExits() - 1))
	for _, frac := range []float64{0.2, 0.5, 0.8, 1.0, 1.3} {
		budget := eMax * frac
		k := m.DeepestAffordableExit(budget, coeff.TrueEnergy)
		pt := MultiExitPoint{BudgetJ: budget, Exit: k}
		if k >= 0 {
			pt.Accuracy = m.AccuracyAtExit(teX, teY, k)
			pt.EnergyJ = coeff.TrueEnergy(m.MACsByKindThroughExit(k))
		}
		res.Curve = append(res.Curve, pt)
	}
	// Confidence routing at τ = 0.9.
	dec := m.InferConfident(teX, 0.9)
	correct, early := 0, 0
	for i, d := range dec {
		if d.Class == teY[i] {
			correct++
		}
		if d.Exit < m.NumExits()-1 {
			early++
		}
	}
	res.Confident = float64(correct) / float64(len(teY))
	res.ShareEarly = float64(early) / float64(len(teY))
	return res, nil
}

// ObjectiveComparisonResult compares the three search objectives of §IV-B
// on identical space/evaluator/budget: eNAS's normalized λ trade-off, the
// μNAS-style random scalarization, and HarvNet's A/E ratio. Hyper is the
// hypervolume (accuracy × energy-saving area) each objective's feasible
// search front dominates, normalized so eNAS = 1.
type ObjectiveComparisonResult struct {
	ENASHyper    float64
	RandomHyper  float64
	HarvNetHyper float64
}

// hypervolume measures the area dominated by a Pareto front (sorted by
// energy ascending) above acc=accRef and below energy=eRef.
func hypervolume(front []pareto.Point, accRef, eRef float64) float64 {
	hv := 0.0
	bestAcc := accRef
	for _, p := range front { // ascending energy
		if p.Energy >= eRef || p.Acc <= bestAcc {
			continue
		}
		hv += (eRef - p.Energy) * (p.Acc - bestAcc)
		bestAcc = p.Acc
	}
	return hv
}

// ObjectiveComparison runs the same two-phase search with three different
// objectives over the same space, evaluator, and budget, and compares the
// hypervolume of the feasible fronts their histories trace. It isolates
// the §IV-B claim that the λ-objective explores the Pareto frontier
// controllably while A/E cannot and random scalarization is weight-luck.
func ObjectiveComparison(task nas.Task, scale Scale, seed int64) (*ObjectiveComparisonResult, error) {
	var space *nas.Space
	if task == nas.TaskGesture {
		space = nas.GestureSpace()
	} else {
		space = nas.KWSSpace()
	}
	truth := nas.NewTruthEnergy()
	fitted, err := nas.CalibrateEnergy(space, 300, true, true, seed)
	if err != nil {
		return nil, err
	}
	eval := nas.NewSurrogateEvaluator(fitted)

	frontFor := func(objective func(rng *rand.Rand) func(acc, e, eMin, eMax float64) float64, lambdaSweep bool) ([]pareto.Point, error) {
		var pts []pareto.Point
		lambdas := []float64{0.5}
		if lambdaSweep {
			lambdas = []float64{0, 0.5, 1}
		}
		for i, lambda := range lambdas {
			cfg := scale.enasConfig(task, lambda, seed+int64(i))
			if objective != nil {
				cfg.Objective = objective(rand.New(rand.NewSource(seed + int64(i))))
			}
			out, err := enas.Search(space, eval, cfg)
			if err != nil {
				return nil, err
			}
			for j, e := range out.History {
				if nas.DefaultConstraints(task).CheckAccuracy(e.Res.Accuracy) != nil {
					continue
				}
				pts = append(pts, truthPoint(truth, e.Cand, e.Res, i*100000+j))
			}
		}
		return pareto.Front(pts), nil
	}

	enasFront, err := frontFor(nil, true)
	if err != nil {
		return nil, err
	}
	randomFront, err := frontFor(func(rng *rand.Rand) func(acc, e, eMin, eMax float64) float64 {
		return func(acc, e, eMin, eMax float64) float64 {
			w := rng.Float64()
			span := eMax - eMin
			if span <= 0 {
				span = 1
			}
			return w*acc - (1-w)*(e-eMin)/span
		}
	}, false)
	if err != nil {
		return nil, err
	}
	ratioFront, err := frontFor(func(*rand.Rand) func(acc, e, eMin, eMax float64) float64 {
		return func(acc, e, eMin, eMax float64) float64 {
			if e <= 0 {
				return 0
			}
			return acc / e
		}
	}, false)
	if err != nil {
		return nil, err
	}

	// Shared reference point: accuracy floor at the feasibility cap,
	// energy at 1.05× the dearest front point across methods.
	accRef := 1 - nas.DefaultConstraints(task).MaxError
	eRef := 0.0
	for _, front := range [][]pareto.Point{enasFront, randomFront, ratioFront} {
		for _, p := range front {
			if p.Energy > eRef {
				eRef = p.Energy
			}
		}
	}
	eRef *= 1.05
	base := hypervolume(enasFront, accRef, eRef)
	if base == 0 {
		return nil, fmt.Errorf("objective comparison: empty eNAS front")
	}
	return &ObjectiveComparisonResult{
		ENASHyper:    1,
		RandomHyper:  hypervolume(randomFront, accRef, eRef) / base,
		HarvNetHyper: hypervolume(ratioFront, accRef, eRef) / base,
	}, nil
}

// FormatMultiExit renders the result as the rows a HarvNet-style figure
// would plot.
func FormatMultiExit(r *MultiExitResult) string {
	out := "multi-exit gesture network (3 exits):\n"
	for k := range r.ExitMACs {
		out += fmt.Sprintf("  exit %d: %8d MACs, accuracy %.3f\n", k, r.ExitMACs[k], r.ExitAccs[k])
	}
	out += "  budget sweep (deepest affordable exit):\n"
	for _, p := range r.Curve {
		if p.Exit < 0 {
			out += fmt.Sprintf("    budget %7.0f µJ → no exit affordable\n", p.BudgetJ*1e6)
			continue
		}
		out += fmt.Sprintf("    budget %7.0f µJ → exit %d, accuracy %.3f (spends %.0f µJ)\n",
			p.BudgetJ*1e6, p.Exit, p.Accuracy, p.EnergyJ*1e6)
	}
	out += fmt.Sprintf("  confidence routing τ=0.9: accuracy %.3f, %2.0f%% of samples exit early\n",
		r.Confident, r.ShareEarly*100)
	return out
}
