package experiments

import (
	"fmt"
	"strings"

	"solarml/internal/nas"
)

// GenerateReport runs the full evaluation campaign and renders a markdown
// report of paper-versus-measured results — the live counterpart of the
// checked-in EXPERIMENTS.md.
func GenerateReport(scale Scale, seed int64) (string, error) {
	var b strings.Builder
	w := func(format string, args ...interface{}) {
		fmt.Fprintf(&b, format+"\n", args...)
	}
	scaleName := "quick"
	if scale == ScalePaper {
		scaleName = "paper"
	}
	w("# SolarML measured results (scale=%s, seed=%d)", scaleName, seed)
	w("")

	// Fig 1.
	fig1, err := Fig1()
	if err != nil {
		return "", err
	}
	w("## Fig 1 — energy-cost distribution (3 s wait)")
	w("")
	w("| System | E_E | E_S | E_M | total µJ |")
	w("|---|---|---|---|---|")
	for _, r := range fig1 {
		ee, es, em := r.Shares()
		w("| %s | %.1f%% | %.1f%% | %.1f%% | %.0f |", r.Name, ee*100, es*100, em*100, r.Total*1e6)
	}
	w("")

	// Fig 2.
	fig2, err := Fig2()
	if err != nil {
		return "", err
	}
	w("## Fig 2 — energy traces (paper: gesture 38/47/15, KWS 29/53/18)")
	w("")
	for _, r := range fig2 {
		ee, es, em := r.Shares()
		w("- %s: E_E %.1f%% / E_S %.1f%% / E_M %.1f%%, total %.0f µJ",
			r.Name, ee*100, es*100, em*100, r.Total*1e6)
	}
	w("")

	// Fig 6.
	single, resumed, err := Fig6(500)
	if err != nil {
		return "", err
	}
	w("## Fig 6 — sleep mechanism")
	w("")
	w("- single inference: %.0f µJ over %.1f s", single.Trace.TotalEnergy()*1e6, single.Trace.Duration())
	w("- with standby resume: %.0f µJ over %.1f s (one cold boot, two inferences)",
		resumed.Trace.TotalEnergy()*1e6, resumed.Trace.Duration())
	w("")

	// Fig 7.
	w("## Fig 7 — layer energy at 75 k MACs (paper: Dense ≈50 µJ, Conv ≈175 µJ)")
	w("")
	for _, p := range Fig7() {
		if p.MACs == 75_000 {
			w("- %s: %.0f µJ", p.Kind, p.EnergyJ*1e6)
		}
	}
	w("")

	// Table I.
	w("## Table I — estimator R² (paper: layer-wise LR 0.96, total 0.46)")
	w("")
	w("| Target | Proxy | Method | R² |")
	w("|---|---|---|---|")
	for _, r := range Table1(seed) {
		w("| %s | %s | %s | %.3f |", r.Target, r.Proxy, r.Method, r.R2)
	}
	w("")

	// Table III.
	w("## Table III — event detectors")
	w("")
	w("```")
	w("%s", strings.TrimRight(FormatTable3(Table3()), "\n"))
	w("```")
	w("")

	// Fig 9.
	f9 := Fig9(seed)
	w("## Fig 9 — energy-model validation")
	w("")
	w("- sensing mean error %.1f%% (paper ≈3.1%%), p90 %.1f%%",
		f9.SensingMean*100, Percentile(f9.SensingErrs, 0.9)*100)
	w("- inference: ours %.1f%% (paper ≈12.8%%) vs µNAS %.1f%% (paper ≈76.9%%)",
		f9.OursMean*100, f9.MuNASMean*100)
	w("")

	// Fig 10 both tasks + end-to-end.
	for _, task := range []nas.Task{nas.TaskGesture, nas.TaskKWS} {
		f10, err := Fig10(task, scale, seed)
		if err != nil {
			return "", err
		}
		w("## Fig 10 (%s) — eNAS vs µNAS", task)
		w("")
		for i, p := range f10.ENASBest {
			w("- eNAS λ=%.1f: acc %.3f, %.0f µJ", f10.ENASLambdas[i], p.Acc, p.Energy*1e6)
		}
		for _, floor := range []float64{0.82, 0.90} {
			if enasE, muE, ratio, ok := f10.EnergyRatioAt(floor, 0.03); ok {
				w("- @acc %.2f: eNAS %.0f µJ vs µNAS avg %.0f µJ → **%.2f×**",
					floor, enasE*1e6, muE*1e6, ratio)
			}
		}
		w("")
	}

	e2e, err := EndToEnd(scale, seed)
	if err != nil {
		return "", err
	}
	w("## §V-D — end-to-end (paper: digits 27%% saving, KWS 48%%)")
	w("")
	w("- digits: SolarML %.0f µJ vs PS+µNAS %.0f µJ → %.1f%% saving; %.0f s @500 lux",
		e2e.Digits.SolarML.Total*1e6, e2e.Digits.Baseline.Total*1e6,
		e2e.Digits.Savings*100, e2e.Digits.HarvestTimeS[500])
	w("- KWS: SolarML %.0f µJ vs PS+µNAS %.0f µJ → %.1f%% saving; %.0f s @500 lux",
		e2e.KWS.SolarML.Total*1e6, e2e.KWS.Baseline.Total*1e6,
		e2e.KWS.Savings*100, e2e.KWS.HarvestTimeS[500])
	w("")

	// Baseline extension.
	base, err := DTWBaseline(seed)
	if err != nil {
		return "", err
	}
	w("## Extension — DTW baseline")
	w("")
	w("- DTW 1-NN: acc %.3f at E_M %.0f µJ; CNN: acc %.3f at E_M %.0f µJ (%.1f× compute gap)",
		base.DTWAccuracy, base.DTWInferJ*1e6, base.CNNAccuracy, base.CNNInferJ*1e6,
		base.DTWInferJ/base.CNNInferJ)
	return b.String(), nil
}
