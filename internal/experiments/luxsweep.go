package experiments

import (
	"math/rand"

	"solarml/internal/dataset"
	"solarml/internal/nn"
	"solarml/internal/quant"
)

// LuxPoint is one illuminance level's trained accuracy.
type LuxPoint struct {
	Lux      float64
	Accuracy float64
}

// LuxRobustness measures gesture recognition accuracy as the ambient light
// dims: the sensing divider's electronic noise floor is lux-independent,
// so the SNR — and with it the achievable accuracy — falls with
// illuminance. (An extension experiment: the paper evaluates harvesting
// time versus lux, this adds the sensing-quality axis.) Each point trains
// the same small CNN on a corpus captured at that illuminance.
func LuxRobustness(seed int64, luxLevels []float64) ([]LuxPoint, error) {
	cfg := dataset.GestureConfig{Channels: 6, RateHz: 60,
		Quant: quant.Config{Res: quant.Int, Bits: 8}}
	out := make([]LuxPoint, 0, len(luxLevels))
	for _, lux := range luxLevels {
		full := dataset.BuildGestureSet(160, lux, seed) // same gestures, different light
		// A cheap divider/ADC front end: 1.5 mV of electronic noise. At
		// 1000 lux the sense signal spans ≈67 mV (2% noise); at 20 lux it
		// spans ≈1.6 mV and the signal drowns.
		full.NoiseVolts = 1.5e-3
		train, test := full.Split(4)
		trX, trY, err := train.Materialize(cfg)
		if err != nil {
			return nil, err
		}
		teX, teY, err := test.Materialize(cfg)
		if err != nil {
			return nil, err
		}
		arch := &nn.Arch{
			Input: cfg.InputShape(),
			Body: []nn.LayerSpec{
				{Kind: nn.KindConv, Out: 6, K: 3, Stride: 1, Pad: 1},
				{Kind: nn.KindReLU},
				{Kind: nn.KindMaxPool, K: 2},
				{Kind: nn.KindDense, Out: 32},
				{Kind: nn.KindReLU},
			},
			Classes: dataset.NumGestureClasses,
		}
		net, err := arch.Build()
		if err != nil {
			return nil, err
		}
		net.Init(rand.New(rand.NewSource(seed)))
		net.Fit(trX, trY, nn.TrainConfig{Epochs: 8, BatchSize: 16, LR: 0.03, Momentum: 0.9, Seed: seed, Compute: computeCtx()})
		out = append(out, LuxPoint{Lux: lux, Accuracy: net.Accuracy(teX, teY)})
	}
	return out, nil
}
