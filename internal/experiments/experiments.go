// Package experiments implements the paper's evaluation campaign: one
// function per table and figure, returning structured results that the
// solarml CLI, the benchmark harness, and the tests all share. Each
// function is deterministic given its seed.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"solarml/internal/energymodel"
	"solarml/internal/nas"
	"solarml/internal/nn"
	"solarml/internal/regress"
)

// Table1Row is one cell block of Table I: an energy proxy × regression
// method combination and its held-out R².
type Table1Row struct {
	Target string // "inference" or "sensing"
	Proxy  string // "MACs", "layer-wise MACs", "n,r,b,q", "s,d,f"
	Method string // LR, LogR, NR
	R2     float64
}

// String renders the row.
func (r Table1Row) String() string {
	return fmt.Sprintf("%-9s  %-16s  %-4s  R²=%6.3f", r.Target, r.Proxy, r.Method, r.R2)
}

// randomArchMACs draws one model from the layer-diverse measurement zoo —
// the paper's campaign measured "300 models with different layers and
// numbers of MACs", deliberately varied in layer composition rather than
// sampled from the NAS space.
func randomArchMACs(space *nas.Space, rng *rand.Rand) map[nn.LayerKind]int64 {
	return energymodel.ZooMACs(rng)
}

// Table1 reproduces Table I: it runs the 300-measurement campaigns for the
// inference and sensing energy models and scores every proxy × method
// combination on 100 held-out measurements.
func Table1(seed int64) []Table1Row {
	rng := rand.New(rand.NewSource(seed))
	m := energymodel.NewMeasurer(seed + 1)
	gestureSpace := nas.GestureSpace()

	// Inference campaign.
	var train []energymodel.InferenceSample
	for i := 0; i < 300; i++ {
		macs := randomArchMACs(gestureSpace, rng)
		train = append(train, energymodel.InferenceSample{MACs: macs, EnergyJ: m.MeasureInference(macs)})
	}
	var evalMACs []map[nn.LayerKind]int64
	var evalY []float64
	for i := 0; i < 100; i++ {
		macs := randomArchMACs(gestureSpace, rng)
		evalMACs = append(evalMACs, macs)
		evalY = append(evalY, m.MeasureInference(macs))
	}
	scoreInference := func(reg regress.Model, layerwise bool) float64 {
		est := &energymodel.InferenceEstimator{Reg: reg, Layerwise: layerwise}
		if err := est.Fit(train); err != nil {
			panic(err)
		}
		preds := make([]float64, len(evalMACs))
		for i, macs := range evalMACs {
			preds[i] = est.Predict(macs)
		}
		return regress.R2(evalY, preds)
	}

	// Sensing campaign (gesture).
	var gTrain []energymodel.GestureSample
	for i := 0; i < 300; i++ {
		c := gestureSpace.RandomCandidate(rng)
		gTrain = append(gTrain, energymodel.GestureSample{Cfg: c.Gesture, EnergyJ: m.MeasureGestureSensing(c.Gesture)})
	}
	var gEval []energymodel.GestureSample
	for i := 0; i < 100; i++ {
		c := gestureSpace.RandomCandidate(rng)
		gEval = append(gEval, energymodel.GestureSample{Cfg: c.Gesture, EnergyJ: m.MeasureGestureSensing(c.Gesture)})
	}
	scoreSensing := func(reg regress.Model) float64 {
		est := &energymodel.GestureEstimator{Reg: reg}
		if err := est.Fit(gTrain); err != nil {
			panic(err)
		}
		var yTrue, yPred []float64
		for _, s := range gEval {
			yTrue = append(yTrue, s.EnergyJ)
			yPred = append(yPred, est.Predict(s.Cfg))
		}
		return regress.R2(yTrue, yPred)
	}

	// Extension row: the Micronets/MCUNet per-layer lookup table, which
	// is accurate but needs its own dedicated measurement campaign.
	lut, err := energymodel.CalibrateLUT(m, 8, 4)
	if err != nil {
		panic(err)
	}
	lutPreds := make([]float64, len(evalMACs))
	for i, macs := range evalMACs {
		lutPreds[i] = lut.Predict(macs)
	}
	lutR2 := regress.R2(evalY, lutPreds)

	return []Table1Row{
		{"inference", "MACs (µNAS)", "LR", scoreInference(&regress.Linear{}, false)},
		{"inference", "layer-wise MACs", "LR", scoreInference(&regress.Linear{}, true)},
		{"inference", "layer-wise MACs", "LogR", scoreInference(&regress.Logistic{}, true)},
		{"inference", "layer-wise MACs", "NR", scoreInference(&regress.Neural{Seed: seed}, true)},
		{"inference", "per-layer LUT", "interp", lutR2},
		{"sensing", "n,r,b,q", "LR", scoreSensing(&regress.Linear{})},
		{"sensing", "n,r,b,q", "LogR", scoreSensing(&regress.Logistic{})},
		{"sensing", "n,r,b,q", "NR", scoreSensing(&regress.Neural{Seed: seed})},
	}
}

// Fig7Point is one bar of Fig 7: the measured energy of a single layer of
// the given kind at the given MAC count.
type Fig7Point struct {
	Kind    nn.LayerKind
	MACs    int64
	EnergyJ float64
}

// Fig7 reproduces Fig 7: per-layer-kind energy at equal MAC counts.
func Fig7() []Fig7Point {
	coeff := energymodel.DefaultCoefficients()
	var out []Fig7Point
	for _, macs := range []int64{25_000, 75_000, 150_000} {
		for _, kind := range nn.ComputeKinds() {
			out = append(out, Fig7Point{
				Kind: kind, MACs: macs,
				EnergyJ: coeff.TrueEnergy(map[nn.LayerKind]int64{kind: macs}),
			})
		}
	}
	return out
}

// Fig9Result holds the energy-model validation of Fig 9: per-sample
// relative errors for the sensing model and the two inference models, and
// their means.
type Fig9Result struct {
	SensingErrs []float64
	OursErrs    []float64
	MuNASErrs   []float64
	SensingMean float64
	OursMean    float64
	MuNASMean   float64
}

// ErrCDF returns the fraction of errs at or below x.
func ErrCDF(errs []float64, x float64) float64 {
	n := 0
	for _, e := range errs {
		if e <= x {
			n++
		}
	}
	return float64(n) / float64(len(errs))
}

// Percentile returns the p-quantile (0..1) of errs.
func Percentile(errs []float64, p float64) float64 {
	s := append([]float64(nil), errs...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// Fig9 reproduces Fig 9: fit the sensing and inference energy models on 300
// measurements each, then validate on 60 fresh measurements.
func Fig9(seed int64) Fig9Result {
	rng := rand.New(rand.NewSource(seed))
	m := energymodel.NewMeasurer(seed + 1)
	space := nas.GestureSpace()

	// Fit.
	var inferTrain []energymodel.InferenceSample
	var senseTrain []energymodel.GestureSample
	for i := 0; i < 300; i++ {
		macs := randomArchMACs(space, rng)
		inferTrain = append(inferTrain, energymodel.InferenceSample{MACs: macs, EnergyJ: m.MeasureInference(macs)})
		c := space.RandomCandidate(rng)
		senseTrain = append(senseTrain, energymodel.GestureSample{Cfg: c.Gesture, EnergyJ: m.MeasureGestureSensing(c.Gesture)})
	}
	ours := &energymodel.InferenceEstimator{Layerwise: true}
	munas := &energymodel.InferenceEstimator{Layerwise: false}
	sense := &energymodel.GestureEstimator{}
	for _, err := range []error{ours.Fit(inferTrain), munas.Fit(inferTrain), sense.Fit(senseTrain)} {
		if err != nil {
			panic(err)
		}
	}

	// Validate on 60 fresh measurements each (§V-C).
	var res Fig9Result
	var yInfer, pOurs, pMuNAS []float64
	var ySense, pSense []float64
	for i := 0; i < 60; i++ {
		macs := randomArchMACs(space, rng)
		yInfer = append(yInfer, m.MeasureInference(macs))
		pOurs = append(pOurs, ours.Predict(macs))
		pMuNAS = append(pMuNAS, munas.Predict(macs))
		c := space.RandomCandidate(rng)
		ySense = append(ySense, m.MeasureGestureSensing(c.Gesture))
		pSense = append(pSense, sense.Predict(c.Gesture))
	}
	res.SensingErrs = regress.AbsRelErrors(ySense, pSense)
	res.OursErrs = regress.AbsRelErrors(yInfer, pOurs)
	res.MuNASErrs = regress.AbsRelErrors(yInfer, pMuNAS)
	res.SensingMean = regress.MeanAbsRelError(ySense, pSense)
	res.OursMean = regress.MeanAbsRelError(yInfer, pOurs)
	res.MuNASMean = regress.MeanAbsRelError(yInfer, pMuNAS)
	return res
}
