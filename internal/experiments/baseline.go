package experiments

import (
	"math/rand"

	"solarml/internal/dataset"
	"solarml/internal/dtw"
	"solarml/internal/energymodel"
	"solarml/internal/mcu"
	"solarml/internal/nn"
	"solarml/internal/quant"
	"solarml/internal/tensor"
)

// BaselineResult compares model-free DTW template matching (the SolarGest
// [15] approach) against a trained CNN at the same sensing configuration:
// identical E_S, very different E_M. This is the motivation experiment for
// learned tinyML models — template matching holds up on accuracy but pays
// an order of magnitude more compute energy per inference.
type BaselineResult struct {
	SensingJ float64
	// DTW side.
	DTWAccuracy  float64
	DTWMACs      int64
	DTWInferJ    float64
	DTWTemplates int
	// CNN side.
	CNNAccuracy float64
	CNNMACs     int64
	CNNInferJ   float64
}

// tracesFrom converts a materialized gesture tensor (N,1,n,T) into
// per-sample (channels × T) traces for the DTW classifier.
func tracesFrom(x *tensor.Tensor) [][][]float64 {
	n, ch, tt := x.Shape[0], x.Shape[2], x.Shape[3]
	out := make([][][]float64, n)
	for i := 0; i < n; i++ {
		tr := make([][]float64, ch)
		for c := 0; c < ch; c++ {
			tr[c] = make([]float64, tt)
			base := (i*ch + c) * tt
			copy(tr[c], x.Data[base:base+tt])
		}
		out[i] = tr
	}
	return out
}

// DTWBaseline runs the comparison on the digit-gesture task.
func DTWBaseline(seed int64) (*BaselineResult, error) {
	full := dataset.BuildGestureSet(200, 500, seed)
	train, test := full.Split(4)
	cfg := dataset.GestureConfig{Channels: 6, RateHz: 60,
		Quant: quant.Config{Res: quant.Int, Bits: 8}}
	trX, trY, err := train.Materialize(cfg)
	if err != nil {
		return nil, err
	}
	teX, teY, err := test.Materialize(cfg)
	if err != nil {
		return nil, err
	}
	profile := mcu.NRF52840()
	res := &BaselineResult{SensingJ: energymodel.GestureSensingTrue(profile, cfg)}

	// DTW: 5 templates per digit, band-limited.
	clf, err := dtw.NewClassifier(tracesFrom(trX), trY, 5, 10)
	if err != nil {
		return nil, err
	}
	res.DTWTemplates = len(clf.Templates)
	res.DTWAccuracy = clf.Accuracy(tracesFrom(teX), teY)
	res.DTWMACs = clf.MACsPerInference(cfg.Samples())
	res.DTWInferJ = float64(res.DTWMACs) * profile.CPUPerMACJ

	// CNN: a small trained model at the same sensing configuration.
	arch := &nn.Arch{
		Input: cfg.InputShape(),
		Body: []nn.LayerSpec{
			{Kind: nn.KindConv, Out: 6, K: 3, Stride: 1, Pad: 1},
			{Kind: nn.KindReLU},
			{Kind: nn.KindMaxPool, K: 2},
			{Kind: nn.KindDense, Out: 32},
			{Kind: nn.KindReLU},
		},
		Classes: dataset.NumGestureClasses,
	}
	net, err := arch.Build()
	if err != nil {
		return nil, err
	}
	net.Init(rand.New(rand.NewSource(seed)))
	net.Fit(trX, trY, nn.TrainConfig{Epochs: 8, BatchSize: 16, LR: 0.03, Momentum: 0.9, Seed: seed, Compute: computeCtx()})
	res.CNNAccuracy = net.Accuracy(teX, teY)
	res.CNNMACs = net.TotalMACs()
	res.CNNInferJ = energymodel.DefaultCoefficients().TrueEnergy(net.MACsByKind())
	return res, nil
}
