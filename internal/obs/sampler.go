package obs

import (
	"runtime"
	"sync"
	"time"
)

// Runtime gauge names published by SampleRuntime. They sit in the same
// registry namespace as the workload metrics so one metrics snapshot (or
// one Prometheus scrape) carries both.
const (
	GaugeGoroutines    = "runtime.goroutines"
	GaugeHeapAlloc     = "runtime.heap_alloc_bytes"
	GaugeHeapSys       = "runtime.heap_sys_bytes"
	GaugeTotalAlloc    = "runtime.total_alloc_bytes"
	GaugeGCPauseTotal  = "runtime.gc_pause_total_seconds"
	GaugeNumGC         = "runtime.num_gc"
	GaugeLastSampleSec = "runtime.sample_t_seconds"
)

// SampleRuntime publishes the Go runtime's health gauges — goroutine count,
// heap bytes, cumulative allocation, GC pause totals — into the registry.
// It calls runtime.ReadMemStats, which briefly stops the world, so callers
// should keep the cadence at tens of milliseconds or slower.
func SampleRuntime(g *Registry) {
	if g == nil {
		return
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	g.Gauge(GaugeGoroutines).Set(float64(runtime.NumGoroutine()))
	g.Gauge(GaugeHeapAlloc).Set(float64(m.HeapAlloc))
	g.Gauge(GaugeHeapSys).Set(float64(m.HeapSys))
	g.Gauge(GaugeTotalAlloc).Set(float64(m.TotalAlloc))
	g.Gauge(GaugeGCPauseTotal).Set(float64(m.PauseTotalNs) / 1e9)
	g.Gauge(GaugeNumGC).Set(float64(m.NumGC))
}

// Sampler periodically publishes runtime gauges and flushes a metrics
// snapshot into the trace, turning the one final-snapshot-at-exit of PR 1
// into a time series: obs-report (and any Prometheus scraper hitting
// /metrics) then sees counters and gauges evolve across the run instead of
// only their terminal values.
//
// A nil *Sampler is a valid disabled sampler: Stop returns immediately.
type Sampler struct {
	stop chan struct{}
	done chan struct{}

	mu    sync.Mutex
	hooks []func()
}

// OnSample registers fn to run at the start of every subsequent sample tick
// (including the terminal one), before the runtime gauges are read and the
// snapshot is flushed. Producers that keep state outside the registry — the
// energy ledger publishing its joule counters, for example — hook in here
// so every snapshot carries their latest figures. Safe on a nil Sampler and
// safe to call while sampling runs; hooks execute on the sampler goroutine.
func (s *Sampler) OnSample(fn func()) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.hooks = append(s.hooks, fn)
	s.mu.Unlock()
}

// runHooks executes the registered sample hooks.
func (s *Sampler) runHooks() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, fn := range s.hooks {
		fn()
	}
}

// StartSampler begins sampling every interval: each tick publishes runtime
// gauges into reg and — when rec records — appends one KindMetrics snapshot
// to the trace. A non-positive interval defaults to 1s. With a nil reg
// there is nothing to sample and the returned Sampler is nil (disabled);
// rec may be nil, in which case gauges still update for live scraping but
// no snapshots are recorded.
func StartSampler(rec *Recorder, reg *Registry, interval time.Duration) *Sampler {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	s := &Sampler{stop: make(chan struct{}), done: make(chan struct{})}
	start := time.Now()
	sample := func() {
		s.runHooks()
		reg.Gauge(GaugeLastSampleSec).Set(time.Since(start).Seconds())
		SampleRuntime(reg)
		rec.FlushMetrics(reg)
	}
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-s.stop:
				// Terminal sample: short runs still get a closing data
				// point even when no full interval elapsed.
				sample()
				return
			}
		}
	}()
	return s
}

// Stop takes one final sample, flushes it, and waits for the sampling
// goroutine to exit. Safe on a nil Sampler; must be called at most once.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}
