// Package energy is the joule ledger of the SolarML observability stack: a
// lock-cheap accumulator that attributes harvested and consumed energy to a
// fixed taxonomy of named accounts (sense, detect, infer, train, mcu-sleep,
// radio, leak) and — through obs.Span.AddEnergy — to live spans, so traces
// carry energy the same way they carry durations.
//
// The ledger mirrors the obs design contracts:
//
//   - A nil *Ledger is a valid disabled ledger: every method returns
//     immediately and allocates nothing, so the producers (harvest steps,
//     firmware sessions, training loops) carry no conditionals.
//   - The enabled hot path — Charge, Harvest — is one atomic CAS add per
//     call, no locks, no allocations; 50 kHz harvest replays stay cheap.
//   - Sync publishes the accumulated totals into an obs.Registry as
//     monotonic microjoule counters (delta-published so rounding never
//     accumulates), supercap/harvest-rate gauges, and the per-interaction
//     joule histogram, which the Prometheus /metrics endpoint and metrics
//     snapshots then expose without further glue.
package energy

import (
	"math"
	"sync"
	"sync/atomic"

	"solarml/internal/obs"
)

// Account names a destination for consumed energy. The taxonomy is fixed so
// ledgers from millions of simulated devices aggregate by index, not by
// string key.
type Account uint8

const (
	// AccountSense: sensor sampling and pre-processing (the paper's E_S).
	AccountSense Account = iota
	// AccountDetect: event detection — wake-up transitions, the passive
	// hover detector, idle vigilance (the paper's E_E).
	AccountDetect
	// AccountInfer: model execution (the paper's E_M).
	AccountInfer
	// AccountTrain: on-device training / personalization steps.
	AccountTrain
	// AccountSleep: MCU deep-sleep, standby, and off retention draw.
	AccountSleep
	// AccountRadio: telemetry uplink (reserved for the fleet engine).
	AccountRadio
	// AccountLeak: supercap self-discharge.
	AccountLeak
	numAccounts
)

var accountNames = [numAccounts]string{
	"sense", "detect", "infer", "train", "mcu-sleep", "radio", "leak",
}

// String returns the account name used in metric names, CSV artifacts, and
// span attributes.
func (a Account) String() string {
	if int(a) < len(accountNames) {
		return accountNames[a]
	}
	return "unknown"
}

// Accounts returns every account in fixed display order.
func Accounts() []Account {
	out := make([]Account, numAccounts)
	for i := range out {
		out[i] = Account(i)
	}
	return out
}

// Metric names the ledger publishes. Counters are microjoule-integer so
// they survive the int64 counter representation; gauges are SI.
const (
	// CounterHarvestedUJ is the cumulative energy deposited into the
	// supercap (post-clamp, pre-leak), in µJ.
	CounterHarvestedUJ = "energy.harvested_uj"
	// CounterConsumedUJ is the cumulative energy consumed across all
	// accounts, in µJ.
	CounterConsumedUJ = "energy.consumed_uj"
	// GaugeSupercapJ / GaugeSupercapV are the stored-energy level gauges.
	GaugeSupercapJ = "energy.supercap_j"
	GaugeSupercapV = "energy.supercap_v"
	// GaugeHarvestRateW is the instantaneous net harvesting input power.
	GaugeHarvestRateW = "energy.harvest_rate_w"
	// HistInteractionUJ is the joules-per-interaction histogram.
	HistInteractionUJ = "energy.interaction_uj"
)

// AccountCounter returns the µJ counter name for one account, e.g.
// "energy.mcu-sleep_uj" (Prometheus-sanitized to energy_mcu_sleep_uj).
func AccountCounter(a Account) string { return "energy." + a.String() + "_uj" }

// InteractionBucketsUJ are the default bucket bounds of the
// joules-per-interaction histogram, in µJ: from a rejected wake-up
// (tens of µJ) to a deep multi-exit KWS session (tens of mJ).
var InteractionBucketsUJ = []float64{
	10, 50, 100, 500, 1e3, 5e3, 1e4, 5e4, 1e5, 1e6,
}

// atomicF64 is a float64 with atomic add/load/store via CAS on the bits.
type atomicF64 struct{ bits atomic.Uint64 }

func (a *atomicF64) Add(d float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

func (a *atomicF64) Load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicF64) Store(v float64) { a.bits.Store(math.Float64bits(v)) }

// Ledger attributes joules to accounts. Concurrent Charge/Harvest calls are
// safe and lock-free; Sync serializes publication under a short mutex.
type Ledger struct {
	consumed  [numAccounts]atomicF64
	harvested atomicF64
	supercapJ atomicF64
	supercapV atomicF64
	harvestW  atomicF64

	// Pre-resolved registry instruments (nil with a nil registry; every
	// nil instrument is a valid no-op).
	accountC     [numAccounts]*obs.Counter
	harvestedC   *obs.Counter
	consumedC    *obs.Counter
	gSupercapJ   *obs.Gauge
	gSupercapV   *obs.Gauge
	gHarvestW    *obs.Gauge
	hInteraction *obs.Histogram

	// onInteraction, when set, receives interaction joules instead of the
	// registry histogram. ShardedLedger stripes use it to route interaction
	// observations onto the stripe's lock-free histogram lane.
	onInteraction func(joules float64)

	// pub tracks the µJ totals already published to the counters, so Sync
	// adds exact deltas: the counter always equals round(total µJ) and
	// per-sync rounding never accumulates.
	pub struct {
		mu          sync.Mutex
		accountUJ   [numAccounts]int64
		harvestedUJ int64
		consumedUJ  int64
	}
}

// NewLedger returns a ledger publishing into reg on Sync. reg may be nil:
// the ledger still accumulates (Snapshot, Summary, and WriteCSV work) but
// publishes nothing — the shape examples and tests use.
func NewLedger(reg *obs.Registry) *Ledger {
	l := &Ledger{}
	for a := Account(0); a < numAccounts; a++ {
		l.accountC[a] = reg.Counter(AccountCounter(a))
	}
	l.harvestedC = reg.Counter(CounterHarvestedUJ)
	l.consumedC = reg.Counter(CounterConsumedUJ)
	l.gSupercapJ = reg.Gauge(GaugeSupercapJ)
	l.gSupercapV = reg.Gauge(GaugeSupercapV)
	l.gHarvestW = reg.Gauge(GaugeHarvestRateW)
	l.hInteraction = reg.Histogram(HistInteractionUJ, InteractionBucketsUJ)
	return l
}

// Enabled reports whether the ledger records anything.
func (l *Ledger) Enabled() bool { return l != nil }

// Charge attributes joules of consumption to the account. Non-positive
// charges are dropped (producers pass raw deltas that can round to zero or
// slightly below).
func (l *Ledger) Charge(a Account, joules float64) {
	if l == nil || joules <= 0 || a >= numAccounts {
		return
	}
	l.consumed[a].Add(joules)
}

// ChargeSpan charges the account and attributes the same joules to the
// span, which will report them as an energy_uj attribute at End. sp may be
// nil or disabled; the account charge still lands.
func (l *Ledger) ChargeSpan(sp *obs.Span, a Account, joules float64) {
	if l == nil || joules <= 0 || a >= numAccounts {
		return
	}
	l.consumed[a].Add(joules)
	if sp != nil {
		sp.AddEnergy(joules)
	}
}

// Harvest credits joules of income (energy actually deposited into
// storage). Non-positive amounts are dropped.
func (l *Ledger) Harvest(joules float64) {
	if l == nil || joules <= 0 {
		return
	}
	l.harvested.Add(joules)
}

// SetSupercap records the storage level: terminal voltage and stored
// joules. Published immediately as gauges when a registry is attached.
func (l *Ledger) SetSupercap(volts, joules float64) {
	if l == nil {
		return
	}
	l.supercapV.Store(volts)
	l.supercapJ.Store(joules)
	l.gSupercapV.Set(volts)
	l.gSupercapJ.Set(joules)
}

// SetHarvestRate records the instantaneous net harvesting input power in
// watts, published immediately as a gauge when a registry is attached.
func (l *Ledger) SetHarvestRate(watts float64) {
	if l == nil {
		return
	}
	l.harvestW.Store(watts)
	l.gHarvestW.Set(watts)
}

// ObserveInteraction records one end-to-end interaction's energy in the
// joules-per-interaction histogram (µJ buckets).
func (l *Ledger) ObserveInteraction(joules float64) {
	if l == nil {
		return
	}
	if l.onInteraction != nil {
		l.onInteraction(joules)
		return
	}
	l.hInteraction.Observe(joules * 1e6)
}

// Consumed returns the joules charged to one account so far.
func (l *Ledger) Consumed(a Account) float64 {
	if l == nil || a >= numAccounts {
		return 0
	}
	return l.consumed[a].Load()
}

// TotalConsumed returns the joules charged across all accounts.
func (l *Ledger) TotalConsumed() float64 {
	if l == nil {
		return 0
	}
	var t float64
	for i := range l.consumed {
		t += l.consumed[i].Load()
	}
	return t
}

// TotalHarvested returns the harvested joules so far.
func (l *Ledger) TotalHarvested() float64 {
	if l == nil {
		return 0
	}
	return l.harvested.Load()
}

// Sync publishes the accumulated totals into the registry instruments:
// counter deltas in µJ (the counter tracks round(total µJ) exactly) and the
// level gauges. Call it from a sampler hook (obs/cli wires this) or before
// any explicit metrics flush; a nil ledger or one built over a nil registry
// is a no-op.
func (l *Ledger) Sync() {
	if l == nil || l.harvestedC == nil {
		return
	}
	l.pub.mu.Lock()
	var consumedUJ float64
	for i := range l.consumed {
		j := l.consumed[i].Load()
		consumedUJ += j * 1e6
		tot := int64(math.Round(j * 1e6))
		if d := tot - l.pub.accountUJ[i]; d != 0 {
			l.accountC[i].Add(d)
			l.pub.accountUJ[i] = tot
		}
	}
	if tot := int64(math.Round(consumedUJ)); tot != l.pub.consumedUJ {
		l.consumedC.Add(tot - l.pub.consumedUJ)
		l.pub.consumedUJ = tot
	}
	if tot := int64(math.Round(l.harvested.Load() * 1e6)); tot != l.pub.harvestedUJ {
		l.harvestedC.Add(tot - l.pub.harvestedUJ)
		l.pub.harvestedUJ = tot
	}
	l.pub.mu.Unlock()
	l.gSupercapV.Set(l.supercapV.Load())
	l.gSupercapJ.Set(l.supercapJ.Load())
	l.gHarvestW.Set(l.harvestW.Load())
}

// Snapshot is a point-in-time copy of the ledger.
type Snapshot struct {
	// AccountJ is indexed by Account, one entry per Accounts().
	AccountJ []float64
	// HarvestedJ is the income side; ConsumedJ the sum of AccountJ.
	HarvestedJ float64
	ConsumedJ  float64
	// SupercapJ/SupercapV/HarvestRateW mirror the level gauges.
	SupercapJ, SupercapV, HarvestRateW float64
}

// Account returns one account's joules from the snapshot.
func (s Snapshot) Account(a Account) float64 {
	if int(a) < len(s.AccountJ) {
		return s.AccountJ[a]
	}
	return 0
}

// NetJ returns harvested minus consumed joules.
func (s Snapshot) NetJ() float64 { return s.HarvestedJ - s.ConsumedJ }

// Snapshot copies the ledger state; a nil ledger yields a zero snapshot
// with a non-nil (empty-total) account slice.
func (l *Ledger) Snapshot() Snapshot {
	s := Snapshot{AccountJ: make([]float64, numAccounts)}
	if l == nil {
		return s
	}
	for i := range l.consumed {
		s.AccountJ[i] = l.consumed[i].Load()
		s.ConsumedJ += s.AccountJ[i]
	}
	s.HarvestedJ = l.harvested.Load()
	s.SupercapJ = l.supercapJ.Load()
	s.SupercapV = l.supercapV.Load()
	s.HarvestRateW = l.harvestW.Load()
	return s
}
