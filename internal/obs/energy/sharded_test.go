package energy

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"solarml/internal/obs"
)

// TestShardedLedgerEquivalence charges the same work into a sharded and a
// plain ledger and checks totals, registry counters, and the interaction
// histogram agree.
func TestShardedLedgerEquivalence(t *testing.T) {
	const workers, perWorker = 4, 1000

	shardedReg := obs.NewRegistry()
	sl := NewShardedLedger(shardedReg, workers)
	plainReg := obs.NewRegistry()
	pl := NewLedger(plainReg)
	var plainMu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stripe := sl.Stripe(w)
			for i := 0; i < perWorker; i++ {
				stripe.Charge(AccountSense, 1e-6)
				stripe.Charge(AccountInfer, 3e-6)
				stripe.Harvest(5e-6)
				stripe.ObserveInteraction(4e-6)
				plainMu.Lock()
				pl.Charge(AccountSense, 1e-6)
				pl.Charge(AccountInfer, 3e-6)
				pl.Harvest(5e-6)
				pl.ObserveInteraction(4e-6)
				plainMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	pl.Sync()

	ss, ps := sl.Snapshot(), pl.Snapshot()
	for _, a := range Accounts() {
		if math.Abs(ss.Account(a)-ps.Account(a)) > 1e-12 {
			t.Fatalf("account %s: sharded %g plain %g", a, ss.Account(a), ps.Account(a))
		}
	}
	if math.Abs(ss.HarvestedJ-ps.HarvestedJ) > 1e-12 {
		t.Fatalf("harvested: %g vs %g", ss.HarvestedJ, ps.HarvestedJ)
	}

	shardedSnap := shardedReg.Snapshot() // runs the OnSnapshot hooks
	plainSnap := plainReg.Snapshot()
	for _, name := range []string{
		AccountCounter(AccountSense), AccountCounter(AccountInfer),
		CounterHarvestedUJ, CounterConsumedUJ,
	} {
		if got, want := shardedSnap.Counters[name], plainSnap.Counters[name]; got != want {
			t.Fatalf("counter %s: sharded %d plain %d", name, got, want)
		}
	}
	sh, ph := shardedSnap.Histograms[HistInteractionUJ], plainSnap.Histograms[HistInteractionUJ]
	if sh.Count != ph.Count {
		t.Fatalf("interaction histogram count: %d vs %d", sh.Count, ph.Count)
	}
	for i := range sh.Counts {
		if sh.Counts[i] != ph.Counts[i] {
			t.Fatalf("interaction bucket %d: %d vs %d", i, sh.Counts[i], ph.Counts[i])
		}
	}
}

// TestShardedLedgerNilAndHelpers covers the nil contract and the reporting
// helpers.
func TestShardedLedgerNilAndHelpers(t *testing.T) {
	var sl *ShardedLedger
	if sl.Stripe(3) != nil {
		t.Fatal("nil sharded ledger must yield nil stripe")
	}
	sl.Stripe(0).Charge(AccountSense, 1) // nil stripe is a valid no-op
	sl.Sync()
	if sl.Workers() != 0 || sl.Snapshot().ConsumedJ != 0 {
		t.Fatal("nil sharded ledger not empty")
	}

	sl = NewShardedLedger(nil, 2)
	sl.Stripe(0).Charge(AccountInfer, 2e-6)
	sl.Stripe(1).Harvest(1e-6)
	sl.Sync() // registry-less: must be a no-op, not a panic
	tot := sl.AccountTotals()
	if math.Abs(tot["infer"]-2e-6) > 1e-18 || math.Abs(tot["harvested"]-1e-6) > 1e-18 {
		t.Fatalf("AccountTotals = %v", tot)
	}
	if !strings.Contains(sl.Summary(), "infer") {
		t.Fatalf("Summary missing account:\n%s", sl.Summary())
	}
	var b strings.Builder
	if err := sl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "consumed,infer,") {
		t.Fatalf("CSV missing account row:\n%s", b.String())
	}
}

// TestShardedLedgerHotPathAllocs pins the striped charge path at zero
// allocations.
func TestShardedLedgerHotPathAllocs(t *testing.T) {
	sl := NewShardedLedger(nil, 2)
	stripe := sl.Stripe(0)
	if n := testing.AllocsPerRun(1000, func() {
		stripe.Charge(AccountSense, 1e-6)
		stripe.Harvest(2e-6)
		stripe.ObserveInteraction(3e-6)
	}); n != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", n)
	}
}

// BenchmarkLedgerContention compares a single shared ledger against striped
// lanes across worker counts — the number that justifies the sharding.
func BenchmarkLedgerContention(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sharded/stripes=%d", workers), func(b *testing.B) {
			sl := NewShardedLedger(nil, workers)
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				stripe := sl.Stripe(int(next.Add(1) - 1))
				for pb.Next() {
					stripe.Charge(AccountInfer, 1e-6)
					stripe.ObserveInteraction(4e-6)
				}
			})
		})
	}
	b.Run("shared", func(b *testing.B) {
		l := NewLedger(obs.NewRegistry())
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				l.Charge(AccountInfer, 1e-6)
				l.ObserveInteraction(4e-6)
			}
		})
	})
}
