package energy

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteCSV writes the snapshot as a small machine-readable artifact: one
// row per account plus the harvested/consumed/net totals, with each
// consumption row's share of total consumption. Zero accounts are kept so
// downstream joins see the full taxonomy.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "row,account,joules,share"); err != nil {
		return err
	}
	for _, a := range Accounts() {
		share := 0.0
		if s.ConsumedJ > 0 {
			share = s.Account(a) / s.ConsumedJ
		}
		if _, err := fmt.Fprintf(w, "consumed,%s,%.9g,%.4f\n", a, s.Account(a), share); err != nil {
			return err
		}
	}
	for _, row := range []struct {
		name string
		j    float64
	}{
		{"harvested", s.HarvestedJ},
		{"consumed", s.ConsumedJ},
		{"net", s.NetJ()},
	} {
		if _, err := fmt.Fprintf(w, "total,%s,%.9g,\n", row.name, row.j); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the ledger's current snapshot; see Snapshot.WriteCSV.
func (l *Ledger) WriteCSV(w io.Writer) error { return l.Snapshot().WriteCSV(w) }

// Summary renders a human-readable per-account breakdown, largest consumer
// first, with harvested/consumed/net totals — the energy twin of
// powertrace.Recorder.Summary.
func (s Snapshot) Summary() string {
	type row struct {
		a Account
		j float64
	}
	rows := make([]row, 0, numAccounts)
	for _, a := range Accounts() {
		if j := s.Account(a); j > 0 {
			rows = append(rows, row{a, j})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].j > rows[j].j })

	var b strings.Builder
	b.WriteString("energy ledger:\n")
	if len(rows) == 0 {
		b.WriteString("  (no consumption recorded)\n")
	}
	for _, r := range rows {
		share := 100 * r.j / s.ConsumedJ
		fmt.Fprintf(&b, "  %-10s %12.1f µJ  (%5.1f%%)\n", r.a, r.j*1e6, share)
	}
	fmt.Fprintf(&b, "  consumed   %12.1f µJ\n", s.ConsumedJ*1e6)
	fmt.Fprintf(&b, "  harvested  %12.1f µJ\n", s.HarvestedJ*1e6)
	fmt.Fprintf(&b, "  net        %+12.1f µJ\n", s.NetJ()*1e6)
	return b.String()
}

// Summary renders the ledger's current snapshot; see Snapshot.Summary.
func (l *Ledger) Summary() string { return l.Snapshot().Summary() }
