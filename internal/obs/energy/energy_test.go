package energy

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"solarml/internal/obs"
)

func TestAccountNames(t *testing.T) {
	want := []string{"sense", "detect", "infer", "train", "mcu-sleep", "radio", "leak"}
	got := Accounts()
	if len(got) != len(want) {
		t.Fatalf("Accounts() = %d entries, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.String() != want[i] {
			t.Errorf("account %d = %q, want %q", i, a, want[i])
		}
	}
	if Account(200).String() != "unknown" {
		t.Errorf("out-of-range account name = %q, want unknown", Account(200))
	}
	if got := AccountCounter(AccountSleep); got != "energy.mcu-sleep_uj" {
		t.Errorf("AccountCounter(mcu-sleep) = %q", got)
	}
}

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger(nil)
	l.Charge(AccountSense, 1e-3)
	l.Charge(AccountSense, 2e-3)
	l.Charge(AccountInfer, 5e-3)
	l.Charge(AccountInfer, -1) // dropped
	l.Charge(Account(250), 1)  // dropped: out of range
	l.Harvest(10e-3)
	l.Harvest(0) // dropped

	if got := l.Consumed(AccountSense); math.Abs(got-3e-3) > 1e-15 {
		t.Errorf("sense = %g, want 3e-3", got)
	}
	if got := l.TotalConsumed(); math.Abs(got-8e-3) > 1e-15 {
		t.Errorf("total consumed = %g, want 8e-3", got)
	}
	if got := l.TotalHarvested(); got != 10e-3 {
		t.Errorf("harvested = %g, want 10e-3", got)
	}
	s := l.Snapshot()
	if math.Abs(s.NetJ()-2e-3) > 1e-15 {
		t.Errorf("net = %g, want 2e-3", s.NetJ())
	}
	if got := s.Account(AccountInfer); got != 5e-3 {
		t.Errorf("snapshot infer = %g, want 5e-3", got)
	}
}

func TestNilLedgerIsNoop(t *testing.T) {
	var l *Ledger
	l.Charge(AccountInfer, 1)
	l.ChargeSpan(nil, AccountSense, 1)
	l.Harvest(1)
	l.SetSupercap(3.0, 4.5)
	l.SetHarvestRate(0.01)
	l.ObserveInteraction(1e-3)
	l.Sync()
	if l.Enabled() {
		t.Error("nil ledger reports Enabled")
	}
	if l.TotalConsumed() != 0 || l.TotalHarvested() != 0 {
		t.Error("nil ledger accumulated energy")
	}
	s := l.Snapshot()
	if s.ConsumedJ != 0 || len(s.AccountJ) == 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
}

// TestSyncPublishesExactMicrojoules pins the delta-publishing contract: after
// any number of Syncs the counter equals round(total µJ) — per-sync rounding
// must not accumulate.
func TestSyncPublishesExactMicrojoules(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLedger(reg)

	// 0.4 µJ per charge: naive per-sync rounding would publish 0 forever.
	for i := 0; i < 5; i++ {
		l.Charge(AccountSense, 0.4e-6)
		l.Sync()
	}
	snap := reg.Snapshot()
	if got := snap.Counters["energy.sense_uj"]; got != 2 {
		t.Errorf("sense counter = %d µJ, want 2 (round(5*0.4))", got)
	}
	if got := snap.Counters[CounterConsumedUJ]; got != 2 {
		t.Errorf("consumed counter = %d µJ, want 2", got)
	}

	l.Harvest(1.2345e-3)
	l.Charge(AccountInfer, 7.7e-6)
	l.Sync()
	l.Sync() // idempotent when nothing changed
	snap = reg.Snapshot()
	if got := snap.Counters[CounterHarvestedUJ]; got != 1235 {
		t.Errorf("harvested counter = %d µJ, want 1235", got)
	}
	if got := snap.Counters["energy.infer_uj"]; got != 8 {
		t.Errorf("infer counter = %d µJ, want 8", got)
	}
	if got := snap.Counters[CounterConsumedUJ]; got != 10 {
		t.Errorf("consumed counter = %d µJ, want 10 (round(2+7.7))", got)
	}
}

func TestGaugesAndHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLedger(reg)
	l.SetSupercap(2.5, 3.125)
	l.SetHarvestRate(0.002)
	l.ObserveInteraction(450e-6) // 450 µJ
	l.ObserveInteraction(30e-6)  // 30 µJ
	l.Sync()

	snap := reg.Snapshot()
	if got := snap.Gauges[GaugeSupercapV]; got != 2.5 {
		t.Errorf("supercap_v = %g", got)
	}
	if got := snap.Gauges[GaugeSupercapJ]; got != 3.125 {
		t.Errorf("supercap_j = %g", got)
	}
	if got := snap.Gauges[GaugeHarvestRateW]; got != 0.002 {
		t.Errorf("harvest_rate_w = %g", got)
	}
	h, ok := snap.Histograms[HistInteractionUJ]
	if !ok {
		t.Fatal("interaction histogram missing")
	}
	if h.Count != 2 {
		t.Errorf("histogram count = %d, want 2", h.Count)
	}
	if math.Abs(h.Sum-480) > 1e-9 {
		t.Errorf("histogram sum = %g µJ, want 480", h.Sum)
	}
}

func TestChargeSpanAttributesEnergy(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	l := NewLedger(nil)

	sp := rec.StartSpan("session")
	l.ChargeSpan(&sp, AccountInfer, 2e-3)
	l.ChargeSpan(&sp, AccountInfer, 1e-3)
	sp.End()
	rec.Finish("ok")
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	events, skipped, err := obs.ScanTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("trace had %d unparseable lines", skipped)
	}
	found := false
	for _, ev := range events {
		if ev.Name == "session" {
			found = true
			if got := ev.Float(obs.AttrEnergyUJ); math.Abs(got-3000) > 1e-9 {
				t.Errorf("span energy_uj = %g, want 3000", got)
			}
		}
	}
	if !found {
		t.Fatal("session span not found in trace")
	}
	if got := l.Consumed(AccountInfer); math.Abs(got-3e-3) > 1e-15 {
		t.Errorf("ledger infer = %g, want 3e-3", got)
	}
}

func TestLedgerConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLedger(reg)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Charge(AccountInfer, 1e-6)
				l.Harvest(2e-6)
				if i%100 == 0 {
					l.Sync()
				}
			}
		}()
	}
	wg.Wait()
	l.Sync()
	if got := l.Consumed(AccountInfer); math.Abs(got-workers*per*1e-6) > 1e-9 {
		t.Errorf("infer = %g, want %g", got, workers*per*1e-6)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["energy.infer_uj"]; got != workers*per {
		t.Errorf("infer counter = %d, want %d", got, workers*per)
	}
	if got := snap.Counters[CounterHarvestedUJ]; got != 2*workers*per {
		t.Errorf("harvested counter = %d, want %d", got, 2*workers*per)
	}
}

func TestWriteCSV(t *testing.T) {
	l := NewLedger(nil)
	l.Charge(AccountSense, 1e-3)
	l.Charge(AccountInfer, 3e-3)
	l.Harvest(5e-3)

	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + 7 accounts + 3 totals
	if len(lines) != 11 {
		t.Fatalf("CSV has %d lines, want 11:\n%s", len(lines), out)
	}
	if lines[0] != "row,account,joules,share" {
		t.Errorf("header = %q", lines[0])
	}
	for _, want := range []string{
		"consumed,sense,0.001,0.2500",
		"consumed,infer,0.003,0.7500",
		"consumed,radio,0,0.0000",
		"total,harvested,0.005,",
		"total,consumed,0.004,",
		"total,net,0.001,",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing line %q:\n%s", want, out)
		}
	}
}

func TestSummary(t *testing.T) {
	l := NewLedger(nil)
	l.Charge(AccountInfer, 3e-3)
	l.Charge(AccountSense, 1e-3)
	l.Harvest(5e-3)
	s := l.Summary()
	for _, want := range []string{"infer", "sense", "consumed", "harvested", "net"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	// Largest consumer listed first.
	if strings.Index(s, "infer") > strings.Index(s, "sense") {
		t.Errorf("summary not sorted by consumption:\n%s", s)
	}
	empty := NewLedger(nil).Summary()
	if !strings.Contains(empty, "no consumption") {
		t.Errorf("empty summary = %q", empty)
	}
}
