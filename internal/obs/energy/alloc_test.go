//go:build !race

package energy

import (
	"testing"

	"solarml/internal/obs"
)

// TestNoopLedgerZeroAlloc pins the disabled-path contract: a nil ledger (and
// a nil span behind it) makes every producer call free, mirroring
// obs.TestNoopZeroAlloc. (Excluded under -race, whose instrumentation
// changes allocation behaviour.)
func TestNoopLedgerZeroAlloc(t *testing.T) {
	var l *Ledger
	var sp obs.Span
	allocs := testing.AllocsPerRun(1000, func() {
		l.Charge(AccountInfer, 1e-3)
		l.ChargeSpan(&sp, AccountSense, 1e-3)
		l.Harvest(2e-3)
		l.SetSupercap(3.0, 4.5)
		l.SetHarvestRate(0.01)
		l.ObserveInteraction(1e-3)
		l.Sync()
	})
	if allocs != 0 {
		t.Fatalf("disabled ledger allocated %.1f times per op, want 0", allocs)
	}
}

// TestEnabledChargeZeroAlloc pins the enabled hot path: Charge/Harvest on a
// live ledger are one atomic add, no allocations — the property that lets
// harvest replays charge the ledger inside their per-step loop.
func TestEnabledChargeZeroAlloc(t *testing.T) {
	l := NewLedger(obs.NewRegistry())
	allocs := testing.AllocsPerRun(1000, func() {
		l.Charge(AccountInfer, 1e-6)
		l.Harvest(2e-6)
	})
	if allocs != 0 {
		t.Fatalf("enabled ledger charge allocated %.1f times per op, want 0", allocs)
	}
}

// BenchmarkNoopLedgerCharge reports the cost of a fully disabled charge.
func BenchmarkNoopLedgerCharge(b *testing.B) {
	var l *Ledger
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Charge(AccountInfer, 1e-6)
	}
}

// BenchmarkLedgerCharge reports the enabled atomic-add hot path.
func BenchmarkLedgerCharge(b *testing.B) {
	l := NewLedger(obs.NewRegistry())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Charge(AccountInfer, 1e-6)
	}
}

// BenchmarkLedgerChargeSpan reports a charge attributed to a live span.
func BenchmarkLedgerChargeSpan(b *testing.B) {
	l := NewLedger(obs.NewRegistry())
	rec := obs.NewRecorder(discard{})
	sp := rec.StartSpan("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.ChargeSpan(&sp, AccountInfer, 1e-6)
	}
}

// BenchmarkLedgerSync reports the publication cost of one Sync.
func BenchmarkLedgerSync(b *testing.B) {
	l := NewLedger(obs.NewRegistry())
	l.Charge(AccountInfer, 1e-3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Charge(AccountSense, 1e-9)
		l.Sync()
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
