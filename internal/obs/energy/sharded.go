package energy

import (
	"io"
	"math"
	"sync"

	"solarml/internal/obs"
	"solarml/internal/obs/fleetobs"
)

// ShardedLedger is the fleet-scale joule ledger: one accumulate-only Ledger
// stripe per worker, summed on read. The single Ledger is already lock-free,
// but at fleet scale every worker's Charge lands a CAS on the same account
// cache line and the interaction histogram serializes on its mutex — the
// fleet loop spends its time in retries instead of simulation. Stripes give
// each worker private lines (the fleetobs discipline); a registry hook
// publishes summed totals as exact µJ counter deltas on every snapshot, so
// Prometheus scrapes and metrics flushes see the same numbers a single
// shared ledger would have shown.
//
// A nil *ShardedLedger is a valid disabled ledger: Stripe returns a nil
// *Ledger (itself a valid no-op) and every method returns zero values.
type ShardedLedger struct {
	stripes []*Ledger
	// hist carries the joules-per-interaction histogram on the striped
	// lane; stripe ledgers route ObserveInteraction here via onInteraction.
	hist *fleetobs.ShardedHistogram

	accountC   [numAccounts]*obs.Counter
	harvestedC *obs.Counter
	consumedC  *obs.Counter

	pub struct {
		mu          sync.Mutex
		accountUJ   [numAccounts]int64
		harvestedUJ int64
		consumedUJ  int64
	}
}

// NewShardedLedger returns a ledger striped across the given worker count
// (values < 1 become 1). With a non-nil registry it publishes the same
// counter and histogram names as NewLedger — energy.*_uj and
// energy.interaction_uj — keeping fleet metrics drop-in compatible with
// single-device runs. The supercap and harvest-rate gauges are not
// published: they are per-device levels with no fleet-wide meaning.
func NewShardedLedger(reg *obs.Registry, stripes int) *ShardedLedger {
	if stripes < 1 {
		stripes = 1
	}
	sl := &ShardedLedger{
		stripes: make([]*Ledger, stripes),
		hist:    fleetobs.NewShardedHistogram(reg, HistInteractionUJ, InteractionBucketsUJ, stripes),
	}
	for w := range sl.stripes {
		l := NewLedger(nil)
		w := w
		l.onInteraction = func(joules float64) { sl.hist.Observe(w, joules*1e6) }
		sl.stripes[w] = l
	}
	if reg != nil {
		for a := Account(0); a < numAccounts; a++ {
			sl.accountC[a] = reg.Counter(AccountCounter(a))
		}
		sl.harvestedC = reg.Counter(CounterHarvestedUJ)
		sl.consumedC = reg.Counter(CounterConsumedUJ)
		reg.OnSnapshot(sl.Sync)
	}
	return sl
}

// Stripe returns worker w's private ledger lane (any w is valid, wrapped
// onto the stripe count). Hand it to the worker's devices as their Config
// ledger: every Charge/Harvest/ObserveInteraction lands on worker-private
// cache lines. Nil-safe: a nil ShardedLedger yields a nil (disabled) Ledger.
func (sl *ShardedLedger) Stripe(w int) *Ledger {
	if sl == nil {
		return nil
	}
	return sl.stripes[uint(w)%uint(len(sl.stripes))]
}

// Workers returns the stripe count (0 for a nil ledger).
func (sl *ShardedLedger) Workers() int {
	if sl == nil {
		return 0
	}
	return len(sl.stripes)
}

// Snapshot sums the stripes into one fleet-wide ledger snapshot. The
// supercap and harvest-rate fields stay zero (per-device levels).
func (sl *ShardedLedger) Snapshot() Snapshot {
	s := Snapshot{AccountJ: make([]float64, numAccounts)}
	if sl == nil {
		return s
	}
	for _, l := range sl.stripes {
		for i := range l.consumed {
			j := l.consumed[i].Load()
			s.AccountJ[i] += j
			s.ConsumedJ += j
		}
		s.HarvestedJ += l.harvested.Load()
	}
	return s
}

// AccountTotals flattens the snapshot to name → joules, with harvested and
// consumed totals — the shape the fleet inspector serves on /debug/fleet.
func (sl *ShardedLedger) AccountTotals() map[string]float64 {
	s := sl.Snapshot()
	out := make(map[string]float64, numAccounts+2)
	for _, a := range Accounts() {
		out[a.String()] = s.Account(a)
	}
	out["harvested"] = s.HarvestedJ
	out["consumed"] = s.ConsumedJ
	return out
}

// Summary renders the summed snapshot; see Snapshot.Summary.
func (sl *ShardedLedger) Summary() string { return sl.Snapshot().Summary() }

// WriteCSV writes the summed snapshot; see Snapshot.WriteCSV.
func (sl *ShardedLedger) WriteCSV(w io.Writer) error { return sl.Snapshot().WriteCSV(w) }

// Sync publishes the summed stripe totals into the registry counters as
// exact µJ deltas, mirroring Ledger.Sync. Registered as an OnSnapshot hook,
// so every registry consumer reads current totals; explicit calls are
// idempotent. (The interaction histogram syncs through its own hook.)
func (sl *ShardedLedger) Sync() {
	if sl == nil || sl.harvestedC == nil {
		return
	}
	s := sl.Snapshot()
	sl.pub.mu.Lock()
	for i := range s.AccountJ {
		tot := int64(math.Round(s.AccountJ[i] * 1e6))
		if d := tot - sl.pub.accountUJ[i]; d != 0 {
			sl.accountC[i].Add(d)
			sl.pub.accountUJ[i] = tot
		}
	}
	if tot := int64(math.Round(s.ConsumedJ * 1e6)); tot != sl.pub.consumedUJ {
		sl.consumedC.Add(tot - sl.pub.consumedUJ)
		sl.pub.consumedUJ = tot
	}
	if tot := int64(math.Round(s.HarvestedJ * 1e6)); tot != sl.pub.harvestedUJ {
		sl.harvestedC.Add(tot - sl.pub.harvestedUJ)
		sl.pub.harvestedUJ = tot
	}
	sl.pub.mu.Unlock()
}
