package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe metrics registry. A nil *Registry is a
// valid no-op: every lookup returns a nil instrument whose methods do
// nothing, so instrumented code needs no guards. Instruments are cheap to
// look up but hot loops should resolve them once up front — the instruments
// themselves update lock-free (counters, gauges) or under a short mutex
// (histograms).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	hookMu sync.Mutex
	hooks  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (g *Registry) Counter(name string) *Counter {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.counters[name]
	if !ok {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (g *Registry) Gauge(name string) *Gauge {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.gauges[name]
	if !ok {
		v = &Gauge{}
		g.gauges[name] = v
	}
	return v
}

// Histogram returns the named histogram, creating it with the given upper
// bucket bounds on first use (bounds are sorted; later calls may pass nil).
func (g *Registry) Histogram(name string, bounds []float64) *Histogram {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.hists[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1), min: math.Inf(1), max: math.Inf(-1)}
		g.hists[name] = h
	}
	return h
}

// OnSnapshot registers fn to run at the start of every Snapshot call —
// before any instrument is read. Sharded instruments (fleetobs, the striped
// energy ledger) register their sum-and-publish step here, so every
// consumer of the registry — a Prometheus scrape, the periodic sampler, the
// final -metrics-out flush, expvar — sees up-to-date totals without the
// producers ever touching a shared cache line on the hot path. Hooks may
// run concurrently (Snapshot has no exclusive section around them) and must
// therefore be internally synchronized and idempotent; they must not call
// Snapshot themselves. Safe on a nil registry.
func (g *Registry) OnSnapshot(fn func()) {
	if g == nil || fn == nil {
		return
	}
	g.hookMu.Lock()
	g.hooks = append(g.hooks, fn)
	g.hookMu.Unlock()
}

// runSnapshotHooks executes the registered read-side hooks.
func (g *Registry) runSnapshotHooks() {
	g.hookMu.Lock()
	hooks := g.hooks
	g.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts values
// v ≤ bounds[i] that exceed every lower bound (cumulative "le" semantics
// per bucket edge, like Prometheus); one overflow bucket catches the rest.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds a snapshot into the histogram: per-bucket counts, total
// count, and sum are added, min/max are widened. The snapshot's bounds must
// match the histogram's (same values, same order); mismatches are dropped
// rather than corrupting buckets. This is the bulk-publication path for
// sharded instruments: a striped histogram accumulates lock-free per worker
// and merges per-stripe deltas here on read, so the merged histogram equals
// one that observed every value directly.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if h == nil || s.Count == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(s.Bounds) != len(h.bounds) || len(s.Counts) != len(h.counts) {
		return
	}
	for i, b := range s.Bounds {
		if b != h.bounds[i] {
			return
		}
	}
	for i, c := range s.Counts {
		h.counts[i] += c
	}
	h.count += s.Count
	h.sum += s.Sum
	if s.Min < h.min {
		h.min = s.Min
	}
	if s.Max > h.max {
		h.max = s.Max
	}
}

// HistogramSnapshot is the exported state of one histogram. Counts has one
// entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Mean   float64   `json:"mean"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Quantile estimates the p-quantile (p ∈ [0, 1]) from the bucket counts by
// linear interpolation inside the bucket holding the target rank. The first
// bucket interpolates up from Min, the overflow bucket toward Max, and the
// result is clamped to [Min, Max] — so p50/p95/p99 over a fleet's
// per-device distributions are exact at bucket edges and sensible inside.
// Returns NaN for an empty snapshot or a p outside [0, 1].
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || p < 0 || p > 1 || len(s.Counts) != len(s.Bounds)+1 {
		return math.NaN()
	}
	rank := p * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo := s.Min
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Max
			if i < len(s.Bounds) && s.Bounds[i] < hi {
				hi = s.Bounds[i]
			}
			if lo > hi {
				lo = hi
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			v := lo + frac*(hi-lo)
			return math.Min(math.Max(v, s.Min), s.Max)
		}
		cum = next
	}
	return s.Max
}

// Snapshot is a point-in-time copy of a registry, ready for JSON export.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry state. A nil registry yields a zero
// snapshot. Read-side hooks registered via OnSnapshot run first, so sharded
// instruments publish their summed state before it is copied.
func (g *Registry) Snapshot() Snapshot {
	var s Snapshot
	if g == nil {
		return s
	}
	g.runSnapshotHooks()
	g.mu.Lock()
	counters := make(map[string]*Counter, len(g.counters))
	for k, v := range g.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(g.gauges))
	for k, v := range g.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(g.hists))
	for k, v := range g.hists {
		hists[k] = v
	}
	g.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, c := range counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for k, v := range gauges {
			s.Gauges[k] = v.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, h := range hists {
			h.mu.Lock()
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: append([]uint64(nil), h.counts...),
				Count:  h.count,
				Sum:    h.sum,
			}
			if h.count > 0 {
				hs.Mean = h.sum / float64(h.count)
				hs.Min, hs.Max = h.min, h.max
			}
			h.mu.Unlock()
			s.Histograms[k] = hs
		}
	}
	return s
}

// WriteJSON writes an indented snapshot of the registry to w.
func (g *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g.Snapshot())
}

// PublishExpvar exposes the registry under the given expvar name (served on
// /debug/vars alongside net/http/pprof). expvar panics on duplicate names,
// so call this once per process.
func (g *Registry) PublishExpvar(name string) {
	if g == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return g.Snapshot() }))
}

// TimeBuckets are the default histogram bounds for durations in seconds,
// spanning microsecond evaluations to multi-minute searches.
var TimeBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 25e-3, 0.1, 0.5, 1, 5, 25, 100,
}

// RatioBuckets are the default histogram bounds for fractions in [0, 1]
// (for example worker-pool utilization).
var RatioBuckets = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
