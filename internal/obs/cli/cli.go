// Package cli is the shared telemetry bootstrap for the repo's commands.
// It owns the four obs flags every recording-capable cmd exposes
// (-trace-out, -metrics-out, -pprof, -metrics-interval), builds the
// recorder/registry/sampler they imply, mounts Prometheus /metrics next to
// /debug/pprof, and guarantees the terminal FlushMetrics + Finish runs on
// error paths as well as happy ones — so an aborted search still leaves a
// parseable trace for cmd/obs-report.
//
// Before this package, cmd/enas-search and cmd/solarml each carried their
// own copy of this setup and cmd/lifetime and cmd/tracegen had none.
package cli

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"os"
	"time"

	"solarml/internal/obs"
)

// Flags holds the parsed telemetry flag values.
type Flags struct {
	TraceOut        string
	MetricsOut      string
	PprofAddr       string
	MetricsInterval time.Duration
}

// AddFlags registers the telemetry flags on fs (nil for flag.CommandLine)
// and returns the destination struct. The flag names are shared across
// every cmd so a recording recipe transfers between tools.
func AddFlags(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &Flags{}
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a JSONL obs trace to this file")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a final metrics snapshot (JSON) to this file")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof, expvar, and Prometheus /metrics on this address (e.g. localhost:6060)")
	fs.DurationVar(&f.MetricsInterval, "metrics-interval", 0, "record a metrics snapshot (plus runtime gauges) every interval, e.g. 1s (0 = final snapshot only)")
	return f
}

// Session is an open telemetry session. Rec and Reg are nil (valid no-ops)
// when no flag asked for them, so callers thread them through
// unconditionally.
type Session struct {
	Rec *obs.Recorder
	Reg *obs.Registry

	flags     Flags
	traceFile *os.File
	sampler   *obs.Sampler
	hooks     []func()
	closed    bool
}

// OnSample registers fn to run before every metrics snapshot: each periodic
// sampler tick (when -metrics-interval is set) and the terminal flush in
// Close. Producers whose state lives outside the registry — the energy
// ledger syncing its joule counters, most prominently — register here so
// both the time series and the final snapshot carry their figures. Safe on
// a nil Session.
func (s *Session) OnSample(fn func()) {
	if s == nil || fn == nil {
		return
	}
	s.hooks = append(s.hooks, fn)
	s.sampler.OnSample(fn)
}

// Open builds the session the flags describe: trace recorder, metrics
// registry (created when any consumer needs it), pprof+expvar+/metrics
// server, and the periodic sampler.
func (f *Flags) Open() (*Session, error) {
	s := &Session{flags: *f}
	if f.TraceOut != "" {
		file, err := os.Create(f.TraceOut)
		if err != nil {
			return nil, err
		}
		s.traceFile = file
		s.Rec = obs.NewRecorder(file)
	}
	if f.MetricsOut != "" || f.PprofAddr != "" || f.MetricsInterval > 0 || s.Rec.Enabled() {
		s.Reg = obs.NewRegistry()
	}
	if f.PprofAddr != "" {
		s.Reg.PublishExpvar("solarml")
		// DefaultServeMux already carries /debug/pprof/* (imported above)
		// and /debug/vars (expvar); add the Prometheus exposition so long
		// runs are scrapeable live.
		http.Handle("/metrics", s.Reg.PrometheusHandler())
		go func(addr string) {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}(f.PprofAddr)
		fmt.Fprintf(os.Stderr, "pprof+expvar+metrics listening on http://%s/debug/pprof and /metrics\n", f.PprofAddr)
	}
	if f.MetricsInterval > 0 {
		s.sampler = obs.StartSampler(s.Rec, s.Reg, f.MetricsInterval)
	}
	return s, nil
}

// Mount registers handler on the session's debug server (the DefaultServeMux
// the -pprof listener serves) under pattern — how cmds attach run-specific
// endpoints like the fleet inspector's /debug/fleet. Without -pprof there is
// no server, so the handler would be unreachable and Mount is a no-op;
// Mounted reports whether the server exists. Safe on a nil Session.
func (s *Session) Mount(pattern string, handler http.Handler) {
	if s == nil || handler == nil || s.flags.PprofAddr == "" {
		return
	}
	http.Handle(pattern, handler)
}

// Mounted reports whether the session serves a debug listener (-pprof set).
func (s *Session) Mounted() bool { return s != nil && s.flags.PprofAddr != "" }

// Manifest writes the run manifest (no-op without a recorder).
func (s *Session) Manifest(tool string, seed int64, config map[string]any) {
	s.Rec.WriteManifest(obs.Manifest{Tool: tool, Seed: seed, Config: config})
}

// Close finishes the session exactly once: it stops the sampler (which
// records a terminal snapshot), emits the final FlushMetrics + Finish with
// the given outcome, writes the -metrics-out snapshot, and flushes and
// closes the trace file. Callers defer it so error paths and panics leave
// the same parseable trace tail as clean exits; outcome is "ok" or the
// error string.
func (s *Session) Close(outcome string) error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	s.sampler.Stop()
	// Run the sample hooks once more so charges landed after the sampler's
	// terminal tick (or with no sampler at all) reach the final snapshot.
	for _, fn := range s.hooks {
		fn()
	}
	s.Rec.FlushMetrics(s.Reg)
	s.Rec.Finish(outcome)

	var first error
	if s.flags.MetricsOut != "" {
		f, err := os.Create(s.flags.MetricsOut)
		if err != nil {
			first = err
		} else {
			if err := s.Reg.WriteJSON(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if s.Rec != nil {
		if err := s.Rec.Flush(); err != nil && first == nil {
			first = err
		}
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CloseWith is the deferred-close idiom shared by the cmds: it derives the
// outcome from *err and folds a close failure into it when the run itself
// succeeded.
func (s *Session) CloseWith(err *error) {
	outcome := "ok"
	if *err != nil {
		outcome = (*err).Error()
	}
	if cerr := s.Close(outcome); cerr != nil && *err == nil {
		*err = cerr
	}
}
