package cli

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"solarml/internal/obs"
	"solarml/internal/obs/report"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestSessionErrorPathTrace pins satellite behaviour: a run that fails
// still closes its trace with FlushMetrics + Finish carrying the error
// outcome, and the result parses with obs-report's reader.
func TestSessionErrorPathTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")
	f := parse(t, "-trace-out", tracePath, "-metrics-out", metricsPath, "-metrics-interval", "5ms")

	run := func() (err error) {
		s, err := f.Open()
		if err != nil {
			return err
		}
		defer s.CloseWith(&err)
		s.Manifest("test-tool", 3, map[string]any{"k": "v"})
		s.Reg.Counter("test.work").Inc()
		sp := s.Rec.StartSpan("test.step")
		time.Sleep(10 * time.Millisecond)
		sp.End()
		return errors.New("boom")
	}
	if err := run(); err == nil || err.Error() != "boom" {
		t.Fatalf("run error = %v, want boom", err)
	}

	tr, err := report.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tool() != "test-tool" || tr.Outcome() != "boom" {
		t.Fatalf("trace identity: tool %q outcome %q, want test-tool/boom", tr.Tool(), tr.Outcome())
	}
	if len(tr.Metrics) < 2 {
		t.Fatalf("metrics snapshots = %d, want ≥ 2 (sampler + terminal flush)", len(tr.Metrics))
	}
	last := tr.Metrics[len(tr.Metrics)-1]
	counters, _ := last.Attrs["counters"].(map[string]any)
	if v, _ := counters["test.work"].(float64); v != 1 {
		t.Fatalf("terminal snapshot missing workload counter: %v", last.Attrs)
	}
	gauges, _ := last.Attrs["gauges"].(map[string]any)
	if v, _ := gauges[obs.GaugeGoroutines].(float64); v < 1 {
		t.Fatalf("terminal snapshot missing runtime gauges: %v", last.Attrs)
	}
	if _, err := os.Stat(metricsPath); err != nil {
		t.Fatalf("metrics snapshot file not written on error path: %v", err)
	}
}

// TestSessionDisabled: with no flags set, everything is nil/no-op and Close
// is free.
func TestSessionDisabled(t *testing.T) {
	f := parse(t)
	s, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	if s.Rec.Enabled() || s.Reg != nil {
		t.Fatalf("flagless session not disabled: %+v", s)
	}
	s.Manifest("x", 1, nil)
	if err := s.Close("ok"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close("twice"); err != nil {
		t.Fatal("second Close must be a no-op")
	}
}

// TestSamplerWithoutTrace: -metrics-interval alone still builds a registry
// (for /metrics scraping) without recording anything.
func TestSamplerWithoutTrace(t *testing.T) {
	f := parse(t, "-metrics-interval", "5ms")
	s, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(12 * time.Millisecond)
	if err := s.Close("ok"); err != nil {
		t.Fatal(err)
	}
	if s.Reg.Gauge(obs.GaugeGoroutines).Value() < 1 {
		t.Fatal("sampler did not publish runtime gauges")
	}
}
