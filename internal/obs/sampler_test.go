package obs

import (
	"bytes"
	"testing"
	"time"
)

// TestSamplerTimeSeries pins the acceptance shape: a recorded trace with a
// sampler attached carries at least two metrics snapshots, each with the
// runtime gauges set.
func TestSamplerTimeSeries(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	g := NewRegistry()
	g.Counter("work").Inc()
	s := StartSampler(r, g, 5*time.Millisecond)
	time.Sleep(40 * time.Millisecond)
	s.Stop()
	r.Finish("ok")

	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Event
	for _, e := range events {
		if e.Kind == KindMetrics {
			snaps = append(snaps, e)
		}
	}
	if len(snaps) < 2 {
		t.Fatalf("got %d metrics snapshots, want ≥ 2", len(snaps))
	}
	for i, e := range snaps {
		gauges, ok := e.Attrs["gauges"].(map[string]any)
		if !ok {
			t.Fatalf("snapshot %d has no gauges: %+v", i, e.Attrs)
		}
		if v, ok := gauges[GaugeGoroutines].(float64); !ok || v < 1 {
			t.Errorf("snapshot %d: goroutines gauge = %v, want ≥ 1", i, gauges[GaugeGoroutines])
		}
		if v, ok := gauges[GaugeHeapAlloc].(float64); !ok || v <= 0 {
			t.Errorf("snapshot %d: heap gauge = %v, want > 0", i, gauges[GaugeHeapAlloc])
		}
		counters, _ := e.Attrs["counters"].(map[string]any)
		if v, _ := counters["work"].(float64); v != 1 {
			t.Errorf("snapshot %d: workload counter missing: %v", i, e.Attrs["counters"])
		}
	}
	// Timestamps must be strictly increasing: a series, not one repeated
	// snapshot.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].T <= snaps[i-1].T {
			t.Fatalf("snapshot times not increasing: %v then %v", snaps[i-1].T, snaps[i].T)
		}
	}
}

// TestSamplerNilSafety: a nil registry disables the sampler; a nil sampler's
// Stop is a no-op; a nil recorder still updates gauges for live scraping.
func TestSamplerNilSafety(t *testing.T) {
	if s := StartSampler(NewRecorder(nil), nil, time.Millisecond); s != nil {
		t.Fatal("sampler over nil registry should be nil")
	}
	var s *Sampler
	s.Stop() // must not panic

	g := NewRegistry()
	live := StartSampler(nil, g, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	live.Stop()
	if g.Gauge(GaugeGoroutines).Value() < 1 {
		t.Fatal("recorder-less sampler should still publish runtime gauges")
	}
}

// TestSamplerStopIsTerminalSample: even when no interval elapses, Stop
// leaves one closing snapshot, so short runs are never empty.
func TestSamplerStopIsTerminalSample(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	g := NewRegistry()
	StartSampler(r, g, time.Hour).Stop()
	r.Flush()
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != KindMetrics {
		t.Fatalf("events = %+v, want exactly one metrics snapshot", events)
	}
}
