package fleetobs

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"solarml/internal/obs"
)

func TestInspectorStatus(t *testing.T) {
	in := NewInspector("devices", 100, 4)
	in.SetAccounts(func() map[string]float64 {
		return map[string]float64{"harvest": 12.5}
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				in.Advance(w, 1, 3600)
			}
		}(w)
	}
	wg.Wait()

	st := in.Status()
	if st.Done != 40 || st.Total != 100 || st.Units != "devices" {
		t.Fatalf("status = %+v", st)
	}
	if st.Finished {
		t.Fatal("finished before Finish()")
	}
	if st.RatePerSec <= 0 || st.EtaS <= 0 {
		t.Fatalf("rate/eta not positive: %+v", st)
	}
	if len(st.Workers) != 4 {
		t.Fatalf("workers = %d", len(st.Workers))
	}
	for _, w := range st.Workers {
		if w.Done != 10 {
			t.Fatalf("worker %d done = %d, want 10", w.Worker, w.Done)
		}
	}
	if st.Accounts["harvest"] != 12.5 {
		t.Fatalf("accounts = %v", st.Accounts)
	}

	in.Finish()
	st = in.Status()
	if !st.Finished || st.EtaS != 0 {
		t.Fatalf("post-finish status = %+v", st)
	}
	if len(st.Series) == 0 {
		t.Fatal("no series points after Finish")
	}
}

func TestInspectorHandlerJSON(t *testing.T) {
	in := NewInspector("devices", 10, 2)
	in.Advance(0, 3, 60)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/debug/fleet", nil)
	in.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if st.Done != 3 || st.Total != 10 {
		t.Fatalf("decoded status = %+v", st)
	}
}

func TestInspectorHandlerNil(t *testing.T) {
	var in *Inspector
	rec := httptest.NewRecorder()
	in.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/fleet", nil))
	if rec.Code != 404 {
		t.Fatalf("nil inspector status %d, want 404", rec.Code)
	}
}

// TestInspectorSSE watches a short run over the event-stream path and
// checks frames arrive and the stream closes after Finish.
func TestInspectorSSE(t *testing.T) {
	in := NewInspector("devices", 5, 1)
	in.Advance(0, 2, 10)

	srv := httptest.NewServer(in.Handler())
	defer srv.Close()

	done := make(chan []Status, 1)
	go func() {
		resp, err := srv.Client().Get(srv.URL + "?watch=1&interval=100ms")
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		var frames []Status
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var st Status
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err == nil {
				frames = append(frames, st)
			}
		}
		done <- frames
	}()

	in.Advance(0, 3, 10)
	in.Finish()
	frames := <-done
	if len(frames) == 0 {
		t.Fatal("no SSE frames received")
	}
	last := frames[len(frames)-1]
	if !last.Finished || last.Done != 5 {
		t.Fatalf("final frame = %+v", last)
	}
}

// TestConcurrentScrapeRace is the race-detector workout from the ISSUE:
// fleet workers publish into sharded instruments and the inspector while
// registry snapshots (the Prometheus scrape path and the sampler's sync)
// run concurrently.
func TestConcurrentScrapeRace(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewShardedCounter(reg, "fleet.interactions", 4)
	h := NewShardedHistogram(reg, "fleet.energy_uj", obs.TimeBuckets, 4)
	in := NewInspector("devices", 10000, 4)

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				c.Add(w, 1)
				h.Observe(w, float64(i%100)*1e-4)
				in.Advance(w, 1, 1)
			}
		}(w)
	}

	// Scraper: snapshot the registry (runs OnSnapshot hooks) and hit the
	// inspector status while the workers are writing. A second snapshotter
	// runs alongside to exercise concurrent hook execution.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = reg.Snapshot()
				_ = in.Status()
			}
		}()
	}

	writers.Wait()
	close(stop)
	readers.Wait()

	if got := reg.Snapshot().Counters["fleet.interactions"]; got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := reg.Snapshot().Histograms["fleet.energy_uj"].Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := in.Status().Done; got != 8000 {
		t.Fatalf("inspector done = %d, want 8000", got)
	}
}
