package fleetobs

import (
	"fmt"
	"io"
	"math"
	"sort"

	"solarml/internal/obs"
)

// Dist is a fixed-bucket distribution for per-device fleet aggregates:
// interactions survived, brown-outs, joules harvested, final supercap
// voltage. It is the single-writer sibling of ShardedHistogram — the fleet
// aggregation loop observes one value per device into flat arrays, so a
// ten-million-device fleet costs a few hundred bytes and zero per-device
// allocations. The zero Dist is unusable; construct with NewDist.
type Dist struct {
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewDist returns a distribution over the given upper bucket bounds
// (copied, sorted defensively) plus one overflow bucket.
func NewDist(bounds []float64) Dist {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return Dist{
		bounds: b,
		counts: make([]uint64, len(b)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one per-device value. Allocation-free.
func (d *Dist) Observe(v float64) {
	if d == nil || d.counts == nil {
		return
	}
	i := sort.SearchFloat64s(d.bounds, v)
	d.counts[i]++
	d.count++
	d.sum += v
	if v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
}

// Count returns the number of observed devices.
func (d *Dist) Count() uint64 {
	if d == nil {
		return 0
	}
	return d.count
}

// Mean returns the mean observed value (0 when empty).
func (d *Dist) Mean() float64 {
	if d == nil || d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// Snapshot exports the distribution as an obs histogram snapshot.
func (d *Dist) Snapshot() obs.HistogramSnapshot {
	if d == nil || d.counts == nil {
		return obs.HistogramSnapshot{}
	}
	s := obs.HistogramSnapshot{
		Bounds: append([]float64(nil), d.bounds...),
		Counts: append([]uint64(nil), d.counts...),
		Count:  d.count,
		Sum:    d.sum,
	}
	if d.count > 0 {
		s.Mean = d.sum / float64(d.count)
		s.Min, s.Max = d.min, d.max
	}
	return s
}

// Quantile estimates the p-quantile by linear interpolation inside the
// bucket holding the target rank (see obs.HistogramSnapshot.Quantile).
func (d *Dist) Quantile(p float64) float64 { return d.Snapshot().Quantile(p) }

// PublishTo merges the distribution into the named registry histogram, so
// it lands in metrics snapshots, /metrics scrapes, and recorded traces.
// Call once per run (Merge adds; repeated calls double-count).
func (d *Dist) PublishTo(reg *obs.Registry, name string) {
	if d == nil || reg == nil || d.count == 0 {
		return
	}
	reg.Histogram(name, d.bounds).Merge(d.Snapshot())
}

// WriteCSV appends the distribution as machine-readable rows under the
// given series name: one row per bucket edge plus count/mean/min/max and
// the p50/p95/p99 quantiles. Callers writing several distributions into one
// file write the header once via WriteCSVHeader.
func (d *Dist) WriteCSV(w io.Writer, name string) error {
	if d == nil || d.counts == nil {
		return nil
	}
	for i, c := range d.counts {
		le := "+Inf"
		if i < len(d.bounds) {
			le = fmt.Sprintf("%g", d.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s,bucket,%s,%d\n", name, le, c); err != nil {
			return err
		}
	}
	s := d.Snapshot()
	for _, row := range []struct {
		stat string
		v    float64
	}{
		{"count", float64(s.Count)},
		{"mean", s.Mean},
		{"min", s.Min},
		{"max", s.Max},
		{"p50", s.Quantile(0.50)},
		{"p95", s.Quantile(0.95)},
		{"p99", s.Quantile(0.99)},
	} {
		if _, err := fmt.Fprintf(w, "%s,%s,,%g\n", name, row.stat, row.v); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVHeader writes the column header WriteCSV rows follow.
func WriteCSVHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, "dist,stat,le,value")
	return err
}
