// Package fleetobs is the fleet-scale telemetry substrate: instruments
// built for 10⁵–10⁷ simulated devices publishing from many workers at once.
//
// The single-device obs instruments are correct at fleet scale but slow:
// every worker lands on the same atomic counter cache line (or the same
// histogram mutex), so a fleet loop spends its time in CAS retries and
// cache-line ping-pong instead of simulation. This package splits the write
// and read sides:
//
//   - Writes are striped per worker. Each worker owns a cache-line-padded
//     stripe and updates it with an uncontended atomic — no locks, no
//     allocations, no shared lines.
//   - Reads sum the stripes. Sharded instruments register a sum-and-publish
//     hook in the obs.Registry via OnSnapshot, so every consumer of the
//     registry — a Prometheus scrape, the periodic sampler, the final
//     metrics flush — sees exact totals without the writers ever paying for
//     publication.
//
// The package also carries the fleet read-side tools: Dist, a fixed-bucket
// distribution for per-device aggregates (no per-device allocation), and
// Inspector, the /debug/fleet live run endpoint backed by a bounded
// downsampling time-series ring.
package fleetobs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"solarml/internal/obs"
)

// cacheLine is the assumed coherence granule. Stripes are padded to it so
// two workers never share a line.
const cacheLine = 64

// atomicFloat is a float64 updated through CAS on its bits. In striped use
// each value has a single writer, so the CAS succeeds on the first attempt;
// the atomicity is what keeps concurrent read-side sums race-free.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) add(d float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

func (a *atomicFloat) setMin(v float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (a *atomicFloat) setMax(v float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }

// counterStripe is one worker's share of a ShardedCounter, padded so
// neighbouring stripes never share a cache line.
type counterStripe struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// ShardedCounter is a monotonically increasing integer striped across
// workers. Add is one uncontended atomic on the worker's own cache line;
// Value (and the registry publication) sums the stripes. A nil
// *ShardedCounter is a valid no-op, mirroring the obs instruments.
type ShardedCounter struct {
	stripes []counterStripe
	sink    *obs.Counter

	mu        sync.Mutex
	published int64
}

// NewShardedCounter returns a counter with the given stripe count (one per
// worker; values < 1 become 1). With a non-nil registry the counter
// registers under name and keeps the registry's plain counter equal to the
// striped total on every snapshot (sum on read, via OnSnapshot).
func NewShardedCounter(reg *obs.Registry, name string, stripes int) *ShardedCounter {
	if stripes < 1 {
		stripes = 1
	}
	c := &ShardedCounter{stripes: make([]counterStripe, stripes)}
	if reg != nil {
		c.sink = reg.Counter(name)
		reg.OnSnapshot(c.Sync)
	}
	return c
}

// Add increments worker w's stripe by d. Any w is valid (wrapped onto the
// stripe count), so callers can pass chunk indices directly.
func (c *ShardedCounter) Add(w int, d int64) {
	if c == nil {
		return
	}
	c.stripes[uint(w)%uint(len(c.stripes))].v.Add(d)
}

// Inc increments worker w's stripe by one.
func (c *ShardedCounter) Inc(w int) { c.Add(w, 1) }

// Value sums the stripes: the exact total of every Add so far.
func (c *ShardedCounter) Value() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.stripes {
		t += c.stripes[i].v.Load()
	}
	return t
}

// Sync publishes the striped total into the registry counter as a delta, so
// the registry value always equals Value() at publication time. Runs
// automatically on every registry snapshot; explicit calls are idempotent.
func (c *ShardedCounter) Sync() {
	if c == nil || c.sink == nil {
		return
	}
	c.mu.Lock()
	if total := c.Value(); total != c.published {
		c.sink.Add(total - c.published)
		c.published = total
	}
	c.mu.Unlock()
}

// histStripe is one worker's share of a ShardedHistogram. The fields are
// updated with uncontended atomics; the counts slice is a separate
// allocation, so stripes do not share lines.
type histStripe struct {
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
	min    atomicFloat
	max    atomicFloat
}

// ShardedHistogram counts observations into fixed buckets, striped across
// workers: Observe touches only the worker's own stripe, lock-free, and the
// read side merges stripes into the registry histogram (delta-published, so
// the merged histogram is identical to one that observed every value
// directly). A nil *ShardedHistogram is a valid no-op.
type ShardedHistogram struct {
	bounds  []float64
	stripes []*histStripe
	sink    *obs.Histogram

	mu  sync.Mutex
	pub obs.HistogramSnapshot
}

// NewShardedHistogram returns a histogram with the given upper bucket
// bounds (sorted defensively) and stripe count. With a non-nil registry it
// registers under name and keeps the registry histogram current on every
// snapshot.
func NewShardedHistogram(reg *obs.Registry, name string, bounds []float64, stripes int) *ShardedHistogram {
	if stripes < 1 {
		stripes = 1
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &ShardedHistogram{bounds: b, stripes: make([]*histStripe, stripes)}
	for i := range h.stripes {
		s := &histStripe{counts: make([]atomic.Uint64, len(b)+1)}
		s.min.store(math.Inf(1))
		s.max.store(math.Inf(-1))
		h.stripes[i] = s
	}
	if reg != nil {
		h.sink = reg.Histogram(name, b)
		h.pub = obs.HistogramSnapshot{Counts: make([]uint64, len(b)+1)}
		reg.OnSnapshot(h.Sync)
	}
	return h
}

// Observe records one value on worker w's stripe.
func (h *ShardedHistogram) Observe(w int, v float64) {
	if h == nil {
		return
	}
	s := h.stripes[uint(w)%uint(len(h.stripes))]
	i := sort.SearchFloat64s(h.bounds, v)
	s.counts[i].Add(1)
	s.count.Add(1)
	s.sum.add(v)
	s.min.setMin(v)
	s.max.setMax(v)
}

// Snapshot sums the stripes into one exported histogram state.
func (h *ShardedHistogram) Snapshot() obs.HistogramSnapshot {
	if h == nil {
		return obs.HistogramSnapshot{}
	}
	out := obs.HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.bounds)+1),
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
	for _, s := range h.stripes {
		for i := range out.Counts {
			out.Counts[i] += s.counts[i].Load()
		}
		out.Count += s.count.Load()
		out.Sum += s.sum.load()
		if v := s.min.load(); v < out.Min {
			out.Min = v
		}
		if v := s.max.load(); v > out.Max {
			out.Max = v
		}
	}
	if out.Count > 0 {
		out.Mean = out.Sum / float64(out.Count)
	} else {
		out.Min, out.Max = 0, 0
	}
	return out
}

// Sync merges the striped state into the registry histogram as a delta.
// Runs automatically on every registry snapshot.
func (h *ShardedHistogram) Sync() {
	if h == nil || h.sink == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.Snapshot()
	delta := obs.HistogramSnapshot{
		Bounds: cur.Bounds,
		Counts: make([]uint64, len(cur.Counts)),
		Count:  cur.Count - h.pub.Count,
		Sum:    cur.Sum - h.pub.Sum,
		Min:    cur.Min,
		Max:    cur.Max,
	}
	if delta.Count == 0 {
		return
	}
	for i := range delta.Counts {
		delta.Counts[i] = cur.Counts[i] - h.pub.Counts[i]
	}
	h.sink.Merge(delta)
	h.pub.Count, h.pub.Sum = cur.Count, cur.Sum
	copy(h.pub.Counts, cur.Counts)
}
