package fleetobs

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// secondsPerYear converts unit-seconds to unit-years for the headline
// throughput figure (device-years/sec for fleets).
const secondsPerYear = 365 * 24 * 3600

// WorkerStatus is one worker's progress in a Status report.
type WorkerStatus struct {
	Worker int   `json:"worker"`
	Done   int64 `json:"done"`
	// LagS is seconds since this worker last reported — a stuck or
	// starved worker shows up as a growing lag.
	LagS float64 `json:"lag_s"`
}

// Status is the inspector's point-in-time progress report, served as JSON
// (and as SSE frames) on /debug/fleet.
type Status struct {
	// Units names what is being counted: "devices" for fleet runs,
	// "cycles" for island searches.
	Units    string `json:"units"`
	Total    int64  `json:"total"`
	Done     int64  `json:"done"`
	Finished bool   `json:"finished"`
	ElapsedS float64 `json:"elapsed_s"`
	// RatePerSec is completed units per wall-clock second.
	RatePerSec float64 `json:"rate_per_sec"`
	// UnitYearsPerSec is simulated unit-years per wall-clock second
	// (device-years/sec for fleets; 0 for unit-less workloads).
	UnitYearsPerSec float64 `json:"unit_years_per_sec"`
	// EtaS estimates the remaining wall-clock seconds at the current rate
	// (0 until the first unit completes, and once finished).
	EtaS    float64            `json:"eta_s"`
	Workers []WorkerStatus     `json:"workers"`
	// Accounts carries the run's joule-ledger account totals when an
	// accounts source is attached.
	Accounts map[string]float64 `json:"accounts,omitempty"`
	// Series is the downsampled progress time series since start.
	Series []Point `json:"series"`
}

// inspStripe is one worker's progress stripe, padded to a cache line.
type inspStripe struct {
	done        atomic.Int64
	unitSeconds atomicFloat
	lastNano    atomic.Int64
	_           [cacheLine - 24]byte
}

// Inspector makes a long fleet (or island-search) run observable while it
// runs: workers report per-unit completion through striped atomics (the
// same no-shared-lines discipline as ShardedCounter), and the read side —
// the /debug/fleet handler — derives progress, throughput, ETA, per-worker
// lag, and a bounded downsampled time series from them. A nil *Inspector is
// a valid disabled inspector: Advance and Finish return immediately, so the
// fleet loop needs no guards.
type Inspector struct {
	units string
	total int64
	start time.Time

	stripes  []inspStripe
	ring     *ring
	lastNano atomic.Int64 // unix-nano of the last ring sample
	gapNano  atomic.Int64 // current ring gap, mirrored for the hot-path check

	accounts atomic.Pointer[func() map[string]float64]
	finished atomic.Bool
	finishNano atomic.Int64
}

// ringCapacity bounds the time series; with the 100 ms initial gap it holds
// ~50 s of fine samples before the first halving, and a device-year run
// ends up with the same 512 points at coarser spacing.
const ringCapacity = 512

// NewInspector returns an inspector for a run of total units across the
// given worker count, with the clock starting now.
func NewInspector(units string, total, workers int) *Inspector {
	if workers < 1 {
		workers = 1
	}
	in := &Inspector{
		units:   units,
		total:   int64(total),
		start:   time.Now(),
		stripes: make([]inspStripe, workers),
		ring:    newRing(ringCapacity, 0.1),
	}
	in.gapNano.Store(int64(0.1 * 1e9))
	return in
}

// SetAccounts attaches a ledger-account source (for example the fleet's
// striped joule ledger's Snapshot, flattened to name→joules). Safe to call
// while serving.
func (in *Inspector) SetAccounts(fn func() map[string]float64) {
	if in == nil || fn == nil {
		return
	}
	in.accounts.Store(&fn)
}

// Advance reports n completed units (and their simulated unit-seconds) from
// worker w. The hot path is two uncontended atomics on the worker's own
// stripe plus one atomic load for the sampling check; the time-series
// append runs at most once per ring gap.
func (in *Inspector) Advance(w, n int, unitSeconds float64) {
	if in == nil {
		return
	}
	s := &in.stripes[uint(w)%uint(len(in.stripes))]
	s.done.Add(int64(n))
	if unitSeconds != 0 {
		s.unitSeconds.add(unitSeconds)
	}
	now := time.Now().UnixNano()
	s.lastNano.Store(now)
	in.maybeSample(now)
}

// maybeSample appends a ring point when the gap has elapsed. The CAS elects
// one caller per gap; everyone else returns after one load and a compare.
func (in *Inspector) maybeSample(now int64) {
	last := in.lastNano.Load()
	if now-last < in.gapNano.Load() {
		return
	}
	if !in.lastNano.CompareAndSwap(last, now) {
		return
	}
	done, unitSecs := in.totals()
	gapS := in.ring.add(Point{
		TS:          float64(now-in.start.UnixNano()) / 1e9,
		Done:        done,
		UnitSeconds: unitSecs,
	})
	in.gapNano.Store(int64(gapS * 1e9))
}

// totals sums the stripes.
func (in *Inspector) totals() (done int64, unitSeconds float64) {
	for i := range in.stripes {
		done += in.stripes[i].done.Load()
		unitSeconds += in.stripes[i].unitSeconds.load()
	}
	return done, unitSeconds
}

// Finish marks the run complete: the elapsed clock freezes, ETA drops to
// zero, and SSE watchers receive one final frame and close.
func (in *Inspector) Finish() {
	if in == nil || !in.finished.CompareAndSwap(false, true) {
		return
	}
	now := time.Now().UnixNano()
	in.finishNano.Store(now)
	done, unitSecs := in.totals()
	in.ring.add(Point{TS: float64(now-in.start.UnixNano()) / 1e9, Done: done, UnitSeconds: unitSecs})
}

// Status assembles the current progress report.
func (in *Inspector) Status() Status {
	if in == nil {
		return Status{}
	}
	now := time.Now().UnixNano()
	finished := in.finished.Load()
	if finished {
		now = in.finishNano.Load()
	}
	elapsed := float64(now-in.start.UnixNano()) / 1e9
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	st := Status{
		Units:    in.units,
		Total:    in.total,
		Finished: finished,
		ElapsedS: elapsed,
		Workers:  make([]WorkerStatus, len(in.stripes)),
		Series:   in.ring.snapshot(),
	}
	var unitSecs float64
	for i := range in.stripes {
		done := in.stripes[i].done.Load()
		st.Done += done
		unitSecs += in.stripes[i].unitSeconds.load()
		lag := 0.0
		if last := in.stripes[i].lastNano.Load(); last > 0 && !finished {
			lag = float64(now-last) / 1e9
		}
		st.Workers[i] = WorkerStatus{Worker: i, Done: done, LagS: lag}
	}
	st.RatePerSec = float64(st.Done) / elapsed
	st.UnitYearsPerSec = unitSecs / secondsPerYear / elapsed
	if !finished && st.Done > 0 && st.Total > st.Done {
		st.EtaS = float64(st.Total-st.Done) / st.RatePerSec
	}
	if fn := in.accounts.Load(); fn != nil {
		st.Accounts = (*fn)()
	}
	return st
}

// Handler serves the inspector: a plain GET returns the Status as JSON;
// with ?watch=1 (or Accept: text/event-stream) it streams SSE frames every
// ?interval (default 1s, clamped to [100ms, 30s]) until the run finishes or
// the client disconnects. Mount it on the -pprof debug server as
// /debug/fleet. Safe on a nil Inspector (404).
func (in *Inspector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if in == nil {
			http.NotFound(w, r)
			return
		}
		if r.URL.Query().Get("watch") != "" || r.Header.Get("Accept") == "text/event-stream" {
			in.serveSSE(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(in.Status())
	})
}

// serveSSE streams status frames until the run finishes or the client goes
// away. Each frame is one `data:` line holding the Status JSON.
func (in *Inspector) serveSSE(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	interval := time.Second
	if s := r.URL.Query().Get("interval"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			interval = d
		}
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	t := time.NewTicker(interval)
	defer t.Stop()
	enc := json.NewEncoder(w)
	for {
		st := in.Status()
		if _, err := w.Write([]byte("data: ")); err != nil {
			return
		}
		if err := enc.Encode(st); err != nil { // Encode appends the frame's first \n
			return
		}
		if _, err := w.Write([]byte("\n")); err != nil {
			return
		}
		flusher.Flush()
		if st.Finished {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
		}
	}
}
