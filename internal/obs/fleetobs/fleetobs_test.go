package fleetobs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"solarml/internal/obs"
)

// TestShardedCounterEquivalence drives a sharded counter from many
// goroutines and checks the summed total — and the registry-published value
// after a snapshot — equals the serial sum of all increments.
func TestShardedCounterEquivalence(t *testing.T) {
	reg := obs.NewRegistry()
	const workers, perWorker = 8, 10_000
	c := NewShardedCounter(reg, "test.sharded", workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(w)
				c.Add(w, 2)
			}
		}(w)
	}
	wg.Wait()

	want := int64(workers * perWorker * 3)
	if got := c.Value(); got != want {
		t.Fatalf("Value() = %d, want %d", got, want)
	}
	if got := reg.Snapshot().Counters["test.sharded"]; got != want {
		t.Fatalf("registry counter = %d, want %d", got, want)
	}
	// Idempotent: a second snapshot must not re-publish the delta.
	if got := reg.Snapshot().Counters["test.sharded"]; got != want {
		t.Fatalf("second snapshot counter = %d, want %d", got, want)
	}
}

// TestShardedHistogramEquivalence checks the striped histogram merged into
// the registry is identical to a plain histogram that observed every value
// directly — the bit-identity contract for fleet instrumentation.
func TestShardedHistogramEquivalence(t *testing.T) {
	bounds := []float64{1, 10, 100, 1000}
	reg := obs.NewRegistry()
	sh := NewShardedHistogram(reg, "test.hist", bounds, 4)

	serialReg := obs.NewRegistry()
	serial := serialReg.Histogram("serial", bounds)
	var mu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				v := float64((w*5000+i)%1500) / 1.3
				sh.Observe(w, v)
				mu.Lock()
				serial.Observe(v)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	got := reg.Snapshot().Histograms["test.hist"]
	ss := sh.Snapshot()
	if ss.Count != 20000 {
		t.Fatalf("striped Count = %d, want 20000", ss.Count)
	}
	if got.Count != ss.Count {
		t.Fatalf("registry Count = %d, striped Count = %d", got.Count, ss.Count)
	}
	for i := range got.Counts {
		if got.Counts[i] != ss.Counts[i] {
			t.Fatalf("bucket %d: registry %d != striped %d", i, got.Counts[i], ss.Counts[i])
		}
	}
	// Against the serially observed twin: per-bucket counts and min/max are
	// exact; the float sum is order-dependent, so allow rounding slack.
	serialSnap := serialReg.Snapshot().Histograms["serial"]
	for i := range got.Counts {
		if got.Counts[i] != serialSnap.Counts[i] {
			t.Fatalf("bucket %d: striped %d != serial %d", i, got.Counts[i], serialSnap.Counts[i])
		}
	}
	if math.Abs(got.Sum-serialSnap.Sum) > 1e-6*math.Abs(serialSnap.Sum) {
		t.Fatalf("Sum diverged: striped %g serial %g", got.Sum, serialSnap.Sum)
	}
	if got.Min != serialSnap.Min || got.Max != serialSnap.Max {
		t.Fatalf("min/max striped (%g,%g) != serial (%g,%g)", got.Min, got.Max, serialSnap.Min, serialSnap.Max)
	}
	if got.Min != ss.Min || got.Max != ss.Max {
		t.Fatalf("min/max registry (%g,%g) != striped (%g,%g)", got.Min, got.Max, ss.Min, ss.Max)
	}
}

// TestShardedHistogramMatchesSerial observes an identical value sequence
// into a striped and a plain histogram and requires identical snapshots.
func TestShardedHistogramMatchesSerial(t *testing.T) {
	bounds := []float64{0.5, 2, 8, 32}
	reg := obs.NewRegistry()
	sh := NewShardedHistogram(reg, "h", bounds, 3)
	plain := reg.Histogram("plain", bounds)
	for i := 0; i < 10000; i++ {
		v := float64(i%97) * 0.42
		sh.Observe(i%3, v)
		plain.Observe(v)
	}
	s := reg.Snapshot()
	a, b := s.Histograms["h"], s.Histograms["plain"]
	// Counts, min, and max are exact; the float Sum accumulates in a
	// different order across stripes, so compare with rounding slack.
	if a.Count != b.Count || a.Min != b.Min || a.Max != b.Max {
		t.Fatalf("striped %+v != serial %+v", a, b)
	}
	if math.Abs(a.Sum-b.Sum) > 1e-9*math.Abs(b.Sum) {
		t.Fatalf("Sum diverged beyond tolerance: %g vs %g", a.Sum, b.Sum)
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatalf("bucket %d: %d != %d", i, a.Counts[i], b.Counts[i])
		}
	}
}

// TestHotPathAllocs pins the fleet hot path at zero allocations per update.
func TestHotPathAllocs(t *testing.T) {
	c := NewShardedCounter(nil, "", 4)
	h := NewShardedHistogram(nil, "", []float64{1, 10, 100}, 4)
	d := NewDist([]float64{1, 10, 100})
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1, 3)
		h.Observe(2, 42)
		d.Observe(7)
	}); n != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", n)
	}
}

// TestNilInstruments checks nil sharded instruments are safe no-ops, like
// the base obs instruments.
func TestNilInstruments(t *testing.T) {
	var c *ShardedCounter
	c.Add(0, 1)
	c.Inc(3)
	c.Sync()
	if c.Value() != 0 {
		t.Fatal("nil counter Value != 0")
	}
	var h *ShardedHistogram
	h.Observe(0, 1)
	h.Sync()
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram snapshot non-empty")
	}
	var d *Dist
	d.Observe(1)
	if d.Count() != 0 || d.Mean() != 0 {
		t.Fatal("nil dist not empty")
	}
	var in *Inspector
	in.Advance(0, 1, 1)
	in.Finish()
	in.SetAccounts(func() map[string]float64 { return nil })
	if st := in.Status(); st.Done != 0 {
		t.Fatal("nil inspector status non-zero")
	}
}

// TestDist covers observation, quantiles, and CSV output.
func TestDist(t *testing.T) {
	d := NewDist([]float64{10, 20, 30})
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i % 40))
	}
	if d.Count() != 100 {
		t.Fatalf("Count = %d", d.Count())
	}
	s := d.Snapshot()
	if s.Min != 0 || s.Max != 39 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	p50 := d.Quantile(0.5)
	if p50 < 10 || p50 > 30 {
		t.Fatalf("p50 = %g out of plausible range", p50)
	}
	var buf testWriter
	if err := WriteCSVHeader(&buf); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCSV(&buf, "interactions"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dist,stat,le,value", "interactions,bucket,10,", "interactions,bucket,+Inf,", "interactions,p99,,"} {
		if !contains(out, want) {
			t.Fatalf("CSV missing %q in:\n%s", want, out)
		}
	}

	reg := obs.NewRegistry()
	d.PublishTo(reg, "fleet.test")
	hs := reg.Snapshot().Histograms["fleet.test"]
	if hs.Count != 100 {
		t.Fatalf("published Count = %d", hs.Count)
	}
}

type testWriter struct{ b []byte }

func (w *testWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *testWriter) String() string              { return string(w.b) }

func contains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestRingDownsamples fills the ring past capacity and checks it compacts
// instead of growing, keeps chronological order, and retains the first point.
func TestRingDownsamples(t *testing.T) {
	r := newRing(8, 0.1)
	for i := 0; i < 1000; i++ {
		r.add(Point{TS: float64(i), Done: int64(i)})
	}
	pts := r.snapshot()
	if len(pts) > 8 {
		t.Fatalf("ring grew past capacity: %d points", len(pts))
	}
	if len(pts) == 0 || pts[0].TS != 0 {
		t.Fatalf("first point lost: %+v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TS <= pts[i-1].TS {
			t.Fatalf("non-monotone series at %d: %+v", i, pts)
		}
	}
	// Gap must have widened well past the initial 0.1 s.
	if g := r.add(Point{TS: 1e9}); g <= 0.1 {
		t.Fatalf("gap did not widen: %g", g)
	}
}

// TestRingGapFilter checks points inside the minimum gap are dropped.
func TestRingGapFilter(t *testing.T) {
	r := newRing(64, 1.0)
	r.add(Point{TS: 0})
	r.add(Point{TS: 0.5}) // inside gap — dropped
	r.add(Point{TS: 1.5})
	if n := len(r.snapshot()); n != 2 {
		t.Fatalf("got %d points, want 2", n)
	}
}

// The contention benchmarks compare the striped write path against the
// plain obs instruments across worker counts. Each RunParallel goroutine
// claims a distinct stripe, matching how fleetPool chunks map to stripes.
func BenchmarkShardedCounterContention(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sharded/stripes=%d", workers), func(b *testing.B) {
			c := NewShardedCounter(nil, "", workers)
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				w := int(next.Add(1) - 1)
				for pb.Next() {
					c.Add(w, 1)
				}
			})
		})
	}
	b.Run("plain-atomic", func(b *testing.B) {
		c := obs.NewRegistry().Counter("c")
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
	})
}

func BenchmarkShardedHistogramContention(b *testing.B) {
	bounds := obs.TimeBuckets
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sharded/stripes=%d", workers), func(b *testing.B) {
			h := NewShardedHistogram(nil, "", bounds, workers)
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				w := int(next.Add(1) - 1)
				for pb.Next() {
					h.Observe(w, 0.003)
				}
			})
		})
	}
	b.Run("plain-mutex", func(b *testing.B) {
		h := obs.NewRegistry().Histogram("h", bounds)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.Observe(0.003)
			}
		})
	})
}
