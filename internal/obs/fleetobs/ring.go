package fleetobs

import "sync"

// Point is one downsampled progress sample in the inspector's time series.
type Point struct {
	// TS is seconds since the run started.
	TS float64 `json:"t_s"`
	// Done is the completed unit count (devices, cycles) at TS.
	Done int64 `json:"done"`
	// UnitSeconds is the simulated unit-seconds completed at TS (0 for
	// workloads without a simulated-time axis).
	UnitSeconds float64 `json:"unit_seconds"`
}

// ring is a bounded, self-downsampling time series: points are appended at
// a minimum gap, and when the buffer fills the resolution halves (every
// other point dropped, gap doubled). Memory is O(capacity) regardless of
// run length — a device-year fleet run keeps the same few hundred points a
// ten-second one does, just coarser.
type ring struct {
	mu     sync.Mutex
	points []Point
	gapS   float64
	lastTS float64
}

// newRing returns a ring holding at most capacity points, keeping at most
// one point per minGapS seconds (both floored to sane minimums).
func newRing(capacity int, minGapS float64) *ring {
	if capacity < 8 {
		capacity = 8
	}
	if minGapS <= 0 {
		minGapS = 0.1
	}
	return &ring{points: make([]Point, 0, capacity), gapS: minGapS}
}

// add appends p if it clears the current gap, compacting first when full.
// Returns the gap in force afterwards, so callers can pre-filter with an
// atomic instead of taking the mutex per sample.
func (r *ring) add(p Point) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.points) > 0 && p.TS-r.lastTS < r.gapS {
		return r.gapS
	}
	if len(r.points) == cap(r.points) {
		// Halve the resolution: keep even indices, double the gap. The
		// first and most recent points survive every compaction.
		half := r.points[:0]
		for i := 0; i < len(r.points); i += 2 {
			half = append(half, r.points[i])
		}
		r.points = half
		r.gapS *= 2
		if p.TS-r.lastTS < r.gapS {
			// The trigger point no longer clears the widened gap; it is
			// dropped, having already paid for the compaction.
			if n := len(r.points); n > 0 {
				r.lastTS = r.points[n-1].TS
			}
			return r.gapS
		}
	}
	r.points = append(r.points, p)
	r.lastTS = p.TS
	return r.gapS
}

// snapshot copies the current series.
func (r *ring) snapshot() []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Point(nil), r.points...)
}
