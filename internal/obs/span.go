package obs

import "time"

// Span is a timed region of work. Spans are value types obtained from a
// Recorder (or a parent Span); the zero Span — and any span started from a
// nil Recorder — is a disabled no-op whose methods return immediately
// without allocating, which keeps instrumented hot paths free when
// telemetry is off.
//
// A span emits exactly one KindSpan event when End is called, carrying its
// wall-clock duration, its id/parent linkage, and the union of attributes
// passed to StartSpan, Set, and End — plus an AttrEnergyUJ attribute when
// energy was attributed to it via AddEnergy.
type Span struct {
	rec      *Recorder
	name     string
	id       uint64
	parent   uint64
	start    time.Time
	energyUJ float64
	attrs    []Attr
}

// AttrEnergyUJ is the attribute key carrying a span's attributed energy in
// microjoules. It is written by AddEnergy at End and read back by the
// report layer's energy rollups, the same contract dur_ms has for time.
const AttrEnergyUJ = "energy_uj"

// StartSpan opens a root span.
func (r *Recorder) StartSpan(name string, attrs ...Attr) Span {
	if r == nil {
		return Span{}
	}
	return r.newSpan(name, 0, attrs)
}

// newSpan allocates the span bookkeeping (enabled path only).
func (r *Recorder) newSpan(name string, parent uint64, attrs []Attr) Span {
	sp := Span{rec: r, name: name, id: r.nextSpan.Add(1), parent: parent, start: time.Now()}
	if len(attrs) > 0 {
		sp.attrs = append(sp.attrs, attrs...)
	}
	return sp
}

// Enabled reports whether the span records anything.
func (s *Span) Enabled() bool { return s.rec != nil }

// ID returns the span id (0 when disabled).
func (s *Span) ID() uint64 { return s.id }

// Child opens a sub-span.
func (s *Span) Child(name string, attrs ...Attr) Span {
	if s.rec == nil {
		return Span{}
	}
	return s.rec.newSpan(name, s.id, attrs)
}

// Set attaches attributes to the span, reported at End.
func (s *Span) Set(attrs ...Attr) {
	if s.rec == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// AddEnergy attributes joules of energy to the span, accumulated across
// calls and reported as one AttrEnergyUJ attribute at End. A disabled span
// discards the charge without allocating, so energy-ledger instrumentation
// is free when telemetry is off. Spans carry energy the same way they carry
// durations: a parent's attribute covers only its own charges, not its
// children's (the report layer sums subtrees).
func (s *Span) AddEnergy(joules float64) {
	if s.rec == nil {
		return
	}
	s.energyUJ += joules * 1e6
}

// Event emits a point-in-time event parented to this span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s.rec == nil {
		return
	}
	s.rec.emit(KindEvent, name, 0, s.id, 0, attrs)
}

// End closes the span, emitting its event with the accumulated attributes
// plus any final ones. A span must be ended at most once; further calls
// emit duplicate events.
func (s *Span) End(attrs ...Attr) {
	if s.rec == nil {
		return
	}
	all := s.attrs
	if len(attrs) > 0 {
		all = append(all, attrs...)
	}
	if s.energyUJ != 0 {
		all = append(all, F64(AttrEnergyUJ, s.energyUJ))
	}
	s.rec.emit(KindSpan, s.name, s.id, s.parent, time.Since(s.start).Seconds()*1e3, all)
}
