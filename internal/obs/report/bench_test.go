package report_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"solarml/internal/obs/report"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: solarml
cpu: Example CPU @ 2.00GHz
BenchmarkFig1EnergyDistribution-8   	       1	   1520042 ns/op	  123456 B/op	     789 allocs/op
BenchmarkSearchTelemetryOff-8       	      50	  98765.4 ns/op
PASS
ok  	solarml	1.234s
pkg: solarml/internal/compute
BenchmarkMatMulBackend/serial-8     	      10	    54321 ns/op	     100 B/op	       2 allocs/op
BenchmarkShared-8                   	       5	      111 ns/op	       0 B/op	       0 allocs/op
ok  	solarml/internal/compute	0.5s
pkg: solarml/internal/nn
BenchmarkShared-8                   	       5	      222 ns/op	       8 B/op	       1 allocs/op
this line is noise and must be ignored
`

// TestParseGoBench pins the parser: ns/op with and without -benchmem,
// fractional ns/op, subbenchmark names, pkg tracking, noise tolerance.
func TestParseGoBench(t *testing.T) {
	results, err := report.ParseGoBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkFig1EnergyDistribution" || r.Procs != 8 || r.Runs != 1 ||
		r.NsPerOp != 1520042 || r.BPerOp != 123456 || r.AllocsPerOp != 789 || !r.MemReported {
		t.Fatalf("first result wrong: %+v", r)
	}
	if r.Pkg != "solarml" {
		t.Fatalf("pkg tracking wrong: %+v", r)
	}
	if results[1].NsPerOp != 98765.4 || results[1].MemReported {
		t.Fatalf("benchmem-less result wrong: %+v", results[1])
	}
	if results[2].Name != "BenchmarkMatMulBackend/serial" || results[2].Pkg != "solarml/internal/compute" {
		t.Fatalf("subbenchmark wrong: %+v", results[2])
	}
}

// TestBenchFileJSON checks the emitted BENCH_solarml.json: schema header,
// name keys, package-qualification of colliding names, and a clean
// encoding/json round trip.
func TestBenchFileJSON(t *testing.T) {
	results, err := report.ParseGoBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	bf := report.NewBenchFile(results)
	var buf bytes.Buffer
	if err := bf.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var decoded report.BenchFile
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("BENCH json does not round-trip: %v", err)
	}
	if decoded.Schema != report.BenchSchema || decoded.Go == "" || decoded.Version == "" {
		t.Fatalf("header wrong: %+v", decoded)
	}
	if len(decoded.Benchmarks) != 5 {
		t.Fatalf("got %d benchmarks, want 5: %v", len(decoded.Benchmarks), bf.Names())
	}
	b, ok := decoded.Benchmarks["BenchmarkFig1EnergyDistribution"]
	if !ok || b.NsPerOp != 1520042 || b.BPerOp != 123456 || b.AllocsPerOp != 789 {
		t.Fatalf("entry wrong: %+v (names %v)", b, bf.Names())
	}
	// BenchmarkShared exists in two packages: both must survive, qualified.
	if _, ok := decoded.Benchmarks["solarml/internal/compute/BenchmarkShared"]; !ok {
		t.Fatalf("colliding name not package-qualified: %v", bf.Names())
	}
	if _, ok := decoded.Benchmarks["solarml/internal/nn/BenchmarkShared"]; !ok {
		t.Fatalf("colliding name not package-qualified: %v", bf.Names())
	}
}

// TestBenchFileEmpty: writing an empty trajectory point must fail loudly.
func TestBenchFileEmpty(t *testing.T) {
	bf := report.NewBenchFile(nil)
	if err := bf.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("empty bench file should refuse to write")
	}
}
