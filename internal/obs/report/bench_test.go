package report_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"solarml/internal/obs/report"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: solarml
cpu: Example CPU @ 2.00GHz
BenchmarkFig1EnergyDistribution-8   	       1	   1520042 ns/op	  123456 B/op	     789 allocs/op
BenchmarkSearchTelemetryOff-8       	      50	  98765.4 ns/op
PASS
ok  	solarml	1.234s
pkg: solarml/internal/compute
BenchmarkMatMulBackend/serial-8     	      10	    54321 ns/op	     100 B/op	       2 allocs/op
BenchmarkShared-8                   	       5	      111 ns/op	       0 B/op	       0 allocs/op
ok  	solarml/internal/compute	0.5s
pkg: solarml/internal/nn
BenchmarkShared-8                   	       5	      222 ns/op	       8 B/op	       1 allocs/op
this line is noise and must be ignored
`

// TestParseGoBench pins the parser: ns/op with and without -benchmem,
// fractional ns/op, subbenchmark names, pkg tracking, noise tolerance.
func TestParseGoBench(t *testing.T) {
	results, err := report.ParseGoBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkFig1EnergyDistribution" || r.Procs != 8 || r.Runs != 1 ||
		r.NsPerOp != 1520042 || r.BPerOp != 123456 || r.AllocsPerOp != 789 || !r.MemReported {
		t.Fatalf("first result wrong: %+v", r)
	}
	if r.Pkg != "solarml" {
		t.Fatalf("pkg tracking wrong: %+v", r)
	}
	if results[1].NsPerOp != 98765.4 || results[1].MemReported {
		t.Fatalf("benchmem-less result wrong: %+v", results[1])
	}
	if results[2].Name != "BenchmarkMatMulBackend/serial" || results[2].Pkg != "solarml/internal/compute" {
		t.Fatalf("subbenchmark wrong: %+v", results[2])
	}
}

// TestBenchFileJSON checks the emitted BENCH_solarml.json: schema header,
// name keys, package-qualification of colliding names, and a clean
// encoding/json round trip.
func TestBenchFileJSON(t *testing.T) {
	results, err := report.ParseGoBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	bf := report.NewBenchFile(results)
	var buf bytes.Buffer
	if err := bf.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var decoded report.BenchFile
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("BENCH json does not round-trip: %v", err)
	}
	if decoded.Schema != report.BenchSchema || decoded.Go == "" || decoded.Version == "" {
		t.Fatalf("header wrong: %+v", decoded)
	}
	if len(decoded.Benchmarks) != 5 {
		t.Fatalf("got %d benchmarks, want 5: %v", len(decoded.Benchmarks), bf.Names())
	}
	b, ok := decoded.Benchmarks["BenchmarkFig1EnergyDistribution"]
	if !ok || b.NsPerOp != 1520042 || b.BPerOp != 123456 || b.AllocsPerOp != 789 {
		t.Fatalf("entry wrong: %+v (names %v)", b, bf.Names())
	}
	// BenchmarkShared exists in two packages: both must survive, qualified.
	if _, ok := decoded.Benchmarks["solarml/internal/compute/BenchmarkShared"]; !ok {
		t.Fatalf("colliding name not package-qualified: %v", bf.Names())
	}
	if _, ok := decoded.Benchmarks["solarml/internal/nn/BenchmarkShared"]; !ok {
		t.Fatalf("colliding name not package-qualified: %v", bf.Names())
	}
}

// TestBenchFileEmpty: writing an empty trajectory point must fail loudly.
func TestBenchFileEmpty(t *testing.T) {
	bf := report.NewBenchFile(nil)
	if err := bf.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("empty bench file should refuse to write")
	}
}

// TestBenchFileMerge pins the overlay semantics a narrowed CI sweep relies
// on: untouched benchmarks survive, qualification drift between runs does
// not leave stale aliases, and a real version stamp is not clobbered by the
// "dev" fallback.
func TestBenchFileMerge(t *testing.T) {
	old := report.BenchFile{
		Schema:  report.BenchSchema,
		Go:      "go1.0",
		Version: "v1.2.3",
		Benchmarks: map[string]report.BenchResult{
			"BenchmarkKept":                    {NsPerOp: 1},
			"BenchmarkDrifts":                  {NsPerOp: 2},
			"solarml/internal/a/BenchmarkTwin": {Pkg: "solarml/internal/a", NsPerOp: 3},
			"solarml/internal/b/BenchmarkTwin": {Pkg: "solarml/internal/b", NsPerOp: 4},
		},
	}

	newer := report.NewBenchFile([]report.BenchResult{
		// BenchmarkDrifts now collides across two packages → qualified keys.
		{Name: "BenchmarkDrifts", Pkg: "solarml/internal/a", NsPerOp: 20},
		{Name: "BenchmarkDrifts", Pkg: "solarml/internal/b", NsPerOp: 21},
		// BenchmarkTwin ran in only one package this sweep → unqualified,
		// but must re-join its qualified twins instead of duplicating.
		{Name: "BenchmarkTwin", Pkg: "solarml/internal/a", NsPerOp: 30},
	})
	newer.Version = "dev"
	old.Merge(newer)

	want := map[string]float64{
		"BenchmarkKept":                      1,
		"solarml/internal/a/BenchmarkDrifts": 20,
		"solarml/internal/b/BenchmarkDrifts": 21,
		"solarml/internal/a/BenchmarkTwin":   30,
		"solarml/internal/b/BenchmarkTwin":   4,
	}
	if len(old.Benchmarks) != len(want) {
		t.Fatalf("merged keys = %v, want %d entries", old.Names(), len(want))
	}
	for k, ns := range want {
		got, ok := old.Benchmarks[k]
		if !ok || got.NsPerOp != ns {
			t.Errorf("merged[%q] = %+v (present %v), want %g ns/op", k, got, ok, ns)
		}
	}
	if old.Version != "v1.2.3" {
		t.Errorf("version = %q after dev merge, want v1.2.3 retained", old.Version)
	}

	// A real stamp from the newer run does win.
	realStamp := report.BenchFile{Version: "abc1234", Benchmarks: map[string]report.BenchResult{"BenchmarkKept": {NsPerOp: 5}}}
	old.Merge(realStamp)
	if old.Version != "abc1234" {
		t.Errorf("version = %q, want abc1234 adopted", old.Version)
	}
}

// TestDiffBench pins the trajectory diff: ratio math, regression flagging
// (ns/op past threshold OR any allocs/op increase), and added/removed rows
// never regressing.
func TestDiffBench(t *testing.T) {
	old := report.NewBenchFile(nil)
	old.Benchmarks["BenchmarkSteady"] = report.BenchResult{Name: "BenchmarkSteady", NsPerOp: 100, AllocsPerOp: 2, MemReported: true}
	old.Benchmarks["BenchmarkSlower"] = report.BenchResult{Name: "BenchmarkSlower", NsPerOp: 100}
	old.Benchmarks["BenchmarkAllocs"] = report.BenchResult{Name: "BenchmarkAllocs", NsPerOp: 100, AllocsPerOp: 0, MemReported: true}
	old.Benchmarks["BenchmarkGone"] = report.BenchResult{Name: "BenchmarkGone", NsPerOp: 7}

	cur := report.NewBenchFile(nil)
	cur.Benchmarks["BenchmarkSteady"] = report.BenchResult{Name: "BenchmarkSteady", NsPerOp: 105, AllocsPerOp: 2, MemReported: true}
	cur.Benchmarks["BenchmarkSlower"] = report.BenchResult{Name: "BenchmarkSlower", NsPerOp: 180}
	cur.Benchmarks["BenchmarkAllocs"] = report.BenchResult{Name: "BenchmarkAllocs", NsPerOp: 90, AllocsPerOp: 3, MemReported: true}
	cur.Benchmarks["BenchmarkNew"] = report.BenchResult{Name: "BenchmarkNew", NsPerOp: 42}

	deltas := report.DiffBench(old, cur)
	if len(deltas) != 5 {
		t.Fatalf("got %d deltas, want 5", len(deltas))
	}
	byKey := map[string]report.BenchDelta{}
	for _, d := range deltas {
		byKey[d.Key] = d
	}
	if d := byKey["BenchmarkSteady"]; d.Regressed(0.3) || d.Ratio < 1.04 || d.Ratio > 1.06 {
		t.Fatalf("steady misjudged: %+v", d)
	}
	if d := byKey["BenchmarkSlower"]; !d.Regressed(0.3) {
		t.Fatalf("1.8x slowdown not flagged: %+v", d)
	}
	if d := byKey["BenchmarkAllocs"]; !d.AllocsUp || !d.Regressed(0.3) {
		t.Fatalf("allocs increase not flagged: %+v", d)
	}
	if d := byKey["BenchmarkGone"]; d.InNew || d.Regressed(0) {
		t.Fatalf("removed benchmark misjudged: %+v", d)
	}
	if d := byKey["BenchmarkNew"]; d.InOld || d.Regressed(0) {
		t.Fatalf("added benchmark misjudged: %+v", d)
	}

	var buf strings.Builder
	regressed, err := report.WriteBenchDiff(&buf, deltas, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 2 {
		t.Fatalf("got %d regressions, want 2:\n%s", len(regressed), buf.String())
	}
	out := buf.String()
	for _, want := range []string{"REGRESSION", "1.80x", "new", "gone", "0→3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff table missing %q:\n%s", want, out)
		}
	}
}
