package report_test

import (
	"bytes"
	"strings"
	"testing"

	"solarml/internal/obs"
	"solarml/internal/obs/fleetobs"
	"solarml/internal/obs/report"
)

// recordFleet produces a trace the way cmd/lifetime's fleet path does:
// per-device distributions published as fleet.* histograms plus the fleet
// throughput gauges, flushed into the final metrics snapshot.
func recordFleet(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	reg := obs.NewRegistry()
	rec.WriteManifest(obs.Manifest{Tool: "lifetime", Seed: 1})

	interactions := fleetobs.NewDist([]float64{10, 100, 1000})
	finalV := fleetobs.NewDist([]float64{1, 2, 3, 4})
	for d := 0; d < 16; d++ {
		interactions.Observe(float64(40 + d*10))
		finalV.Observe(2.0 + float64(d)*0.05)
	}
	interactions.PublishTo(reg, "fleet.device_interactions")
	finalV.PublishTo(reg, "fleet.device_final_v")
	reg.Gauge("lifetime.fleet.completion_rate").Set(0.93)
	reg.Gauge("lifetime.fleet.device_years_per_sec").Set(12.5)

	rec.FlushMetrics(reg)
	rec.Finish("ok")
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFleetDistributions(t *testing.T) {
	tr, err := report.Read(bytes.NewReader(recordFleet(t)))
	if err != nil {
		t.Fatal(err)
	}
	dists := tr.FleetDistributions()
	if len(dists) != 2 {
		t.Fatalf("got %d fleet distributions, want 2", len(dists))
	}
	if dists[0].Name != "fleet.device_final_v" || dists[1].Name != "fleet.device_interactions" {
		t.Fatalf("unexpected order: %q, %q", dists[0].Name, dists[1].Name)
	}
	inter := dists[1].Snap
	if inter.Count != 16 {
		t.Fatalf("interactions count = %d", inter.Count)
	}
	if p50 := inter.Quantile(0.5); p50 < 10 || p50 > 1000 {
		t.Fatalf("p50 = %g out of bucket range", p50)
	}
}

func TestWriteFleetReport(t *testing.T) {
	tr, err := report.Read(bytes.NewReader(recordFleet(t)))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := tr.WriteFleetReport(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"fleet report:",
		"completion rate 93.0%",
		"12.50 device-years/sec",
		"device_interactions",
		"device_final_v",
		"p99",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("fleet report missing %q:\n%s", want, s)
		}
	}
}

// TestWriteFleetReportNonFleet checks a trace without fleet histograms gets
// the notice instead of an empty table.
func TestWriteFleetReportNonFleet(t *testing.T) {
	tr, err := report.Read(bytes.NewReader(recordEnergy(t)))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := tr.WriteFleetReport(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no fleet.* histograms") {
		t.Fatalf("missing non-fleet notice:\n%s", out.String())
	}
}
