// Package report is the read side of the obs telemetry layer: it
// reconstructs the span tree from a JSONL trace, attributes wall-clock time
// to span names and subsystems (the "enas." / "evo." / "nas." / "nn." /
// "compute." prefixes the instrumented layers emit), extracts the
// cache/pool efficiency ratios from metrics snapshots, and exports the
// whole run as Perfetto/Chrome trace-event JSON or flamegraph folded
// stacks. cmd/obs-report is the CLI over this package.
//
// The reader is deliberately forgiving: it consumes whatever obs.ScanTrace
// salvages from a trace — including traces from crashed runs with a
// truncated final line, spans whose parent never ended, or event kinds from
// a newer writer — and reports what it skipped instead of failing.
package report

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"solarml/internal/obs"
)

// Span is one reconstructed timed region. Start/End are seconds since the
// trace start (the recorder's clock); SelfMS is the span's duration minus
// the sum of its children's durations, clamped at zero (parallel children
// can overlap their parent's wall clock).
type Span struct {
	Name   string
	ID     uint64
	Parent uint64
	Start  float64
	End    float64
	DurMS  float64
	SelfMS float64
	// EnergyUJ is the energy attributed directly to this span (its
	// energy_uj attribute); SubtreeUJ adds every descendant's. The two
	// have inverse semantics to DurMS/SelfMS: writers charge each span
	// only its own joules, so the report sums subtrees, whereas durations
	// include children and the report subtracts them out.
	EnergyUJ  float64
	SubtreeUJ float64
	Depth     int
	Attrs     map[string]any
	Children  []*Span
}

// Subsystem returns the span's name prefix up to the first dot —
// "enas.eval_batch" → "enas" — the unit the per-phase breakdown groups by.
func (s *Span) Subsystem() string { return subsystem(s.Name) }

func subsystem(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// Trace is a fully reconstructed run.
type Trace struct {
	// Manifest and Finish are the head and tail events (nil when the trace
	// was truncated before they were written).
	Manifest *obs.Event
	Finish   *obs.Event
	// Spans holds every span in trace order; Roots the top-level trees
	// (spans with no recorded parent), ordered by start time.
	Spans []*Span
	Roots []*Span
	// Events are the point-in-time emissions (kind "event").
	Events []obs.Event
	// Metrics are the snapshot events in trace order — a time series when
	// an obs.Sampler was attached, a single terminal snapshot otherwise.
	Metrics []obs.Event
	// SkippedLines counts unparseable JSONL lines; UnknownKinds counts
	// well-formed events whose kind this version does not understand.
	SkippedLines int
	UnknownKinds int
}

// ReadFile loads and reconstructs a trace from a JSONL file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read reconstructs a trace from JSONL.
func Read(r io.Reader) (*Trace, error) {
	events, skipped, err := obs.ScanTrace(r)
	if err != nil {
		return nil, err
	}
	tr := FromEvents(events)
	tr.SkippedLines = skipped
	return tr, nil
}

// FromEvents reconstructs a trace from already-decoded events (for
// in-process use, e.g. over a subscriber's capture).
func FromEvents(events []obs.Event) *Trace {
	tr := &Trace{}
	byID := make(map[uint64]*Span)
	for i := range events {
		e := events[i]
		switch e.Kind {
		case obs.KindManifest:
			if tr.Manifest == nil {
				tr.Manifest = &events[i]
			}
		case obs.KindFinish:
			tr.Finish = &events[i]
		case obs.KindEvent:
			tr.Events = append(tr.Events, e)
		case obs.KindMetrics:
			tr.Metrics = append(tr.Metrics, e)
		case obs.KindSpan:
			sp := &Span{
				Name:     e.Name,
				ID:       e.Span,
				Parent:   e.Parent,
				Start:    e.T - e.DurMS/1e3,
				End:      e.T,
				DurMS:    e.DurMS,
				EnergyUJ: e.Float(obs.AttrEnergyUJ),
				Attrs:    e.Attrs,
			}
			tr.Spans = append(tr.Spans, sp)
			if sp.ID != 0 {
				byID[sp.ID] = sp
			}
		default:
			tr.UnknownKinds++
		}
	}
	// Spans are emitted at End, so children precede parents in the stream;
	// link after the full pass. A span whose parent never emitted (still
	// open when the process died) becomes a root.
	for _, sp := range tr.Spans {
		if p := byID[sp.Parent]; sp.Parent != 0 && p != nil && p != sp {
			p.Children = append(p.Children, sp)
		} else {
			tr.Roots = append(tr.Roots, sp)
		}
	}
	sort.SliceStable(tr.Roots, func(i, j int) bool { return tr.Roots[i].Start < tr.Roots[j].Start })
	for _, root := range tr.Roots {
		finish(root, 0)
	}
	return tr
}

// finish orders children, computes self time and subtree energy, and
// assigns depth.
func finish(sp *Span, depth int) {
	sp.Depth = depth
	sort.SliceStable(sp.Children, func(i, j int) bool { return sp.Children[i].Start < sp.Children[j].Start })
	var childMS float64
	sp.SubtreeUJ = sp.EnergyUJ
	for _, c := range sp.Children {
		childMS += c.DurMS
		finish(c, depth+1)
		sp.SubtreeUJ += c.SubtreeUJ
	}
	sp.SelfMS = math.Max(0, sp.DurMS-childMS)
}

// MainRoot returns the longest top-level span — for a search trace, the
// <algo>.search span — or nil for a span-less trace.
func (t *Trace) MainRoot() *Span {
	var best *Span
	for _, r := range t.Roots {
		if best == nil || r.DurMS > best.DurMS {
			best = r
		}
	}
	return best
}

// Tool returns the manifest's tool name ("" when the manifest is missing).
func (t *Trace) Tool() string {
	if t.Manifest == nil {
		return ""
	}
	return t.Manifest.Name
}

// Outcome returns the finish event's outcome, or "(no finish event)" for a
// truncated trace — the signal that a run died before its deferred Finish.
func (t *Trace) Outcome() string {
	if t.Finish == nil {
		return "(no finish event)"
	}
	return t.Finish.Str("outcome")
}

// WallMS estimates the run's wall clock: the finish event's duration when
// present, otherwise the latest span end seen.
func (t *Trace) WallMS() float64 {
	if t.Finish != nil && t.Finish.DurMS > 0 {
		return t.Finish.DurMS
	}
	var last float64
	for _, sp := range t.Spans {
		if sp.End > last {
			last = sp.End
		}
	}
	return last * 1e3
}

// NameStat is the rollup for one span name.
type NameStat struct {
	Name    string
	Count   int
	TotalMS float64
	SelfMS  float64
	MinMS   float64
	MaxMS   float64
	P50MS   float64
	P95MS   float64
}

// Rollup aggregates every span by name: count, total and self wall time,
// min/max and p50/p95 of the recorded durations. Sorted by total time,
// descending.
func (t *Trace) Rollup() []NameStat {
	byName := make(map[string]*NameStat)
	durs := make(map[string][]float64)
	for _, sp := range t.Spans {
		st := byName[sp.Name]
		if st == nil {
			st = &NameStat{Name: sp.Name, MinMS: math.Inf(1)}
			byName[sp.Name] = st
		}
		st.Count++
		st.TotalMS += sp.DurMS
		st.SelfMS += sp.SelfMS
		st.MinMS = math.Min(st.MinMS, sp.DurMS)
		st.MaxMS = math.Max(st.MaxMS, sp.DurMS)
		durs[sp.Name] = append(durs[sp.Name], sp.DurMS)
	}
	out := make([]NameStat, 0, len(byName))
	for name, st := range byName {
		d := durs[name]
		sort.Float64s(d)
		st.P50MS = percentile(d, 0.50)
		st.P95MS = percentile(d, 0.95)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMS != out[j].TotalMS {
			return out[i].TotalMS > out[j].TotalMS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// percentile returns the nearest-rank percentile of sorted values.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// PhaseStat attributes self time to one subsystem (span-name prefix).
type PhaseStat struct {
	Phase   string
	Spans   int
	SelfMS  float64
	TotalMS float64
}

// Phases breaks wall-clock attribution down by subsystem prefix. Self times
// partition each span tree exactly (every millisecond of a root span lands
// in exactly one span's self time), so with serial execution the phase self
// times sum to the root durations; parallel children can push the sum above
// wall clock, which the summary reports as coverage.
func (t *Trace) Phases() []PhaseStat {
	byPhase := make(map[string]*PhaseStat)
	for _, sp := range t.Spans {
		key := sp.Subsystem()
		ph := byPhase[key]
		if ph == nil {
			ph = &PhaseStat{Phase: key}
			byPhase[key] = ph
		}
		ph.Spans++
		ph.SelfMS += sp.SelfMS
		ph.TotalMS += sp.DurMS
	}
	out := make([]PhaseStat, 0, len(byPhase))
	for _, ph := range byPhase {
		out = append(out, *ph)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfMS != out[j].SelfMS {
			return out[i].SelfMS > out[j].SelfMS
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// PhaseSelfTotalMS sums self time across all phases — the numerator of the
// coverage check against the root span duration.
func (t *Trace) PhaseSelfTotalMS() float64 {
	var total float64
	for _, ph := range t.Phases() {
		total += ph.SelfMS
	}
	return total
}

// RootTotalMS sums the durations of all top-level spans — the wall clock
// the span trees claim. Self times across the trace sum to exactly this
// when no parallel children overflow their parents.
func (t *Trace) RootTotalMS() float64 {
	var total float64
	for _, r := range t.Roots {
		total += r.DurMS
	}
	return total
}

// CriticalPath walks from the main root down through the longest child at
// each level — where an optimization pass should look first.
func (t *Trace) CriticalPath() []*Span {
	var path []*Span
	for sp := t.MainRoot(); sp != nil; {
		path = append(path, sp)
		var next *Span
		for _, c := range sp.Children {
			if next == nil || c.DurMS > next.DurMS {
				next = c
			}
		}
		sp = next
	}
	return path
}

// Ratio is one derived efficiency figure from the metrics snapshots.
type Ratio struct {
	Name   string
	Hits   int64
	Misses int64
}

// Rate returns hits/(hits+misses), NaN when nothing was counted.
func (r Ratio) Rate() float64 {
	if r.Hits+r.Misses == 0 {
		return math.NaN()
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// Efficiency is the derived read of the metrics snapshots: cache and pool
// hit ratios, and the GEMM time the compute backend accounted for.
type Efficiency struct {
	// EvoCache is the evaluation memo (evo.cache_hits/_misses); Pool the
	// compute scratch pool (compute.pool_hits/_misses).
	EvoCache Ratio
	Pool     Ratio
	// GEMMCount and GEMMSeconds summarize the compute.gemm_seconds
	// histogram from the last snapshot.
	GEMMCount   uint64
	GEMMSeconds float64
	// Counters is the last snapshot's full counter set for ad-hoc reads.
	Counters map[string]int64
}

// lastMetrics returns the final metrics snapshot's attribute maps.
func (t *Trace) lastMetrics() (counters map[string]any, hists map[string]any) {
	if len(t.Metrics) == 0 {
		return nil, nil
	}
	last := t.Metrics[len(t.Metrics)-1]
	counters, _ = last.Attrs["counters"].(map[string]any)
	hists, _ = last.Attrs["histograms"].(map[string]any)
	return counters, hists
}

// Efficiency derives the cache/pool/GEMM figures from the last metrics
// snapshot (counters are cumulative, so the last snapshot is the run total).
func (t *Trace) Efficiency() Efficiency {
	var eff Efficiency
	counters, hists := t.lastMetrics()
	if counters != nil {
		eff.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			if f, ok := v.(float64); ok {
				eff.Counters[k] = int64(f)
			}
		}
	}
	eff.EvoCache = Ratio{Name: "evo.cache", Hits: eff.Counters["evo.cache_hits"], Misses: eff.Counters["evo.cache_misses"]}
	eff.Pool = Ratio{Name: "compute.pool", Hits: eff.Counters["compute.pool_hits"], Misses: eff.Counters["compute.pool_misses"]}
	if h, ok := hists["compute.gemm_seconds"].(map[string]any); ok {
		if c, ok := h["count"].(float64); ok {
			eff.GEMMCount = uint64(c)
		}
		if s, ok := h["sum"].(float64); ok {
			eff.GEMMSeconds = s
		}
	}
	return eff
}

// CountEvents tallies point events by name (cycle events, artifacts, …).
func (t *Trace) CountEvents() map[string]int {
	out := make(map[string]int, 8)
	for _, e := range t.Events {
		out[e.Name]++
	}
	return out
}

// String is a short one-line identity for error messages.
func (t *Trace) String() string {
	return fmt.Sprintf("trace{tool=%s spans=%d events=%d metrics=%d outcome=%s}",
		t.Tool(), len(t.Spans), len(t.Events), len(t.Metrics), t.Outcome())
}
