package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file is the energy read-side: the joule twin of the time rollups in
// report.go. Span energies come from energy_uj attributes (written by
// obs.Span.AddEnergy via the internal/obs/energy ledger); account totals
// come from the ledger's energy.*_uj counters in the last metrics snapshot.

// EnergyNameStat is the energy rollup for one span name.
type EnergyNameStat struct {
	Name  string
	Count int
	// OwnUJ sums the energy charged directly to spans of this name;
	// SubtreeUJ includes their descendants.
	OwnUJ     float64
	SubtreeUJ float64
	MaxUJ     float64
}

// EnergyRollup aggregates span energy by name, largest own-energy first.
// Span names that never carried energy are omitted.
func (t *Trace) EnergyRollup() []EnergyNameStat {
	byName := make(map[string]*EnergyNameStat)
	for _, sp := range t.Spans {
		if sp.EnergyUJ == 0 && sp.SubtreeUJ == 0 {
			continue
		}
		st := byName[sp.Name]
		if st == nil {
			st = &EnergyNameStat{Name: sp.Name}
			byName[sp.Name] = st
		}
		st.Count++
		st.OwnUJ += sp.EnergyUJ
		st.SubtreeUJ += sp.SubtreeUJ
		if sp.EnergyUJ > st.MaxUJ {
			st.MaxUJ = sp.EnergyUJ
		}
	}
	out := make([]EnergyNameStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].OwnUJ != out[j].OwnUJ {
			return out[i].OwnUJ > out[j].OwnUJ
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TotalEnergyUJ sums the energy attributed to spans across the trace. Own
// charges only — summing subtrees would double-count parents.
func (t *Trace) TotalEnergyUJ() float64 {
	var total float64
	for _, sp := range t.Spans {
		total += sp.EnergyUJ
	}
	return total
}

// EnergyAccount is one ledger account total read back from the metrics
// snapshots.
type EnergyAccount struct {
	Account string
	UJ      int64
}

// EnergyAccounts reads the joule ledger's per-account counters
// ("energy.<account>_uj") from the last metrics snapshot, largest first.
// The harvested/consumed aggregate counters are reported separately by
// EnergyTotals.
func (t *Trace) EnergyAccounts() []EnergyAccount {
	counters, _ := t.lastMetrics()
	var out []EnergyAccount
	for k, v := range counters {
		name, ok := strings.CutPrefix(k, "energy.")
		if !ok {
			continue
		}
		name, ok = strings.CutSuffix(name, "_uj")
		if !ok || name == "harvested" || name == "consumed" || name == "interaction" {
			continue
		}
		if f, isNum := v.(float64); isNum {
			out = append(out, EnergyAccount{Account: name, UJ: int64(f)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].UJ != out[j].UJ {
			return out[i].UJ > out[j].UJ
		}
		return out[i].Account < out[j].Account
	})
	return out
}

// EnergyTotals returns the ledger's harvested and consumed aggregate
// counters from the last metrics snapshot (zero when the trace carries no
// energy telemetry).
func (t *Trace) EnergyTotals() (harvestedUJ, consumedUJ int64) {
	counters, _ := t.lastMetrics()
	if f, ok := counters["energy.harvested_uj"].(float64); ok {
		harvestedUJ = int64(f)
	}
	if f, ok := counters["energy.consumed_uj"].(float64); ok {
		consumedUJ = int64(f)
	}
	return harvestedUJ, consumedUJ
}

// EnergyCriticalPath walks from the most energy-expensive root down through
// the most expensive child at each level — where an energy optimization
// pass should look first. Empty when no span carries energy.
func (t *Trace) EnergyCriticalPath() []*Span {
	var root *Span
	for _, r := range t.Roots {
		if root == nil || r.SubtreeUJ > root.SubtreeUJ {
			root = r
		}
	}
	if root == nil || root.SubtreeUJ == 0 {
		return nil
	}
	var path []*Span
	for sp := root; sp != nil; {
		path = append(path, sp)
		var next *Span
		for _, c := range sp.Children {
			if next == nil || c.SubtreeUJ > next.SubtreeUJ {
				next = c
			}
		}
		if next != nil && next.SubtreeUJ == 0 {
			break
		}
		sp = next
	}
	return path
}

// WriteEnergyFolded exports energy-weighted flamegraph folded stacks: one
// line per unique root→leaf path with the path's own-energy in whole µJ —
// the joule twin of WriteFolded. Paths whose rounded energy is zero are
// kept only if they carried any charge, so sub-µJ spans still show up.
func (t *Trace) WriteEnergyFolded(w io.Writer) error {
	agg := make(map[string]float64)
	var order []string
	var walk func(sp *Span, prefix string)
	walk = func(sp *Span, prefix string) {
		stack := sp.Name
		if prefix != "" {
			stack = prefix + ";" + sp.Name
		}
		if sp.EnergyUJ > 0 {
			if _, seen := agg[stack]; !seen {
				order = append(order, stack)
			}
			agg[stack] += sp.EnergyUJ
		}
		for _, c := range sp.Children {
			walk(c, stack)
		}
	}
	for _, root := range t.Roots {
		walk(root, "")
	}
	sort.Strings(order)
	for _, stack := range order {
		uj := int64(agg[stack] + 0.5)
		if uj == 0 {
			uj = 1
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", stack, uj); err != nil {
			return err
		}
	}
	return nil
}

// WriteEnergyReport renders the human-readable energy report cmd/obs-report
// prints for -energy: ledger account totals, span energy rollup, and the
// energy critical path.
func (t *Trace) WriteEnergyReport(w io.Writer) error {
	var b strings.Builder

	harvested, consumed := t.EnergyTotals()
	accounts := t.EnergyAccounts()
	rollup := t.EnergyRollup()
	if harvested == 0 && consumed == 0 && len(rollup) == 0 {
		b.WriteString("no energy telemetry in trace (run with an energy ledger attached)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}

	if len(accounts) > 0 || harvested != 0 || consumed != 0 {
		b.WriteString("energy accounts (ledger counters, last snapshot):\n")
		for _, a := range accounts {
			pct := 0.0
			if consumed > 0 {
				pct = 100 * float64(a.UJ) / float64(consumed)
			}
			fmt.Fprintf(&b, "  %-12s %12d µJ  %5.1f%%\n", a.Account, a.UJ, pct)
		}
		fmt.Fprintf(&b, "  %-12s %12d µJ\n", "consumed", consumed)
		fmt.Fprintf(&b, "  %-12s %12d µJ\n", "harvested", harvested)
		fmt.Fprintf(&b, "  %-12s %+12d µJ\n", "net", harvested-consumed)
	}

	if len(rollup) > 0 {
		fmt.Fprintf(&b, "\nspan energy rollup:\n  %-28s %6s %14s %14s\n",
			"name", "count", "own_uj", "subtree_uj")
		for _, st := range rollup {
			fmt.Fprintf(&b, "  %-28s %6d %14.1f %14.1f\n",
				st.Name, st.Count, st.OwnUJ, st.SubtreeUJ)
		}
		fmt.Fprintf(&b, "  span-attributed total: %.1f µJ\n", t.TotalEnergyUJ())
	}

	if path := t.EnergyCriticalPath(); len(path) > 0 {
		b.WriteString("\nenergy critical path:\n")
		for _, sp := range path {
			pct := 0.0
			if path[0].SubtreeUJ > 0 {
				pct = 100 * sp.SubtreeUJ / path[0].SubtreeUJ
			}
			fmt.Fprintf(&b, "  %s%-28s %14.1f µJ  %5.1f%%\n",
				strings.Repeat("  ", sp.Depth), sp.Name, sp.SubtreeUJ, pct)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}
