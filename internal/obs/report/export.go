package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// chromeEvent is one entry of the Chrome/Perfetto trace-event format
// (ph "X" complete spans, "i" instants, "C" counter samples).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavour of the format, which both
// chrome://tracing and ui.perfetto.dev load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WritePerfetto exports the trace as Chrome trace-event JSON: each root
// span tree renders on its own track (tid), point events become instants on
// their parent's track, and every metrics snapshot becomes one counter
// sample per counter/gauge — so a Sampler-equipped trace shows metric time
// series alongside the span waterfall.
func (t *Trace) WritePerfetto(w io.Writer) error {
	out := chromeTrace{DisplayTimeUnit: "ms"}
	if t.Manifest != nil {
		out.OtherData = map[string]any{"tool": t.Manifest.Name}
		for k, v := range t.Manifest.Attrs {
			out.OtherData[k] = v
		}
	}

	// One track per root tree, in start order; remember each span's track
	// so instants land next to their parents.
	tidOf := make(map[uint64]int, len(t.Spans))
	for i, root := range t.Roots {
		tid := i + 1
		var walk func(sp *Span)
		walk = func(sp *Span) {
			tidOf[sp.ID] = tid
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: sp.Name, Cat: sp.Subsystem(), Ph: "X",
				TS: sp.Start * 1e6, Dur: sp.DurMS * 1e3,
				PID: 1, TID: tid, Args: sp.Attrs,
			})
			for _, c := range sp.Children {
				walk(c)
			}
		}
		walk(root)
	}
	for _, e := range t.Events {
		tid := tidOf[e.Parent]
		if tid == 0 {
			tid = 1
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Name, Cat: subsystem(e.Name), Ph: "i",
			TS: e.T * 1e6, PID: 1, TID: tid, S: "t", Args: e.Attrs,
		})
	}
	for _, m := range t.Metrics {
		ts := m.T * 1e6
		if counters, ok := m.Attrs["counters"].(map[string]any); ok {
			for name, v := range counters {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: name, Ph: "C", TS: ts, PID: 1, TID: 0,
					Args: map[string]any{"value": v},
				})
			}
		}
		if gauges, ok := m.Attrs["gauges"].(map[string]any); ok {
			for name, v := range gauges {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: name, Ph: "C", TS: ts, PID: 1, TID: 0,
					Args: map[string]any{"value": v},
				})
			}
		}
	}
	// Counter/instant interleavings above iterate maps; sort for stable
	// output (viewers don't care, diffs and tests do).
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		a, b := out.TraceEvents[i], out.TraceEvents[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFolded exports flamegraph folded stacks: one line per unique
// root→leaf path, "a;b;c <self-µs>", compatible with flamegraph.pl and
// speedscope. Equal paths (e.g. every enas.eval_batch under phase2)
// aggregate.
func (t *Trace) WriteFolded(w io.Writer) error {
	agg := make(map[string]float64)
	var order []string
	var walk func(sp *Span, prefix string)
	walk = func(sp *Span, prefix string) {
		stack := sp.Name
		if prefix != "" {
			stack = prefix + ";" + sp.Name
		}
		if _, seen := agg[stack]; !seen {
			order = append(order, stack)
		}
		agg[stack] += sp.SelfMS * 1e3
		for _, c := range sp.Children {
			walk(c, stack)
		}
	}
	for _, root := range t.Roots {
		walk(root, "")
	}
	sort.Strings(order)
	for _, stack := range order {
		if _, err := fmt.Fprintf(w, "%s %d\n", stack, int64(agg[stack]+0.5)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports the by-name rollup as CSV (one row per span name,
// sorted by total time).
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "count", "total_ms", "self_ms", "min_ms", "p50_ms", "p95_ms", "max_ms"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, st := range t.Rollup() {
		if err := cw.Write([]string{
			st.Name, strconv.Itoa(st.Count),
			f(st.TotalMS), f(st.SelfMS), f(st.MinMS), f(st.P50MS), f(st.P95MS), f(st.MaxMS),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSummary renders the human-readable report cmd/obs-report prints by
// default: run identity, span rollup, subsystem breakdown with coverage
// against the root wall clock, critical path, efficiency ratios, and the
// metrics-snapshot cadence.
func (t *Trace) WriteSummary(w io.Writer) error {
	var b strings.Builder

	if m := t.Manifest; m != nil {
		fmt.Fprintf(&b, "run:      %s (seed %d, version %s, %s)\n",
			m.Name, m.Int("seed"), m.Str("version"), m.Str("go"))
		keys := make([]string, 0, len(m.Attrs))
		for k := range m.Attrs {
			if strings.HasPrefix(k, "config.") {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		if len(keys) > 0 {
			b.WriteString("config:  ")
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%v", strings.TrimPrefix(k, "config."), m.Attrs[k])
			}
			b.WriteByte('\n')
		}
	} else {
		b.WriteString("run:      (no manifest — truncated trace?)\n")
	}
	fmt.Fprintf(&b, "outcome:  %s, wall %.1f ms\n", t.Outcome(), t.WallMS())
	fmt.Fprintf(&b, "trace:    %d spans, %d events, %d metrics snapshots",
		len(t.Spans), len(t.Events), len(t.Metrics))
	if t.SkippedLines > 0 || t.UnknownKinds > 0 {
		fmt.Fprintf(&b, " (%d corrupt lines skipped, %d unknown kinds ignored)",
			t.SkippedLines, t.UnknownKinds)
	}
	b.WriteByte('\n')

	if rollup := t.Rollup(); len(rollup) > 0 {
		fmt.Fprintf(&b, "\nspan rollup:\n  %-28s %6s %12s %12s %10s %10s\n",
			"name", "count", "total_ms", "self_ms", "p50_ms", "p95_ms")
		for _, st := range rollup {
			fmt.Fprintf(&b, "  %-28s %6d %12.3f %12.3f %10.3f %10.3f\n",
				st.Name, st.Count, st.TotalMS, st.SelfMS, st.P50MS, st.P95MS)
		}

		rootMS := t.RootTotalMS()
		fmt.Fprintf(&b, "\nper-phase breakdown (self time):\n")
		for _, ph := range t.Phases() {
			pct := 0.0
			if rootMS > 0 {
				pct = 100 * ph.SelfMS / rootMS
			}
			fmt.Fprintf(&b, "  %-12s %12.3f ms  %5.1f%%  (%d spans)\n", ph.Phase, ph.SelfMS, pct, ph.Spans)
		}
		if rootMS > 0 {
			fmt.Fprintf(&b, "  coverage: %.3f ms attributed of %.3f ms in %d root span(s) (%.1f%%)\n",
				t.PhaseSelfTotalMS(), rootMS, len(t.Roots), 100*t.PhaseSelfTotalMS()/rootMS)
		}

		if path := t.CriticalPath(); len(path) > 0 {
			b.WriteString("\ncritical path:\n")
			for _, sp := range path {
				pct := 0.0
				if path[0].DurMS > 0 {
					pct = 100 * sp.DurMS / path[0].DurMS
				}
				fmt.Fprintf(&b, "  %s%-28s %12.3f ms  %5.1f%%\n",
					strings.Repeat("  ", sp.Depth), sp.Name, sp.DurMS, pct)
			}
		}
	}

	eff := t.Efficiency()
	var effLines []string
	for _, r := range []Ratio{eff.EvoCache, eff.Pool} {
		if r.Hits+r.Misses > 0 {
			effLines = append(effLines, fmt.Sprintf("  %-14s %d hits / %d misses  (%.1f%% hit rate)",
				r.Name, r.Hits, r.Misses, 100*r.Rate()))
		}
	}
	if eff.GEMMCount > 0 {
		effLines = append(effLines, fmt.Sprintf("  %-14s %d calls, %.3f s total", "compute.gemm", eff.GEMMCount, eff.GEMMSeconds))
	}
	if len(effLines) > 0 {
		b.WriteString("\nefficiency:\n")
		for _, l := range effLines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}

	if counts := t.CountEvents(); len(counts) > 0 {
		names := make([]string, 0, len(counts))
		for n := range counts {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("\nevents:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "  %-28s ×%d\n", n, counts[n])
		}
	}

	if len(t.Metrics) > 1 {
		span := t.Metrics[len(t.Metrics)-1].T - t.Metrics[0].T
		fmt.Fprintf(&b, "\nmetrics time series: %d snapshots over %.1f s (~%.2f s cadence)\n",
			len(t.Metrics), span, span/float64(len(t.Metrics)-1))
	}

	_, err := io.WriteString(w, b.String())
	return err
}
