package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"solarml/internal/obs"
)

// BenchResult is one parsed `go test -bench` line.
type BenchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (stable across machines); Pkg the package it ran in.
	Name string `json:"-"`
	Pkg  string `json:"pkg,omitempty"`
	// Procs is the stripped GOMAXPROCS suffix (0 when absent).
	Procs int `json:"procs,omitempty"`
	// Runs is b.N for the reported measurement.
	Runs    int64   `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
	// BPerOp/AllocsPerOp are present only under -benchmem (MemReported).
	BPerOp      int64 `json:"b_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	MemReported bool  `json:"-"`
}

// benchLine matches e.g.
//
//	BenchmarkFoo-8   	 1000	   1234 ns/op	  56 B/op	   7 allocs/op
//
// with the B/op and allocs/op fields optional (absent without -benchmem).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

var benchPkgLine = regexp.MustCompile(`^pkg:\s+(\S+)`)

// ParseGoBench extracts benchmark results from `go test -bench` output,
// tracking the `pkg:` header lines so the same benchmark name in two
// packages stays distinguishable. Non-benchmark lines (PASS, ok, custom
// metrics, compiler noise) are ignored.
func ParseGoBench(r io.Reader) ([]BenchResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var out []BenchResult
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if m := benchPkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := BenchResult{Name: m[1], Pkg: pkg}
		res.Procs, _ = strconv.Atoi(m[2])
		res.Runs, _ = strconv.ParseInt(m[3], 10, 64)
		res.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		if m[5] != "" {
			res.BPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			res.MemReported = true
		}
		if m[6] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// BenchFile is the BENCH_solarml.json schema: one entry per benchmark name
// (package-qualified on collision), keyed for easy diffing across PRs.
type BenchFile struct {
	Schema     string                 `json:"schema"`
	Go         string                 `json:"go"`
	Version    string                 `json:"version"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
}

// BenchSchema identifies the emitter format.
const BenchSchema = "solarml-bench/v1"

// NewBenchFile assembles the trajectory file from parsed results. When two
// packages define the same benchmark name, both keys are qualified with
// their package path so neither silently wins.
func NewBenchFile(results []BenchResult) BenchFile {
	f := BenchFile{
		Schema:     BenchSchema,
		Go:         obs.GoVersion(),
		Version:    obs.Version(),
		Benchmarks: make(map[string]BenchResult, len(results)),
	}
	byName := make(map[string][]BenchResult, len(results))
	for _, r := range results {
		byName[r.Name] = append(byName[r.Name], r)
	}
	for name, rs := range byName {
		if len(rs) == 1 {
			f.Benchmarks[name] = rs[0]
			continue
		}
		for _, r := range rs {
			f.Benchmarks[r.Pkg+"/"+name] = r
		}
	}
	return f
}

// ReadBenchFile parses an existing trajectory file.
func ReadBenchFile(r io.Reader) (BenchFile, error) {
	var f BenchFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return BenchFile{}, fmt.Errorf("bench: parse trajectory file: %w", err)
	}
	if f.Schema != BenchSchema {
		return BenchFile{}, fmt.Errorf("bench: unexpected schema %q", f.Schema)
	}
	return f, nil
}

// benchKeyName strips the package-qualification prefix (added on name
// collisions) from a Benchmarks map key, returning the bare benchmark name.
func benchKeyName(k string) string {
	if i := strings.Index(k, "Benchmark"); i > 0 && k[i-1] == '/' {
		return k[i:]
	}
	return k
}

// Merge overlays new results onto f: entries sharing a key are replaced,
// everything else is retained — a narrowed benchmark sweep (CI's smoke
// subset) then refreshes its own data points without erasing the rest of
// the trajectory. Qualification drift between runs is reconciled: a newly
// qualified key evicts its stale unqualified alias, and an unqualified
// result joins existing qualified twins under its package key rather than
// duplicating them. The Go stamp follows the newer file; the version stamp
// does too, unless the newer one is the "dev" fallback and f already
// carries a real stamp.
func (f *BenchFile) Merge(newer BenchFile) {
	f.Go = newer.Go
	if newer.Version != "" && !(newer.Version == "dev" && f.Version != "" && f.Version != "dev") {
		f.Version = newer.Version
	}
	if f.Benchmarks == nil {
		f.Benchmarks = make(map[string]BenchResult, len(newer.Benchmarks))
	}
	for k, v := range newer.Benchmarks {
		bare := benchKeyName(k)
		if k != bare {
			// Newly qualified: any old unqualified alias is stale.
			delete(f.Benchmarks, bare)
		} else if v.Pkg != "" {
			for old := range f.Benchmarks {
				if old != bare && benchKeyName(old) == bare {
					k = v.Pkg + "/" + bare
					delete(f.Benchmarks, bare)
					break
				}
			}
		}
		f.Benchmarks[k] = v
	}
}

// WriteJSON writes the file as stable, indented JSON (encoding/json sorts
// map keys, so reruns diff cleanly).
func (f BenchFile) WriteJSON(w io.Writer) error {
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("bench: no benchmark results to write")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Names returns the sorted benchmark keys (for summaries and tests).
func (f BenchFile) Names() []string {
	names := make([]string, 0, len(f.Benchmarks))
	for n := range f.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BenchDelta is one benchmark's old-vs-new comparison in a trajectory diff.
type BenchDelta struct {
	Key      string
	Old, New BenchResult
	// InOld/InNew report presence; a benchmark only in one file is listed
	// but never counts as a regression.
	InOld, InNew bool
	// Ratio is new/old ns-per-op (0 unless present in both).
	Ratio float64
	// AllocsUp reports an allocs/op increase (both sides -benchmem only).
	AllocsUp bool
}

// Regressed reports whether the delta breaches the threshold: ns/op grew
// past 1+threshold, or allocs/op increased at all (allocation counts are
// deterministic, so any growth is a real change, not noise).
func (d BenchDelta) Regressed(threshold float64) bool {
	if !d.InOld || !d.InNew {
		return false
	}
	return d.Ratio > 1+threshold || d.AllocsUp
}

// DiffBench compares two trajectory files key by key, in sorted order.
func DiffBench(old, newer BenchFile) []BenchDelta {
	keys := make(map[string]struct{}, len(old.Benchmarks)+len(newer.Benchmarks))
	for k := range old.Benchmarks {
		keys[k] = struct{}{}
	}
	for k := range newer.Benchmarks {
		keys[k] = struct{}{}
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	out := make([]BenchDelta, 0, len(sorted))
	for _, k := range sorted {
		d := BenchDelta{Key: k}
		d.Old, d.InOld = old.Benchmarks[k]
		d.New, d.InNew = newer.Benchmarks[k]
		if d.InOld && d.InNew && d.Old.NsPerOp > 0 {
			d.Ratio = d.New.NsPerOp / d.Old.NsPerOp
		}
		if d.InOld && d.InNew && d.Old.MemReported && d.New.MemReported {
			d.AllocsUp = d.New.AllocsPerOp > d.Old.AllocsPerOp
		}
		out = append(out, d)
	}
	return out
}

// WriteBenchDiff renders the comparison as a fixed-width table, flagging
// rows that breach the threshold, and returns the regressed subset.
func WriteBenchDiff(w io.Writer, deltas []BenchDelta, threshold float64) ([]BenchDelta, error) {
	if _, err := fmt.Fprintf(w, "%-52s %14s %14s %8s %10s\n",
		"benchmark", "old ns/op", "new ns/op", "ratio", "allocs"); err != nil {
		return nil, err
	}
	var regressed []BenchDelta
	for _, d := range deltas {
		switch {
		case !d.InOld:
			if _, err := fmt.Fprintf(w, "%-52s %14s %14.0f %8s %10s\n",
				d.Key, "-", d.New.NsPerOp, "new", ""); err != nil {
				return nil, err
			}
			continue
		case !d.InNew:
			if _, err := fmt.Fprintf(w, "%-52s %14.0f %14s %8s %10s\n",
				d.Key, d.Old.NsPerOp, "-", "gone", ""); err != nil {
				return nil, err
			}
			continue
		}
		allocs := fmt.Sprintf("%d→%d", d.Old.AllocsPerOp, d.New.AllocsPerOp)
		flag := ""
		if d.Regressed(threshold) {
			flag = "  << REGRESSION"
			regressed = append(regressed, d)
		}
		if _, err := fmt.Fprintf(w, "%-52s %14.0f %14.0f %7.2fx %10s%s\n",
			d.Key, d.Old.NsPerOp, d.New.NsPerOp, d.Ratio, allocs, flag); err != nil {
			return nil, err
		}
	}
	return regressed, nil
}
