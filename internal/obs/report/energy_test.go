package report_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"solarml/internal/obs"
	"solarml/internal/obs/energy"
	"solarml/internal/obs/report"
)

// recordEnergy produces a small trace with span-attributed energy and a
// ledger-published metrics snapshot: two firmware-style sessions with
// detect/sense/infer children plus harvest income.
func recordEnergy(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	reg := obs.NewRegistry()
	led := energy.NewLedger(reg)
	rec.WriteManifest(obs.Manifest{Tool: "lifetime", Seed: 1})

	charge := func(parent *obs.Span, acc energy.Account, name string, j float64) {
		child := parent.Child(name)
		led.ChargeSpan(&child, acc, j)
		child.End()
	}
	for i := 0; i < 2; i++ {
		sp := rec.StartSpan("firmware.session")
		charge(&sp, energy.AccountDetect, "firmware.detect", 100e-6)
		charge(&sp, energy.AccountSense, "firmware.sense", 2e-3)
		charge(&sp, energy.AccountInfer, "firmware.infer", 1e-3)
		sp.End()
	}
	led.Harvest(10e-3)
	led.Charge(energy.AccountLeak, 50e-6)
	led.ObserveInteraction(3.1e-3)
	led.Sync()
	rec.FlushMetrics(reg)
	rec.Finish("ok")
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEnergyRollupAndAccounts(t *testing.T) {
	tr, err := report.Read(bytes.NewReader(recordEnergy(t)))
	if err != nil {
		t.Fatal(err)
	}

	rollup := tr.EnergyRollup()
	byName := map[string]report.EnergyNameStat{}
	for _, st := range rollup {
		byName[st.Name] = st
	}
	if st := byName["firmware.sense"]; st.Count != 2 || math.Abs(st.OwnUJ-4000) > 1e-9 {
		t.Errorf("sense rollup = %+v, want count 2 / 4000 µJ", st)
	}
	if st := byName["firmware.session"]; math.Abs(st.SubtreeUJ-6200) > 1e-9 || st.OwnUJ != 0 {
		t.Errorf("session rollup = %+v, want subtree 6200 µJ / own 0", st)
	}
	// Rollup sorts by own energy: sense (4000) before infer (2000).
	if rollup[0].Name != "firmware.sense" || rollup[1].Name != "firmware.infer" {
		t.Errorf("rollup order = %s, %s", rollup[0].Name, rollup[1].Name)
	}
	if got := tr.TotalEnergyUJ(); math.Abs(got-6200) > 1e-9 {
		t.Errorf("total span energy = %g µJ, want 6200", got)
	}

	accounts := tr.EnergyAccounts()
	want := map[string]int64{"sense": 4000, "infer": 2000, "detect": 200, "leak": 50}
	got := map[string]int64{}
	for _, a := range accounts {
		if a.UJ != 0 {
			got[a.Account] = a.UJ
		}
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("account %s = %d µJ, want %d", k, got[k], v)
		}
	}
	if accounts[0].Account != "sense" {
		t.Errorf("accounts not sorted by µJ: first = %s", accounts[0].Account)
	}
	harvested, consumed := tr.EnergyTotals()
	if harvested != 10000 || consumed != 6250 {
		t.Errorf("totals = %d harvested / %d consumed µJ, want 10000 / 6250", harvested, consumed)
	}
}

func TestEnergyCriticalPath(t *testing.T) {
	tr, err := report.Read(bytes.NewReader(recordEnergy(t)))
	if err != nil {
		t.Fatal(err)
	}
	path := tr.EnergyCriticalPath()
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2 (session → sense)", len(path))
	}
	if path[0].Name != "firmware.session" || path[1].Name != "firmware.sense" {
		t.Errorf("path = %s → %s, want firmware.session → firmware.sense", path[0].Name, path[1].Name)
	}
}

func TestEnergyFolded(t *testing.T) {
	tr, err := report.Read(bytes.NewReader(recordEnergy(t)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteEnergyFolded(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"firmware.session;firmware.sense 4000",
		"firmware.session;firmware.infer 2000",
		"firmware.session;firmware.detect 200",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}
	// Parents with no own energy must not produce a line of their own.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "firmware.session ") {
			t.Errorf("zero-energy parent emitted: %q", line)
		}
	}
}

func TestEnergyReportText(t *testing.T) {
	tr, err := report.Read(bytes.NewReader(recordEnergy(t)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteEnergyReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"energy accounts", "span energy rollup", "energy critical path",
		"harvested", "consumed", "sense",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("energy report missing %q:\n%s", want, out)
		}
	}
}

func TestEnergyReportWithoutTelemetry(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	sp := rec.StartSpan("plain")
	sp.End()
	rec.Finish("ok")
	tr, err := report.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := tr.WriteEnergyReport(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no energy telemetry") {
		t.Errorf("energy report on plain trace = %q", out.String())
	}
}
