package report_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"solarml/internal/enas"
	"solarml/internal/nas"
	"solarml/internal/obs"
	"solarml/internal/obs/report"
)

// record runs a small seeded eNAS surrogate search (the cmd/enas-search
// configuration at test scale) with a recorder and sampler attached, and
// returns the raw JSONL trace.
func record(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	reg := obs.NewRegistry()
	rec.WriteManifest(obs.Manifest{Tool: "enas-search", Seed: 7, Config: map[string]any{
		"algo": "enas", "task": "gesture", "eval": "surrogate",
	}})
	sampler := obs.StartSampler(rec, reg, 2*time.Millisecond)

	space := nas.GestureSpace()
	eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
	eval.Obs = rec
	cfg := enas.DefaultConfig(nas.TaskGesture, 0.5)
	cfg.Population, cfg.SampleSize, cfg.Cycles, cfg.SensingEvery, cfg.Seed = 12, 5, 40, 8, 7
	cfg.Obs, cfg.Metrics, cfg.Cache = rec, reg, true
	if _, err := enas.Search(space, eval, cfg); err != nil {
		t.Fatalf("Search: %v", err)
	}

	sampler.Stop()
	rec.FlushMetrics(reg)
	rec.Finish("ok")
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReportOverSeededSearch is the acceptance check: per-phase rollups of
// a recorded seeded search account for the root span's duration within 5%,
// and the identity/efficiency reads come back populated.
func TestReportOverSeededSearch(t *testing.T) {
	raw := record(t)
	tr, err := report.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if tr.SkippedLines != 0 {
		t.Fatalf("recorder-produced trace has %d corrupt lines", tr.SkippedLines)
	}
	if tr.Tool() != "enas-search" || tr.Outcome() != "ok" {
		t.Fatalf("identity wrong: tool %q outcome %q", tr.Tool(), tr.Outcome())
	}

	root := tr.MainRoot()
	if root == nil || root.Name != "enas.search" {
		t.Fatalf("main root = %+v, want enas.search", root)
	}
	// The engine's phase spans must hang off the search root.
	names := map[string]bool{}
	for _, c := range root.Children {
		names[c.Name] = true
	}
	if !names["enas.phase1"] || !names["enas.phase2"] {
		t.Fatalf("root children %v, want enas.phase1 + enas.phase2", names)
	}

	// Per-phase self times must account for the root duration within 5%.
	// (With a serial search they partition it exactly; the tolerance is the
	// acceptance bound.)
	selfMS, rootMS := tr.PhaseSelfTotalMS(), tr.RootTotalMS()
	if rootMS <= 0 {
		t.Fatal("no root time")
	}
	if rel := math.Abs(selfMS-rootMS) / rootMS; rel > 0.05 {
		t.Fatalf("phase self total %.3f ms vs root total %.3f ms: off by %.1f%% (> 5%%)",
			selfMS, rootMS, rel*100)
	}

	rollup := tr.Rollup()
	if len(rollup) == 0 || rollup[0].Name != "enas.search" {
		t.Fatalf("rollup %v, want enas.search first (largest total)", rollup)
	}
	for _, st := range rollup {
		if st.Count <= 0 || st.P95MS < st.P50MS || st.MaxMS < st.MinMS {
			t.Fatalf("inconsistent stat: %+v", st)
		}
	}

	// The cycle events and the memo's efficiency counters must surface.
	if tr.CountEvents()["enas.cycle"] != 40 {
		t.Fatalf("enas.cycle events = %d, want 40", tr.CountEvents()["enas.cycle"])
	}
	eff := tr.Efficiency()
	if eff.EvoCache.Hits+eff.EvoCache.Misses == 0 {
		t.Fatal("cache ratio empty despite Cache=true")
	}
	if eff.Counters["enas.evaluations"] == 0 {
		t.Fatal("evaluations counter missing from last snapshot")
	}

	// Sampler contract: ≥2 snapshots carrying runtime gauges.
	if len(tr.Metrics) < 2 {
		t.Fatalf("metrics snapshots = %d, want ≥ 2", len(tr.Metrics))
	}
	gauges, _ := tr.Metrics[0].Attrs["gauges"].(map[string]any)
	if v, _ := gauges[obs.GaugeGoroutines].(float64); v < 1 {
		t.Fatalf("first snapshot lacks runtime gauges: %v", tr.Metrics[0].Attrs)
	}

	// Critical path starts at the root and descends monotonically.
	path := tr.CriticalPath()
	if len(path) < 2 || path[0] != root {
		t.Fatalf("critical path %v", path)
	}
	for i := 1; i < len(path); i++ {
		if path[i].DurMS > path[i-1].DurMS {
			t.Fatalf("critical path not monotone at %d: %v", i, path)
		}
	}

	// The summary must render and mention the key sections.
	var sum strings.Builder
	if err := tr.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"enas.search", "per-phase breakdown", "critical path", "coverage", "enas.cycle"} {
		if !strings.Contains(sum.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sum.String())
		}
	}
}

// TestPerfettoRoundTrip pins the acceptance criterion that the Perfetto
// export is valid trace-event JSON: it re-decodes through encoding/json and
// checks the structural invariants viewers rely on.
func TestPerfettoRoundTrip(t *testing.T) {
	raw := record(t)
	tr, err := report.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" || len(decoded.TraceEvents) == 0 {
		t.Fatalf("unexpected export shape: unit %q, %d events", decoded.DisplayTimeUnit, len(decoded.TraceEvents))
	}
	counts := map[string]int{}
	sawSearch := false
	for _, e := range decoded.TraceEvents {
		counts[e.Ph]++
		switch e.Ph {
		case "X":
			if e.Dur < 0 || e.TS < 0 || e.PID != 1 || e.TID < 1 {
				t.Fatalf("bad complete event: %+v", e)
			}
			if e.Name == "enas.search" {
				sawSearch = true
			}
		case "C":
			if _, ok := e.Args["value"]; !ok {
				t.Fatalf("counter event without value: %+v", e)
			}
		}
	}
	if counts["X"] == 0 || counts["i"] == 0 || counts["C"] == 0 {
		t.Fatalf("export missing event phases: %v", counts)
	}
	if !sawSearch {
		t.Fatal("enas.search span missing from export")
	}
}

// TestFoldedStacks checks the folded-stack export on a hand-built tree.
func TestFoldedStacks(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	root := rec.StartSpan("a.root")
	c1 := root.Child("a.work")
	time.Sleep(2 * time.Millisecond)
	c1.End()
	c2 := root.Child("a.work") // same path, must aggregate
	time.Sleep(2 * time.Millisecond)
	c2.End()
	root.End()
	rec.Flush()

	tr, err := report.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := tr.WriteFolded(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("folded output = %q, want 2 aggregated stacks", out.String())
	}
	if !strings.HasPrefix(lines[0], "a.root ") || !strings.HasPrefix(lines[1], "a.root;a.work ") {
		t.Fatalf("folded stacks wrong: %q", lines)
	}
}

// TestTruncatedTraceStillReports: a trace cut off mid-run (no finish, open
// root span) must still yield rollups from the spans that did end.
func TestTruncatedTraceStillReports(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	rec.WriteManifest(obs.Manifest{Tool: "crashy", Seed: 1})
	root := rec.StartSpan("x.search")
	child := root.Child("x.phase1")
	child.End()
	// root never ends; process "dies" mid-line:
	rec.Flush()
	buf.WriteString(`{"t":9,"kind":"span","name":"x.pha`)

	tr, err := report.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SkippedLines != 1 || tr.Finish != nil {
		t.Fatalf("skipped %d, finish %v; want 1, nil", tr.SkippedLines, tr.Finish)
	}
	if tr.Outcome() != "(no finish event)" {
		t.Fatalf("outcome = %q", tr.Outcome())
	}
	// The ended child, whose parent never emitted, surfaces as a root.
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "x.phase1" {
		t.Fatalf("roots = %+v, want orphaned x.phase1", tr.Roots)
	}
	if tr.Rollup()[0].Name != "x.phase1" {
		t.Fatalf("rollup = %+v", tr.Rollup())
	}
}

// TestCSVExport sanity-checks the rollup CSV shape.
func TestCSVExport(t *testing.T) {
	raw := record(t)
	tr, err := report.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := tr.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "name,count,total_ms,self_ms,min_ms,p50_ms,p95_ms,max_ms" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != len(tr.Rollup())+1 {
		t.Fatalf("csv rows = %d, want %d", len(lines)-1, len(tr.Rollup()))
	}
}
