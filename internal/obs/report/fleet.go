package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"solarml/internal/obs"
)

// FleetHist is one per-device fleet distribution recovered from the trace's
// final metrics snapshot (the fleet.* histograms RunFleet publishes).
type FleetHist struct {
	Name string
	Snap obs.HistogramSnapshot
}

// decodeHistogram rebuilds a histogram snapshot from its JSON-decoded
// attribute map (the shape obs.HistogramSnapshot marshals to).
func decodeHistogram(m map[string]any) (obs.HistogramSnapshot, bool) {
	var s obs.HistogramSnapshot
	if bs, ok := m["bounds"].([]any); ok {
		s.Bounds = make([]float64, 0, len(bs))
		for _, b := range bs {
			f, ok := b.(float64)
			if !ok {
				return s, false
			}
			s.Bounds = append(s.Bounds, f)
		}
	}
	if cs, ok := m["counts"].([]any); ok {
		s.Counts = make([]uint64, 0, len(cs))
		for _, c := range cs {
			f, ok := c.(float64)
			if !ok {
				return s, false
			}
			s.Counts = append(s.Counts, uint64(f))
		}
	}
	count, _ := m["count"].(float64)
	s.Count = uint64(count)
	s.Sum, _ = m["sum"].(float64)
	s.Mean, _ = m["mean"].(float64)
	s.Min, _ = m["min"].(float64)
	s.Max, _ = m["max"].(float64)
	return s, len(s.Counts) == len(s.Bounds)+1
}

// FleetDistributions returns the trace's fleet.* per-device histograms in
// name order (empty for single-device or search traces).
func (t *Trace) FleetDistributions() []FleetHist {
	_, hists := t.lastMetrics()
	var out []FleetHist
	for name, raw := range hists {
		if !strings.HasPrefix(name, "fleet.") {
			continue
		}
		m, ok := raw.(map[string]any)
		if !ok {
			continue
		}
		if s, ok := decodeHistogram(m); ok && s.Count > 0 {
			out = append(out, FleetHist{Name: name, Snap: s})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// fleetGauges pulls the fleet throughput gauges from the final snapshot.
func (t *Trace) fleetGauges() (completionRate, deviceYearsPerSec float64, ok bool) {
	if len(t.Metrics) == 0 {
		return 0, 0, false
	}
	gauges, _ := t.Metrics[len(t.Metrics)-1].Attrs["gauges"].(map[string]any)
	if gauges == nil {
		return 0, 0, false
	}
	cr, okCR := gauges["lifetime.fleet.completion_rate"].(float64)
	dy, okDY := gauges["lifetime.fleet.device_years_per_sec"].(float64)
	return cr, dy, okCR || okDY
}

// WriteFleetReport renders the fleet section: run-level gauges and one
// quantile row per per-device distribution. Traces without fleet.*
// histograms (single-device runs, searches) get a one-line notice.
func (t *Trace) WriteFleetReport(w io.Writer) error {
	dists := t.FleetDistributions()
	if _, err := fmt.Fprintln(w, "fleet report:"); err != nil {
		return err
	}
	if len(dists) == 0 {
		_, err := fmt.Fprintln(w, "  (no fleet.* histograms in the final metrics snapshot — not a fleet trace?)")
		return err
	}
	if cr, dy, ok := t.fleetGauges(); ok {
		if _, err := fmt.Fprintf(w, "  completion rate %.1f%%, %.2f device-years/sec\n", cr*100, dy); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  %-28s %8s %10s %10s %10s %10s\n",
		"per-device distribution", "devices", "mean", "p50", "p95", "p99"); err != nil {
		return err
	}
	for _, d := range dists {
		if _, err := fmt.Fprintf(w, "  %-28s %8d %10.3g %10.3g %10.3g %10.3g\n",
			strings.TrimPrefix(d.Name, "fleet."), d.Snap.Count, d.Snap.Mean,
			d.Snap.Quantile(0.50), d.Snap.Quantile(0.95), d.Snap.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}
