package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestJSONLRoundTrip writes a full trace — manifest, nested spans, events,
// metrics flush, finish — and decodes it back.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.WriteManifest(Manifest{Tool: "test", Seed: 42, Config: map[string]any{"lambda": 0.5}})

	root := r.StartSpan("search", Int("population", 16))
	child := root.Child("phase1")
	child.Set(F64("e_min", 1e-4))
	child.End(F64("e_max", 2e-3))
	root.Event("cycle", Int("cycle", 1), F64("best_acc", 0.9), Bool("replaced", true))
	root.End(Int("evaluations", 10))

	g := NewRegistry()
	g.Counter("evals").Add(10)
	r.FlushMetrics(g)
	r.Finish("ok", Str("note", "done"))
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6: %+v", len(events), events)
	}
	if events[0].Kind != KindManifest || events[0].Name != "test" {
		t.Fatalf("first event is not the manifest: %+v", events[0])
	}
	if events[0].Int("seed") != 42 || events[0].Float("config.lambda") != 0.5 {
		t.Fatalf("manifest attrs wrong: %+v", events[0].Attrs)
	}
	if events[0].Str("version") == "" || events[0].Str("go") == "" || events[0].Str("start") == "" {
		t.Fatalf("manifest missing version/go/start: %+v", events[0].Attrs)
	}

	p1 := events[1]
	if p1.Kind != KindSpan || p1.Name != "phase1" || p1.Parent == 0 {
		t.Fatalf("phase1 span wrong: %+v", p1)
	}
	if p1.Float("e_min") != 1e-4 || p1.Float("e_max") != 2e-3 {
		t.Fatalf("Set/End attrs not merged: %+v", p1.Attrs)
	}
	cyc := events[2]
	if cyc.Kind != KindEvent || cyc.Int("cycle") != 1 || cyc.Attrs["replaced"] != true {
		t.Fatalf("cycle event wrong: %+v", cyc)
	}
	search := events[3]
	if search.Kind != KindSpan || search.Name != "search" || search.Parent != 0 {
		t.Fatalf("root span wrong: %+v", search)
	}
	if p1.Parent != search.Span || cyc.Parent != search.Span {
		t.Fatalf("hierarchy broken: phase1 parent %d, cycle parent %d, search id %d",
			p1.Parent, cyc.Parent, search.Span)
	}
	if search.DurMS < 0 {
		t.Fatalf("negative duration: %v", search.DurMS)
	}
	met := events[4]
	if met.Kind != KindMetrics {
		t.Fatalf("metrics event wrong: %+v", met)
	}
	if events[5].Kind != KindFinish || events[5].Str("outcome") != "ok" || events[5].Str("end") == "" {
		t.Fatalf("finish event wrong: %+v", events[5])
	}

	// Every line must be standalone JSON.
	raw := strings.TrimSpace(buf.String())
	if raw != "" {
		t.Fatalf("ReadTrace should have consumed the buffer, left %q", raw)
	}
}

// TestSubscriber checks synchronous fan-out and unsubscription — the
// mechanism the deprecated enas.Config.Verbose hook rides on.
func TestSubscriber(t *testing.T) {
	r := NewRecorder(nil) // dispatch-only sink
	var got []string
	unsub := r.Subscribe(func(e Event) { got = append(got, e.Name) })
	r.Event("a")
	sp := r.StartSpan("s")
	sp.End()
	unsub()
	r.Event("after")
	if len(got) != 2 || got[0] != "a" || got[1] != "s" {
		t.Fatalf("subscriber saw %v, want [a s]", got)
	}
}

// TestNilRecorder exercises the whole disabled surface.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	r.WriteManifest(Manifest{Tool: "x"})
	sp := r.StartSpan("s", Int("a", 1))
	if sp.Enabled() || sp.ID() != 0 {
		t.Fatal("nil span not disabled")
	}
	child := sp.Child("c")
	child.Set(F64("f", 1))
	child.Event("e")
	child.End()
	sp.End()
	r.Event("e", Str("k", "v"))
	r.FlushMetrics(NewRegistry())
	r.Finish("ok")
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	unsub := r.Subscribe(func(Event) {})
	unsub()
}

// TestEventAccessors covers the numeric coercions used after JSON decoding.
func TestEventAccessors(t *testing.T) {
	e := Event{Attrs: map[string]any{"i": float64(3), "f": int64(2), "s": "x"}}
	if e.Int("i") != 3 || e.Float("f") != 2 || e.Str("s") != "x" {
		t.Fatalf("accessors wrong: %+v", e)
	}
	if e.Int("missing") != 0 || e.Float("missing") != 0 || e.Str("missing") != "" {
		t.Fatal("missing keys should be zero")
	}
}
