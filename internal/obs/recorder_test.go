package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestJSONLRoundTrip writes a full trace — manifest, nested spans, events,
// metrics flush, finish — and decodes it back.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.WriteManifest(Manifest{Tool: "test", Seed: 42, Config: map[string]any{"lambda": 0.5}})

	root := r.StartSpan("search", Int("population", 16))
	child := root.Child("phase1")
	child.Set(F64("e_min", 1e-4))
	child.End(F64("e_max", 2e-3))
	root.Event("cycle", Int("cycle", 1), F64("best_acc", 0.9), Bool("replaced", true))
	root.End(Int("evaluations", 10))

	g := NewRegistry()
	g.Counter("evals").Add(10)
	r.FlushMetrics(g)
	r.Finish("ok", Str("note", "done"))
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6: %+v", len(events), events)
	}
	if events[0].Kind != KindManifest || events[0].Name != "test" {
		t.Fatalf("first event is not the manifest: %+v", events[0])
	}
	if events[0].Int("seed") != 42 || events[0].Float("config.lambda") != 0.5 {
		t.Fatalf("manifest attrs wrong: %+v", events[0].Attrs)
	}
	if events[0].Str("version") == "" || events[0].Str("go") == "" || events[0].Str("start") == "" {
		t.Fatalf("manifest missing version/go/start: %+v", events[0].Attrs)
	}

	p1 := events[1]
	if p1.Kind != KindSpan || p1.Name != "phase1" || p1.Parent == 0 {
		t.Fatalf("phase1 span wrong: %+v", p1)
	}
	if p1.Float("e_min") != 1e-4 || p1.Float("e_max") != 2e-3 {
		t.Fatalf("Set/End attrs not merged: %+v", p1.Attrs)
	}
	cyc := events[2]
	if cyc.Kind != KindEvent || cyc.Int("cycle") != 1 || cyc.Attrs["replaced"] != true {
		t.Fatalf("cycle event wrong: %+v", cyc)
	}
	search := events[3]
	if search.Kind != KindSpan || search.Name != "search" || search.Parent != 0 {
		t.Fatalf("root span wrong: %+v", search)
	}
	if p1.Parent != search.Span || cyc.Parent != search.Span {
		t.Fatalf("hierarchy broken: phase1 parent %d, cycle parent %d, search id %d",
			p1.Parent, cyc.Parent, search.Span)
	}
	if search.DurMS < 0 {
		t.Fatalf("negative duration: %v", search.DurMS)
	}
	met := events[4]
	if met.Kind != KindMetrics {
		t.Fatalf("metrics event wrong: %+v", met)
	}
	if events[5].Kind != KindFinish || events[5].Str("outcome") != "ok" || events[5].Str("end") == "" {
		t.Fatalf("finish event wrong: %+v", events[5])
	}

	// Every line must be standalone JSON.
	raw := strings.TrimSpace(buf.String())
	if raw != "" {
		t.Fatalf("ReadTrace should have consumed the buffer, left %q", raw)
	}
}

// TestSubscriber checks synchronous fan-out and unsubscription — the
// mechanism the deprecated enas.Config.Verbose hook rides on.
func TestSubscriber(t *testing.T) {
	r := NewRecorder(nil) // dispatch-only sink
	var got []string
	unsub := r.Subscribe(func(e Event) { got = append(got, e.Name) })
	r.Event("a")
	sp := r.StartSpan("s")
	sp.End()
	unsub()
	r.Event("after")
	if len(got) != 2 || got[0] != "a" || got[1] != "s" {
		t.Fatalf("subscriber saw %v, want [a s]", got)
	}
}

// TestNilRecorder exercises the whole disabled surface.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	r.WriteManifest(Manifest{Tool: "x"})
	sp := r.StartSpan("s", Int("a", 1))
	if sp.Enabled() || sp.ID() != 0 {
		t.Fatal("nil span not disabled")
	}
	child := sp.Child("c")
	child.Set(F64("f", 1))
	child.Event("e")
	child.End()
	sp.End()
	r.Event("e", Str("k", "v"))
	r.FlushMetrics(NewRegistry())
	r.Finish("ok")
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	unsub := r.Subscribe(func(Event) {})
	unsub()
}

// TestScanTraceCorruptLines pins the skip behaviour obs-report relies on:
// garbage and truncated lines are dropped (and counted) without losing the
// well-formed events around them.
func TestScanTraceCorruptLines(t *testing.T) {
	trace := `{"t":0,"kind":"manifest","name":"test"}
this line is not JSON at all
{"t":0.1,"kind":"span","name":"a","span":1,"dur_ms":5}

{"t":0.2,"kind":"span","name":"b","span":2,"dur_ms":`
	events, skipped, err := ScanTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2 (garbage + truncated final line)", skipped)
	}
	if len(events) != 2 || events[0].Kind != KindManifest || events[1].Name != "a" {
		t.Fatalf("events = %+v, want manifest + span a", events)
	}
	// ReadTrace is the same read, discarding the count.
	events, err = ReadTrace(strings.NewReader(trace))
	if err != nil || len(events) != 2 {
		t.Fatalf("ReadTrace = %d events, %v; want 2, nil", len(events), err)
	}
}

// TestScanTracePartialFinalLine simulates a killed process: a well-formed
// trace whose last line was cut mid-write at every possible byte offset.
// The intact prefix must always come back, the stub never.
func TestScanTracePartialFinalLine(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	sp := r.StartSpan("work", Int("n", 3))
	sp.End()
	r.Event("tick", F64("v", 1.5))
	r.Flush()
	full := buf.String()
	lines := strings.SplitAfter(strings.TrimSuffix(full, "\n"), "\n")
	last := lines[len(lines)-1]
	prefix := full[:len(full)-len(last)-1] // intact lines incl. trailing \n
	for cut := 1; cut < len(last); cut++ {
		events, skipped, err := ScanTrace(strings.NewReader(prefix + last[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(events) != len(lines)-1 {
			t.Fatalf("cut %d: %d events, want %d", cut, len(events), len(lines)-1)
		}
		if skipped != 1 {
			t.Fatalf("cut %d: skipped = %d, want 1", cut, skipped)
		}
	}
}

// TestScanTraceUnknownKind checks forward compatibility: events with kinds
// this version does not know are passed through, not dropped.
func TestScanTraceUnknownKind(t *testing.T) {
	trace := `{"t":0,"kind":"manifest","name":"m"}
{"t":1,"kind":"hologram","name":"future","attrs":{"x":1}}
{"t":2,"kind":"finish","name":"finish"}
`
	events, skipped, err := ScanTrace(strings.NewReader(trace))
	if err != nil || skipped != 0 {
		t.Fatalf("err %v skipped %d, want nil/0", err, skipped)
	}
	if len(events) != 3 || events[1].Kind != "hologram" || events[1].Int("x") != 1 {
		t.Fatalf("unknown-kind event not preserved: %+v", events)
	}
}

// TestScanTraceEmpty: an empty reader is an empty trace, not an error.
func TestScanTraceEmpty(t *testing.T) {
	events, skipped, err := ScanTrace(strings.NewReader(""))
	if err != nil || skipped != 0 || len(events) != 0 {
		t.Fatalf("empty trace: events %v skipped %d err %v", events, skipped, err)
	}
}

// TestEventAccessors covers the numeric coercions used after JSON decoding.
func TestEventAccessors(t *testing.T) {
	e := Event{Attrs: map[string]any{"i": float64(3), "f": int64(2), "s": "x"}}
	if e.Int("i") != 3 || e.Float("f") != 2 || e.Str("s") != "x" {
		t.Fatalf("accessors wrong: %+v", e)
	}
	if e.Int("missing") != 0 || e.Float("missing") != 0 || e.Str("missing") != "" {
		t.Fatal("missing keys should be zero")
	}
}
