//go:build !race

package obs

import "testing"

// TestNoopZeroAlloc pins the core contract: disabled telemetry allocates
// nothing on the span/event/metric hot paths, so instrumented search loops
// cost nothing when tracing is off. (Excluded under -race, whose
// instrumentation changes allocation behaviour.)
func TestNoopZeroAlloc(t *testing.T) {
	var r *Recorder
	var g *Registry
	c := g.Counter("evals")
	h := g.Histogram("lat", TimeBuckets)

	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.StartSpan("search", Int("population", 50), F64("lambda", 0.5))
		child := sp.Child("cycle", Int("cycle", 1))
		child.Set(F64("best_acc", 0.9))
		child.Event("eval", Int64("fingerprint", 123))
		child.End(Bool("replaced", true))
		sp.End()
		r.Event("cycle", Int("cycle", 1), F64("acc", 0.9))
		c.Inc()
		h.Observe(1e-3)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %.1f times per op, want 0", allocs)
	}
}

// BenchmarkNoopSpan reports the cost of a fully disabled span + event.
func BenchmarkNoopSpan(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("cycle", Int("cycle", i))
		sp.Event("eval", F64("acc", 0.9))
		sp.End(Bool("replaced", true))
	}
}
