// Package obs is the zero-dependency observability layer of the SolarML
// stack: a concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) with JSON snapshots, lightweight hierarchical spans with
// wall-clock timing and key/value attributes, and a JSONL event sink
// (Recorder) that persists one event per span end, metric flush, or explicit
// emit, headed by a run manifest.
//
// Every entry point is nil-safe: a nil *Recorder, nil *Registry, or a Span
// obtained from either is a no-op, so instrumented code carries no
// conditionals and — critically for the eNAS search hot path — the disabled
// path performs no allocations. Telemetry never consumes random state, so a
// seeded search returns the identical result with recording on or off.
package obs

import (
	"runtime"
	"runtime/debug"
)

// attrKind discriminates the Attr union.
type attrKind uint8

const (
	kindNone attrKind = iota
	kindInt
	kindFloat
	kindStr
	kindBool
)

// Attr is a typed key/value attribute. The value lives in union fields
// rather than an interface so that building attributes never boxes (and
// therefore never allocates) on the disabled path.
type Attr struct {
	Key  string
	kind attrKind
	i    int64
	f    float64
	s    string
}

// Int returns an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, kind: kindInt, i: int64(v)} }

// Int64 returns a 64-bit integer attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, i: v} }

// F64 returns a float attribute.
func F64(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, f: v} }

// Str returns a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: kindStr, s: v} }

// Bool returns a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: kindBool}
	if v {
		a.i = 1
	}
	return a
}

// Value boxes the attribute value for encoding. Only the enabled path calls
// it.
func (a Attr) Value() any {
	switch a.kind {
	case kindInt:
		return a.i
	case kindFloat:
		return a.f
	case kindStr:
		return a.s
	case kindBool:
		return a.i != 0
	}
	return nil
}

// Event kinds written to the JSONL stream.
const (
	// KindManifest heads a trace with the run's identity and configuration.
	KindManifest = "manifest"
	// KindSpan is emitted once per span end, with its duration.
	KindSpan = "span"
	// KindEvent is a point-in-time emission (Recorder.Event).
	KindEvent = "event"
	// KindMetrics carries a registry snapshot (Recorder.FlushMetrics).
	KindMetrics = "metrics"
	// KindFinish closes a trace with the run outcome and total duration.
	KindFinish = "finish"
)

// Event is one JSONL record. T is seconds since the recorder started.
type Event struct {
	T      float64        `json:"t"`
	Kind   string         `json:"kind"`
	Name   string         `json:"name,omitempty"`
	Span   uint64         `json:"span,omitempty"`
	Parent uint64         `json:"parent,omitempty"`
	DurMS  float64        `json:"dur_ms,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Int returns an integer attribute of the event, tolerating the float64
// numbers a JSON round-trip produces. Missing keys return 0.
func (e Event) Int(key string) int64 {
	switch v := e.Attrs[key].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	case float64:
		return int64(v)
	}
	return 0
}

// Float returns a float attribute of the event (0 when missing).
func (e Event) Float(key string) float64 {
	switch v := e.Attrs[key].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	}
	return 0
}

// Str returns a string attribute of the event ("" when missing).
func (e Event) Str(key string) string {
	if v, ok := e.Attrs[key].(string); ok {
		return v
	}
	return ""
}

// Version returns a git-describe-style identifier for the running binary:
// the embedded VCS revision (plus "-dirty" when the tree was modified),
// falling back to the module version or "dev". Used by run manifests so
// traces are diffable across PRs.
func Version() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified == "true" {
			rev += "-dirty"
		}
		return rev
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "dev"
}

// GoVersion reports the toolchain that built the binary.
func GoVersion() string { return runtime.Version() }
