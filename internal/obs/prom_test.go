package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheus pins the exposition format: sanitized names, sorted
// families, cumulative le buckets derived from the registry's per-interval
// counts, and _sum/_count.
func TestWritePrometheus(t *testing.T) {
	g := NewRegistry()
	g.Counter("enas.evaluations").Add(7)
	g.Counter("compute.pool_hits").Add(3)
	g.Gauge("runtime.goroutines").Set(12)
	h := g.Histogram("enas.eval_seconds", []float64{0.1, 1})
	h.Observe(0.05) // ≤0.1 bucket
	h.Observe(0.5)  // ≤1 bucket
	h.Observe(5)    // overflow

	var b strings.Builder
	if err := WritePrometheus(&b, g.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE compute_pool_hits counter\ncompute_pool_hits 3\n",
		"# TYPE enas_evaluations counter\nenas_evaluations 7\n",
		"# TYPE runtime_goroutines gauge\nruntime_goroutines 12\n",
		"# TYPE enas_eval_seconds histogram\n",
		`enas_eval_seconds_bucket{le="0.1"} 1`,
		`enas_eval_seconds_bucket{le="1"} 2`,
		`enas_eval_seconds_bucket{le="+Inf"} 3`,
		"enas_eval_seconds_sum 5.55",
		"enas_eval_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Counters come sorted: compute before enas.
	if strings.Index(out, "compute_pool_hits") > strings.Index(out, "enas_evaluations") {
		t.Error("counter families not sorted")
	}
}

// TestPrometheusHandler checks the /metrics handler contract, including the
// nil-registry case serving empty-but-valid exposition.
func TestPrometheusHandler(t *testing.T) {
	g := NewRegistry()
	g.Counter("c").Inc()
	rr := httptest.NewRecorder()
	g.PrometheusHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "c 1\n") {
		t.Fatalf("body = %q", rr.Body.String())
	}

	var nilReg *Registry
	rr = httptest.NewRecorder()
	nilReg.PrometheusHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 || rr.Body.Len() != 0 {
		t.Fatalf("nil registry: code %d body %q", rr.Code, rr.Body.String())
	}
}

// TestPromName pins the name sanitizer.
func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"enas.eval_seconds": "enas_eval_seconds",
		"9lives":            "_lives",
		"a-b c":             "a_b_c",
		"ok_name:x9":        "ok_name:x9",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
