package obs

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheus pins the exposition format: sanitized names, sorted
// families, cumulative le buckets derived from the registry's per-interval
// counts, and _sum/_count.
func TestWritePrometheus(t *testing.T) {
	g := NewRegistry()
	g.Counter("enas.evaluations").Add(7)
	g.Counter("compute.pool_hits").Add(3)
	g.Gauge("runtime.goroutines").Set(12)
	h := g.Histogram("enas.eval_seconds", []float64{0.1, 1})
	h.Observe(0.05) // ≤0.1 bucket
	h.Observe(0.5)  // ≤1 bucket
	h.Observe(5)    // overflow

	var b strings.Builder
	if err := WritePrometheus(&b, g.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE compute_pool_hits counter\ncompute_pool_hits 3\n",
		"# TYPE enas_evaluations counter\nenas_evaluations 7\n",
		"# TYPE runtime_goroutines gauge\nruntime_goroutines 12\n",
		"# TYPE enas_eval_seconds histogram\n",
		`enas_eval_seconds_bucket{le="0.1"} 1`,
		`enas_eval_seconds_bucket{le="1"} 2`,
		`enas_eval_seconds_bucket{le="+Inf"} 3`,
		"enas_eval_seconds_sum 5.55",
		"enas_eval_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Counters come sorted: compute before enas.
	if strings.Index(out, "compute_pool_hits") > strings.Index(out, "enas_evaluations") {
		t.Error("counter families not sorted")
	}
}

// TestPrometheusHandler checks the /metrics handler contract, including the
// nil-registry case serving empty-but-valid exposition.
func TestPrometheusHandler(t *testing.T) {
	g := NewRegistry()
	g.Counter("c").Inc()
	rr := httptest.NewRecorder()
	g.PrometheusHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "c 1\n") {
		t.Fatalf("body = %q", rr.Body.String())
	}

	var nilReg *Registry
	rr = httptest.NewRecorder()
	nilReg.PrometheusHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 || rr.Body.Len() != 0 {
		t.Fatalf("nil registry: code %d body %q", rr.Code, rr.Body.String())
	}
}

// TestPromName pins the name sanitizer, including the joule ledger's
// metric names (the hyphen in "mcu-sleep" must become an underscore).
func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"enas.eval_seconds":     "enas_eval_seconds",
		"9lives":                "_lives",
		"a-b c":                 "a_b_c",
		"ok_name:x9":            "ok_name:x9",
		"energy.mcu-sleep_uj":   "energy_mcu_sleep_uj",
		"energy.supercap_v":     "energy_supercap_v",
		"energy.interaction_uj": "energy_interaction_uj",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPrometheusHistogramBoundaries pins the bucket contract end to end
// using the joule ledger's interaction bounds: an observation exactly on a
// bound lands in that bucket (≤ semantics), le labels render bound values
// exactly as promFloat does (including the exponent form large bounds take),
// and the cumulative series closes with +Inf at the total count.
func TestPrometheusHistogramBoundaries(t *testing.T) {
	bounds := []float64{10, 50, 100, 500, 1e3, 5e3, 1e4, 5e4, 1e5, 1e6}
	g := NewRegistry()
	h := g.Histogram("energy.interaction_uj", bounds)
	h.Observe(10)   // exactly on the first bound → le="10"
	h.Observe(10.1) // just over → le="50"
	h.Observe(1e6)  // exactly on the last bound → le="1e+06"
	h.Observe(2e6)  // overflow → counted only by +Inf

	var b strings.Builder
	if err := WritePrometheus(&b, g.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`energy_interaction_uj_bucket{le="10"} 1`,
		`energy_interaction_uj_bucket{le="50"} 2`,
		`energy_interaction_uj_bucket{le="100"} 2`,
		`energy_interaction_uj_bucket{le="1e+06"} 3`,
		`energy_interaction_uj_bucket{le="+Inf"} 4`,
		"energy_interaction_uj_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every finite bound plus +Inf appears exactly once.
	if n := strings.Count(out, "_bucket{le="); n != len(bounds)+1 {
		t.Errorf("bucket lines = %d, want %d:\n%s", n, len(bounds)+1, out)
	}
	// Cumulative counts never decrease down the bucket list.
	last := -1
	for _, line := range strings.Split(out, "\n") {
		var le string
		var c int
		if _, err := fmt.Sscanf(line, "energy_interaction_uj_bucket{le=%q} %d", &le, &c); err != nil {
			continue
		}
		if c < last {
			t.Errorf("cumulative count decreased at le=%s: %d < %d", le, c, last)
		}
		last = c
	}
}

// TestPrometheusGaugeSpecials pins promFloat's non-finite rendering on the
// gauge path (a drained supercap model can legitimately publish ±Inf).
func TestPrometheusGaugeSpecials(t *testing.T) {
	g := NewRegistry()
	g.Gauge("weird.pos").Set(math.Inf(1))
	g.Gauge("weird.neg").Set(math.Inf(-1))
	var b strings.Builder
	if err := WritePrometheus(&b, g.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"weird_pos +Inf\n", "weird_neg -Inf\n"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}
