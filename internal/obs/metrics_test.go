package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines; run
// with -race this doubles as the data-race check for the instruments and
// the snapshot path.
func TestRegistryConcurrency(t *testing.T) {
	g := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := g.Counter("evals")
			ga := g.Gauge("util")
			h := g.Histogram("lat", TimeBuckets)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				ga.Set(float64(i))
				h.Observe(float64(i%10) * 1e-4)
				if i%100 == 0 {
					_ = g.Snapshot() // concurrent reads
				}
			}
		}(w)
	}
	wg.Wait()
	if got := g.Counter("evals").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	s := g.Snapshot()
	if s.Histograms["lat"].Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Histograms["lat"].Count, workers*perWorker)
	}
}

// TestHistogramBucketEdges pins the "value ≤ bound" bucket semantics at the
// exact edges.
func TestHistogramBucketEdges(t *testing.T) {
	g := NewRegistry()
	h := g.Histogram("h", []float64{1, 2, 5})
	for _, v := range []float64{0, 1, 1.0000001, 2, 2.5, 5, 5.0001, 100} {
		h.Observe(v)
	}
	s := g.Snapshot().Histograms["h"]
	// buckets: ≤1, ≤2, ≤5, overflow
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Errorf("min/max = %v/%v, want 0/100", s.Min, s.Max)
	}
	if math.Abs(s.Mean-s.Sum/8) > 1e-12 {
		t.Errorf("mean = %v, want %v", s.Mean, s.Sum/8)
	}
}

// TestHistogramObserveExactBounds pins Observe at exactly each bucket
// boundary: a value equal to a bound lands in that bound's bucket (≤
// semantics), never the next one — the invariant the Prometheus exposition
// and obs-report's latency rollups both rely on.
func TestHistogramObserveExactBounds(t *testing.T) {
	bounds := []float64{0, 0.5, 1, 2}
	g := NewRegistry()
	h := g.Histogram("edge", bounds)
	for _, b := range bounds {
		h.Observe(b)
		h.Observe(b)
	}
	h.Observe(-1)           // below the lowest bound → first bucket
	h.Observe(math.Inf(1))  // above the highest → overflow bucket
	s := g.Snapshot().Histograms["edge"]
	want := []uint64{3, 2, 2, 2, 1} // per-bucket (non-cumulative) counts
	if len(s.Counts) != len(want) {
		t.Fatalf("counts len = %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 10 {
		t.Errorf("count = %d, want 10", s.Count)
	}
	if s.Min != -1 || !math.IsInf(s.Max, 1) {
		t.Errorf("min/max = %v/%v, want -1/+Inf", s.Min, s.Max)
	}
}

// TestHistogramUnsortedBounds checks that bounds are sorted on creation.
func TestHistogramUnsortedBounds(t *testing.T) {
	g := NewRegistry()
	h := g.Histogram("h", []float64{5, 1, 2})
	h.Observe(1.5)
	s := g.Snapshot().Histograms["h"]
	if s.Bounds[0] != 1 || s.Bounds[2] != 5 {
		t.Fatalf("bounds not sorted: %v", s.Bounds)
	}
	if s.Counts[1] != 1 {
		t.Fatalf("1.5 should land in the ≤2 bucket: %v", s.Counts)
	}
}

// TestNilRegistry checks the whole nil no-op surface.
func TestNilRegistry(t *testing.T) {
	var g *Registry
	g.Counter("c").Inc()
	g.Gauge("g").Set(3)
	g.Histogram("h", TimeBuckets).Observe(1)
	if v := g.Counter("c").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	if s := g.Snapshot(); s.Counters != nil || s.Histograms != nil {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
}

// TestSnapshotJSON round-trips a snapshot through WriteJSON.
func TestSnapshotJSON(t *testing.T) {
	g := NewRegistry()
	g.Counter("a").Add(3)
	g.Gauge("b").Set(0.5)
	g.Histogram("c", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["a"] != 3 || s.Gauges["b"] != 0.5 || s.Histograms["c"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", s)
	}
}

// TestOnSnapshotHook pins the sum-on-read contract: a hook registered with
// OnSnapshot runs before the instruments are copied, so state it publishes
// is visible in the same Snapshot call.
func TestOnSnapshotHook(t *testing.T) {
	g := NewRegistry()
	var pending int64 = 41
	g.OnSnapshot(func() {
		g.Counter("hooked").Add(pending)
		pending = 0
	})
	if got := g.Snapshot().Counters["hooked"]; got != 41 {
		t.Fatalf("hook not applied before read: got %d, want 41", got)
	}
	// Idempotent on re-read: the hook published a delta once.
	if got := g.Snapshot().Counters["hooked"]; got != 41 {
		t.Fatalf("second snapshot drifted: got %d, want 41", got)
	}
	var nilReg *Registry
	nilReg.OnSnapshot(func() { t.Fatal("hook on nil registry must not run") })
	nilReg.Snapshot()
}

// TestHistogramMerge checks bulk merge equals direct observation and that
// bound-mismatched snapshots are rejected rather than corrupting buckets.
func TestHistogramMerge(t *testing.T) {
	bounds := []float64{1, 10, 100}
	g := NewRegistry()
	direct := g.Histogram("direct", bounds)
	merged := g.Histogram("merged", bounds)
	values := []float64{0.5, 3, 3, 42, 250}
	for _, v := range values {
		direct.Observe(v)
	}
	other := NewRegistry()
	src := other.Histogram("src", bounds)
	for _, v := range values {
		src.Observe(v)
	}
	merged.Merge(other.Snapshot().Histograms["src"])
	s := g.Snapshot()
	d, m := s.Histograms["direct"], s.Histograms["merged"]
	if d.Count != m.Count || d.Sum != m.Sum || d.Min != m.Min || d.Max != m.Max {
		t.Fatalf("merge drifted from direct observation:\ndirect %+v\nmerged %+v", d, m)
	}
	for i := range d.Counts {
		if d.Counts[i] != m.Counts[i] {
			t.Fatalf("bucket %d: direct %d, merged %d", i, d.Counts[i], m.Counts[i])
		}
	}
	// Mismatched bounds must be dropped whole.
	bad := other.Histogram("bad", []float64{2, 20})
	bad.Observe(5)
	merged.Merge(other.Snapshot().Histograms["bad"])
	if got := g.Snapshot().Histograms["merged"]; got.Count != m.Count {
		t.Fatalf("bound-mismatched merge was applied: %+v", got)
	}
	var nilHist *Histogram
	nilHist.Merge(d) // must not panic
}

// TestHistogramSnapshotQuantile checks the interpolated quantiles against a
// hand-computed distribution.
func TestHistogramSnapshotQuantile(t *testing.T) {
	g := NewRegistry()
	h := g.Histogram("q", []float64{10, 20, 30})
	// 10 values in (0,10], 80 in (10,20], 10 in (20,30].
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	for i := 0; i < 80; i++ {
		h.Observe(15)
	}
	for i := 0; i < 10; i++ {
		h.Observe(25)
	}
	s := g.Snapshot().Histograms["q"]
	if q := s.Quantile(0.5); q < 10 || q > 20 {
		t.Fatalf("p50 = %v, want inside (10, 20]", q)
	}
	if q := s.Quantile(0.99); q < 20 || q > 30 {
		t.Fatalf("p99 = %v, want inside (20, 30]", q)
	}
	if q := s.Quantile(0); q != s.Min {
		t.Fatalf("p0 = %v, want min %v", q, s.Min)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Fatalf("p100 = %v, want max %v", q, s.Max)
	}
	if !math.IsNaN((HistogramSnapshot{}).Quantile(0.5)) {
		t.Fatal("empty snapshot quantile must be NaN")
	}
	if !math.IsNaN(s.Quantile(1.5)) {
		t.Fatal("out-of-range p must be NaN")
	}
	// Overflow-bucket quantile stays clamped to the observed max.
	h.Observe(1e6)
	s = g.Snapshot().Histograms["q"]
	if q := s.Quantile(0.999); q > s.Max {
		t.Fatalf("overflow quantile %v exceeds max %v", q, s.Max)
	}
}
