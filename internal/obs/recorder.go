package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is a JSONL event sink. Every span end, metric flush, and
// explicit Event call becomes one line of JSON; a run manifest heads the
// stream and a finish event closes it. Subscribers observe every event
// synchronously in emission order, which is how deprecated callback hooks
// (enas.Config.Verbose) are layered on top of the event stream.
//
// A nil *Recorder is a valid disabled sink: every method returns
// immediately and allocates nothing. A Recorder over a nil writer is a
// dispatch-only sink — events reach subscribers but are not serialized.
type Recorder struct {
	mu       sync.Mutex
	buf      *bufio.Writer
	enc      *json.Encoder
	line     []byte
	start    time.Time
	err      error
	nextSpan atomic.Uint64

	subMu sync.RWMutex
	subs  map[int]func(Event)
	nsub  int
}

// NewRecorder returns a recorder writing JSONL to w (nil for a
// dispatch-only sink that only feeds subscribers).
func NewRecorder(w io.Writer) *Recorder {
	r := &Recorder{start: time.Now(), subs: make(map[int]func(Event))}
	if w != nil {
		r.buf = bufio.NewWriter(w)
		r.enc = json.NewEncoder(r.buf)
	}
	return r
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Err returns the first write error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Subscribe registers fn to receive every subsequent event and returns a
// function removing the subscription. Subscribers run synchronously on the
// emitting goroutine; parallel instrumented code therefore may invoke them
// concurrently.
func (r *Recorder) Subscribe(fn func(Event)) (unsubscribe func()) {
	if r == nil {
		return func() {}
	}
	r.subMu.Lock()
	id := r.nsub
	r.nsub++
	r.subs[id] = fn
	r.subMu.Unlock()
	return func() {
		r.subMu.Lock()
		delete(r.subs, id)
		r.subMu.Unlock()
	}
}

// sinceStart returns the event timestamp in seconds.
func (r *Recorder) sinceStart() float64 { return time.Since(r.start).Seconds() }

// dispatch serializes the event (when a writer is attached) and fans it out
// to subscribers. It is the slow path for map-attributed events (manifest,
// metrics snapshot, finish) which occur a handful of times per run; the
// per-cycle/per-evaluation traffic goes through emit instead.
func (r *Recorder) dispatch(e Event) {
	if r.enc != nil {
		r.mu.Lock()
		if err := r.enc.Encode(e); err != nil && r.err == nil {
			r.err = err
		}
		r.mu.Unlock()
	}
	r.subMu.RLock()
	for _, fn := range r.subs {
		fn(e)
	}
	r.subMu.RUnlock()
}

// emit is the hot-path serializer: the JSON line is appended by hand from
// the typed attributes into a reused buffer — no attribute map, no boxing,
// no encoding reflection — keeping the recording overhead of a search
// within its <2% budget. An Event value (with its map) is materialized only
// when subscribers are registered.
func (r *Recorder) emit(kind, name string, span, parent uint64, durMS float64, attrs []Attr) {
	t := r.sinceStart()
	if r.buf != nil {
		r.mu.Lock()
		r.line = appendEvent(r.line[:0], t, kind, name, span, parent, durMS, attrs)
		if _, err := r.buf.Write(r.line); err != nil && r.err == nil {
			r.err = err
		}
		r.mu.Unlock()
	}
	r.subMu.RLock()
	if len(r.subs) > 0 {
		e := Event{T: t, Kind: kind, Name: name, Span: span, Parent: parent, DurMS: durMS, Attrs: attrMap(attrs)}
		for _, fn := range r.subs {
			fn(e)
		}
	}
	r.subMu.RUnlock()
}

// appendEvent renders one JSONL record, byte-compatible with the Event
// struct's encoding (same keys, same omit-when-zero behaviour).
func appendEvent(b []byte, t float64, kind, name string, span, parent uint64, durMS float64, attrs []Attr) []byte {
	b = append(b, `{"t":`...)
	b = appendJSONFloat(b, t)
	b = append(b, `,"kind":"`...)
	b = append(b, kind...) // kind constants are plain identifiers
	b = append(b, '"')
	if name != "" {
		b = append(b, `,"name":`...)
		b = appendJSONString(b, name)
	}
	if span != 0 {
		b = append(b, `,"span":`...)
		b = strconv.AppendUint(b, span, 10)
	}
	if parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, parent, 10)
	}
	if durMS != 0 {
		b = append(b, `,"dur_ms":`...)
		b = appendJSONFloat(b, durMS)
	}
	if len(attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, a := range attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, a.Key)
			b = append(b, ':')
			switch a.kind {
			case kindInt:
				b = strconv.AppendInt(b, a.i, 10)
			case kindFloat:
				b = appendJSONFloat(b, a.f)
			case kindStr:
				b = appendJSONString(b, a.s)
			case kindBool:
				b = strconv.AppendBool(b, a.i != 0)
			default:
				b = append(b, "null"...)
			}
		}
		b = append(b, '}')
	}
	return append(b, '}', '\n')
}

// appendJSONFloat renders f as a JSON number; non-finite values (which JSON
// cannot represent) become null rather than corrupting the line.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

const hexDigits = "0123456789abcdef"

// appendJSONString renders s as a quoted JSON string, escaping quotes,
// backslashes, and control bytes; multi-byte UTF-8 passes through verbatim.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// attrMap boxes attributes into an event attribute map.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// Event emits a point-in-time event.
func (r *Recorder) Event(name string, attrs ...Attr) {
	if r == nil {
		return
	}
	r.emit(KindEvent, name, 0, 0, 0, attrs)
}

// Manifest identifies a run: what produced the trace, from which source
// version, under which seed and configuration.
type Manifest struct {
	// Tool names the producing command or experiment.
	Tool string
	// Seed is the run's random seed.
	Seed int64
	// Config carries the remaining run parameters.
	Config map[string]any
}

// WriteManifest heads the trace with the run manifest: tool, version,
// go toolchain, seed, wall-clock start, and configuration.
func (r *Recorder) WriteManifest(m Manifest) {
	if r == nil {
		return
	}
	attrs := map[string]any{
		"version": Version(),
		"go":      GoVersion(),
		"seed":    m.Seed,
		"start":   r.start.UTC().Format(time.RFC3339Nano),
	}
	for k, v := range m.Config {
		attrs["config."+k] = v
	}
	r.dispatch(Event{T: r.sinceStart(), Kind: KindManifest, Name: m.Tool, Attrs: attrs})
}

// FlushMetrics emits a snapshot of the registry as one metrics event.
func (r *Recorder) FlushMetrics(g *Registry) {
	if r == nil || g == nil {
		return
	}
	s := g.Snapshot()
	attrs := make(map[string]any, 3)
	if s.Counters != nil {
		attrs["counters"] = s.Counters
	}
	if s.Gauges != nil {
		attrs["gauges"] = s.Gauges
	}
	if s.Histograms != nil {
		attrs["histograms"] = s.Histograms
	}
	r.dispatch(Event{T: r.sinceStart(), Kind: KindMetrics, Name: "metrics", Attrs: attrs})
}

// Finish closes the trace with the run outcome ("ok", an error string, …)
// and total wall-clock duration, then flushes buffered output.
func (r *Recorder) Finish(outcome string, attrs ...Attr) {
	if r == nil {
		return
	}
	m := attrMap(attrs)
	if m == nil {
		m = make(map[string]any, 2)
	}
	m["outcome"] = outcome
	m["end"] = time.Now().UTC().Format(time.RFC3339Nano)
	r.dispatch(Event{T: r.sinceStart(), Kind: KindFinish, Name: "finish", DurMS: r.sinceStart() * 1e3, Attrs: m})
	r.Flush()
}

// Flush forces buffered JSONL output to the underlying writer.
func (r *Recorder) Flush() error {
	if r == nil || r.buf == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.buf.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// ReadTrace decodes a JSONL trace produced by a Recorder. It is tolerant
// by design — see ScanTrace, which it wraps discarding the skip count —
// because the primary consumer (obs-report) must make sense of traces left
// behind by crashed or killed runs.
func ReadTrace(rd io.Reader) ([]Event, error) {
	events, _, err := ScanTrace(rd)
	return events, err
}

// maxTraceLine bounds one JSONL line (a metrics snapshot with many
// histograms is the largest realistic event).
const maxTraceLine = 16 << 20

// ScanTrace decodes a JSONL trace line by line, skipping lines that are not
// valid JSON objects instead of failing the whole read. The contract the
// report layer relies on:
//
//   - Each line is decoded independently; blank lines are ignored.
//   - A line that fails to decode — non-JSON garbage, or the partial final
//     line of a killed process — is skipped and counted in skipped. Every
//     well-formed line before and after it is still returned.
//   - Events with unknown kind values are returned as-is (forward
//     compatibility: consumers filter on the kinds they understand).
//   - err reports only I/O failures (and a line exceeding the 16 MiB
//     bound), never malformed content.
func ScanTrace(rd io.Reader) (events []Event, skipped int, err error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 64<<10), maxTraceLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if json.Unmarshal(line, &e) != nil {
			skipped++
			continue
		}
		events = append(events, e)
	}
	return events, skipped, sc.Err()
}
