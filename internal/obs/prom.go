package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// promName sanitizes a registry metric name into the Prometheus charset
// ([a-zA-Z_:][a-zA-Z0-9_:]*): dots and any other illegal byte become
// underscores ("enas.eval_seconds" → "enas_eval_seconds").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			c = '_'
		}
		b.WriteByte(c)
	}
	return b.String()
}

// promFloat renders a float as a Prometheus sample value.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-labelled bucket series with _sum and _count.
// Families are sorted by name so the output is deterministic.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		// Registry buckets are per-interval; Prometheus wants cumulative.
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, promFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusHandler serves the registry in the Prometheus text format,
// suitable for mounting as /metrics next to /debug/pprof: long searches
// become scrapeable live instead of only leaving a post-mortem snapshot.
// A nil registry serves empty (valid) exposition.
func (g *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, g.Snapshot())
	})
}
