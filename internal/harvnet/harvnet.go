// Package harvnet implements the HarvNet baseline [5] objective as described
// in the paper's §IV-B: accuracy and energy are combined into the single
// ratio max A/E, which needs no weight tuning but cannot steer along the
// Pareto frontier. Like μNAS it searches the architecture only and uses the
// total-MACs energy model; it is included for the ablation comparisons.
package harvnet

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/nas"
)

// Config holds the HarvNet settings, matched to the eNAS run.
type Config struct {
	Population  int
	SampleSize  int
	Cycles      int
	Seed        int64
	Constraints nas.Constraints
}

// DefaultConfig returns settings matched to the paper's evaluation.
func DefaultConfig(task nas.Task) Config {
	return Config{
		Population:  50,
		SampleSize:  20,
		Cycles:      150,
		Constraints: nas.DefaultConstraints(task),
	}
}

// Entry pairs a candidate with its evaluation.
type Entry struct {
	Cand *nas.Candidate
	Res  nas.Result
}

// Outcome is the result of one HarvNet run.
type Outcome struct {
	// Best maximizes A/E among feasible candidates.
	Best Entry
	// History holds every evaluated candidate.
	History     []Entry
	Evaluations int
}

// ratio is the HarvNet objective.
func ratio(e Entry) float64 {
	if e.Res.EnergyJ <= 0 {
		return 0
	}
	return e.Res.Accuracy / e.Res.EnergyJ
}

// Search runs the HarvNet-style evolution from a fixed sensing
// configuration.
func Search(space *nas.Space, sensing *nas.Candidate, eval nas.Evaluator, cfg Config) (*Outcome, error) {
	if cfg.Population < 2 || cfg.SampleSize < 1 || cfg.SampleSize > cfg.Population {
		return nil, fmt.Errorf("harvnet: invalid population/sample (%d/%d)", cfg.Population, cfg.SampleSize)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &Outcome{}

	randomArch := func() *nas.Candidate {
		c := space.RandomCandidate(rng)
		fixed := sensing.Clone()
		fixed.Arch = c.Arch
		if fixed.Rebind() != nil {
			return nil
		}
		return fixed
	}
	evaluate := func(c *nas.Candidate) (Entry, bool) {
		if c == nil {
			return Entry{}, false
		}
		if err := cfg.Constraints.CheckStatic(c); err != nil {
			return Entry{}, false
		}
		res, err := eval.Evaluate(c)
		if err != nil {
			return Entry{}, false
		}
		out.Evaluations++
		e := Entry{Cand: c, Res: res}
		out.History = append(out.History, e)
		return e, true
	}
	score := func(e Entry) float64 {
		if cfg.Constraints.CheckAccuracy(e.Res.Accuracy) != nil {
			return math.Inf(-1) // infeasible candidates never win tournaments
		}
		return ratio(e)
	}

	population := make([]Entry, 0, cfg.Population)
	for tries := 0; len(population) < cfg.Population; tries++ {
		if tries > cfg.Population*200 {
			return nil, fmt.Errorf("harvnet: cannot fill population under constraints")
		}
		if e, ok := evaluate(randomArch()); ok {
			population = append(population, e)
		}
	}
	for cycle := 1; cycle <= cfg.Cycles; cycle++ {
		best := -1
		for _, idx := range rng.Perm(len(population))[:cfg.SampleSize] {
			if best == -1 || score(population[idx]) > score(population[best]) {
				best = idx
			}
		}
		parent := population[best]
		var child Entry
		ok := false
		for tries := 0; tries < 16 && !ok; tries++ {
			child, ok = evaluate(space.MutateArch(rng, parent.Cand))
		}
		if ok {
			population = append(population[1:], child)
		}
	}

	for _, e := range out.History {
		if cfg.Constraints.CheckAccuracy(e.Res.Accuracy) != nil {
			continue
		}
		if out.Best.Cand == nil || ratio(e) > ratio(out.Best) {
			out.Best = e
		}
	}
	if out.Best.Cand == nil {
		for _, e := range out.History {
			if out.Best.Cand == nil || ratio(e) > ratio(out.Best) {
				out.Best = e
			}
		}
	}
	return out, nil
}
