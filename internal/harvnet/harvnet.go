// Package harvnet implements the HarvNet baseline [5] objective as described
// in the paper's §IV-B: accuracy and energy are combined into the single
// ratio max A/E, which needs no weight tuning but cannot steer along the
// Pareto frontier. Like μNAS it searches the architecture only and uses the
// total-MACs energy model; it is included for the ablation comparisons.
//
// The evolution loop is the shared internal/evo engine, so the A/E baseline
// runs with the same parallel evaluation, warm-start lineage, optional
// evaluation cache, and telemetry as eNAS.
package harvnet

import (
	"math"
	"math/rand"

	"solarml/internal/compute"
	"solarml/internal/evo"
	"solarml/internal/nas"
	"solarml/internal/obs"
)

// Config holds the HarvNet settings, matched to the eNAS run.
type Config struct {
	Population  int
	SampleSize  int
	Cycles      int
	Seed        int64
	Constraints nas.Constraints
	// Workers sets the evaluation parallelism for the population fill
	// (≤1 means sequential); results merge in generation order.
	Workers int
	// Compute, when set, is installed on the evaluator before the fill.
	Compute *compute.Context
	// Obs receives harvnet.search/phase1/phase2 spans and one
	// harvnet.cycle event per cycle; Metrics accumulates harvnet.*.
	Obs     *obs.Recorder
	Metrics *obs.Registry
	// Cache enables the engine's fingerprint-keyed evaluation memo; the
	// Outcome is identical with it on or off.
	Cache bool
}

// DefaultConfig returns settings matched to the paper's evaluation.
func DefaultConfig(task nas.Task) Config {
	return Config{
		Population:  50,
		SampleSize:  20,
		Cycles:      150,
		Constraints: nas.DefaultConstraints(task),
	}
}

// Entry pairs a candidate with its evaluation.
type Entry = evo.Entry

// Outcome is the result of one HarvNet run.
type Outcome struct {
	// Best maximizes A/E among feasible candidates.
	Best Entry
	// History holds every evaluated candidate.
	History     []Entry
	Evaluations int
}

// ratio is the HarvNet objective.
func ratio(e Entry) float64 {
	if e.Res.EnergyJ <= 0 {
		return 0
	}
	return e.Res.Accuracy / e.Res.EnergyJ
}

// policy adapts the HarvNet objective to the shared engine: fixed-sensing
// candidates, A/E scoring (infeasible candidates never win tournaments),
// and best-ratio reporting.
type policy struct {
	evo.NASGenome
	evo.StatelessState
	cfg   Config
	space *nas.Space
	fill  func(*rand.Rand) *nas.Candidate
}

// NewPolicy returns the HarvNet-objective search as an evo.Policy for the
// engine's island/checkpoint driver path (evo.RunIslands), which constructs
// one policy instance per island.
func NewPolicy(space *nas.Space, sensing *nas.Candidate, cfg Config) evo.Policy {
	return &policy{cfg: cfg, space: space, fill: evo.FixedSensing(space, sensing)}
}

func (p *policy) Prefix() string { return "harvnet" }

func (p *policy) Fill(rng *rand.Rand) *nas.Candidate { return p.fill(rng) }

func (p *policy) SearchAttrs() []obs.Attr { return nil }

func (p *policy) Init([]Entry, float64, float64) {}

func (p *policy) CycleScore(*rand.Rand, int) func(Entry) float64 {
	return func(e Entry) float64 {
		if p.cfg.Constraints.CheckAccuracy(e.Res.Accuracy) != nil {
			return math.Inf(-1) // infeasible candidates never win tournaments
		}
		return ratio(e)
	}
}

func (p *policy) GridCycle(int) bool { return false }

func (p *policy) Neighbors(*nas.Candidate) []*nas.Candidate { return nil }

func (p *policy) Mutate(rng *rand.Rand, parent *nas.Candidate) *nas.Candidate {
	return p.space.MutateArch(rng, parent)
}

func (p *policy) Accepted(Entry) {}

func (p *policy) Report(history []Entry) (Entry, []obs.Attr) {
	var best Entry
	for _, e := range history {
		if p.cfg.Constraints.CheckAccuracy(e.Res.Accuracy) != nil {
			continue
		}
		if best.Cand == nil || ratio(e) > ratio(best) {
			best = e
		}
	}
	if best.Cand == nil {
		for _, e := range history {
			if best.Cand == nil || ratio(e) > ratio(best) {
				best = e
			}
		}
	}
	return best, []obs.Attr{
		obs.F64("best_acc", best.Res.Accuracy),
		obs.F64("best_energy_j", best.Res.EnergyJ),
		obs.F64("best_ratio", ratio(best)),
	}
}

// Search runs the HarvNet-style evolution from a fixed sensing
// configuration.
func Search(space *nas.Space, sensing *nas.Candidate, eval nas.Evaluator, cfg Config) (*Outcome, error) {
	pol := &policy{cfg: cfg, space: space, fill: evo.FixedSensing(space, sensing)}
	out, err := evo.Run(pol, eval, evo.Config{
		Population: cfg.Population, SampleSize: cfg.SampleSize, Cycles: cfg.Cycles,
		Seed: cfg.Seed, Constraints: cfg.Constraints, Workers: cfg.Workers,
		Compute: cfg.Compute, Obs: cfg.Obs, Metrics: cfg.Metrics, Cache: cfg.Cache,
	})
	if err != nil {
		return nil, err
	}
	return &Outcome{Best: out.Best, History: out.History, Evaluations: out.Evaluations}, nil
}
