package harvnet

import (
	"math/rand"
	"testing"

	"solarml/internal/nas"
)

func smallConfig(task nas.Task, seed int64) Config {
	cfg := DefaultConfig(task)
	cfg.Population = 12
	cfg.SampleSize = 5
	cfg.Cycles = 40
	cfg.Seed = seed
	return cfg
}

func TestSearchMaximizesRatio(t *testing.T) {
	space := nas.GestureSpace()
	rng := rand.New(rand.NewSource(1))
	sensing := space.RandomCandidate(rng)
	eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
	out, err := Search(space, sensing, eval, smallConfig(nas.TaskGesture, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Best.Cand == nil {
		t.Fatal("no best candidate")
	}
	best := out.Best.Res.Accuracy / out.Best.Res.EnergyJ
	for _, e := range out.History {
		if nasFeasible(e, smallConfig(nas.TaskGesture, 2)) && e.Res.Accuracy/e.Res.EnergyJ > best+1e-9 {
			t.Fatal("reported best does not maximize A/E among feasible history")
		}
	}
}

func nasFeasible(e Entry, cfg Config) bool {
	return cfg.Constraints.CheckAccuracy(e.Res.Accuracy) == nil
}

func TestSearchKeepsSensingFixed(t *testing.T) {
	space := nas.KWSSpace()
	rng := rand.New(rand.NewSource(3))
	sensing := space.RandomCandidate(rng)
	eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
	out, err := Search(space, sensing, eval, smallConfig(nas.TaskKWS, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := sensing.SensingString()
	for _, e := range out.History {
		if e.Cand.SensingString() != want {
			t.Fatal("HarvNet must not mutate sensing")
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	space := nas.GestureSpace()
	rng := rand.New(rand.NewSource(5))
	sensing := space.RandomCandidate(rng)
	eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
	a, err := Search(space, sensing, eval, smallConfig(nas.TaskGesture, 6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(space, sensing, eval, smallConfig(nas.TaskGesture, 6))
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Cand.Fingerprint() != b.Best.Cand.Fingerprint() {
		t.Fatal("same seed must reproduce the same search")
	}
}

func TestSearchRejectsBadConfig(t *testing.T) {
	space := nas.GestureSpace()
	rng := rand.New(rand.NewSource(7))
	sensing := space.RandomCandidate(rng)
	eval := nas.NewSurrogateEvaluator(nas.NewTruthEnergy())
	cfg := Config{Population: 0, SampleSize: 1, Cycles: 1,
		Constraints: nas.DefaultConstraints(nas.TaskGesture)}
	if _, err := Search(space, sensing, eval, cfg); err == nil {
		t.Fatal("invalid config should be rejected")
	}
}
