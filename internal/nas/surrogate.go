package nas

import (
	"math"

	"solarml/internal/dataset"
	"solarml/internal/obs"
)

// SurrogateEvaluator scores candidates with a calibrated analytic accuracy
// model instead of training. It preserves the structure that drives the
// paper's results: accuracy saturates both in sensing information (channels,
// rate, quantization for gestures; frames, features, window for KWS) and in
// model capacity (MACs), so spending energy on sensing fidelity that the
// model cannot exploit — or on capacity the input cannot feed — is wasted.
// That coupling is what eNAS's joint search exploits and what sensing-blind
// baselines miss. Noise is deterministic per candidate fingerprint so
// repeated evaluations agree.
type SurrogateEvaluator struct {
	Energy EnergyModel
	// NoiseSD is the accuracy jitter standard deviation (≈ training
	// variance between runs).
	NoiseSD float64
	// Obs, when set, emits one nas.surrogate event per evaluation with
	// the candidate fingerprint and its scored accuracy/energy. Noise is
	// fingerprint-deterministic, so recording never perturbs a search.
	Obs *obs.Recorder
}

// NewSurrogateEvaluator returns a surrogate with the given energy model and
// the default ±1% accuracy jitter.
func NewSurrogateEvaluator(energy EnergyModel) *SurrogateEvaluator {
	return &SurrogateEvaluator{Energy: energy, NoiseSD: 0.01}
}

// hashNoise derives a deterministic standard-normal-ish value in [-3, 3]
// from a fingerprint (sum of scaled uniform hashes, CLT over 4 words).
func hashNoise(fp uint64) float64 {
	s := 0.0
	x := fp
	for i := 0; i < 4; i++ {
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		s += float64(x%10_000)/10_000 - 0.5
	}
	return s * math.Sqrt(12.0/4.0)
}

// saturate returns 1-exp(-x/scale): a rising information curve.
func saturate(x, scale float64) float64 { return 1 - math.Exp(-x/scale) }

// gestureCeiling is the accuracy achievable with unlimited model capacity
// under the given sensing fidelity.
func gestureCeiling(cfg dataset.GestureConfig) float64 {
	infoN := saturate(float64(cfg.Channels)+0.5, 3.0)
	infoR := saturate(float64(cfg.RateHz), 35)
	infoQ := saturate(cfg.Quant.EffectiveBits(), 3.0)
	info := math.Pow(infoN*infoR*infoQ, 0.5)
	return 0.40 + 0.57*info
}

// kwsCeiling is the KWS analogue over the front-end parameters.
func (s *SurrogateEvaluator) kwsCeiling(c *Candidate) float64 {
	frames := float64(c.Audio.NumFrames(int(dataset.AudioRateHz * dataset.AudioDurationS)))
	infoFrames := saturate(frames, 30)
	infoF := saturate(float64(c.Audio.NumFeatures), 11)
	infoD := 0.88 + 0.12*float64(c.Audio.DurationMS-18)/12.0
	info := math.Pow(infoFrames*infoF, 0.6) * infoD
	return 0.40 + 0.56*info
}

// Evaluate implements Evaluator.
func (s *SurrogateEvaluator) Evaluate(c *Candidate) (Result, error) {
	var res Result
	if err := c.Validate(); err != nil {
		return res, err
	}
	net, err := c.Arch.Build()
	if err != nil {
		return res, err
	}
	res.MACsByKind = net.MACsByKind()
	res.TotalMACs = net.TotalMACs()

	var ceil, capScale float64
	if c.Task == TaskGesture {
		ceil = gestureCeiling(c.Gesture)
		capScale = 120_000
	} else {
		ceil = s.kwsCeiling(c)
		capScale = 350_000
	}
	capacity := saturate(float64(res.TotalMACs), capScale)
	// Past ≈10× the capacity scale, extra parameters overfit the limited
	// training set and accuracy degrades slowly — this keeps the λ=0
	// (accuracy-only) search from drifting to arbitrarily large models,
	// as real TrainEval would.
	if over := float64(res.TotalMACs) / (10 * capScale); over > 1 {
		capacity -= 0.05 * math.Log10(over) * math.Log10(over) * 10
		if capacity < 0 {
			capacity = 0
		}
	}
	// Depth bonus: a second nonlinearity helps up to a point.
	depth := 0
	for _, spec := range c.Arch.Body {
		if spec.Kind.String() == "Conv" || spec.Kind.String() == "DWConv" || spec.Kind.String() == "Dense" {
			depth++
		}
	}
	depthFactor := 0.92 + 0.08*saturate(float64(depth), 1.5)
	acc := 0.10 + (ceil-0.10)*capacity*depthFactor
	acc += hashNoise(c.Fingerprint()) * s.NoiseSD
	if acc < 0.05 {
		acc = 0.05
	}
	if acc > 0.99 {
		acc = 0.99
	}
	res.Accuracy = acc
	if s.Energy != nil {
		res.SensingJ = s.Energy.SensingEnergy(c)
		res.InferJ = s.Energy.InferenceEnergy(res.MACsByKind)
		res.EnergyJ = res.SensingJ + res.InferJ
	}
	s.Obs.Event("nas.surrogate",
		obs.Int64("fingerprint", int64(c.Fingerprint())),
		obs.F64("accuracy", res.Accuracy),
		obs.F64("energy_j", res.EnergyJ),
		obs.Int64("macs", res.TotalMACs))
	return res, nil
}
