// Package nas defines the joint sensing+architecture search space of eNAS
// (Table II), candidate encoding and mutation morphisms, the memory/MAC/
// accuracy constraints shared by all searches, and the two candidate
// evaluators: TrainEvaluator (really trains each candidate with internal/nn)
// and SurrogateEvaluator (a calibrated analytic accuracy model for
// paper-scale sweeps).
package nas

import (
	"fmt"
	"hash/fnv"

	"solarml/internal/dataset"
	"solarml/internal/dsp"
	"solarml/internal/nn"
	"solarml/internal/quant"
)

// Task selects the application.
type Task int

const (
	// TaskGesture is solar-cell digit recognition.
	TaskGesture Task = iota
	// TaskKWS is microphone keyword spotting.
	TaskKWS
)

// String returns the task name.
func (t Task) String() string {
	if t == TaskGesture {
		return "gesture"
	}
	return "kws"
}

// Classes returns the label count of the task.
func (t Task) Classes() int {
	if t == TaskGesture {
		return dataset.NumGestureClasses
	}
	return dataset.NumKWSClasses
}

// Candidate is one point of the joint search space: sensing parameters plus
// a network architecture whose input shape is derived from the sensing side.
type Candidate struct {
	Task Task
	// Gesture holds the sensing parameters when Task == TaskGesture.
	Gesture dataset.GestureConfig
	// Audio holds the front-end parameters when Task == TaskKWS.
	Audio dsp.FrontEndConfig
	// Arch is the network body; its Input is kept in sync with the
	// sensing configuration by Rebind.
	Arch *nn.Arch
}

// Clone returns a deep copy.
func (c *Candidate) Clone() *Candidate {
	out := *c
	out.Arch = c.Arch.Clone()
	return &out
}

// InputShape returns the network input implied by the sensing parameters.
func (c *Candidate) InputShape() []int {
	switch c.Task {
	case TaskGesture:
		return c.Gesture.InputShape()
	default:
		frames := c.Audio.NumFrames(int(dataset.AudioRateHz * dataset.AudioDurationS))
		return []int{1, frames, c.Audio.NumFeatures}
	}
}

// Rebind updates the architecture's input shape from the sensing
// configuration and reports whether the architecture still materializes.
func (c *Candidate) Rebind() error {
	c.Arch.Input = c.InputShape()
	c.Arch.Classes = c.Task.Classes()
	return c.Arch.Validate()
}

// Validate checks both halves of the candidate.
func (c *Candidate) Validate() error {
	switch c.Task {
	case TaskGesture:
		if err := c.Gesture.Validate(); err != nil {
			return err
		}
	case TaskKWS:
		if err := c.Audio.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("nas: unknown task %d", c.Task)
	}
	return c.Rebind()
}

// SensingString renders the sensing half compactly.
func (c *Candidate) SensingString() string {
	if c.Task == TaskGesture {
		return fmt.Sprintf("n=%d r=%dHz %s", c.Gesture.Channels, c.Gesture.RateHz, c.Gesture.Quant)
	}
	return fmt.Sprintf("s=%dms d=%dms f=%d", c.Audio.StripeMS, c.Audio.DurationMS, c.Audio.NumFeatures)
}

// String renders the whole candidate.
func (c *Candidate) String() string {
	return fmt.Sprintf("[%s | %s]", c.SensingString(), c.Arch)
}

// Fingerprint returns a stable hash of the candidate configuration, used
// for deterministic surrogate noise and deduplication.
func (c *Candidate) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%d|%d|", c.Task,
		c.Gesture.Channels, c.Gesture.RateHz, c.Gesture.Quant.Res, c.Gesture.Quant.Bits,
		c.Audio.StripeMS, c.Audio.DurationMS, c.Audio.NumFeatures)
	for _, s := range c.Arch.Body {
		fmt.Fprintf(h, "%d,%d,%d,%d,%d;", s.Kind, s.Out, s.K, s.Stride, s.Pad)
	}
	return h.Sum64()
}

// quantFromEffective is a helper mapping search moves across the int/float
// boundary of the quantization axis.
func quantNeighbors(q quant.Config) []quant.Config {
	var out []quant.Config
	lo, hi := q.Res.Bounds()
	if q.Bits > lo {
		out = append(out, quant.Config{Res: q.Res, Bits: q.Bits - 1})
	}
	if q.Bits < hi {
		out = append(out, quant.Config{Res: q.Res, Bits: q.Bits + 1})
	}
	// "replace" morphism: switch representation family (Table II).
	if q.Res == quant.Int {
		out = append(out, quant.Config{Res: quant.Float, Bits: 9})
	} else {
		out = append(out, quant.Config{Res: quant.Int, Bits: 8})
	}
	return out
}
