package nas

import (
	"math/rand"
	"testing"

	"solarml/internal/dataset"
	"solarml/internal/nn"
	"solarml/internal/quant"
)

func warmStartFixture(t *testing.T) (*TrainEvaluator, *Candidate) {
	t.Helper()
	full := dataset.BuildGestureSet(120, 500, 33)
	train, test := full.Split(3)
	ev := &TrainEvaluator{
		Energy:       NewTruthEnergy(),
		GestureTrain: train,
		GestureTest:  test,
		Epochs:       4,
		LR:           0.05,
		Seed:         33,
		WarmStart:    true,
	}
	parent := &Candidate{Task: TaskGesture,
		Gesture: dataset.GestureConfig{Channels: 6, RateHz: 60,
			Quant: quant.Config{Res: quant.Int, Bits: 8}},
		Arch: &nn.Arch{Body: []nn.LayerSpec{
			{Kind: nn.KindConv, Out: 6, K: 3, Stride: 1, Pad: 1},
			{Kind: nn.KindReLU},
			{Kind: nn.KindMaxPool, K: 2},
			{Kind: nn.KindDense, Out: 24},
			{Kind: nn.KindReLU},
		}, Classes: 10}}
	if err := parent.Validate(); err != nil {
		t.Fatal(err)
	}
	return ev, parent
}

func TestInheritParamsPrefixSuffix(t *testing.T) {
	build := func(widen bool) *nn.Network {
		mid := 8
		if widen {
			mid = 12
		}
		arch := &nn.Arch{Input: []int{1, 6, 20}, Body: []nn.LayerSpec{
			{Kind: nn.KindConv, Out: 4, K: 3, Stride: 1, Pad: 1},
			{Kind: nn.KindReLU},
			{Kind: nn.KindConv, Out: mid, K: 3, Stride: 1, Pad: 1},
			{Kind: nn.KindReLU},
			{Kind: nn.KindDense, Out: 16},
		}, Classes: 10}
		net, err := arch.Build()
		if err != nil {
			t.Fatal(err)
		}
		net.Init(rand.New(rand.NewSource(1)))
		return net
	}
	parent := build(false)
	// Mark the parent's weights so inheritance is visible.
	snap := parent.SnapshotParams()
	for i := range snap {
		for j := range snap[i] {
			snap[i][j] = float64(i) + 0.5
		}
	}
	child := build(true) // widened middle conv: its tensors must NOT transfer
	n := inheritParams(child, paramSigs(parent), snap)
	if n == 0 {
		t.Fatal("nothing inherited")
	}
	params := child.Params()
	// First conv (prefix) must carry the marker.
	if params[0].Value.Data[0] != 0.5 {
		t.Fatalf("prefix tensor not inherited: %v", params[0].Value.Data[0])
	}
	// The widened conv's weights (index 2) must stay freshly initialized
	// (its length differs from the parent's).
	if params[2].Value.Data[0] == 2.5 {
		t.Fatal("mismatched tensor must not inherit")
	}
	// Head (suffix) must carry the marker — its index differs per network
	// but len matches? Dense(16→...) input depends on mid width, so the
	// dense tensors differ too; only the prefix transfers here.
	_ = n
}

func TestInheritParamsIdenticalArchTransfersAll(t *testing.T) {
	arch := &nn.Arch{Input: []int{1, 4, 8}, Body: []nn.LayerSpec{
		{Kind: nn.KindConv, Out: 3, K: 3, Stride: 1, Pad: 1},
		{Kind: nn.KindReLU},
		{Kind: nn.KindDense, Out: 8},
	}, Classes: 4}
	a, err := arch.Build()
	if err != nil {
		t.Fatal(err)
	}
	a.Init(rand.New(rand.NewSource(2)))
	b, err := arch.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.Init(rand.New(rand.NewSource(3)))
	n := inheritParams(b, paramSigs(a), a.SnapshotParams())
	if n != len(a.Params()) {
		t.Fatalf("inherited %d of %d tensors", n, len(a.Params()))
	}
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j := range ap[i].Value.Data {
			if ap[i].Value.Data[j] != bp[i].Value.Data[j] {
				t.Fatal("identical architectures must transfer bit-exactly")
			}
		}
	}
}

func TestEvaluateFromUsesFewerEpochsAndStaysAccurate(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	ev, parent := warmStartFixture(t)
	pres, err := ev.Evaluate(parent)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the head width only: most tensors transfer.
	child := parent.Clone()
	child.Arch.Body[3].Out = 32
	if err := child.Rebind(); err != nil {
		t.Fatal(err)
	}
	cres, err := ev.EvaluateFrom(child, parent)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-started child (2 epochs) should land near the parent's
	// accuracy, not at chance.
	if cres.Accuracy < pres.Accuracy-0.25 || cres.Accuracy < 0.4 {
		t.Fatalf("warm-started child accuracy %.3f vs parent %.3f", cres.Accuracy, pres.Accuracy)
	}
}

func TestEvaluateFromUnknownParentFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	ev, parent := warmStartFixture(t)
	// Parent never evaluated: EvaluateFrom must behave like Evaluate.
	res, err := ev.EvaluateFrom(parent, parent)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy <= 0.2 {
		t.Fatalf("fallback evaluation broken: %.3f", res.Accuracy)
	}
}

func TestParamStoreEviction(t *testing.T) {
	s := newParamStore(2)
	s.put(1, trainedEntry{})
	s.put(2, trainedEntry{})
	s.put(3, trainedEntry{})
	if _, ok := s.get(1); ok {
		t.Fatal("oldest entry must be evicted")
	}
	if _, ok := s.get(2); !ok {
		t.Fatal("entry 2 must remain")
	}
	if _, ok := s.get(3); !ok {
		t.Fatal("entry 3 must remain")
	}
	// Re-putting an existing key must not grow the order list.
	s.put(3, trainedEntry{})
	if len(s.order) != 2 {
		t.Fatalf("order list grew to %d", len(s.order))
	}
}
