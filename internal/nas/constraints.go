package nas

import (
	"fmt"
)

// Constraints are the hard limits every candidate must satisfy (§V-D: 100 KB
// memory, 30 M MACs, task-specific error caps — 0.25 for digit gestures,
// 0.3 for KWS).
type Constraints struct {
	// MemoryBytes bounds weights + activations at the quantized widths.
	MemoryBytes int64
	// MaxMACs bounds the per-inference MAC count.
	MaxMACs int64
	// MaxError bounds 1 − accuracy; checked after evaluation.
	MaxError float64
}

// DefaultConstraints returns the paper's evaluation settings for the task.
func DefaultConstraints(task Task) Constraints {
	c := Constraints{MemoryBytes: 100 * 1024, MaxMACs: 30_000_000}
	if task == TaskGesture {
		c.MaxError = 0.25
	} else {
		c.MaxError = 0.30
	}
	return c
}

// weightBits returns the storage width per weight for the candidate's
// quantization configuration (KWS models store int8 weights as in μNAS).
func weightBits(c *Candidate) int {
	if c.Task == TaskGesture {
		return c.Gesture.Quant.Bits
	}
	return 8
}

// CheckStatic verifies the structural constraints (memory, MACs) that can
// be checked without training.
func (ct Constraints) CheckStatic(c *Candidate) error {
	// Arithmetic pre-screen: reject absurd parameter counts before any
	// tensor is allocated.
	if est, err := c.Arch.EstimateParams(); err != nil {
		return err
	} else if est > ct.MemoryBytes*8 { // even bit-packed weights cannot fit
		return fmt.Errorf("nas: %d parameters cannot fit %d B", est, ct.MemoryBytes)
	}
	net, err := c.Arch.Build()
	if err != nil {
		return err
	}
	if macs := net.TotalMACs(); macs > ct.MaxMACs {
		return fmt.Errorf("nas: %d MACs exceeds limit %d", macs, ct.MaxMACs)
	}
	wb := weightBits(c)
	if wb < 8 {
		wb = 8 // sub-byte weights are stored byte-packed on the MCU
	}
	if mem := net.MemoryBytes(wb, 8); mem > ct.MemoryBytes {
		return fmt.Errorf("nas: %d B memory exceeds limit %d", mem, ct.MemoryBytes)
	}
	return nil
}

// CheckAccuracy verifies the error cap after evaluation.
func (ct Constraints) CheckAccuracy(acc float64) error {
	if 1-acc > ct.MaxError {
		return fmt.Errorf("nas: error %.3f exceeds cap %.3f", 1-acc, ct.MaxError)
	}
	return nil
}
