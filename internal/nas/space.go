package nas

import (
	"math/rand"

	"solarml/internal/dataset"
	"solarml/internal/dsp"
	"solarml/internal/nn"
	"solarml/internal/quant"
)

// Space is the joint search space: Table II sensing ranges plus a μNAS-style
// architecture space (conv/pool/norm blocks followed by dense layers).
type Space struct {
	Task Task
	// MaxBlocks bounds the convolutional block count.
	MaxBlocks int
	// MaxDense bounds the trailing dense layers (excluding the head).
	MaxDense int
	// ChannelChoices are the allowed conv widths.
	ChannelChoices []int
	// DenseChoices are the allowed dense widths.
	DenseChoices []int
	// KernelChoices are the allowed conv kernels.
	KernelChoices []int
	// SensingEvery (R in Algorithm 1) is carried here for convenience.
	SensingEvery int
}

// GestureSpace returns the digit-recognition search space.
func GestureSpace() *Space {
	return &Space{
		Task:           TaskGesture,
		MaxBlocks:      3,
		MaxDense:       2,
		ChannelChoices: []int{2, 4, 6, 8, 12, 16, 24},
		DenseChoices:   []int{8, 16, 24, 32, 48, 64},
		KernelChoices:  []int{3, 5},
		SensingEvery:   20,
	}
}

// KWSSpace returns the keyword-spotting search space.
func KWSSpace() *Space {
	return &Space{
		Task:           TaskKWS,
		MaxBlocks:      4,
		MaxDense:       2,
		ChannelChoices: []int{2, 4, 6, 8, 12, 16, 24, 32},
		DenseChoices:   []int{8, 16, 24, 32, 48, 64},
		KernelChoices:  []int{3, 5},
		SensingEvery:   20,
	}
}

// RandomSensing draws a uniform sensing configuration from Table II.
func (s *Space) RandomSensing(rng *rand.Rand, c *Candidate) {
	switch s.Task {
	case TaskGesture:
		cLo, cHi := dataset.ChannelBounds()
		rLo, rHi := dataset.RateBounds()
		res := quant.Int
		qLo, qHi := res.Bounds()
		if rng.Intn(2) == 1 {
			res = quant.Float
			qLo, qHi = res.Bounds()
		}
		c.Gesture = dataset.GestureConfig{
			Channels: cLo + rng.Intn(cHi-cLo+1),
			RateHz:   rLo + rng.Intn(rHi-rLo+1),
			Quant:    quant.Config{Res: res, Bits: qLo + rng.Intn(qHi-qLo+1)},
		}
	case TaskKWS:
		sLo, sHi := dsp.StripeBounds()
		dLo, dHi := dsp.DurationBounds()
		fLo, fHi := dsp.FeatureBounds()
		c.Audio = dsp.FrontEndConfig{
			SampleRate:  dataset.AudioRateHz,
			StripeMS:    sLo + rng.Intn(sHi-sLo+1),
			DurationMS:  dLo + rng.Intn(dHi-dLo+1),
			NumFeatures: fLo + rng.Intn(fHi-fLo+1),
		}
	}
}

// randomArchBody draws a random architecture body. The caller must Rebind
// and validity-check the result.
func (s *Space) randomArchBody(rng *rand.Rand) []nn.LayerSpec {
	var body []nn.LayerSpec
	blocks := 1 + rng.Intn(s.MaxBlocks)
	for b := 0; b < blocks; b++ {
		k := s.KernelChoices[rng.Intn(len(s.KernelChoices))]
		if rng.Float64() < 0.25 {
			body = append(body, nn.LayerSpec{
				Kind: nn.KindDWConv, K: k, Stride: 1, Pad: k / 2,
			})
		} else {
			body = append(body, nn.LayerSpec{
				Kind: nn.KindConv, Out: s.ChannelChoices[rng.Intn(len(s.ChannelChoices))],
				K: k, Stride: 1, Pad: k / 2,
			})
		}
		if rng.Float64() < 0.5 {
			body = append(body, nn.LayerSpec{Kind: nn.KindNorm})
		}
		body = append(body, nn.LayerSpec{Kind: nn.KindReLU})
		if rng.Float64() < 0.7 {
			kind := nn.KindMaxPool
			if rng.Float64() < 0.4 {
				kind = nn.KindAvgPool
			}
			body = append(body, nn.LayerSpec{Kind: kind, K: 2})
		}
	}
	dense := rng.Intn(s.MaxDense + 1)
	for d := 0; d < dense; d++ {
		body = append(body, nn.LayerSpec{
			Kind: nn.KindDense, Out: s.DenseChoices[rng.Intn(len(s.DenseChoices))],
		})
		body = append(body, nn.LayerSpec{Kind: nn.KindReLU})
	}
	return body
}

// RandomCandidate draws random sensing parameters and a random architecture
// until the pair materializes (pooling fits, shapes stay positive).
func (s *Space) RandomCandidate(rng *rand.Rand) *Candidate {
	for {
		c := &Candidate{Task: s.Task, Arch: &nn.Arch{Classes: s.Task.Classes()}}
		s.RandomSensing(rng, c)
		c.Arch.Body = s.randomArchBody(rng)
		if c.Rebind() == nil {
			return c
		}
	}
}

// MutateArch applies one μNAS-style architecture morphism: widen/narrow a
// layer, change a kernel, insert or delete a layer. Returns a valid mutant
// (retrying internally) that differs from the parent.
func (s *Space) MutateArch(rng *rand.Rand, parent *Candidate) *Candidate {
	for tries := 0; tries < 64; tries++ {
		c := parent.Clone()
		body := c.Arch.Body
		op := rng.Intn(4)
		switch {
		case op == 0 && len(body) > 0: // widen/narrow
			i := rng.Intn(len(body))
			switch body[i].Kind {
			case nn.KindConv:
				body[i].Out = s.ChannelChoices[rng.Intn(len(s.ChannelChoices))]
			case nn.KindDense:
				body[i].Out = s.DenseChoices[rng.Intn(len(s.DenseChoices))]
			default:
				continue
			}
		case op == 1 && len(body) > 0: // change kernel
			i := rng.Intn(len(body))
			if body[i].Kind != nn.KindConv && body[i].Kind != nn.KindDWConv {
				continue
			}
			k := s.KernelChoices[rng.Intn(len(s.KernelChoices))]
			body[i].K, body[i].Pad = k, k/2
		case op == 2: // insert a layer
			i := rng.Intn(len(body) + 1)
			var ins nn.LayerSpec
			switch rng.Intn(4) {
			case 0:
				k := s.KernelChoices[rng.Intn(len(s.KernelChoices))]
				ins = nn.LayerSpec{Kind: nn.KindConv, Out: s.ChannelChoices[rng.Intn(len(s.ChannelChoices))], K: k, Stride: 1, Pad: k / 2}
			case 1:
				ins = nn.LayerSpec{Kind: nn.KindNorm}
			case 2:
				ins = nn.LayerSpec{Kind: nn.KindMaxPool, K: 2}
			default:
				ins = nn.LayerSpec{Kind: nn.KindReLU}
			}
			body = append(body[:i], append([]nn.LayerSpec{ins}, body[i:]...)...)
			c.Arch.Body = body
		case op == 3 && len(body) > 1: // delete a layer
			i := rng.Intn(len(body))
			body = append(body[:i], body[i+1:]...)
			c.Arch.Body = body
		default:
			continue
		}
		if c.Rebind() == nil && c.Fingerprint() != parent.Fingerprint() {
			return c
		}
	}
	// Mutation space exhausted around this parent; fall back to a fresh
	// architecture with the parent's sensing parameters.
	c := parent.Clone()
	c.Arch.Body = s.randomArchBody(rng)
	for c.Rebind() != nil {
		c.Arch.Body = s.randomArchBody(rng)
	}
	return c
}

// MutateSensing applies one Table II sensing morphism (n±1, r±2, q±1, or
// the int/float replace move; s±1, d±1, f±1 for KWS), keeping the
// architecture fixed and revalidating the pair.
func (s *Space) MutateSensing(rng *rand.Rand, parent *Candidate) *Candidate {
	for tries := 0; tries < 64; tries++ {
		c := parent.Clone()
		switch s.Task {
		case TaskGesture:
			switch rng.Intn(3) {
			case 0:
				c.Gesture.Channels += 1 - 2*rng.Intn(2)
			case 1:
				c.Gesture.RateHz += 2 - 4*rng.Intn(2)
			default:
				qs := quantNeighbors(c.Gesture.Quant)
				c.Gesture.Quant = qs[rng.Intn(len(qs))]
			}
			if c.Gesture.Validate() != nil {
				continue
			}
		case TaskKWS:
			switch rng.Intn(3) {
			case 0:
				c.Audio.StripeMS += 1 - 2*rng.Intn(2)
			case 1:
				c.Audio.DurationMS += 1 - 2*rng.Intn(2)
			default:
				c.Audio.NumFeatures += 1 - 2*rng.Intn(2)
			}
			if c.Audio.Validate() != nil {
				continue
			}
		}
		if c.Rebind() == nil && c.Fingerprint() != parent.Fingerprint() {
			return c
		}
	}
	return parent.Clone()
}

// GridNeighbors enumerates the full one-step sensing neighbourhood of the
// candidate (the local grid of Algorithm 1's GRIDMUTATE), keeping only
// valid pairs.
func (s *Space) GridNeighbors(parent *Candidate) []*Candidate {
	var out []*Candidate
	add := func(c *Candidate) {
		if c.Validate() == nil && c.Fingerprint() != parent.Fingerprint() {
			out = append(out, c)
		}
	}
	switch s.Task {
	case TaskGesture:
		for _, dn := range []int{-1, 1} {
			c := parent.Clone()
			c.Gesture.Channels += dn
			add(c)
		}
		for _, dr := range []int{-2, 2} {
			c := parent.Clone()
			c.Gesture.RateHz += dr
			add(c)
		}
		for _, q := range quantNeighbors(parent.Gesture.Quant) {
			c := parent.Clone()
			c.Gesture.Quant = q
			add(c)
		}
	case TaskKWS:
		for _, d := range []int{-1, 1} {
			c := parent.Clone()
			c.Audio.StripeMS += d
			add(c)
			c = parent.Clone()
			c.Audio.DurationMS += d
			add(c)
			c = parent.Clone()
			c.Audio.NumFeatures += d
			add(c)
		}
	}
	return out
}
