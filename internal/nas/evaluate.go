package nas

import (
	"fmt"
	"math/rand"
	"sync"

	"solarml/internal/compute"
	"solarml/internal/dataset"
	"solarml/internal/energymodel"
	"solarml/internal/mcu"
	"solarml/internal/nn"
	"solarml/internal/obs"
	"solarml/internal/tensor"
)

// Result is the outcome of evaluating one candidate.
type Result struct {
	// Accuracy is top-1 test accuracy.
	Accuracy float64
	// SensingJ and InferJ are the per-inference energy estimates used by
	// the search; EnergyJ is their sum (E_S + E_M).
	SensingJ float64
	InferJ   float64
	EnergyJ  float64
	// TotalMACs and MACsByKind describe the network's compute.
	TotalMACs  int64
	MACsByKind map[nn.LayerKind]int64
}

// Evaluator scores candidates.
//
// Determinism contract: Evaluate must be a pure function of the candidate's
// Fingerprint — both repo evaluators honour it (the surrogate derives its
// noise from the fingerprint; TrainEvaluator derives its init seed from it)
// — and must not share mutable state across concurrent calls. The search
// engine (internal/evo) relies on both: the first for its fingerprint-keyed
// evaluation memo, the second for its parallel evaluation batches. Only
// EvaluateFrom (WarmStartEvaluator) may depend on more than the fingerprint,
// which is why the engine never memoizes warm-start results.
type Evaluator interface {
	Evaluate(c *Candidate) (Result, error)
}

// ComputeSettable is implemented by evaluators whose candidate training can
// run on a pluggable compute backend. Search drivers (the internal/evo
// engine, on behalf of eNAS/μNAS/HarvNet) install their configured context
// through it, so kernel parallelism is budgeted in one place against the
// candidate-level worker count.
type ComputeSettable interface {
	SetCompute(ctx *compute.Context)
}

// EnergyModel estimates candidate energy during search. eNAS plugs in the
// fitted layer-wise + sensing models; μNAS plugs in its total-MACs model;
// final reporting uses the ground truth.
type EnergyModel interface {
	SensingEnergy(c *Candidate) float64
	InferenceEnergy(macs map[nn.LayerKind]int64) float64
}

// TruthEnergy is the simulator ground truth (used for final reporting and
// as the oracle upper bound in ablations).
type TruthEnergy struct {
	Coeff   energymodel.Coefficients
	Profile mcu.PowerProfile
}

// NewTruthEnergy returns the calibrated ground truth.
func NewTruthEnergy() *TruthEnergy {
	return &TruthEnergy{Coeff: energymodel.DefaultCoefficients(), Profile: mcu.NRF52840()}
}

// SensingEnergy implements EnergyModel.
func (t *TruthEnergy) SensingEnergy(c *Candidate) float64 {
	if c.Task == TaskGesture {
		return energymodel.GestureSensingTrue(t.Profile, c.Gesture)
	}
	return energymodel.AudioSensingTrue(t.Profile, c.Audio)
}

// InferenceEnergy implements EnergyModel.
func (t *TruthEnergy) InferenceEnergy(macs map[nn.LayerKind]int64) float64 {
	return t.Coeff.TrueEnergy(macs)
}

// FittedEnergy wraps regression estimators fitted on measurement campaigns.
type FittedEnergy struct {
	Infer   *energymodel.InferenceEstimator
	Gesture *energymodel.GestureEstimator
	Audio   *energymodel.AudioEstimator
}

// SensingEnergy implements EnergyModel.
func (f *FittedEnergy) SensingEnergy(c *Candidate) float64 {
	if c.Task == TaskGesture {
		if f.Gesture == nil {
			return 0
		}
		return f.Gesture.Predict(c.Gesture)
	}
	if f.Audio == nil {
		return 0
	}
	return f.Audio.Predict(c.Audio)
}

// InferenceEnergy implements EnergyModel.
func (f *FittedEnergy) InferenceEnergy(macs map[nn.LayerKind]int64) float64 {
	return f.Infer.Predict(macs)
}

// CalibrateEnergy runs the §IV-A measurement campaign: nMeasure random
// candidates are "measured" on the simulator and the estimators are fitted.
// layerwise selects the eNAS per-kind inference proxy; sensing estimators
// are fitted only when withSensing is set (μNAS does not model sensing).
func CalibrateEnergy(space *Space, nMeasure int, layerwise, withSensing bool, seed int64) (*FittedEnergy, error) {
	rng := rand.New(rand.NewSource(seed))
	m := energymodel.NewMeasurer(seed + 1)
	out := &FittedEnergy{Infer: &energymodel.InferenceEstimator{Layerwise: layerwise}}
	var inferSamples []energymodel.InferenceSample
	var gestureSamples []energymodel.GestureSample
	var audioSamples []energymodel.AudioSample
	for i := 0; i < nMeasure; i++ {
		c := space.RandomCandidate(rng)
		net, err := c.Arch.Build()
		if err != nil {
			return nil, err
		}
		macs := net.MACsByKind()
		inferSamples = append(inferSamples, energymodel.InferenceSample{
			MACs: macs, EnergyJ: m.MeasureInference(macs),
		})
		if !withSensing {
			continue
		}
		if space.Task == TaskGesture {
			gestureSamples = append(gestureSamples, energymodel.GestureSample{
				Cfg: c.Gesture, EnergyJ: m.MeasureGestureSensing(c.Gesture),
			})
		} else {
			audioSamples = append(audioSamples, energymodel.AudioSample{
				Cfg: c.Audio, EnergyJ: m.MeasureAudioSensing(c.Audio),
			})
		}
	}
	if err := out.Infer.Fit(inferSamples); err != nil {
		return nil, err
	}
	if len(gestureSamples) > 0 {
		out.Gesture = &energymodel.GestureEstimator{}
		if err := out.Gesture.Fit(gestureSamples); err != nil {
			return nil, err
		}
	}
	if len(audioSamples) > 0 {
		out.Audio = &energymodel.AudioEstimator{}
		if err := out.Audio.Fit(audioSamples); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TrainEvaluator trains every candidate for real on the synthetic datasets
// (the TrainEval step of Algorithm 1) and reports test accuracy plus
// model-based energies.
type TrainEvaluator struct {
	Energy EnergyModel
	// Gesture datasets (used when the space task is TaskGesture).
	GestureTrain, GestureTest *dataset.GestureSet
	// KWS datasets.
	KWSTrain, KWSTest *dataset.KWSSet
	// Training budget per candidate.
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// WarmStart enables weight inheritance: mutated children copy the
	// trained tensors the mutation did not touch from their parent and
	// train for WarmEpochs (default Epochs/2, min 1) instead of Epochs.
	WarmStart  bool
	WarmEpochs int
	// Compute, when set, runs every candidate's training and accuracy
	// kernels on its backend and scratch pool. Size it with
	// compute.BudgetWorkers so candidate-level parallelism (the enas
	// Workers pool sharing this evaluator) times kernel workers never
	// oversubscribes cores. The context is shared by all evaluator
	// goroutines; compute.Context is safe for that.
	Compute *compute.Context
	// Obs, when set, wraps every evaluation in a nas.evaluate span
	// (fingerprint, warm-start, epochs, accuracy, energy) with nn.fit /
	// nn.epoch sub-events from training and one nn.layer event per layer
	// of a profiled test-batch forward — the timings that back the
	// layer-wise energy model's sanity checks.
	Obs *obs.Recorder
	// Metrics, when set, shares the nn.arena_hits / nn.arena_misses
	// counters across the per-candidate step arenas, so a search run
	// reports fleet-wide training-buffer reuse. Leave nil to let each
	// candidate's Fit install an unobserved arena.
	Metrics *obs.Registry

	mu      sync.Mutex
	cache   map[uint64]materialized
	trained *paramStore
}

type materialized struct {
	trainX, testX *tensor.Tensor
	trainY, testY []int
}

// sensingKey fingerprints only the sensing half of a candidate.
func sensingKey(c *Candidate) uint64 {
	clone := c.Clone()
	clone.Arch = &nn.Arch{Classes: c.Task.Classes()}
	return clone.Fingerprint()
}

// materializeFor renders train/test datasets under the candidate's sensing
// configuration, with caching keyed on the sensing parameters.
func (e *TrainEvaluator) materializeFor(c *Candidate) (materialized, error) {
	key := sensingKey(c)
	e.mu.Lock()
	if e.cache == nil {
		e.cache = make(map[uint64]materialized)
	}
	if m, ok := e.cache[key]; ok {
		e.mu.Unlock()
		return m, nil
	}
	e.mu.Unlock()
	var m materialized
	var err error
	switch c.Task {
	case TaskGesture:
		if e.GestureTrain == nil || e.GestureTest == nil {
			return m, fmt.Errorf("nas: gesture datasets not configured")
		}
		m.trainX, m.trainY, err = e.GestureTrain.Materialize(c.Gesture)
		if err != nil {
			return m, err
		}
		m.testX, m.testY, err = e.GestureTest.Materialize(c.Gesture)
	case TaskKWS:
		if e.KWSTrain == nil || e.KWSTest == nil {
			return m, fmt.Errorf("nas: KWS datasets not configured")
		}
		m.trainX, m.trainY, err = e.KWSTrain.Materialize(c.Audio)
		if err != nil {
			return m, err
		}
		m.testX, m.testY, err = e.KWSTest.Materialize(c.Audio)
	}
	if err != nil {
		return m, err
	}
	e.mu.Lock()
	e.cache[key] = m
	e.mu.Unlock()
	return m, nil
}

// SetCompute implements ComputeSettable.
func (e *TrainEvaluator) SetCompute(ctx *compute.Context) { e.Compute = ctx }

// Evaluate implements Evaluator (cold start).
func (e *TrainEvaluator) Evaluate(c *Candidate) (Result, error) {
	return e.evaluate(c, nil)
}

// EvaluateFrom implements WarmStartEvaluator: when warm starting is enabled
// and the parent's trained weights are stored, the child inherits every
// tensor its mutation left untouched and trains a shorter schedule.
func (e *TrainEvaluator) EvaluateFrom(child, parent *Candidate) (Result, error) {
	return e.evaluate(child, parent)
}

func (e *TrainEvaluator) evaluate(c, parent *Candidate) (Result, error) {
	var res Result
	sp := e.Obs.StartSpan("nas.evaluate",
		obs.Str("task", c.Task.String()),
		obs.Int64("fingerprint", int64(c.Fingerprint())),
		obs.Bool("warm", e.WarmStart && parent != nil))
	if err := c.Validate(); err != nil {
		sp.End(obs.Str("error", err.Error()))
		return res, err
	}
	data, err := e.materializeFor(c)
	if err != nil {
		sp.End(obs.Str("error", err.Error()))
		return res, err
	}
	net, err := c.Arch.Build()
	if err != nil {
		sp.End(obs.Str("error", err.Error()))
		return res, err
	}
	rng := rand.New(rand.NewSource(e.Seed + int64(c.Fingerprint()%1_000_003)))
	net.Init(rng)
	epochs, bs, lr := e.Epochs, e.BatchSize, e.LR
	if epochs == 0 {
		epochs = 4
	}
	if bs == 0 {
		bs = 16
	}
	if lr == 0 {
		lr = 0.05
	}
	if e.WarmStart && parent != nil {
		entry, ok := e.store().get(parent.Fingerprint())
		if ok && inheritParams(net, entry.sigs, entry.snap) > 0 {
			epochs = e.WarmEpochs
			if epochs <= 0 {
				epochs = max(1, (e.Epochs+1)/2)
			}
		}
	}
	var arena *nn.Arena
	if e.Metrics != nil {
		// Per-candidate arena (arenas are single-owner), shared counters.
		arena = nn.NewArena(e.Metrics)
	}
	net.Fit(data.trainX, data.trainY, nn.TrainConfig{
		Epochs: epochs, BatchSize: bs, LR: lr, Momentum: 0.9, Seed: e.Seed,
		Compute: e.Compute,
		Arena:   arena,
		Obs:     e.Obs,
	})
	if e.WarmStart {
		e.store().put(c.Fingerprint(), trainedEntry{snap: net.SnapshotParams(), sigs: paramSigs(net)})
	}
	res.Accuracy = net.Accuracy(data.testX, data.testY)
	res.MACsByKind = net.MACsByKind()
	res.TotalMACs = net.TotalMACs()
	if e.Energy != nil {
		res.SensingJ = e.Energy.SensingEnergy(c)
		res.InferJ = e.Energy.InferenceEnergy(res.MACsByKind)
		res.EnergyJ = res.SensingJ + res.InferJ
	}
	if e.Obs.Enabled() {
		// Per-layer forward timings on one test batch: the wall-clock
		// counterpart of the layer-wise energy features, kept in the trace
		// so energy-model sanity checks can correlate time against MACs.
		n := data.testX.Shape[0]
		if n > 16 {
			n = 16
		}
		sample := len(data.testX.Data) / data.testX.Shape[0]
		bshape := append([]int{n}, net.InShape...)
		bx := tensor.FromSlice(data.testX.Data[:n*sample], bshape...)
		_, timings := net.ForwardProfiled(bx, false)
		nn.EmitLayerTimings(e.Obs, timings, n)
	}
	sp.End(obs.Int("epochs", epochs),
		obs.F64("accuracy", res.Accuracy),
		obs.F64("energy_j", res.EnergyJ),
		obs.Int64("macs", res.TotalMACs))
	return res, nil
}

// store lazily initializes the lineage snapshot store.
func (e *TrainEvaluator) store() *paramStore {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.trained == nil {
		e.trained = newParamStore(64)
	}
	return e.trained
}
