package nas

import (
	"sync"

	"solarml/internal/nn"
)

// WarmStartEvaluator is implemented by evaluators that can reuse a parent
// candidate's trained weights when scoring a mutated child — the weight
// inheritance that makes evolutionary NAS affordable in practice. Search
// loops call EvaluateFrom when they know the lineage; Evaluate remains the
// cold-start path.
type WarmStartEvaluator interface {
	Evaluator
	EvaluateFrom(child, parent *Candidate) (Result, error)
}

// trainedEntry is one stored lineage record: a trained parameter snapshot
// plus the tensor signatures needed to align it against a mutated child.
type trainedEntry struct {
	snap [][]float64
	sigs []layerSig
}

// paramStore keeps trained parameter snapshots for recent candidates,
// bounded FIFO so long searches don't hoard memory.
type paramStore struct {
	mu    sync.Mutex
	cap   int
	order []uint64
	byFP  map[uint64]trainedEntry
}

func newParamStore(capacity int) *paramStore {
	return &paramStore{cap: capacity, byFP: make(map[uint64]trainedEntry)}
}

func (s *paramStore) put(fp uint64, e trainedEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byFP[fp]; !ok {
		s.order = append(s.order, fp)
		for len(s.order) > s.cap {
			delete(s.byFP, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.byFP[fp] = e
}

func (s *paramStore) get(fp uint64) (trainedEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byFP[fp]
	return e, ok
}

// layerSig identifies a parameter tensor for inheritance alignment: the
// owning layer's kind plus the tensor's length. Only identically-shaped
// tensors transfer.
type layerSig struct {
	kind nn.LayerKind
	n    int
}

// paramSigs returns one signature per parameter tensor of the network, in
// Params() order.
func paramSigs(net *nn.Network) []layerSig {
	var sigs []layerSig
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			sigs = append(sigs, layerSig{kind: l.Kind(), n: p.Value.Len()})
		}
	}
	return sigs
}

// inheritParams copies parent tensors into the child wherever the aligned
// signatures match. Our morphisms change one layer (widen, re-kernel,
// insert, delete), so aligning the common prefix and suffix of the
// signature lists transfers everything the mutation did not touch. Returns
// how many tensors were inherited.
func inheritParams(child *nn.Network, parentSigs []layerSig, parentSnap [][]float64) int {
	childSigs := paramSigs(child)
	childParams := child.Params()
	// Longest matching prefix.
	prefix := 0
	for prefix < len(childSigs) && prefix < len(parentSigs) && childSigs[prefix] == parentSigs[prefix] {
		prefix++
	}
	// Longest matching suffix that does not overlap the prefix.
	suffix := 0
	for suffix < len(childSigs)-prefix && suffix < len(parentSigs)-prefix &&
		childSigs[len(childSigs)-1-suffix] == parentSigs[len(parentSigs)-1-suffix] {
		suffix++
	}
	inherited := 0
	for i := 0; i < prefix; i++ {
		copy(childParams[i].Value.Data, parentSnap[i])
		inherited++
	}
	for i := 0; i < suffix; i++ {
		ci := len(childParams) - 1 - i
		pi := len(parentSnap) - 1 - i
		copy(childParams[ci].Value.Data, parentSnap[pi])
		inherited++
	}
	return inherited
}
