package nas

import (
	"fmt"
	"sort"

	"solarml/internal/bytecodec"
	"solarml/internal/dataset"
	"solarml/internal/dsp"
	"solarml/internal/nn"
	"solarml/internal/quant"
)

// GenomeCodecVersion is the version byte leading every encoded candidate.
// Bump it when the Candidate structure changes shape; decoders reject
// versions they do not know rather than misparse.
const GenomeCodecVersion = 1

// resultCodecVersion versions the Result encoding independently (Result
// gains fields on a different schedule than the search space).
const resultCodecVersion = 1

// AppendCandidate appends a versioned binary encoding of c — the "genome"
// serialization behind search checkpoints and the persistent evaluation
// memo. The encoding is a pure function of the candidate (no map order, no
// pointers), so encode→decode→encode is byte-identical, and it covers every
// field Fingerprint covers plus the ones it elides (stride/pad defaults,
// audio sample rate), so a decoded candidate rebuilds the same network.
func AppendCandidate(b []byte, c *Candidate) []byte {
	b = bytecodec.AppendUvarint(b, GenomeCodecVersion)
	b = bytecodec.AppendInt(b, int(c.Task))
	b = bytecodec.AppendInt(b, c.Gesture.Channels)
	b = bytecodec.AppendInt(b, c.Gesture.RateHz)
	b = bytecodec.AppendInt(b, int(c.Gesture.Quant.Res))
	b = bytecodec.AppendInt(b, c.Gesture.Quant.Bits)
	b = bytecodec.AppendInt(b, c.Audio.SampleRate)
	b = bytecodec.AppendInt(b, c.Audio.StripeMS)
	b = bytecodec.AppendInt(b, c.Audio.DurationMS)
	b = bytecodec.AppendInt(b, c.Audio.NumFeatures)
	b = bytecodec.AppendInt(b, c.Arch.Classes)
	b = bytecodec.AppendUvarint(b, uint64(len(c.Arch.Input)))
	for _, d := range c.Arch.Input {
		b = bytecodec.AppendInt(b, d)
	}
	b = bytecodec.AppendUvarint(b, uint64(len(c.Arch.Body)))
	for _, s := range c.Arch.Body {
		b = bytecodec.AppendInt(b, int(s.Kind))
		b = bytecodec.AppendInt(b, s.Out)
		b = bytecodec.AppendInt(b, s.K)
		b = bytecodec.AppendInt(b, s.Stride)
		b = bytecodec.AppendInt(b, s.Pad)
	}
	return b
}

// ReadCandidate decodes one candidate from r.
func ReadCandidate(r *bytecodec.Reader) (*Candidate, error) {
	if v := r.Uvarint(); r.Err() == nil && v != GenomeCodecVersion {
		return nil, fmt.Errorf("nas: unknown genome codec version %d (have %d)", v, GenomeCodecVersion)
	}
	c := &Candidate{Arch: &nn.Arch{}}
	c.Task = Task(r.Int())
	c.Gesture = dataset.GestureConfig{
		Channels: r.Int(), RateHz: r.Int(),
		Quant: quant.Config{Res: quant.Resolution(r.Int()), Bits: r.Int()},
	}
	c.Audio = dsp.FrontEndConfig{
		SampleRate: r.Int(), StripeMS: r.Int(), DurationMS: r.Int(), NumFeatures: r.Int(),
	}
	c.Arch.Classes = r.Int()
	if n := r.Uvarint(); r.Err() == nil {
		if n > 16 {
			return nil, fmt.Errorf("nas: implausible input rank %d", n)
		}
		c.Arch.Input = make([]int, n)
		for i := range c.Arch.Input {
			c.Arch.Input[i] = r.Int()
		}
	}
	if n := r.Uvarint(); r.Err() == nil {
		if n > 4096 {
			return nil, fmt.Errorf("nas: implausible body length %d", n)
		}
		c.Arch.Body = make([]nn.LayerSpec, n)
		for i := range c.Arch.Body {
			c.Arch.Body[i] = nn.LayerSpec{
				Kind: nn.LayerKind(r.Int()), Out: r.Int(),
				K: r.Int(), Stride: r.Int(), Pad: r.Int(),
			}
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("nas: decode candidate: %w", err)
	}
	return c, nil
}

// AppendResult appends a versioned binary encoding of res. MACsByKind is
// written in sorted key order so the encoding is deterministic.
func AppendResult(b []byte, res Result) []byte {
	b = bytecodec.AppendUvarint(b, resultCodecVersion)
	b = bytecodec.AppendF64(b, res.Accuracy)
	b = bytecodec.AppendF64(b, res.SensingJ)
	b = bytecodec.AppendF64(b, res.InferJ)
	b = bytecodec.AppendF64(b, res.EnergyJ)
	b = bytecodec.AppendVarint(b, res.TotalMACs)
	kinds := make([]int, 0, len(res.MACsByKind))
	for k := range res.MACsByKind {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	b = bytecodec.AppendUvarint(b, uint64(len(kinds)))
	for _, k := range kinds {
		b = bytecodec.AppendInt(b, k)
		b = bytecodec.AppendVarint(b, res.MACsByKind[nn.LayerKind(k)])
	}
	return b
}

// ReadResult decodes one result from r.
func ReadResult(r *bytecodec.Reader) (Result, error) {
	var res Result
	if v := r.Uvarint(); r.Err() == nil && v != resultCodecVersion {
		return res, fmt.Errorf("nas: unknown result codec version %d (have %d)", v, resultCodecVersion)
	}
	res.Accuracy = r.F64()
	res.SensingJ = r.F64()
	res.InferJ = r.F64()
	res.EnergyJ = r.F64()
	res.TotalMACs = r.Varint()
	if n := r.Uvarint(); r.Err() == nil && n > 0 {
		if n > 256 {
			return res, fmt.Errorf("nas: implausible MAC kind count %d", n)
		}
		res.MACsByKind = make(map[nn.LayerKind]int64, n)
		for i := uint64(0); i < n; i++ {
			k := nn.LayerKind(r.Int())
			res.MACsByKind[k] = r.Varint()
		}
	}
	if err := r.Err(); err != nil {
		return res, fmt.Errorf("nas: decode result: %w", err)
	}
	return res, nil
}
