package nas

// Genome/result codec pins: encode→decode→encode byte-equality on real
// candidates from both search spaces, version rejection, and fuzzing of the
// decoders (arbitrary bytes must never panic, and any accepted buffer must
// re-encode identically — the property search checkpoints depend on).

import (
	"bytes"
	"math/rand"
	"testing"

	"solarml/internal/bytecodec"
	"solarml/internal/nn"
)

func TestCandidateCodecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		space *Space
	}{
		{"gesture", GestureSpace()},
		{"kws", KWSSpace()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 50; i++ {
				c := tc.space.RandomCandidate(rng)
				enc := AppendCandidate(nil, c)
				r := bytecodec.NewReader(enc)
				dec, err := ReadCandidate(r)
				if err != nil {
					t.Fatalf("decode candidate %d: %v", i, err)
				}
				if r.Len() != 0 {
					t.Fatalf("candidate %d: %d trailing bytes", i, r.Len())
				}
				if dec.Fingerprint() != c.Fingerprint() {
					t.Fatalf("candidate %d: fingerprint %#x != %#x", i, dec.Fingerprint(), c.Fingerprint())
				}
				if again := AppendCandidate(nil, dec); !bytes.Equal(enc, again) {
					t.Fatalf("candidate %d: re-encode differs (%d vs %d bytes)", i, len(enc), len(again))
				}
			}
		})
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	res := Result{
		Accuracy: 0.875, SensingJ: 1.5e-4, InferJ: 2.5e-4, EnergyJ: 4e-4,
		TotalMACs:  123456,
		MACsByKind: map[nn.LayerKind]int64{nn.KindConv: 100000, nn.KindDense: 23456},
	}
	enc := AppendResult(nil, res)
	r := bytecodec.NewReader(enc)
	dec, err := ReadResult(r)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes", r.Len())
	}
	if again := AppendResult(nil, dec); !bytes.Equal(enc, again) {
		t.Fatalf("re-encode differs")
	}
}

func TestCandidateCodecRejectsVersionSkew(t *testing.T) {
	c := GestureSpace().RandomCandidate(rand.New(rand.NewSource(1)))
	enc := AppendCandidate(nil, c)
	enc[0] = GenomeCodecVersion + 1 // version leads as a single-byte uvarint
	if _, err := ReadCandidate(bytecodec.NewReader(enc)); err == nil {
		t.Fatal("decode accepted an unknown genome version")
	}
}

// FuzzReadCandidate: arbitrary bytes must never panic the decoder, and any
// accepted input must satisfy encode→decode→encode byte-equality once
// normalized (the raw input itself may use non-minimal varints, which Go's
// varint reader tolerates, so the first encode canonicalizes).
func FuzzReadCandidate(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	f.Add(AppendCandidate(nil, GestureSpace().RandomCandidate(rng)))
	f.Add(AppendCandidate(nil, KWSSpace().RandomCandidate(rng)))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytecodec.NewReader(data)
		c, err := ReadCandidate(r)
		if err != nil || r.Len() != 0 {
			return
		}
		enc := AppendCandidate(nil, c)
		r2 := bytecodec.NewReader(enc)
		c2, err := ReadCandidate(r2)
		if err != nil || r2.Len() != 0 {
			t.Fatalf("canonical encoding failed to decode: %v (%d left)", err, r2.Len())
		}
		if again := AppendCandidate(nil, c2); !bytes.Equal(enc, again) {
			t.Fatalf("encode→decode→encode is not byte-identical")
		}
	})
}

// FuzzReadResult mirrors FuzzReadCandidate for the result codec.
func FuzzReadResult(f *testing.F) {
	f.Add(AppendResult(nil, Result{Accuracy: 0.5, EnergyJ: 1e-3, TotalMACs: 7}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytecodec.NewReader(data)
		res, err := ReadResult(r)
		if err != nil || r.Len() != 0 {
			return
		}
		enc := AppendResult(nil, res)
		r2 := bytecodec.NewReader(enc)
		res2, err := ReadResult(r2)
		if err != nil || r2.Len() != 0 {
			t.Fatalf("canonical encoding failed to decode: %v (%d left)", err, r2.Len())
		}
		if again := AppendResult(nil, res2); !bytes.Equal(enc, again) {
			t.Fatalf("encode→decode→encode is not byte-identical")
		}
	})
}
