package nas

import (
	"math"
	"math/rand"
	"testing"

	"solarml/internal/dataset"
	"solarml/internal/dsp"
	"solarml/internal/nn"
	"solarml/internal/quant"
)

func TestRandomCandidatesValid(t *testing.T) {
	for _, space := range []*Space{GestureSpace(), KWSSpace()} {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 50; i++ {
			c := space.RandomCandidate(rng)
			if err := c.Validate(); err != nil {
				t.Fatalf("%s candidate %d invalid: %v", space.Task, i, err)
			}
			if c.Task != space.Task {
				t.Fatal("task mismatch")
			}
		}
	}
}

func TestRandomSensingWithinTableII(t *testing.T) {
	space := GestureSpace()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		c := space.RandomCandidate(rng)
		if c.Gesture.Channels < 1 || c.Gesture.Channels > 9 {
			t.Fatalf("channels %d", c.Gesture.Channels)
		}
		if c.Gesture.RateHz < 10 || c.Gesture.RateHz > 200 {
			t.Fatalf("rate %d", c.Gesture.RateHz)
		}
		if err := c.Gesture.Quant.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	kspace := KWSSpace()
	for i := 0; i < 200; i++ {
		c := kspace.RandomCandidate(rng)
		if c.Audio.StripeMS < 10 || c.Audio.StripeMS > 30 {
			t.Fatalf("stripe %d", c.Audio.StripeMS)
		}
		if c.Audio.DurationMS < 18 || c.Audio.DurationMS > 30 {
			t.Fatalf("duration %d", c.Audio.DurationMS)
		}
		if c.Audio.NumFeatures < 10 || c.Audio.NumFeatures > 40 {
			t.Fatalf("features %d", c.Audio.NumFeatures)
		}
	}
}

func TestMutateArchProducesValidDistinct(t *testing.T) {
	space := GestureSpace()
	rng := rand.New(rand.NewSource(3))
	parent := space.RandomCandidate(rng)
	for i := 0; i < 50; i++ {
		child := space.MutateArch(rng, parent)
		if err := child.Validate(); err != nil {
			t.Fatalf("mutant %d invalid: %v", i, err)
		}
		if child.Fingerprint() == parent.Fingerprint() {
			t.Fatalf("mutant %d identical to parent", i)
		}
		// Sensing must be untouched by architecture morphisms.
		if child.Gesture != parent.Gesture {
			t.Fatal("MutateArch must not touch sensing parameters")
		}
		parent = child
	}
}

func TestMutateSensingProducesValidNeighbors(t *testing.T) {
	for _, space := range []*Space{GestureSpace(), KWSSpace()} {
		rng := rand.New(rand.NewSource(4))
		parent := space.RandomCandidate(rng)
		for i := 0; i < 50; i++ {
			child := space.MutateSensing(rng, parent)
			if err := child.Validate(); err != nil {
				t.Fatalf("%s sensing mutant invalid: %v", space.Task, err)
			}
			// Architecture body must be unchanged.
			if len(child.Arch.Body) != len(parent.Arch.Body) {
				t.Fatal("MutateSensing must not touch the architecture")
			}
			parent = child
		}
	}
}

func TestGestureSensingMorphismStepSizes(t *testing.T) {
	// Table II: n±1, r±2, q±1 (or representation replace).
	space := GestureSpace()
	rng := rand.New(rand.NewSource(5))
	parent := space.RandomCandidate(rng)
	for i := 0; i < 100; i++ {
		child := space.MutateSensing(rng, parent)
		dn := child.Gesture.Channels - parent.Gesture.Channels
		dr := child.Gesture.RateHz - parent.Gesture.RateHz
		if dn != 0 && dn != 1 && dn != -1 {
			t.Fatalf("channel step %d", dn)
		}
		if dr != 0 && dr != 2 && dr != -2 {
			t.Fatalf("rate step %d", dr)
		}
		if child.Gesture.Quant.Res == parent.Gesture.Quant.Res {
			dq := child.Gesture.Quant.Bits - parent.Gesture.Quant.Bits
			if dq < -1 || dq > 1 {
				t.Fatalf("quant step %d", dq)
			}
		}
	}
}

func TestGridNeighborsValidAndLocal(t *testing.T) {
	space := KWSSpace()
	rng := rand.New(rand.NewSource(6))
	parent := space.RandomCandidate(rng)
	neighbors := space.GridNeighbors(parent)
	if len(neighbors) == 0 {
		t.Fatal("interior point must have neighbors")
	}
	for _, nb := range neighbors {
		if err := nb.Validate(); err != nil {
			t.Fatal(err)
		}
		dist := abs(nb.Audio.StripeMS-parent.Audio.StripeMS) +
			abs(nb.Audio.DurationMS-parent.Audio.DurationMS) +
			abs(nb.Audio.NumFeatures-parent.Audio.NumFeatures)
		if dist != 1 {
			t.Fatalf("grid neighbor at distance %d", dist)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestGridNeighborsRespectBoundaries(t *testing.T) {
	space := GestureSpace()
	c := &Candidate{Task: TaskGesture, Arch: &nn.Arch{
		Body:    []nn.LayerSpec{{Kind: nn.KindDense, Out: 8}},
		Classes: 10,
	}}
	c.Gesture = dataset.GestureConfig{Channels: 9, RateHz: 200,
		Quant: quant.Config{Res: quant.Float, Bits: 32}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, nb := range space.GridNeighbors(c) {
		if err := nb.Validate(); err != nil {
			t.Fatalf("corner neighbor invalid: %v", err)
		}
	}
}

func TestConstraintsStatic(t *testing.T) {
	ct := DefaultConstraints(TaskGesture)
	if ct.MemoryBytes != 100*1024 || ct.MaxMACs != 30_000_000 {
		t.Fatalf("defaults %+v", ct)
	}
	if ct.MaxError != 0.25 {
		t.Fatalf("gesture error cap %v", ct.MaxError)
	}
	if DefaultConstraints(TaskKWS).MaxError != 0.30 {
		t.Fatal("KWS error cap must be 0.3")
	}
	small := &Candidate{Task: TaskGesture,
		Gesture: dataset.GestureConfig{Channels: 4, RateHz: 50, Quant: quant.Config{Res: quant.Int, Bits: 8}},
		Arch:    &nn.Arch{Body: []nn.LayerSpec{{Kind: nn.KindDense, Out: 16}}, Classes: 10}}
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ct.CheckStatic(small); err != nil {
		t.Fatalf("small model should pass: %v", err)
	}
	huge := small.Clone()
	huge.Arch.Body = []nn.LayerSpec{
		{Kind: nn.KindDense, Out: 4096}, {Kind: nn.KindDense, Out: 4096},
		{Kind: nn.KindDense, Out: 4096},
	}
	if err := huge.Rebind(); err != nil {
		t.Fatal(err)
	}
	if err := ct.CheckStatic(huge); err == nil {
		t.Fatal("huge model should violate constraints")
	}
}

func TestCheckAccuracy(t *testing.T) {
	ct := DefaultConstraints(TaskGesture)
	if err := ct.CheckAccuracy(0.80); err != nil {
		t.Fatal("0.80 accuracy meets 0.25 error cap")
	}
	if err := ct.CheckAccuracy(0.70); err == nil {
		t.Fatal("0.70 accuracy violates 0.25 error cap")
	}
}

func TestCalibrateEnergyProducesUsableModels(t *testing.T) {
	space := GestureSpace()
	fe, err := CalibrateEnergy(space, 150, true, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fe.Gesture == nil {
		t.Fatal("gesture sensing estimator missing")
	}
	// Sanity: predictions positive and ordered for a small vs large model.
	smallMACs := map[nn.LayerKind]int64{nn.KindConv: 50_000}
	bigMACs := map[nn.LayerKind]int64{nn.KindConv: 500_000}
	if fe.Infer.Predict(smallMACs) >= fe.Infer.Predict(bigMACs) {
		t.Fatal("fitted inference model must be increasing in MACs")
	}
	cheap := dataset.GestureConfig{Channels: 1, RateHz: 10, Quant: quant.Config{Res: quant.Int, Bits: 1}}
	rich := dataset.GestureConfig{Channels: 9, RateHz: 200, Quant: quant.Config{Res: quant.Float, Bits: 32}}
	if fe.Gesture.Predict(cheap) >= fe.Gesture.Predict(rich) {
		t.Fatal("fitted sensing model must be increasing in fidelity")
	}
}

func TestCalibrateEnergyWithoutSensing(t *testing.T) {
	fe, err := CalibrateEnergy(KWSSpace(), 100, false, false, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fe.Audio != nil || fe.Gesture != nil {
		t.Fatal("sensing estimators must be absent")
	}
	c := KWSSpace().RandomCandidate(rand.New(rand.NewSource(9)))
	if fe.SensingEnergy(c) != 0 {
		t.Fatal("μNAS-style model must report zero sensing energy")
	}
}

func TestSurrogateDeterministic(t *testing.T) {
	space := GestureSpace()
	rng := rand.New(rand.NewSource(10))
	ev := NewSurrogateEvaluator(NewTruthEnergy())
	c := space.RandomCandidate(rng)
	a, err := ev.Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.Evaluate(c.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy != b.Accuracy || a.EnergyJ != b.EnergyJ {
		t.Fatal("surrogate must be deterministic per candidate")
	}
}

func TestSurrogateMonotoneInSensingFidelity(t *testing.T) {
	ev := &SurrogateEvaluator{Energy: NewTruthEnergy(), NoiseSD: 0}
	arch := []nn.LayerSpec{
		{Kind: nn.KindConv, Out: 16, K: 3, Stride: 1, Pad: 1},
		{Kind: nn.KindReLU},
		{Kind: nn.KindDense, Out: 32},
	}
	mk := func(ch, rate, bits int) *Candidate {
		c := &Candidate{Task: TaskGesture,
			Gesture: dataset.GestureConfig{Channels: ch, RateHz: rate,
				Quant: quant.Config{Res: quant.Int, Bits: bits}},
			Arch: &nn.Arch{Body: append([]nn.LayerSpec(nil), arch...), Classes: 10}}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	rich, err := ev.Evaluate(mk(9, 150, 8))
	if err != nil {
		t.Fatal(err)
	}
	poor, err := ev.Evaluate(mk(1, 20, 2))
	if err != nil {
		t.Fatal(err)
	}
	if poor.Accuracy >= rich.Accuracy {
		t.Fatalf("poor sensing acc %.3f should be below rich %.3f", poor.Accuracy, rich.Accuracy)
	}
	if poor.SensingJ >= rich.SensingJ {
		t.Fatal("poor sensing must cost less energy")
	}
}

func TestSurrogateMonotoneInCapacity(t *testing.T) {
	ev := &SurrogateEvaluator{Energy: NewTruthEnergy(), NoiseSD: 0}
	mk := func(width int) *Candidate {
		c := &Candidate{Task: TaskKWS,
			Audio: dsp.FrontEndConfig{SampleRate: dataset.AudioRateHz, StripeMS: 20, DurationMS: 25, NumFeatures: 13},
			Arch: &nn.Arch{Body: []nn.LayerSpec{
				{Kind: nn.KindConv, Out: width, K: 3, Stride: 1, Pad: 1},
				{Kind: nn.KindReLU},
				{Kind: nn.KindMaxPool, K: 2},
			}, Classes: 10}}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	small, err := ev.Evaluate(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	big, err := ev.Evaluate(mk(16))
	if err != nil {
		t.Fatal(err)
	}
	if big.Accuracy <= small.Accuracy {
		t.Fatalf("capacity should raise accuracy: %.3f vs %.3f", big.Accuracy, small.Accuracy)
	}
	if big.InferJ <= small.InferJ {
		t.Fatal("capacity must cost inference energy")
	}
}

func TestTrainEvaluatorOnGesture(t *testing.T) {
	if testing.Short() {
		t.Skip("training evaluation is slow")
	}
	full := dataset.BuildGestureSet(150, 500, 11)
	train, test := full.Split(3)
	ev := &TrainEvaluator{
		Energy:       NewTruthEnergy(),
		GestureTrain: train,
		GestureTest:  test,
		Epochs:       6,
		LR:           0.05,
		Seed:         12,
	}
	c := &Candidate{Task: TaskGesture,
		Gesture: dataset.GestureConfig{Channels: 9, RateHz: 50, Quant: quant.Config{Res: quant.Int, Bits: 8}},
		Arch: &nn.Arch{Body: []nn.LayerSpec{
			{Kind: nn.KindConv, Out: 8, K: 3, Stride: 1, Pad: 1},
			{Kind: nn.KindReLU},
			{Kind: nn.KindMaxPool, K: 2},
		}, Classes: 10}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := ev.Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.5 {
		t.Fatalf("trained accuracy %.2f too low — training pipeline broken", res.Accuracy)
	}
	if res.EnergyJ <= 0 || res.SensingJ <= 0 || res.InferJ <= 0 {
		t.Fatalf("energies %+v", res)
	}
	if math.Abs(res.EnergyJ-(res.SensingJ+res.InferJ)) > 1e-12 {
		t.Fatal("EnergyJ must be the sum of parts")
	}
}

func TestTrainEvaluatorCachesMaterializations(t *testing.T) {
	full := dataset.BuildGestureSet(30, 500, 13)
	train, test := full.Split(3)
	ev := &TrainEvaluator{GestureTrain: train, GestureTest: test, Epochs: 1, Seed: 1}
	c := &Candidate{Task: TaskGesture,
		Gesture: dataset.GestureConfig{Channels: 2, RateHz: 20, Quant: quant.Config{Res: quant.Int, Bits: 4}},
		Arch:    &nn.Arch{Body: []nn.LayerSpec{{Kind: nn.KindDense, Out: 8}}, Classes: 10}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Evaluate(c); err != nil {
		t.Fatal(err)
	}
	if len(ev.cache) != 1 {
		t.Fatalf("cache size %d, want 1", len(ev.cache))
	}
	// Same sensing, different arch: cache must be reused, not grown.
	c2 := c.Clone()
	c2.Arch.Body = []nn.LayerSpec{{Kind: nn.KindDense, Out: 16}}
	if err := c2.Rebind(); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Evaluate(c2); err != nil {
		t.Fatal(err)
	}
	if len(ev.cache) != 1 {
		t.Fatalf("cache grew to %d for identical sensing", len(ev.cache))
	}
}

func TestCandidateFingerprintSensitivity(t *testing.T) {
	space := GestureSpace()
	rng := rand.New(rand.NewSource(14))
	c := space.RandomCandidate(rng)
	same := c.Clone()
	if c.Fingerprint() != same.Fingerprint() {
		t.Fatal("clone must share fingerprint")
	}
	mutated := space.MutateSensing(rng, c)
	if mutated.Fingerprint() == c.Fingerprint() {
		t.Fatal("sensing change must alter fingerprint")
	}
}

func TestRebindSyncsInputShape(t *testing.T) {
	c := &Candidate{Task: TaskGesture,
		Gesture: dataset.GestureConfig{Channels: 5, RateHz: 80, Quant: quant.Config{Res: quant.Int, Bits: 8}},
		Arch:    &nn.Arch{Body: []nn.LayerSpec{{Kind: nn.KindDense, Out: 8}}, Classes: 10}}
	if err := c.Rebind(); err != nil {
		t.Fatal(err)
	}
	if c.Arch.Input[1] != 5 || c.Arch.Input[2] != 120 {
		t.Fatalf("input shape %v", c.Arch.Input)
	}
	c.Gesture.Channels = 3
	if err := c.Rebind(); err != nil {
		t.Fatal(err)
	}
	if c.Arch.Input[1] != 3 {
		t.Fatalf("rebind did not update shape: %v", c.Arch.Input)
	}
}

func TestTrainEvaluatorOnKWS(t *testing.T) {
	if testing.Short() {
		t.Skip("training evaluation is slow")
	}
	full := dataset.BuildKWSSet(150, 17)
	train, test := full.Split(3)
	ev := &TrainEvaluator{
		Energy:   NewTruthEnergy(),
		KWSTrain: train,
		KWSTest:  test,
		Epochs:   6,
		LR:       0.01,
		Seed:     17,
	}
	c := &Candidate{Task: TaskKWS,
		Audio: dsp.FrontEndConfig{SampleRate: dataset.AudioRateHz,
			StripeMS: 20, DurationMS: 25, NumFeatures: 13},
		Arch: &nn.Arch{Body: []nn.LayerSpec{
			{Kind: nn.KindConv, Out: 6, K: 3, Stride: 1, Pad: 1},
			{Kind: nn.KindReLU},
			{Kind: nn.KindMaxPool, K: 2},
			{Kind: nn.KindDense, Out: 32},
			{Kind: nn.KindReLU},
		}, Classes: 10}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := ev.Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.4 {
		t.Fatalf("KWS training accuracy %.3f too low", res.Accuracy)
	}
	if res.SensingJ < 4e-3 {
		t.Fatalf("KWS sensing energy %.1f mJ implausibly low", res.SensingJ*1e3)
	}
}
