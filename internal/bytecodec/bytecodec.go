// Package bytecodec holds the byte-level primitives shared by the repo's
// versioned binary codecs (the nas candidate/result codec and the evo
// checkpoint format): little-endian varints via encoding/binary's Append
// helpers, fixed 8-byte float64 bit patterns (so NaN/Inf and negative zero
// round-trip exactly, which %g-style text would not guarantee), and
// length-prefixed byte/string fields — plus a sticky-error Reader so decode
// paths stay linear instead of threading (value, rest, error) triples.
//
// Every encoder in the repo follows the same two rules, which is what makes
// encode→decode→encode byte-equality testable: appends are deterministic
// functions of the value (no maps iterated in hash order, no timestamps),
// and every variable-length field is length-prefixed so a truncated buffer
// fails cleanly instead of misparsing.
package bytecodec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v in zig-zag varint encoding.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendInt appends an int as a zig-zag varint.
func AppendInt(b []byte, v int) []byte { return binary.AppendVarint(b, int64(v)) }

// AppendF64 appends the exact bit pattern of v (8 bytes, little-endian).
func AppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendBytes appends p length-prefixed.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends s length-prefixed.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Reader decodes a buffer written with the Append helpers. The first
// malformed or truncated field latches an error; subsequent reads return
// zero values, so callers check Err once after a run of reads.
type Reader struct {
	b   []byte
	err error
}

// NewReader wraps b. The reader never mutates the buffer.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns how many bytes remain unread.
func (r *Reader) Len() int { return len(r.b) }

// Rest returns the unread remainder of the buffer.
func (r *Reader) Rest() []byte { return r.b }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("bytecodec: "+format, args...)
	}
}

// Uvarint reads one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated or malformed uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Varint reads one zig-zag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated or malformed varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Int reads a zig-zag varint as an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// F64 reads one fixed 8-byte float64 bit pattern.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("truncated float64 (%d bytes left)", len(r.b))
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

// Bytes reads one length-prefixed byte field. The returned slice aliases
// the underlying buffer; callers that retain it must copy.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.fail("truncated bytes field (want %d, have %d)", n, len(r.b))
		return nil
	}
	p := r.b[:n]
	r.b = r.b[n:]
	return p
}

// String reads one length-prefixed string field.
func (r *Reader) String() string { return string(r.Bytes()) }
