// Package sim is the event-driven simulation core: a deterministic
// priority event queue with typed events and stable tie-breaking, plus a
// simulation clock. State in an event-driven simulation changes only at
// discrete instants — threshold crossings, arrivals, lighting breakpoints —
// so the physics between events can be advanced analytically instead of
// being replayed in fixed sub-second steps. The queue is the scheduler for
// those instants; what each event means is up to the embedding simulation
// (internal/firmware defines arrivals, V_θ crossings, and lux breakpoints).
//
// Determinism contract: Pop order depends only on the sequence of Push
// calls — events are ordered by time, and events with equal timestamps pop
// in insertion order (each Push is stamped with a monotone sequence
// number). Replays of the same Push sequence therefore drain identically,
// which is what lets seeded lifetime runs be pinned byte-for-byte.
package sim

import (
	"fmt"
	"math"
)

// Kind tags an event with its type. The zero value is valid; embedding
// simulations define their own kind constants.
type Kind uint8

// Event is one scheduled occurrence.
type Event struct {
	// T is the simulation time of the event in seconds.
	T float64
	// Kind is the event type, defined by the embedding simulation.
	Kind Kind
	// Data is an opaque payload: an arrival index, a generation counter
	// for invalidating stale events, or anything else the embedder needs.
	Data int64

	seq uint64
}

// Seq returns the event's insertion sequence number (diagnostics; also the
// tie-break key for equal timestamps).
func (e Event) Seq() uint64 { return e.seq }

// Queue is a deterministic min-priority queue of events ordered by
// (time, insertion order). The zero value is ready to use.
type Queue struct {
	heap    []Event
	nextSeq uint64
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Grow reserves capacity for at least n additional events, so bulk
// scheduling (a run's whole arrival stream) does not reallocate the heap
// once per doubling.
func (q *Queue) Grow(n int) {
	if need := len(q.heap) + n; need > cap(q.heap) {
		heap := make([]Event, len(q.heap), need)
		copy(heap, q.heap)
		q.heap = heap
	}
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules an event. Panics on NaN times — a NaN would silently
// corrupt the heap ordering.
func (q *Queue) Push(t float64, kind Kind, data int64) {
	if math.IsNaN(t) {
		panic("sim: NaN event time")
	}
	ev := Event{T: t, Kind: kind, Data: data, seq: q.nextSeq}
	q.nextSeq++
	q.heap = append(q.heap, ev)
	q.siftUp(len(q.heap) - 1)
}

// Peek returns the next event without removing it.
func (q *Queue) Peek() (Event, bool) {
	if len(q.heap) == 0 {
		return Event{}, false
	}
	return q.heap[0], true
}

// Pop removes and returns the earliest event; ties pop in insertion order.
func (q *Queue) Pop() (Event, bool) {
	n := len(q.heap)
	if n == 0 {
		return Event{}, false
	}
	top := q.heap[0]
	q.heap[0] = q.heap[n-1]
	q.heap = q.heap[:n-1]
	if len(q.heap) > 0 {
		q.siftDown(0)
	}
	return top, true
}

// less orders the heap by time, then by insertion sequence so equal
// timestamps drain first-in-first-out.
func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.T != b.T {
		return a.T < b.T
	}
	return a.seq < b.seq
}

func (q *Queue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue) siftDown(i int) {
	n := len(q.heap)
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < n && q.less(l, min) {
			min = l
		}
		if r < n && q.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
}

// Clock tracks simulation time. The zero value starts at t=0.
type Clock struct {
	now float64
}

// Now returns the current simulation time in seconds.
func (c *Clock) Now() float64 { return c.now }

// AdvanceTo moves the clock forward to t. Panics if t would move time
// backwards — an out-of-order event is a scheduling bug, not a state.
func (c *Clock) AdvanceTo(t float64) {
	if t < c.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: clock moving backwards: %v -> %v", c.now, t))
	}
	c.now = t
}

// Set forces the clock to t, forwards or backwards. Rewinding is legal
// only when the embedder explicitly models overlapping activity (the
// firmware arrival-overrun convention); prefer AdvanceTo.
func (c *Clock) Set(t float64) {
	if math.IsNaN(t) {
		panic("sim: NaN clock time")
	}
	c.now = t
}
