package sim

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzQueueOrdering drives the queue with an arbitrary byte-encoded
// sequence of pushes and pops and checks the two ordering invariants on
// every pop: times never decrease relative to the last pop taken at the
// same drain point, and equal timestamps drain in insertion order.
func FuzzQueueOrdering(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 1, 255, 255})
	f.Add([]byte{0, 0, 0, 0, 255, 0, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		q := NewQueue()
		var next int64
		lastSeq := map[float64]uint64{}
		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			if op == 255 { // pop
				before := q.Len()
				ev, ok := q.Pop()
				if ok != (before > 0) {
					t.Fatalf("pop ok=%v with %d pending", ok, before)
				}
				if !ok {
					continue
				}
				// Every pending event must be >= the popped one.
				if pk, ok := q.Peek(); ok {
					if pk.T < ev.T || (pk.T == ev.T && pk.Seq() < ev.Seq()) {
						t.Fatalf("heap order violated: popped (%v,%d), peek (%v,%d)",
							ev.T, ev.Seq(), pk.T, pk.Seq())
					}
				}
				if last, seen := lastSeq[ev.T]; seen && ev.Seq() <= last {
					t.Fatalf("tie-break violated at t=%v: seq %d after %d",
						ev.T, ev.Seq(), last)
				}
				lastSeq[ev.T] = ev.Seq()
				continue
			}
			var ti float64
			if len(data) >= 8 {
				ti = math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
				data = data[8:]
			} else {
				ti = float64(op)
			}
			if math.IsNaN(ti) {
				ti = float64(op) // NaN pushes are rejected by design
			}
			q.Push(ti, Kind(op%4), next)
			next++
		}
	})
}
