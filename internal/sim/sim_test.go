package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueEmpty(t *testing.T) {
	q := NewQueue()
	if q.Len() != 0 {
		t.Fatal("new queue must be empty")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue must report !ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue must report !ok")
	}
}

func TestQueuePopsInTimeOrder(t *testing.T) {
	q := NewQueue()
	times := []float64{5, 1, 3, 2, 4, 0}
	for _, ti := range times {
		q.Push(ti, 0, 0)
	}
	prev := math.Inf(-1)
	for q.Len() > 0 {
		ev, ok := q.Pop()
		if !ok {
			t.Fatal("pop failed with events pending")
		}
		if ev.T < prev {
			t.Fatalf("pop out of order: %v after %v", ev.T, prev)
		}
		prev = ev.T
	}
}

func TestQueuePeekMatchesPop(t *testing.T) {
	q := NewQueue()
	q.Push(2, 1, 10)
	q.Push(1, 2, 20)
	pk, _ := q.Peek()
	pp, _ := q.Pop()
	if pk != pp {
		t.Fatalf("peek %+v != pop %+v", pk, pp)
	}
	if q.Len() != 1 {
		t.Fatal("peek must not consume")
	}
}

func TestQueueStableTieBreak(t *testing.T) {
	q := NewQueue()
	// Ten events at the same instant: they must pop in insertion order.
	for i := int64(0); i < 10; i++ {
		q.Push(7, Kind(i%3), i)
	}
	for i := int64(0); i < 10; i++ {
		ev, ok := q.Pop()
		if !ok || ev.Data != i {
			t.Fatalf("tie-break broken: pop %d returned data %d", i, ev.Data)
		}
	}
}

func TestQueueNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NaN push must panic")
		}
	}()
	NewQueue().Push(math.NaN(), 0, 0)
}

// TestQueueDeterminismProperty is the tie-break property test the event
// core's replayability rests on: for any random mix of pushes (with heavy
// timestamp collisions) interleaved with pops, events with equal times pop
// in insertion order, and the full drain is the stable sort of the input.
func TestQueueDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewQueue()
		type pushed struct {
			t    float64
			data int64
		}
		var all []pushed
		var got []pushed
		n := 50 + rng.Intn(200)
		next := int64(0)
		for i := 0; i < n; i++ {
			if q.Len() > 0 && rng.Intn(4) == 0 {
				ev, _ := q.Pop()
				got = append(got, pushed{ev.T, ev.Data})
				continue
			}
			// Quantized times force many exact collisions.
			ti := float64(rng.Intn(8))
			all = append(all, pushed{ti, next})
			q.Push(ti, 0, next)
			next++
		}
		for q.Len() > 0 {
			ev, _ := q.Pop()
			got = append(got, pushed{ev.T, ev.Data})
		}
		if len(got) != len(all) {
			return false
		}
		// Global pop order is not fully sorted (interleaved pops drain
		// prefixes), but within any equal timestamp the data values —
		// which are insertion-ordered — must appear in increasing order.
		seen := map[float64]int64{}
		for _, g := range got {
			if last, ok := seen[g.t]; ok && g.data <= last {
				return false
			}
			seen[g.t] = g.data
		}
		// And a pure push-then-drain replay equals the stable sort.
		q2 := NewQueue()
		for _, p := range all {
			q2.Push(p.t, 0, p.data)
		}
		want := append([]pushed(nil), all...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].t < want[j].t })
		for _, w := range want {
			ev, ok := q2.Pop()
			if !ok || ev.T != w.t || ev.Data != w.data {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("clock must start at 0")
	}
	c.AdvanceTo(5)
	c.AdvanceTo(5) // idempotent advance is fine
	if c.Now() != 5 {
		t.Fatalf("Now = %v, want 5", c.Now())
	}
	c.Set(2) // explicit rewind is allowed
	if c.Now() != 2 {
		t.Fatalf("Now = %v after Set, want 2", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("backwards AdvanceTo must panic")
		}
	}()
	c.AdvanceTo(1)
}
