// Package mcu models the Xiao nRF52840 microcontroller of the SolarML
// prototype as a power-state machine. Per-state power draws are calibrated
// so the simulated traces reproduce the paper's measured figures: the Fig 2
// E_E/E_S/E_M split, the Fig 7 per-layer energies, and the §V-D end-to-end
// budgets. The device writes every activity into a powertrace.Recorder,
// standing in for the OTII analyzer.
package mcu

import (
	"fmt"

	"solarml/internal/powertrace"
)

// PowerProfile holds the per-state electrical constants of the MCU board
// (MCU + DC-DC converter at 3.3 V).
type PowerProfile struct {
	// DeepSleepW is system-on deep sleep with RTC wake source.
	DeepSleepW float64
	// StandbyW is RAM-retention standby between back-to-back inferences.
	StandbyW float64
	// WakeUpW and WakeUpS describe the boot/restore transition.
	WakeUpW float64
	WakeUpS float64
	// ActiveW is the CPU running flat out (inference, preprocessing).
	ActiveW float64
	// TicklessBaseW is the base draw of tickless sampling mode, where an
	// external clock peripheral paces the ADC without waking the CPU.
	TicklessBaseW float64
	// ScanOverheadJ is the fixed cost of one tickless scan burst (timer
	// wake, multiplexer settling), paid once per sampling period
	// regardless of how many channels are read.
	ScanOverheadJ float64
	// ADCSampleBaseJ is the per-channel conversion energy (the ADC runs
	// at its native resolution).
	ADCSampleBaseJ float64
	// ADCSamplePerBitJ is the per-scan software quantization/packing cost
	// per retained bit of resolution.
	ADCSamplePerBitJ float64
	// MicW is the PDM microphone plus acquisition-path power.
	MicW float64
	// CPUPerMACJ is the generic CPU cost of one multiply-accumulate of
	// pre-processing arithmetic (not layer inference, which uses the
	// layer-wise model).
	CPUPerMACJ float64
	// DSPPerMACJ is the cost of one front-end DSP operation (FFT
	// butterflies, filterbank, DCT); several instructions per op on a
	// Cortex-M4 without a hardware FPU pipeline for doubles.
	DSPPerMACJ float64
}

// NRF52840 returns the calibrated profile of the prototype board.
func NRF52840() PowerProfile {
	return PowerProfile{
		DeepSleepW:       45e-6,
		StandbyW:         5e-6,
		WakeUpW:          6.8e-3,
		WakeUpS:          0.05,
		ActiveW:          15e-3,
		TicklessBaseW:    0.5e-3,
		ScanOverheadJ:    8.0e-6,
		ADCSampleBaseJ:   0.5e-6,
		ADCSamplePerBitJ: 0.2e-6,
		MicW:             2.5e-3,
		CPUPerMACJ:       1.0e-9,
		DSPPerMACJ:       6.5e-9,
	}
}

// Device is an MCU instance bound to a trace recorder.
type Device struct {
	Profile PowerProfile
	Trace   *powertrace.Recorder
}

// NewDevice returns an nRF52840 device recording into a fresh trace.
func NewDevice() *Device {
	return &Device{Profile: NRF52840(), Trace: powertrace.New()}
}

// Off records a fully disconnected span (the SolarML idle state).
func (d *Device) Off(seconds float64) {
	d.Trace.Record(powertrace.PhaseOff, seconds, 0)
}

// DeepSleep records a deep-sleep span and returns its energy.
func (d *Device) DeepSleep(seconds float64) float64 {
	d.Trace.Record(powertrace.PhaseDeepSleep, seconds, d.Profile.DeepSleepW)
	return seconds * d.Profile.DeepSleepW
}

// Standby records a RAM-retention standby span and returns its energy.
func (d *Device) Standby(seconds float64) float64 {
	d.Trace.Record(powertrace.PhaseStandby, seconds, d.Profile.StandbyW)
	return seconds * d.Profile.StandbyW
}

// WakeUp records the boot transition and returns its energy.
func (d *Device) WakeUp() float64 {
	d.Trace.Record(powertrace.PhaseWakeUp, d.Profile.WakeUpS, d.Profile.WakeUpW)
	return d.Profile.WakeUpS * d.Profile.WakeUpW
}

// ScanEnergy returns the energy of one tickless scan burst reading
// `channels` channels and quantizing to the given effective resolution:
// the burst overhead, one native-resolution conversion per channel, and a
// per-scan software quantization/packing pass scaling with retained bits.
func (d *Device) ScanEnergy(channels int, bits float64) float64 {
	if bits < 1 {
		bits = 1
	}
	return d.Profile.ScanOverheadJ +
		float64(channels)*d.Profile.ADCSampleBaseJ +
		bits*d.Profile.ADCSamplePerBitJ
}

// SampleGesture records tickless ADC sampling of `channels` solar-cell
// channels at rateHz for `seconds`, quantizing to the given resolution.
// It returns the segment energy.
func (d *Device) SampleGesture(channels int, rateHz float64, seconds float64, bits float64) float64 {
	if channels < 1 || rateHz <= 0 || seconds <= 0 {
		panic(fmt.Sprintf("mcu: invalid gesture sampling (%d ch, %v Hz, %v s)", channels, rateHz, seconds))
	}
	power := d.Profile.TicklessBaseW + rateHz*d.ScanEnergy(channels, bits)
	d.Trace.Record(powertrace.PhaseSampling, seconds, power)
	return seconds * power
}

// SampleAudio records tickless PDM microphone capture for `seconds` and
// returns the segment energy.
func (d *Device) SampleAudio(seconds float64) float64 {
	if seconds <= 0 {
		panic(fmt.Sprintf("mcu: invalid audio sampling duration %v", seconds))
	}
	power := d.Profile.TicklessBaseW + d.Profile.MicW
	d.Trace.Record(powertrace.PhaseSampling, seconds, power)
	return seconds * power
}

// Process records CPU pre-processing work of the given MAC count and
// returns its energy.
func (d *Device) Process(macs int64) float64 {
	if macs < 0 {
		panic("mcu: negative MAC count")
	}
	if macs == 0 {
		return 0
	}
	energy := float64(macs) * d.Profile.CPUPerMACJ
	seconds := energy / d.Profile.ActiveW
	d.Trace.Record(powertrace.PhaseProcessing, seconds, d.Profile.ActiveW)
	return energy
}

// ProcessDSP records front-end DSP work (FFT, filterbank, DCT) of the given
// operation count and returns its energy. DSP ops cost more than plain
// MACs on this core (no double-precision FPU pipeline).
func (d *Device) ProcessDSP(ops int64) float64 {
	if ops < 0 {
		panic("mcu: negative DSP op count")
	}
	if ops == 0 {
		return 0
	}
	energy := float64(ops) * d.Profile.DSPPerMACJ
	seconds := energy / d.Profile.ActiveW
	d.Trace.Record(powertrace.PhaseProcessing, seconds, d.Profile.ActiveW)
	return energy
}

// Infer records a model inference of the given energy (from the layer-wise
// energy model) executed at active power, and returns the energy.
func (d *Device) Infer(energyJ float64) float64 {
	if energyJ < 0 {
		panic("mcu: negative inference energy")
	}
	if energyJ == 0 {
		return 0
	}
	seconds := energyJ / d.Profile.ActiveW
	d.Trace.Record(powertrace.PhaseInference, seconds, d.Profile.ActiveW)
	return energyJ
}
