package mcu

import (
	"math"
	"testing"

	"solarml/internal/powertrace"
)

func TestDeepSleepEnergy(t *testing.T) {
	d := NewDevice()
	e := d.DeepSleep(60)
	want := 60 * d.Profile.DeepSleepW
	if math.Abs(e-want) > 1e-15 {
		t.Fatalf("deep sleep energy %v, want %v", e, want)
	}
	if d.Trace.TotalEnergy() != e {
		t.Fatal("trace must record the same energy")
	}
}

func TestWakeUpEnergy(t *testing.T) {
	d := NewDevice()
	e := d.WakeUp()
	if e <= 0 || e > 1e-3 {
		t.Fatalf("wake-up energy %v J implausible", e)
	}
}

func TestScanEnergyScalesWithBitsAndChannels(t *testing.T) {
	d := NewDevice()
	if d.ScanEnergy(4, 12) <= d.ScanEnergy(4, 4) {
		t.Fatal("higher resolution must cost more per scan")
	}
	if d.ScanEnergy(8, 8) <= d.ScanEnergy(2, 8) {
		t.Fatal("more channels must cost more per scan")
	}
	if d.ScanEnergy(4, 0.5) != d.ScanEnergy(4, 1) {
		t.Fatal("bits must clamp at 1")
	}
}

func TestSampleGestureEnergyScaling(t *testing.T) {
	d := NewDevice()
	e1 := d.SampleGesture(1, 100, 1, 10)
	d2 := NewDevice()
	e2 := d2.SampleGesture(9, 100, 1, 10)
	if e2 <= e1 {
		t.Fatal("more channels must cost more")
	}
	// Channel scaling affects only the per-channel conversion part, not
	// the base power, the scan overhead, or the quantization pass.
	fixed := d.Profile.TicklessBaseW + 100*(d.Profile.ScanOverheadJ+10*d.Profile.ADCSamplePerBitJ)
	adc1 := e1 - fixed
	adc9 := e2 - fixed
	if math.Abs(adc9-9*adc1) > 1e-9 {
		t.Fatalf("conversion energy should scale linearly with channels: %v vs %v", adc9, 9*adc1)
	}
}

func TestSampleGestureRateScaling(t *testing.T) {
	a, b := NewDevice(), NewDevice()
	e1 := a.SampleGesture(4, 50, 2, 10)
	e2 := b.SampleGesture(4, 200, 2, 10)
	if e2 <= e1 {
		t.Fatal("higher rate must cost more")
	}
}

func TestSampleGestureCalibration(t *testing.T) {
	// Paper's Fig 2 gesture scenario: ≈2 s of 9-channel sampling lands in
	// the low-mJ range (E_S ≈ 47% of a ≈8 mJ total).
	d := NewDevice()
	e := d.SampleGesture(9, 100, 2, 10)
	if e < 2e-3 || e > 6e-3 {
		t.Fatalf("gesture sampling energy %.2f mJ outside plausible band", e*1e3)
	}
}

func TestSampleAudioCalibration(t *testing.T) {
	// 1 s of microphone capture ≈ 5 mJ (mic + tickless base).
	d := NewDevice()
	e := d.SampleAudio(1)
	if e < 3e-3 || e > 8e-3 {
		t.Fatalf("audio sampling energy %.2f mJ outside plausible band", e*1e3)
	}
}

func TestProcessEnergyLinearInMACs(t *testing.T) {
	d := NewDevice()
	e1 := d.Process(1_000_000)
	e2 := d.Process(2_000_000)
	if math.Abs(e2-2*e1) > 1e-15 {
		t.Fatalf("process energy must be linear: %v vs %v", e2, 2*e1)
	}
	if d.Process(0) != 0 {
		t.Fatal("zero MACs must be free")
	}
}

func TestInferRecordsModelPhase(t *testing.T) {
	d := NewDevice()
	d.Infer(1.2e-3)
	by := d.Trace.EnergyByCategory()
	if math.Abs(by[powertrace.CatModel]-1.2e-3) > 1e-12 {
		t.Fatalf("E_M = %v", by[powertrace.CatModel])
	}
}

func TestFig2LikeScenarioShares(t *testing.T) {
	// One-minute sleep, wake, 2 s gesture sampling, small preprocessing,
	// ≈1.2 mJ inference: the E_E/E_S/E_M split should resemble Fig 2's
	// 38/47/15 for the gesture task.
	d := NewDevice()
	d.DeepSleep(60)
	d.WakeUp()
	d.SampleGesture(9, 100, 2, 10)
	d.Process(400_000)
	d.Infer(1.2e-3)
	shares := d.Trace.CategoryShares()
	ee := shares[powertrace.CatEvent]
	es := shares[powertrace.CatSensing]
	em := shares[powertrace.CatModel]
	if math.Abs(ee-0.38) > 0.10 {
		t.Fatalf("E_E share %.2f, paper ≈0.38", ee)
	}
	if math.Abs(es-0.47) > 0.10 {
		t.Fatalf("E_S share %.2f, paper ≈0.47", es)
	}
	if math.Abs(em-0.15) > 0.08 {
		t.Fatalf("E_M share %.2f, paper ≈0.15", em)
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	d := NewDevice()
	cases := []func(){
		func() { d.SampleGesture(0, 100, 1, 10) },
		func() { d.SampleGesture(1, 0, 1, 10) },
		func() { d.SampleGesture(1, 100, 0, 10) },
		func() { d.SampleAudio(0) },
		func() { d.Process(-1) },
		func() { d.Infer(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
