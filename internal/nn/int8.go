package nn

import (
	"fmt"
	"math"

	"solarml/internal/bytecodec"
	"solarml/internal/compute"
	"solarml/internal/tensor"
)

// int8.go is the PTQ→integer lowering pass: ConvertInt8 folds a trained
// float network plus cmd/deploy's wbits/abits PTQ configuration into an
// Int8Model — a flat program of quantized ops whose weights are int8, whose
// accumulators are int32, and whose layer boundaries carry precomputed
// requantization parameters (31-bit fixed-point multiplier + shift, see
// compute.QuantizeMultiplier). The executor over this program lives in
// int8exec.go; the serialized form (cmd/deploy -qout → cmd/serve) is the
// int8 payload of the SOLARMDL container.
//
// Quantization scheme: symmetric, zero-point 0 throughout. Weights take one
// scale per output channel (row of the GEMM), activations one scale per
// layer boundary calibrated exactly like the float PTQ pass (maxAbs /
// (2^(abits−1)−1) over a representative batch, with the weights already
// snapped to their grid). Biases are int32 in the accumulator's scale
// s_in·s_w[oc]. BatchNorm folds to a per-channel integer affine
// clamp(rne(x·M_c) + qb_c) whose bias applies after the scale, so a dead
// channel (gamma 0) still lands exactly on its beta constant. The
// classifier head stays in float: logits[j] = acc·s_in·s_w[j] + b[j], which
// costs one multiply per class and spares the logits a destructive final
// rounding. ReLUs following a compute layer fuse into its epilogue as a
// zero lower clamp.

// int8OpKind enumerates the quantized executor's op set.
type int8OpKind int

const (
	opConv int8OpKind = iota
	opDWConv
	opDense
	opDenseLogits
	opMaxPool
	opAvgPool
	opReLU
	opNorm
	numInt8Ops
)

// int8Op is one step of the quantized program. Geometry is per sample;
// buffers carry the batch contiguously (sample-major, NCHW within).
type int8Op struct {
	kind int8OpKind
	relu bool // fused ReLU: requantize with a zero lower clamp

	inC, outC, k, stride, pad int
	inH, inW, outH, outW      int
	in, out                   int // per-sample volumes

	w     []int8  // quantized weights (GEMM row-major, see compute kernels)
	bias  []int32 // accumulator-scale bias (conv/dwconv/dense)
	mult  []int32 // requant multipliers: per channel, or len 1 broadcast
	shift []int32
	// biasPost is the post-scale affine bias of opNorm (output-scale units).
	biasPost []int32
	// deq/biasF are the float head of opDenseLogits: per-class
	// dequantization scale and float bias.
	deq, biasF []float64
}

// Int8Model is a lowered, immutable quantized network: safe for concurrent
// executors (each Int8Executor owns its scratch; the model is read-only).
type Int8Model struct {
	inShape []int
	classes int
	inScale float64 // input quantization scale (boundary 0)
	wbits   int
	abits   int
	arch    string // human-readable provenance (Arch.String())
	ops     []int8Op

	// Per-sample scratch high-water marks, computed by finalize: the
	// executor sizes its inference arena once from these.
	maxAct  int // largest activation volume (incl. the input)
	maxAcc  int // largest conv accumulator volume
	maxCols int // largest conv im2col volume
}

// InShape returns the per-sample input shape.
func (m *Int8Model) InShape() []int { return append([]int(nil), m.inShape...) }

// InVol returns the per-sample input volume (floats per classify instance).
func (m *Int8Model) InVol() int { return shapeVolume(m.inShape) }

// Classes returns the number of output classes.
func (m *Int8Model) Classes() int { return m.classes }

// ArchString returns the source architecture description.
func (m *Int8Model) ArchString() string { return m.arch }

// Bits returns the weight and activation bit widths the model was lowered at.
func (m *Int8Model) Bits() (wbits, abits int) { return m.wbits, m.abits }

// nz substitutes 1 for a dead (zero) scale so folded divisions stay finite;
// a zero scale means the corresponding values are identically zero, so any
// finite substitute is exact.
func nz(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}

// roundClampI32 rounds to nearest even and saturates into int32.
func roundClampI32(v float64) int32 {
	r := math.RoundToEven(v)
	if !(r > math.MinInt32) { // also catches NaN
		return math.MinInt32
	}
	if r > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(r)
}

// quantizeRows snaps data (rows × rowLen, row-major) to a symmetric
// per-row int8 grid: returns the quantized values and one scale per row,
// and writes the dequantized values back into data so calibration runs
// against exactly the weights the integer kernels will use. A zero scale
// marks a dead (all-zero) row.
func quantizeRows(data []float64, rows, rowLen int, levels int32) ([]int8, []float64) {
	q := make([]int8, rows*rowLen)
	scales := make([]float64, rows)
	lv := float64(levels)
	for r := 0; r < rows; r++ {
		row := data[r*rowLen : (r+1)*rowLen]
		var m float64
		for _, v := range row {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		if m == 0 {
			continue
		}
		s := m / lv
		scales[r] = s
		for i, v := range row {
			qv := math.RoundToEven(v / s)
			if qv > lv {
				qv = lv
			}
			if qv < -lv {
				qv = -lv
			}
			q[r*rowLen+i] = int8(qv)
			row[i] = qv * s
		}
	}
	return q, scales
}

// foldRequant builds the per-channel requant parameters mapping an
// accumulator in scale sIn·ws[c] to the sOut output grid, plus the int32
// bias lifted into the accumulator scale.
func foldRequant(sIn, sOut float64, ws, biasF []float64) (bias, mult, shift []int32) {
	n := len(ws)
	bias = make([]int32, n)
	mult = make([]int32, n)
	shift = make([]int32, n)
	for c := 0; c < n; c++ {
		w := nz(ws[c]) // dead row: acc is always 0, substitution keeps the bias alive
		m, s := compute.QuantizeMultiplier(sIn * w / sOut)
		mult[c], shift[c] = m, int32(s)
		if biasF != nil {
			bias[c] = roundClampI32(biasF[c] / (sIn * w))
		}
	}
	return bias, mult, shift
}

// isReLUAt reports whether layer li exists and is a ReLU (fusion probe).
func isReLUAt(layers []Layer, li int) bool {
	if li >= len(layers) {
		return false
	}
	_, ok := layers[li].(*ReLU)
	return ok
}

// ConvertInt8 lowers a trained float network to an Int8Model at the PTQ
// config's bit widths (both ≤ 8: the storage is int8). The network's float
// parameters are left untouched (snapshot/restore around the internal
// weight snapping), so the caller can still run — or destructively PTQ —
// the float model afterwards. calib has shape (N, ...InShape) and
// calibrates the activation grids exactly like ApplyPTQ.
func ConvertInt8(arch *Arch, net *Network, calib *tensor.Tensor, cfg PTQConfig) (*Int8Model, error) {
	if cfg.WeightBits < 2 || cfg.WeightBits > 8 {
		return nil, fmt.Errorf("nn: int8 lowering needs weight bits in [2,8], have %d", cfg.WeightBits)
	}
	if cfg.ActBits < 2 || cfg.ActBits > 8 {
		return nil, fmt.Errorf("nn: int8 lowering needs activation bits in [2,8], have %d", cfg.ActBits)
	}
	if calib == nil || len(calib.Shape) == 0 || calib.Shape[0] < 1 {
		return nil, fmt.Errorf("nn: int8 lowering needs a calibration batch")
	}
	levelsW := int32(1)<<uint(cfg.WeightBits-1) - 1
	levelsA := float64(int32(1)<<uint(cfg.ActBits-1) - 1)

	// Snap weights to their per-row grids (dequantized in place so
	// calibration sees the deployed weights), restoring the float model on
	// every exit path.
	snap := net.SnapshotParams()
	defer net.RestoreParams(snap)
	qw := make(map[int][]int8)
	wsc := make(map[int][]float64)
	for li, l := range net.Layers {
		switch t := l.(type) {
		case *Conv2D:
			qw[li], wsc[li] = quantizeRows(t.W.Value.Data, t.OutC, t.InC*t.K*t.K, levelsW)
		case *DepthwiseConv2D:
			qw[li], wsc[li] = quantizeRows(t.W.Value.Data, t.C, t.K*t.K, levelsW)
		case *Dense:
			qw[li], wsc[li] = quantizeRows(t.W.Value.Data, t.Out, t.In, levelsW)
		}
	}

	// Calibrate boundary maxAbs (input is boundary 0) in inference mode.
	maxs := make([]float64, len(net.Layers)+1)
	total := calib.Shape[0]
	sample := len(calib.Data) / total
	const chunk = 32
	for start := 0; start < total; start += chunk {
		end := start + chunk
		if end > total {
			end = total
		}
		bshape := append([]int{end - start}, net.InShape...)
		x := tensor.FromSlice(calib.Data[start*sample:end*sample], bshape...)
		if m := x.MaxAbs(); m > maxs[0] {
			maxs[0] = m
		}
		for i, l := range net.Layers {
			x = l.Forward(x, false)
			if m := x.MaxAbs(); m > maxs[i+1] {
				maxs[i+1] = m
			}
		}
	}
	scales := make([]float64, len(maxs))
	for i, m := range maxs {
		scales[i] = m / levelsA
	}

	m := &Int8Model{
		inShape: append([]int(nil), net.InShape...),
		classes: arch.Classes,
		inScale: scales[0],
		wbits:   cfg.WeightBits,
		abits:   cfg.ActBits,
		arch:    arch.String(),
	}

	// Walk the layers, emitting ops. sCur is the effective scale of the
	// current activation grid (nz-substituted at every requant boundary so
	// it matches the multipliers actually baked in).
	layers := net.Layers
	shape := append([]int(nil), net.InShape...)
	sCur := nz(scales[0])
	for li := 0; li < len(layers); {
		l := layers[li]
		outShape := l.OutShape(shape)
		inVol, outVol := shapeVolume(shape), shapeVolume(outShape)
		op := int8Op{in: inVol, out: outVol}
		consumed := 1
		// ReLU fusion: a ReLU directly after a requantizing compute layer
		// becomes its epilogue's zero lower clamp.
		fusable := false
		switch l.(type) {
		case *Conv2D, *DepthwiseConv2D, *BatchNorm:
			fusable = true
		case *Dense:
			fusable = li < len(layers)-1
		}
		if fusable && isReLUAt(layers, li+1) {
			op.relu = true
			consumed = 2
		}

		switch t := l.(type) {
		case *Conv2D:
			sOut := nz(scales[li+consumed])
			op.kind = opConv
			op.inC, op.outC, op.k, op.stride, op.pad = t.InC, t.OutC, t.K, t.Stride, t.Pad
			op.inH, op.inW = shape[1], shape[2]
			op.outH, op.outW = outShape[1], outShape[2]
			op.w = qw[li]
			op.bias, op.mult, op.shift = foldRequant(sCur, sOut, wsc[li], t.B.Value.Data)
			sCur = sOut
		case *DepthwiseConv2D:
			sOut := nz(scales[li+consumed])
			op.kind = opDWConv
			op.inC, op.outC, op.k, op.stride, op.pad = t.C, t.C, t.K, t.Stride, t.Pad
			op.inH, op.inW = shape[1], shape[2]
			op.outH, op.outW = outShape[1], outShape[2]
			op.w = qw[li]
			op.bias, op.mult, op.shift = foldRequant(sCur, sOut, wsc[li], t.B.Value.Data)
			sCur = sOut
		case *Dense:
			op.inC, op.outC = t.In, t.Out
			op.w = qw[li]
			if li == len(layers)-1 {
				// Classifier head: float logits, exact for dead rows
				// (deq 0 leaves the bias).
				op.kind = opDenseLogits
				op.deq = make([]float64, t.Out)
				for j, ws := range wsc[li] {
					op.deq[j] = sCur * ws
				}
				op.biasF = append([]float64(nil), t.B.Value.Data...)
			} else {
				sOut := nz(scales[li+consumed])
				op.kind = opDense
				op.bias, op.mult, op.shift = foldRequant(sCur, sOut, wsc[li], t.B.Value.Data)
				sCur = sOut
			}
		case *MaxPool2D:
			// Max commutes with the monotone quantizer: keep the input grid
			// and skip the requant entirely.
			op.kind = opMaxPool
			op.inC, op.outC, op.k = shape[0], shape[0], t.K
			op.inH, op.inW = shape[1], shape[2]
			op.outH, op.outW = outShape[1], outShape[2]
		case *AvgPool2D:
			sOut := nz(scales[li+consumed])
			op.kind = opAvgPool
			op.inC, op.outC, op.k = shape[0], shape[0], t.K
			op.inH, op.inW = shape[1], shape[2]
			op.outH, op.outW = outShape[1], outShape[2]
			mu, sh := compute.QuantizeMultiplier(sCur / (float64(t.K*t.K) * sOut))
			op.mult, op.shift = []int32{mu}, []int32{int32(sh)}
			sCur = sOut
		case *BatchNorm:
			// Integer affine with a post-scale bias: out = clamp(rne(x·M_c)
			// + qb_c), M_c signed (gamma may be negative).
			sOut := nz(scales[li+consumed])
			op.kind = opNorm
			op.inC, op.outC = t.C, t.C
			op.inH, op.inW = shape[1], shape[2]
			op.outH, op.outW = shape[1], shape[2]
			op.mult = make([]int32, t.C)
			op.shift = make([]int32, t.C)
			op.biasPost = make([]int32, t.C)
			for c := 0; c < t.C; c++ {
				a := t.Gamma.Value.Data[c] / math.Sqrt(t.RunVar[c]+t.Eps)
				b := t.Beta.Value.Data[c] - t.RunMean[c]*a
				mu, sh := compute.QuantizeMultiplierSigned(a * sCur / sOut)
				op.mult[c], op.shift[c] = mu, int32(sh)
				op.biasPost[c] = roundClampI32(b / sOut)
			}
			sCur = sOut
		case *ReLU:
			op.kind = opReLU // standalone (not fused): same grid, clamp at 0
		case *Flatten, *Dropout:
			// Memory no-ops at inference: no op emitted.
			shape = outShape
			li += consumed
			continue
		default:
			return nil, fmt.Errorf("nn: int8 lowering: unsupported layer %T", l)
		}
		if op.relu {
			// The fused ReLU is shape-preserving; out stays outVol.
			outShape = layers[li+1].OutShape(outShape)
		}
		m.ops = append(m.ops, op)
		shape = outShape
		li += consumed
	}
	if err := m.finalize(); err != nil {
		return nil, err
	}
	return m, nil
}

// finalize validates the op program (geometry chain, slice lengths, requant
// ranges) and computes the executor's per-sample arena high-water marks. It
// runs after conversion and after decode, doubling as the screening pass
// for untrusted model files.
func (m *Int8Model) finalize() error {
	if len(m.inShape) == 0 || len(m.inShape) > 8 {
		return fmt.Errorf("nn: int8 model: implausible input rank %d", len(m.inShape))
	}
	vol := 1
	for _, d := range m.inShape {
		if d < 1 || d > 1<<16 {
			return fmt.Errorf("nn: int8 model: implausible input dim %d", d)
		}
		vol *= d
		if vol > 1<<24 {
			return fmt.Errorf("nn: int8 model: implausible input volume")
		}
	}
	if m.classes < 2 || m.classes > 1<<16 {
		return fmt.Errorf("nn: int8 model: implausible class count %d", m.classes)
	}
	if m.wbits < 2 || m.wbits > 8 || m.abits < 2 || m.abits > 8 {
		return fmt.Errorf("nn: int8 model: bit widths (%d,%d) outside [2,8]", m.wbits, m.abits)
	}
	if len(m.ops) == 0 || len(m.ops) > 1024 {
		return fmt.Errorf("nn: int8 model: implausible op count %d", len(m.ops))
	}
	if !(m.inScale >= 0) || math.IsInf(m.inScale, 0) {
		return fmt.Errorf("nn: int8 model: invalid input scale %v", m.inScale)
	}
	m.maxAct, m.maxAcc, m.maxCols = vol, 0, 0
	cur := vol
	checkRequant := func(op *int8Op, wantLen int) error {
		if len(op.mult) != wantLen && len(op.mult) != 1 {
			return fmt.Errorf("nn: int8 model: %d requant multipliers, want %d or 1", len(op.mult), wantLen)
		}
		if len(op.shift) != len(op.mult) {
			return fmt.Errorf("nn: int8 model: mult/shift length mismatch")
		}
		for _, s := range op.shift {
			if s < -31 || s > 62 {
				return fmt.Errorf("nn: int8 model: requant shift %d outside [-31,62]", s)
			}
		}
		return nil
	}
	for i := range m.ops {
		op := &m.ops[i]
		if op.kind < 0 || op.kind >= numInt8Ops {
			return fmt.Errorf("nn: int8 model: op %d: unknown kind %d", i, op.kind)
		}
		if op.in != cur {
			return fmt.Errorf("nn: int8 model: op %d: input volume %d, chain carries %d", i, op.in, cur)
		}
		for _, d := range []int{op.inC, op.outC, op.k, op.stride, op.inH, op.inW, op.outH, op.outW} {
			if d < 0 || d > 1<<16 {
				return fmt.Errorf("nn: int8 model: op %d: implausible geometry %d", i, d)
			}
		}
		if op.out < 1 || op.out > 1<<24 || op.in < 1 {
			return fmt.Errorf("nn: int8 model: op %d: implausible volume", i)
		}
		switch op.kind {
		case opConv:
			if op.in != op.inC*op.inH*op.inW || op.out != op.outC*op.outH*op.outW {
				return fmt.Errorf("nn: int8 model: op %d: conv geometry/volume mismatch", i)
			}
			if op.k < 1 || op.stride < 1 || op.pad < 0 ||
				op.outH != convOutDim(op.inH, op.k, op.stride, op.pad) ||
				op.outW != convOutDim(op.inW, op.k, op.stride, op.pad) {
				return fmt.Errorf("nn: int8 model: op %d: bad conv spatial geometry", i)
			}
			if len(op.w) != op.outC*op.inC*op.k*op.k || len(op.bias) != op.outC {
				return fmt.Errorf("nn: int8 model: op %d: conv weight/bias length mismatch", i)
			}
			if err := checkRequant(op, op.outC); err != nil {
				return err
			}
			cols := op.inC * op.k * op.k * op.outH * op.outW
			if cols > m.maxCols {
				m.maxCols = cols
			}
			if op.out > m.maxAcc {
				m.maxAcc = op.out
			}
		case opDWConv:
			if op.inC != op.outC || op.in != op.inC*op.inH*op.inW || op.out != op.outC*op.outH*op.outW {
				return fmt.Errorf("nn: int8 model: op %d: dwconv geometry/volume mismatch", i)
			}
			if op.k < 1 || op.stride < 1 || op.pad < 0 ||
				op.outH != convOutDim(op.inH, op.k, op.stride, op.pad) ||
				op.outW != convOutDim(op.inW, op.k, op.stride, op.pad) {
				return fmt.Errorf("nn: int8 model: op %d: bad dwconv spatial geometry", i)
			}
			if len(op.w) != op.inC*op.k*op.k || len(op.bias) != op.inC {
				return fmt.Errorf("nn: int8 model: op %d: dwconv weight/bias length mismatch", i)
			}
			if err := checkRequant(op, op.inC); err != nil {
				return err
			}
		case opDense:
			if op.in != op.inC || op.out != op.outC || len(op.w) != op.outC*op.inC || len(op.bias) != op.outC {
				return fmt.Errorf("nn: int8 model: op %d: dense geometry mismatch", i)
			}
			if err := checkRequant(op, op.outC); err != nil {
				return err
			}
		case opDenseLogits:
			if op.in != op.inC || op.out != op.outC || op.outC != m.classes ||
				len(op.w) != op.outC*op.inC || len(op.deq) != op.outC || len(op.biasF) != op.outC {
				return fmt.Errorf("nn: int8 model: op %d: logits head geometry mismatch", i)
			}
			if i != len(m.ops)-1 {
				return fmt.Errorf("nn: int8 model: op %d: logits head before the end", i)
			}
		case opMaxPool:
			if op.inC != op.outC || op.k < 1 ||
				op.outH != op.inH/op.k || op.outW != op.inW/op.k ||
				op.in != op.inC*op.inH*op.inW || op.out != op.outC*op.outH*op.outW {
				return fmt.Errorf("nn: int8 model: op %d: maxpool geometry mismatch", i)
			}
		case opAvgPool:
			if op.inC != op.outC || op.k < 1 ||
				op.outH != op.inH/op.k || op.outW != op.inW/op.k ||
				op.in != op.inC*op.inH*op.inW || op.out != op.outC*op.outH*op.outW {
				return fmt.Errorf("nn: int8 model: op %d: avgpool geometry mismatch", i)
			}
			if err := checkRequant(op, 1); err != nil {
				return err
			}
		case opReLU:
			if op.in != op.out {
				return fmt.Errorf("nn: int8 model: op %d: relu must preserve volume", i)
			}
		case opNorm:
			if op.inC != op.outC || op.in != op.out ||
				len(op.biasPost) != op.inC {
				return fmt.Errorf("nn: int8 model: op %d: norm geometry mismatch", i)
			}
			if op.inH*op.inW < 1 || op.in != op.inC*op.inH*op.inW {
				return fmt.Errorf("nn: int8 model: op %d: norm plane mismatch", i)
			}
			if err := checkRequant(op, op.inC); err != nil {
				return err
			}
		}
		if op.in > m.maxAct {
			m.maxAct = op.in
		}
		if op.out > m.maxAct {
			m.maxAct = op.out
		}
		cur = op.out
	}
	last := &m.ops[len(m.ops)-1]
	if last.kind != opDenseLogits {
		return fmt.Errorf("nn: int8 model: program must end in a logits head")
	}
	return nil
}

// WeightBytes returns the serialized int8 weight storage.
func (m *Int8Model) WeightBytes() int64 {
	var n int64
	for i := range m.ops {
		n += int64(len(m.ops[i].w))
	}
	return n
}

// Accuracy evaluates quantized top-1 accuracy through a temporary executor.
func (m *Int8Model) Accuracy(ctx *compute.Context, inputs *tensor.Tensor, labels []int) float64 {
	total := inputs.Shape[0]
	sample := len(inputs.Data) / total
	const chunk = 32
	ex := m.NewExecutor(ctx, chunk)
	correct := 0
	for start := 0; start < total; start += chunk {
		end := start + chunk
		if end > total {
			end = total
		}
		bs := end - start
		logits := ex.Forward(inputs.Data[start*sample:end*sample], bs)
		k := m.classes
		for i := 0; i < bs; i++ {
			best, bi := math.Inf(-1), 0
			for j := 0; j < k; j++ {
				if v := logits[i*k+j]; v > best {
					best, bi = v, j
				}
			}
			if bi == labels[start+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}

// ---- codec ----------------------------------------------------------------

// int8ModelVersion is the int8 payload layout version inside the SOLARMDL
// container (the container carries its own envelope version).
const int8ModelVersion = 1

func appendI32s(b []byte, v []int32) []byte {
	b = bytecodec.AppendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = bytecodec.AppendVarint(b, int64(x))
	}
	return b
}

func appendF64s(b []byte, v []float64) []byte {
	b = bytecodec.AppendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = bytecodec.AppendF64(b, x)
	}
	return b
}

func appendI8s(b []byte, v []int8) []byte {
	raw := make([]byte, len(v))
	for i, x := range v {
		raw[i] = byte(x)
	}
	return bytecodec.AppendBytes(b, raw)
}

const maxCodecList = 1 << 24

func readI32s(r *bytecodec.Reader) []int32 {
	n := r.Uvarint()
	if n > maxCodecList || r.Err() != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.Varint())
	}
	if r.Err() != nil {
		return nil
	}
	return out
}

func readF64s(r *bytecodec.Reader) []float64 {
	n := r.Uvarint()
	if n > maxCodecList || r.Err() != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	if r.Err() != nil {
		return nil
	}
	return out
}

func readI8s(r *bytecodec.Reader) []int8 {
	raw := r.Bytes()
	if r.Err() != nil {
		return nil
	}
	out := make([]int8, len(raw))
	for i, x := range raw {
		out[i] = int8(x)
	}
	return out
}

// appendInt8Model serializes the model (bytecodec varint layout; the
// container adds magic/version/CRC around it).
func appendInt8Model(b []byte, m *Int8Model) ([]byte, error) {
	if err := m.finalize(); err != nil {
		return nil, fmt.Errorf("nn: refusing to serialize invalid int8 model: %w", err)
	}
	b = bytecodec.AppendUvarint(b, int8ModelVersion)
	b = bytecodec.AppendUvarint(b, uint64(len(m.inShape)))
	for _, d := range m.inShape {
		b = bytecodec.AppendUvarint(b, uint64(d))
	}
	b = bytecodec.AppendUvarint(b, uint64(m.classes))
	b = bytecodec.AppendF64(b, m.inScale)
	b = bytecodec.AppendUvarint(b, uint64(m.wbits))
	b = bytecodec.AppendUvarint(b, uint64(m.abits))
	b = bytecodec.AppendString(b, m.arch)
	b = bytecodec.AppendUvarint(b, uint64(len(m.ops)))
	for i := range m.ops {
		op := &m.ops[i]
		b = bytecodec.AppendUvarint(b, uint64(op.kind))
		relu := uint64(0)
		if op.relu {
			relu = 1
		}
		b = bytecodec.AppendUvarint(b, relu)
		for _, d := range []int{op.inC, op.outC, op.k, op.stride, op.pad, op.inH, op.inW, op.outH, op.outW, op.in, op.out} {
			b = bytecodec.AppendUvarint(b, uint64(d))
		}
		b = appendI8s(b, op.w)
		b = appendI32s(b, op.bias)
		b = appendI32s(b, op.mult)
		b = appendI32s(b, op.shift)
		b = appendI32s(b, op.biasPost)
		b = appendF64s(b, op.deq)
		b = appendF64s(b, op.biasF)
	}
	return b, nil
}

// readInt8Model decodes and validates an int8 model payload.
func readInt8Model(payload []byte) (*Int8Model, error) {
	r := bytecodec.NewReader(payload)
	ver := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("nn: int8 model header: %w", err)
	}
	if ver != int8ModelVersion {
		return nil, fmt.Errorf("nn: int8 model payload version %d; this build reads version %d", ver, int8ModelVersion)
	}
	m := &Int8Model{}
	rank := r.Uvarint()
	if rank > 8 {
		return nil, fmt.Errorf("nn: int8 model: implausible input rank %d", rank)
	}
	for i := uint64(0); i < rank; i++ {
		m.inShape = append(m.inShape, int(r.Uvarint()))
	}
	m.classes = int(r.Uvarint())
	m.inScale = r.F64()
	m.wbits = int(r.Uvarint())
	m.abits = int(r.Uvarint())
	m.arch = r.String()
	nOps := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("nn: int8 model header: %w", err)
	}
	if nOps > 1024 {
		return nil, fmt.Errorf("nn: int8 model: implausible op count %d", nOps)
	}
	for i := uint64(0); i < nOps; i++ {
		var op int8Op
		op.kind = int8OpKind(r.Uvarint())
		op.relu = r.Uvarint() != 0
		geo := []*int{&op.inC, &op.outC, &op.k, &op.stride, &op.pad, &op.inH, &op.inW, &op.outH, &op.outW, &op.in, &op.out}
		for _, g := range geo {
			v := r.Uvarint()
			if v > 1<<24 {
				return nil, fmt.Errorf("nn: int8 model: op %d: implausible geometry %d", i, v)
			}
			*g = int(v)
		}
		op.w = readI8s(r)
		op.bias = readI32s(r)
		op.mult = readI32s(r)
		op.shift = readI32s(r)
		op.biasPost = readI32s(r)
		op.deq = readF64s(r)
		op.biasF = readF64s(r)
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("nn: int8 model op %d: %w", i, err)
		}
		m.ops = append(m.ops, op)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("nn: int8 model: %d trailing bytes", r.Len())
	}
	if err := m.finalize(); err != nil {
		return nil, err
	}
	return m, nil
}
