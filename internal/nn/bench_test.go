package nn

import (
	"fmt"
	"math/rand"
	"testing"

	"solarml/internal/compute"
	"solarml/internal/tensor"
)

func benchConvNet(b *testing.B) (*Network, *tensor.Tensor, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	arch := &Arch{
		Input: []int{1, 9, 120},
		Body: []LayerSpec{
			{Kind: KindConv, Out: 8, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindMaxPool, K: 2},
			{Kind: KindConv, Out: 12, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindMaxPool, K: 2},
			{Kind: KindDense, Out: 32},
			{Kind: KindReLU},
		},
		Classes: 10,
	}
	net, err := arch.Build()
	if err != nil {
		b.Fatal(err)
	}
	net.Init(rng)
	x := tensor.New(16, 1, 9, 120)
	x.RandFill(rng, 1)
	y := make([]int, 16)
	for i := range y {
		y[i] = i % 10
	}
	return net, x, y
}

// BenchmarkForwardCNN times one 16-sample inference batch through a
// gesture-sized CNN.
func BenchmarkForwardCNN(b *testing.B) {
	net, x, _ := benchConvNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

// BenchmarkTrainStepCNN times one forward+backward+update minibatch.
func BenchmarkTrainStepCNN(b *testing.B) {
	net, x, y := benchConvNet(b)
	opt := &SGD{LR: 0.01, Momentum: 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		logits := net.Forward(x, true)
		_, grad := CrossEntropy(logits, y)
		for li := len(net.Layers) - 1; li >= 0; li-- {
			grad = net.Layers[li].Backward(grad)
		}
		opt.Step(net.Params())
	}
}

// BenchmarkPTQForward times quantized inference against the float path.
func BenchmarkPTQForward(b *testing.B) {
	net, x, _ := benchConvNet(b)
	ptq, err := ApplyPTQ(net, x, PTQConfig{WeightBits: 8, ActBits: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptq.Forward(x)
	}
}

// BenchmarkMatMulMid times the core GEMM at a NAS-typical size.
func BenchmarkMatMulMid(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.New(64, 256)
	c := tensor.New(256, 64)
	a.RandFill(rng, 1)
	c.RandFill(rng, 1)
	out := tensor.New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, a, c)
	}
}

// benchTrainStepWithCompute is one forward+backward+update minibatch with
// the given compute context installed — the serial-vs-parallel pair below is
// the backend speedup measurement at a NAS-typical network size.
func benchTrainStepWithCompute(b *testing.B, ctx *compute.Context) {
	net, x, y := benchConvNet(b)
	net.SetCompute(ctx)
	opt := &SGD{LR: 0.01, Momentum: 0.9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		logits := net.Forward(x, true)
		_, grad := CrossEntropy(logits, y)
		for li := len(net.Layers) - 1; li >= 0; li-- {
			grad = net.Layers[li].Backward(grad)
		}
		opt.Step(net.Params())
	}
}

// BenchmarkTrainStepCNNBackend compares the compute backends on the same
// training step: serial is the reference, workersN adds kernel workers.
// The backends are bit-identical, so the ratio is pure speedup. (Sub-names
// avoid a trailing -N, which cmd/benchjson would strip as a GOMAXPROCS
// suffix.)
func BenchmarkTrainStepCNNBackend(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		benchTrainStepWithCompute(b, compute.NewContextFor(1, nil))
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			benchTrainStepWithCompute(b, compute.NewContextFor(workers, nil))
		})
	}
}

// benchTrainStepArena is the steady-state Fit minibatch step: arena
// installed, params hoisted, loss scratch and every layer buffer reused.
func benchTrainStepArena(b *testing.B, workers int) {
	net, x, y := benchConvNet(b)
	net.SetCompute(compute.NewContextFor(workers, nil))
	net.SetArena(NewArena(nil))
	params := net.Params()
	opt := &SGD{LR: 0.01, Momentum: 0.9}
	cfg := &TrainConfig{ClipNorm: 5}
	net.trainStep(x, y, params, opt, cfg) // warm the arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.trainStep(x, y, params, opt, cfg)
	}
}

// BenchmarkTrainStepArena measures the allocation-free steady-state training
// step at several kernel worker counts; allocs/op is the headline number
// (the pre-arena step allocated every layer buffer per minibatch).
func BenchmarkTrainStepArena(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			benchTrainStepArena(b, workers)
		})
	}
}
