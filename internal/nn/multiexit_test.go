package nn

import (
	"math/rand"
	"testing"

	"solarml/internal/tensor"
)

// barDataset builds the vertical/horizontal bar task.
func barDataset(rng *rand.Rand, n, side int) (*tensor.Tensor, []int) {
	x := tensor.New(n, 1, side, side)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		pos := rng.Intn(side)
		for j := 0; j < side; j++ {
			if cls == 0 {
				x.Set(1+rng.NormFloat64()*0.15, i, 0, j, pos)
			} else {
				x.Set(1+rng.NormFloat64()*0.15, i, 0, pos, j)
			}
		}
		y[i] = cls
	}
	return x, y
}

func barArch(side int) *Arch {
	return &Arch{
		Input: []int{1, side, side},
		Body: []LayerSpec{
			{Kind: KindConv, Out: 4, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindMaxPool, K: 2}, // exit 0 here (index 2)
			{Kind: KindConv, Out: 8, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindMaxPool, K: 2},
		},
		Classes: 2,
	}
}

func trainedMultiExit(t *testing.T) (*MultiExitNetwork, *tensor.Tensor, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(70))
	x, y := barDataset(rng, 160, 8)
	m, err := NewMultiExit(barArch(8), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	m.Init(rng)
	m.Fit(x, y, FitConfig{Epochs: 20, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 4})
	return m, x, y
}

func TestNewMultiExitStructure(t *testing.T) {
	m, err := NewMultiExit(barArch(8), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumExits() != 2 {
		t.Fatalf("%d exits, want 2", m.NumExits())
	}
	if len(m.Stages[0]) != 3 || len(m.Stages[1]) != 3 {
		t.Fatalf("stage sizes %d/%d", len(m.Stages[0]), len(m.Stages[1]))
	}
}

func TestNewMultiExitValidation(t *testing.T) {
	if _, err := NewMultiExit(barArch(8), []int{5}); err == nil {
		t.Fatal("exit at the last body layer must be rejected (it duplicates the final exit)")
	}
	if _, err := NewMultiExit(barArch(8), []int{3, 3}); err == nil {
		t.Fatal("non-increasing exits must be rejected")
	}
	if _, err := NewMultiExit(barArch(8), []int{-1}); err == nil {
		t.Fatal("negative exit index must be rejected")
	}
}

func TestMultiExitMACsOrdering(t *testing.T) {
	m, err := NewMultiExit(barArch(8), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if m.MACsThroughExit(0) >= m.MACsThroughExit(1) {
		t.Fatal("a deeper exit must cost more MACs")
	}
	byKind := m.MACsByKindThroughExit(1)
	var sum int64
	for _, v := range byKind {
		sum += v
	}
	if sum != m.MACsThroughExit(1) {
		t.Fatal("per-kind breakdown must sum to the total")
	}
}

func TestMultiExitTrainingBothExitsLearn(t *testing.T) {
	m, x, y := trainedMultiExit(t)
	acc0 := m.AccuracyAtExit(x, y, 0)
	acc1 := m.AccuracyAtExit(x, y, 1)
	if acc0 < 0.8 {
		t.Fatalf("early exit accuracy %.3f", acc0)
	}
	if acc1 < 0.8 {
		t.Fatalf("final exit accuracy %.3f", acc1)
	}
}

func TestInferConfidentRouting(t *testing.T) {
	m, x, y := trainedMultiExit(t)
	// τ = 0: everything leaves at exit 0.
	all0 := m.InferConfident(x, 0)
	for _, d := range all0 {
		if d.Exit != 0 {
			t.Fatal("τ=0 must route everything through exit 0")
		}
	}
	// τ > 1: everything reaches the final exit.
	all1 := m.InferConfident(x, 1.01)
	for _, d := range all1 {
		if d.Exit != m.NumExits()-1 {
			t.Fatal("τ>1 must route everything through the final exit")
		}
	}
	// A mid threshold keeps overall accuracy high.
	dec := m.InferConfident(x, 0.9)
	correct := 0
	for i, d := range dec {
		if d.Class == y[i] {
			correct++
		}
		if d.Conf < 0 || d.Conf > 1 {
			t.Fatalf("confidence %v out of range", d.Conf)
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.8 {
		t.Fatalf("confident routing accuracy %.3f", acc)
	}
}

func TestDeepestAffordableExit(t *testing.T) {
	m, _, _ := trainedMultiExit(t)
	// Energy proportional to total MACs.
	energyOf := func(macs map[LayerKind]int64) float64 {
		var total int64
		for _, v := range macs {
			total += v
		}
		return float64(total) * 1e-9
	}
	e0 := energyOf(m.MACsByKindThroughExit(0))
	e1 := energyOf(m.MACsByKindThroughExit(1))
	if got := m.DeepestAffordableExit(e1+1e-12, energyOf); got != 1 {
		t.Fatalf("full budget should afford exit 1, got %d", got)
	}
	if got := m.DeepestAffordableExit((e0+e1)/2, energyOf); got != 0 {
		t.Fatalf("mid budget should afford exit 0, got %d", got)
	}
	if got := m.DeepestAffordableExit(e0/2, energyOf); got != -1 {
		t.Fatalf("tiny budget should afford nothing, got %d", got)
	}
}

func TestMultiExitThreeExits(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	arch := &Arch{
		Input: []int{1, 8, 8},
		Body: []LayerSpec{
			{Kind: KindConv, Out: 4, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU}, // exit 0 (index 1)
			{Kind: KindMaxPool, K: 2},
			{Kind: KindConv, Out: 6, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU}, // exit 1 (index 4)
			{Kind: KindMaxPool, K: 2},
		},
		Classes: 2,
	}
	m, err := NewMultiExit(arch, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumExits() != 3 {
		t.Fatalf("%d exits", m.NumExits())
	}
	m.Init(rng)
	x, y := barDataset(rng, 120, 8)
	m.Fit(x, y, FitConfig{Epochs: 15, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 5})
	// Deeper exits cost more backbone compute; note the *total* through a
	// deeper exit may dip slightly when pooling shrinks its head, so the
	// invariant is against exit 0, not strict monotonicity.
	for k := 1; k < 3; k++ {
		if m.MACsThroughExit(k) <= m.MACsThroughExit(0) {
			t.Fatalf("exit %d should cost more than exit 0", k)
		}
	}
	for k := 0; k < 3; k++ {
		if acc := m.AccuracyAtExit(x, y, k); acc < 0.7 {
			t.Fatalf("exit %d accuracy %.3f", k, acc)
		}
	}
}

func TestMultiExitCustomWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	x, y := barDataset(rng, 100, 8)
	m, err := NewMultiExit(barArch(8), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	m.Init(rng)
	// Weight the final exit only; the early head barely trains.
	m.Fit(x, y, FitConfig{Epochs: 12, BatchSize: 16, LR: 0.05, Momentum: 0.9,
		ExitWeights: []float64{0.01, 0.99}, Seed: 6})
	if acc := m.AccuracyAtExit(x, y, 1); acc < 0.8 {
		t.Fatalf("final exit should train well: %.3f", acc)
	}
}
