package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"solarml/internal/obs"
	"solarml/internal/tensor"
)

func profiledNet() *Network {
	return NewNetwork([]int{1, 8, 8},
		NewConv2D(1, 4, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(4*4*4, 5),
	)
}

// TestForwardProfiledMatchesForward checks the profiled pass is a pure
// observer: identical outputs, one timing per layer, and per-layer MACs
// that re-aggregate into exactly the MACsByKind feature vector the
// layer-wise energy model consumes — so energy predicted from profiled
// layers is byte-identical to energy predicted from the network.
func TestForwardProfiledMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := profiledNet()
	net.Init(rng)
	x := tensor.New(2, 1, 8, 8)
	x.RandFill(rng, 1)

	plain := net.Forward(x.Clone(), false)
	prof, timings := net.ForwardProfiled(x.Clone(), false)
	if len(plain.Data) != len(prof.Data) {
		t.Fatalf("shape mismatch: %d vs %d", len(plain.Data), len(prof.Data))
	}
	for i := range plain.Data {
		if math.Abs(plain.Data[i]-prof.Data[i]) > 1e-12 {
			t.Fatalf("profiled forward diverges at %d: %v vs %v", i, plain.Data[i], prof.Data[i])
		}
	}
	if len(timings) != len(net.Layers) {
		t.Fatalf("%d timings for %d layers", len(timings), len(net.Layers))
	}
	byKind := make(map[LayerKind]int64)
	for i, lt := range timings {
		if lt.Index != i {
			t.Fatalf("timing %d has index %d", i, lt.Index)
		}
		if lt.Forward < 0 {
			t.Fatalf("negative forward time at layer %d", i)
		}
		byKind[lt.Kind] += lt.MACs
	}
	want := net.MACsByKind()
	for k, v := range want {
		if byKind[k] != v {
			t.Fatalf("profiled MACs for %s = %d, MACsByKind says %d", k, byKind[k], v)
		}
	}
	for k, v := range byKind {
		if v != 0 && want[k] != v {
			t.Fatalf("profiled MACs invented %s = %d", k, v)
		}
	}
}

// TestEmitLayerTimings checks the trace shape of the per-layer events.
func TestEmitLayerTimings(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := profiledNet()
	net.Init(rng)
	x := tensor.New(1, 1, 8, 8)
	x.RandFill(rng, 1)
	_, timings := net.ForwardProfiled(x, false)

	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	EmitLayerTimings(rec, timings, 1)
	EmitLayerTimings(nil, timings, 1) // nil recorder is a no-op
	rec.Flush()
	events, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(net.Layers) {
		t.Fatalf("%d events for %d layers", len(events), len(net.Layers))
	}
	if events[0].Name != "nn.layer" || events[0].Str("kind") != "Conv" {
		t.Fatalf("first layer event wrong: %+v", events[0])
	}
}

// TestFitEmitsEpochEvents checks the nn.fit span and per-epoch events.
func TestFitEmitsEpochEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := profiledNet()
	net.Init(rng)
	x := tensor.New(8, 1, 8, 8)
	x.RandFill(rng, 1)
	y := make([]int, 8)
	for i := range y {
		y[i] = i % 5
	}
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	net.Fit(x, y, TrainConfig{Epochs: 3, BatchSize: 4, LR: 0.01, Seed: 1, Obs: rec})
	rec.Flush()
	events, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	epochs, fits := 0, 0
	for _, e := range events {
		switch e.Name {
		case "nn.epoch":
			epochs++
		case "nn.fit":
			fits++
		}
	}
	if epochs != 3 || fits != 1 {
		t.Fatalf("got %d epoch events and %d fit spans, want 3 and 1", epochs, fits)
	}
}
