package nn

import (
	"time"

	"solarml/internal/obs"
	"solarml/internal/tensor"
)

// LayerTiming is one layer's share of a profiled forward pass. The per-kind
// MAC counts paired with wall-clock time are the observable the layer-wise
// inference energy model (E_M = Σ aᵢ·MACsᵢ + b) abstracts, so profiled
// forwards double as a sanity probe for the energymodel coefficients: at
// equal MACs, kinds with heavier per-MAC energy should also run longer on
// the scalar substrate.
type LayerTiming struct {
	// Index is the layer's position in the network.
	Index int
	// Kind is the layer type (energy-model feature).
	Kind LayerKind
	// MACs is the layer's per-sample MAC count.
	MACs int64
	// Forward is the wall-clock time of the layer's forward call.
	Forward time.Duration
}

// ForwardProfiled runs a forward pass like Forward while timing every layer.
// It is meant for telemetry and model-validation probes, not the training
// hot loop — the per-layer clock reads cost a few hundred nanoseconds.
func (n *Network) ForwardProfiled(x *tensor.Tensor, train bool) (*tensor.Tensor, []LayerTiming) {
	timings := make([]LayerTiming, len(n.Layers))
	s := n.InShape
	for i, l := range n.Layers {
		t0 := time.Now()
		x = l.Forward(x, train)
		timings[i] = LayerTiming{Index: i, Kind: l.Kind(), MACs: l.MACs(s), Forward: time.Since(t0)}
		s = l.OutShape(s)
	}
	return x, timings
}

// EmitLayerTimings records one nn.layer event per profiled layer under the
// given recorder (no-op when rec is nil), tagging each with its kind, MACs,
// and forward-pass nanoseconds.
func EmitLayerTimings(rec *obs.Recorder, timings []LayerTiming, batch int) {
	if rec == nil {
		return
	}
	for _, lt := range timings {
		rec.Event("nn.layer",
			obs.Int("index", lt.Index),
			obs.Str("kind", lt.Kind.String()),
			obs.Int64("macs", lt.MACs),
			obs.Int("batch", batch),
			obs.Int64("forward_ns", lt.Forward.Nanoseconds()))
	}
}
