package nn

import (
	"fmt"
	"math"

	"solarml/internal/tensor"
)

// SnapshotParams copies every trainable parameter value, so callers can
// restore a network after destructive operations (post-training
// quantization, pruning experiments, warm restarts).
func (n *Network) SnapshotParams() [][]float64 {
	params := n.Params()
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Value.Data...)
	}
	return out
}

// RestoreParams writes a snapshot back into the network.
func (n *Network) RestoreParams(snap [][]float64) {
	params := n.Params()
	if len(snap) != len(params) {
		panic(fmt.Sprintf("nn: snapshot has %d tensors, network has %d", len(snap), len(params)))
	}
	for i, p := range params {
		if len(snap[i]) != len(p.Value.Data) {
			panic(fmt.Sprintf("nn: snapshot tensor %d has %d values, want %d", i, len(snap[i]), len(p.Value.Data)))
		}
		copy(p.Value.Data, snap[i])
	}
}

// PTQConfig selects the deployment precision for post-training
// quantization: symmetric per-tensor weights and per-boundary activations.
type PTQConfig struct {
	WeightBits int
	ActBits    int
}

// PTQ is a post-training-quantized view of a trained network: weights are
// snapped to a WeightBits grid in place and activations are clamped and
// snapped to calibrated ActBits grids at every layer boundary during
// inference — the numerical behaviour of an integer tinyML deployment.
type PTQ struct {
	Config PTQConfig
	net    *Network
	// actScales holds one symmetric scale per layer boundary (including
	// the input), calibrated from representative data.
	actScales []float64
}

// quantizeTensorSym snaps t to a symmetric b-bit grid and returns the scale.
func quantizeTensorSym(t *tensor.Tensor, bits int) float64 {
	maxAbs := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	levels := float64(int64(1)<<uint(bits-1)) - 1
	scale := maxAbs / levels
	for i, v := range t.Data {
		q := math.Round(v / scale)
		if q > levels {
			q = levels
		}
		if q < -levels {
			q = -levels
		}
		t.Data[i] = q * scale
	}
	return scale
}

// quantizeActivations clamps and snaps a batch tensor to the grid defined
// by scale and bits.
func quantizeActivations(t *tensor.Tensor, scale float64, bits int) {
	if scale == 0 {
		return
	}
	levels := float64(int64(1)<<uint(bits-1)) - 1
	for i, v := range t.Data {
		q := math.Round(v / scale)
		if q > levels {
			q = levels
		}
		if q < -levels {
			q = -levels
		}
		t.Data[i] = q * scale
	}
}

// maxAbs returns the largest magnitude in the tensor.
func maxAbs(t *tensor.Tensor) float64 { return t.MaxAbs() }

// ApplyPTQ quantizes the network's weights in place (snapshot first if the
// float model must survive) and calibrates activation scales on the given
// representative batch. calib has shape (N, ...InShape).
func ApplyPTQ(net *Network, calib *tensor.Tensor, cfg PTQConfig) (*PTQ, error) {
	if cfg.WeightBits < 2 || cfg.WeightBits > 32 {
		return nil, fmt.Errorf("nn: weight bits %d outside [2,32]", cfg.WeightBits)
	}
	if cfg.ActBits < 2 || cfg.ActBits > 32 {
		return nil, fmt.Errorf("nn: activation bits %d outside [2,32]", cfg.ActBits)
	}
	if calib == nil || calib.Shape[0] < 1 {
		return nil, fmt.Errorf("nn: PTQ needs a calibration batch")
	}
	for _, p := range net.Params() {
		quantizeTensorSym(p.Value, cfg.WeightBits)
	}
	// Calibrate activation ranges with the quantized weights, boundary by
	// boundary (input counts as boundary 0).
	scales := make([]float64, len(net.Layers)+1)
	levels := float64(int64(1)<<uint(cfg.ActBits-1)) - 1
	x := calib
	scales[0] = maxAbs(x) / levels
	for i, l := range net.Layers {
		x = l.Forward(x, false)
		scales[i+1] = maxAbs(x) / levels
	}
	return &PTQ{Config: cfg, net: net, actScales: scales}, nil
}

// Forward runs quantized inference: activations are snapped to the
// calibrated grid at every boundary.
func (p *PTQ) Forward(x *tensor.Tensor) *tensor.Tensor {
	x = x.Clone()
	quantizeActivations(x, p.actScales[0], p.Config.ActBits)
	for i, l := range p.net.Layers {
		x = l.Forward(x, false)
		// The final logits stay unquantized: argmax needs no dequant and
		// deployments read them from the int32 accumulator anyway.
		if i < len(p.net.Layers)-1 {
			quantizeActivations(x, p.actScales[i+1], p.Config.ActBits)
		}
	}
	return x
}

// Accuracy evaluates quantized top-1 accuracy.
func (p *PTQ) Accuracy(inputs *tensor.Tensor, labels []int) float64 {
	total := inputs.Shape[0]
	sample := len(inputs.Data) / total
	correct := 0
	const chunk = 32
	for start := 0; start < total; start += chunk {
		end := start + chunk
		if end > total {
			end = total
		}
		bs := end - start
		bshape := append([]int{bs}, p.net.InShape...)
		bx := tensor.FromSlice(inputs.Data[start*sample:end*sample], bshape...)
		logits := p.Forward(bx)
		k := logits.Shape[1]
		for i := 0; i < bs; i++ {
			best, bi := math.Inf(-1), 0
			for j := 0; j < k; j++ {
				if v := logits.Data[i*k+j]; v > best {
					best, bi = v, j
				}
			}
			if bi == labels[start+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}

// WeightBytes returns the deployed weight storage at the quantized width
// (sub-byte widths are bit-packed on the MCU flash).
func (p *PTQ) WeightBytes() int64 {
	bits := p.net.ParamCount() * int64(p.Config.WeightBits)
	return (bits + 7) / 8
}
