package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"solarml/internal/tensor"
)

func trainedConvModel(t *testing.T) (*Arch, *Network, *tensor.Tensor, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(60))
	const n, side = 80, 6
	x := tensor.New(n, 1, side, side)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		pos := rng.Intn(side)
		for j := 0; j < side; j++ {
			if cls == 0 {
				x.Set(1, i, 0, j, pos)
			} else {
				x.Set(1, i, 0, pos, j)
			}
		}
		y[i] = cls
	}
	arch := &Arch{Input: []int{1, side, side}, Body: []LayerSpec{
		{Kind: KindConv, Out: 4, K: 3, Stride: 1, Pad: 1},
		{Kind: KindNorm},
		{Kind: KindReLU},
		{Kind: KindMaxPool, K: 2},
		{Kind: KindDense, Out: 8},
		{Kind: KindReLU},
	}, Classes: 2}
	net, err := arch.Build()
	if err != nil {
		t.Fatal(err)
	}
	net.Init(rng)
	net.Fit(x, y, TrainConfig{Epochs: 10, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 3})
	return arch, net, x, y
}

func TestSaveLoadRoundTrip(t *testing.T) {
	arch, net, x, y := trainedConvModel(t)
	want := net.Accuracy(x, y)
	var buf bytes.Buffer
	if err := SaveModel(&buf, arch, net); err != nil {
		t.Fatal(err)
	}
	arch2, net2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if arch2.String() != arch.String() {
		t.Fatalf("arch mismatch: %s vs %s", arch2, arch)
	}
	if got := net2.Accuracy(x, y); got != want {
		t.Fatalf("loaded model accuracy %.3f, want %.3f (must be bit-exact)", got, want)
	}
	// Logits must match exactly.
	probe := tensor.FromSlice(x.Data[:36], 1, 1, 6, 6)
	a := net.Forward(probe, false)
	b := net2.Forward(probe, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("loaded model must reproduce logits bit-exactly")
		}
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, _, err := LoadModel(bytes.NewReader([]byte("XXXX1234"))); err == nil {
		t.Fatal("bad magic must fail")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	arch, net, _, _ := trainedConvModel(t)
	var buf bytes.Buffer
	if err := SaveModel(&buf, arch, net); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 8, 20, len(full) / 2, len(full) - 4} {
		if _, _, err := LoadModel(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	arch, net, _, _ := trainedConvModel(t)
	var buf bytes.Buffer
	if err := SaveModel(&buf, arch, net); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // corrupt version
	if _, _, err := LoadModel(bytes.NewReader(data)); err == nil {
		t.Fatal("wrong version must fail")
	}
}

func TestBatchNormStatsSerialized(t *testing.T) {
	// BatchNorm running statistics must ship with the model — without
	// them, inference-mode logits would not reproduce.
	arch := &Arch{Input: []int{1, 4, 4}, Body: []LayerSpec{
		{Kind: KindConv, Out: 2, K: 3, Stride: 1, Pad: 1},
		{Kind: KindNorm},
	}, Classes: 2}
	net, err := arch.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	net.Init(rng)
	// Drive the running statistics away from their Init values.
	x := tensor.New(8, 1, 4, 4)
	x.RandFill(rng, 1)
	for i := range x.Data {
		x.Data[i] += 3
	}
	for i := 0; i < 20; i++ {
		net.Forward(x, true)
	}
	var saved *BatchNorm
	for _, l := range net.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			saved = bn
		}
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, arch, net); err != nil {
		t.Fatal(err)
	}
	_, net2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range net2.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			for i := range bn.RunMean {
				if bn.RunMean[i] != saved.RunMean[i] || bn.RunVar[i] != saved.RunVar[i] {
					t.Fatal("loaded BatchNorm statistics must match the saved model")
				}
			}
		}
	}
}

func TestEstimateParamsMatchesBuild(t *testing.T) {
	archs := []*Arch{
		{Input: []int{1, 8, 8}, Body: []LayerSpec{
			{Kind: KindConv, Out: 4, K: 3, Stride: 1, Pad: 1},
			{Kind: KindNorm},
			{Kind: KindReLU},
			{Kind: KindMaxPool, K: 2},
			{Kind: KindDWConv, K: 3, Stride: 1, Pad: 1},
			{Kind: KindDense, Out: 16},
			{Kind: KindReLU},
		}, Classes: 10},
		{Input: []int{3, 12, 12}, Body: []LayerSpec{
			{Kind: KindAvgPool, K: 2},
			{Kind: KindConv, Out: 8, K: 5, Stride: 1, Pad: 2},
		}, Classes: 4},
		{Input: []int{16}, Body: []LayerSpec{
			{Kind: KindDense, Out: 32},
			{Kind: KindDropout},
		}, Classes: 2},
	}
	for i, arch := range archs {
		if arch.Body[len(arch.Body)-1].Kind == KindDropout {
			// materialize cannot build a zero-probability literal spec;
			// replace with ReLU for the Build side comparison.
			arch.Body[len(arch.Body)-1] = LayerSpec{Kind: KindReLU}
		}
		est, err := arch.EstimateParams()
		if err != nil {
			t.Fatalf("arch %d: %v", i, err)
		}
		net, err := arch.Build()
		if err != nil {
			t.Fatalf("arch %d: %v", i, err)
		}
		if est != net.ParamCount() {
			t.Fatalf("arch %d: estimate %d vs built %d", i, est, net.ParamCount())
		}
	}
}

func TestEstimateParamsRejectsBadGeometry(t *testing.T) {
	bad := []*Arch{
		{Input: []int{1, 4, 4}, Body: []LayerSpec{{Kind: KindConv, Out: 4, K: 3, Stride: 0, Pad: 1}}, Classes: 2},
		{Input: []int{1, 4, 4}, Body: []LayerSpec{{Kind: KindConv, Out: 0, K: 3, Stride: 1, Pad: 1}}, Classes: 2},
		{Input: []int{1, 2, 2}, Body: []LayerSpec{{Kind: KindMaxPool, K: 4}}, Classes: 2},
		{Input: []int{16}, Body: []LayerSpec{{Kind: KindConv, Out: 4, K: 3, Stride: 1, Pad: 1}}, Classes: 2},
	}
	for i, arch := range bad {
		if _, err := arch.EstimateParams(); err == nil {
			t.Fatalf("bad arch %d accepted", i)
		}
	}
}
