package nn

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Model files carry the architecture description plus all trained
// parameters, so a search winner can be stored and redeployed without
// retraining. Format (little endian):
//
//	magic "SMLM" | version u32 | input dims | classes | body specs | params
const (
	modelMagic   = "SMLM"
	modelVersion = 1
)

// SaveModel writes the architecture and the network's trained parameters.
// net must have been built from arch (the layer structure must match).
func SaveModel(w io.Writer, arch *Arch, net *Network) error {
	if _, err := io.WriteString(w, modelMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU32 := func(v uint32) error { return binary.Write(w, le, v) }
	if err := writeU32(modelVersion); err != nil {
		return err
	}
	if err := writeU32(uint32(len(arch.Input))); err != nil {
		return err
	}
	for _, d := range arch.Input {
		if err := writeU32(uint32(d)); err != nil {
			return err
		}
	}
	if err := writeU32(uint32(arch.Classes)); err != nil {
		return err
	}
	if err := writeU32(uint32(len(arch.Body))); err != nil {
		return err
	}
	for _, s := range arch.Body {
		for _, v := range []int{int(s.Kind), s.Out, s.K, s.Stride, s.Pad} {
			if err := binary.Write(w, le, int32(v)); err != nil {
				return err
			}
		}
	}
	params := net.Params()
	if err := writeU32(uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeU32(uint32(p.Value.Len())); err != nil {
			return err
		}
		if err := binary.Write(w, le, p.Value.Data); err != nil {
			return err
		}
	}
	// BatchNorm running statistics are inference state, not trainable
	// parameters, but logits only reproduce when they ship with the model.
	var norms []*BatchNorm
	for _, l := range net.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			norms = append(norms, bn)
		}
	}
	if err := writeU32(uint32(len(norms))); err != nil {
		return err
	}
	for _, bn := range norms {
		if err := writeU32(uint32(bn.C)); err != nil {
			return err
		}
		if err := binary.Write(w, le, bn.RunMean); err != nil {
			return err
		}
		if err := binary.Write(w, le, bn.RunVar); err != nil {
			return err
		}
	}
	return nil
}

// LoadModel reads a model file, rebuilds the network, and restores its
// parameters.
func LoadModel(r io.Reader) (*Arch, *Network, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(magic) != modelMagic {
		return nil, nil, fmt.Errorf("nn: bad magic %q", magic)
	}
	le := binary.LittleEndian
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, le, &v)
		return v, err
	}
	ver, err := readU32()
	if err != nil {
		return nil, nil, err
	}
	if ver != modelVersion {
		return nil, nil, fmt.Errorf("nn: unsupported model version %d", ver)
	}
	nDims, err := readU32()
	if err != nil {
		return nil, nil, err
	}
	if nDims > 8 {
		return nil, nil, fmt.Errorf("nn: implausible input rank %d", nDims)
	}
	arch := &Arch{}
	volume := int64(1)
	for i := uint32(0); i < nDims; i++ {
		d, err := readU32()
		if err != nil {
			return nil, nil, err
		}
		if d == 0 || d > 1<<16 {
			return nil, nil, fmt.Errorf("nn: implausible input dimension %d", d)
		}
		volume *= int64(d)
		if volume > 1<<24 {
			return nil, nil, fmt.Errorf("nn: implausible input volume")
		}
		arch.Input = append(arch.Input, int(d))
	}
	classes, err := readU32()
	if err != nil {
		return nil, nil, err
	}
	if classes < 2 || classes > 1<<16 {
		return nil, nil, fmt.Errorf("nn: implausible class count %d", classes)
	}
	arch.Classes = int(classes)
	nBody, err := readU32()
	if err != nil {
		return nil, nil, err
	}
	if nBody > 1024 {
		return nil, nil, fmt.Errorf("nn: implausible body length %d", nBody)
	}
	for i := uint32(0); i < nBody; i++ {
		var vals [5]int32
		for j := range vals {
			if err := binary.Read(r, le, &vals[j]); err != nil {
				return nil, nil, err
			}
		}
		for _, v := range vals[1:] {
			if v < 0 || v > 1<<16 {
				return nil, nil, fmt.Errorf("nn: implausible layer field %d", v)
			}
		}
		if vals[0] < 0 || vals[0] >= int32(numLayerKinds) {
			return nil, nil, fmt.Errorf("nn: unknown layer kind %d", vals[0])
		}
		arch.Body = append(arch.Body, LayerSpec{
			Kind: LayerKind(vals[0]), Out: int(vals[1]), K: int(vals[2]),
			Stride: int(vals[3]), Pad: int(vals[4]),
		})
	}
	// Screen the description arithmetically before allocating anything:
	// a corrupted file must not trigger multi-gigabyte builds.
	est, err := arch.EstimateParams()
	if err != nil {
		return nil, nil, fmt.Errorf("nn: screening architecture: %w", err)
	}
	if est > 1<<24 {
		return nil, nil, fmt.Errorf("nn: implausible parameter count %d", est)
	}
	net, err := arch.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("nn: rebuilding architecture: %w", err)
	}
	nParams, err := readU32()
	if err != nil {
		return nil, nil, err
	}
	params := net.Params()
	if int(nParams) != len(params) {
		return nil, nil, fmt.Errorf("nn: file has %d param tensors, architecture needs %d", nParams, len(params))
	}
	for i, p := range params {
		n, err := readU32()
		if err != nil {
			return nil, nil, err
		}
		if int(n) != p.Value.Len() {
			return nil, nil, fmt.Errorf("nn: param %d has %d values, want %d", i, n, p.Value.Len())
		}
		if err := binary.Read(r, le, p.Value.Data); err != nil {
			return nil, nil, err
		}
	}
	var norms []*BatchNorm
	for _, l := range net.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			norms = append(norms, bn)
		}
	}
	nNorms, err := readU32()
	if err != nil {
		return nil, nil, err
	}
	if int(nNorms) != len(norms) {
		return nil, nil, fmt.Errorf("nn: file has %d norm layers, architecture has %d", nNorms, len(norms))
	}
	for i, bn := range norms {
		c, err := readU32()
		if err != nil {
			return nil, nil, err
		}
		if int(c) != bn.C {
			return nil, nil, fmt.Errorf("nn: norm %d has %d channels, want %d", i, c, bn.C)
		}
		if err := binary.Read(r, le, bn.RunMean); err != nil {
			return nil, nil, err
		}
		if err := binary.Read(r, le, bn.RunVar); err != nil {
			return nil, nil, err
		}
	}
	return arch, net, nil
}
