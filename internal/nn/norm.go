package nn

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/compute"
	"solarml/internal/tensor"
)

// BatchNorm normalizes per channel over the batch and spatial dimensions,
// then applies a learned scale (gamma) and shift (beta). In inference mode
// it uses exponential running statistics accumulated during training.
type BatchNorm struct {
	C       int
	Eps     float64
	Mom     float64 // running-statistics momentum
	Gamma   *Param  // (C)
	Beta    *Param  // (C)
	RunMean []float64
	RunVar  []float64

	ctx   *compute.Context
	arena *Arena

	lastXHat *tensor.Tensor
	lastStd  []float64
	lastN    int // batch × spatial count per channel

	// Current-dispatch operands + cached range closures (see ReLU).
	curX, curOut, curGrad, curDX []float64
	curTrain                     bool
	curN, curC, curPlane         int
	curM                         float64
	fwdFn, bwdFn                 func(c0, c1 int)
}

// NewBatchNorm returns a batch-normalization layer for c channels.
func NewBatchNorm(c int) *BatchNorm {
	bn := &BatchNorm{
		C: c, Eps: 1e-5, Mom: 0.9,
		Gamma:   newParam(c),
		Beta:    newParam(c),
		RunMean: make([]float64, c),
		RunVar:  make([]float64, c),
	}
	return bn
}

// Kind implements Layer.
func (b *BatchNorm) Kind() LayerKind { return KindNorm }

// SetCompute implements ComputeUser.
func (b *BatchNorm) SetCompute(ctx *compute.Context) { b.ctx = ctx }

// SetArena implements ArenaUser.
func (b *BatchNorm) SetArena(a *Arena) { b.arena = a }

// OutShape implements Layer.
func (b *BatchNorm) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != b.C {
		panic(fmt.Sprintf("nn: BatchNorm expects (C=%d,H,W), got %v", b.C, in))
	}
	out := make([]int, len(in))
	copy(out, in)
	return out
}

// Init sets gamma to one, beta to zero and unit running variance.
func (b *BatchNorm) Init(rng *rand.Rand) {
	b.Gamma.Value.Fill(1)
	b.Beta.Value.Zero()
	for i := range b.RunVar {
		b.RunVar[i] = 1
		b.RunMean[i] = 0
	}
}

// Forward implements Layer. Channels partition the work: every channel's
// statistics are reduced by a single worker in ascending order and its
// activations touch disjoint strided planes, so the fan-out reproduces the
// serial bits at any worker count.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	plane := h * w
	out := b.arena.tensor(b, slotOut, n, c, h, w)
	if train {
		b.lastXHat = b.arena.tensor(b, slotXHat, n, c, h, w)
		b.lastStd = b.arena.floats(b, slotStd, c)
		b.lastN = n * plane
	}
	b.curX, b.curOut = x.Data, out.Data
	b.curTrain, b.curN, b.curC, b.curPlane = train, n, c, plane
	if b.fwdFn == nil {
		b.fwdFn = b.forwardChannels
	}
	b.ctx.ParallelFor(c, 6*n*plane, b.fwdFn)
	return out
}

// forwardChannels runs the per-channel normalization for channels [c0, c1).
func (b *BatchNorm) forwardChannels(c0, c1 int) {
	x, out := b.curX, b.curOut
	train, n, c, plane := b.curTrain, b.curN, b.curC, b.curPlane
	for ch := c0; ch < c1; ch++ {
		var mean, variance float64
		if train {
			s := 0.0
			for i := 0; i < n; i++ {
				d := x[(i*c+ch)*plane : (i*c+ch+1)*plane]
				for _, v := range d {
					s += v
				}
			}
			mean = s / float64(n*plane)
			s = 0.0
			for i := 0; i < n; i++ {
				d := x[(i*c+ch)*plane : (i*c+ch+1)*plane]
				for _, v := range d {
					dv := v - mean
					s += dv * dv
				}
			}
			variance = s / float64(n*plane)
			b.RunMean[ch] = b.Mom*b.RunMean[ch] + (1-b.Mom)*mean
			b.RunVar[ch] = b.Mom*b.RunVar[ch] + (1-b.Mom)*variance
		} else {
			mean, variance = b.RunMean[ch], b.RunVar[ch]
		}
		std := math.Sqrt(variance + b.Eps)
		g, bb := b.Gamma.Value.Data[ch], b.Beta.Value.Data[ch]
		for i := 0; i < n; i++ {
			src := x[(i*c+ch)*plane : (i*c+ch+1)*plane]
			dst := out[(i*c+ch)*plane : (i*c+ch+1)*plane]
			for j, v := range src {
				xh := (v - mean) / std
				if train {
					b.lastXHat.Data[(i*c+ch)*plane+j] = xh
				}
				dst[j] = g*xh + bb
			}
		}
		if train {
			b.lastStd[ch] = std
		}
	}
}

// Backward implements Layer using the standard batch-norm gradient; the
// channel partition mirrors Forward, so gradient sums keep serial order.
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c := grad.Shape[0], grad.Shape[1]
	plane := grad.Shape[2] * grad.Shape[3]
	dx := b.arena.tensor(b, slotDX, grad.Shape...)
	b.curGrad, b.curDX = grad.Data, dx.Data
	b.curM, b.curN, b.curC, b.curPlane = float64(b.lastN), n, c, plane
	if b.bwdFn == nil {
		b.bwdFn = b.backwardChannels
	}
	b.ctx.ParallelFor(c, 8*n*plane, b.bwdFn)
	return dx
}

// backwardChannels computes the gradient for channels [c0, c1).
func (b *BatchNorm) backwardChannels(c0, c1 int) {
	grad, dx := b.curGrad, b.curDX
	m, n, c, plane := b.curM, b.curN, b.curC, b.curPlane
	for ch := c0; ch < c1; ch++ {
		g := b.Gamma.Value.Data[ch]
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			off := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				dy := grad[off+j]
				sumDy += dy
				sumDyXhat += dy * b.lastXHat.Data[off+j]
			}
		}
		b.Beta.Grad.Data[ch] += sumDy
		b.Gamma.Grad.Data[ch] += sumDyXhat
		inv := g / (m * b.lastStd[ch])
		for i := 0; i < n; i++ {
			off := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				dy := grad[off+j]
				xh := b.lastXHat.Data[off+j]
				dx[off+j] = inv * (m*dy - sumDy - xh*sumDyXhat)
			}
		}
	}
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// MACs implements Layer: one scale and one shift per element.
func (b *BatchNorm) MACs(in []int) int64 {
	return 2 * int64(shapeVolume(in))
}
