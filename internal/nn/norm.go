package nn

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/tensor"
)

// BatchNorm normalizes per channel over the batch and spatial dimensions,
// then applies a learned scale (gamma) and shift (beta). In inference mode
// it uses exponential running statistics accumulated during training.
type BatchNorm struct {
	C       int
	Eps     float64
	Mom     float64 // running-statistics momentum
	Gamma   *Param  // (C)
	Beta    *Param  // (C)
	RunMean []float64
	RunVar  []float64

	lastXHat *tensor.Tensor
	lastStd  []float64
	lastN    int // batch × spatial count per channel
}

// NewBatchNorm returns a batch-normalization layer for c channels.
func NewBatchNorm(c int) *BatchNorm {
	bn := &BatchNorm{
		C: c, Eps: 1e-5, Mom: 0.9,
		Gamma:   newParam(c),
		Beta:    newParam(c),
		RunMean: make([]float64, c),
		RunVar:  make([]float64, c),
	}
	return bn
}

// Kind implements Layer.
func (b *BatchNorm) Kind() LayerKind { return KindNorm }

// OutShape implements Layer.
func (b *BatchNorm) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != b.C {
		panic(fmt.Sprintf("nn: BatchNorm expects (C=%d,H,W), got %v", b.C, in))
	}
	out := make([]int, len(in))
	copy(out, in)
	return out
}

// Init sets gamma to one, beta to zero and unit running variance.
func (b *BatchNorm) Init(rng *rand.Rand) {
	b.Gamma.Value.Fill(1)
	b.Beta.Value.Zero()
	for i := range b.RunVar {
		b.RunVar[i] = 1
		b.RunMean[i] = 0
	}
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	plane := h * w
	out := tensor.New(n, c, h, w)
	if train {
		b.lastXHat = tensor.New(n, c, h, w)
		b.lastStd = make([]float64, c)
		b.lastN = n * plane
	}
	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if train {
			s := 0.0
			for i := 0; i < n; i++ {
				d := x.Data[(i*c+ch)*plane : (i*c+ch+1)*plane]
				for _, v := range d {
					s += v
				}
			}
			mean = s / float64(n*plane)
			s = 0.0
			for i := 0; i < n; i++ {
				d := x.Data[(i*c+ch)*plane : (i*c+ch+1)*plane]
				for _, v := range d {
					dv := v - mean
					s += dv * dv
				}
			}
			variance = s / float64(n*plane)
			b.RunMean[ch] = b.Mom*b.RunMean[ch] + (1-b.Mom)*mean
			b.RunVar[ch] = b.Mom*b.RunVar[ch] + (1-b.Mom)*variance
		} else {
			mean, variance = b.RunMean[ch], b.RunVar[ch]
		}
		std := math.Sqrt(variance + b.Eps)
		g, bb := b.Gamma.Value.Data[ch], b.Beta.Value.Data[ch]
		for i := 0; i < n; i++ {
			src := x.Data[(i*c+ch)*plane : (i*c+ch+1)*plane]
			dst := out.Data[(i*c+ch)*plane : (i*c+ch+1)*plane]
			for j, v := range src {
				xh := (v - mean) / std
				if train {
					b.lastXHat.Data[(i*c+ch)*plane+j] = xh
				}
				dst[j] = g*xh + bb
			}
		}
		if train {
			b.lastStd[ch] = std
		}
	}
	return out
}

// Backward implements Layer using the standard batch-norm gradient.
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c := grad.Shape[0], grad.Shape[1]
	plane := grad.Shape[2] * grad.Shape[3]
	dx := tensor.New(grad.Shape...)
	m := float64(b.lastN)
	for ch := 0; ch < c; ch++ {
		g := b.Gamma.Value.Data[ch]
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			off := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				dy := grad.Data[off+j]
				sumDy += dy
				sumDyXhat += dy * b.lastXHat.Data[off+j]
			}
		}
		b.Beta.Grad.Data[ch] += sumDy
		b.Gamma.Grad.Data[ch] += sumDyXhat
		inv := g / (m * b.lastStd[ch])
		for i := 0; i < n; i++ {
			off := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				dy := grad.Data[off+j]
				xh := b.lastXHat.Data[off+j]
				dx.Data[off+j] = inv * (m*dy - sumDy - xh*sumDyXhat)
			}
		}
	}
	return dx
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// MACs implements Layer: one scale and one shift per element.
func (b *BatchNorm) MACs(in []int) int64 {
	return 2 * int64(shapeVolume(in))
}
