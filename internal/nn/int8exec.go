package nn

import (
	"fmt"

	"solarml/internal/compute"
)

// int8exec.go is the inference-side counterpart of the training Arena: an
// Int8Executor owns every buffer a forward pass touches — two int8
// activation ping-pong planes, the conv im2col and int32 accumulator
// scratch, and the float logits — all sized ONCE from the model's
// per-sample high-water marks times the executor's batch capacity. The
// compute dispatchers (Int8Conv2D etc.) cache their range closures after
// the first call, so the steady-state Forward performs zero heap
// allocations at any batch size up to the capacity. One executor serves one
// goroutine; the underlying Int8Model is immutable and shared freely.

// inferArena is the preallocated buffer set of one executor. Unlike the
// training Arena it is not keyed or zero-filled per acquire: the op
// program's volume chain (validated by finalize) guarantees every op writes
// the exact region the next op reads, and the only buffer needing a clear
// (im2col padding) is cleared by the conv kernel itself.
type inferArena struct {
	actA, actB []int8    // activation ping-pong planes (maxBatch × maxAct)
	cols       []int8    // conv im2col scratch (maxBatch × maxCols)
	acc        []int32   // conv GEMM accumulators (maxBatch × maxAcc)
	logits     []float64 // classifier output (maxBatch × classes)
}

// Int8Executor runs a quantized model's op program over a fixed-capacity
// inference arena.
type Int8Executor struct {
	m        *Int8Model
	ctx      *compute.Context
	maxBatch int
	hi       int32 // activation clamp: 2^(abits−1)−1

	arena inferArena

	// Kernel dispatchers (each caches its fan-out closures internally).
	quant compute.Int8Quantize
	conv  compute.Int8Conv2D
	dw    compute.Int8DWConv2D
	dense compute.Int8Dense

	// Elementwise dispatch state + cached closures (see the ReLU layer for
	// the idiom: operands travel through fields, the closure is allocated
	// once).
	curOp          *int8Op
	curSrc, curDst []int8
	poolFn         func(b0, b1 int)
	avgFn          func(b0, b1 int)
	reluFn         func(i0, i1 int)
	normFn         func(b0, b1 int)
}

// NewExecutor builds an executor with capacity for maxBatch samples. ctx
// may be nil (serial execution); pass a pooled context to spread the GEMMs
// over workers.
func (m *Int8Model) NewExecutor(ctx *compute.Context, maxBatch int) *Int8Executor {
	if maxBatch < 1 {
		maxBatch = 1
	}
	e := &Int8Executor{
		m:        m,
		ctx:      ctx,
		maxBatch: maxBatch,
		hi:       int32(1)<<uint(m.abits-1) - 1,
	}
	e.arena.actA = make([]int8, maxBatch*m.maxAct)
	e.arena.actB = make([]int8, maxBatch*m.maxAct)
	if m.maxCols > 0 {
		e.arena.cols = make([]int8, maxBatch*m.maxCols)
		e.arena.acc = make([]int32, maxBatch*m.maxAcc)
	}
	e.arena.logits = make([]float64, maxBatch*m.classes)
	return e
}

// MaxBatch returns the executor's batch capacity.
func (e *Int8Executor) MaxBatch() int { return e.maxBatch }

// Model returns the executor's (shared, immutable) model.
func (e *Int8Executor) Model() *Int8Model { return e.m }

// lowClamp returns the saturation floor for an op: zero with a fused ReLU,
// symmetric −hi otherwise.
func (e *Int8Executor) lowClamp(op *int8Op) int32 {
	if op.relu {
		return 0
	}
	return -e.hi
}

// Forward classifies n samples (x holds n·InVol floats, sample-major) and
// returns the float logits (n × classes), valid until the next Forward.
// Steady state allocates nothing.
func (e *Int8Executor) Forward(x []float64, n int) []float64 {
	if n < 1 || n > e.maxBatch {
		panic(fmt.Sprintf("nn: Int8Executor batch %d outside [1,%d]", n, e.maxBatch))
	}
	m := e.m
	inVol := m.InVol()
	if len(x) < n*inVol {
		panic(fmt.Sprintf("nn: Int8Executor input %d floats, need %d", len(x), n*inVol))
	}
	cur, nxt := e.arena.actA, e.arena.actB
	e.quant.Run(e.ctx, cur[:n*inVol], x[:n*inVol], m.inScale, e.hi)
	for i := range m.ops {
		op := &m.ops[i]
		src := cur[:n*op.in]
		switch op.kind {
		case opConv:
			e.conv.Run(e.ctx, nxt[:n*op.out], src, op.w, op.bias, op.mult, op.shift,
				e.arena.cols, e.arena.acc,
				n, op.inC, op.inH, op.inW, op.outC, op.k, op.stride, op.pad,
				e.lowClamp(op), e.hi)
		case opDWConv:
			e.dw.Run(e.ctx, nxt[:n*op.out], src, op.w, op.bias, op.mult, op.shift,
				n, op.inC, op.inH, op.inW, op.k, op.stride, op.pad,
				e.lowClamp(op), e.hi)
		case opDense:
			e.dense.Run(e.ctx, nxt[:n*op.out], src, op.w, op.bias, op.mult, op.shift,
				n, op.inC, op.outC, e.lowClamp(op), e.hi)
		case opDenseLogits:
			e.dense.RunLogits(e.ctx, e.arena.logits[:n*m.classes], src, op.w,
				op.biasF, op.deq, n, op.inC, op.outC)
			return e.arena.logits[:n*m.classes]
		case opMaxPool:
			// Method values are taken inside the nil check only: binding
			// e.maxPoolBlocks at a call site would allocate the closure on
			// every Forward.
			e.curOp, e.curSrc, e.curDst = op, src, nxt[:n*op.out]
			if e.poolFn == nil {
				e.poolFn = e.maxPoolBlocks
			}
			e.ctx.ParallelFor(n*op.inC, 2*op.outH*op.outW*op.k*op.k, e.poolFn)
		case opAvgPool:
			e.curOp, e.curSrc, e.curDst = op, src, nxt[:n*op.out]
			if e.avgFn == nil {
				e.avgFn = e.avgPoolBlocks
			}
			e.ctx.ParallelFor(n*op.inC, 2*op.outH*op.outW*op.k*op.k, e.avgFn)
		case opReLU:
			e.curOp, e.curSrc, e.curDst = op, src, nxt[:n*op.out]
			if e.reluFn == nil {
				e.reluFn = e.reluRange
			}
			e.ctx.ParallelFor(n*op.in, 1, e.reluFn)
		case opNorm:
			e.curOp, e.curSrc, e.curDst = op, src, nxt[:n*op.out]
			if e.normFn == nil {
				e.normFn = e.normBlocks
			}
			e.ctx.ParallelFor(n*op.inC, 4*op.inH*op.inW, e.normFn)
		}
		cur, nxt = nxt, cur
	}
	panic("nn: int8 program did not end in a logits head") // finalize forbids this
}

func (e *Int8Executor) maxPoolBlocks(b0, b1 int) {
	op := e.curOp
	h, w, k := op.inH, op.inW, op.k
	oh, ow := op.outH, op.outW
	for blk := b0; blk < b1; blk++ {
		src := e.curSrc[blk*h*w:]
		dst := e.curDst[blk*oh*ow:]
		if k == 2 {
			// The overwhelmingly common window: four compares, two rows.
			for oy := 0; oy < oh; oy++ {
				r0 := src[(oy*2)*w:]
				r1 := src[(oy*2+1)*w:]
				drow := dst[oy*ow : oy*ow+ow]
				for ox := 0; ox < ow; ox++ {
					best := r0[2*ox]
					if v := r0[2*ox+1]; v > best {
						best = v
					}
					if v := r1[2*ox]; v > best {
						best = v
					}
					if v := r1[2*ox+1]; v > best {
						best = v
					}
					drow[ox] = best
				}
			}
			continue
		}
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := int8(-128)
				for ky := 0; ky < k; ky++ {
					row := src[(oy*k+ky)*w+ox*k:]
					for kx := 0; kx < k; kx++ {
						if v := row[kx]; v > best {
							best = v
						}
					}
				}
				dst[oy*ow+ox] = best
			}
		}
	}
}

func (e *Int8Executor) avgPoolBlocks(b0, b1 int) {
	op := e.curOp
	h, w, k := op.inH, op.inW, op.k
	oh, ow := op.outH, op.outW
	mult, shift := op.mult[0], int(op.shift[0])
	lo := e.lowClamp(op)
	for blk := b0; blk < b1; blk++ {
		src := e.curSrc[blk*h*w:]
		dst := e.curDst[blk*oh*ow:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc int32
				for ky := 0; ky < k; ky++ {
					row := src[(oy*k+ky)*w+ox*k:]
					for kx := 0; kx < k; kx++ {
						acc += int32(row[kx])
					}
				}
				// The 1/K² fold lives in the multiplier, so the sum
				// requantizes exactly like a GEMM accumulator.
				dst[oy*ow+ox] = compute.RequantizeRNE(acc, mult, shift, lo, e.hi)
			}
		}
	}
}

func (e *Int8Executor) reluRange(i0, i1 int) {
	src, dst := e.curSrc, e.curDst
	for i := i0; i < i1; i++ {
		v := src[i]
		if v < 0 {
			v = 0
		}
		dst[i] = v
	}
}

func (e *Int8Executor) normBlocks(b0, b1 int) {
	op := e.curOp
	plane := op.inH * op.inW
	c := op.inC
	lo := e.lowClamp(op)
	for blk := b0; blk < b1; blk++ {
		ch := blk % c
		mult, shift := op.mult[ch], int(op.shift[ch])
		bias := op.biasPost[ch]
		src := e.curSrc[blk*plane : (blk+1)*plane]
		dst := e.curDst[blk*plane : (blk+1)*plane]
		for i, v := range src {
			dst[i] = compute.RequantizeAffineRNE(int32(v), mult, shift, bias, lo, e.hi)
		}
	}
}
