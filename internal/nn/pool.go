package nn

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/compute"
	"solarml/internal/tensor"
)

// MaxPool2D applies K×K max pooling with stride equal to K (non-overlapping),
// the configuration used throughout the paper's search space.
type MaxPool2D struct {
	K int

	ctx                 *compute.Context
	arena               *Arena
	lastArg             []int // flat input index chosen per output element
	lastC, lastH, lastW int

	// Current-dispatch operands + cached range closures (see ReLU).
	curX, curOut, curGrad, curDX []float64
	fwdFn, bwdFn                 func(b0, b1 int)
}

// NewMaxPool2D returns a max-pooling layer with window and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k} }

// Kind implements Layer.
func (p *MaxPool2D) Kind() LayerKind { return KindMaxPool }

// SetCompute implements ComputeUser.
func (p *MaxPool2D) SetCompute(ctx *compute.Context) { p.ctx = ctx }

// SetArena implements ArenaUser.
func (p *MaxPool2D) SetArena(a *Arena) { p.arena = a }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: MaxPool expects (C,H,W), got %v", in))
	}
	oh, ow := in[1]/p.K, in[2]/p.K
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: MaxPool output collapsed for input %v window %d", in, p.K))
	}
	return []int{in[0], oh, ow}
}

// Init implements Layer (no parameters).
func (p *MaxPool2D) Init(rng *rand.Rand) {}

// forwardBlocks pools (sample, channel) blocks [b0, b1).
func (p *MaxPool2D) forwardBlocks(b0, b1 int) {
	h, w := p.lastH, p.lastW
	oh, ow := h/p.K, w/p.K
	span := oh * ow
	x, out, arg := p.curX, p.curOut, p.lastArg
	for blk := b0; blk < b1; blk++ {
		plane := x[blk*h*w:]
		oi := blk * span
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best, bi := math.Inf(-1), 0
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						idx := (oy*p.K+ky)*w + ox*p.K + kx
						if plane[idx] > best {
							best, bi = plane[idx], idx
						}
					}
				}
				out[oi] = best
				arg[oi] = blk*h*w + bi
				oi++
			}
		}
	}
}

// backwardBlocks scatters gradients for blocks [b0, b1).
func (p *MaxPool2D) backwardBlocks(b0, b1 int) {
	span := (p.lastH / p.K) * (p.lastW / p.K)
	grad, dx, arg := p.curGrad, p.curDX, p.lastArg
	for oi := b0 * span; oi < b1*span; oi++ {
		dx[arg[oi]] += grad[oi]
	}
}

// Forward implements Layer. Each (sample, channel) block owns the disjoint
// output range [blk·oh·ow, (blk+1)·oh·ow), so the fan-out is bit-identical
// to the serial loop at any worker count.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/p.K, w/p.K
	out := p.arena.tensor(p, slotOut, n, c, oh, ow)
	p.lastC, p.lastH, p.lastW = c, h, w
	p.lastArg = p.arena.intsBuf(p, slotArg, n*c*oh*ow)
	p.curX, p.curOut = x.Data, out.Data
	if p.fwdFn == nil {
		p.fwdFn = p.forwardBlocks
	}
	p.ctx.ParallelFor(n*c, oh*ow*p.K*p.K, p.fwdFn)
	return out
}

// Backward implements Layer: routes each output gradient to the argmax
// input. Block blk's argmax indices all land in input plane blk, so the
// scatter partitions disjointly by block.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	c, h, w := p.lastC, p.lastH, p.lastW
	span := (h / p.K) * (w / p.K)
	dx := p.arena.tensor(p, slotDX, n, c, h, w)
	p.curGrad, p.curDX = grad.Data, dx.Data
	if p.bwdFn == nil {
		p.bwdFn = p.backwardBlocks
	}
	p.ctx.ParallelFor(n*c, 2*span, p.bwdFn)
	return dx
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// MACs implements Layer: one comparison per window element per output,
// counted as MAC-equivalents as in the paper's layer-wise model.
func (p *MaxPool2D) MACs(in []int) int64 {
	oh, ow := in[1]/p.K, in[2]/p.K
	return int64(in[0]) * int64(oh) * int64(ow) * int64(p.K) * int64(p.K)
}

// AvgPool2D applies K×K average pooling with stride K.
type AvgPool2D struct {
	K int

	ctx                 *compute.Context
	arena               *Arena
	lastC, lastH, lastW int

	// Current-dispatch operands + cached range closures (see ReLU).
	curX, curOut, curGrad, curDX []float64
	fwdFn, bwdFn                 func(b0, b1 int)
}

// NewAvgPool2D returns an average-pooling layer with window and stride k.
func NewAvgPool2D(k int) *AvgPool2D { return &AvgPool2D{K: k} }

// Kind implements Layer.
func (p *AvgPool2D) Kind() LayerKind { return KindAvgPool }

// SetCompute implements ComputeUser.
func (p *AvgPool2D) SetCompute(ctx *compute.Context) { p.ctx = ctx }

// SetArena implements ArenaUser.
func (p *AvgPool2D) SetArena(a *Arena) { p.arena = a }

// OutShape implements Layer.
func (p *AvgPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: AvgPool expects (C,H,W), got %v", in))
	}
	oh, ow := in[1]/p.K, in[2]/p.K
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: AvgPool output collapsed for input %v window %d", in, p.K))
	}
	return []int{in[0], oh, ow}
}

// Init implements Layer (no parameters).
func (p *AvgPool2D) Init(rng *rand.Rand) {}

// forwardBlocks averages (sample, channel) blocks [b0, b1).
func (p *AvgPool2D) forwardBlocks(b0, b1 int) {
	h, w := p.lastH, p.lastW
	oh, ow := h/p.K, w/p.K
	span := oh * ow
	inv := 1.0 / float64(p.K*p.K)
	x, out := p.curX, p.curOut
	for blk := b0; blk < b1; blk++ {
		plane := x[blk*h*w:]
		oi := blk * span
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						s += plane[(oy*p.K+ky)*w+ox*p.K+kx]
					}
				}
				out[oi] = s * inv
				oi++
			}
		}
	}
}

// backwardBlocks spreads gradients for blocks [b0, b1).
func (p *AvgPool2D) backwardBlocks(b0, b1 int) {
	h, w := p.lastH, p.lastW
	oh, ow := h/p.K, w/p.K
	span := oh * ow
	inv := 1.0 / float64(p.K*p.K)
	grad, dx := p.curGrad, p.curDX
	for blk := b0; blk < b1; blk++ {
		plane := dx[blk*h*w:]
		oi := blk * span
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := grad[oi] * inv
				oi++
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						plane[(oy*p.K+ky)*w+ox*p.K+kx] += g
					}
				}
			}
		}
	}
}

// Forward implements Layer; (sample, channel) blocks fan out disjointly.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/p.K, w/p.K
	out := p.arena.tensor(p, slotOut, n, c, oh, ow)
	p.lastC, p.lastH, p.lastW = c, h, w
	p.curX, p.curOut = x.Data, out.Data
	if p.fwdFn == nil {
		p.fwdFn = p.forwardBlocks
	}
	p.ctx.ParallelFor(n*c, oh*ow*p.K*p.K, p.fwdFn)
	return out
}

// Backward implements Layer: spreads each output gradient uniformly; block
// blk only touches input plane blk, so the fan-out stays disjoint.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	c, h, w := p.lastC, p.lastH, p.lastW
	oh, ow := h/p.K, w/p.K
	dx := p.arena.tensor(p, slotDX, n, c, h, w)
	p.curGrad, p.curDX = grad.Data, dx.Data
	if p.bwdFn == nil {
		p.bwdFn = p.backwardBlocks
	}
	p.ctx.ParallelFor(n*c, 2*oh*ow*p.K*p.K, p.bwdFn)
	return dx
}

// Params implements Layer.
func (p *AvgPool2D) Params() []*Param { return nil }

// MACs implements Layer: one add per window element per output.
func (p *AvgPool2D) MACs(in []int) int64 {
	oh, ow := in[1]/p.K, in[2]/p.K
	return int64(in[0]) * int64(oh) * int64(ow) * int64(p.K) * int64(p.K)
}
