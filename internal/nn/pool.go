package nn

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/tensor"
)

// MaxPool2D applies K×K max pooling with stride equal to K (non-overlapping),
// the configuration used throughout the paper's search space.
type MaxPool2D struct {
	K int

	lastArg []int // flat input index chosen per output element
	lastIn  []int
}

// NewMaxPool2D returns a max-pooling layer with window and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k} }

// Kind implements Layer.
func (p *MaxPool2D) Kind() LayerKind { return KindMaxPool }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: MaxPool expects (C,H,W), got %v", in))
	}
	oh, ow := in[1]/p.K, in[2]/p.K
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: MaxPool output collapsed for input %v window %d", in, p.K))
	}
	return []int{in[0], oh, ow}
}

// Init implements Layer (no parameters).
func (p *MaxPool2D) Init(rng *rand.Rand) {}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/p.K, w/p.K
	out := tensor.New(n, c, oh, ow)
	p.lastIn = []int{c, h, w}
	p.lastArg = make([]int, n*c*oh*ow)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(i*c+ch)*h*w:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best, bi := math.Inf(-1), 0
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							idx := (oy*p.K+ky)*w + ox*p.K + kx
							if plane[idx] > best {
								best, bi = plane[idx], idx
							}
						}
					}
					out.Data[oi] = best
					p.lastArg[oi] = (i*c+ch)*h*w + bi
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer: routes each output gradient to the argmax input.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	c, h, w := p.lastIn[0], p.lastIn[1], p.lastIn[2]
	dx := tensor.New(n, c, h, w)
	for oi, src := range p.lastArg {
		dx.Data[src] += grad.Data[oi]
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// MACs implements Layer: one comparison per window element per output,
// counted as MAC-equivalents as in the paper's layer-wise model.
func (p *MaxPool2D) MACs(in []int) int64 {
	oh, ow := in[1]/p.K, in[2]/p.K
	return int64(in[0]) * int64(oh) * int64(ow) * int64(p.K) * int64(p.K)
}

// AvgPool2D applies K×K average pooling with stride K.
type AvgPool2D struct {
	K      int
	lastIn []int
}

// NewAvgPool2D returns an average-pooling layer with window and stride k.
func NewAvgPool2D(k int) *AvgPool2D { return &AvgPool2D{K: k} }

// Kind implements Layer.
func (p *AvgPool2D) Kind() LayerKind { return KindAvgPool }

// OutShape implements Layer.
func (p *AvgPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: AvgPool expects (C,H,W), got %v", in))
	}
	oh, ow := in[1]/p.K, in[2]/p.K
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: AvgPool output collapsed for input %v window %d", in, p.K))
	}
	return []int{in[0], oh, ow}
}

// Init implements Layer (no parameters).
func (p *AvgPool2D) Init(rng *rand.Rand) {}

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/p.K, w/p.K
	out := tensor.New(n, c, oh, ow)
	p.lastIn = []int{c, h, w}
	inv := 1.0 / float64(p.K*p.K)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(i*c+ch)*h*w:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							s += plane[(oy*p.K+ky)*w+ox*p.K+kx]
						}
					}
					out.Data[oi] = s * inv
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer: spreads each output gradient uniformly.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	c, h, w := p.lastIn[0], p.lastIn[1], p.lastIn[2]
	oh, ow := h/p.K, w/p.K
	dx := tensor.New(n, c, h, w)
	inv := 1.0 / float64(p.K*p.K)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := dx.Data[(i*c+ch)*h*w:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := grad.Data[oi] * inv
					oi++
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							plane[(oy*p.K+ky)*w+ox*p.K+kx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (p *AvgPool2D) Params() []*Param { return nil }

// MACs implements Layer: one add per window element per output.
func (p *AvgPool2D) MACs(in []int) int64 {
	oh, ow := in[1]/p.K, in[2]/p.K
	return int64(in[0]) * int64(oh) * int64(ow) * int64(p.K) * int64(p.K)
}
