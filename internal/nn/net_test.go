package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"solarml/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 1+rng.Intn(5), 2+rng.Intn(6)
		logits := tensor.New(n, k)
		logits.RandFill(rng, 10)
		p := Softmax(logits)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < k; j++ {
				v := p.Data[i*k+j]
				if v < 0 || v > 1 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.New(2, 5)
	a.RandFill(rng, 3)
	b := a.Clone()
	for i := range b.Data {
		b.Data[i] += 100
	}
	pa, pb := Softmax(a), Softmax(b)
	for i := range pa.Data {
		if math.Abs(pa.Data[i]-pb.Data[i]) > 1e-9 {
			t.Fatal("softmax must be shift-invariant per row")
		}
	}
}

func TestMACAccountingKnownValues(t *testing.T) {
	// Conv: OutC·OH·OW·InC·K² = 8·6·6·1·9 = 2592 on 8×8 input, valid padding.
	conv := NewConv2D(1, 8, 3, 1, 0)
	if got := conv.MACs([]int{1, 8, 8}); got != 2592 {
		t.Fatalf("Conv MACs = %d, want 2592", got)
	}
	dense := NewDense(100, 10)
	if got := dense.MACs([]int{100}); got != 1000 {
		t.Fatalf("Dense MACs = %d, want 1000", got)
	}
	dw := NewDepthwiseConv2D(4, 3, 1, 1)
	// C·OH·OW·K² = 4·8·8·9 = 2304 with same padding on 8×8.
	if got := dw.MACs([]int{4, 8, 8}); got != 2304 {
		t.Fatalf("DWConv MACs = %d, want 2304", got)
	}
	mp := NewMaxPool2D(2)
	// C·OH·OW·K² = 4·4·4·4 = 256.
	if got := mp.MACs([]int{4, 8, 8}); got != 256 {
		t.Fatalf("MaxPool MACs = %d, want 256", got)
	}
	bn := NewBatchNorm(4)
	if got := bn.MACs([]int{4, 8, 8}); got != 512 {
		t.Fatalf("Norm MACs = %d, want 512", got)
	}
}

func TestNetworkMACsByKind(t *testing.T) {
	arch := &Arch{
		Input: []int{1, 8, 8},
		Body: []LayerSpec{
			{Kind: KindConv, Out: 4, K: 3, Stride: 1, Pad: 1},
			{Kind: KindNorm},
			{Kind: KindReLU},
			{Kind: KindMaxPool, K: 2},
		},
		Classes: 10,
	}
	net, err := arch.Build()
	if err != nil {
		t.Fatal(err)
	}
	byKind := net.MACsByKind()
	if byKind[KindConv] != 4*8*8*1*9 {
		t.Fatalf("Conv MACs = %d", byKind[KindConv])
	}
	if byKind[KindNorm] != 2*4*8*8 {
		t.Fatalf("Norm MACs = %d", byKind[KindNorm])
	}
	if byKind[KindMaxPool] != 4*4*4*4 {
		t.Fatalf("MaxPool MACs = %d", byKind[KindMaxPool])
	}
	// Classifier head: Dense(4·4·4 → 10).
	if byKind[KindDense] != 64*10 {
		t.Fatalf("Dense MACs = %d", byKind[KindDense])
	}
	var sum int64
	for _, v := range byKind {
		sum += v
	}
	if net.TotalMACs() != sum {
		t.Fatal("TotalMACs must equal the sum over kinds")
	}
}

func TestMemoryBytesMonotonicInBits(t *testing.T) {
	arch := &Arch{
		Input:   []int{1, 8, 8},
		Body:    []LayerSpec{{Kind: KindConv, Out: 4, K: 3, Stride: 1, Pad: 1}},
		Classes: 4,
	}
	net, err := arch.Build()
	if err != nil {
		t.Fatal(err)
	}
	m8 := net.MemoryBytes(8, 8)
	m32 := net.MemoryBytes(32, 8)
	if m32 <= m8 {
		t.Fatalf("wider weights must cost more RAM: %d vs %d", m32, m8)
	}
	if net.PeakActivation() < 4*8*8 {
		t.Fatalf("peak activation %d too small", net.PeakActivation())
	}
}

func TestArchBuildRejectsCollapsedShapes(t *testing.T) {
	arch := &Arch{
		Input: []int{1, 4, 4},
		Body: []LayerSpec{
			{Kind: KindMaxPool, K: 2},
			{Kind: KindMaxPool, K: 2},
			{Kind: KindMaxPool, K: 2}, // 1×1 input, pool no longer fits
		},
		Classes: 3,
	}
	if err := arch.Validate(); err == nil {
		t.Fatal("expected validation error for collapsed spatial shape")
	}
}

func TestArchBuildRejectsConvAfterDense(t *testing.T) {
	arch := &Arch{
		Input: []int{1, 8, 8},
		Body: []LayerSpec{
			{Kind: KindDense, Out: 16},
			{Kind: KindConv, Out: 4, K: 3, Stride: 1, Pad: 1},
		},
		Classes: 3,
	}
	if err := arch.Validate(); err == nil {
		t.Fatal("expected validation error for conv after dense")
	}
}

func TestArchCloneIsDeep(t *testing.T) {
	a := &Arch{Input: []int{1, 4, 4}, Body: []LayerSpec{{Kind: KindReLU}}, Classes: 2}
	b := a.Clone()
	b.Body[0].Kind = KindNorm
	b.Input[0] = 9
	if a.Body[0].Kind != KindReLU || a.Input[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

// Training sanity: a tiny MLP must separate two Gaussian blobs.
func TestFitLearnsSeparableBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		cx := -1.0
		if cls == 1 {
			cx = 1.0
		}
		x.Data[i*2] = cx + rng.NormFloat64()*0.3
		x.Data[i*2+1] = -cx + rng.NormFloat64()*0.3
		y[i] = cls
	}
	net := NewNetwork([]int{2}, NewDense(2, 8), NewReLU(), NewDense(8, 2))
	net.Init(rng)
	net.Fit(x, y, TrainConfig{Epochs: 30, BatchSize: 16, LR: 0.1, Momentum: 0.9, Seed: 1})
	if acc := net.Accuracy(x, y); acc < 0.95 {
		t.Fatalf("MLP failed to learn blobs: accuracy %.2f", acc)
	}
}

// Training sanity: a small CNN must learn a vertical-vs-horizontal bar task.
func TestFitLearnsBarOrientation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const n, side = 120, 8
	x := tensor.New(n, 1, side, side)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		pos := rng.Intn(side)
		for j := 0; j < side; j++ {
			if cls == 0 {
				x.Set(1+rng.NormFloat64()*0.1, i, 0, j, pos) // vertical bar
			} else {
				x.Set(1+rng.NormFloat64()*0.1, i, 0, pos, j) // horizontal bar
			}
		}
		y[i] = cls
	}
	arch := &Arch{
		Input: []int{1, side, side},
		Body: []LayerSpec{
			{Kind: KindConv, Out: 4, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindMaxPool, K: 2},
		},
		Classes: 2,
	}
	net, err := arch.Build()
	if err != nil {
		t.Fatal(err)
	}
	net.Init(rng)
	net.Fit(x, y, TrainConfig{Epochs: 15, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 2})
	if acc := net.Accuracy(x, y); acc < 0.9 {
		t.Fatalf("CNN failed bar task: accuracy %.2f", acc)
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	bn := NewBatchNorm(1)
	bn.Init(rng)
	x := tensor.New(8, 1, 2, 2)
	x.RandFill(rng, 1)
	for i := range x.Data {
		x.Data[i] += 5 // shifted distribution
	}
	for i := 0; i < 50; i++ {
		bn.Forward(x, true)
	}
	// Inference output on the same data should now be roughly normalized.
	out := bn.Forward(x, false)
	if m := out.Mean(); math.Abs(m) > 0.5 {
		t.Fatalf("inference-mode mean %.3f, want ≈0", m)
	}
}

func TestSGDStepMovesDownhill(t *testing.T) {
	p := newParam(1)
	p.Value.Data[0] = 1.0
	p.Grad.Data[0] = 2.0 // dL/dw > 0 → w must decrease
	opt := &SGD{LR: 0.1}
	opt.Step([]*Param{p})
	if p.Value.Data[0] >= 1.0 {
		t.Fatalf("SGD moved uphill: %v", p.Value.Data[0])
	}
}

func TestLayerKindStrings(t *testing.T) {
	want := map[LayerKind]string{
		KindConv: "Conv", KindDWConv: "DWConv", KindDense: "Dense",
		KindMaxPool: "MaxPool", KindAvgPool: "AvgPool", KindNorm: "Norm",
		KindReLU: "ReLU", KindFlatten: "Flatten",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind %d String = %q, want %q", k, k.String(), s)
		}
	}
	if len(ComputeKinds()) != 6 {
		t.Fatalf("ComputeKinds = %v", ComputeKinds())
	}
}
