package nn

import (
	"fmt"
	"math/rand"

	"solarml/internal/compute"
	"solarml/internal/tensor"
)

// Dropout zeroes a random fraction of activations during training (inverted
// dropout: survivors are scaled by 1/(1−p) so inference needs no change).
// It carries no MACs and is a no-op in inference mode. Not part of the
// Table II search space; available for hand-built training recipes.
type Dropout struct {
	// P is the drop probability in [0, 1).
	P float64

	ctx   *compute.Context
	arena *Arena
	rng   *rand.Rand
	mask  []float64

	// Backward operands + cached range closure (see ReLU).
	curGrad, curDX []float64
	bwdFn          func(i0, i1 int)
}

// NewDropout returns a dropout layer with the given drop probability.
func NewDropout(p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v outside [0,1)", p))
	}
	return &Dropout{P: p}
}

// Kind implements Layer (dropout shares ReLU's zero-cost accounting).
func (d *Dropout) Kind() LayerKind { return KindDropout }

// SetCompute implements ComputeUser.
func (d *Dropout) SetCompute(ctx *compute.Context) { d.ctx = ctx }

// SetArena implements ArenaUser.
func (d *Dropout) SetArena(a *Arena) { d.arena = a }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) []int {
	out := make([]int, len(in))
	copy(out, in)
	return out
}

// Init seeds the layer's mask generator.
func (d *Dropout) Init(rng *rand.Rand) {
	d.rng = rand.New(rand.NewSource(rng.Int63()))
}

// Forward implements Layer. Mask generation stays serial: the rng stream
// must be consumed in element order for seeded runs to reproduce.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	if d.rng == nil {
		panic("nn: Dropout used before Init")
	}
	out := d.arena.tensor(d, slotOut, x.Shape...)
	mask := d.arena.floats(d, slotMask, len(x.Data))
	d.mask = mask
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			mask[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

// backwardRange applies the mask on [i0, i1).
func (d *Dropout) backwardRange(i0, i1 int) {
	grad, dx, mask := d.curGrad, d.curDX, d.mask
	for i := i0; i < i1; i++ {
		dx[i] = grad[i] * mask[i]
	}
}

// Backward implements Layer: mask application is element-disjoint, so it
// fans out over the compute backend bit-identically.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	dx := d.arena.tensor(d, slotDX, grad.Shape...)
	d.curGrad, d.curDX = grad.Data, dx.Data
	if d.bwdFn == nil {
		d.bwdFn = d.backwardRange
	}
	d.ctx.ParallelFor(len(d.mask), 2, d.bwdFn)
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// MACs implements Layer.
func (d *Dropout) MACs(in []int) int64 { return 0 }
