package nn

import (
	"fmt"
	"math/rand"

	"solarml/internal/tensor"
)

// Dropout zeroes a random fraction of activations during training (inverted
// dropout: survivors are scaled by 1/(1−p) so inference needs no change).
// It carries no MACs and is a no-op in inference mode. Not part of the
// Table II search space; available for hand-built training recipes.
type Dropout struct {
	// P is the drop probability in [0, 1).
	P float64

	rng  *rand.Rand
	mask []float64
}

// NewDropout returns a dropout layer with the given drop probability.
func NewDropout(p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v outside [0,1)", p))
	}
	return &Dropout{P: p}
}

// Kind implements Layer (dropout shares ReLU's zero-cost accounting).
func (d *Dropout) Kind() LayerKind { return KindDropout }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) []int {
	out := make([]int, len(in))
	copy(out, in)
	return out
}

// Init seeds the layer's mask generator.
func (d *Dropout) Init(rng *rand.Rand) {
	d.rng = rand.New(rand.NewSource(rng.Int63()))
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	if d.rng == nil {
		panic("nn: Dropout used before Init")
	}
	out := tensor.New(x.Shape...)
	d.mask = make([]float64, len(x.Data))
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			d.mask[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	dx := tensor.New(grad.Shape...)
	for i, m := range d.mask {
		dx.Data[i] = grad.Data[i] * m
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// MACs implements Layer.
func (d *Dropout) MACs(in []int) int64 { return 0 }
