package nn

import (
	"math"
	"math/rand"
	"testing"

	"solarml/internal/tensor"
)

// spiralDataset builds a 3-class problem hard enough that aggressive
// quantization visibly hurts a float-trained model.
func spiralDataset(rng *rand.Rand, n int) (*tensor.Tensor, []int) {
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 3
		r := 0.2 + 0.8*rng.Float64()
		th := float64(cls)*2*math.Pi/3 + r*2.2 + rng.NormFloat64()*0.12
		x.Data[i*2] = r * math.Cos(th)
		x.Data[i*2+1] = r * math.Sin(th)
		y[i] = cls
	}
	return x, y
}

func TestQATImprovesLowBitDeployment(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	x, y := spiralDataset(rng, 360)
	const bits = 3
	build := func(seed int64) *Network {
		net := NewNetwork([]int{2}, NewDense(2, 24), NewReLU(), NewDense(24, 16), NewReLU(), NewDense(16, 3))
		net.Init(rand.New(rand.NewSource(seed)))
		return net
	}
	base := TrainConfig{Epochs: 60, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 9}

	// Float-trained model, then PTQ at low bits.
	floatNet := build(1)
	floatNet.Fit(x, y, base)
	floatAcc := floatNet.Accuracy(x, y)
	if floatAcc < 0.85 {
		t.Fatalf("float training failed: %.3f", floatAcc)
	}
	ptqFloat, err := ApplyPTQ(floatNet, x, PTQConfig{WeightBits: bits, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	ptqFloatAcc := ptqFloat.Accuracy(x, y)

	// QAT-trained model, then PTQ at the same bits.
	qatNet := build(1)
	qatCfg := base
	qatCfg.QATWeightBits = bits
	qatNet.Fit(x, y, qatCfg)
	ptqQAT, err := ApplyPTQ(qatNet, x, PTQConfig{WeightBits: bits, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	ptqQATAcc := ptqQAT.Accuracy(x, y)

	if ptqQATAcc < ptqFloatAcc-0.02 {
		t.Fatalf("QAT deployment (%.3f) should not trail float-then-PTQ (%.3f) at %d bits",
			ptqQATAcc, ptqFloatAcc, bits)
	}
	// The QAT-quantized deployment should itself be usable.
	if ptqQATAcc < 0.7 {
		t.Fatalf("QAT deployment accuracy %.3f too low", ptqQATAcc)
	}
}

func TestQATZeroBitsIsPlainTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	x, y := spiralDataset(rng, 120)
	a := NewNetwork([]int{2}, NewDense(2, 8), NewReLU(), NewDense(8, 3))
	b := NewNetwork([]int{2}, NewDense(2, 8), NewReLU(), NewDense(8, 3))
	a.Init(rand.New(rand.NewSource(5)))
	b.Init(rand.New(rand.NewSource(5)))
	cfg := TrainConfig{Epochs: 5, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 9}
	a.Fit(x, y, cfg)
	cfg.QATWeightBits = 0
	b.Fit(x, y, cfg)
	pa := a.Params()
	pb := b.Params()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
				t.Fatal("QATWeightBits=0 must behave exactly like plain training")
			}
		}
	}
}
