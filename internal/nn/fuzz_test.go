package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzLoadModel asserts the model parser never panics on malformed input —
// it must fail with an error, whatever the bytes. Run the seed corpus as a
// plain test, or explore with `go test -fuzz=FuzzLoadModel ./internal/nn`.
func FuzzLoadModel(f *testing.F) {
	// Seed with a valid model and a few corruptions of it.
	arch := &Arch{Input: []int{1, 4, 4}, Body: []LayerSpec{
		{Kind: KindConv, Out: 2, K: 3, Stride: 1, Pad: 1},
		{Kind: KindReLU},
	}, Classes: 2}
	net, err := arch.Build()
	if err != nil {
		f.Fatal(err)
	}
	net.Init(rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := SaveModel(&buf, arch, net); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("SMLM"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	for i := 8; i < 24 && i < len(corrupt); i++ {
		corrupt[i] = 0xFF
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are fine.
		_, _, _ = LoadModel(bytes.NewReader(data))
	})
}
