package nn

import (
	"math"
	"math/rand"
	"testing"

	"solarml/internal/tensor"
)

func TestDropoutInferenceIsIdentity(t *testing.T) {
	d := NewDropout(0.5)
	d.Init(rand.New(rand.NewSource(1)))
	x := tensor.New(4, 10)
	x.RandFill(rand.New(rand.NewSource(2)), 1)
	out := d.Forward(x, false)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatal("inference-mode dropout must be the identity")
		}
	}
}

func TestDropoutTrainStatistics(t *testing.T) {
	d := NewDropout(0.4)
	d.Init(rand.New(rand.NewSource(3)))
	x := tensor.New(1, 20_000)
	x.Fill(1)
	out := d.Forward(x, true)
	zeros := 0
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-1/0.6) > 1e-12 {
			t.Fatalf("survivor scaled to %v, want %v", v, 1/0.6)
		}
	}
	frac := float64(zeros) / float64(len(out.Data))
	if math.Abs(frac-0.4) > 0.02 {
		t.Fatalf("dropped fraction %.3f, want ≈0.4", frac)
	}
	// Inverted dropout preserves the expected activation sum.
	if m := out.Mean(); math.Abs(m-1) > 0.03 {
		t.Fatalf("mean activation %v, want ≈1", m)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d := NewDropout(0.5)
	d.Init(rand.New(rand.NewSource(4)))
	x := tensor.New(2, 50)
	x.Fill(1)
	out := d.Forward(x, true)
	grad := tensor.New(2, 50)
	grad.Fill(1)
	dx := d.Backward(grad)
	for i := range out.Data {
		if (out.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("gradient must flow exactly through the surviving units")
		}
	}
}

func TestDropoutGradCheck(t *testing.T) {
	// With a fixed mask (same Forward call), dropout is linear, so the
	// analytic gradient must match the mask exactly — covered above; here
	// verify it composes inside a network without breaking training.
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(120, 2)
	y := make([]int, 120)
	for i := 0; i < 120; i++ {
		cls := i % 2
		s := float64(2*cls - 1)
		x.Data[i*2] = s + rng.NormFloat64()*0.3
		x.Data[i*2+1] = -s + rng.NormFloat64()*0.3
		y[i] = cls
	}
	net := NewNetwork([]int{2}, NewDense(2, 16), NewReLU(), NewDropout(0.3), NewDense(16, 2))
	net.Init(rng)
	net.Fit(x, y, TrainConfig{Epochs: 25, BatchSize: 16, LR: 0.1, Momentum: 0.9, Seed: 5})
	if acc := net.Accuracy(x, y); acc < 0.9 {
		t.Fatalf("network with dropout failed to train: %.3f", acc)
	}
}

func TestDropoutValidation(t *testing.T) {
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("p=%v should panic", p)
				}
			}()
			NewDropout(p)
		}()
	}
}

func TestDropoutKindName(t *testing.T) {
	if KindDropout.String() != "Dropout" {
		t.Fatal("kind name")
	}
	if NewDropout(0.1).MACs([]int{10}) != 0 {
		t.Fatal("dropout must carry no MACs")
	}
}
