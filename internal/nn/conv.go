package nn

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/compute"
	"solarml/internal/tensor"
)

// convOutDim returns the output extent for one spatial dimension.
func convOutDim(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// Conv2D is a standard 2-D convolution with a square kernel, symmetric
// zero padding and shared stride. Input is NCHW.
//
// The forward/backward kernels run batched: one im2col lowering for the
// whole minibatch into a pooled (InC·K·K, N·OH·OW) scratch matrix and one
// GEMM against the weights, instead of a column matrix allocated per
// sample. The scratch lives on the layer's compute.Context pool and is
// held between Forward and Backward (training always pairs them), so a
// steady-state training step allocates only the output tensor.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	W                         *Param // (OutC, InC*K*K)
	B                         *Param // (OutC)

	ctx            *compute.Context
	cols           []float64 // batched im2col scratch, (InC*K*K, N*OH*OW)
	lastIn         []int     // per-sample input shape
	lastN          int       // batch size of the last Forward
	lastOH, lastOW int
}

// NewConv2D returns a convolution layer; call Init before training.
func NewConv2D(inC, outC, k, stride, pad int) *Conv2D {
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W: newParam(outC, inC*k*k),
		B: newParam(outC),
	}
}

// Kind implements Layer.
func (c *Conv2D) Kind() LayerKind { return KindConv }

// SetCompute implements ComputeUser.
func (c *Conv2D) SetCompute(ctx *compute.Context) { c.ctx = ctx }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects (C=%d,H,W) input, got %v", c.InC, in))
	}
	oh := convOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := convOutDim(in[2], c.K, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: Conv2D output collapsed for input %v kernel %d stride %d", in, c.K, c.Stride))
	}
	return []int{c.OutC, oh, ow}
}

// Init applies He-uniform initialization.
func (c *Conv2D) Init(rng *rand.Rand) {
	fanIn := float64(c.InC * c.K * c.K)
	c.W.Value.RandFill(rng, math.Sqrt(6.0/fanIn))
	c.B.Value.Zero()
}

// im2colInto lowers one (C,H,W) sample into columns [colOff, colOff+oh·ow)
// of a pre-zeroed (C·K·K, stride) matrix. Only in-bounds input positions
// are written; padding entries rely on the destination being zero-filled.
func im2colInto(dst []float64, stride, colOff int, x []float64, cc, h, w, k, cstride, pad, oh, ow int) {
	for ch := 0; ch < cc; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := dst[((ch*k+ky)*k+kx)*stride+colOff:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*cstride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*cstride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						row[oy*ow+ox] = x[chOff+iy*w+ix]
					}
				}
			}
		}
	}
}

// col2imFrom scatters columns [colOff, colOff+oh·ow) of a (C·K·K, stride)
// gradient matrix back onto one (C,H,W) sample.
func col2imFrom(src []float64, stride, colOff int, dst []float64, cc, h, w, k, cstride, pad, oh, ow int) {
	for ch := 0; ch < cc; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := src[((ch*k+ky)*k+kx)*stride+colOff:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*cstride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*cstride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						dst[chOff+iy*w+ix] += row[oy*ow+ox]
					}
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := convOutDim(h, c.K, c.Stride, c.Pad)
	ow := convOutDim(w, c.K, c.Stride, c.Pad)
	rows := c.InC * c.K * c.K
	span := oh * ow
	width := n * span
	if c.cols != nil {
		// Inference-only forwards never reach Backward; recycle the
		// previous batch's scratch before grabbing this one.
		c.ctx.Put(c.cols)
	}
	c.cols = c.ctx.Get(rows * width)
	c.lastIn = []int{c.InC, h, w}
	c.lastN, c.lastOH, c.lastOW = n, oh, ow
	sampleIn := c.InC * h * w
	// Batched im2col: sample i owns the disjoint column block
	// [i·span, (i+1)·span), so the lowering parallelizes deterministically.
	c.ctx.For(n, 1, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			im2colInto(c.cols, width, i*span, x.Data[i*sampleIn:(i+1)*sampleIn],
				c.InC, h, w, c.K, c.Stride, c.Pad, oh, ow)
		}
	})
	// One GEMM for the whole batch, bias fused as the row start value.
	oMat := c.ctx.Get(c.OutC * width)
	c.ctx.MatMul(oMat, c.W.Value.Data, c.cols, c.B.Value.Data, c.OutC, rows, width)
	// Scatter (OutC, N·OH·OW) back to NCHW.
	out := tensor.New(n, c.OutC, oh, ow)
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			copy(out.Data[(i*c.OutC+oc)*span:(i*c.OutC+oc+1)*span],
				oMat[oc*width+i*span:oc*width+(i+1)*span])
		}
	}
	c.ctx.Put(oMat)
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, oh, ow := grad.Shape[0], grad.Shape[2], grad.Shape[3]
	h, w := c.lastIn[1], c.lastIn[2]
	rows := c.InC * c.K * c.K
	span := oh * ow
	width := n * span
	// Gather grad (N, OutC, OH, OW) into (OutC, N·OH·OW), matching the
	// column layout of the stored im2col scratch.
	gMat := c.ctx.Get(c.OutC * width)
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			copy(gMat[oc*width+i*span:oc*width+(i+1)*span],
				grad.Data[(i*c.OutC+oc)*span:(i*c.OutC+oc+1)*span])
		}
	}
	// dW += g × colsᵀ, accumulated straight into the gradient tensor.
	c.ctx.MatMulTransB(c.W.Grad.Data, gMat, c.cols, nil, c.OutC, width, rows, true)
	// db += row sums of g.
	for oc := 0; oc < c.OutC; oc++ {
		s := 0.0
		for _, v := range gMat[oc*width : (oc+1)*width] {
			s += v
		}
		c.B.Grad.Data[oc] += s
	}
	// dcols = Wᵀ × g, then scatter every sample's column block back.
	dcols := c.ctx.Get(rows * width)
	c.ctx.MatMulTransA(dcols, c.W.Value.Data, gMat, c.OutC, rows, width, false)
	dx := tensor.New(n, c.InC, h, w)
	sampleIn := c.InC * h * w
	c.ctx.For(n, 1, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			col2imFrom(dcols, width, i*span, dx.Data[i*sampleIn:(i+1)*sampleIn],
				c.InC, h, w, c.K, c.Stride, c.Pad, oh, ow)
		}
	})
	c.ctx.Put(dcols)
	c.ctx.Put(gMat)
	c.ctx.Put(c.cols)
	c.cols = nil
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// MACs implements Layer: OutC·OH·OW·InC·K² per sample.
func (c *Conv2D) MACs(in []int) int64 {
	oh := convOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := convOutDim(in[2], c.K, c.Stride, c.Pad)
	return int64(c.OutC) * int64(oh) * int64(ow) * int64(c.InC) * int64(c.K) * int64(c.K)
}

// DepthwiseConv2D convolves each channel with its own K×K filter.
// Input is NCHW with C channels preserved.
//
// The direct kernel beats an im2col lowering here (each output element
// touches only K² inputs of one channel), so instead the (sample, channel)
// blocks fan out over the compute backend: every block writes a disjoint
// output region in Forward, and Backward partitions by channel so each
// worker owns its channel's weight/bias gradient accumulators — the
// per-location accumulation order matches the serial kernel exactly.
type DepthwiseConv2D struct {
	C, K, Stride, Pad int
	W                 *Param // (C, K*K)
	B                 *Param // (C)

	ctx   *compute.Context
	lastX *tensor.Tensor
}

// NewDepthwiseConv2D returns a depthwise convolution layer.
func NewDepthwiseConv2D(c, k, stride, pad int) *DepthwiseConv2D {
	return &DepthwiseConv2D{C: c, K: k, Stride: stride, Pad: pad, W: newParam(c, k*k), B: newParam(c)}
}

// Kind implements Layer.
func (c *DepthwiseConv2D) Kind() LayerKind { return KindDWConv }

// SetCompute implements ComputeUser.
func (c *DepthwiseConv2D) SetCompute(ctx *compute.Context) { c.ctx = ctx }

// OutShape implements Layer.
func (c *DepthwiseConv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.C {
		panic(fmt.Sprintf("nn: DWConv expects (C=%d,H,W) input, got %v", c.C, in))
	}
	oh := convOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := convOutDim(in[2], c.K, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: DWConv output collapsed for input %v", in))
	}
	return []int{c.C, oh, ow}
}

// Init applies He-uniform initialization.
func (c *DepthwiseConv2D) Init(rng *rand.Rand) {
	c.W.Value.RandFill(rng, math.Sqrt(6.0/float64(c.K*c.K)))
	c.B.Value.Zero()
}

// Forward implements Layer.
func (c *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := convOutDim(h, c.K, c.Stride, c.Pad)
	ow := convOutDim(w, c.K, c.Stride, c.Pad)
	c.lastX = x
	out := tensor.New(n, c.C, oh, ow)
	// Each (sample, channel) block writes a disjoint output slice.
	c.ctx.For(n*c.C, 1, func(b0, b1 int) {
		for blk := b0; blk < b1; blk++ {
			i, ch := blk/c.C, blk%c.C
			src := x.Data[(i*c.C+ch)*h*w:]
			dst := out.Data[(i*c.C+ch)*oh*ow:]
			wrow := c.W.Value.Data[ch*c.K*c.K:]
			b := c.B.Value.Data[ch]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := b
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							if ix < 0 || ix >= w {
								continue
							}
							s += wrow[ky*c.K+kx] * src[iy*w+ix]
						}
					}
					dst[oy*ow+ox] = s
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (c *DepthwiseConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastX
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := grad.Shape[2], grad.Shape[3]
	dx := tensor.New(n, c.C, h, w)
	// Partition by channel: each worker owns its channels' weight and bias
	// gradient rows, and visits samples in ascending order, so every
	// accumulator sees the same addition sequence as the serial kernel.
	c.ctx.For(c.C, 1, func(c0, c1 int) {
		for ch := c0; ch < c1; ch++ {
			wrow := c.W.Value.Data[ch*c.K*c.K:]
			dwrow := c.W.Grad.Data[ch*c.K*c.K:]
			for i := 0; i < n; i++ {
				src := x.Data[(i*c.C+ch)*h*w:]
				g := grad.Data[(i*c.C+ch)*oh*ow:]
				dsrc := dx.Data[(i*c.C+ch)*h*w:]
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						gv := g[oy*ow+ox]
						if gv == 0 {
							continue
						}
						c.B.Grad.Data[ch] += gv
						for ky := 0; ky < c.K; ky++ {
							iy := oy*c.Stride + ky - c.Pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < c.K; kx++ {
								ix := ox*c.Stride + kx - c.Pad
								if ix < 0 || ix >= w {
									continue
								}
								dwrow[ky*c.K+kx] += gv * src[iy*w+ix]
								dsrc[iy*w+ix] += gv * wrow[ky*c.K+kx]
							}
						}
					}
				}
			}
		}
	})
	return dx
}

// Params implements Layer.
func (c *DepthwiseConv2D) Params() []*Param { return []*Param{c.W, c.B} }

// MACs implements Layer: C·OH·OW·K² per sample.
func (c *DepthwiseConv2D) MACs(in []int) int64 {
	oh := convOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := convOutDim(in[2], c.K, c.Stride, c.Pad)
	return int64(c.C) * int64(oh) * int64(ow) * int64(c.K) * int64(c.K)
}
