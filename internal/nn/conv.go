package nn

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/tensor"
)

// convOutDim returns the output extent for one spatial dimension.
func convOutDim(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// Conv2D is a standard 2-D convolution with a square kernel, symmetric
// zero padding and shared stride. Input is NCHW.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	W                         *Param // (OutC, InC*K*K)
	B                         *Param // (OutC)

	lastCols []*tensor.Tensor // per-sample im2col matrices
	lastIn   []int            // per-sample input shape
}

// NewConv2D returns a convolution layer; call Init before training.
func NewConv2D(inC, outC, k, stride, pad int) *Conv2D {
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W: newParam(outC, inC*k*k),
		B: newParam(outC),
	}
}

// Kind implements Layer.
func (c *Conv2D) Kind() LayerKind { return KindConv }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects (C=%d,H,W) input, got %v", c.InC, in))
	}
	oh := convOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := convOutDim(in[2], c.K, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: Conv2D output collapsed for input %v kernel %d stride %d", in, c.K, c.Stride))
	}
	return []int{c.OutC, oh, ow}
}

// Init applies He-uniform initialization.
func (c *Conv2D) Init(rng *rand.Rand) {
	fanIn := float64(c.InC * c.K * c.K)
	c.W.Value.RandFill(rng, math.Sqrt(6.0/fanIn))
	c.B.Value.Zero()
}

// im2col lowers one (C,H,W) sample to a (C*K*K, OH*OW) column matrix.
func im2col(x []float64, cc, h, w, k, stride, pad, oh, ow int) *tensor.Tensor {
	cols := tensor.New(cc*k*k, oh*ow)
	for ch := 0; ch < cc; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := cols.Data[((ch*k+ky)*k+kx)*oh*ow:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						row[oy*ow+ox] = x[chOff+iy*w+ix]
					}
				}
			}
		}
	}
	return cols
}

// col2im scatters a (C*K*K, OH*OW) gradient back to a (C,H,W) sample.
func col2im(cols *tensor.Tensor, dst []float64, cc, h, w, k, stride, pad, oh, ow int) {
	for ch := 0; ch < cc; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := cols.Data[((ch*k+ky)*k+kx)*oh*ow:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						dst[chOff+iy*w+ix] += row[oy*ow+ox]
					}
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := convOutDim(h, c.K, c.Stride, c.Pad)
	ow := convOutDim(w, c.K, c.Stride, c.Pad)
	out := tensor.New(n, c.OutC, oh, ow)
	c.lastCols = make([]*tensor.Tensor, n)
	c.lastIn = []int{c.InC, h, w}
	sampleIn := c.InC * h * w
	sampleOut := c.OutC * oh * ow
	oMat := tensor.New(c.OutC, oh*ow)
	for i := 0; i < n; i++ {
		cols := im2col(x.Data[i*sampleIn:(i+1)*sampleIn], c.InC, h, w, c.K, c.Stride, c.Pad, oh, ow)
		c.lastCols[i] = cols
		tensor.MatMulInto(oMat, c.W.Value, cols)
		dst := out.Data[i*sampleOut : (i+1)*sampleOut]
		copy(dst, oMat.Data)
		for oc := 0; oc < c.OutC; oc++ {
			b := c.B.Value.Data[oc]
			row := dst[oc*oh*ow : (oc+1)*oh*ow]
			for j := range row {
				row[j] += b
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, oh, ow := grad.Shape[0], grad.Shape[2], grad.Shape[3]
	h, w := c.lastIn[1], c.lastIn[2]
	dx := tensor.New(n, c.InC, h, w)
	sampleIn := c.InC * h * w
	sampleOut := c.OutC * oh * ow
	for i := 0; i < n; i++ {
		g := tensor.FromSlice(grad.Data[i*sampleOut:(i+1)*sampleOut], c.OutC, oh*ow)
		// dW += g × colsᵀ
		dW := tensor.MatMulTransB(g, c.lastCols[i])
		c.W.Grad.Add(dW)
		// db += row sums of g
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			for _, v := range g.Data[oc*oh*ow : (oc+1)*oh*ow] {
				s += v
			}
			c.B.Grad.Data[oc] += s
		}
		// dcols = Wᵀ × g, then scatter back.
		dcols := tensor.MatMulTransA(c.W.Value, g)
		col2im(dcols, dx.Data[i*sampleIn:(i+1)*sampleIn], c.InC, h, w, c.K, c.Stride, c.Pad, oh, ow)
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// MACs implements Layer: OutC·OH·OW·InC·K² per sample.
func (c *Conv2D) MACs(in []int) int64 {
	oh := convOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := convOutDim(in[2], c.K, c.Stride, c.Pad)
	return int64(c.OutC) * int64(oh) * int64(ow) * int64(c.InC) * int64(c.K) * int64(c.K)
}

// DepthwiseConv2D convolves each channel with its own K×K filter.
// Input is NCHW with C channels preserved.
type DepthwiseConv2D struct {
	C, K, Stride, Pad int
	W                 *Param // (C, K*K)
	B                 *Param // (C)

	lastX *tensor.Tensor
}

// NewDepthwiseConv2D returns a depthwise convolution layer.
func NewDepthwiseConv2D(c, k, stride, pad int) *DepthwiseConv2D {
	return &DepthwiseConv2D{C: c, K: k, Stride: stride, Pad: pad, W: newParam(c, k*k), B: newParam(c)}
}

// Kind implements Layer.
func (c *DepthwiseConv2D) Kind() LayerKind { return KindDWConv }

// OutShape implements Layer.
func (c *DepthwiseConv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.C {
		panic(fmt.Sprintf("nn: DWConv expects (C=%d,H,W) input, got %v", c.C, in))
	}
	oh := convOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := convOutDim(in[2], c.K, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: DWConv output collapsed for input %v", in))
	}
	return []int{c.C, oh, ow}
}

// Init applies He-uniform initialization.
func (c *DepthwiseConv2D) Init(rng *rand.Rand) {
	c.W.Value.RandFill(rng, math.Sqrt(6.0/float64(c.K*c.K)))
	c.B.Value.Zero()
}

// Forward implements Layer.
func (c *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := convOutDim(h, c.K, c.Stride, c.Pad)
	ow := convOutDim(w, c.K, c.Stride, c.Pad)
	c.lastX = x
	out := tensor.New(n, c.C, oh, ow)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c.C; ch++ {
			src := x.Data[(i*c.C+ch)*h*w:]
			dst := out.Data[(i*c.C+ch)*oh*ow:]
			wrow := c.W.Value.Data[ch*c.K*c.K:]
			b := c.B.Value.Data[ch]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := b
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							if ix < 0 || ix >= w {
								continue
							}
							s += wrow[ky*c.K+kx] * src[iy*w+ix]
						}
					}
					dst[oy*ow+ox] = s
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *DepthwiseConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastX
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := grad.Shape[2], grad.Shape[3]
	dx := tensor.New(n, c.C, h, w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c.C; ch++ {
			src := x.Data[(i*c.C+ch)*h*w:]
			g := grad.Data[(i*c.C+ch)*oh*ow:]
			dsrc := dx.Data[(i*c.C+ch)*h*w:]
			wrow := c.W.Value.Data[ch*c.K*c.K:]
			dwrow := c.W.Grad.Data[ch*c.K*c.K:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gv := g[oy*ow+ox]
					if gv == 0 {
						continue
					}
					c.B.Grad.Data[ch] += gv
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							if ix < 0 || ix >= w {
								continue
							}
							dwrow[ky*c.K+kx] += gv * src[iy*w+ix]
							dsrc[iy*w+ix] += gv * wrow[ky*c.K+kx]
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *DepthwiseConv2D) Params() []*Param { return []*Param{c.W, c.B} }

// MACs implements Layer: C·OH·OW·K² per sample.
func (c *DepthwiseConv2D) MACs(in []int) int64 {
	oh := convOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := convOutDim(in[2], c.K, c.Stride, c.Pad)
	return int64(c.C) * int64(oh) * int64(ow) * int64(c.K) * int64(c.K)
}
