package nn

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/compute"
	"solarml/internal/tensor"
)

// convOutDim returns the output extent for one spatial dimension.
func convOutDim(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// Conv2D is a standard 2-D convolution with a square kernel, symmetric
// zero padding and shared stride. Input is NCHW.
//
// The forward/backward kernels run batched: one im2col lowering for the
// whole minibatch into a pooled (InC·K·K, N·OH·OW) scratch matrix and one
// GEMM against the weights, instead of a column matrix allocated per
// sample. The scratch lives on the layer's compute.Context pool and is
// held between Forward and Backward (training always pairs them), so a
// steady-state training step allocates only the output tensor.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	W                         *Param // (OutC, InC*K*K)
	B                         *Param // (OutC)

	ctx            *compute.Context
	arena          *Arena
	cols           []float64 // batched im2col scratch, (InC*K*K, N*OH*OW)
	lastH, lastW   int       // spatial input extent of the last Forward
	lastN          int       // batch size of the last Forward
	lastOH, lastOW int

	// Current-dispatch operands + cached range closures (see ReLU): one
	// closure per fan-out site, allocated on first use and reused for every
	// subsequent step.
	curIn, curOut, curOMat, curGrad, curGMat, curDCols, curDX []float64

	im2colFn, scatterFn, gatherFn, dbFn, col2imFn func(i0, i1 int)
}

// NewConv2D returns a convolution layer; call Init before training.
func NewConv2D(inC, outC, k, stride, pad int) *Conv2D {
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W: newParam(outC, inC*k*k),
		B: newParam(outC),
	}
}

// Kind implements Layer.
func (c *Conv2D) Kind() LayerKind { return KindConv }

// SetCompute implements ComputeUser.
func (c *Conv2D) SetCompute(ctx *compute.Context) { c.ctx = ctx }

// SetArena implements ArenaUser.
func (c *Conv2D) SetArena(a *Arena) { c.arena = a }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects (C=%d,H,W) input, got %v", c.InC, in))
	}
	oh := convOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := convOutDim(in[2], c.K, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: Conv2D output collapsed for input %v kernel %d stride %d", in, c.K, c.Stride))
	}
	return []int{c.OutC, oh, ow}
}

// Init applies He-uniform initialization.
func (c *Conv2D) Init(rng *rand.Rand) {
	fanIn := float64(c.InC * c.K * c.K)
	c.W.Value.RandFill(rng, math.Sqrt(6.0/fanIn))
	c.B.Value.Zero()
}

// im2colInto lowers one (C,H,W) sample into columns [colOff, colOff+oh·ow)
// of a pre-zeroed (C·K·K, stride) matrix. Only in-bounds input positions
// are written; padding entries rely on the destination being zero-filled.
func im2colInto(dst []float64, stride, colOff int, x []float64, cc, h, w, k, cstride, pad, oh, ow int) {
	for ch := 0; ch < cc; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := dst[((ch*k+ky)*k+kx)*stride+colOff:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*cstride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*cstride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						row[oy*ow+ox] = x[chOff+iy*w+ix]
					}
				}
			}
		}
	}
}

// col2imFrom scatters columns [colOff, colOff+oh·ow) of a (C·K·K, stride)
// gradient matrix back onto one (C,H,W) sample.
func col2imFrom(src []float64, stride, colOff int, dst []float64, cc, h, w, k, cstride, pad, oh, ow int) {
	for ch := 0; ch < cc; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := src[((ch*k+ky)*k+kx)*stride+colOff:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*cstride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*cstride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						dst[chOff+iy*w+ix] += row[oy*ow+ox]
					}
				}
			}
		}
	}
}

// im2colRange lowers samples [i0, i1) into their column blocks.
func (c *Conv2D) im2colRange(i0, i1 int) {
	h, w, oh, ow := c.lastH, c.lastW, c.lastOH, c.lastOW
	span := oh * ow
	width := c.lastN * span
	sampleIn := c.InC * h * w
	for i := i0; i < i1; i++ {
		im2colInto(c.cols, width, i*span, c.curIn[i*sampleIn:(i+1)*sampleIn],
			c.InC, h, w, c.K, c.Stride, c.Pad, oh, ow)
	}
}

// scatterRange copies samples [i0, i1) of the (OutC, N·OH·OW) GEMM output
// back to NCHW.
func (c *Conv2D) scatterRange(i0, i1 int) {
	span := c.lastOH * c.lastOW
	width := c.lastN * span
	for i := i0; i < i1; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			copy(c.curOut[(i*c.OutC+oc)*span:(i*c.OutC+oc+1)*span],
				c.curOMat[oc*width+i*span:oc*width+(i+1)*span])
		}
	}
}

// gatherRange transposes samples [i0, i1) of the NCHW gradient into the
// (OutC, N·OH·OW) layout.
func (c *Conv2D) gatherRange(i0, i1 int) {
	span := c.lastOH * c.lastOW
	width := c.lastN * span
	for i := i0; i < i1; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			copy(c.curGMat[oc*width+i*span:oc*width+(i+1)*span],
				c.curGrad[(i*c.OutC+oc)*span:(i*c.OutC+oc+1)*span])
		}
	}
}

// biasGradRange accumulates db for output channels [o0, o1), each row
// summed left to right.
func (c *Conv2D) biasGradRange(o0, o1 int) {
	width := c.lastN * c.lastOH * c.lastOW
	for oc := o0; oc < o1; oc++ {
		s := 0.0
		for _, v := range c.curGMat[oc*width : (oc+1)*width] {
			s += v
		}
		c.B.Grad.Data[oc] += s
	}
}

// col2imRange scatters samples [i0, i1) of the column gradient back onto dx.
func (c *Conv2D) col2imRange(i0, i1 int) {
	h, w, oh, ow := c.lastH, c.lastW, c.lastOH, c.lastOW
	span := oh * ow
	width := c.lastN * span
	sampleIn := c.InC * h * w
	for i := i0; i < i1; i++ {
		col2imFrom(c.curDCols, width, i*span, c.curDX[i*sampleIn:(i+1)*sampleIn],
			c.InC, h, w, c.K, c.Stride, c.Pad, oh, ow)
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := convOutDim(h, c.K, c.Stride, c.Pad)
	ow := convOutDim(w, c.K, c.Stride, c.Pad)
	rows := c.InC * c.K * c.K
	span := oh * ow
	width := n * span
	if c.cols != nil {
		// Inference-only forwards never reach Backward; recycle the
		// previous batch's scratch before grabbing this one.
		c.ctx.Put(c.cols)
	}
	c.cols = c.ctx.Get(rows * width)
	c.lastH, c.lastW = h, w
	c.lastN, c.lastOH, c.lastOW = n, oh, ow
	if c.im2colFn == nil {
		c.im2colFn = c.im2colRange
		c.scatterFn = c.scatterRange
	}
	// Batched im2col: sample i owns the disjoint column block
	// [i·span, (i+1)·span), so the lowering parallelizes deterministically.
	c.curIn = x.Data
	c.ctx.For(n, 1, c.im2colFn)
	// One GEMM for the whole batch, bias fused as the row start value.
	oMat := c.ctx.Get(c.OutC * width)
	c.ctx.MatMul(oMat, c.W.Value.Data, c.cols, c.B.Value.Data, c.OutC, rows, width)
	// Scatter (OutC, N·OH·OW) back to NCHW; each sample's rows are disjoint.
	out := c.arena.tensor(c, slotOut, n, c.OutC, oh, ow)
	c.curOMat, c.curOut = oMat, out.Data
	c.ctx.ParallelFor(n, c.OutC*span, c.scatterFn)
	c.ctx.Put(oMat)
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, oh, ow := grad.Shape[0], grad.Shape[2], grad.Shape[3]
	h, w := c.lastH, c.lastW
	rows := c.InC * c.K * c.K
	span := oh * ow
	width := n * span
	if c.gatherFn == nil {
		c.gatherFn = c.gatherRange
		c.dbFn = c.biasGradRange
		c.col2imFn = c.col2imRange
	}
	// Gather grad (N, OutC, OH, OW) into (OutC, N·OH·OW), matching the
	// column layout of the stored im2col scratch; disjoint per sample.
	gMat := c.ctx.Get(c.OutC * width)
	c.curGrad, c.curGMat = grad.Data, gMat
	c.ctx.ParallelFor(n, c.OutC*span, c.gatherFn)
	// dW += g × colsᵀ, accumulated straight into the gradient tensor.
	c.ctx.MatMulTransB(c.W.Grad.Data, gMat, c.cols, nil, c.OutC, width, rows, true)
	// db += row sums of g. Each worker owns whole output channels, and sums
	// each row left to right, so the addition order matches serial exactly.
	c.ctx.ParallelFor(c.OutC, 2*width, c.dbFn)
	// dcols = Wᵀ × g, then scatter every sample's column block back.
	dcols := c.ctx.Get(rows * width)
	c.ctx.MatMulTransA(dcols, c.W.Value.Data, gMat, c.OutC, rows, width, false)
	dx := c.arena.tensor(c, slotDX, n, c.InC, h, w)
	c.curDCols, c.curDX = dcols, dx.Data
	c.ctx.For(n, 1, c.col2imFn)
	c.ctx.Put(dcols)
	c.ctx.Put(gMat)
	c.ctx.Put(c.cols)
	c.cols = nil
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// MACs implements Layer: OutC·OH·OW·InC·K² per sample.
func (c *Conv2D) MACs(in []int) int64 {
	oh := convOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := convOutDim(in[2], c.K, c.Stride, c.Pad)
	return int64(c.OutC) * int64(oh) * int64(ow) * int64(c.InC) * int64(c.K) * int64(c.K)
}

// DepthwiseConv2D convolves each channel with its own K×K filter.
// Input is NCHW with C channels preserved.
//
// The direct kernel beats an im2col lowering here (each output element
// touches only K² inputs of one channel), so instead the (sample, channel)
// blocks fan out over the compute backend: every block writes a disjoint
// output region in Forward, and Backward partitions by channel so each
// worker owns its channel's weight/bias gradient accumulators — the
// per-location accumulation order matches the serial kernel exactly.
type DepthwiseConv2D struct {
	C, K, Stride, Pad int
	W                 *Param // (C, K*K)
	B                 *Param // (C)

	ctx   *compute.Context
	arena *Arena
	lastX *tensor.Tensor

	// Current-dispatch operands + cached range closures (see ReLU).
	curOut, curGrad, curDX []float64
	lastOH, lastOW         int
	fwdFn, bwdFn           func(i0, i1 int)
}

// NewDepthwiseConv2D returns a depthwise convolution layer.
func NewDepthwiseConv2D(c, k, stride, pad int) *DepthwiseConv2D {
	return &DepthwiseConv2D{C: c, K: k, Stride: stride, Pad: pad, W: newParam(c, k*k), B: newParam(c)}
}

// Kind implements Layer.
func (c *DepthwiseConv2D) Kind() LayerKind { return KindDWConv }

// SetCompute implements ComputeUser.
func (c *DepthwiseConv2D) SetCompute(ctx *compute.Context) { c.ctx = ctx }

// SetArena implements ArenaUser.
func (c *DepthwiseConv2D) SetArena(a *Arena) { c.arena = a }

// OutShape implements Layer.
func (c *DepthwiseConv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.C {
		panic(fmt.Sprintf("nn: DWConv expects (C=%d,H,W) input, got %v", c.C, in))
	}
	oh := convOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := convOutDim(in[2], c.K, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: DWConv output collapsed for input %v", in))
	}
	return []int{c.C, oh, ow}
}

// Init applies He-uniform initialization.
func (c *DepthwiseConv2D) Init(rng *rand.Rand) {
	c.W.Value.RandFill(rng, math.Sqrt(6.0/float64(c.K*c.K)))
	c.B.Value.Zero()
}

// forwardBlocks convolves (sample, channel) blocks [b0, b1).
func (c *DepthwiseConv2D) forwardBlocks(b0, b1 int) {
	x := c.lastX
	h, w := x.Shape[2], x.Shape[3]
	oh, ow := c.lastOH, c.lastOW
	for blk := b0; blk < b1; blk++ {
		i, ch := blk/c.C, blk%c.C
		src := x.Data[(i*c.C+ch)*h*w:]
		dst := c.curOut[(i*c.C+ch)*oh*ow:]
		wrow := c.W.Value.Data[ch*c.K*c.K:]
		b := c.B.Value.Data[ch]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := b
				for ky := 0; ky < c.K; ky++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < c.K; kx++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix < 0 || ix >= w {
							continue
						}
						s += wrow[ky*c.K+kx] * src[iy*w+ix]
					}
				}
				dst[oy*ow+ox] = s
			}
		}
	}
}

// backwardChannels accumulates gradients for channels [c0, c1).
func (c *DepthwiseConv2D) backwardChannels(c0, c1 int) {
	x := c.lastX
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := c.lastOH, c.lastOW
	for ch := c0; ch < c1; ch++ {
		wrow := c.W.Value.Data[ch*c.K*c.K:]
		dwrow := c.W.Grad.Data[ch*c.K*c.K:]
		for i := 0; i < n; i++ {
			src := x.Data[(i*c.C+ch)*h*w:]
			g := c.curGrad[(i*c.C+ch)*oh*ow:]
			dsrc := c.curDX[(i*c.C+ch)*h*w:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gv := g[oy*ow+ox]
					if gv == 0 {
						continue
					}
					c.B.Grad.Data[ch] += gv
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							if ix < 0 || ix >= w {
								continue
							}
							dwrow[ky*c.K+kx] += gv * src[iy*w+ix]
							dsrc[iy*w+ix] += gv * wrow[ky*c.K+kx]
						}
					}
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := convOutDim(h, c.K, c.Stride, c.Pad)
	ow := convOutDim(w, c.K, c.Stride, c.Pad)
	c.lastX = x
	c.lastOH, c.lastOW = oh, ow
	out := c.arena.tensor(c, slotOut, n, c.C, oh, ow)
	c.curOut = out.Data
	if c.fwdFn == nil {
		c.fwdFn = c.forwardBlocks
	}
	// Each (sample, channel) block writes a disjoint output slice.
	c.ctx.ParallelFor(n*c.C, 2*oh*ow*c.K*c.K, c.fwdFn)
	return out
}

// Backward implements Layer.
func (c *DepthwiseConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastX
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := grad.Shape[2], grad.Shape[3]
	dx := c.arena.tensor(c, slotDX, n, c.C, h, w)
	c.curGrad, c.curDX = grad.Data, dx.Data
	c.lastOH, c.lastOW = oh, ow
	if c.bwdFn == nil {
		c.bwdFn = c.backwardChannels
	}
	// Partition by channel: each worker owns its channels' weight and bias
	// gradient rows, and visits samples in ascending order, so every
	// accumulator sees the same addition sequence as the serial kernel.
	c.ctx.ParallelFor(c.C, 4*n*oh*ow*c.K*c.K, c.bwdFn)
	return dx
}

// Params implements Layer.
func (c *DepthwiseConv2D) Params() []*Param { return []*Param{c.W, c.B} }

// MACs implements Layer: C·OH·OW·K² per sample.
func (c *DepthwiseConv2D) MACs(in []int) int64 {
	oh := convOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := convOutDim(in[2], c.K, c.Stride, c.Pad)
	return int64(c.C) * int64(oh) * int64(ow) * int64(c.K) * int64(c.K)
}
