package nn

import (
	"fmt"
	"strings"
)

// LayerSpec describes one layer of an architecture as data, so the NAS can
// mutate architectures without touching parameter tensors.
type LayerSpec struct {
	Kind   LayerKind
	Out    int // output channels (Conv) or units (Dense)
	K      int // kernel or pooling window
	Stride int
	Pad    int
}

// String renders a compact human-readable spec.
func (s LayerSpec) String() string {
	switch s.Kind {
	case KindConv:
		return fmt.Sprintf("Conv(%d,k%d,s%d,p%d)", s.Out, s.K, s.Stride, s.Pad)
	case KindDWConv:
		return fmt.Sprintf("DWConv(k%d,s%d,p%d)", s.K, s.Stride, s.Pad)
	case KindDense:
		return fmt.Sprintf("Dense(%d)", s.Out)
	case KindMaxPool:
		return fmt.Sprintf("MaxPool(%d)", s.K)
	case KindAvgPool:
		return fmt.Sprintf("AvgPool(%d)", s.K)
	case KindNorm:
		return "Norm"
	case KindReLU:
		return "ReLU"
	case KindFlatten:
		return "Flatten"
	}
	return "?"
}

// Arch is a sequential architecture description. Build appends a Flatten and
// a Dense classifier head over Classes outputs, so Body only describes the
// feature extractor.
type Arch struct {
	Input   []int // per-sample input shape: (C,H,W) for conv stacks, (F) for MLPs
	Body    []LayerSpec
	Classes int
}

// Clone returns a deep copy.
func (a *Arch) Clone() *Arch {
	b := &Arch{Input: append([]int(nil), a.Input...), Classes: a.Classes}
	b.Body = append([]LayerSpec(nil), a.Body...)
	return b
}

// String renders the architecture.
func (a *Arch) String() string {
	parts := make([]string, 0, len(a.Body)+2)
	parts = append(parts, fmt.Sprintf("In%v", a.Input))
	for _, s := range a.Body {
		parts = append(parts, s.String())
	}
	parts = append(parts, fmt.Sprintf("Head(%d)", a.Classes))
	return strings.Join(parts, "→")
}

// materialize instantiates the layer for a given input shape.
func (s LayerSpec) materialize(in []int) (Layer, error) {
	switch s.Kind {
	case KindConv:
		if len(in) != 3 {
			return nil, fmt.Errorf("nn: Conv needs 3-d input, have %v", in)
		}
		if convOutDim(in[1], s.K, s.Stride, s.Pad) <= 0 || convOutDim(in[2], s.K, s.Stride, s.Pad) <= 0 {
			return nil, fmt.Errorf("nn: Conv collapses input %v (k=%d s=%d)", in, s.K, s.Stride)
		}
		return NewConv2D(in[0], s.Out, s.K, s.Stride, s.Pad), nil
	case KindDWConv:
		if len(in) != 3 {
			return nil, fmt.Errorf("nn: DWConv needs 3-d input, have %v", in)
		}
		if convOutDim(in[1], s.K, s.Stride, s.Pad) <= 0 || convOutDim(in[2], s.K, s.Stride, s.Pad) <= 0 {
			return nil, fmt.Errorf("nn: DWConv collapses input %v (k=%d s=%d)", in, s.K, s.Stride)
		}
		return NewDepthwiseConv2D(in[0], s.K, s.Stride, s.Pad), nil
	case KindDense:
		return NewDense(shapeVolume(in), s.Out), nil
	case KindMaxPool:
		if len(in) != 3 || in[1] < s.K || in[2] < s.K {
			return nil, fmt.Errorf("nn: MaxPool(%d) does not fit input %v", s.K, in)
		}
		return NewMaxPool2D(s.K), nil
	case KindAvgPool:
		if len(in) != 3 || in[1] < s.K || in[2] < s.K {
			return nil, fmt.Errorf("nn: AvgPool(%d) does not fit input %v", s.K, in)
		}
		return NewAvgPool2D(s.K), nil
	case KindNorm:
		if len(in) != 3 {
			return nil, fmt.Errorf("nn: Norm needs 3-d input, have %v", in)
		}
		return NewBatchNorm(in[0]), nil
	case KindReLU:
		return NewReLU(), nil
	case KindFlatten:
		return NewFlatten(), nil
	}
	return nil, fmt.Errorf("nn: unknown layer kind %d", s.Kind)
}

// Build materializes the architecture into a Network with an appended
// Flatten + Dense classifier head. Parameters are left uninitialized.
func (a *Arch) Build() (*Network, error) {
	if a.Classes < 2 {
		return nil, fmt.Errorf("nn: Arch needs ≥2 classes, have %d", a.Classes)
	}
	shape := append([]int(nil), a.Input...)
	var layers []Layer
	dense := false
	for i, s := range a.Body {
		if dense && s.Kind != KindDense && s.Kind != KindReLU {
			return nil, fmt.Errorf("nn: layer %d (%s) after Dense must be Dense or ReLU", i, s)
		}
		if s.Kind == KindDense && !dense && len(shape) > 1 {
			fl := NewFlatten()
			layers = append(layers, fl)
			shape = fl.OutShape(shape)
		}
		l, err := s.materialize(shape)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
		layers = append(layers, l)
		shape = l.OutShape(shape)
		if s.Kind == KindDense {
			dense = true
		}
	}
	if len(shape) > 1 {
		fl := NewFlatten()
		layers = append(layers, fl)
		shape = fl.OutShape(shape)
	}
	layers = append(layers, NewDense(shape[0], a.Classes))
	return NewNetwork(a.Input, layers...), nil
}

// Validate reports whether the architecture materializes cleanly.
func (a *Arch) Validate() error {
	_, err := a.Build()
	return err
}

// EstimateParams returns the trainable parameter count of the architecture
// (including the classifier head) by pure arithmetic — no tensors are
// allocated, so it is safe to call on untrusted descriptions before Build.
func (a *Arch) EstimateParams() (int64, error) {
	shape := append([]int(nil), a.Input...)
	var params int64
	vol := func(s []int) int64 {
		v := int64(1)
		for _, d := range s {
			v *= int64(d)
		}
		return v
	}
	for i, s := range a.Body {
		switch s.Kind {
		case KindConv:
			if len(shape) != 3 || s.Out <= 0 || s.K <= 0 || s.Stride <= 0 || s.Pad < 0 {
				return 0, fmt.Errorf("nn: layer %d: invalid Conv geometry", i)
			}
			oh := convOutDim(shape[1], s.K, s.Stride, s.Pad)
			ow := convOutDim(shape[2], s.K, s.Stride, s.Pad)
			if oh <= 0 || ow <= 0 {
				return 0, fmt.Errorf("nn: layer %d: Conv collapses its input", i)
			}
			params += int64(s.Out)*int64(shape[0])*int64(s.K)*int64(s.K) + int64(s.Out)
			shape = []int{s.Out, oh, ow}
		case KindDWConv:
			if len(shape) != 3 || s.K <= 0 || s.Stride <= 0 || s.Pad < 0 {
				return 0, fmt.Errorf("nn: layer %d: invalid DWConv geometry", i)
			}
			oh := convOutDim(shape[1], s.K, s.Stride, s.Pad)
			ow := convOutDim(shape[2], s.K, s.Stride, s.Pad)
			if oh <= 0 || ow <= 0 {
				return 0, fmt.Errorf("nn: layer %d: DWConv collapses its input", i)
			}
			params += int64(shape[0])*int64(s.K)*int64(s.K) + int64(shape[0])
			shape = []int{shape[0], oh, ow}
		case KindDense:
			if s.Out <= 0 {
				return 0, fmt.Errorf("nn: layer %d: invalid Dense width", i)
			}
			params += vol(shape)*int64(s.Out) + int64(s.Out)
			shape = []int{s.Out}
		case KindMaxPool, KindAvgPool:
			if len(shape) != 3 || s.K <= 0 || shape[1] < s.K || shape[2] < s.K {
				return 0, fmt.Errorf("nn: layer %d: pool does not fit", i)
			}
			shape = []int{shape[0], shape[1] / s.K, shape[2] / s.K}
		case KindNorm:
			if len(shape) != 3 {
				return 0, fmt.Errorf("nn: layer %d: Norm needs 3-d input", i)
			}
			params += 2 * int64(shape[0])
		case KindReLU, KindFlatten, KindDropout:
			// shape-preserving (Flatten changes rank, volume unchanged)
		default:
			return 0, fmt.Errorf("nn: layer %d: unknown kind %d", i, s.Kind)
		}
		if params < 0 || params > 1<<40 {
			return 0, fmt.Errorf("nn: parameter count overflow at layer %d", i)
		}
	}
	params += vol(shape)*int64(a.Classes) + int64(a.Classes)
	return params, nil
}
