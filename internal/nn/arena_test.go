package nn

import (
	"math/rand"
	"testing"

	"solarml/internal/compute"
	"solarml/internal/obs"
	"solarml/internal/tensor"
)

// TestArenaHitMissAccounting checks the acquisition counters: first touch of
// a (owner, slot) misses, reuse hits, and growing past the retained capacity
// misses again.
func TestArenaHitMissAccounting(t *testing.T) {
	a := NewArena(nil)
	owner := &struct{}{}

	a.tensor(owner, slotOut, 2, 3)
	if a.Misses() != 1 || a.Hits() != 0 {
		t.Fatalf("first acquire: hits=%d misses=%d, want 0/1", a.Hits(), a.Misses())
	}
	a.tensor(owner, slotOut, 2, 3)
	if a.Misses() != 1 || a.Hits() != 1 {
		t.Fatalf("reuse: hits=%d misses=%d, want 1/1", a.Hits(), a.Misses())
	}
	// A smaller request reslices the retained buffer: still a hit.
	a.tensor(owner, slotOut, 1, 3)
	if a.Misses() != 1 || a.Hits() != 2 {
		t.Fatalf("shrink: hits=%d misses=%d, want 2/1", a.Hits(), a.Misses())
	}
	// Growing past capacity re-allocates: a miss.
	a.tensor(owner, slotOut, 4, 5)
	if a.Misses() != 2 || a.Hits() != 2 {
		t.Fatalf("grow: hits=%d misses=%d, want 2/2", a.Hits(), a.Misses())
	}
	// A different slot of the same owner is its own buffer.
	a.tensor(owner, slotDX, 4, 5)
	if a.Misses() != 3 {
		t.Fatalf("new slot: misses=%d, want 3", a.Misses())
	}
}

// TestArenaSharedRegistryCounters checks that arenas created against one
// registry tally into the shared nn.arena_hits / nn.arena_misses counters.
func TestArenaSharedRegistryCounters(t *testing.T) {
	reg := obs.NewRegistry()
	a1, a2 := NewArena(reg), NewArena(reg)
	o1, o2 := &struct{}{}, &struct{}{}
	a1.tensor(o1, slotOut, 2)
	a1.tensor(o1, slotOut, 2)
	a2.tensor(o2, slotOut, 3)
	if got := reg.Counter("nn.arena_misses").Value(); got != 2 {
		t.Fatalf("shared misses = %d, want 2", got)
	}
	if got := reg.Counter("nn.arena_hits").Value(); got != 1 {
		t.Fatalf("shared hits = %d, want 1", got)
	}
}

// TestArenaReusesBackingArray checks steady-state reuse really is in place:
// the same (owner, slot) request returns the same backing array, including
// for the smaller tail-batch shape.
func TestArenaReusesBackingArray(t *testing.T) {
	a := NewArena(nil)
	owner := &struct{}{}
	t1 := a.tensor(owner, slotOut, 4, 6)
	t2 := a.tensor(owner, slotOut, 4, 6)
	if &t1.Data[0] != &t2.Data[0] {
		t.Fatal("same-shape reuse returned a different backing array")
	}
	t3 := a.tensor(owner, slotOut, 2, 6)
	if &t3.Data[0] != &t1.Data[0] {
		t.Fatal("tail-batch reslice returned a different backing array")
	}
	if len(t3.Data) != 12 || t3.Shape[0] != 2 || t3.Shape[1] != 6 {
		t.Fatalf("tail-batch tensor has len %d shape %v", len(t3.Data), t3.Shape)
	}
}

// TestArenaZeroFills checks every acquire returns memory indistinguishable
// from a fresh allocation — the property the bit-identity contract rests on.
func TestArenaZeroFills(t *testing.T) {
	a := NewArena(nil)
	owner := &struct{}{}
	tt := a.tensor(owner, slotOut, 3, 3)
	for i := range tt.Data {
		tt.Data[i] = float64(i) + 1
	}
	f := a.floats(owner, slotStd, 5)
	for i := range f {
		f[i] = 7
	}
	is := a.intsBuf(owner, slotArg, 5)
	for i := range is {
		is[i] = 7
	}
	bs := a.boolsBuf(owner, slotMask, 5)
	for i := range bs {
		bs[i] = true
	}

	tt = a.tensor(owner, slotOut, 3, 3)
	for i, v := range tt.Data {
		if v != 0 {
			t.Fatalf("reused tensor element %d = %v, want 0", i, v)
		}
	}
	for i, v := range a.floats(owner, slotStd, 4) {
		if v != 0 {
			t.Fatalf("reused float %d = %v, want 0", i, v)
		}
	}
	for i, v := range a.intsBuf(owner, slotArg, 4) {
		if v != 0 {
			t.Fatalf("reused int %d = %v, want 0", i, v)
		}
	}
	for i, v := range a.boolsBuf(owner, slotMask, 4) {
		if v {
			t.Fatalf("reused bool %d = true, want false", i)
		}
	}
}

// TestArenaViewVolumeMismatchPanics checks the view guard: a header whose
// shape does not match the data length must refuse rather than alias.
func TestArenaViewVolumeMismatchPanics(t *testing.T) {
	a := NewArena(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched view did not panic")
		}
	}()
	a.view(&struct{}{}, slotView, make([]float64, 10), 3, 4)
}

// TestNilArenaFallsBackToFreshAllocation checks the nil-receiver contract:
// every acquire on a nil *Arena behaves like a plain make/tensor.New.
func TestNilArenaFallsBackToFreshAllocation(t *testing.T) {
	var a *Arena
	if got := a.tensor(nil, slotOut, 2, 3); len(got.Data) != 6 {
		t.Fatalf("nil arena tensor has %d elements, want 6", len(got.Data))
	}
	if got := a.view(nil, slotView, make([]float64, 6), 2, 3); got.Shape[1] != 3 {
		t.Fatalf("nil arena view shape = %v", got.Shape)
	}
	if got := a.floats(nil, slotStd, 4); len(got) != 4 {
		t.Fatalf("nil arena floats len = %d", len(got))
	}
	if got := a.intsBuf(nil, slotArg, 4); len(got) != 4 {
		t.Fatalf("nil arena ints len = %d", len(got))
	}
	if got := a.boolsBuf(nil, slotMask, 4); len(got) != 4 {
		t.Fatalf("nil arena bools len = %d", len(got))
	}
	if a.Hits() != 0 || a.Misses() != 0 {
		t.Fatal("nil arena reported nonzero counters")
	}
}

// TestTrainStepSteadyStateAllocs pins the tentpole's headline: with an arena
// and a pooled compute context installed, the steady-state training step
// performs zero heap allocations, at one worker and with the parallel pool.
func TestTrainStepSteadyStateAllocs(t *testing.T) {
	for _, workers := range []int{1, 2} {
		net := buildComputeTestNet()
		net.Init(rand.New(rand.NewSource(5)))
		net.SetCompute(compute.NewContextFor(workers, nil))
		net.SetArena(NewArena(nil))
		rng := rand.New(rand.NewSource(3))
		x := tensor.New(6, 1, 9, 11)
		x.RandFill(rng, 1)
		y := make([]int, 6)
		for i := range y {
			y[i] = rng.Intn(10)
		}
		params := net.Params()
		opt := &SGD{LR: 0.01, Momentum: 0.9}
		cfg := &TrainConfig{ClipNorm: 5}
		net.trainStep(x, y, params, opt, cfg) // warm arena, pool, closures

		allocs := testing.AllocsPerRun(10, func() {
			net.trainStep(x, y, params, opt, cfg)
		})
		// The parallel pool may very occasionally grow a runtime sudog on a
		// blocked channel send; everything under our control is zero.
		limit := 0.0
		if workers > 1 {
			limit = 1
		}
		if allocs > limit {
			t.Errorf("workers=%d: steady-state train step allocates %.1f times, want ≤%.0f",
				workers, allocs, limit)
		}
	}
}

// TestAccuracyChunkAllocs checks evaluation stays allocation-free once the
// arena's staging view and layer buffers are warm.
func TestAccuracyChunkAllocs(t *testing.T) {
	net := buildComputeTestNet()
	net.Init(rand.New(rand.NewSource(5)))
	net.SetCompute(compute.NewContextFor(1, nil))
	net.SetArena(NewArena(nil))
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(40, 1, 9, 11) // 32-chunk plus a tail chunk of 8
	x.RandFill(rng, 1)
	y := make([]int, 40)
	for i := range y {
		y[i] = rng.Intn(10)
	}
	net.Accuracy(x, y) // warm
	allocs := testing.AllocsPerRun(10, func() {
		net.Accuracy(x, y)
	})
	if allocs > 0 {
		t.Errorf("Accuracy allocates %.1f times per call, want 0", allocs)
	}
}

// fitReference replicates the pre-arena Fit loop exactly — same rng call
// order, fresh staging tensors, public CrossEntropy, throwaway clipper —
// so Fit's arena path can be compared against it bit for bit.
func fitReference(net *Network, inputs *tensor.Tensor, labels []int, cfg TrainConfig) float64 {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.ClipNorm == 0 {
		cfg.ClipNorm = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := &SGD{LR: cfg.LR, Momentum: cfg.Momentum, Decay: cfg.Decay}
	params := net.Params()
	total := inputs.Shape[0]
	sample := len(inputs.Data) / total
	order := rng.Perm(total)
	var lastLoss float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(total, func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss, batches := 0.0, 0
		for start := 0; start < total; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > total {
				end = total
			}
			bs := end - start
			bshape := append([]int{bs}, net.InShape...)
			bx := tensor.New(bshape...)
			by := make([]int, bs)
			for bi := 0; bi < bs; bi++ {
				src := order[start+bi]
				copy(bx.Data[bi*sample:(bi+1)*sample], inputs.Data[src*sample:(src+1)*sample])
				by[bi] = labels[src]
			}
			net.ZeroGrads()
			logits := net.Forward(bx, true)
			loss, grad := CrossEntropy(logits, by)
			for li := len(net.Layers) - 1; li >= 0; li-- {
				grad = net.Layers[li].Backward(grad)
			}
			clipGradients(nil, params, cfg.ClipNorm)
			opt.Step(params)
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
	}
	return lastLoss
}

// edgeBatchData builds a small labelled dataset of the compute-test net's
// input shape.
func edgeBatchData(total int) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(11))
	x := tensor.New(total, 1, 9, 11)
	x.RandFill(rng, 1)
	y := make([]int, total)
	for i := range y {
		y[i] = rng.Intn(10)
	}
	return x, y
}

// checkFitMatchesReference trains two identically-initialized nets — one
// through Fit (arena installed) and one through the fresh-allocation
// reference loop — and requires bitwise-equal losses and parameters.
func checkFitMatchesReference(t *testing.T, total int, cfg TrainConfig) {
	t.Helper()
	x, y := edgeBatchData(total)

	ref := buildComputeTestNet()
	ref.Init(rand.New(rand.NewSource(21)))
	wantLoss := fitReference(ref, x, y, cfg)

	got := buildComputeTestNet()
	got.Init(rand.New(rand.NewSource(21)))
	gotLoss := got.Fit(x, y, cfg)

	if wantLoss != gotLoss {
		t.Fatalf("loss differs: reference %v vs Fit %v", wantLoss, gotLoss)
	}
	refParams, gotParams := ref.Params(), got.Params()
	for i := range refParams {
		tensorsBitEqual(t, "param value", refParams[i].Value, gotParams[i].Value)
		tensorsBitEqual(t, "param momentum", refParams[i].Momentum, gotParams[i].Momentum)
	}
}

// TestFitTailBatchBitIdentical covers total % BatchSize != 0: the last
// minibatch of each epoch reslices the arena staging buffers to the smaller
// shape and must reproduce the fresh-allocation loop exactly.
func TestFitTailBatchBitIdentical(t *testing.T) {
	checkFitMatchesReference(t, 10, TrainConfig{Epochs: 2, BatchSize: 4, LR: 0.05, Momentum: 0.9, Seed: 7})
}

// TestFitBatchLargerThanTotalBitIdentical covers BatchSize > total: every
// epoch is one undersized batch.
func TestFitBatchLargerThanTotalBitIdentical(t *testing.T) {
	checkFitMatchesReference(t, 5, TrainConfig{Epochs: 2, BatchSize: 32, LR: 0.05, Momentum: 0.9, Seed: 9})
}

// TestFitQATBitIdentical covers the QAT snapshot reuse path against the
// reference straight-through loop.
func TestFitQATBitIdentical(t *testing.T) {
	cfg := TrainConfig{Epochs: 1, BatchSize: 4, LR: 0.05, QATWeightBits: 8, Seed: 13}
	x, y := edgeBatchData(9)

	ref := buildComputeTestNet()
	ref.Init(rand.New(rand.NewSource(23)))
	refQAT(ref, x, y, cfg)

	got := buildComputeTestNet()
	got.Init(rand.New(rand.NewSource(23)))
	got.Fit(x, y, cfg)

	refParams, gotParams := ref.Params(), got.Params()
	for i := range refParams {
		tensorsBitEqual(t, "param value", refParams[i].Value, gotParams[i].Value)
	}
}

// refQAT is fitReference with the straight-through QAT snapshot/restore
// using the allocating SnapshotParams/RestoreParams pair.
func refQAT(net *Network, inputs *tensor.Tensor, labels []int, cfg TrainConfig) {
	if cfg.ClipNorm == 0 {
		cfg.ClipNorm = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := &SGD{LR: cfg.LR, Momentum: cfg.Momentum, Decay: cfg.Decay}
	params := net.Params()
	total := inputs.Shape[0]
	sample := len(inputs.Data) / total
	order := rng.Perm(total)
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(total, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < total; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > total {
				end = total
			}
			bs := end - start
			bshape := append([]int{bs}, net.InShape...)
			bx := tensor.New(bshape...)
			by := make([]int, bs)
			for bi := 0; bi < bs; bi++ {
				src := order[start+bi]
				copy(bx.Data[bi*sample:(bi+1)*sample], inputs.Data[src*sample:(src+1)*sample])
				by[bi] = labels[src]
			}
			net.ZeroGrads()
			snap := net.SnapshotParams()
			for _, p := range params {
				quantizeTensorSym(p.Value, cfg.QATWeightBits)
			}
			logits := net.Forward(bx, true)
			_, grad := CrossEntropy(logits, by)
			for li := len(net.Layers) - 1; li >= 0; li-- {
				grad = net.Layers[li].Backward(grad)
			}
			net.RestoreParams(snap)
			clipGradients(nil, params, cfg.ClipNorm)
			opt.Step(params)
		}
	}
}

// TestArenaBatchShapeChangeBitIdentical runs the same network through batch
// sizes 8 → 3 → 8 with an arena installed and compares logits, input
// gradients and parameter gradients against a fresh-allocation twin at every
// step: shrinking and re-growing the cached buffers must not leak state.
func TestArenaBatchShapeChangeBitIdentical(t *testing.T) {
	withArena := buildComputeTestNet()
	withArena.Init(rand.New(rand.NewSource(31)))
	withArena.SetArena(NewArena(nil))

	plain := buildComputeTestNet()
	plain.Init(rand.New(rand.NewSource(31)))

	rng := rand.New(rand.NewSource(33))
	for _, bs := range []int{8, 3, 8, 5} {
		x := tensor.New(bs, 1, 9, 11)
		x.RandFill(rng, 1)
		labels := make([]int, bs)
		for i := range labels {
			labels[i] = rng.Intn(10)
		}
		wantLogits, wantDx, wantGrads := trainStepBitwise(plain, x, labels)
		gotLogits, gotDx, gotGrads := trainStepBitwise(withArena, x, labels)
		tensorsBitEqual(t, "logits", wantLogits, gotLogits)
		tensorsBitEqual(t, "dx", wantDx, gotDx)
		for i := range wantGrads {
			tensorsBitEqual(t, "grad", wantGrads[i], gotGrads[i])
		}
	}
}

// TestFitWithArenaAndParallelBackendBitIdentical is the end-to-end
// determinism claim: Fit with an arena and a multi-worker backend reproduces
// the fresh-allocation serial reference bit for bit.
func TestFitWithArenaAndParallelBackendBitIdentical(t *testing.T) {
	cfg := TrainConfig{Epochs: 2, BatchSize: 4, LR: 0.05, Momentum: 0.9, Seed: 17}
	x, y := edgeBatchData(10)

	ref := buildComputeTestNet()
	ref.Init(rand.New(rand.NewSource(41)))
	wantLoss := fitReference(ref, x, y, cfg)

	par := cfg
	par.Compute = compute.NewContextFor(3, nil)
	par.Arena = NewArena(nil)
	got := buildComputeTestNet()
	got.Init(rand.New(rand.NewSource(41)))
	gotLoss := got.Fit(x, y, par)

	if wantLoss != gotLoss {
		t.Fatalf("loss differs: serial reference %v vs parallel arena Fit %v", wantLoss, gotLoss)
	}
	refParams, gotParams := ref.Params(), got.Params()
	for i := range refParams {
		tensorsBitEqual(t, "param value", refParams[i].Value, gotParams[i].Value)
	}
}
