package nn_test

import (
	"fmt"
	"math/rand"

	"solarml/internal/nn"
	"solarml/internal/tensor"
)

// ExampleArch_Build shows how architectures are described as data, built
// into networks, and accounted for — the workflow the NAS drives.
func ExampleArch_Build() {
	arch := &nn.Arch{
		Input: []int{1, 8, 8},
		Body: []nn.LayerSpec{
			{Kind: nn.KindConv, Out: 4, K: 3, Stride: 1, Pad: 1},
			{Kind: nn.KindReLU},
			{Kind: nn.KindMaxPool, K: 2},
		},
		Classes: 10,
	}
	net, err := arch.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println("total MACs:", net.TotalMACs())
	fmt.Println("conv MACs: ", net.MACsByKind()[nn.KindConv])
	fmt.Println("RAM (int8):", net.MemoryBytes(8, 8), "bytes")
	// Output:
	// total MACs: 3200
	// conv MACs:  2304
	// RAM (int8): 1202 bytes
}

// ExampleNetwork_Fit trains a two-layer perceptron on a linearly separable
// toy problem.
func ExampleNetwork_Fit() {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(100, 2)
	y := make([]int, 100)
	for i := 0; i < 100; i++ {
		cls := i % 2
		sign := float64(2*cls - 1)
		x.Data[i*2] = sign + rng.NormFloat64()*0.2
		x.Data[i*2+1] = -sign + rng.NormFloat64()*0.2
		y[i] = cls
	}
	net := nn.NewNetwork([]int{2}, nn.NewDense(2, 8), nn.NewReLU(), nn.NewDense(8, 2))
	net.Init(rng)
	net.Fit(x, y, nn.TrainConfig{Epochs: 20, BatchSize: 10, LR: 0.1, Momentum: 0.9, Seed: 1})
	fmt.Printf("accuracy ≥ 0.95: %v\n", net.Accuracy(x, y) >= 0.95)
	// Output:
	// accuracy ≥ 0.95: true
}
