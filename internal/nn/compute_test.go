package nn

import (
	"math"
	"math/rand"
	"testing"

	"solarml/internal/compute"
	"solarml/internal/tensor"
)

// buildComputeTestNet returns a net covering every ComputeUser layer kind:
// standard conv, depthwise conv, and a dense head. Odd spatial dims and a
// stride-2 stage exercise uneven row partitions in the parallel backend.
func buildComputeTestNet() *Network {
	return NewNetwork([]int{1, 9, 11},
		NewConv2D(1, 4, 3, 1, 1),
		NewReLU(),
		NewDepthwiseConv2D(4, 3, 2, 1),
		NewReLU(),
		NewFlatten(),
		NewDense(4*5*6, 10),
	)
}

// trainStepBitwise runs one forward+backward and returns logits, input grad
// and all parameter grads.
func trainStepBitwise(net *Network, x *tensor.Tensor, labels []int) (logits, dx *tensor.Tensor, grads []*tensor.Tensor) {
	net.ZeroGrads()
	logits = net.Forward(x.Clone(), true)
	_, g := CrossEntropy(logits, labels)
	for i := len(net.Layers) - 1; i >= 0; i-- {
		g = net.Layers[i].Backward(g)
	}
	dx = g
	for _, p := range net.Params() {
		grads = append(grads, p.Grad)
	}
	return logits, dx, grads
}

func tensorsBitEqual(t *testing.T, name string, want, got *tensor.Tensor) {
	t.Helper()
	if len(want.Data) != len(got.Data) {
		t.Fatalf("%s: length %d vs %d", name, len(want.Data), len(got.Data))
	}
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, want.Data[i], got.Data[i])
		}
	}
}

// TestParallelTrainingBitIdentical proves the tentpole's determinism claim at
// the layer level: forward logits, input gradients and every parameter
// gradient of a conv/dwconv/dense net are bit-identical between the serial
// backend and the parallel backend at several worker counts.
func TestParallelTrainingBitIdentical(t *testing.T) {
	const n = 5
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(n, 1, 9, 11)
	x.RandFill(rng, 1)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}

	ref := buildComputeTestNet()
	ref.Init(rand.New(rand.NewSource(5)))
	ref.SetCompute(compute.NewContextFor(1, nil))
	wantLogits, wantDx, wantGrads := trainStepBitwise(ref, x, labels)

	for _, workers := range []int{2, 3, 7} {
		net := buildComputeTestNet()
		net.Init(rand.New(rand.NewSource(5)))
		net.SetCompute(compute.NewContextFor(workers, nil))
		gotLogits, gotDx, gotGrads := trainStepBitwise(net, x, labels)
		tensorsBitEqual(t, "logits", wantLogits, gotLogits)
		tensorsBitEqual(t, "dx", wantDx, gotDx)
		for i := range wantGrads {
			tensorsBitEqual(t, "grad", wantGrads[i], gotGrads[i])
		}
	}
}

// TestComputeContextMatchesNoContext checks the refactor did not change the
// numerics of the default path: a layer with a compute context produces
// bit-identical results to a zero-value layer with none.
func TestComputeContextMatchesNoContext(t *testing.T) {
	const n = 3
	rng := rand.New(rand.NewSource(9))
	x := tensor.New(n, 1, 9, 11)
	x.RandFill(rng, 1)
	labels := []int{1, 2, 3}

	plain := buildComputeTestNet()
	plain.Init(rand.New(rand.NewSource(7)))
	wantLogits, wantDx, wantGrads := trainStepBitwise(plain, x, labels)

	pooled := buildComputeTestNet()
	pooled.Init(rand.New(rand.NewSource(7)))
	pooled.SetCompute(compute.NewContextFor(1, nil))
	gotLogits, gotDx, gotGrads := trainStepBitwise(pooled, x, labels)

	tensorsBitEqual(t, "logits", wantLogits, gotLogits)
	tensorsBitEqual(t, "dx", wantDx, gotDx)
	for i := range wantGrads {
		tensorsBitEqual(t, "grad", wantGrads[i], gotGrads[i])
	}
}

// TestConv2DForwardAllocs pins the steady-state allocation count of the
// batched, pooled Conv2D forward. Before the batched-im2col rework the
// forward allocated one column matrix per sample per call; with a warm pool
// it must stay at a handful of fixed allocations (output tensor, shape
// bookkeeping) regardless of batch size.
func TestConv2DForwardAllocs(t *testing.T) {
	ctx := compute.NewContextFor(1, nil)
	conv := NewConv2D(2, 8, 3, 1, 1)
	conv.Init(rand.New(rand.NewSource(1)))
	conv.SetCompute(ctx)
	x := tensor.New(16, 2, 9, 12)
	x.RandFill(rand.New(rand.NewSource(2)), 1)
	// Warm the pool: one forward/backward pair returns all scratch.
	out := conv.Forward(x, true)
	conv.Backward(out)

	allocs := testing.AllocsPerRun(10, func() {
		y := conv.Forward(x, true)
		_ = y
		// Release the held im2col scratch as Backward would, keeping the
		// pool warm for the next run.
		conv.Backward(out)
	})
	// Forward+backward currently cost ~10 fixed allocations (output and dx
	// tensors, shape slices, closures) independent of batch size; 16 would
	// mean per-sample column matrices are back.
	if allocs > 14 {
		t.Fatalf("Conv2D forward+backward allocates %.0f times per step, want ≤14", allocs)
	}
}
