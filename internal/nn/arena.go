package nn

import (
	"fmt"

	"solarml/internal/obs"
	"solarml/internal/tensor"
)

// Arena is a shape-keyed cache of per-step working buffers owned by one
// network: layer outputs, input gradients, ReLU/dropout masks, pooling
// argmax indices, batch-norm statistics, and the Fit/Accuracy staging
// tensors. Each buffer is addressed by (owner, slot) — the layer pointer
// plus a small tag distinguishing the buffers one layer holds live at the
// same time — so two users can never alias each other's memory.
//
// Buffers are grown on demand, reused across steps and epochs, and
// invalidated (re-grown) only when a request exceeds the retained capacity;
// a smaller batch (the tail minibatch of an epoch) reslices the existing
// backing array, so the steady-state training loop performs no heap
// allocations at all. Every acquire returns zero-filled memory, exactly
// like a fresh tensor.New/make, which is why an arena can never change a
// result bit: layers see the same initial buffer contents either way.
//
// An Arena is NOT safe for concurrent use — it is owned by one network, and
// training a network was never concurrent (layers hold per-step state). In
// a parallel NAS search every candidate network gets its own arena. A nil
// *Arena is valid and falls back to fresh allocation, so the zero value of
// every layer keeps working unchanged.
type Arena struct {
	tens  map[arenaKey]*tensor.Tensor
	views map[arenaKey]*tensor.Tensor
	f64s  map[arenaKey][]float64
	ints  map[arenaKey][]int
	bools map[arenaKey][]bool

	// Local hit/miss tallies, always maintained (cheap, single-owner).
	hitCount, missCount int64
	// Optional obs counters shared via the registry (nn.arena_hits/_misses).
	hits, misses *obs.Counter
}

// arenaKey addresses one logical buffer: the owning layer (or network) plus
// a slot tag for the distinct buffers that owner keeps live concurrently.
type arenaKey struct {
	owner any
	slot  uint8
}

// Slot tags. Owners only need tags to be distinct among their own live
// buffers; the owner pointer isolates them from everyone else's.
const (
	slotOut    uint8 = iota // layer forward output
	slotDX                  // layer backward input-gradient
	slotMask                // ReLU bool mask / dropout float mask
	slotArg                 // MaxPool argmax indices
	slotXHat                // BatchNorm normalized activations
	slotStd                 // BatchNorm per-channel std
	slotView                // cached reshape header (forward)
	slotView2               // cached reshape header (backward)
	slotBatchX              // Fit/Accuracy minibatch staging input
	slotBatchY              // Fit minibatch staging labels
	slotProbs               // softmax scratch
	slotGrad                // cross-entropy logits gradient
	slotAcc                 // multi-exit junction gradient accumulator
)

// NewArena returns an empty arena. When reg is non-nil the arena also
// counts acquisitions on the shared nn.arena_hits / nn.arena_misses
// counters (all arenas created against one registry share them, so a NAS
// search reports fleet-wide reuse efficiency).
func NewArena(reg *obs.Registry) *Arena {
	a := &Arena{}
	if reg != nil {
		a.hits = reg.Counter("nn.arena_hits")
		a.misses = reg.Counter("nn.arena_misses")
	}
	return a
}

// Hits reports how many acquisitions were served from retained buffers.
func (a *Arena) Hits() int64 {
	if a == nil {
		return 0
	}
	return a.hitCount
}

// Misses reports how many acquisitions had to allocate (first touch or
// re-grow after a larger batch shape arrived).
func (a *Arena) Misses() int64 {
	if a == nil {
		return 0
	}
	return a.missCount
}

func (a *Arena) hit()  { a.hitCount++; a.hits.Inc() }
func (a *Arena) miss() { a.missCount++; a.misses.Inc() }

// setShape copies src into dst's storage, reusing it when the rank fits.
func setShape(dst, src []int) []int { return append(dst[:0], src...) }

// tensor returns a zero-filled tensor of the given shape for (owner, slot),
// reusing the retained buffer when its capacity suffices. The tensor is
// valid until the next acquire of the same (owner, slot).
func (a *Arena) tensor(owner any, slot uint8, shape ...int) *tensor.Tensor {
	if a == nil {
		return tensor.New(shape...)
	}
	vol := 1
	for _, d := range shape {
		vol *= d
	}
	key := arenaKey{owner, slot}
	t := a.tens[key]
	if t == nil || cap(t.Data) < vol {
		t = tensor.New(shape...)
		if a.tens == nil {
			a.tens = make(map[arenaKey]*tensor.Tensor)
		}
		a.tens[key] = t
		a.miss()
		return t
	}
	a.hit()
	t.Data = t.Data[:vol]
	clear(t.Data)
	t.Shape = setShape(t.Shape, shape)
	return t
}

// view returns a tensor header over data with the given shape, reusing a
// cached header so steady-state reshapes allocate nothing. The header (not
// the data) is owned by the arena and valid until the next view acquire of
// the same (owner, slot).
func (a *Arena) view(owner any, slot uint8, data []float64, shape ...int) *tensor.Tensor {
	if a == nil {
		return tensor.FromSlice(data, shape...)
	}
	vol := 1
	for _, d := range shape {
		vol *= d
	}
	if vol != len(data) {
		// Copy the shape for the message so the parameter does not escape
		// on the hot path (see tensor.New).
		panic(fmt.Sprintf("nn: arena view of %d elements cannot have shape %v",
			len(data), append([]int(nil), shape...)))
	}
	key := arenaKey{owner, slot}
	t := a.views[key]
	if t == nil {
		t = &tensor.Tensor{}
		if a.views == nil {
			a.views = make(map[arenaKey]*tensor.Tensor)
		}
		a.views[key] = t
		a.miss()
	} else {
		a.hit()
	}
	t.Data = data
	t.Shape = setShape(t.Shape, shape)
	return t
}

// floats returns a zero-filled []float64 of length n for (owner, slot).
func (a *Arena) floats(owner any, slot uint8, n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	key := arenaKey{owner, slot}
	buf := a.f64s[key]
	if cap(buf) < n {
		buf = make([]float64, n)
		if a.f64s == nil {
			a.f64s = make(map[arenaKey][]float64)
		}
		a.f64s[key] = buf
		a.miss()
		return buf
	}
	a.hit()
	buf = buf[:n]
	clear(buf)
	a.f64s[key] = buf
	return buf
}

// intsBuf returns a zero-filled []int of length n for (owner, slot).
func (a *Arena) intsBuf(owner any, slot uint8, n int) []int {
	if a == nil {
		return make([]int, n)
	}
	key := arenaKey{owner, slot}
	buf := a.ints[key]
	if cap(buf) < n {
		buf = make([]int, n)
		if a.ints == nil {
			a.ints = make(map[arenaKey][]int)
		}
		a.ints[key] = buf
		a.miss()
		return buf
	}
	a.hit()
	buf = buf[:n]
	clear(buf)
	a.ints[key] = buf
	return buf
}

// boolsBuf returns a zero-filled []bool of length n for (owner, slot).
func (a *Arena) boolsBuf(owner any, slot uint8, n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	key := arenaKey{owner, slot}
	buf := a.bools[key]
	if cap(buf) < n {
		buf = make([]bool, n)
		if a.bools == nil {
			a.bools = make(map[arenaKey][]bool)
		}
		a.bools[key] = buf
		a.miss()
		return buf
	}
	a.hit()
	buf = buf[:n]
	clear(buf)
	a.bools[key] = buf
	return buf
}
