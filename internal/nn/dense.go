package nn

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/compute"
	"solarml/internal/tensor"
)

// Dense is a fully connected layer computing y = x·Wᵀ + b.
// Input shape is (N, In); output shape is (N, Out).
type Dense struct {
	In, Out int
	W       *Param // (Out, In)
	B       *Param // (Out)

	ctx   *compute.Context
	arena *Arena
	lastX *tensor.Tensor

	// Bias-gradient dispatch operands + cached range closure (see ReLU).
	curGrad []float64
	curN    int
	dbFn    func(j0, j1 int)
}

// NewDense returns a dense layer with uninitialized parameters;
// call Init before training.
func NewDense(in, out int) *Dense {
	return &Dense{In: in, Out: out, W: newParam(out, in), B: newParam(out)}
}

// Kind implements Layer.
func (d *Dense) Kind() LayerKind { return KindDense }

// SetCompute implements ComputeUser.
func (d *Dense) SetCompute(ctx *compute.Context) { d.ctx = ctx }

// SetArena implements ArenaUser.
func (d *Dense) SetArena(a *Arena) { d.arena = a }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int {
	if shapeVolume(in) != d.In {
		panic(fmt.Sprintf("nn: Dense expects %d inputs, got shape %v", d.In, in))
	}
	return []int{d.Out}
}

// Init applies He-uniform initialization.
func (d *Dense) Init(rng *rand.Rand) {
	scale := math.Sqrt(6.0 / float64(d.In))
	d.W.Value.RandFill(rng, scale)
	d.B.Value.Zero()
}

// Forward implements Layer. A higher-rank input is flattened per sample.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Shape[0]
	x2 := x
	if len(x.Shape) != 2 {
		x2 = d.arena.view(d, slotView, x.Data, n, len(x.Data)/n)
	}
	if x2.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: Dense input width %d, want %d", x2.Shape[1], d.In))
	}
	d.lastX = x2
	out := d.arena.tensor(d, slotOut, n, d.Out)
	// y = x·Wᵀ + b, bias fused into the GEMM epilogue.
	d.ctx.MatMulTransB(out.Data, x2.Data, d.W.Value.Data, d.B.Value.Data, n, d.In, d.Out, false)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	// dW (Out, In) += gradᵀ × x, accumulated straight into the gradient.
	d.ctx.MatMulTransA(d.W.Grad.Data, grad.Data, d.lastX.Data, n, d.Out, d.In, true)
	// db += column sums of grad. Partitioned by output column: each worker
	// owns its columns' accumulators and walks samples in ascending order,
	// so every sum sees the serial addition sequence.
	d.curGrad, d.curN = grad.Data, n
	if d.dbFn == nil {
		d.dbFn = d.biasGradRange
	}
	d.ctx.ParallelFor(d.Out, 2*n, d.dbFn)
	// dx (N, In) = grad × W
	dx := d.arena.tensor(d, slotDX, n, d.In)
	d.ctx.MatMul(dx.Data, grad.Data, d.W.Value.Data, nil, n, d.Out, d.In)
	return dx
}

// biasGradRange accumulates db columns [j0, j1), samples ascending.
func (d *Dense) biasGradRange(j0, j1 int) {
	grad, db := d.curGrad, d.B.Grad.Data
	for i := 0; i < d.curN; i++ {
		row := grad[i*d.Out : (i+1)*d.Out]
		for j := j0; j < j1; j++ {
			db[j] += row[j]
		}
	}
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// MACs implements Layer: In×Out multiply-accumulates per sample.
func (d *Dense) MACs(in []int) int64 { return int64(d.In) * int64(d.Out) }
