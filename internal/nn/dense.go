package nn

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/compute"
	"solarml/internal/tensor"
)

// Dense is a fully connected layer computing y = x·Wᵀ + b.
// Input shape is (N, In); output shape is (N, Out).
type Dense struct {
	In, Out int
	W       *Param // (Out, In)
	B       *Param // (Out)

	ctx   *compute.Context
	lastX *tensor.Tensor
}

// NewDense returns a dense layer with uninitialized parameters;
// call Init before training.
func NewDense(in, out int) *Dense {
	return &Dense{In: in, Out: out, W: newParam(out, in), B: newParam(out)}
}

// Kind implements Layer.
func (d *Dense) Kind() LayerKind { return KindDense }

// SetCompute implements ComputeUser.
func (d *Dense) SetCompute(ctx *compute.Context) { d.ctx = ctx }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int {
	if shapeVolume(in) != d.In {
		panic(fmt.Sprintf("nn: Dense expects %d inputs, got shape %v", d.In, in))
	}
	return []int{d.Out}
}

// Init applies He-uniform initialization.
func (d *Dense) Init(rng *rand.Rand) {
	scale := math.Sqrt(6.0 / float64(d.In))
	d.W.Value.RandFill(rng, scale)
	d.B.Value.Zero()
}

// Forward implements Layer. A higher-rank input is flattened per sample.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Shape[0]
	x2 := x.Reshape(n, len(x.Data)/n)
	if x2.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: Dense input width %d, want %d", x2.Shape[1], d.In))
	}
	d.lastX = x2
	out := tensor.New(n, d.Out)
	// y = x·Wᵀ + b, bias fused into the GEMM epilogue.
	d.ctx.MatMulTransB(out.Data, x2.Data, d.W.Value.Data, d.B.Value.Data, n, d.In, d.Out, false)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	// dW (Out, In) += gradᵀ × x, accumulated straight into the gradient.
	d.ctx.MatMulTransA(d.W.Grad.Data, grad.Data, d.lastX.Data, n, d.Out, d.In, true)
	// db += column sums of grad
	for i := 0; i < n; i++ {
		row := grad.Data[i*d.Out : (i+1)*d.Out]
		for j, g := range row {
			d.B.Grad.Data[j] += g
		}
	}
	// dx (N, In) = grad × W
	dx := tensor.New(n, d.In)
	d.ctx.MatMul(dx.Data, grad.Data, d.W.Value.Data, nil, n, d.Out, d.In)
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// MACs implements Layer: In×Out multiply-accumulates per sample.
func (d *Dense) MACs(in []int) int64 { return int64(d.In) * int64(d.Out) }
