package nn

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/tensor"
)

// Dense is a fully connected layer computing y = x·Wᵀ + b.
// Input shape is (N, In); output shape is (N, Out).
type Dense struct {
	In, Out int
	W       *Param // (Out, In)
	B       *Param // (Out)

	lastX *tensor.Tensor
}

// NewDense returns a dense layer with uninitialized parameters;
// call Init before training.
func NewDense(in, out int) *Dense {
	return &Dense{In: in, Out: out, W: newParam(out, in), B: newParam(out)}
}

// Kind implements Layer.
func (d *Dense) Kind() LayerKind { return KindDense }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int {
	if shapeVolume(in) != d.In {
		panic(fmt.Sprintf("nn: Dense expects %d inputs, got shape %v", d.In, in))
	}
	return []int{d.Out}
}

// Init applies He-uniform initialization.
func (d *Dense) Init(rng *rand.Rand) {
	scale := math.Sqrt(6.0 / float64(d.In))
	d.W.Value.RandFill(rng, scale)
	d.B.Value.Zero()
}

// Forward implements Layer. A higher-rank input is flattened per sample.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Shape[0]
	x2 := x.Reshape(n, len(x.Data)/n)
	if x2.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: Dense input width %d, want %d", x2.Shape[1], d.In))
	}
	d.lastX = x2
	out := tensor.MatMulTransB(x2, d.W.Value) // (N, Out)
	for i := 0; i < n; i++ {
		row := out.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += d.B.Value.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	// dW (Out, In) += gradᵀ × x
	dW := tensor.MatMulTransA(grad, d.lastX)
	d.W.Grad.Add(dW)
	// db += column sums of grad
	for i := 0; i < n; i++ {
		row := grad.Data[i*d.Out : (i+1)*d.Out]
		for j, g := range row {
			d.B.Grad.Data[j] += g
		}
	}
	// dx (N, In) = grad × W
	return tensor.MatMul(grad, d.W.Value)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// MACs implements Layer: In×Out multiply-accumulates per sample.
func (d *Dense) MACs(in []int) int64 { return int64(d.In) * int64(d.Out) }
