package nn

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"solarml/internal/compute"
	"solarml/internal/obs"
	"solarml/internal/obs/energy"
	"solarml/internal/tensor"
)

// Network is a sequential stack of layers ending in logits over NumClasses.
type Network struct {
	InShape []int // per-sample input shape
	Layers  []Layer

	ctx   *compute.Context
	arena *Arena

	// qatSnap is the reused QAT shadow-weight snapshot (see trainStep).
	qatSnap [][]float64

	// loss and clip cache the dispatch closures for the loss head and the
	// gradient clipper, so steady-state steps allocate nothing (see ReLU).
	loss lossScratch
	clip gradClipper

	// evalShape is the reused (chunk, ...InShape) staging shape of Accuracy.
	evalShape []int
}

// NewNetwork returns a network for the given per-sample input shape.
func NewNetwork(inShape []int, layers ...Layer) *Network {
	s := make([]int, len(inShape))
	copy(s, inShape)
	return &Network{InShape: s, Layers: layers}
}

// Init initializes all layer parameters from rng.
func (n *Network) Init(rng *rand.Rand) {
	for _, l := range n.Layers {
		l.Init(rng)
	}
}

// SetCompute installs a compute context on every layer that supports a
// pluggable backend, and on the network itself (softmax, cross-entropy,
// gradient clipping, and the SGD update run through it too). It governs
// both training and inference kernels; a nil context restores the default
// serial, non-pooled behaviour.
func (n *Network) SetCompute(ctx *compute.Context) {
	n.ctx = ctx
	for _, l := range n.Layers {
		if cu, ok := l.(ComputeUser); ok {
			cu.SetCompute(ctx)
		}
	}
}

// SetArena installs a step arena on the network and every ArenaUser layer:
// per-step output/gradient/mask buffers are then acquired from the arena
// and reused across minibatches, so the steady-state training step makes no
// heap allocations. With an arena installed, tensors returned by
// Forward/Backward are valid only until the network's next
// Forward/Backward — callers that retain outputs across calls must Clone
// them. A nil arena restores the allocate-per-call behaviour.
func (n *Network) SetArena(a *Arena) {
	n.arena = a
	for _, l := range n.Layers {
		if au, ok := l.(ArenaUser); ok {
			au.SetArena(a)
		}
	}
}

// Arena returns the installed step arena (nil when none is set).
func (n *Network) Arena() *Arena { return n.arena }

// OutShape returns the per-sample output shape.
func (n *Network) OutShape() []int {
	s := n.InShape
	for _, l := range n.Layers {
		s = l.OutShape(s)
	}
	return s
}

// Forward runs the batched input through every layer.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Params returns all trainable parameters.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int64 {
	var c int64
	for _, p := range n.Params() {
		c += int64(p.Value.Len())
	}
	return c
}

// ZeroGrads clears all parameter gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// MACsByKind returns per-sample MAC counts grouped by layer kind, the
// feature vector of the paper's layer-wise inference energy model.
func (n *Network) MACsByKind() map[LayerKind]int64 {
	out := make(map[LayerKind]int64)
	s := n.InShape
	for _, l := range n.Layers {
		out[l.Kind()] += l.MACs(s)
		s = l.OutShape(s)
	}
	return out
}

// TotalMACs returns the per-sample MAC count summed over all layers,
// the single proxy used by the μNAS/HarvNet baseline energy model.
func (n *Network) TotalMACs() int64 {
	var t int64
	for _, v := range n.MACsByKind() {
		t += v
	}
	return t
}

// PeakActivation returns the largest per-sample activation element count
// across layer boundaries, a proxy for working RAM.
func (n *Network) PeakActivation() int64 {
	s := n.InShape
	peak := int64(shapeVolume(s))
	for _, l := range n.Layers {
		s = l.OutShape(s)
		if v := int64(shapeVolume(s)); v > peak {
			peak = v
		}
	}
	return peak
}

// MemoryBytes estimates MCU RAM: weights at weightBits plus the two largest
// consecutive activations at activationBits (double-buffered execution).
func (n *Network) MemoryBytes(weightBits, activationBits int) int64 {
	wb := n.ParamCount() * int64(weightBits) / 8
	// Two largest consecutive activation buffers.
	s := n.InShape
	prev := int64(shapeVolume(s))
	var peakPair int64 = prev
	for _, l := range n.Layers {
		s = l.OutShape(s)
		cur := int64(shapeVolume(s))
		if prev+cur > peakPair {
			peakPair = prev + cur
		}
		prev = cur
	}
	ab := peakPair * int64(activationBits) / 8
	return wb + ab
}

// Softmax converts logits (N, K) into probabilities row by row.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(logits.Shape[0], logits.Shape[1])
	var s lossScratch
	s.softmaxInto(nil, out, logits)
	return out
}

// CrossEntropy returns the mean negative log-likelihood of labels under the
// softmax of logits, together with the gradient with respect to the logits.
func CrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	probs := tensor.New(n, k)
	grad = tensor.New(n, k)
	var s lossScratch
	loss = s.crossEntropyInto(nil, logits, labels, probs, grad)
	return loss, grad
}

// lossScratch holds the loss head's dispatch operands and cached range
// closures (see ReLU); each network owns one so steady-state steps reuse
// the two closures instead of allocating them per minibatch.
type lossScratch struct {
	logits, probs, grad []float64
	labels              []int
	k                   int
	inv                 float64
	smFn, gradFn        func(i0, i1 int)
}

// softmaxRange computes the row-wise softmax for rows [i0, i1).
func (s *lossScratch) softmaxRange(i0, i1 int) {
	k := s.k
	for i := i0; i < i1; i++ {
		row := s.logits[i*k : (i+1)*k]
		m := math.Inf(-1)
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		d := s.probs[i*k : (i+1)*k]
		for j, v := range row {
			e := math.Exp(v - m)
			d[j] = e
			sum += e
		}
		for j := range d {
			d[j] /= sum
		}
	}
}

// gradRange fills the logits gradient for rows [i0, i1).
func (s *lossScratch) gradRange(i0, i1 int) {
	k := s.k
	for i := i0; i < i1; i++ {
		y := s.labels[i]
		for j := 0; j < k; j++ {
			g := s.probs[i*k+j]
			if j == y {
				g -= 1
			}
			s.grad[i*k+j] = g * s.inv
		}
	}
}

// softmaxInto writes the row-wise softmax of logits into dst (both (N, K)).
// Rows are element-disjoint, so the fan-out is bit-identical to the serial
// loop at any worker count.
func (s *lossScratch) softmaxInto(ctx *compute.Context, dst, logits *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	s.logits, s.probs, s.k = logits.Data, dst.Data, k
	if s.smFn == nil {
		s.smFn = s.softmaxRange
	}
	ctx.ParallelFor(n, 8*k, s.smFn)
}

// crossEntropyInto computes the mean softmax cross-entropy of logits
// against labels, using probs as softmax scratch and writing the logits
// gradient into grad (all (N, K)). The loss reduction stays serial — its
// addition order is part of the bit-for-bit contract — while the softmax
// and gradient rows fan out disjointly.
func (s *lossScratch) crossEntropyInto(ctx *compute.Context, logits *tensor.Tensor, labels []int, probs, grad *tensor.Tensor) float64 {
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	s.softmaxInto(ctx, probs, logits)
	s.labels, s.grad, s.inv = labels, grad.Data, 1/float64(n)
	if s.gradFn == nil {
		s.gradFn = s.gradRange
	}
	ctx.ParallelFor(n, 4*k, s.gradFn)
	loss := 0.0
	for i, y := range labels {
		loss -= math.Log(math.Max(probs.Data[i*k+y], 1e-12))
	}
	return loss * s.inv
}

// SGD is a momentum optimizer with optional L2 weight decay.
type SGD struct {
	LR       float64
	Momentum float64
	Decay    float64

	// Step dispatch operands + cached range closure (see ReLU).
	v, g, mom []float64
	fn        func(i0, i1 int)
}

// Step applies one update to every parameter and leaves gradients intact;
// callers usually ZeroGrads before the next minibatch.
func (o *SGD) Step(params []*Param) { o.StepCtx(nil, params) }

// stepRange updates elements [i0, i1) of the current parameter.
func (o *SGD) stepRange(i0, i1 int) {
	v, g, mom := o.v, o.g, o.mom
	for i := i0; i < i1; i++ {
		gi := g[i] + o.Decay*v[i]
		mom[i] = o.Momentum*mom[i] - o.LR*gi
		v[i] += mom[i]
	}
}

// StepCtx applies the update with elementwise fan-out over ctx's backend.
// Every index is read and written by exactly one worker, so the result is
// bit-identical to the serial loop at any worker count (nil ctx runs inline).
func (o *SGD) StepCtx(ctx *compute.Context, params []*Param) {
	if o.fn == nil {
		o.fn = o.stepRange
	}
	for _, p := range params {
		o.v, o.g, o.mom = p.Value.Data, p.Grad.Data, p.Momentum.Data
		ctx.ParallelFor(len(o.v), 6, o.fn)
	}
}

// TrainConfig bundles the knobs of Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	Decay     float64
	// ClipNorm bounds the global L2 norm of the gradient per minibatch
	// (0 selects the default of 5). NAS trains candidates with widely
	// varying input sizes at one learning rate; clipping keeps the
	// large-input ones from diverging. Set negative to disable.
	ClipNorm float64
	// QATWeightBits, when positive, enables quantization-aware training:
	// each minibatch runs forward/backward with the weights snapped to a
	// symmetric grid of this many bits while the optimizer updates the
	// full-precision shadow weights (straight-through estimation). The
	// trained model then survives post-training quantization at the same
	// width with far less accuracy loss.
	QATWeightBits int
	Seed          int64
	// Compute, when set, is installed on every ComputeUser layer before the
	// first minibatch: kernels run on its backend and scratch pool. Leave
	// nil to keep whatever context the network already carries (default:
	// serial kernels, fresh allocations).
	Compute *compute.Context
	// Arena, when set, is installed on the network before the first
	// minibatch (see SetArena). When nil and the network carries no arena
	// yet, Fit installs a fresh one: steady-state training steps are
	// allocation-free by default. Results are bit-identical either way.
	Arena *Arena
	// Verbose, when set, receives one line per epoch.
	Verbose func(epoch int, loss float64)
	// Obs, when set, receives one nn.epoch event per epoch (index, mean
	// loss, wall-clock seconds) and an nn.fit span wrapping the run.
	Obs *obs.Recorder
	// Energy, when set, books the run's on-device training energy under
	// the train account (and onto the nn.fit span): SampleEnergyJ joules
	// per sample per epoch, the linear per-step cost model on-device
	// personalization budgets against. Charged per epoch, outside the
	// allocation-free trainStep path.
	Energy *energy.Ledger
	// SampleEnergyJ is the joules one training sample costs per epoch
	// (forward + backward + update); zero books nothing.
	SampleEnergyJ float64
}

// gradClipper holds the clipper's dispatch operands and cached range
// closure (see ReLU); each network owns one.
type gradClipper struct {
	g     []float64
	scale float64
	fn    func(i0, i1 int)
}

// scaleRange scales gradient elements [i0, i1).
func (c *gradClipper) scaleRange(i0, i1 int) {
	g, scale := c.g, c.scale
	for i := i0; i < i1; i++ {
		g[i] *= scale
	}
}

// clip scales all gradients so their global L2 norm is at most limit.
// The norm reduction stays serial — its addition order is part of the
// bit-for-bit contract — while the scale pass fans out element-disjointly.
func (c *gradClipper) clip(ctx *compute.Context, params []*Param, limit float64) {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= limit || norm == 0 {
		return
	}
	c.scale = limit / norm
	if c.fn == nil {
		c.fn = c.scaleRange
	}
	for _, p := range params {
		c.g = p.Grad.Data
		ctx.ParallelFor(len(c.g), 1, c.fn)
	}
}

// clipGradients scales all gradients so their global L2 norm is at most c
// using a throwaway clipper; steady-state paths use a network's cached one.
func clipGradients(ctx *compute.Context, params []*Param, c float64) {
	var gc gradClipper
	gc.clip(ctx, params, c)
}

// trainStep runs one minibatch (bx, by) through forward, loss, backward,
// clipping, and the optimizer update, returning the batch loss. params is
// the cached n.Params() slice (Params allocates; callers hoist it out of the
// epoch loop). With an arena installed the step performs no steady-state
// heap allocations: loss scratch, every layer buffer, and the QAT shadow
// snapshot are all reused.
func (n *Network) trainStep(bx *tensor.Tensor, by []int, params []*Param, opt *SGD, cfg *TrainConfig) float64 {
	for _, p := range params {
		p.Grad.Zero()
	}
	qat := cfg.QATWeightBits > 0
	if qat {
		// Straight-through estimator: compute with quantized weights,
		// update the full-precision shadows.
		n.qatSnap = snapshotInto(n.qatSnap, params)
		for _, p := range params {
			quantizeTensorSym(p.Value, cfg.QATWeightBits)
		}
	}
	logits := n.Forward(bx, true)
	probs := n.arena.tensor(n, slotProbs, logits.Shape...)
	grad := n.arena.tensor(n, slotGrad, logits.Shape...)
	loss := n.loss.crossEntropyInto(n.ctx, logits, by, probs, grad)
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	if qat {
		for i, p := range params {
			copy(p.Value.Data, n.qatSnap[i])
		}
	}
	if cfg.ClipNorm > 0 {
		n.clip.clip(n.ctx, params, cfg.ClipNorm)
	}
	opt.StepCtx(n.ctx, params)
	return loss
}

// snapshotInto copies every parameter value into dst, reusing its backing
// arrays; it is SnapshotParams without the steady-state allocations.
func snapshotInto(dst [][]float64, params []*Param) [][]float64 {
	if cap(dst) < len(params) {
		dst = make([][]float64, len(params))
	}
	dst = dst[:len(params)]
	for i, p := range params {
		dst[i] = append(dst[i][:0], p.Value.Data...)
	}
	return dst
}

// Fit trains the network on (inputs, labels) with softmax cross-entropy.
// inputs is (N, ...InShape). It returns the final epoch's mean loss.
func (n *Network) Fit(inputs *tensor.Tensor, labels []int, cfg TrainConfig) float64 {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.ClipNorm == 0 {
		cfg.ClipNorm = 5
	}
	if cfg.Compute != nil {
		n.SetCompute(cfg.Compute)
	}
	if cfg.Arena != nil {
		n.SetArena(cfg.Arena)
	} else if n.arena == nil {
		n.SetArena(NewArena(nil))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := &SGD{LR: cfg.LR, Momentum: cfg.Momentum, Decay: cfg.Decay}
	params := n.Params()
	total := inputs.Shape[0]
	sample := len(inputs.Data) / total
	order := rng.Perm(total)
	bshape := append([]int{0}, n.InShape...)
	fit := cfg.Obs.StartSpan("nn.fit",
		obs.Int("samples", total), obs.Int("epochs", cfg.Epochs),
		obs.Int("batch_size", cfg.BatchSize), obs.F64("lr", cfg.LR))
	var lastLoss float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		var epStart time.Time
		if cfg.Obs.Enabled() {
			epStart = time.Now()
		}
		rng.Shuffle(total, func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss, batches := 0.0, 0
		for start := 0; start < total; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > total {
				end = total
			}
			bs := end - start
			bshape[0] = bs
			bx := n.arena.tensor(n, slotBatchX, bshape...)
			by := n.arena.intsBuf(n, slotBatchY, bs)
			for bi := 0; bi < bs; bi++ {
				src := order[start+bi]
				copy(bx.Data[bi*sample:(bi+1)*sample], inputs.Data[src*sample:(src+1)*sample])
				by[bi] = labels[src]
			}
			epochLoss += n.trainStep(bx, by, params, opt, &cfg)
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Obs.Enabled() {
			fit.Event("nn.epoch", obs.Int("epoch", ep), obs.F64("loss", lastLoss),
				obs.F64("seconds", time.Since(epStart).Seconds()))
		}
		if cfg.Verbose != nil {
			cfg.Verbose(ep, lastLoss)
		}
		if cfg.Energy != nil && cfg.SampleEnergyJ > 0 {
			cfg.Energy.ChargeSpan(&fit, energy.AccountTrain, cfg.SampleEnergyJ*float64(total))
		}
	}
	fit.End(obs.F64("loss", lastLoss))
	return lastLoss
}

// Accuracy evaluates top-1 accuracy on (inputs, labels) in inference mode.
// Chunk staging reuses the arena's cached view header when one is installed,
// so evaluation allocates nothing per chunk.
func (n *Network) Accuracy(inputs *tensor.Tensor, labels []int) float64 {
	total := inputs.Shape[0]
	sample := len(inputs.Data) / total
	correct := 0
	const chunk = 32
	bshape := append(append(n.evalShape[:0], 0), n.InShape...)
	n.evalShape = bshape
	for start := 0; start < total; start += chunk {
		end := start + chunk
		if end > total {
			end = total
		}
		bs := end - start
		bshape[0] = bs
		bx := n.arena.view(n, slotView, inputs.Data[start*sample:end*sample], bshape...)
		logits := n.Forward(bx, false)
		k := logits.Shape[1]
		for i := 0; i < bs; i++ {
			best, bi := math.Inf(-1), 0
			for j := 0; j < k; j++ {
				if v := logits.Data[i*k+j]; v > best {
					best, bi = v, j
				}
			}
			if bi == labels[start+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}
