package nn

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"solarml/internal/compute"
	"solarml/internal/obs"
	"solarml/internal/tensor"
)

// Network is a sequential stack of layers ending in logits over NumClasses.
type Network struct {
	InShape []int // per-sample input shape
	Layers  []Layer
}

// NewNetwork returns a network for the given per-sample input shape.
func NewNetwork(inShape []int, layers ...Layer) *Network {
	s := make([]int, len(inShape))
	copy(s, inShape)
	return &Network{InShape: s, Layers: layers}
}

// Init initializes all layer parameters from rng.
func (n *Network) Init(rng *rand.Rand) {
	for _, l := range n.Layers {
		l.Init(rng)
	}
}

// SetCompute installs a compute context on every layer that supports a
// pluggable backend. It governs both training and inference kernels; a nil
// context restores the default serial, non-pooled behaviour.
func (n *Network) SetCompute(ctx *compute.Context) {
	for _, l := range n.Layers {
		if cu, ok := l.(ComputeUser); ok {
			cu.SetCompute(ctx)
		}
	}
}

// OutShape returns the per-sample output shape.
func (n *Network) OutShape() []int {
	s := n.InShape
	for _, l := range n.Layers {
		s = l.OutShape(s)
	}
	return s
}

// Forward runs the batched input through every layer.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Params returns all trainable parameters.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int64 {
	var c int64
	for _, p := range n.Params() {
		c += int64(p.Value.Len())
	}
	return c
}

// ZeroGrads clears all parameter gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// MACsByKind returns per-sample MAC counts grouped by layer kind, the
// feature vector of the paper's layer-wise inference energy model.
func (n *Network) MACsByKind() map[LayerKind]int64 {
	out := make(map[LayerKind]int64)
	s := n.InShape
	for _, l := range n.Layers {
		out[l.Kind()] += l.MACs(s)
		s = l.OutShape(s)
	}
	return out
}

// TotalMACs returns the per-sample MAC count summed over all layers,
// the single proxy used by the μNAS/HarvNet baseline energy model.
func (n *Network) TotalMACs() int64 {
	var t int64
	for _, v := range n.MACsByKind() {
		t += v
	}
	return t
}

// PeakActivation returns the largest per-sample activation element count
// across layer boundaries, a proxy for working RAM.
func (n *Network) PeakActivation() int64 {
	s := n.InShape
	peak := int64(shapeVolume(s))
	for _, l := range n.Layers {
		s = l.OutShape(s)
		if v := int64(shapeVolume(s)); v > peak {
			peak = v
		}
	}
	return peak
}

// MemoryBytes estimates MCU RAM: weights at weightBits plus the two largest
// consecutive activations at activationBits (double-buffered execution).
func (n *Network) MemoryBytes(weightBits, activationBits int) int64 {
	wb := n.ParamCount() * int64(weightBits) / 8
	// Two largest consecutive activation buffers.
	s := n.InShape
	prev := int64(shapeVolume(s))
	var peakPair int64 = prev
	for _, l := range n.Layers {
		s = l.OutShape(s)
		cur := int64(shapeVolume(s))
		if prev+cur > peakPair {
			peakPair = prev + cur
		}
		prev = cur
	}
	ab := peakPair * int64(activationBits) / 8
	return wb + ab
}

// Softmax converts logits (N, K) into probabilities row by row.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		m := math.Inf(-1)
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		s := 0.0
		dst := out.Data[i*k : (i+1)*k]
		for j, v := range row {
			e := math.Exp(v - m)
			dst[j] = e
			s += e
		}
		for j := range dst {
			dst[j] /= s
		}
	}
	return out
}

// CrossEntropy returns the mean negative log-likelihood of labels under the
// softmax of logits, together with the gradient with respect to the logits.
func CrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	probs := Softmax(logits)
	grad = tensor.New(n, k)
	for i, y := range labels {
		p := probs.Data[i*k+y]
		loss -= math.Log(math.Max(p, 1e-12))
		for j := 0; j < k; j++ {
			g := probs.Data[i*k+j]
			if j == y {
				g -= 1
			}
			grad.Data[i*k+j] = g / float64(n)
		}
	}
	return loss / float64(n), grad
}

// SGD is a momentum optimizer with optional L2 weight decay.
type SGD struct {
	LR       float64
	Momentum float64
	Decay    float64
}

// Step applies one update to every parameter and leaves gradients intact;
// callers usually ZeroGrads before the next minibatch.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		for i := range p.Value.Data {
			g := p.Grad.Data[i] + o.Decay*p.Value.Data[i]
			p.Momentum.Data[i] = o.Momentum*p.Momentum.Data[i] - o.LR*g
			p.Value.Data[i] += p.Momentum.Data[i]
		}
	}
}

// TrainConfig bundles the knobs of Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	Decay     float64
	// ClipNorm bounds the global L2 norm of the gradient per minibatch
	// (0 selects the default of 5). NAS trains candidates with widely
	// varying input sizes at one learning rate; clipping keeps the
	// large-input ones from diverging. Set negative to disable.
	ClipNorm float64
	// QATWeightBits, when positive, enables quantization-aware training:
	// each minibatch runs forward/backward with the weights snapped to a
	// symmetric grid of this many bits while the optimizer updates the
	// full-precision shadow weights (straight-through estimation). The
	// trained model then survives post-training quantization at the same
	// width with far less accuracy loss.
	QATWeightBits int
	Seed          int64
	// Compute, when set, is installed on every ComputeUser layer before the
	// first minibatch: kernels run on its backend and scratch pool. Leave
	// nil to keep whatever context the network already carries (default:
	// serial kernels, fresh allocations).
	Compute *compute.Context
	// Verbose, when set, receives one line per epoch.
	Verbose func(epoch int, loss float64)
	// Obs, when set, receives one nn.epoch event per epoch (index, mean
	// loss, wall-clock seconds) and an nn.fit span wrapping the run.
	Obs *obs.Recorder
}

// clipGradients scales all gradients so their global L2 norm is at most c.
func clipGradients(params []*Param, c float64) {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= c || norm == 0 {
		return
	}
	scale := c / norm
	for _, p := range params {
		p.Grad.Scale(scale)
	}
}

// Fit trains the network on (inputs, labels) with softmax cross-entropy.
// inputs is (N, ...InShape). It returns the final epoch's mean loss.
func (n *Network) Fit(inputs *tensor.Tensor, labels []int, cfg TrainConfig) float64 {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.ClipNorm == 0 {
		cfg.ClipNorm = 5
	}
	if cfg.Compute != nil {
		n.SetCompute(cfg.Compute)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := &SGD{LR: cfg.LR, Momentum: cfg.Momentum, Decay: cfg.Decay}
	total := inputs.Shape[0]
	sample := len(inputs.Data) / total
	order := rng.Perm(total)
	fit := cfg.Obs.StartSpan("nn.fit",
		obs.Int("samples", total), obs.Int("epochs", cfg.Epochs),
		obs.Int("batch_size", cfg.BatchSize), obs.F64("lr", cfg.LR))
	var lastLoss float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		var epStart time.Time
		if cfg.Obs.Enabled() {
			epStart = time.Now()
		}
		rng.Shuffle(total, func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss, batches := 0.0, 0
		for start := 0; start < total; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > total {
				end = total
			}
			bs := end - start
			bshape := append([]int{bs}, n.InShape...)
			bx := tensor.New(bshape...)
			by := make([]int, bs)
			for bi := 0; bi < bs; bi++ {
				src := order[start+bi]
				copy(bx.Data[bi*sample:(bi+1)*sample], inputs.Data[src*sample:(src+1)*sample])
				by[bi] = labels[src]
			}
			n.ZeroGrads()
			var shadow [][]float64
			if cfg.QATWeightBits > 0 {
				// Straight-through estimator: compute with quantized
				// weights, update the full-precision shadows.
				shadow = n.SnapshotParams()
				for _, p := range n.Params() {
					quantizeTensorSym(p.Value, cfg.QATWeightBits)
				}
			}
			logits := n.Forward(bx, true)
			loss, grad := CrossEntropy(logits, by)
			for i := len(n.Layers) - 1; i >= 0; i-- {
				grad = n.Layers[i].Backward(grad)
			}
			if shadow != nil {
				n.RestoreParams(shadow)
			}
			if cfg.ClipNorm > 0 {
				clipGradients(n.Params(), cfg.ClipNorm)
			}
			opt.Step(n.Params())
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Obs.Enabled() {
			fit.Event("nn.epoch", obs.Int("epoch", ep), obs.F64("loss", lastLoss),
				obs.F64("seconds", time.Since(epStart).Seconds()))
		}
		if cfg.Verbose != nil {
			cfg.Verbose(ep, lastLoss)
		}
	}
	fit.End(obs.F64("loss", lastLoss))
	return lastLoss
}

// Accuracy evaluates top-1 accuracy on (inputs, labels) in inference mode.
func (n *Network) Accuracy(inputs *tensor.Tensor, labels []int) float64 {
	total := inputs.Shape[0]
	sample := len(inputs.Data) / total
	correct := 0
	const chunk = 32
	for start := 0; start < total; start += chunk {
		end := start + chunk
		if end > total {
			end = total
		}
		bs := end - start
		bshape := append([]int{bs}, n.InShape...)
		bx := tensor.FromSlice(inputs.Data[start*sample:end*sample], bshape...)
		logits := n.Forward(bx, false)
		k := logits.Shape[1]
		for i := 0; i < bs; i++ {
			best, bi := math.Inf(-1), 0
			for j := 0; j < k; j++ {
				if v := logits.Data[i*k+j]; v > best {
					best, bi = v, j
				}
			}
			if bi == labels[start+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}
