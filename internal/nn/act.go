package nn

import (
	"math/rand"

	"solarml/internal/compute"
	"solarml/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	ctx   *compute.Context
	arena *Arena
	mask  []bool

	// Current-dispatch operands plus the cached range closures: binding the
	// operands through fields lets one closure serve every step, so the
	// steady-state forward/backward allocates nothing.
	curX, curOut, curGrad, curDX []float64
	fwdFn, bwdFn                 func(i0, i1 int)
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Kind implements Layer.
func (r *ReLU) Kind() LayerKind { return KindReLU }

// SetCompute implements ComputeUser.
func (r *ReLU) SetCompute(ctx *compute.Context) { r.ctx = ctx }

// SetArena implements ArenaUser.
func (r *ReLU) SetArena(a *Arena) { r.arena = a }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int {
	out := make([]int, len(in))
	copy(out, in)
	return out
}

// Init implements Layer (no parameters).
func (r *ReLU) Init(rng *rand.Rand) {}

// forwardRange applies the activation on [i0, i1).
func (r *ReLU) forwardRange(i0, i1 int) {
	x, out, mask := r.curX, r.curOut, r.mask
	for i := i0; i < i1; i++ {
		if v := x[i]; v > 0 {
			out[i] = v
			mask[i] = true
		}
	}
}

// backwardRange applies the mask on [i0, i1).
func (r *ReLU) backwardRange(i0, i1 int) {
	grad, dx, mask := r.curGrad, r.curDX, r.mask
	for i := i0; i < i1; i++ {
		if mask[i] {
			dx[i] = grad[i]
		}
	}
}

// Forward implements Layer. The loop is element-disjoint, so it fans out
// over the compute backend bit-identically at any worker count.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := r.arena.tensor(r, slotOut, x.Shape...)
	r.mask = r.arena.boolsBuf(r, slotMask, len(x.Data))
	r.curX, r.curOut = x.Data, out.Data
	if r.fwdFn == nil {
		r.fwdFn = r.forwardRange
	}
	r.ctx.ParallelFor(len(x.Data), 1, r.fwdFn)
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := r.arena.tensor(r, slotDX, grad.Shape...)
	r.curGrad, r.curDX = grad.Data, dx.Data
	if r.bwdFn == nil {
		r.bwdFn = r.backwardRange
	}
	r.ctx.ParallelFor(len(r.mask), 1, r.bwdFn)
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// MACs implements Layer: activations carry no multiply-accumulates.
func (r *ReLU) MACs(in []int) int64 { return 0 }

// Flatten reshapes (N, C, H, W) to (N, C·H·W). It exists so architecture
// specs can express the conv→dense transition explicitly.
type Flatten struct {
	arena  *Arena
	lastIn []int
}

// NewFlatten returns a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Kind implements Layer.
func (f *Flatten) Kind() LayerKind { return KindFlatten }

// SetArena implements ArenaUser.
func (f *Flatten) SetArena(a *Arena) { f.arena = a }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int { return []int{shapeVolume(in)} }

// Init implements Layer (no parameters).
func (f *Flatten) Init(rng *rand.Rand) {}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.lastIn = append(f.lastIn[:0], x.Shape...)
	n := x.Shape[0]
	return f.arena.view(f, slotView, x.Data, n, len(x.Data)/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return f.arena.view(f, slotView2, grad.Data, f.lastIn...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// MACs implements Layer.
func (f *Flatten) MACs(in []int) int64 { return 0 }
