package nn

import (
	"math/rand"

	"solarml/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Kind implements Layer.
func (r *ReLU) Kind() LayerKind { return KindReLU }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int {
	out := make([]int, len(in))
	copy(out, in)
	return out
}

// Init implements Layer (no parameters).
func (r *ReLU) Init(rng *rand.Rand) {}

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	r.mask = make([]bool, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(grad.Shape...)
	for i, m := range r.mask {
		if m {
			dx.Data[i] = grad.Data[i]
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// MACs implements Layer: activations carry no multiply-accumulates.
func (r *ReLU) MACs(in []int) int64 { return 0 }

// Flatten reshapes (N, C, H, W) to (N, C·H·W). It exists so architecture
// specs can express the conv→dense transition explicitly.
type Flatten struct {
	lastIn []int
}

// NewFlatten returns a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Kind implements Layer.
func (f *Flatten) Kind() LayerKind { return KindFlatten }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int { return []int{shapeVolume(in)} }

// Init implements Layer (no parameters).
func (f *Flatten) Init(rng *rand.Rand) {}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.lastIn = make([]int, len(x.Shape))
	copy(f.lastIn, x.Shape)
	n := x.Shape[0]
	return x.Reshape(n, len(x.Data)/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.lastIn...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// MACs implements Layer.
func (f *Flatten) MACs(in []int) int64 { return 0 }
