//go:build !race

package nn

import (
	"testing"

	"solarml/internal/compute"
)

// TestInt8ForwardZeroAllocs pins the inference-arena contract: the
// steady-state quantized forward pass performs zero heap allocations, at
// batch 1 and at batch N, serial and pooled. (Excluded under -race, whose
// instrumentation changes allocation behaviour.)
func TestInt8ForwardZeroAllocs(t *testing.T) {
	m, _, x, _ := convertGesture(t)
	sample := m.InVol()
	ctxs := map[string]*compute.Context{
		"serial": nil,
		"pooled": compute.NewContextFor(4, nil),
	}
	for name, ctx := range ctxs {
		for _, batch := range []int{1, 16} {
			ex := m.NewExecutor(ctx, batch)
			in := x.Data[:batch*sample]
			ex.Forward(in, batch) // warm the cached closures
			allocs := testing.AllocsPerRun(10, func() {
				ex.Forward(in, batch)
			})
			if allocs != 0 {
				t.Errorf("%s batch %d: %.0f allocs/op, want 0", name, batch, allocs)
			}
		}
	}
}
