package nn

import (
	"math"
	"math/rand"
	"testing"

	"solarml/internal/tensor"
)

// lossOf computes L = 0.5·Σy² for the layer output on x in training mode.
func lossOf(l Layer, x *tensor.Tensor) float64 {
	y := l.Forward(x, true)
	s := 0.0
	for _, v := range y.Data {
		s += 0.5 * v * v
	}
	return s
}

// checkGradients verifies analytic gradients of a layer (both input and
// parameter gradients) against central finite differences under the loss
// L = 0.5·Σy².
func checkGradients(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	for _, p := range l.Params() {
		p.Grad.Zero()
	}
	y := l.Forward(x, true)
	dy := y.Clone() // dL/dy = y
	dx := l.Backward(dy)

	const h = 1e-5
	// Input gradient.
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := lossOf(l, x)
		x.Data[i] = orig - h
		lm := lossOf(l, x)
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-dx.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("input grad mismatch at %d: analytic %.6g numeric %.6g", i, dx.Data[i], num)
		}
	}
	// Parameter gradients. Re-run forward/backward to leave caches consistent.
	for pi, p := range l.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			lp := lossOf(l, x)
			p.Value.Data[i] = orig - h
			lm := lossOf(l, x)
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-p.Grad.Data[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %d grad mismatch at %d: analytic %.6g numeric %.6g", pi, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewDense(5, 3)
	l.Init(rng)
	x := tensor.New(4, 5)
	x.RandFill(rng, 1)
	checkGradients(t, l, x, 1e-5)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewConv2D(2, 3, 3, 1, 1)
	l.Init(rng)
	x := tensor.New(2, 2, 5, 5)
	x.RandFill(rng, 1)
	checkGradients(t, l, x, 1e-4)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewConv2D(1, 2, 3, 2, 0)
	l.Init(rng)
	x := tensor.New(2, 1, 7, 7)
	x.RandFill(rng, 1)
	checkGradients(t, l, x, 1e-4)
}

func TestDepthwiseConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := NewDepthwiseConv2D(3, 3, 1, 1)
	l.Init(rng)
	x := tensor.New(2, 3, 4, 4)
	x.RandFill(rng, 1)
	checkGradients(t, l, x, 1e-4)
}

func TestAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewAvgPool2D(2)
	x := tensor.New(2, 2, 4, 4)
	x.RandFill(rng, 1)
	checkGradients(t, l, x, 1e-5)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := NewMaxPool2D(2)
	x := tensor.New(2, 2, 4, 4)
	// Keep entries well separated so the argmax is stable under ±h probes.
	for i := range x.Data {
		x.Data[i] = float64(rng.Intn(1000)) / 10
	}
	checkGradients(t, l, x, 1e-5)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := NewBatchNorm(2)
	l.Init(rng)
	// Non-trivial gamma/beta so gradients are exercised.
	l.Gamma.Value.Data[0], l.Gamma.Value.Data[1] = 1.3, 0.7
	l.Beta.Value.Data[0], l.Beta.Value.Data[1] = 0.2, -0.4
	x := tensor.New(3, 2, 2, 2)
	x.RandFill(rng, 1)
	checkGradients(t, l, x, 1e-3)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	l := NewReLU()
	x := tensor.New(3, 7)
	x.RandFill(rng, 1)
	// Push values away from the kink.
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.05 {
			x.Data[i] += 0.1
		}
	}
	checkGradients(t, l, x, 1e-6)
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	logits := tensor.New(3, 4)
	logits.RandFill(rng, 1)
	labels := []int{1, 3, 0}
	_, grad := CrossEntropy(logits, labels)
	const h = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		lp, _ := CrossEntropy(logits, labels)
		logits.Data[i] = orig - h
		lm, _ := CrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-4 {
			t.Fatalf("xent grad mismatch at %d: analytic %.6g numeric %.6g", i, grad.Data[i], num)
		}
	}
}
