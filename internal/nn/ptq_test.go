package nn

import (
	"math"
	"math/rand"
	"testing"

	"solarml/internal/tensor"
)

// trainedBlobNet returns a small trained MLP plus its dataset.
func trainedBlobNet(t *testing.T) (*Network, *tensor.Tensor, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(50))
	const n = 240
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 3
		angle := float64(cls) * 2 * math.Pi / 3
		x.Data[i*2] = math.Cos(angle) + rng.NormFloat64()*0.25
		x.Data[i*2+1] = math.Sin(angle) + rng.NormFloat64()*0.25
		y[i] = cls
	}
	net := NewNetwork([]int{2}, NewDense(2, 16), NewReLU(), NewDense(16, 3))
	net.Init(rng)
	net.Fit(x, y, TrainConfig{Epochs: 40, BatchSize: 16, LR: 0.1, Momentum: 0.9, Seed: 1})
	if acc := net.Accuracy(x, y); acc < 0.9 {
		t.Fatalf("float model failed to train: %.2f", acc)
	}
	return net, x, y
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	net, x, y := trainedBlobNet(t)
	accBefore := net.Accuracy(x, y)
	snap := net.SnapshotParams()
	// Wreck the weights.
	for _, p := range net.Params() {
		p.Value.Fill(0)
	}
	if net.Accuracy(x, y) >= accBefore {
		t.Fatal("zeroed network should be broken")
	}
	net.RestoreParams(snap)
	if net.Accuracy(x, y) != accBefore {
		t.Fatal("restore must reproduce the exact model")
	}
}

func TestRestoreRejectsWrongShape(t *testing.T) {
	net, _, _ := trainedBlobNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched snapshot")
		}
	}()
	net.RestoreParams([][]float64{{1}})
}

func TestPTQ8BitPreservesAccuracy(t *testing.T) {
	net, x, y := trainedBlobNet(t)
	floatAcc := net.Accuracy(x, y)
	snap := net.SnapshotParams()
	ptq, err := ApplyPTQ(net, x, PTQConfig{WeightBits: 8, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	qAcc := ptq.Accuracy(x, y)
	if qAcc < floatAcc-0.03 {
		t.Fatalf("8-bit PTQ accuracy %.3f vs float %.3f — drop too large", qAcc, floatAcc)
	}
	net.RestoreParams(snap)
}

func TestPTQLowBitsDegrade(t *testing.T) {
	net, x, y := trainedBlobNet(t)
	snap := net.SnapshotParams()
	accAt := func(bits int) float64 {
		net.RestoreParams(snap)
		ptq, err := ApplyPTQ(net, x, PTQConfig{WeightBits: bits, ActBits: bits})
		if err != nil {
			t.Fatal(err)
		}
		return ptq.Accuracy(x, y)
	}
	a8, a2 := accAt(8), accAt(2)
	if a2 >= a8 {
		t.Fatalf("2-bit (%.3f) should degrade versus 8-bit (%.3f)", a2, a8)
	}
	net.RestoreParams(snap)
}

func TestPTQWeightsOnGrid(t *testing.T) {
	net, x, _ := trainedBlobNet(t)
	_, err := ApplyPTQ(net, x, PTQConfig{WeightBits: 4, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Every weight tensor must now have ≤ 2^4-1 = 15 distinct magnitudes
	// on a uniform grid.
	for pi, p := range net.Params() {
		maxAbsV := 0.0
		for _, v := range p.Value.Data {
			if a := math.Abs(v); a > maxAbsV {
				maxAbsV = a
			}
		}
		if maxAbsV == 0 {
			continue
		}
		scale := maxAbsV / 7 // 4-bit symmetric levels
		for i, v := range p.Value.Data {
			q := v / scale
			if math.Abs(q-math.Round(q)) > 1e-9 {
				t.Fatalf("param %d value %d (%v) not on the 4-bit grid", pi, i, v)
			}
		}
	}
}

func TestPTQWeightBytes(t *testing.T) {
	net, x, _ := trainedBlobNet(t)
	count := net.ParamCount()
	p8, err := ApplyPTQ(net, x, PTQConfig{WeightBits: 8, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p8.WeightBytes() != count {
		t.Fatalf("8-bit weights: %d bytes for %d params", p8.WeightBytes(), count)
	}
	p4, err := ApplyPTQ(net, x, PTQConfig{WeightBits: 4, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := (count*4 + 7) / 8
	if p4.WeightBytes() != want {
		t.Fatalf("4-bit weights: %d bytes, want %d", p4.WeightBytes(), want)
	}
}

func TestPTQValidation(t *testing.T) {
	net, x, _ := trainedBlobNet(t)
	if _, err := ApplyPTQ(net, x, PTQConfig{WeightBits: 1, ActBits: 8}); err == nil {
		t.Fatal("1-bit weights must be rejected")
	}
	if _, err := ApplyPTQ(net, x, PTQConfig{WeightBits: 8, ActBits: 40}); err == nil {
		t.Fatal("40-bit activations must be rejected")
	}
	if _, err := ApplyPTQ(net, nil, PTQConfig{WeightBits: 8, ActBits: 8}); err == nil {
		t.Fatal("missing calibration batch must be rejected")
	}
}

func TestPTQOnConvNet(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const n, side = 120, 8
	x := tensor.New(n, 1, side, side)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		pos := rng.Intn(side)
		for j := 0; j < side; j++ {
			if cls == 0 {
				x.Set(1, i, 0, j, pos)
			} else {
				x.Set(1, i, 0, pos, j)
			}
		}
		y[i] = cls
	}
	arch := &Arch{Input: []int{1, side, side}, Body: []LayerSpec{
		{Kind: KindConv, Out: 4, K: 3, Stride: 1, Pad: 1},
		{Kind: KindReLU},
		{Kind: KindMaxPool, K: 2},
	}, Classes: 2}
	net, err := arch.Build()
	if err != nil {
		t.Fatal(err)
	}
	net.Init(rng)
	net.Fit(x, y, TrainConfig{Epochs: 15, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 2})
	floatAcc := net.Accuracy(x, y)
	ptq, err := ApplyPTQ(net, x, PTQConfig{WeightBits: 8, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if qAcc := ptq.Accuracy(x, y); qAcc < floatAcc-0.05 {
		t.Fatalf("conv PTQ accuracy %.3f vs float %.3f", qAcc, floatAcc)
	}
}
