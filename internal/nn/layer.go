// Package nn implements the tinyML neural-network substrate used by solarml:
// the layer types that appear in the paper's inference energy model (Conv,
// depthwise Conv, Dense, Max/Avg pooling, BatchNorm), softmax cross-entropy
// training with SGD+momentum, and the MAC / parameter / peak-RAM accounting
// that the NAS constraints and energy models consume.
//
// Tensors are laid out NCHW for convolutional layers and (N, F) for dense
// layers. All layers operate on a whole minibatch per call.
package nn

import (
	"math/rand"

	"solarml/internal/compute"
	"solarml/internal/tensor"
)

// LayerKind identifies a layer type for energy accounting. The paper's
// inference energy model assigns one regression coefficient per kind
// (E_M = Σ aᵢ·MACsᵢ + b), so kinds must distinguish every compute layer.
type LayerKind int

const (
	KindConv LayerKind = iota
	KindDWConv
	KindDense
	KindMaxPool
	KindAvgPool
	KindNorm
	KindReLU
	KindFlatten
	KindDropout
	numLayerKinds
)

// String returns the canonical kind name.
func (k LayerKind) String() string {
	switch k {
	case KindConv:
		return "Conv"
	case KindDWConv:
		return "DWConv"
	case KindDense:
		return "Dense"
	case KindMaxPool:
		return "MaxPool"
	case KindAvgPool:
		return "AvgPool"
	case KindNorm:
		return "Norm"
	case KindReLU:
		return "ReLU"
	case KindFlatten:
		return "Flatten"
	case KindDropout:
		return "Dropout"
	}
	return "Unknown"
}

// ComputeKinds lists the layer kinds that carry MACs and therefore appear in
// the layer-wise energy model.
func ComputeKinds() []LayerKind {
	return []LayerKind{KindConv, KindDWConv, KindDense, KindMaxPool, KindAvgPool, KindNorm}
}

// Param is a trainable tensor together with its gradient and SGD momentum
// buffer. Layers expose their parameters through Params so the optimizer can
// update them uniformly.
type Param struct {
	Value    *tensor.Tensor
	Grad     *tensor.Tensor
	Momentum *tensor.Tensor
}

func newParam(shape ...int) *Param {
	return &Param{
		Value:    tensor.New(shape...),
		Grad:     tensor.New(shape...),
		Momentum: tensor.New(shape...),
	}
}

// Layer is one stage of a sequential network.
type Layer interface {
	// Kind reports the layer type for energy accounting.
	Kind() LayerKind
	// OutShape returns the per-sample output shape for a per-sample input
	// shape (no batch dimension).
	OutShape(in []int) []int
	// Forward consumes a batched input and returns the batched output.
	// train selects training behaviour (e.g. batch statistics in Norm).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient of the loss with respect to the layer
	// output and returns the gradient with respect to the layer input,
	// accumulating parameter gradients along the way. It must be called
	// after Forward on the same minibatch.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly empty).
	Params() []*Param
	// MACs returns the multiply-accumulate count for one sample with the
	// given per-sample input shape.
	MACs(in []int) int64
	// Init initializes parameters from rng. No-op for parameter-free layers.
	Init(rng *rand.Rand)
}

// ComputeUser is implemented by layers whose kernels can run on a pluggable
// compute backend. The GEMM layers (Conv2D, DepthwiseConv2D, Dense) route
// their matrix kernels through it, and the elementwise layers (ReLU,
// pooling, BatchNorm, Dropout) route their loops through the context's
// grain-aware ParallelFor. Network.SetCompute and TrainConfig.Compute
// install one context on every such layer; layers with no context fall back
// to the serial backend with fresh allocations, so the zero value of every
// layer keeps working unchanged.
type ComputeUser interface {
	SetCompute(ctx *compute.Context)
}

// ArenaUser is implemented by layers that can draw their per-step output,
// gradient, and mask buffers from a step arena instead of allocating fresh
// tensors every minibatch. Network.SetArena installs one arena on every
// such layer; a layer with a nil arena keeps the allocate-per-call
// behaviour, so the zero value of every layer works unchanged. With an
// arena installed, a layer's Forward/Backward results are valid only until
// its next Forward/Backward call — the lifetime the training loop needs.
type ArenaUser interface {
	SetArena(a *Arena)
}

// shapeVolume returns the product of the dimensions.
func shapeVolume(shape []int) int {
	v := 1
	for _, d := range shape {
		v *= d
	}
	return v
}
