package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"solarml/internal/bytecodec"
)

// Model container. The raw SMLM stream (SaveModel/LoadModel) has no
// integrity protection and no room for sibling payload kinds, so the files
// cmd/deploy writes and cmd/serve loads wrap it in the same envelope the
// evolution checkpoints use: a magic + version header, a typed payload, and
// a CRC32 (IEEE) trailer over everything before it. A truncated copy, a
// flipped bit, or a file from a build with a different layout fails loudly
// instead of deserializing garbage into a served model.
//
//	"SOLARMDL" | uvarint version | uvarint kind | bytes payload | crc32 (LE)
//
// Payload kinds: float32-era SMLM model (payloadFloat) and the quantized
// int8 model (payloadInt8).
const (
	containerMagic   = "SOLARMDL"
	containerVersion = 1

	payloadFloat = 1
	payloadInt8  = 2
)

// writeContainer wraps payload in the versioned, checksummed envelope.
func writeContainer(w io.Writer, kind int, payload []byte) error {
	b := make([]byte, 0, len(containerMagic)+len(payload)+16)
	b = append(b, containerMagic...)
	b = bytecodec.AppendUvarint(b, containerVersion)
	b = bytecodec.AppendUvarint(b, uint64(kind))
	b = bytecodec.AppendBytes(b, payload)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	_, err := w.Write(b)
	return err
}

// readContainer verifies the envelope and returns the payload kind and
// bytes. Version skew is an explicit error (re-export, don't guess), as is
// any checksum or framing failure.
func readContainer(r io.Reader) (kind int, payload []byte, err error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return 0, nil, fmt.Errorf("nn: reading model container: %w", err)
	}
	if len(b) < len(containerMagic)+4 || string(b[:len(containerMagic)]) != containerMagic {
		return 0, nil, fmt.Errorf("nn: not a SolarML model container (bad magic)")
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return 0, nil, fmt.Errorf("nn: model container checksum mismatch (corrupt or truncated file)")
	}
	rd := bytecodec.NewReader(body[len(containerMagic):])
	ver := rd.Uvarint()
	if err := rd.Err(); err != nil {
		return 0, nil, fmt.Errorf("nn: model container header: %w", err)
	}
	if ver != containerVersion {
		return 0, nil, fmt.Errorf("nn: model container version %d; this build reads version %d (re-export the model with a matching cmd/deploy)", ver, containerVersion)
	}
	k := rd.Uvarint()
	payload = rd.Bytes()
	if err := rd.Err(); err != nil {
		return 0, nil, fmt.Errorf("nn: model container payload: %w", err)
	}
	if rd.Len() != 0 {
		return 0, nil, fmt.Errorf("nn: model container has %d trailing bytes", rd.Len())
	}
	return int(k), payload, nil
}

// SaveModelContainer writes the float model in the checksummed container
// (an SMLM stream as the payload).
func SaveModelContainer(w io.Writer, arch *Arch, net *Network) error {
	var buf bytes.Buffer
	if err := SaveModel(&buf, arch, net); err != nil {
		return err
	}
	return writeContainer(w, payloadFloat, buf.Bytes())
}

// LoadModelContainer reads a float model from the checksummed container.
func LoadModelContainer(r io.Reader) (*Arch, *Network, error) {
	kind, payload, err := readContainer(r)
	if err != nil {
		return nil, nil, err
	}
	if kind != payloadFloat {
		return nil, nil, fmt.Errorf("nn: container holds payload kind %d, want a float model (%d) — pass the int8 export to LoadInt8Model instead", kind, payloadFloat)
	}
	return LoadModel(bytes.NewReader(payload))
}

// SaveInt8Model writes the quantized model in the checksummed container.
func SaveInt8Model(w io.Writer, m *Int8Model) error {
	payload, err := appendInt8Model(nil, m)
	if err != nil {
		return err
	}
	return writeContainer(w, payloadInt8, payload)
}

// LoadInt8Model reads a quantized model from the checksummed container —
// the file cmd/serve consumes.
func LoadInt8Model(r io.Reader) (*Int8Model, error) {
	kind, payload, err := readContainer(r)
	if err != nil {
		return nil, err
	}
	if kind != payloadInt8 {
		return nil, fmt.Errorf("nn: container holds payload kind %d, want an int8 model (%d) — export one with cmd/deploy -qout", kind, payloadInt8)
	}
	return readInt8Model(payload)
}
