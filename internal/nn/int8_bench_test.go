package nn

import (
	"fmt"
	"runtime"
	"testing"

	"solarml/internal/tensor"
)

// benchGestureInt8 lowers the deploy-shaped gesture CNN once for the
// quantized-forward benchmarks.
func benchGestureInt8(b *testing.B) (*Int8Model, *Network, []float64) {
	b.Helper()
	m, net, x, _ := convertGesture(b)
	return m, net, x.Data
}

// BenchmarkFloatForward is the baseline the int8 path is gated against
// (≥2× at batch 1): the float inference pass as cmd/deploy and Accuracy
// run it.
func BenchmarkFloatForward(b *testing.B) {
	m, net, data := benchGestureInt8(b)
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			shape := append([]int{batch}, m.InShape()...)
			x := tensor.FromSlice(data[:batch*m.InVol()], shape...)
			b.ReportAllocs()
			runtime.GC() // drain fixture garbage so GC noise is the path's own
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Forward(x, false)
			}
		})
	}
}

// BenchmarkInt8Forward times the steady-state quantized forward pass; the
// allocs/op column must read 0.
func BenchmarkInt8Forward(b *testing.B) {
	m, _, data := benchGestureInt8(b)
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			ex := m.NewExecutor(nil, batch)
			in := data[:batch*m.InVol()]
			ex.Forward(in, batch) // warm the cached closures
			b.ReportAllocs()
			// A zero-alloc loop never triggers GC; collect the float bench's
			// garbage up front so a background mark phase (write barriers,
			// stolen cores) can't bleed into the quantized measurement.
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex.Forward(in, batch)
			}
		})
	}
}
