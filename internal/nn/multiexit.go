package nn

import (
	"fmt"
	"math"
	"math/rand"

	"solarml/internal/compute"
	"solarml/internal/obs"
	"solarml/internal/obs/energy"
	"solarml/internal/tensor"
)

// MultiExitNetwork is an early-exit network in the style of HarvNet [5]: a
// backbone split into stages, with a classifier head after every stage.
// At inference time a sample leaves through the first exit whose softmax
// confidence clears a threshold, or through the deepest exit the remaining
// energy can afford — the mechanism HarvNet uses to align accuracy with
// the harvested energy budget.
type MultiExitNetwork struct {
	InShape []int
	Classes int
	// Stages are the backbone segments; Exits[i] classifies the output of
	// stage i (flattened).
	Stages [][]Layer
	Exits  []*Dense

	ctx   *compute.Context
	arena *Arena

	// loss and clip cache the loss-head and clipper dispatch closures so
	// steady-state steps allocate nothing (see Network).
	loss lossScratch
	clip gradClipper

	stageOut []([]int) // per-stage output shape (per sample)
}

// NewMultiExit splits arch.Body after the given body indices (each index
// is the last layer of a stage; the remainder forms the final stage) and
// attaches a classifier head to every stage.
func NewMultiExit(arch *Arch, exitAfter []int) (*MultiExitNetwork, error) {
	if arch.Classes < 2 {
		return nil, fmt.Errorf("nn: multi-exit needs ≥2 classes")
	}
	for i := 1; i < len(exitAfter); i++ {
		if exitAfter[i] <= exitAfter[i-1] {
			return nil, fmt.Errorf("nn: exit indices must be strictly increasing")
		}
	}
	if len(exitAfter) > 0 && (exitAfter[0] < 0 || exitAfter[len(exitAfter)-1] >= len(arch.Body)-1) {
		return nil, fmt.Errorf("nn: exit indices must fall inside the body")
	}
	m := &MultiExitNetwork{
		InShape: append([]int(nil), arch.Input...),
		Classes: arch.Classes,
	}
	shape := append([]int(nil), arch.Input...)
	start := 0
	bounds := append(append([]int(nil), exitAfter...), len(arch.Body)-1)
	for _, end := range bounds {
		var stage []Layer
		for bi := start; bi <= end; bi++ {
			l, err := arch.Body[bi].materialize(shape)
			if err != nil {
				return nil, fmt.Errorf("nn: stage layer %d: %w", bi, err)
			}
			stage = append(stage, l)
			shape = l.OutShape(shape)
		}
		m.Stages = append(m.Stages, stage)
		m.stageOut = append(m.stageOut, append([]int(nil), shape...))
		m.Exits = append(m.Exits, NewDense(shapeVolume(shape), arch.Classes))
		start = end + 1
	}
	return m, nil
}

// Init initializes all backbone and exit parameters from rng.
func (m *MultiExitNetwork) Init(rng *rand.Rand) {
	for _, stage := range m.Stages {
		for _, l := range stage {
			l.Init(rng)
		}
	}
	for _, e := range m.Exits {
		e.Init(rng)
	}
}

// SetCompute installs a compute context on every backbone layer and exit
// head that supports a pluggable backend (nil restores the serial default).
func (m *MultiExitNetwork) SetCompute(ctx *compute.Context) {
	m.ctx = ctx
	for _, stage := range m.Stages {
		for _, l := range stage {
			if cu, ok := l.(ComputeUser); ok {
				cu.SetCompute(ctx)
			}
		}
	}
	for _, e := range m.Exits {
		e.SetCompute(ctx)
	}
}

// SetArena installs a step arena on the network, every backbone layer, and
// every exit head; per-step buffers are then reused across minibatches (see
// Network.SetArena for the buffer-lifetime contract). Nil restores the
// allocate-per-call default.
func (m *MultiExitNetwork) SetArena(a *Arena) {
	m.arena = a
	for _, stage := range m.Stages {
		for _, l := range stage {
			if au, ok := l.(ArenaUser); ok {
				au.SetArena(a)
			}
		}
	}
	for _, e := range m.Exits {
		e.SetArena(a)
	}
}

// Params returns every trainable parameter (backbone plus exits).
func (m *MultiExitNetwork) Params() []*Param {
	var ps []*Param
	for _, stage := range m.Stages {
		for _, l := range stage {
			ps = append(ps, l.Params()...)
		}
	}
	for _, e := range m.Exits {
		ps = append(ps, e.Params()...)
	}
	return ps
}

// NumExits returns the exit count.
func (m *MultiExitNetwork) NumExits() int { return len(m.Exits) }

// MACsThroughExit returns the per-sample MAC cost of leaving through exit
// k: all stages up to and including k, plus k's head.
func (m *MultiExitNetwork) MACsThroughExit(k int) int64 {
	var macs int64
	shape := m.InShape
	for s := 0; s <= k; s++ {
		for _, l := range m.Stages[s] {
			macs += l.MACs(shape)
			shape = l.OutShape(shape)
		}
	}
	macs += m.Exits[k].MACs([]int{shapeVolume(m.stageOut[k])})
	return macs
}

// MACsByKindThroughExit returns the per-kind breakdown for energy models.
func (m *MultiExitNetwork) MACsByKindThroughExit(k int) map[LayerKind]int64 {
	out := make(map[LayerKind]int64)
	shape := m.InShape
	for s := 0; s <= k; s++ {
		for _, l := range m.Stages[s] {
			out[l.Kind()] += l.MACs(shape)
			shape = l.OutShape(shape)
		}
	}
	out[KindDense] += m.Exits[k].MACs([]int{shapeVolume(m.stageOut[k])})
	return out
}

// forwardStages runs the backbone, returning each stage's output (batched).
func (m *MultiExitNetwork) forwardStages(x *tensor.Tensor, train bool) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(m.Stages))
	for s, stage := range m.Stages {
		for _, l := range stage {
			x = l.Forward(x, train)
		}
		outs[s] = x
	}
	return outs
}

// exitLogits classifies a stage output through its head. The flattening view
// header is reused across exits; that is safe because each exit's Backward
// (which reads the retained input) runs before the next exit's Forward.
func (m *MultiExitNetwork) exitLogits(k int, stageOut *tensor.Tensor, train bool) *tensor.Tensor {
	n := stageOut.Shape[0]
	flat := m.arena.view(m, slotView2, stageOut.Data, n, len(stageOut.Data)/n)
	return m.Exits[k].Forward(flat, train)
}

// FitConfig configures joint multi-exit training: the per-exit loss
// weights default to uniform.
type FitConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	ExitWeights []float64
	ClipNorm    float64
	Seed        int64
	// Compute, when set, is installed on backbone and exits before the
	// first minibatch (see TrainConfig.Compute).
	Compute *compute.Context
	// Arena, when set, is installed before the first minibatch; when nil
	// and the network carries no arena yet, Fit installs a fresh one (see
	// TrainConfig.Arena).
	Arena *Arena
	// Obs, when set, wraps the run in an nn.fit_multiexit span carrying
	// one nn.epoch event per epoch, mirroring TrainConfig.Obs.
	Obs *obs.Recorder
	// Energy and SampleEnergyJ book per-epoch training energy under the
	// train account, as in TrainConfig.
	Energy        *energy.Ledger
	SampleEnergyJ float64
}

// Fit trains backbone and exits jointly with a weighted sum of per-exit
// cross-entropies. Returns the final epoch's mean loss.
func (m *MultiExitNetwork) Fit(inputs *tensor.Tensor, labels []int, cfg FitConfig) float64 {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.ClipNorm == 0 {
		cfg.ClipNorm = 5
	}
	weights := cfg.ExitWeights
	if weights == nil {
		weights = make([]float64, len(m.Exits))
		for i := range weights {
			weights[i] = 1.0 / float64(len(weights))
		}
	}
	if len(weights) != len(m.Exits) {
		panic(fmt.Sprintf("nn: %d exit weights for %d exits", len(weights), len(m.Exits)))
	}
	if cfg.Compute != nil {
		m.SetCompute(cfg.Compute)
	}
	if cfg.Arena != nil {
		m.SetArena(cfg.Arena)
	} else if m.arena == nil {
		m.SetArena(NewArena(nil))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := &SGD{LR: cfg.LR, Momentum: cfg.Momentum}
	params := m.Params()
	total := inputs.Shape[0]
	sample := len(inputs.Data) / total
	order := rng.Perm(total)
	bshape := append([]int{0}, m.InShape...)
	headGrads := make([]*tensor.Tensor, len(m.Exits))
	fit := cfg.Obs.StartSpan("nn.fit_multiexit",
		obs.Int("samples", total), obs.Int("epochs", cfg.Epochs),
		obs.Int("batch_size", cfg.BatchSize), obs.Int("exits", len(m.Exits)),
		obs.F64("lr", cfg.LR))
	var lastLoss float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(total, func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss, batches := 0.0, 0
		for startIdx := 0; startIdx < total; startIdx += cfg.BatchSize {
			end := startIdx + cfg.BatchSize
			if end > total {
				end = total
			}
			bs := end - startIdx
			bshape[0] = bs
			bx := m.arena.tensor(m, slotBatchX, bshape...)
			by := m.arena.intsBuf(m, slotBatchY, bs)
			for bi := 0; bi < bs; bi++ {
				src := order[startIdx+bi]
				copy(bx.Data[bi*sample:(bi+1)*sample], inputs.Data[src*sample:(src+1)*sample])
				by[bi] = labels[src]
			}
			for _, p := range params {
				p.Grad.Zero()
			}
			stageOuts := m.forwardStages(bx, true)
			// Per-exit losses and head gradients. All exits share the (bs,
			// Classes) loss scratch — each exit's gradient is consumed by
			// its head's Backward before the next exit reuses the buffers.
			loss := 0.0
			for k := range m.Exits {
				logits := m.exitLogits(k, stageOuts[k], true)
				probs := m.arena.tensor(m, slotProbs, logits.Shape...)
				g := m.arena.tensor(m, slotGrad, logits.Shape...)
				l := m.loss.crossEntropyInto(m.ctx, logits, by, probs, g)
				loss += weights[k] * l
				g.Scale(weights[k])
				headGrads[k] = m.Exits[k].Backward(g) // grad wrt flattened stage out
			}
			// Backbone backward, deepest stage first, accumulating the
			// exit gradient at each junction.
			var upstream *tensor.Tensor
			for s := len(m.Stages) - 1; s >= 0; s-- {
				g := m.arena.view(m, slotView, headGrads[s].Data, stageOuts[s].Shape...)
				if upstream != nil {
					// Zero-fill + copy + add reproduces Clone+Add bits; the
					// accumulator is consumed by the stage's last layer
					// before the next junction reuses it.
					acc := m.arena.tensor(m, slotAcc, stageOuts[s].Shape...)
					copy(acc.Data, g.Data)
					acc.Add(upstream)
					g = acc
				}
				for li := len(m.Stages[s]) - 1; li >= 0; li-- {
					g = m.Stages[s][li].Backward(g)
				}
				upstream = g
			}
			if cfg.ClipNorm > 0 {
				m.clip.clip(m.ctx, params, cfg.ClipNorm)
			}
			opt.StepCtx(m.ctx, params)
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Obs.Enabled() {
			fit.Event("nn.epoch", obs.Int("epoch", ep), obs.F64("loss", lastLoss))
		}
		if cfg.Energy != nil && cfg.SampleEnergyJ > 0 {
			cfg.Energy.ChargeSpan(&fit, energy.AccountTrain, cfg.SampleEnergyJ*float64(total))
		}
	}
	fit.End(obs.F64("loss", lastLoss))
	return lastLoss
}

// ExitDecision records where one sample left the network.
type ExitDecision struct {
	Exit  int
	Class int
	Conf  float64
}

// InferConfident routes each sample out of the first exit whose softmax
// confidence reaches tau (the deepest exit takes whatever remains).
func (m *MultiExitNetwork) InferConfident(x *tensor.Tensor, tau float64) []ExitDecision {
	n := x.Shape[0]
	out := make([]ExitDecision, n)
	decided := make([]bool, n)
	stageOuts := m.forwardStages(x, false)
	for k := range m.Exits {
		logits := m.exitLogits(k, stageOuts[k], false)
		probs := Softmax(logits)
		kk := probs.Shape[1]
		for i := 0; i < n; i++ {
			if decided[i] {
				continue
			}
			best, bi := math.Inf(-1), 0
			for j := 0; j < kk; j++ {
				if v := probs.Data[i*kk+j]; v > best {
					best, bi = v, j
				}
			}
			if best >= tau || k == len(m.Exits)-1 {
				out[i] = ExitDecision{Exit: k, Class: bi, Conf: best}
				decided[i] = true
			}
		}
	}
	return out
}

// InferAtExit classifies every sample at one fixed exit (HarvNet's
// energy-budgeted mode: the scheduler picks the deepest affordable exit).
func (m *MultiExitNetwork) InferAtExit(x *tensor.Tensor, k int) []int {
	stageOuts := m.forwardStages(x, false)
	logits := m.exitLogits(k, stageOuts[k], false)
	n, kk := logits.Shape[0], logits.Shape[1]
	out := make([]int, n)
	for i := 0; i < n; i++ {
		best, bi := math.Inf(-1), 0
		for j := 0; j < kk; j++ {
			if v := logits.Data[i*kk+j]; v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// AccuracyAtExit evaluates top-1 accuracy through one exit.
func (m *MultiExitNetwork) AccuracyAtExit(x *tensor.Tensor, labels []int, k int) float64 {
	preds := m.InferAtExit(x, k)
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// DeepestAffordableExit returns the deepest exit whose inference energy
// (per the per-MAC cost) fits the budget, or -1 if none does.
func (m *MultiExitNetwork) DeepestAffordableExit(budgetJ float64, energyOf func(map[LayerKind]int64) float64) int {
	best := -1
	for k := 0; k < m.NumExits(); k++ {
		if energyOf(m.MACsByKindThroughExit(k)) <= budgetJ {
			best = k
		}
	}
	return best
}
