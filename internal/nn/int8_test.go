package nn

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"sync"
	"testing"

	"solarml/internal/compute"
	"solarml/internal/tensor"
)

// trainedGestureCNN trains the deploy-shaped gesture CNN ((1,6,120) IMU
// windows, 5 classes) on synthetic per-class oscillation patterns. The
// fixture is trained once per process and shared — every consumer treats
// the float network as read-only (ConvertInt8 restores the params it
// touches), and the training is seeded so the shared copy is the same model
// each caller would have trained.
var gestureFixture struct {
	once     sync.Once
	arch     *Arch
	net      *Network
	x        *tensor.Tensor
	y        []int
	acc      float64
	buildErr error
}

func trainedGestureCNN(t testing.TB) (*Arch, *Network, *tensor.Tensor, []int) {
	t.Helper()
	f := &gestureFixture
	f.once.Do(func() {
		f.arch, f.net, f.x, f.y, f.acc, f.buildErr = buildGestureCNN()
	})
	if f.buildErr != nil {
		t.Fatal(f.buildErr)
	}
	if f.acc < 0.8 {
		t.Fatalf("float gesture CNN failed to train: %.2f", f.acc)
	}
	return f.arch, f.net, f.x, f.y
}

func buildGestureCNN() (*Arch, *Network, *tensor.Tensor, []int, float64, error) {
	rng := rand.New(rand.NewSource(60))
	arch := &Arch{
		Input: []int{1, 6, 120},
		Body: []LayerSpec{
			{Kind: KindConv, Out: 6, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindMaxPool, K: 2},
			{Kind: KindDense, Out: 32},
			{Kind: KindReLU},
		},
		Classes: 5,
	}
	const n = 150
	x := tensor.New(n, 1, 6, 120)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 5
		y[i] = cls
		freq := 0.05 + 0.07*float64(cls)
		for c := 0; c < 6; c++ {
			phase := float64(c) * 0.6
			for s := 0; s < 120; s++ {
				v := math.Sin(freq*float64(s)+phase) + rng.NormFloat64()*0.15
				x.Set(v, i, 0, c, s)
			}
		}
	}
	net, err := arch.Build()
	if err != nil {
		return nil, nil, nil, nil, 0, err
	}
	net.Init(rng)
	net.Fit(x, y, TrainConfig{Epochs: 8, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 3})
	return arch, net, x, y, net.Accuracy(x, y), nil
}

func convertGesture(t testing.TB) (*Int8Model, *Network, *tensor.Tensor, []int) {
	t.Helper()
	arch, net, x, y := trainedGestureCNN(t)
	m, err := ConvertInt8(arch, net, x, PTQConfig{WeightBits: 8, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	return m, net, x, y
}

// TestInt8AgreesWithFloat pins the int8-vs-float32 contract on the gesture
// CNN: logits within a quantization-commensurate bound, argmax agreement on
// ≥90% of samples, and accuracy within 5 points of float.
func TestInt8AgreesWithFloat(t *testing.T) {
	m, net, x, y := convertGesture(t)

	floatLogits := net.Forward(x, false)
	ex := m.NewExecutor(nil, 32)
	n := x.Shape[0]
	sample := len(x.Data) / n
	k := m.Classes()

	// Logit error bound: quantization noise scales with the dynamic range
	// of the float logits.
	bound := 0.25 * floatLogits.MaxAbs()
	if bound == 0 {
		t.Fatal("degenerate float logits")
	}
	agree := 0
	for start := 0; start < n; start += 32 {
		end := start + 32
		if end > n {
			end = n
		}
		got := ex.Forward(x.Data[start*sample:end*sample], end-start)
		for i := 0; i < end-start; i++ {
			fBest, fArg, qBest, qArg := math.Inf(-1), 0, math.Inf(-1), 0
			for j := 0; j < k; j++ {
				f := floatLogits.Data[(start+i)*k+j]
				q := got[i*k+j]
				if d := math.Abs(f - q); d > bound {
					t.Fatalf("sample %d class %d: int8 logit %.4f vs float %.4f (bound %.4f)", start+i, j, q, f, bound)
				}
				if f > fBest {
					fBest, fArg = f, j
				}
				if q > qBest {
					qBest, qArg = q, j
				}
			}
			if fArg == qArg {
				agree++
			}
		}
	}
	if rate := float64(agree) / float64(n); rate < 0.9 {
		t.Fatalf("argmax agreement %.2f < 0.90", rate)
	}

	floatAcc := net.Accuracy(x, y)
	qAcc := m.Accuracy(nil, x, y)
	if qAcc < floatAcc-0.05 {
		t.Fatalf("int8 accuracy %.3f vs float %.3f — drop too large", qAcc, floatAcc)
	}
}

// TestInt8DeterministicAcrossWorkers pins bit-identical logits for serial
// and pooled executors at several worker counts.
func TestInt8DeterministicAcrossWorkers(t *testing.T) {
	m, _, x, _ := convertGesture(t)
	batch := 16
	in := x.Data[:batch*m.InVol()]
	ref := append([]float64(nil), m.NewExecutor(nil, batch).Forward(in, batch)...)
	for _, workers := range []int{2, 4, 7} {
		ctx := compute.NewContextFor(workers, nil)
		got := m.NewExecutor(ctx, batch).Forward(in, batch)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: logit %d = %v, serial %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestInt8CoversAllOps lowers an architecture exercising every op kind
// (dwconv, norm, avgpool, standalone relu included) and checks the int8
// accuracy stays near float.
func TestInt8CoversAllOps(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	arch := &Arch{
		Input: []int{2, 8, 16},
		Body: []LayerSpec{
			{Kind: KindConv, Out: 4, K: 3, Stride: 1, Pad: 1},
			{Kind: KindNorm},
			{Kind: KindReLU},
			{Kind: KindDWConv, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindAvgPool, K: 2},
			{Kind: KindMaxPool, K: 2},
			{Kind: KindReLU}, // after a pool: stays a standalone int8 op
			{Kind: KindDense, Out: 16},
			{Kind: KindReLU},
		},
		Classes: 3,
	}
	const n = 90
	x := tensor.New(n, 2, 8, 16)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 3
		y[i] = cls
		for c := 0; c < 2; c++ {
			for r := 0; r < 8; r++ {
				for s := 0; s < 16; s++ {
					v := rng.NormFloat64() * 0.2
					if r%3 == cls {
						v += 1.0
					}
					x.Set(v, i, c, r, s)
				}
			}
		}
	}
	net, err := arch.Build()
	if err != nil {
		t.Fatal(err)
	}
	net.Init(rng)
	net.Fit(x, y, TrainConfig{Epochs: 20, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 4})
	floatAcc := net.Accuracy(x, y)
	if floatAcc < 0.8 {
		t.Fatalf("float model failed to train: %.2f", floatAcc)
	}
	m, err := ConvertInt8(arch, net, x, PTQConfig{WeightBits: 8, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[int8OpKind]bool{}
	for i := range m.ops {
		kinds[m.ops[i].kind] = true
	}
	for _, k := range []int8OpKind{opConv, opDWConv, opNorm, opAvgPool, opMaxPool, opDense, opDenseLogits, opReLU} {
		if !kinds[k] {
			t.Fatalf("lowered program missing op kind %d", k)
		}
	}
	if qAcc := m.Accuracy(nil, x, y); qAcc < floatAcc-0.1 {
		t.Fatalf("int8 accuracy %.3f vs float %.3f", qAcc, floatAcc)
	}
}

// TestConvertInt8PreservesFloatModel pins the snapshot/restore contract:
// lowering must not perturb the float network it reads.
func TestConvertInt8PreservesFloatModel(t *testing.T) {
	arch, net, x, _ := trainedGestureCNN(t)
	before := net.SnapshotParams()
	if _, err := ConvertInt8(arch, net, x, PTQConfig{WeightBits: 8, ActBits: 8}); err != nil {
		t.Fatal(err)
	}
	after := net.SnapshotParams()
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatalf("param %d[%d] changed: %v → %v", i, j, before[i][j], after[i][j])
			}
		}
	}
}

func TestConvertInt8Validation(t *testing.T) {
	arch, net, x, _ := trainedGestureCNN(t)
	if _, err := ConvertInt8(arch, net, x, PTQConfig{WeightBits: 16, ActBits: 8}); err == nil {
		t.Fatal("16-bit weights must be rejected by the int8 lowering")
	}
	if _, err := ConvertInt8(arch, net, x, PTQConfig{WeightBits: 8, ActBits: 1}); err == nil {
		t.Fatal("1-bit activations must be rejected")
	}
	if _, err := ConvertInt8(arch, net, nil, PTQConfig{WeightBits: 8, ActBits: 8}); err == nil {
		t.Fatal("missing calibration batch must be rejected")
	}
}

// TestInt8ModelRoundTrip pins the codec: decode(encode(m)) must reproduce
// the serialized bytes and the logits exactly.
func TestInt8ModelRoundTrip(t *testing.T) {
	m, _, x, _ := convertGesture(t)
	var buf bytes.Buffer
	if err := SaveInt8Model(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadInt8Model(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := SaveInt8Model(&buf2, m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialized int8 model differs byte-for-byte")
	}
	in := x.Data[:4*m.InVol()]
	a := m.NewExecutor(nil, 4).Forward(in, 4)
	b := m2.NewExecutor(nil, 4).Forward(in, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logit %d: %v vs %v after round trip", i, a[i], b[i])
		}
	}
	if m2.ArchString() != m.ArchString() {
		t.Fatalf("arch string %q → %q", m.ArchString(), m2.ArchString())
	}
}

// ---- container envelope ---------------------------------------------------

func TestModelContainerRoundTrip(t *testing.T) {
	arch, net, x, y := trainedGestureCNN(t)
	var buf bytes.Buffer
	if err := SaveModelContainer(&buf, arch, net); err != nil {
		t.Fatal(err)
	}
	arch2, net2, err := LoadModelContainer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if arch2.String() != arch.String() {
		t.Fatalf("arch %q → %q", arch.String(), arch2.String())
	}
	if a, b := net.Accuracy(x, y), net2.Accuracy(x, y); a != b {
		t.Fatalf("reloaded accuracy %v, want %v", b, a)
	}
}

func TestModelContainerRejectsCorruption(t *testing.T) {
	arch, net, _, _ := trainedGestureCNN(t)
	var buf bytes.Buffer
	if err := SaveModelContainer(&buf, arch, net); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// A flipped bit in the middle must fail the checksum.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x40
	if _, _, err := LoadModelContainer(bytes.NewReader(bad)); err == nil {
		t.Fatal("bit flip must fail the checksum")
	}

	// Truncation must fail loudly.
	if _, _, err := LoadModelContainer(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Fatal("truncated container must be rejected")
	}

	// Wrong magic.
	bad = append([]byte(nil), good...)
	bad[0] = 'X'
	if _, _, err := LoadModelContainer(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic must be rejected")
	}
}

func TestModelContainerRejectsVersionSkew(t *testing.T) {
	arch, net, _, _ := trainedGestureCNN(t)
	var buf bytes.Buffer
	if err := SaveModelContainer(&buf, arch, net); err != nil {
		t.Fatal(err)
	}
	// Patch the version uvarint (first byte after the magic) to a future
	// version and re-seal the checksum: the reader must reject the skew
	// explicitly rather than misparse the payload.
	b := append([]byte(nil), buf.Bytes()...)
	if b[len(containerMagic)] != containerVersion {
		t.Fatal("test assumes a single-byte version uvarint")
	}
	b[len(containerMagic)] = containerVersion + 1
	body := b[:len(b)-4]
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(body))
	_, _, err := LoadModelContainer(bytes.NewReader(b))
	if err == nil {
		t.Fatal("version skew must be rejected")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("version")) {
		t.Fatalf("skew error should mention the version, got: %v", err)
	}
}

func TestModelContainerRejectsWrongKind(t *testing.T) {
	m, _, _, _ := convertGesture(t)
	var qbuf bytes.Buffer
	if err := SaveInt8Model(&qbuf, m); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadModelContainer(bytes.NewReader(qbuf.Bytes())); err == nil {
		t.Fatal("float loader must refuse an int8 payload")
	}
	arch, net, _, _ := trainedGestureCNN(t)
	var fbuf bytes.Buffer
	if err := SaveModelContainer(&fbuf, arch, net); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInt8Model(bytes.NewReader(fbuf.Bytes())); err == nil {
		t.Fatal("int8 loader must refuse a float payload")
	}
}

// TestInt8ModelSmallerThanFloat pins the acceptance ratio: the serialized
// int8 model must be ≥3× smaller than the float export of the same network.
func TestInt8ModelSmallerThanFloat(t *testing.T) {
	m, net, _, _ := convertGesture(t)
	arch, _, _, _ := trainedGestureCNN(t)
	var fbuf, qbuf bytes.Buffer
	if err := SaveModelContainer(&fbuf, arch, net); err != nil {
		t.Fatal(err)
	}
	if err := SaveInt8Model(&qbuf, m); err != nil {
		t.Fatal(err)
	}
	if qbuf.Len()*3 > fbuf.Len() {
		t.Fatalf("int8 export %d bytes vs float %d — want ≥3× smaller", qbuf.Len(), fbuf.Len())
	}
}
