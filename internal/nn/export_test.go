package nn

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestExportCHeaderStructure(t *testing.T) {
	net, x, _ := trainedBlobNet(t)
	ptq, err := ApplyPTQ(net, x, PTQConfig{WeightBits: 8, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ptq.ExportCHeader(&buf, "gesture-digits"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"#ifndef SOLARML_GESTURE_DIGITS_H",
		"#include <stdint.h>",
		"GESTURE_DIGITS_WEIGHT_BITS 8",
		"static const int8_t gesture_digits_weights_0[",
		"static const float gesture_digits_scale_0",
		"gesture_digits_act_scales",
		"#endif",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("header missing %q", want)
		}
	}
	// One weight array and one scale per parameter tensor.
	if n := strings.Count(out, "_weights_"); n != len(net.Params()) {
		t.Fatalf("%d weight arrays for %d tensors", n, len(net.Params()))
	}
}

func TestExportCHeaderValuesRoundTrip(t *testing.T) {
	// Dequantized header values must reproduce the PTQ weights.
	net, x, _ := trainedBlobNet(t)
	ptq, err := ApplyPTQ(net, x, PTQConfig{WeightBits: 8, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ptq.ExportCHeader(&buf, "m"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for ti, param := range net.Params() {
		scale := extractFloat(t, out, fmt.Sprintf("m_scale_%d = ", ti))
		ints := extractInts(t, out, fmt.Sprintf("m_weights_%d[", ti))
		if len(ints) != param.Value.Len() {
			t.Fatalf("tensor %d: %d ints for %d weights", ti, len(ints), param.Value.Len())
		}
		for i, q := range ints {
			want := param.Value.Data[i]
			got := float64(q) * scale
			if diff := got - want; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("tensor %d weight %d: header %v vs model %v", ti, i, got, want)
			}
		}
	}
}

func TestExportCHeaderRejectsWideWeights(t *testing.T) {
	net, x, _ := trainedBlobNet(t)
	ptq, err := ApplyPTQ(net, x, PTQConfig{WeightBits: 16, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ptq.ExportCHeader(&bytes.Buffer{}, "m"); err == nil {
		t.Fatal("16-bit export must be rejected")
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"gesture-digits": "gesture_digits",
		"2fast":          "m2fast",
		"":               "model",
		"ok_name":        "ok_name",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// extractFloat pulls the float literal following the marker.
func extractFloat(t *testing.T, s, marker string) float64 {
	t.Helper()
	i := strings.Index(s, marker)
	if i < 0 {
		t.Fatalf("marker %q not found", marker)
	}
	rest := s[i+len(marker):]
	end := strings.IndexAny(rest, "f;")
	v, err := strconv.ParseFloat(rest[:end], 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", rest[:end], err)
	}
	return v
}

// extractInts pulls the int8 initializer list following the marker.
func extractInts(t *testing.T, s, marker string) []int {
	t.Helper()
	i := strings.Index(s, marker)
	if i < 0 {
		t.Fatalf("marker %q not found", marker)
	}
	body := s[i:]
	open := strings.Index(body, "{")
	closeIdx := strings.Index(body, "}")
	var out []int
	for _, tok := range strings.Split(body[open+1:closeIdx], ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			t.Fatalf("parsing %q: %v", tok, err)
		}
		out = append(out, v)
	}
	return out
}
