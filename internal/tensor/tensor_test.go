package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndVolume(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tt.Len())
	}
	if tt.Dims() != 3 {
		t.Fatalf("Dims = %d, want 3", tt.Dims())
	}
	for _, v := range tt.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive dimension")
		}
	}()
	New(2, 0)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(3, 4)
	tt.Set(7.5, 2, 1)
	if got := tt.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", got)
	}
	if got := tt.Data[2*4+1]; got != 7.5 {
		t.Fatalf("flat layout wrong: %v", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	tt := New(3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	tt.At(3, 0)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	tt := FromSlice(d, 2, 2)
	tt.Set(9, 0, 0)
	if d[0] != 9 {
		t.Fatal("FromSlice must wrap, not copy")
	}
}

func TestReshapeSharesBuffer(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(99, 0, 0)
	if a.At(0, 0) != 99 {
		t.Fatal("Reshape must share the backing buffer")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 5
	if a.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	a.Add(b)
	want := []float64{5, 7, 9}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("Add: a[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	a.Sub(b)
	for i, w := range []float64{1, 2, 3} {
		if a.Data[i] != w {
			t.Fatalf("Sub: a[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	a.MulElem(b)
	for i, w := range []float64{4, 10, 18} {
		if a.Data[i] != w {
			t.Fatalf("MulElem: a[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	a.Scale(0.5)
	for i, w := range []float64{2, 5, 9} {
		if a.Data[i] != w {
			t.Fatalf("Scale: a[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{-1, 3, 2, 0}, 4)
	if a.Sum() != 4 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != 1 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Max() != 3 {
		t.Fatalf("Max = %v", a.Max())
	}
	if a.Argmax() != 1 {
		t.Fatalf("Argmax = %v", a.Argmax())
	}
	if got := a.L2Norm(); math.Abs(got-math.Sqrt(14)) > 1e-12 {
		t.Fatalf("L2Norm = %v", got)
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if at.Shape[0] != 3 || at.Shape[1] != 2 {
		t.Fatalf("transpose shape %v", at.Shape)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatal("transpose values wrong")
	}
}

func TestMatMulTransConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 5)
	b := New(4, 3)
	a.RandFill(rng, 1)
	b.RandFill(rng, 1)
	// aᵀ×b two ways.
	got := MatMulTransA(a, b)
	want := MatMul(Transpose2D(a), b)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("MatMulTransA mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	// a×bᵀ two ways: (4,5)×(3,5)ᵀ.
	c := New(3, 5)
	c.RandFill(rng, 1)
	got2 := MatMulTransB(a, c)
	want2 := MatMul(a, Transpose2D(c))
	for i := range want2.Data {
		if math.Abs(got2.Data[i]-want2.Data[i]) > 1e-12 {
			t.Fatalf("MatMulTransB mismatch at %d", i)
		}
	}
}

// Property: matmul distributes over addition, (a+b)×c = a×c + b×c.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b, c := New(m, k), New(m, k), New(k, n)
		a.RandFill(rng, 1)
		b.RandFill(rng, 1)
		c.RandFill(rng, 1)
		ab := a.Clone()
		ab.Add(b)
		left := MatMul(ab, c)
		right := MatMul(a, c)
		right.Add(MatMul(b, c))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := New(m, n)
		a.RandFill(rng, 1)
		b := Transpose2D(Transpose2D(a))
		if !SameShape(a, b) {
			return false
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAxpyInto(t *testing.T) {
	dst := FromSlice([]float64{1, 1}, 2)
	src := FromSlice([]float64{2, 3}, 2)
	AxpyInto(dst, 2, src)
	if dst.Data[0] != 5 || dst.Data[1] != 7 {
		t.Fatalf("Axpy result %v", dst.Data)
	}
}

func TestRandFillRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(1000)
	a.RandFill(rng, 0.5)
	for _, v := range a.Data {
		if v < -0.5 || v > 0.5 {
			t.Fatalf("RandFill out of range: %v", v)
		}
	}
}
