// Package tensor provides a minimal dense tensor type and the linear-algebra
// kernels used by the solarml neural-network substrate. Tensors are row-major
// float64 buffers with an explicit shape; all operations are deterministic
// and allocation-explicit so that callers can account for peak memory, which
// matters when estimating MCU RAM usage.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major tensor.
type Tensor struct {
	// Shape holds the extent of each dimension, outermost first.
	Shape []int
	// Data is the backing buffer, of length equal to the product of Shape.
	Data []float64
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is non-positive.
//
// The shape is copied before any other use so the variadic parameter does
// not escape: callers building a shape inline keep it on their stack.
func New(shape ...int) *Tensor {
	s := make([]int, len(shape))
	copy(s, shape)
	n := 1
	for _, d := range s {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, s))
		}
		n *= d
	}
	return &Tensor{Shape: s, Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must match the shape volume. As with
// New, the shape is copied up front so the variadic parameter stays on the
// caller's stack.
func FromSlice(data []float64, shape ...int) *Tensor {
	s := make([]int, len(shape))
	copy(s, shape)
	n := 1
	for _, d := range s {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), s, n))
	}
	return &Tensor{Shape: s, Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape of equal volume.
// The backing buffer is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.Data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: t.Data}
}

// index converts multi-dimensional indices to a flat offset.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.Shape[i], i))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.index(idx...)] }

// Set assigns the element at the given indices.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.index(idx...)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// RandFill fills t with uniform values in [-scale, scale] from rng.
func (t *Tensor) RandFill(rng *rand.Rand, scale float64) {
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// RandNormal fills t with Gaussian values of the given standard deviation.
func (t *Tensor) RandNormal(rng *rand.Rand, stddev float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * stddev
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// Add computes t += o element-wise.
func (t *Tensor) Add(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Add length mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Sub computes t -= o element-wise.
func (t *Tensor) Sub(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Sub length mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// MulElem computes t *= o element-wise.
func (t *Tensor) MulElem(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: MulElem length mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AxpyInto computes dst += alpha*src element-wise.
func AxpyInto(dst *Tensor, alpha float64, src *Tensor) {
	if len(dst.Data) != len(src.Data) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] += alpha * v
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.Data)) }

// Max returns the maximum element value.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// MaxAbs returns the largest element magnitude — the statistic symmetric
// quantization calibrates from (scale = MaxAbs / (2^(bits−1)−1)).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Argmax returns the flat index of the maximum element.
func (t *Tensor) Argmax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders a compact description for debugging.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(len=%d)", t.Shape, len(t.Data))
}
