package tensor

import (
	"fmt"

	"solarml/internal/compute"
)

// MatMul returns the matrix product a×b for 2-D tensors.
// a has shape (m, k) and b has shape (k, n); the result has shape (m, n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul requires 2-D operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %d vs %d", k, k2))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a×b, reusing dst's buffer. dst must be (m, n).
// The kernel delegates to the compute package's serial backend, which walks
// b and dst contiguously in blocked i-k-j order; callers that want
// goroutine-parallel kernels hold a compute.Context and call the backend
// directly on the raw buffers.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMulInto destination shape mismatch")
	}
	compute.Serial{}.MatMul(dst.Data, a.Data, b.Data, nil, m, k, n)
}

// MatMulTransA computes aᵀ×b for a of shape (k, m) and b of shape (k, n),
// producing (m, n). Used for weight-gradient accumulation in backprop.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransA inner dimension mismatch")
	}
	out := New(m, n)
	compute.Serial{}.MatMulTransA(out.Data, a.Data, b.Data, k, m, n, false)
	return out
}

// MatMulTransB computes a×bᵀ for a of shape (m, k) and b of shape (n, k),
// producing (m, n). Used for input-gradient propagation in backprop.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransB inner dimension mismatch")
	}
	out := New(m, n)
	compute.Serial{}.MatMulTransB(out.Data, a.Data, b.Data, nil, m, k, n, false)
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic("tensor: Transpose2D requires a 2-D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}
