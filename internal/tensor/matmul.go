package tensor

import "fmt"

// MatMul returns the matrix product a×b for 2-D tensors.
// a has shape (m, k) and b has shape (k, n); the result has shape (m, n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul requires 2-D operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %d vs %d", k, k2))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a×b, reusing dst's buffer. dst must be (m, n).
// The kernel iterates in i-k-j order so the inner loop walks both b and dst
// contiguously, which keeps candidate training fast enough for NAS sweeps.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMulInto destination shape mismatch")
	}
	dst.Zero()
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes aᵀ×b for a of shape (k, m) and b of shape (k, n),
// producing (m, n). Used for weight-gradient accumulation in backprop.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransA inner dimension mismatch")
	}
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.Data[kk*m : (kk+1)*m]
		brow := b.Data[kk*n : (kk+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB computes a×bᵀ for a of shape (m, k) and b of shape (n, k),
// producing (m, n). Used for input-gradient propagation in backprop.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransB inner dimension mismatch")
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for kk, av := range arow {
				s += av * brow[kk]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic("tensor: Transpose2D requires a 2-D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}
