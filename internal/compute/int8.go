package compute

import "math"

// int8.go holds the quantized inference kernels: int8 GEMM (plain and
// transposed-B), a batched int8 im2col convolution, a direct depthwise
// kernel, and the requantization epilogues that map int32 accumulators back
// to int8 activations. All kernels follow the package's determinism
// contract — work partitions by output rows (or disjoint blocks) over the
// same persistent worker pool as the float kernels — and since every
// accumulation is exact integer arithmetic the results are bit-identical at
// any worker count by construction.
//
// Requantization follows the fixed-point scheme of integer inference
// runtimes: a real-valued multiplier M ∈ (0, 2³¹) is decomposed as
// M = mult·2⁻ˢʰⁱᶠᵗ with mult a 31-bit mantissa, and applied to an int32
// accumulator in int64 as round-to-nearest-even((acc·mult)·2⁻ˢʰⁱᶠᵗ),
// saturating into the activation range (±127 at 8 bits, 0 as the lower
// bound when a ReLU is fused).

// QuantizeMultiplier decomposes a positive real multiplier into a 31-bit
// fixed-point mantissa and a right shift such that m ≈ mult·2⁻ˢʰⁱᶠᵗ, with
// mult ∈ [2³⁰, 2³¹). Negative shifts mean a left shift (multipliers above
// one). Non-positive, NaN, infinite, or vanishingly small multipliers
// return (0, 0), which annihilates every accumulator — the dead-channel
// encoding.
func QuantizeMultiplier(m float64) (mult int32, shift int) {
	if !(m > 0) || math.IsInf(m, 1) {
		return 0, 0
	}
	frac, exp := math.Frexp(m) // m = frac·2^exp, frac ∈ [0.5, 1)
	q := int64(math.RoundToEven(frac * (1 << 31)))
	if q == 1<<31 { // frac rounded up to exactly 1.0
		q >>= 1
		exp++
	}
	shift = 31 - exp
	if shift > 62 {
		// m < ~2⁻³²: every int32 accumulator scales below one LSB.
		return 0, 0
	}
	if shift < -31 {
		// m > ~2⁶²: every nonzero accumulator saturates regardless.
		shift = -31
	}
	return int32(q), shift
}

// QuantizeMultiplierSigned is QuantizeMultiplier extended to negative
// multipliers (a BatchNorm channel with negative gamma): the sign travels
// on the mantissa.
func QuantizeMultiplierSigned(m float64) (mult int32, shift int) {
	if m < 0 {
		mult, shift = QuantizeMultiplier(-m)
		return -mult, shift
	}
	return QuantizeMultiplier(m)
}

// rneShift computes round-to-nearest-even(v·2⁻ˢʰⁱᶠᵗ). Negative shifts shift
// left exactly, with the result clamped to ±2³¹ — far outside any
// activation range, so the clamp is invisible after saturation, while
// keeping the int64 arithmetic overflow-free for any |v| ≤ 2⁶² input.
func rneShift(v int64, shift int) int64 {
	if shift <= 0 {
		s := uint(-shift)
		const lim = int64(1) << 31
		if s > 31 {
			s = 31
		}
		if v > lim>>s {
			return lim
		}
		if v < -(lim >> s) {
			return -lim
		}
		return v << s
	}
	if shift > 62 {
		// |v| ≤ 2⁶² means |v·2⁻ˢʰⁱᶠᵗ| ≤ 0.5: rounds to even zero.
		return 0
	}
	// Additive round-to-nearest-even: adding half−1 plus the floor
	// quotient's parity bit carries into the quotient exactly when the
	// remainder exceeds half, or equals half with an odd quotient — RNE in
	// five branch-free ops (v ≤ 2⁶² keeps the sum overflow-free).
	s := uint(shift)
	half := int64(1)<<(s-1) - 1
	return (v + half + (v>>s)&1) >> s
}

// RequantizeRNE scales a 32-bit accumulator by mult·2⁻ˢʰⁱᶠᵗ with
// round-to-nearest-even and saturates into [lo, hi] — the requantization
// epilogue applied to every int8 layer output. At 8 activation bits the
// bounds are ±127 (symmetric, -128 unused), with lo = 0 when a ReLU is
// fused into the epilogue.
func RequantizeRNE(acc, mult int32, shift int, lo, hi int32) int8 {
	q := rneShift(int64(acc)*int64(mult), shift)
	if q > int64(hi) {
		q = int64(hi)
	}
	if q < int64(lo) {
		q = int64(lo)
	}
	return int8(q)
}

// RequantizeAffineRNE computes clamp(rne(acc·mult·2⁻ˢʰⁱᶠᵗ) + bias, lo, hi):
// the per-channel integer affine of a quantized BatchNorm, whose shift term
// lives in the output scale (so a dead channel — gamma zero — still lands
// exactly on its beta constant).
func RequantizeAffineRNE(acc, mult int32, shift int, bias, lo, hi int32) int8 {
	q := rneShift(int64(acc)*int64(mult), shift) + int64(bias)
	if q > int64(hi) {
		q = int64(hi)
	}
	if q < int64(lo) {
		q = int64(lo)
	}
	return int8(q)
}

// int8MatMulRows computes rows [i0, i1) of dst(int32) = a×b for int8
// a (m,k) and b (k,n), pairing output rows and unrolling over k — the
// scalar throughput levers that let the int8 path beat the float kernel
// without SIMD. (The float kernel's cache blocking is unnecessary here:
// b rows are bytes, 8× denser than float64.)
func int8MatMulRows(dst []int32, a, b []int8, k, n, i0, i1 int) {
	i := i0
	for ; i+1 < i1; i += 2 {
		int8MatMulRowPair(dst[i*n:(i+2)*n], a[i*k:(i+2)*k], b, k, n)
	}
	if i < i1 {
		int8MatMulRow(dst[i*n:(i+1)*n], a[i*k:(i+1)*k], b, k, n)
	}
}

// int8MatMulRowPair accumulates two adjacent dst rows in one sweep over b,
// so every int8 b element loaded and sign-extended feeds four MACs instead
// of two. Integer addition is associative, so the pairing (and any worker
// partition cutting through a pair) cannot perturb the result — the
// bit-determinism guarantee costs nothing here, unlike the float kernels.
func int8MatMulRowPair(dst []int32, a, b []int8, k, n int) {
	d0, d1 := dst[:n], dst[n:2*n]
	r0, r1 := a[:k], a[k:2*k]
	for j := range d0 {
		d0[j] = 0
	}
	for j := range d1 {
		d1[j] = 0
	}
	kk := 0
	for ; kk+3 < k; kk += 4 {
		a00, a01, a02, a03 := int32(r0[kk]), int32(r0[kk+1]), int32(r0[kk+2]), int32(r0[kk+3])
		a10, a11, a12, a13 := int32(r1[kk]), int32(r1[kk+1]), int32(r1[kk+2]), int32(r1[kk+3])
		if a00|a01|a02|a03|a10|a11|a12|a13 == 0 {
			continue
		}
		b0 := b[kk*n : kk*n+n]
		b1 := b[(kk+1)*n : (kk+1)*n+n]
		b2 := b[(kk+2)*n : (kk+2)*n+n]
		b3 := b[(kk+3)*n : (kk+3)*n+n]
		for j := range b0 {
			bv0, bv1 := int32(b0[j]), int32(b1[j])
			bv2, bv3 := int32(b2[j]), int32(b3[j])
			d0[j] += a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
			d1[j] += a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
		}
	}
	for ; kk+1 < k; kk += 2 {
		a00, a01 := int32(r0[kk]), int32(r0[kk+1])
		a10, a11 := int32(r1[kk]), int32(r1[kk+1])
		if a00|a01|a10|a11 == 0 {
			continue
		}
		b0 := b[kk*n : kk*n+n]
		b1 := b[(kk+1)*n : (kk+1)*n+n]
		for j := range b0 {
			bv0, bv1 := int32(b0[j]), int32(b1[j])
			d0[j] += a00*bv0 + a01*bv1
			d1[j] += a10*bv0 + a11*bv1
		}
	}
	if kk < k {
		a0, a1 := int32(r0[kk]), int32(r1[kk])
		if a0|a1 != 0 {
			bseg := b[kk*n : kk*n+n]
			for j := range bseg {
				bv := int32(bseg[j])
				d0[j] += a0 * bv
				d1[j] += a1 * bv
			}
		}
	}
}

// int8MatMulRow is the odd-row remainder of int8MatMulRows: four k-rows of
// b per pass so each load+store of the int32 destination amortizes four
// MACs.
func int8MatMulRow(drow []int32, arow, b []int8, k, n int) {
	for j := range drow {
		drow[j] = 0
	}
	kk := 0
	for ; kk+3 < k; kk += 4 {
		av0 := int32(arow[kk])
		av1 := int32(arow[kk+1])
		av2 := int32(arow[kk+2])
		av3 := int32(arow[kk+3])
		if av0|av1|av2|av3 == 0 {
			continue
		}
		b0 := b[kk*n : kk*n+n]
		b1 := b[(kk+1)*n : (kk+1)*n+n]
		b2 := b[(kk+2)*n : (kk+2)*n+n]
		b3 := b[(kk+3)*n : (kk+3)*n+n]
		for j := range drow {
			drow[j] += av0*int32(b0[j]) + av1*int32(b1[j]) +
				av2*int32(b2[j]) + av3*int32(b3[j])
		}
	}
	for ; kk < k; kk++ {
		av := int32(arow[kk])
		if av == 0 {
			continue
		}
		bseg := b[kk*n : kk*n+n]
		for j := range drow {
			drow[j] += av * int32(bseg[j])
		}
	}
}

// int8Dot returns the int32 dot product of two equal-length int8 vectors,
// four-way unrolled so the integer adds pipeline instead of serializing on
// one accumulator.
func int8Dot(a, b []int8) int32 {
	var s0, s1, s2, s3 int32
	n := len(a)
	b = b[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	for ; i < n; i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3
}

// requantRNERange applies one channel's requantization to a run of
// accumulators: dst[j] = clamp(rne((src[j]+bias)·mult·2⁻ˢʰⁱᶠᵗ)). The
// fixed-point constants hoist out of the element loop; degenerate
// parameters (dead channel, left shift) fall back to the scalar epilogue.
func requantRNERange(dst []int8, src []int32, bias, mult int32, shift int, lo, hi int32) {
	if mult == 0 || shift <= 0 || shift > 62 {
		for j, v := range src {
			dst[j] = RequantizeRNE(v+bias, mult, shift, lo, hi)
		}
		return
	}
	m64, lo64, hi64 := int64(mult), int64(lo), int64(hi)
	s := uint(shift)
	half := int64(1)<<(s-1) - 1
	dst = dst[:len(src)]
	for j, v := range src {
		// Additive branch-free RNE (see rneShift): no data-dependent
		// branch for ~50%-likely ties/round-ups to mispredict.
		t := int64(v+bias) * m64
		q := (t + half + (t>>s)&1) >> s
		dst[j] = int8(min(max(q, lo64), hi64))
	}
}

// int8Dot2 computes the dot products of x against two weight rows in one
// pass, so every x element loaded from cache feeds two MACs — the dense
// layers' row-pairing lever (out is almost always even).
func int8Dot2(x, w0, w1 []int8) (int32, int32) {
	var a0, a1, b0, b1 int32
	n := len(x)
	w0 = w0[:n]
	w1 = w1[:n]
	i := 0
	for ; i+1 < n; i += 2 {
		x0, x1 := int32(x[i]), int32(x[i+1])
		a0 += x0 * int32(w0[i])
		b0 += x1 * int32(w0[i+1])
		a1 += x0 * int32(w1[i])
		b1 += x1 * int32(w1[i+1])
	}
	if i < n {
		x0 := int32(x[i])
		a0 += x0 * int32(w0[i])
		a1 += x0 * int32(w1[i])
	}
	return a0 + b0, a1 + b1
}

// int8Dot4 extends the pairing to four weight rows: each x element loaded
// feeds four MACs, and the eight accumulators keep the multiply chains
// independent.
func int8Dot4(x, w0, w1, w2, w3 []int8) (int32, int32, int32, int32) {
	var a0, a1, a2, a3, b0, b1, b2, b3 int32
	n := len(x)
	w0 = w0[:n]
	w1 = w1[:n]
	w2 = w2[:n]
	w3 = w3[:n]
	i := 0
	for ; i+1 < n; i += 2 {
		x0, x1 := int32(x[i]), int32(x[i+1])
		a0 += x0 * int32(w0[i])
		b0 += x1 * int32(w0[i+1])
		a1 += x0 * int32(w1[i])
		b1 += x1 * int32(w1[i+1])
		a2 += x0 * int32(w2[i])
		b2 += x1 * int32(w2[i+1])
		a3 += x0 * int32(w3[i])
		b3 += x1 * int32(w3[i+1])
	}
	if i < n {
		x0 := int32(x[i])
		a0 += x0 * int32(w0[i])
		a1 += x0 * int32(w1[i])
		a2 += x0 * int32(w2[i])
		a3 += x0 * int32(w3[i])
	}
	return a0 + b0, a1 + b1, a2 + b2, a3 + b3
}

// requantIndex returns the channel index into a requant parameter slice:
// per-channel slices index by channel, a length-1 slice broadcasts
// (per-layer requantization).
func requantIndex(params []int32, ch int) int {
	if len(params) > 1 {
		return ch
	}
	return 0
}

// Int8GEMM dispatches the int8 matrix kernel over a Context. Operands bind
// through struct fields and the range closure is cached, so a steady-state
// call performs zero heap allocations (see the nn layer dispatch idiom).
// One Int8GEMM must not be shared by concurrent callers.
type Int8GEMM struct {
	dst  []int32
	a, b []int8
	k, n int
	fn   func(i0, i1 int)
}

// MatMul computes dst(int32) = a×b for int8 a (m,k) and b (k,n),
// partitioned by output rows.
func (g *Int8GEMM) MatMul(ctx *Context, dst []int32, a, b []int8, m, k, n int) {
	g.dst, g.a, g.b, g.k, g.n = dst, a, b, k, n
	if g.fn == nil {
		g.fn = g.rowRange
	}
	ctx.ParallelFor(m, k*n, g.fn)
}

func (g *Int8GEMM) rowRange(i0, i1 int) {
	int8MatMulRows(g.dst, g.a, g.b, g.k, g.n, i0, i1)
}

// Int8Dense is the quantized fully-connected kernel: one pass computes
// dst(int8) = requant(x·wᵀ + bias) row by row with the bias/requant/ReLU
// epilogue fused, or float logits for the classifier head. Like Int8GEMM it
// caches its dispatch closures and must not be shared across goroutines.
type Int8Dense struct {
	x, w, dst         []int8
	bias, mult, shift []int32
	dstF              []float64
	deq, biasF        []float64
	in, out           int
	lo, hi            int32
	fn, logitsFn      func(i0, i1 int)
}

// Run computes the int8 dense layer for x (n, in) against w (out, in):
// dst[i][j] = requant(Σₖ x[i][k]·w[j][k] + bias[j]). mult/shift hold one
// entry per output unit or a single broadcast entry; [lo, hi] is the
// saturation range (lo = 0 fuses a ReLU). Rows partition by sample.
func (d *Int8Dense) Run(ctx *Context, dst, x, w []int8, bias, mult, shift []int32, n, in, out int, lo, hi int32) {
	d.dst, d.x, d.w = dst, x, w
	d.bias, d.mult, d.shift = bias, mult, shift
	d.in, d.out, d.lo, d.hi = in, out, lo, hi
	if d.fn == nil {
		d.fn = d.rowRange
	}
	ctx.ParallelFor(n, 2*in*out, d.fn)
}

func (d *Int8Dense) rowRange(i0, i1 int) {
	in, out := d.in, d.out
	for i := i0; i < i1; i++ {
		xrow := d.x[i*in : (i+1)*in]
		drow := d.dst[i*out : (i+1)*out]
		finish := func(j int, acc int32) {
			if d.bias != nil {
				acc += d.bias[j]
			}
			ci := requantIndex(d.mult, j)
			drow[j] = RequantizeRNE(acc, d.mult[ci], int(d.shift[ci]), d.lo, d.hi)
		}
		j := 0
		for ; j+3 < out; j += 4 {
			acc0, acc1, acc2, acc3 := int8Dot4(xrow,
				d.w[j*in:(j+1)*in], d.w[(j+1)*in:(j+2)*in],
				d.w[(j+2)*in:(j+3)*in], d.w[(j+3)*in:(j+4)*in])
			finish(j, acc0)
			finish(j+1, acc1)
			finish(j+2, acc2)
			finish(j+3, acc3)
		}
		for ; j+1 < out; j += 2 {
			acc0, acc1 := int8Dot2(xrow, d.w[j*in:(j+1)*in], d.w[(j+1)*in:(j+2)*in])
			finish(j, acc0)
			finish(j+1, acc1)
		}
		if j < out {
			finish(j, int8Dot(xrow, d.w[j*in:(j+1)*in]))
		}
	}
}

// RunLogits computes the float classifier head: dst[i][j] =
// acc[i][j]·deq[j] + biasF[j], where deq[j] is the per-class dequantization
// scale (input scale × per-row weight scale). Keeping the head in float
// costs one multiply per class and spares the logits a final quantization.
func (d *Int8Dense) RunLogits(ctx *Context, dst []float64, x, w []int8, biasF, deq []float64, n, in, out int) {
	d.dstF, d.x, d.w = dst, x, w
	d.biasF, d.deq = biasF, deq
	d.in, d.out = in, out
	if d.logitsFn == nil {
		d.logitsFn = d.logitsRange
	}
	ctx.ParallelFor(n, 2*in*out, d.logitsFn)
}

func (d *Int8Dense) logitsRange(i0, i1 int) {
	in, out := d.in, d.out
	for i := i0; i < i1; i++ {
		xrow := d.x[i*in : (i+1)*in]
		drow := d.dstF[i*out : (i+1)*out]
		j := 0
		for ; j+3 < out; j += 4 {
			acc0, acc1, acc2, acc3 := int8Dot4(xrow,
				d.w[j*in:(j+1)*in], d.w[(j+1)*in:(j+2)*in],
				d.w[(j+2)*in:(j+3)*in], d.w[(j+3)*in:(j+4)*in])
			drow[j] = float64(acc0)*d.deq[j] + d.biasF[j]
			drow[j+1] = float64(acc1)*d.deq[j+1] + d.biasF[j+1]
			drow[j+2] = float64(acc2)*d.deq[j+2] + d.biasF[j+2]
			drow[j+3] = float64(acc3)*d.deq[j+3] + d.biasF[j+3]
		}
		for ; j+1 < out; j += 2 {
			acc0, acc1 := int8Dot2(xrow, d.w[j*in:(j+1)*in], d.w[(j+1)*in:(j+2)*in])
			drow[j] = float64(acc0)*d.deq[j] + d.biasF[j]
			drow[j+1] = float64(acc1)*d.deq[j+1] + d.biasF[j+1]
		}
		if j < out {
			drow[j] = float64(int8Dot(xrow, d.w[j*in:(j+1)*in]))*d.deq[j] + d.biasF[j]
		}
	}
}

// int8Im2col lowers one int8 (C,H,W) sample into columns
// [colOff, colOff+oh·ow) of a pre-zeroed (C·K·K, stride) matrix — the int8
// twin of the float im2col; padding positions rely on the cleared
// destination.
func int8Im2col(dst []int8, stride, colOff int, x []int8, cc, h, w, k, cstride, pad, oh, ow int) {
	for ch := 0; ch < cc; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := dst[((ch*k+ky)*k+kx)*stride+colOff:]
				if cstride == 1 {
					// Unit stride: the valid ox span maps to a contiguous
					// input run, so each output row is one memmove.
					o0, o1 := 0, ow
					if pad-kx > 0 {
						o0 = pad - kx
					}
					if w+pad-kx < ow {
						o1 = w + pad - kx
					}
					if o1 <= o0 {
						continue
					}
					for oy := 0; oy < oh; oy++ {
						iy := oy + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						copy(row[oy*ow+o0:oy*ow+o1], x[chOff+iy*w+o0+kx-pad:])
					}
					continue
				}
				for oy := 0; oy < oh; oy++ {
					iy := oy*cstride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*cstride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						row[oy*ow+ox] = x[chOff+iy*w+ix]
					}
				}
			}
		}
	}
}

// Int8Conv2D is the batched quantized convolution: int8 im2col lowering of
// the whole batch, one int8 GEMM into int32 accumulators, and a fused
// bias/requant/ReLU epilogue that scatters straight back to NCHW. The
// caller owns the cols/acc scratch (sized rows·width and outC·width), so a
// steady-state call allocates nothing. Not safe for concurrent use.
type Int8Conv2D struct {
	x, w, dst, cols                             []int8
	acc                                         []int32
	bias, mult, shift                           []int32
	n, inC, h, wd, outC, k, stride, pad, oh, ow int
	lo, hi                                      int32
	imFn, reqFn                                 func(i0, i1 int)
	gemm                                        Int8GEMM
}

// Run convolves x (n, inC, h, wd) with w (outC, inC·k·k) into dst NCHW
// int8. bias (length outC, accumulator domain) and per-channel (or
// broadcast) mult/shift form the epilogue; [lo, hi] is the saturation
// range with lo = 0 fusing a ReLU.
func (c *Int8Conv2D) Run(ctx *Context, dst, x, w []int8, bias, mult, shift []int32, cols []int8, acc []int32, n, inC, h, wd, outC, k, stride, pad int, lo, hi int32) {
	oh := (h+2*pad-k)/stride + 1
	ow := (wd+2*pad-k)/stride + 1
	rows := inC * k * k
	span := oh * ow
	width := n * span
	c.x, c.w, c.dst = x, w, dst
	c.cols, c.acc = cols[:rows*width], acc[:outC*width]
	c.bias, c.mult, c.shift = bias, mult, shift
	c.n, c.inC, c.h, c.wd = n, inC, h, wd
	c.outC, c.k, c.stride, c.pad, c.oh, c.ow = outC, k, stride, pad, oh, ow
	c.lo, c.hi = lo, hi
	if c.imFn == nil {
		c.imFn = c.im2colRange
		c.reqFn = c.requantRange
	}
	// Batched im2col: sample i owns column block [i·span, (i+1)·span).
	clear(c.cols)
	ctx.For(n, 1, c.imFn)
	// One GEMM for the whole batch; bias joins in the epilogue (the
	// accumulator domain, unlike the float path's row-start fusion).
	c.gemm.MatMul(ctx, c.acc, w, c.cols, outC, rows, width)
	// Requant + NCHW scatter, partitioned by output channel: channel oc
	// writes the disjoint planes (i·outC+oc)·span for every sample i.
	ctx.ParallelFor(outC, 8*width, c.reqFn)
}

func (c *Int8Conv2D) im2colRange(i0, i1 int) {
	span := c.oh * c.ow
	width := c.n * span
	sampleIn := c.inC * c.h * c.wd
	for i := i0; i < i1; i++ {
		int8Im2col(c.cols, width, i*span, c.x[i*sampleIn:(i+1)*sampleIn],
			c.inC, c.h, c.wd, c.k, c.stride, c.pad, c.oh, c.ow)
	}
}

func (c *Int8Conv2D) requantRange(c0, c1 int) {
	span := c.oh * c.ow
	width := c.n * span
	for oc := c0; oc < c1; oc++ {
		ci := requantIndex(c.mult, oc)
		mult, shift := c.mult[ci], int(c.shift[ci])
		var bias int32
		if c.bias != nil {
			bias = c.bias[oc]
		}
		for i := 0; i < c.n; i++ {
			src := c.acc[oc*width+i*span : oc*width+(i+1)*span]
			dst := c.dst[(i*c.outC+oc)*span : (i*c.outC+oc+1)*span]
			requantRNERange(dst, src, bias, mult, shift, c.lo, c.hi)
		}
	}
}

// Int8DWConv2D is the direct quantized depthwise kernel: each (sample,
// channel) block convolves with its channel's K×K filter and requantizes in
// place — the same partitioning as the float depthwise layer, with the
// bias/ReLU epilogue fused. Not safe for concurrent use.
type Int8DWConv2D struct {
	x, w, dst                           []int8
	bias, mult, shift                   []int32
	n, c, h, wd, k, stride, pad, oh, ow int
	lo, hi                              int32
	fn                                  func(b0, b1 int)
}

// Run convolves x (n, ch, h, wd) with per-channel filters w (ch, k·k).
func (c *Int8DWConv2D) Run(ctx *Context, dst, x, w []int8, bias, mult, shift []int32, n, ch, h, wd, k, stride, pad int, lo, hi int32) {
	c.oh = (h+2*pad-k)/stride + 1
	c.ow = (wd+2*pad-k)/stride + 1
	c.x, c.w, c.dst = x, w, dst
	c.bias, c.mult, c.shift = bias, mult, shift
	c.n, c.c, c.h, c.wd = n, ch, h, wd
	c.k, c.stride, c.pad = k, stride, pad
	c.lo, c.hi = lo, hi
	if c.fn == nil {
		c.fn = c.forwardBlocks
	}
	ctx.ParallelFor(n*ch, 2*c.oh*c.ow*k*k, c.fn)
}

func (c *Int8DWConv2D) forwardBlocks(b0, b1 int) {
	h, w, k := c.h, c.wd, c.k
	oh, ow := c.oh, c.ow
	for blk := b0; blk < b1; blk++ {
		ch := blk % c.c
		src := c.x[blk*h*w:]
		dst := c.dst[blk*oh*ow:]
		wrow := c.w[ch*k*k:]
		var bias int32
		if c.bias != nil {
			bias = c.bias[ch]
		}
		ci := requantIndex(c.mult, ch)
		mult, shift := c.mult[ci], int(c.shift[ci])
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				acc := bias
				for ky := 0; ky < k; ky++ {
					iy := oy*c.stride + ky - c.pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*c.stride + kx - c.pad
						if ix < 0 || ix >= w {
							continue
						}
						acc += int32(wrow[ky*k+kx]) * int32(src[iy*w+ix])
					}
				}
				dst[oy*ow+ox] = RequantizeRNE(acc, mult, shift, c.lo, c.hi)
			}
		}
	}
}

// Int8Quantize converts a float activation buffer to the symmetric int8
// grid: dst[i] = clamp(rne(src[i]/scale), ±hi). It is the executor's input
// stage; elementwise fan-out with a cached closure.
type Int8Quantize struct {
	src []float64
	dst []int8
	inv float64
	hi  int32
	fn  func(i0, i1 int)
}

// Run quantizes src into dst with the given scale (0 maps everything to 0).
func (q *Int8Quantize) Run(ctx *Context, dst []int8, src []float64, scale float64, hi int32) {
	q.dst, q.src, q.hi = dst, src[:len(dst)], hi
	q.inv = 0
	if scale != 0 {
		q.inv = 1 / scale
	}
	if q.fn == nil {
		q.fn = q.quantRange
	}
	ctx.ParallelFor(len(dst), 4, q.fn)
}

func (q *Int8Quantize) quantRange(i0, i1 int) {
	lo, hi := float64(-q.hi), float64(q.hi)
	for i := i0; i < i1; i++ {
		v := math.RoundToEven(q.src[i] * q.inv)
		if v > hi {
			v = hi
		}
		if v < lo {
			v = lo
		}
		q.dst[i] = int8(v)
	}
}
