package compute

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// fill populates buf with reproducible values, zeroing roughly one in five
// entries so the kernels' av == 0 skip path is exercised on both backends.
func fill(rng *rand.Rand, buf []float64) {
	for i := range buf {
		if rng.Intn(5) == 0 {
			buf[i] = 0
			continue
		}
		buf[i] = rng.NormFloat64()
	}
}

// bitsEqual compares two float64 slices bit for bit.
func bitsEqual(t *testing.T, name string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", name, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: element %d differs: %v (%#x) vs %v (%#x)",
				name, i, want[i], math.Float64bits(want[i]), got[i], math.Float64bits(got[i]))
		}
	}
}

// The shapes mix tiny, odd (prime) and large-enough-to-parallelize cases.
// The last two exceed parallelFlops, so the parallel backend really fans out.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 5, 7},
	{17, 13, 29},
	{2, 1000, 17}, // m=2 with huge k: two chunks of one row each
	{33, 257, 65},
	{64, 128, 96},
}

var workerCounts = []int{2, 3, 4, 7}

func TestParallelMatMulBitIdentical(t *testing.T) {
	for _, sh := range gemmShapes {
		rng := rand.New(rand.NewSource(7))
		a := make([]float64, sh.m*sh.k)
		b := make([]float64, sh.k*sh.n)
		bias := make([]float64, sh.m)
		fill(rng, a)
		fill(rng, b)
		fill(rng, bias)
		for _, rowBias := range [][]float64{nil, bias} {
			want := make([]float64, sh.m*sh.n)
			Serial{}.MatMul(want, a, b, rowBias, sh.m, sh.k, sh.n)
			for _, w := range workerCounts {
				got := make([]float64, sh.m*sh.n)
				NewParallel(w).MatMul(got, a, b, rowBias, sh.m, sh.k, sh.n)
				bitsEqual(t, "MatMul", want, got)
			}
		}
	}
}

func TestParallelMatMulTransABitIdentical(t *testing.T) {
	for _, sh := range gemmShapes {
		rng := rand.New(rand.NewSource(11))
		// a is (k, m); dst is (m, n).
		a := make([]float64, sh.k*sh.m)
		b := make([]float64, sh.k*sh.n)
		seed := make([]float64, sh.m*sh.n)
		fill(rng, a)
		fill(rng, b)
		fill(rng, seed)
		for _, acc := range []bool{false, true} {
			want := append([]float64(nil), seed...)
			Serial{}.MatMulTransA(want, a, b, sh.k, sh.m, sh.n, acc)
			for _, w := range workerCounts {
				got := append([]float64(nil), seed...)
				NewParallel(w).MatMulTransA(got, a, b, sh.k, sh.m, sh.n, acc)
				bitsEqual(t, "MatMulTransA", want, got)
			}
		}
	}
}

func TestParallelMatMulTransBBitIdentical(t *testing.T) {
	for _, sh := range gemmShapes {
		rng := rand.New(rand.NewSource(13))
		// b is (n, k); dst is (m, n).
		a := make([]float64, sh.m*sh.k)
		b := make([]float64, sh.n*sh.k)
		bias := make([]float64, sh.n)
		seed := make([]float64, sh.m*sh.n)
		fill(rng, a)
		fill(rng, b)
		fill(rng, bias)
		fill(rng, seed)
		cases := []struct {
			colBias []float64
			acc     bool
		}{{nil, false}, {bias, false}, {nil, true}}
		for _, tc := range cases {
			want := append([]float64(nil), seed...)
			Serial{}.MatMulTransB(want, a, b, tc.colBias, sh.m, sh.k, sh.n, tc.acc)
			for _, w := range workerCounts {
				got := append([]float64(nil), seed...)
				NewParallel(w).MatMulTransB(got, a, b, tc.colBias, sh.m, sh.k, sh.n, tc.acc)
				bitsEqual(t, "MatMulTransB", want, got)
			}
		}
	}
}

func TestParallelAxpyBitIdentical(t *testing.T) {
	for _, n := range []int{1, 17, parallelFlops + 31} {
		rng := rand.New(rand.NewSource(17))
		src := make([]float64, n)
		seed := make([]float64, n)
		fill(rng, src)
		fill(rng, seed)
		want := append([]float64(nil), seed...)
		Serial{}.Axpy(0.37, src, want)
		for _, w := range workerCounts {
			got := append([]float64(nil), seed...)
			NewParallel(w).Axpy(0.37, src, got)
			bitsEqual(t, "Axpy", want, got)
		}
	}
}

// TestForCoversRange checks that For visits every index exactly once for all
// backends, worker counts and grains — the contract conv layers rely on.
func TestForCoversRange(t *testing.T) {
	backends := []Backend{Serial{}}
	for _, w := range workerCounts {
		backends = append(backends, NewParallel(w))
	}
	for _, be := range backends {
		for _, n := range []int{0, 1, 5, 23, 64} {
			for _, grain := range []int{1, 4, 100} {
				var mu sync.Mutex
				seen := make([]int, n)
				be.For(n, grain, func(i0, i1 int) {
					mu.Lock()
					defer mu.Unlock()
					for i := i0; i < i1; i++ {
						seen[i]++
					}
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("%s workers=%d n=%d grain=%d: index %d visited %d times",
							be.Name(), be.Workers(), n, grain, i, c)
					}
				}
			}
		}
	}
}

// TestContextDispatchBitIdentical drives the ops through Context (the layer
// path) rather than the raw backend, serial vs parallel.
func TestContextDispatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	m, k, n := 33, 257, 65
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	fill(rng, a)
	fill(rng, b)
	want := make([]float64, m*n)
	NewContextFor(1, nil).MatMul(want, a, b, nil, m, k, n)
	got := make([]float64, m*n)
	NewContextFor(4, nil).MatMul(got, a, b, nil, m, k, n)
	bitsEqual(t, "Context.MatMul", want, got)
}

func TestPoolReuseReturnsZeroedBuffer(t *testing.T) {
	ctx := NewContextFor(1, nil)
	buf := ctx.Get(100)
	if len(buf) != 100 {
		t.Fatalf("Get(100) returned length %d", len(buf))
	}
	for i := range buf {
		buf[i] = float64(i) + 1
	}
	first := &buf[0]
	ctx.Put(buf)
	again := ctx.Get(100)
	if &again[0] != first {
		t.Fatalf("expected the pooled buffer back")
	}
	for i, v := range again {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %v", i, v)
		}
	}
}

func TestPoolDropsForeignBuffers(t *testing.T) {
	ctx := NewContextFor(1, nil)
	odd := make([]float64, 10, 10) // capacity not a power of two
	ctx.Put(odd)
	got := ctx.Get(10)
	if cap(got) == 10 {
		t.Fatalf("pool handed back a foreign buffer")
	}
}

func TestNilContextIsServiceable(t *testing.T) {
	var ctx *Context
	if ctx.Name() != "serial" || ctx.Workers() != 1 {
		t.Fatalf("nil context backend = %s/%d, want serial/1", ctx.Name(), ctx.Workers())
	}
	buf := ctx.Get(8)
	if len(buf) != 8 {
		t.Fatalf("nil context Get length %d", len(buf))
	}
	ctx.Put(buf) // must not panic
	dst := make([]float64, 4)
	ctx.MatMul(dst, []float64{1, 2}, []float64{3, 4}, nil, 2, 1, 2)
	if dst[0] != 3 || dst[1] != 4 || dst[2] != 6 || dst[3] != 8 {
		t.Fatalf("nil context MatMul wrong: %v", dst)
	}
}

func TestBudgetWorkers(t *testing.T) {
	if w := BudgetWorkers(1 << 20); w != 1 {
		t.Fatalf("BudgetWorkers with huge outer = %d, want 1", w)
	}
	if w := BudgetWorkers(0); w < 1 {
		t.Fatalf("BudgetWorkers(0) = %d", w)
	}
}

// TestParallelForCoversRange checks the grain-deriving dispatch visits every
// index exactly once across contexts, worker counts and per-item costs —
// including the nil-context inline path.
func TestParallelForCoversRange(t *testing.T) {
	ctxs := []*Context{nil, NewContextFor(1, nil)}
	for _, w := range workerCounts {
		ctxs = append(ctxs, NewContextFor(w, nil))
	}
	for _, ctx := range ctxs {
		for _, n := range []int{0, 1, 7, 64, 501} {
			for _, flops := range []int{1, 8, 1 << 20} {
				var mu sync.Mutex
				seen := make([]int, n)
				ctx.ParallelFor(n, flops, func(i0, i1 int) {
					mu.Lock()
					defer mu.Unlock()
					for i := i0; i < i1; i++ {
						seen[i]++
					}
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("workers=%d n=%d flops=%d: index %d visited %d times",
							ctx.Workers(), n, flops, i, c)
					}
				}
			}
		}
	}
}

// TestParallelForGrainFloor checks cheap loops do not fan out: with a
// per-item cost far below the parallel work floor and n under the derived
// grain, the whole range must arrive as a single chunk.
func TestParallelForGrainFloor(t *testing.T) {
	ctx := NewContextFor(4, nil)
	calls := 0
	ctx.ParallelFor(64, 1, func(i0, i1 int) {
		calls++
		if i0 != 0 || i1 != 64 {
			t.Fatalf("cheap loop split into [%d,%d)", i0, i1)
		}
	})
	if calls != 1 {
		t.Fatalf("cheap 64-element loop dispatched %d chunks, want 1", calls)
	}
}

// TestParallelDispatchAllocs pins the worker-pool dispatch cost: once the
// pool and a caller's closure are warm, For/ParallelFor and the GEMMs must
// not allocate — the property the allocation-free training step rests on.
func TestParallelDispatchAllocs(t *testing.T) {
	ctx := NewContextFor(4, nil)
	data := make([]float64, 1<<14)
	fn := func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			data[i] += 1
		}
	}
	ctx.ParallelFor(len(data), 8, fn) // warm pool goroutines and WaitGroups
	allocs := testing.AllocsPerRun(20, func() {
		ctx.ParallelFor(len(data), 8, fn)
	})
	// The runtime may lazily grow a sudog or two on blocked channel sends;
	// everything under the package's control is allocation-free.
	if allocs > 1 {
		t.Errorf("warm ParallelFor dispatch allocates %.1f times, want ≤1", allocs)
	}

	m, k, n := 32, 64, 48
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	dst := make([]float64, m*n)
	ctx.MatMul(dst, a, b, nil, m, k, n)
	allocs = testing.AllocsPerRun(20, func() {
		ctx.MatMul(dst, a, b, nil, m, k, n)
	})
	if allocs > 1 {
		t.Errorf("warm parallel MatMul allocates %.1f times, want ≤1", allocs)
	}
}
