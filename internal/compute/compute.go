// Package compute is the pluggable dense-kernel substrate beneath the
// tensor/nn training stack. Every eNAS evaluation trains a candidate for
// real, so search wall-clock is dominated by the GEMMs issued from
// Conv2D/Dense forward and backward passes; this package lets the hot path
// choose between the reference serial kernels and a cache-blocked,
// goroutine-parallel implementation without changing a single result bit.
//
// Determinism contract: all backends partition work by output rows (or
// disjoint index ranges for Axpy/For), and every kernel accumulates the
// contributions to one output element in ascending inner-dimension order.
// The floating-point operation sequence per output element is therefore
// identical for every worker count, so a seeded search returns a
// byte-identical result whether it runs on one core or sixty-four.
package compute

import (
	"runtime"
	"sync"
)

// Backend performs the dense linear-algebra kernels on raw row-major
// float64 buffers. Dimensions are passed explicitly so the package has no
// dependency on the tensor layer above it.
type Backend interface {
	// Name identifies the backend in telemetry ("serial", "parallel").
	Name() string
	// Workers reports the kernel parallelism (1 for serial).
	Workers() int
	// MatMul computes dst = a×b for a (m,k) and b (k,n). When rowBias is
	// non-nil (length m) it is fused in: dst[i][j] starts at rowBias[i]
	// instead of 0 — the Conv2D per-output-channel bias path.
	MatMul(dst, a, b, rowBias []float64, m, k, n int)
	// MatMulTransA computes dst = aᵀ×b for a (k,m) and b (k,n), producing
	// (m,n). With accumulate it computes dst += aᵀ×b, the fused
	// weight-gradient path that avoids a temporary plus an add.
	MatMulTransA(dst, a, b []float64, k, m, n int, accumulate bool)
	// MatMulTransB computes dst = a×bᵀ for a (m,k) and b (n,k), producing
	// (m,n). colBias (nil or length n) is added to every row — the Dense
	// forward bias path. With accumulate it computes dst += a×bᵀ
	// (colBias must then be nil).
	MatMulTransB(dst, a, b, colBias []float64, m, k, n int, accumulate bool)
	// Axpy computes dst += alpha·src element-wise.
	Axpy(alpha float64, src, dst []float64)
	// For runs fn over disjoint contiguous chunks covering [0,n). grain is
	// the minimum chunk size worth dispatching to a worker; callers must
	// only rely on chunks being disjoint and covering the range, never on
	// execution order.
	For(n, grain int, fn func(i0, i1 int))
}

// Cache blocking parameters. blockJ keeps one dst-row segment plus the
// matching b-row segments resident in L1 (512 floats = 4 KiB per row);
// blockK bounds the b panel walked per segment. Block loops ascend, so the
// per-element accumulation order is exactly that of the naive i-k-j kernel.
const (
	blockJ = 512
	blockK = 64
)

// parallelFlops is the work floor (m·k·n multiply-adds) below which the
// parallel backend runs the serial kernel inline: under ~32k flops the
// goroutine fan-out costs more than the loop.
const parallelFlops = 32 << 10

// matMulRows computes rows [i0,i1) of dst = a×b (+ rowBias).
func matMulRows(dst, a, b, rowBias []float64, k, n, i0, i1 int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		if rowBias != nil {
			bv := rowBias[i]
			for j := range drow {
				drow[j] = bv
			}
		} else {
			for j := range drow {
				drow[j] = 0
			}
		}
		for kb := 0; kb < k; kb += blockK {
			ke := kb + blockK
			if ke > k {
				ke = k
			}
			for jb := 0; jb < n; jb += blockJ {
				je := jb + blockJ
				if je > n {
					je = n
				}
				dseg := drow[jb:je]
				for kk := kb; kk < ke; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					bseg := b[kk*n+jb : kk*n+je]
					for j, bv := range bseg {
						dseg[j] += av * bv
					}
				}
			}
		}
	}
}

// matMulTransARows computes rows [i0,i1) of dst (+)= aᵀ×b. Row i of dst is
// column i of a; for every element the k summands are added in ascending
// order, matching the serial kernel exactly.
func matMulTransARows(dst, a, b []float64, k, m, n, i0, i1 int, accumulate bool) {
	for i := i0; i < i1; i++ {
		drow := dst[i*n : (i+1)*n]
		if !accumulate {
			for j := range drow {
				drow[j] = 0
			}
		}
		for kk := 0; kk < k; kk++ {
			av := a[kk*m+i]
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// matMulTransBRows computes rows [i0,i1) of dst (+)= a×bᵀ (+ colBias).
func matMulTransBRows(dst, a, b, colBias []float64, k, n, i0, i1 int, accumulate bool) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for kk, av := range arow {
				s += av * brow[kk]
			}
			if colBias != nil {
				s += colBias[j]
			}
			if accumulate {
				drow[j] += s
			} else {
				drow[j] = s
			}
		}
	}
}

// axpyRange computes dst[i0:i1] += alpha·src[i0:i1].
func axpyRange(alpha float64, src, dst []float64, i0, i1 int) {
	s := src[i0:i1]
	d := dst[i0:i1]
	for i, v := range s {
		d[i] += alpha * v
	}
}

// Serial is the reference backend: the naive kernels the repo trained with
// before the backend split, unchanged in result and operation order.
type Serial struct{}

// Name implements Backend.
func (Serial) Name() string { return "serial" }

// Workers implements Backend.
func (Serial) Workers() int { return 1 }

// MatMul implements Backend.
func (Serial) MatMul(dst, a, b, rowBias []float64, m, k, n int) {
	matMulRows(dst, a, b, rowBias, k, n, 0, m)
}

// MatMulTransA implements Backend.
func (Serial) MatMulTransA(dst, a, b []float64, k, m, n int, accumulate bool) {
	matMulTransARows(dst, a, b, k, m, n, 0, m, accumulate)
}

// MatMulTransB implements Backend.
func (Serial) MatMulTransB(dst, a, b, colBias []float64, m, k, n int, accumulate bool) {
	matMulTransBRows(dst, a, b, colBias, k, n, 0, m, accumulate)
}

// Axpy implements Backend.
func (Serial) Axpy(alpha float64, src, dst []float64) {
	axpyRange(alpha, src, dst, 0, len(dst))
}

// For implements Backend.
func (Serial) For(n, grain int, fn func(i0, i1 int)) {
	if n > 0 {
		fn(0, n)
	}
}

// task is one dispatched unit of work: a contiguous index range of one
// kernel call. Tasks travel by value through the pool channel and select
// their kernel by opcode, so a dispatch allocates nothing — no per-chunk
// closure, no per-call goroutine.
type task struct {
	op        uint8
	dst, a, b []float64
	bias      []float64 // rowBias (MatMul) or colBias (MatMulTransB)
	k, m, n   int
	alpha     float64
	acc       bool
	fn        func(i0, i1 int)
	i0, i1    int
	wg        *sync.WaitGroup
}

// Task opcodes.
const (
	opMatMul uint8 = iota
	opTransA
	opTransB
	opAxpy
	opFor
)

// run executes the task's range with the same row kernels Serial uses.
func (t *task) run() {
	switch t.op {
	case opMatMul:
		matMulRows(t.dst, t.a, t.b, t.bias, t.k, t.n, t.i0, t.i1)
	case opTransA:
		matMulTransARows(t.dst, t.a, t.b, t.k, t.m, t.n, t.i0, t.i1, t.acc)
	case opTransB:
		matMulTransBRows(t.dst, t.a, t.b, t.bias, t.k, t.n, t.i0, t.i1, t.acc)
	case opAxpy:
		axpyRange(t.alpha, t.a, t.dst, t.i0, t.i1)
	case opFor:
		t.fn(t.i0, t.i1)
	}
}

// wgPool recycles the per-dispatch WaitGroups so a warm dispatch performs
// zero heap allocations.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// Parallel is the cache-blocked, goroutine-parallel backend. Work is
// partitioned by output rows into at most Workers contiguous chunks; each
// worker runs the same row kernels as Serial, so results are bit-identical
// to Serial for every worker count. Chunks are executed by a lazily started
// persistent worker pool (the dispatching goroutine runs the first chunk
// itself), making the steady-state dispatch allocation-free.
type Parallel struct {
	workers int
	once    sync.Once
	tasks   chan task
}

// NewParallel returns a parallel backend with the given worker count
// (values ≤ 0 select GOMAXPROCS).
func NewParallel(workers int) *Parallel {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Parallel{workers: workers}
}

// Name implements Backend.
func (p *Parallel) Name() string { return "parallel" }

// Workers implements Backend.
func (p *Parallel) Workers() int { return p.workers }

// ensurePool starts the persistent workers on first dispatch. workers-1
// goroutines are enough: the dispatching goroutine always executes one chunk
// inline. The pool is shared by every concurrent caller of this backend
// (tasks carry their own WaitGroup), and workers never block on another
// task's completion, so interleaved dispatches cannot deadlock.
func (p *Parallel) ensurePool() {
	p.once.Do(func() {
		p.tasks = make(chan task, 2*p.workers)
		for i := 0; i < p.workers-1; i++ {
			go func() {
				for t := range p.tasks {
					t.run()
					t.wg.Done()
				}
			}()
		}
	})
}

// dispatch fans t out over [0,n) in `chunks` contiguous ranges: chunks-1 go
// to the pool, the first runs inline. Chunk boundaries depend only on n and
// chunks, and every kernel accumulates in ascending order within its rows,
// so results are bit-identical to Serial.
func (p *Parallel) dispatch(n, chunks int, t task) {
	if chunks > p.workers {
		chunks = p.workers
	}
	if chunks <= 1 {
		t.i0, t.i1 = 0, n
		t.run()
		return
	}
	p.ensurePool()
	wg := wgPool.Get().(*sync.WaitGroup)
	t.wg = wg
	wg.Add(chunks - 1)
	for c := 1; c < chunks; c++ {
		t.i0 = c * n / chunks
		t.i1 = (c + 1) * n / chunks
		p.tasks <- t
	}
	t.i0, t.i1 = 0, n/chunks
	t.run()
	wg.Wait()
	wgPool.Put(wg)
}

// MatMul implements Backend.
func (p *Parallel) MatMul(dst, a, b, rowBias []float64, m, k, n int) {
	if p.workers <= 1 || m < 2 || int64(m)*int64(k)*int64(n) < parallelFlops {
		matMulRows(dst, a, b, rowBias, k, n, 0, m)
		return
	}
	p.dispatch(m, m, task{op: opMatMul, dst: dst, a: a, b: b, bias: rowBias, k: k, n: n})
}

// MatMulTransA implements Backend.
func (p *Parallel) MatMulTransA(dst, a, b []float64, k, m, n int, accumulate bool) {
	if p.workers <= 1 || m < 2 || int64(m)*int64(k)*int64(n) < parallelFlops {
		matMulTransARows(dst, a, b, k, m, n, 0, m, accumulate)
		return
	}
	p.dispatch(m, m, task{op: opTransA, dst: dst, a: a, b: b, k: k, m: m, n: n, acc: accumulate})
}

// MatMulTransB implements Backend.
func (p *Parallel) MatMulTransB(dst, a, b, colBias []float64, m, k, n int, accumulate bool) {
	if p.workers <= 1 || m < 2 || int64(m)*int64(k)*int64(n) < parallelFlops {
		matMulTransBRows(dst, a, b, colBias, k, n, 0, m, accumulate)
		return
	}
	p.dispatch(m, m, task{op: opTransB, dst: dst, a: a, b: b, bias: colBias, k: k, n: n, acc: accumulate})
}

// Axpy implements Backend.
func (p *Parallel) Axpy(alpha float64, src, dst []float64) {
	n := len(dst)
	if p.workers <= 1 || n < parallelFlops {
		axpyRange(alpha, src, dst, 0, n)
		return
	}
	p.dispatch(n, n, task{op: opAxpy, a: src, dst: dst, alpha: alpha})
}

// For implements Backend.
func (p *Parallel) For(n, grain int, fn func(i0, i1 int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if p.workers <= 1 || n <= grain {
		fn(0, n)
		return
	}
	chunks := p.workers
	if most := (n + grain - 1) / grain; chunks > most {
		chunks = most
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	p.dispatch(n, chunks, task{op: opFor, fn: fn})
}

// BudgetWorkers splits the machine between outer task-level parallelism
// (eNAS candidate workers) and inner kernel parallelism so the two never
// oversubscribe cores: with W candidates training concurrently, each
// candidate's kernels get NumCPU/W workers (at least 1).
func BudgetWorkers(outer int) int {
	if outer < 1 {
		outer = 1
	}
	w := runtime.NumCPU() / outer
	if w < 1 {
		w = 1
	}
	return w
}
