// Package compute is the pluggable dense-kernel substrate beneath the
// tensor/nn training stack. Every eNAS evaluation trains a candidate for
// real, so search wall-clock is dominated by the GEMMs issued from
// Conv2D/Dense forward and backward passes; this package lets the hot path
// choose between the reference serial kernels and a cache-blocked,
// goroutine-parallel implementation without changing a single result bit.
//
// Determinism contract: all backends partition work by output rows (or
// disjoint index ranges for Axpy/For), and every kernel accumulates the
// contributions to one output element in ascending inner-dimension order.
// The floating-point operation sequence per output element is therefore
// identical for every worker count, so a seeded search returns a
// byte-identical result whether it runs on one core or sixty-four.
package compute

import (
	"runtime"
	"sync"
)

// Backend performs the dense linear-algebra kernels on raw row-major
// float64 buffers. Dimensions are passed explicitly so the package has no
// dependency on the tensor layer above it.
type Backend interface {
	// Name identifies the backend in telemetry ("serial", "parallel").
	Name() string
	// Workers reports the kernel parallelism (1 for serial).
	Workers() int
	// MatMul computes dst = a×b for a (m,k) and b (k,n). When rowBias is
	// non-nil (length m) it is fused in: dst[i][j] starts at rowBias[i]
	// instead of 0 — the Conv2D per-output-channel bias path.
	MatMul(dst, a, b, rowBias []float64, m, k, n int)
	// MatMulTransA computes dst = aᵀ×b for a (k,m) and b (k,n), producing
	// (m,n). With accumulate it computes dst += aᵀ×b, the fused
	// weight-gradient path that avoids a temporary plus an add.
	MatMulTransA(dst, a, b []float64, k, m, n int, accumulate bool)
	// MatMulTransB computes dst = a×bᵀ for a (m,k) and b (n,k), producing
	// (m,n). colBias (nil or length n) is added to every row — the Dense
	// forward bias path. With accumulate it computes dst += a×bᵀ
	// (colBias must then be nil).
	MatMulTransB(dst, a, b, colBias []float64, m, k, n int, accumulate bool)
	// Axpy computes dst += alpha·src element-wise.
	Axpy(alpha float64, src, dst []float64)
	// For runs fn over disjoint contiguous chunks covering [0,n). grain is
	// the minimum chunk size worth dispatching to a worker; callers must
	// only rely on chunks being disjoint and covering the range, never on
	// execution order.
	For(n, grain int, fn func(i0, i1 int))
}

// Cache blocking parameters. blockJ keeps one dst-row segment plus the
// matching b-row segments resident in L1 (512 floats = 4 KiB per row);
// blockK bounds the b panel walked per segment. Block loops ascend, so the
// per-element accumulation order is exactly that of the naive i-k-j kernel.
const (
	blockJ = 512
	blockK = 64
)

// parallelFlops is the work floor (m·k·n multiply-adds) below which the
// parallel backend runs the serial kernel inline: under ~32k flops the
// goroutine fan-out costs more than the loop.
const parallelFlops = 32 << 10

// matMulRows computes rows [i0,i1) of dst = a×b (+ rowBias).
func matMulRows(dst, a, b, rowBias []float64, k, n, i0, i1 int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		if rowBias != nil {
			bv := rowBias[i]
			for j := range drow {
				drow[j] = bv
			}
		} else {
			for j := range drow {
				drow[j] = 0
			}
		}
		for kb := 0; kb < k; kb += blockK {
			ke := kb + blockK
			if ke > k {
				ke = k
			}
			for jb := 0; jb < n; jb += blockJ {
				je := jb + blockJ
				if je > n {
					je = n
				}
				dseg := drow[jb:je]
				for kk := kb; kk < ke; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					bseg := b[kk*n+jb : kk*n+je]
					for j, bv := range bseg {
						dseg[j] += av * bv
					}
				}
			}
		}
	}
}

// matMulTransARows computes rows [i0,i1) of dst (+)= aᵀ×b. Row i of dst is
// column i of a; for every element the k summands are added in ascending
// order, matching the serial kernel exactly.
func matMulTransARows(dst, a, b []float64, k, m, n, i0, i1 int, accumulate bool) {
	for i := i0; i < i1; i++ {
		drow := dst[i*n : (i+1)*n]
		if !accumulate {
			for j := range drow {
				drow[j] = 0
			}
		}
		for kk := 0; kk < k; kk++ {
			av := a[kk*m+i]
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// matMulTransBRows computes rows [i0,i1) of dst (+)= a×bᵀ (+ colBias).
func matMulTransBRows(dst, a, b, colBias []float64, k, n, i0, i1 int, accumulate bool) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for kk, av := range arow {
				s += av * brow[kk]
			}
			if colBias != nil {
				s += colBias[j]
			}
			if accumulate {
				drow[j] += s
			} else {
				drow[j] = s
			}
		}
	}
}

// axpyRange computes dst[i0:i1] += alpha·src[i0:i1].
func axpyRange(alpha float64, src, dst []float64, i0, i1 int) {
	s := src[i0:i1]
	d := dst[i0:i1]
	for i, v := range s {
		d[i] += alpha * v
	}
}

// Serial is the reference backend: the naive kernels the repo trained with
// before the backend split, unchanged in result and operation order.
type Serial struct{}

// Name implements Backend.
func (Serial) Name() string { return "serial" }

// Workers implements Backend.
func (Serial) Workers() int { return 1 }

// MatMul implements Backend.
func (Serial) MatMul(dst, a, b, rowBias []float64, m, k, n int) {
	matMulRows(dst, a, b, rowBias, k, n, 0, m)
}

// MatMulTransA implements Backend.
func (Serial) MatMulTransA(dst, a, b []float64, k, m, n int, accumulate bool) {
	matMulTransARows(dst, a, b, k, m, n, 0, m, accumulate)
}

// MatMulTransB implements Backend.
func (Serial) MatMulTransB(dst, a, b, colBias []float64, m, k, n int, accumulate bool) {
	matMulTransBRows(dst, a, b, colBias, k, n, 0, m, accumulate)
}

// Axpy implements Backend.
func (Serial) Axpy(alpha float64, src, dst []float64) {
	axpyRange(alpha, src, dst, 0, len(dst))
}

// For implements Backend.
func (Serial) For(n, grain int, fn func(i0, i1 int)) {
	if n > 0 {
		fn(0, n)
	}
}

// Parallel is the cache-blocked, goroutine-parallel backend. Work is
// partitioned by output rows into at most Workers contiguous chunks; each
// worker runs the same row kernels as Serial, so results are bit-identical
// to Serial for every worker count.
type Parallel struct {
	workers int
}

// NewParallel returns a parallel backend with the given worker count
// (values ≤ 0 select GOMAXPROCS).
func NewParallel(workers int) *Parallel {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Parallel{workers: workers}
}

// Name implements Backend.
func (p *Parallel) Name() string { return "parallel" }

// Workers implements Backend.
func (p *Parallel) Workers() int { return p.workers }

// rows fans fn out over [0,m) in at most p.workers contiguous chunks and
// waits for completion.
func (p *Parallel) rows(m int, fn func(i0, i1 int)) {
	chunks := p.workers
	if chunks > m {
		chunks = m
	}
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		i0 := c * m / chunks
		i1 := (c + 1) * m / chunks
		go func(i0, i1 int) {
			defer wg.Done()
			fn(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

// MatMul implements Backend.
func (p *Parallel) MatMul(dst, a, b, rowBias []float64, m, k, n int) {
	if p.workers <= 1 || m < 2 || int64(m)*int64(k)*int64(n) < parallelFlops {
		matMulRows(dst, a, b, rowBias, k, n, 0, m)
		return
	}
	p.rows(m, func(i0, i1 int) { matMulRows(dst, a, b, rowBias, k, n, i0, i1) })
}

// MatMulTransA implements Backend.
func (p *Parallel) MatMulTransA(dst, a, b []float64, k, m, n int, accumulate bool) {
	if p.workers <= 1 || m < 2 || int64(m)*int64(k)*int64(n) < parallelFlops {
		matMulTransARows(dst, a, b, k, m, n, 0, m, accumulate)
		return
	}
	p.rows(m, func(i0, i1 int) { matMulTransARows(dst, a, b, k, m, n, i0, i1, accumulate) })
}

// MatMulTransB implements Backend.
func (p *Parallel) MatMulTransB(dst, a, b, colBias []float64, m, k, n int, accumulate bool) {
	if p.workers <= 1 || m < 2 || int64(m)*int64(k)*int64(n) < parallelFlops {
		matMulTransBRows(dst, a, b, colBias, k, n, 0, m, accumulate)
		return
	}
	p.rows(m, func(i0, i1 int) { matMulTransBRows(dst, a, b, colBias, k, n, i0, i1, accumulate) })
}

// Axpy implements Backend.
func (p *Parallel) Axpy(alpha float64, src, dst []float64) {
	n := len(dst)
	if p.workers <= 1 || n < parallelFlops {
		axpyRange(alpha, src, dst, 0, n)
		return
	}
	p.rows(n, func(i0, i1 int) { axpyRange(alpha, src, dst, i0, i1) })
}

// For implements Backend.
func (p *Parallel) For(n, grain int, fn func(i0, i1 int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if p.workers <= 1 || n <= grain {
		fn(0, n)
		return
	}
	chunks := p.workers
	if most := (n + grain - 1) / grain; chunks > most {
		chunks = most
	}
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		i0 := c * n / chunks
		i1 := (c + 1) * n / chunks
		go func(i0, i1 int) {
			defer wg.Done()
			fn(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

// BudgetWorkers splits the machine between outer task-level parallelism
// (eNAS candidate workers) and inner kernel parallelism so the two never
// oversubscribe cores: with W candidates training concurrently, each
// candidate's kernels get NumCPU/W workers (at least 1).
func BudgetWorkers(outer int) int {
	if outer < 1 {
		outer = 1
	}
	w := runtime.NumCPU() / outer
	if w < 1 {
		w = 1
	}
	return w
}
