package compute

import (
	"math"
	"math/rand"
	"testing"
)

// refInt8MatMul is the obvious triple loop the blocked kernel must match
// exactly (integer arithmetic: any disagreement is a bug, not tolerance).
func refInt8MatMul(dst []int32, a, b []int8, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for kk := 0; kk < k; kk++ {
				acc += int32(a[i*k+kk]) * int32(b[kk*n+j])
			}
			dst[i*n+j] = acc
		}
	}
}

func randInt8(rng *rand.Rand, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(rng.Intn(255) - 127)
	}
	return out
}

func TestQuantizeMultiplier(t *testing.T) {
	// Exact powers of two decompose with a full-scale mantissa.
	if mult, shift := QuantizeMultiplier(1.0); mult != 1<<30 || shift != 30 {
		t.Fatalf("QuantizeMultiplier(1) = (%d, %d), want (2^30, 30)", mult, shift)
	}
	if mult, shift := QuantizeMultiplier(0.5); mult != 1<<30 || shift != 31 {
		t.Fatalf("QuantizeMultiplier(0.5) = (%d, %d), want (2^30, 31)", mult, shift)
	}
	if mult, shift := QuantizeMultiplier(2.0); mult != 1<<30 || shift != 29 {
		t.Fatalf("QuantizeMultiplier(2) = (%d, %d), want (2^30, 29)", mult, shift)
	}
	// Degenerate multipliers must annihilate, not wrap.
	for _, m := range []float64{0, -1, math.NaN(), math.Inf(1), 1e-40} {
		if mult, shift := QuantizeMultiplier(m); mult != 0 || shift != 0 {
			t.Fatalf("QuantizeMultiplier(%v) = (%d, %d), want (0, 0)", m, mult, shift)
		}
	}
	// Reconstruction accuracy: mult·2^-shift within 2^-30 relative of m.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		m := math.Exp(rng.Float64()*20 - 10) // ~[4.5e-5, 2.2e4]
		mult, shift := QuantizeMultiplier(m)
		got := float64(mult) * math.Ldexp(1, -shift)
		if rel := math.Abs(got-m) / m; rel > 1.0/(1<<30) {
			t.Fatalf("QuantizeMultiplier(%g): reconstructed %g, rel err %g", m, got, rel)
		}
	}
	// Signed variant carries the sign on the mantissa.
	mult, shift := QuantizeMultiplierSigned(-1.0)
	if mult != -(1<<30) || shift != 30 {
		t.Fatalf("QuantizeMultiplierSigned(-1) = (%d, %d), want (-2^30, 30)", mult, shift)
	}
}

func TestRequantizeRNETies(t *testing.T) {
	// mult/shift encoding 0.5 exactly: acc·0.5 exercises the tie cases.
	mult, shift := QuantizeMultiplier(0.5)
	cases := []struct {
		acc  int32
		want int8
	}{
		{0, 0},
		{1, 0},   // 0.5 ties to even 0
		{-1, 0},  // -0.5 ties to even 0
		{3, 2},   // 1.5 ties to even 2
		{-3, -2}, // -1.5 ties to even -2
		{5, 2},   // 2.5 ties to even 2
		{-5, -2}, // -2.5 ties to even -2
		{7, 4},   // 3.5 ties to even 4
		{2, 1},
		{-2, -1},
	}
	for _, c := range cases {
		if got := RequantizeRNE(c.acc, mult, shift, -127, 127); got != c.want {
			t.Fatalf("RequantizeRNE(%d × 0.5) = %d, want %d", c.acc, got, c.want)
		}
	}
}

func TestRequantizeRNESaturation(t *testing.T) {
	mult, shift := QuantizeMultiplier(1.0)
	if got := RequantizeRNE(1000, mult, shift, -127, 127); got != 127 {
		t.Fatalf("positive saturation: got %d, want 127", got)
	}
	if got := RequantizeRNE(-1000, mult, shift, -127, 127); got != -127 {
		t.Fatalf("negative saturation: got %d, want -127", got)
	}
	// Fused ReLU: lower bound 0.
	if got := RequantizeRNE(-5, mult, shift, 0, 127); got != 0 {
		t.Fatalf("fused ReLU: got %d, want 0", got)
	}
	// Large multipliers (negative shift) saturate instead of wrapping.
	mult, shift = QuantizeMultiplier(1 << 20)
	if got := RequantizeRNE(math.MaxInt32, mult, shift, -127, 127); got != 127 {
		t.Fatalf("big-multiplier saturation: got %d, want 127", got)
	}
	if got := RequantizeRNE(math.MinInt32, mult, shift, -127, 127); got != -127 {
		t.Fatalf("big-multiplier negative saturation: got %d, want -127", got)
	}
	// Affine form: bias applies after the scale, before the clamp.
	mult, shift = QuantizeMultiplier(1.0)
	if got := RequantizeAffineRNE(10, mult, shift, 5, -127, 127); got != 15 {
		t.Fatalf("affine: got %d, want 15", got)
	}
	if got := RequantizeAffineRNE(0, 0, 0, 42, -127, 127); got != 42 {
		t.Fatalf("dead-channel affine (mult 0): got %d, want 42", got)
	}
}

func TestInt8GEMMMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {8, 64, 33}, {17, 70, 600}, {2, 130, 9},
	}
	var g Int8GEMM
	ctx := NewContext(NewParallel(4), nil)
	for _, s := range shapes {
		a := randInt8(rng, s.m*s.k)
		b := randInt8(rng, s.k*s.n)
		got := make([]int32, s.m*s.n)
		want := make([]int32, s.m*s.n)
		g.MatMul(ctx, got, a, b, s.m, s.k, s.n)
		refInt8MatMul(want, a, b, s.m, s.k, s.n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %+v: dst[%d] = %d, want %d", s, i, got[i], want[i])
			}
		}
	}
}

func TestInt8GEMMDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, k, n := 23, 95, 311
	a := randInt8(rng, m*k)
	b := randInt8(rng, k*n)

	run := func(backend Backend) []int32 {
		ctx := NewContext(backend, nil)
		var g Int8GEMM
		dst := make([]int32, m*n)
		g.MatMul(ctx, dst, a, b, m, k, n)
		return dst
	}
	serial := run(Serial{})
	for _, workers := range []int{2, 4, 7} {
		par := run(NewParallel(workers))
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: dst[%d] = %d, serial %d", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestInt8DenseFusedEpilogue(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, in, out := 5, 37, 11
	x := randInt8(rng, n*in)
	w := randInt8(rng, out*in)
	bias := make([]int32, out)
	mult := make([]int32, out)
	shift := make([]int32, out)
	scales := make([]float64, out)
	for j := range bias {
		bias[j] = int32(rng.Intn(2001) - 1000)
		scales[j] = math.Exp(rng.Float64()*4 - 6) // small positive scales
		m, s := QuantizeMultiplier(scales[j])
		mult[j], shift[j] = m, int32(s)
	}

	var d Int8Dense
	dst := make([]int8, n*out)
	d.Run(nil, dst, x, w, bias, mult, shift, n, in, out, 0, 127)

	for i := 0; i < n; i++ {
		for j := 0; j < out; j++ {
			var acc int32
			for kk := 0; kk < in; kk++ {
				acc += int32(x[i*in+kk]) * int32(w[j*in+kk])
			}
			acc += bias[j]
			want := RequantizeRNE(acc, mult[j], int(shift[j]), 0, 127)
			if got := dst[i*out+j]; got != want {
				t.Fatalf("dst[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestInt8Conv2DMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, inC, h, wd := 3, 2, 7, 9
	outC, k, stride, pad := 4, 3, 2, 1
	oh := (h+2*pad-k)/stride + 1
	ow := (wd+2*pad-k)/stride + 1

	x := randInt8(rng, n*inC*h*wd)
	w := randInt8(rng, outC*inC*k*k)
	bias := make([]int32, outC)
	for j := range bias {
		bias[j] = int32(rng.Intn(201) - 100)
	}
	mult, shift := QuantizeMultiplier(0.03)
	mults := []int32{mult}
	shifts := []int32{int32(shift)}

	var conv Int8Conv2D
	rows := inC * k * k
	width := n * oh * ow
	cols := make([]int8, rows*width)
	acc := make([]int32, outC*width)
	dst := make([]int8, n*outC*oh*ow)
	ctx := NewContext(NewParallel(3), nil)
	conv.Run(ctx, dst, x, w, bias, mults, shifts, cols, acc,
		n, inC, h, wd, outC, k, stride, pad, -127, 127)

	for i := 0; i < n; i++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					a := bias[oc]
					for ic := 0; ic < inC; ic++ {
						for ky := 0; ky < k; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox*stride + kx - pad
								if ix < 0 || ix >= wd {
									continue
								}
								a += int32(w[((oc*inC+ic)*k+ky)*k+kx]) *
									int32(x[((i*inC+ic)*h+iy)*wd+ix])
							}
						}
					}
					want := RequantizeRNE(a, mult, shift, -127, 127)
					got := dst[((i*outC+oc)*oh+oy)*ow+ox]
					if got != want {
						t.Fatalf("sample %d ch %d (%d,%d): got %d, want %d", i, oc, oy, ox, got, want)
					}
				}
			}
		}
	}
}

func TestInt8DWConv2DMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, ch, h, wd := 2, 3, 6, 8
	k, stride, pad := 3, 1, 1
	oh := (h+2*pad-k)/stride + 1
	ow := (wd+2*pad-k)/stride + 1

	x := randInt8(rng, n*ch*h*wd)
	w := randInt8(rng, ch*k*k)
	bias := make([]int32, ch)
	mults := make([]int32, ch)
	shifts := make([]int32, ch)
	for c := range bias {
		bias[c] = int32(rng.Intn(101) - 50)
		m, s := QuantizeMultiplier(0.01 + 0.02*float64(c))
		mults[c], shifts[c] = m, int32(s)
	}

	var dw Int8DWConv2D
	dst := make([]int8, n*ch*oh*ow)
	dw.Run(nil, dst, x, w, bias, mults, shifts, n, ch, h, wd, k, stride, pad, 0, 127)

	for i := 0; i < n; i++ {
		for c := 0; c < ch; c++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					a := bias[c]
					for ky := 0; ky < k; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= wd {
								continue
							}
							a += int32(w[(c*k+ky)*k+kx]) * int32(x[((i*ch+c)*h+iy)*wd+ix])
						}
					}
					want := RequantizeRNE(a, mults[c], int(shifts[c]), 0, 127)
					got := dst[((i*ch+c)*oh+oy)*ow+ox]
					if got != want {
						t.Fatalf("sample %d ch %d (%d,%d): got %d, want %d", i, c, oy, ox, got, want)
					}
				}
			}
		}
	}
}

func TestInt8Quantize(t *testing.T) {
	var q Int8Quantize
	src := []float64{0, 0.05, -0.05, 0.025, 1e9, -1e9, 0.1}
	dst := make([]int8, len(src))
	q.Run(nil, dst, src, 0.05, 127)
	want := []int8{0, 1, -1, 0 /* 0.5 ties to even */, 127, -127, 2}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("quantize[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	// Zero scale maps everything to zero rather than dividing by it.
	q.Run(nil, dst, src, 0, 127)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("zero-scale quantize[%d] = %d, want 0", i, v)
		}
	}
}
