package compute

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchMatMul times dst = a×b at a conv-lowering-sized shape for one backend.
func benchMatMul(b *testing.B, be Backend) {
	const m, k, n = 32, 288, 1080 // (OutC, InC·K², N·OH·OW) of a wide conv
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, m*k)
	bb := make([]float64, k*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range bb {
		bb[i] = rng.NormFloat64()
	}
	dst := make([]float64, m*n)
	b.SetBytes(int64(8 * m * k * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be.MatMul(dst, a, bb, nil, m, k, n)
	}
}

// BenchmarkMatMulBackend compares the serial and parallel GEMM on the batched
// im2col shape Conv2D issues during NAS candidate training.
func BenchmarkMatMulBackend(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchMatMul(b, Serial{}) })
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", w), func(b *testing.B) { benchMatMul(b, NewParallel(w)) })
	}
}
