package compute

import (
	"math/bits"
	"sync"
	"time"

	"solarml/internal/obs"
)

// Context bundles a Backend with a scratch-buffer pool and optional
// telemetry. One context is shared by all layers of a network (and, in a
// parallel eNAS search, by all evaluator goroutines — every method is safe
// for concurrent use). A nil *Context is valid and selects the serial
// backend with no pooling, so layers need no guards.
type Context struct {
	backend Backend
	pool    pool
	timed   bool
	gemm    *obs.Histogram
}

// NewContext returns a context over the given backend (nil selects Serial).
// When reg is non-nil the context records a compute.gemm_seconds histogram
// per GEMM call and compute.pool_hits / compute.pool_misses counters.
func NewContext(backend Backend, reg *obs.Registry) *Context {
	if backend == nil {
		backend = Serial{}
	}
	c := &Context{backend: backend}
	if reg != nil {
		c.timed = true
		c.gemm = reg.Histogram("compute.gemm_seconds", obs.TimeBuckets)
		c.pool.hits = reg.Counter("compute.pool_hits")
		c.pool.misses = reg.Counter("compute.pool_misses")
	}
	return c
}

// NewContextFor is shorthand for a pooled context over NewParallel(workers)
// — or the serial backend when workers is 1 — with optional metrics.
func NewContextFor(workers int, reg *obs.Registry) *Context {
	if workers == 1 {
		return NewContext(Serial{}, reg)
	}
	return NewContext(NewParallel(workers), reg)
}

// Backend returns the context's backend (Serial for a nil context).
func (c *Context) Backend() Backend {
	if c == nil || c.backend == nil {
		return Serial{}
	}
	return c.backend
}

// Workers reports the kernel parallelism.
func (c *Context) Workers() int { return c.Backend().Workers() }

// Name reports the backend name.
func (c *Context) Name() string { return c.Backend().Name() }

// Get returns a zero-filled scratch buffer of length n, reusing a pooled
// buffer when one of sufficient capacity is free. Pair with Put.
func (c *Context) Get(n int) []float64 {
	if c == nil {
		return make([]float64, n)
	}
	return c.pool.get(n)
}

// Put returns a buffer obtained from Get to the pool. Safe to call with
// buffers from other sources; oddly-sized ones are dropped.
func (c *Context) Put(buf []float64) {
	if c != nil {
		c.pool.put(buf)
	}
}

// MatMul computes dst = a×b (+ rowBias); see Backend.MatMul.
func (c *Context) MatMul(dst, a, b, rowBias []float64, m, k, n int) {
	if c == nil {
		Serial{}.MatMul(dst, a, b, rowBias, m, k, n)
		return
	}
	var t0 time.Time
	if c.timed {
		t0 = time.Now()
	}
	c.backend.MatMul(dst, a, b, rowBias, m, k, n)
	if c.timed {
		c.gemm.Observe(time.Since(t0).Seconds())
	}
}

// MatMulTransA computes dst (+)= aᵀ×b; see Backend.MatMulTransA.
func (c *Context) MatMulTransA(dst, a, b []float64, k, m, n int, accumulate bool) {
	if c == nil {
		Serial{}.MatMulTransA(dst, a, b, k, m, n, accumulate)
		return
	}
	var t0 time.Time
	if c.timed {
		t0 = time.Now()
	}
	c.backend.MatMulTransA(dst, a, b, k, m, n, accumulate)
	if c.timed {
		c.gemm.Observe(time.Since(t0).Seconds())
	}
}

// MatMulTransB computes dst (+)= a×bᵀ (+ colBias); see Backend.MatMulTransB.
func (c *Context) MatMulTransB(dst, a, b, colBias []float64, m, k, n int, accumulate bool) {
	if c == nil {
		Serial{}.MatMulTransB(dst, a, b, colBias, m, k, n, accumulate)
		return
	}
	var t0 time.Time
	if c.timed {
		t0 = time.Now()
	}
	c.backend.MatMulTransB(dst, a, b, colBias, m, k, n, accumulate)
	if c.timed {
		c.gemm.Observe(time.Since(t0).Seconds())
	}
}

// Axpy computes dst += alpha·src.
func (c *Context) Axpy(alpha float64, src, dst []float64) {
	c.Backend().Axpy(alpha, src, dst)
}

// For runs fn over disjoint chunks covering [0,n); see Backend.For.
func (c *Context) For(n, grain int, fn func(i0, i1 int)) {
	c.Backend().For(n, grain, fn)
}

// ParallelFor runs fn over disjoint index ranges covering [0,n), deriving
// the dispatch grain from flopsPerItem — the caller's estimate of the
// arithmetic work per index. The grain is sized so one chunk carries at
// least the backend's parallel work floor: cheap loops (ReLU, mask
// application) only fan out when the tensor is large enough to amortize the
// goroutine dispatch, while expensive per-item bodies (a pooling window, a
// batch-norm channel) parallelize at small n.
//
// Chunks are element-disjoint and every index is visited exactly once, so
// any fn whose writes depend only on its own indices produces bit-identical
// results at every worker count — the property the elementwise training
// kernels in internal/nn rely on.
func (c *Context) ParallelFor(n, flopsPerItem int, fn func(i0, i1 int)) {
	if flopsPerItem < 1 {
		flopsPerItem = 1
	}
	grain := parallelFlops / flopsPerItem
	if grain < 1 {
		grain = 1
	}
	c.Backend().For(n, grain, fn)
}

// pool recycles float64 scratch buffers in power-of-two size classes. The
// retained set is bounded per class so one oversized batch cannot pin
// memory for the rest of a search. Buffers come back from Get zero-filled —
// im2col relies on padding positions staying zero — so pooling can never
// change a result.
type pool struct {
	mu      sync.Mutex
	classes map[int][][]float64
	hits    *obs.Counter
	misses  *obs.Counter
}

// maxPerClass bounds the free-list length of one size class.
const maxPerClass = 16

// sizeClass returns the power-of-two capacity class for n.
func sizeClass(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

func (p *pool) get(n int) []float64 {
	if n <= 0 {
		return nil
	}
	class := sizeClass(n)
	p.mu.Lock()
	stack := p.classes[class]
	if len(stack) > 0 {
		buf := stack[len(stack)-1]
		p.classes[class] = stack[:len(stack)-1]
		p.mu.Unlock()
		p.hits.Inc()
		buf = buf[:n]
		clear(buf)
		return buf
	}
	p.mu.Unlock()
	p.misses.Inc()
	return make([]float64, n, class)
}

func (p *pool) put(buf []float64) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 {
		// Not one of ours (capacity is not a class size); drop it.
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.classes == nil {
		p.classes = make(map[int][][]float64)
	}
	if len(p.classes[c]) < maxPerClass {
		p.classes[c] = append(p.classes[c], buf[:c])
	}
}
