// Package core is the SolarML platform facade: it wires the solar array,
// harvester, passive event-detection circuit, and MCU power model into
// end-to-end inference sessions, and provides the system-level comparisons
// of the paper's evaluation — the Fig 1 energy-cost distribution across
// idle/detection schemes, the Fig 2 energy traces, the Fig 6 sleep
// mechanism, and the §V-D end-to-end energy and harvesting-time numbers.
package core

import (
	"fmt"

	"solarml/internal/circuit"
	"solarml/internal/dataset"
	"solarml/internal/detect"
	"solarml/internal/dsp"
	"solarml/internal/energymodel"
	"solarml/internal/harvest"
	"solarml/internal/mcu"
	"solarml/internal/nas"
	"solarml/internal/nn"
	"solarml/internal/obs"
	"solarml/internal/powertrace"
	"solarml/internal/solar"
)

// Platform bundles the hardware subsystems of one SolarML device.
type Platform struct {
	Array     *solar.Array
	Harvester *harvest.Harvester
	Event     *circuit.EventCircuit
	Detector  *detect.SolarML
	Coeff     energymodel.Coefficients
	Profile   mcu.PowerProfile
	// Obs, when set, wraps every RunSession in a core.session span (name,
	// task, idle mode, energy buckets) and replays the session's power
	// trace into the event stream; it also propagates to the harvester.
	Obs *obs.Recorder
}

// NewPlatform returns the calibrated prototype.
func NewPlatform() *Platform {
	return &Platform{
		Array:     solar.NewArray(),
		Harvester: harvest.New(),
		Event:     circuit.NewEventCircuit(),
		Detector:  detect.NewSolarML(),
		Coeff:     energymodel.DefaultCoefficients(),
		Profile:   mcu.NRF52840(),
	}
}

// IdleMode selects what the system does while waiting for an event.
type IdleMode int

const (
	// IdleOff: fully off, woken by the passive circuit (SolarML).
	IdleOff IdleMode = iota
	// IdleDeepSleep: MCU deep sleep, woken by a low-power sensor.
	IdleDeepSleep
	// IdleContinuous: MCU continuously samples to detect events itself.
	IdleContinuous
)

// String returns the idle-mode name.
func (m IdleMode) String() string {
	switch m {
	case IdleOff:
		return "off"
	case IdleDeepSleep:
		return "deep-sleep"
	case IdleContinuous:
		return "continuous"
	}
	return "unknown"
}

// SessionConfig describes one end-to-end inference session.
type SessionConfig struct {
	// Name labels the configuration in reports.
	Name string
	// Detector provides the event-detection energy; nil means detection
	// is folded into the idle mode (continuous monitoring).
	Detector detect.Detector
	// Idle selects the waiting behaviour, IdleS its duration.
	Idle  IdleMode
	IdleS float64
	// Task and the matching sensing configuration.
	Task    nas.Task
	Gesture dataset.GestureConfig
	Audio   dsp.FrontEndConfig
	// InferMACs is the model's per-kind MAC breakdown.
	InferMACs map[nn.LayerKind]int64
	// SenseSeconds overrides the sampling duration (0 selects the task
	// default: the gesture length or the audio clip length). Systems
	// with short capture windows (ECG bursts, pressure taps) set it.
	SenseSeconds float64
	// StandbyS is the post-inference RAM-retention window.
	StandbyS float64
}

// SessionReport is the outcome of a simulated session.
type SessionReport struct {
	Name  string
	Trace *powertrace.Recorder
	// EE, ES, EM are the paper's three energy buckets in joules;
	// Total is their sum.
	EE, ES, EM, Total float64
}

// Shares returns the E_E/E_S/E_M fractions.
func (r *SessionReport) Shares() (ee, es, em float64) {
	if r.Total == 0 {
		return 0, 0, 0
	}
	return r.EE / r.Total, r.ES / r.Total, r.EM / r.Total
}

// String renders a one-line summary.
func (r *SessionReport) String() string {
	ee, es, em := r.Shares()
	return fmt.Sprintf("%-22s total %8.0f µJ  E_E %4.1f%%  E_S %4.1f%%  E_M %4.1f%%",
		r.Name, r.Total*1e6, ee*100, es*100, em*100)
}

// RunSession simulates one end-to-end inference: idle wait → event
// detection → wake-up → sampling → pre-processing → inference → standby.
func (p *Platform) RunSession(cfg SessionConfig) (*SessionReport, error) {
	sp := p.Obs.StartSpan("core.session",
		obs.Str("name", cfg.Name), obs.Str("task", cfg.Task.String()),
		obs.Str("idle", cfg.Idle.String()), obs.F64("idle_s", cfg.IdleS))
	rep, err := p.runSession(cfg)
	if err != nil {
		sp.End(obs.Str("error", err.Error()))
		return nil, err
	}
	if p.Obs.Enabled() {
		rep.Trace.ExportObs(p.Obs, cfg.Name)
	}
	sp.End(obs.F64("e_e_j", rep.EE), obs.F64("e_s_j", rep.ES),
		obs.F64("e_m_j", rep.EM), obs.F64("total_j", rep.Total))
	return rep, nil
}

// runSession is the uninstrumented session simulation.
func (p *Platform) runSession(cfg SessionConfig) (*SessionReport, error) {
	dev := &mcu.Device{Profile: p.Profile, Trace: powertrace.New()}
	// Idle + detection.
	switch cfg.Idle {
	case IdleOff:
		// MCU draws nothing; the passive detector's standby drain is the
		// only cost, recorded as a deep-sleep-category segment.
		det := cfg.Detector
		if det == nil {
			det = p.Detector
		}
		lo, hi := det.WindowEnergy(cfg.IdleS)
		detPower := (lo + hi) / 2 / cfg.IdleS
		dev.Trace.Record(powertrace.PhaseDeepSleep, cfg.IdleS, detPower)
	case IdleDeepSleep:
		// Deep sleep, optionally with an external wake-up detector; with
		// no detector a timer (RTC) wake is assumed, as in the Fig 2
		// measurement setup.
		detPower := 0.0
		if cfg.Detector != nil {
			lo, hi := cfg.Detector.WindowEnergy(cfg.IdleS)
			detPower = (lo + hi) / 2 / cfg.IdleS
		}
		dev.Trace.Record(powertrace.PhaseDeepSleep, cfg.IdleS, p.Profile.DeepSleepW+detPower)
	case IdleContinuous:
		// The MCU itself samples at low rate to spot events.
		dev.Trace.Record(powertrace.PhaseDeepSleep, cfg.IdleS, p.Profile.TicklessBaseW)
	default:
		return nil, fmt.Errorf("core: unknown idle mode %d", cfg.Idle)
	}
	dev.WakeUp()

	// Sampling + pre-processing.
	switch cfg.Task {
	case nas.TaskGesture:
		if err := cfg.Gesture.Validate(); err != nil {
			return nil, err
		}
		senseS := cfg.SenseSeconds
		if senseS <= 0 {
			senseS = dataset.GestureDurationS
		}
		bits := cfg.Gesture.Quant.EffectiveBits()
		dev.SampleGesture(cfg.Gesture.Channels, float64(cfg.Gesture.RateHz), senseS, bits)
		samples := int64(float64(cfg.Gesture.Channels) * float64(cfg.Gesture.RateHz) * senseS)
		dev.Process(3 * samples)
	case nas.TaskKWS:
		if err := cfg.Audio.Validate(); err != nil {
			return nil, err
		}
		senseS := cfg.SenseSeconds
		if senseS <= 0 {
			senseS = dataset.AudioDurationS
		}
		dev.SampleAudio(senseS)
		dev.ProcessDSP(cfg.Audio.FrontEndMACs(int(dataset.AudioRateHz * senseS)))
	default:
		return nil, fmt.Errorf("core: unknown task %d", cfg.Task)
	}

	// Inference.
	dev.Infer(p.Coeff.TrueEnergy(cfg.InferMACs))

	// Standby window for a follow-up interaction.
	if cfg.StandbyS > 0 {
		dev.Standby(cfg.StandbyS)
	}

	by := dev.Trace.EnergyByCategory()
	rep := &SessionReport{
		Name:  cfg.Name,
		Trace: dev.Trace,
		EE:    by[powertrace.CatEvent],
		ES:    by[powertrace.CatSensing],
		EM:    by[powertrace.CatModel],
	}
	rep.Total = rep.EE + rep.ES + rep.EM
	return rep, nil
}

// SetObs attaches the recorder to the platform and its harvester.
func (p *Platform) SetObs(rec *obs.Recorder) {
	p.Obs = rec
	if p.Harvester != nil {
		p.Harvester.Obs = rec
	}
}

// HarvestTime returns the seconds of charging at the given illuminance
// needed to fund one session of the given energy.
func (p *Platform) HarvestTime(energyJ, lux float64) float64 {
	return p.Harvester.TimeToHarvest(energyJ, lux)
}
