package core_test

import (
	"fmt"

	"solarml/internal/core"
	"solarml/internal/dataset"
	"solarml/internal/dsp"
	"solarml/internal/nas"
	"solarml/internal/nn"
	"solarml/internal/quant"
)

// ExamplePlatform_RunSession simulates one end-to-end gesture inference on
// the SolarML platform and reads back the E_E/E_S/E_M energy split.
func ExamplePlatform_RunSession() {
	p := core.NewPlatform()
	cfg := core.SolarMLConfig("demo", nas.TaskGesture,
		dataset.GestureConfig{Channels: 6, RateHz: 80,
			Quant: quant.Config{Res: quant.Int, Bits: 8}},
		dsp.FrontEndConfig{},
		map[nn.LayerKind]int64{nn.KindConv: 300_000, nn.KindDense: 40_000},
		5, // seconds waiting for the user
	)
	rep, err := p.RunSession(cfg)
	if err != nil {
		panic(err)
	}
	ee, es, em := rep.Shares()
	fmt.Printf("buckets sum to total: %v\n", rep.EE+rep.ES+rep.EM == rep.Total)
	fmt.Printf("shares sum to one: %v\n", ee+es+em > 0.999 && ee+es+em < 1.001)
	fmt.Printf("sensing dominates: %v\n", es > ee && es > em)
	// Output:
	// buckets sum to total: true
	// shares sum to one: true
	// sensing dominates: true
}

// ExamplePlatform_HarvestTime computes how long the array must charge to
// fund a 5 mJ inference across light levels.
func ExamplePlatform_HarvestTime() {
	p := core.NewPlatform()
	t500 := p.HarvestTime(5e-3, 500)
	t1000 := p.HarvestTime(5e-3, 1000)
	fmt.Printf("brighter is faster: %v\n", t1000 < t500)
	fmt.Printf("500 lux takes tens of seconds: %v\n", t500 > 10 && t500 < 60)
	// Output:
	// brighter is faster: true
	// 500 lux takes tens of seconds: true
}
