package core

import (
	"math"
	"strings"
	"testing"

	"solarml/internal/dataset"
	"solarml/internal/nas"
	"solarml/internal/nn"
	"solarml/internal/powertrace"
	"solarml/internal/quant"
)

func TestRunSessionSolarMLGesture(t *testing.T) {
	p := NewPlatform()
	cfg := SolarMLConfig("solarml-gesture", nas.TaskGesture,
		dataset.GestureConfig{Channels: 5, RateHz: 60, Quant: quant.Config{Res: quant.Int, Bits: 8}},
		defaultAudioFrontEnd(), muNASGestureMACs(), 5)
	rep, err := p.RunSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total <= 0 || rep.EE <= 0 || rep.ES <= 0 || rep.EM <= 0 {
		t.Fatalf("report %+v", rep)
	}
	if math.Abs(rep.Total-(rep.EE+rep.ES+rep.EM)) > 1e-12 {
		t.Fatal("total must equal the sum of buckets")
	}
	ee, es, em := rep.Shares()
	if math.Abs(ee+es+em-1) > 1e-9 {
		t.Fatal("shares must sum to 1")
	}
}

func TestSolarMLBeatsPSBaseline(t *testing.T) {
	// With identical sensing and model, the SolarML idle scheme alone must
	// cut total energy versus deep sleep + proximity sensor.
	p := NewPlatform()
	g := defaultGestureSensing()
	macs := muNASGestureMACs()
	sml, err := p.RunSession(SolarMLConfig("sml", nas.TaskGesture, g, defaultAudioFrontEnd(), macs, 5))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := p.RunSession(PSBaselineConfig("ps", nas.TaskGesture, g, defaultAudioFrontEnd(), macs, 5))
	if err != nil {
		t.Fatal(err)
	}
	if sml.Total >= ps.Total {
		t.Fatalf("SolarML %v µJ should undercut PS %v µJ", sml.Total*1e6, ps.Total*1e6)
	}
	if sml.EE >= ps.EE {
		t.Fatal("the saving must come from E_E")
	}
}

func TestFig1SystemsShapes(t *testing.T) {
	p := NewPlatform()
	systems := Fig1Systems()
	if len(systems) != 6 {
		t.Fatalf("%d systems, want 6", len(systems))
	}
	reports := make([]*SessionReport, len(systems))
	for i, cfg := range systems {
		rep, err := p.RunSession(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		reports[i] = rep
	}
	// Continuous-monitoring systems are event-detection dominated
	// (paper: up to ≈70%).
	for _, i := range []int{0, 1} {
		ee, _, _ := reports[i].Shares()
		if ee < 0.5 {
			t.Fatalf("%s E_E share %.2f, expected >0.5 for continuous monitoring", reports[i].Name, ee)
		}
	}
	// Deep-sleep systems spend much less on E_E (paper: ≈15%).
	for _, i := range []int{2, 3} {
		ee, _, _ := reports[i].Shares()
		if ee > 0.40 {
			t.Fatalf("%s E_E share %.2f, expected smaller for deep sleep", reports[i].Name, ee)
		}
	}
	// The paper's own tasks (#5, #6) are sensing dominated (>50%).
	for _, i := range []int{4, 5} {
		_, es, _ := reports[i].Shares()
		if es < 0.5 {
			t.Fatalf("%s E_S share %.2f, paper says sensing >50%%", reports[i].Name, es)
		}
	}
}

func TestFig2SharesMatchPaper(t *testing.T) {
	p := NewPlatform()
	scenarios := Fig2Scenarios()
	// Gesture: E_E 38%, E_S 47%, E_M 15%.
	rep, err := p.RunSession(scenarios[0])
	if err != nil {
		t.Fatal(err)
	}
	ee, es, em := rep.Shares()
	if math.Abs(ee-0.38) > 0.10 || math.Abs(es-0.47) > 0.10 || math.Abs(em-0.15) > 0.08 {
		t.Fatalf("gesture shares E_E %.2f E_S %.2f E_M %.2f, paper 0.38/0.47/0.15", ee, es, em)
	}
	// KWS: E_E 29%, E_S 53%, E_M 18%.
	rep, err = p.RunSession(scenarios[1])
	if err != nil {
		t.Fatal(err)
	}
	ee, es, em = rep.Shares()
	if math.Abs(ee-0.29) > 0.10 || math.Abs(es-0.53) > 0.12 || math.Abs(em-0.18) > 0.09 {
		t.Fatalf("KWS shares E_E %.2f E_S %.2f E_M %.2f, paper 0.29/0.53/0.18", ee, es, em)
	}
}

func TestSimulateSleepMechanismSingle(t *testing.T) {
	p := NewPlatform()
	rep, err := p.SimulateSleepMechanism(500, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SecondInference {
		t.Fatal("no re-hover requested")
	}
	if len(rep.Events) < 4 {
		t.Fatalf("event log too short: %v", rep.Events)
	}
	by := rep.Trace.EnergyByPhase()
	if by[powertrace.PhaseInference] <= 0 {
		t.Fatal("no inference recorded")
	}
	// Exactly one inference segment.
	n := 0
	for _, s := range rep.Trace.Segments() {
		if s.Phase == powertrace.PhaseInference {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d inference segments, want 1", n)
	}
}

func TestSimulateSleepMechanismResume(t *testing.T) {
	p := NewPlatform()
	rep, err := p.SimulateSleepMechanism(500, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SecondInference {
		t.Fatal("re-hover must trigger a second inference")
	}
	n := 0
	for _, s := range rep.Trace.Segments() {
		if s.Phase == powertrace.PhaseInference {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("%d inference segments, want 2", n)
	}
	// Only one wake-up: the resume path must not cold boot.
	w := 0
	for _, s := range rep.Trace.Segments() {
		if s.Phase == powertrace.PhaseWakeUp {
			w++
		}
	}
	if w != 1 {
		t.Fatalf("%d wake-ups, want 1 (standby resume must be warm)", w)
	}
}

func TestSimulateSleepMechanismWeakLight(t *testing.T) {
	p := NewPlatform()
	if _, err := p.SimulateSleepMechanism(5, false); err == nil {
		t.Fatal("weak light must prevent the session (N2 guard)")
	}
}

func TestCompareEndToEnd(t *testing.T) {
	p := NewPlatform()
	// eNAS-style lean sensing vs sensing-unaware baseline.
	lean := dataset.GestureConfig{Channels: 4, RateHz: 40, Quant: quant.Config{Res: quant.Int, Bits: 6}}
	leanMACs := map[nn.LayerKind]int64{nn.KindConv: 350_000, nn.KindDense: 40_000}
	cmp, err := p.CompareEndToEnd(
		SolarMLConfig("solarml digits", nas.TaskGesture, lean, defaultAudioFrontEnd(), leanMACs, 5),
		PSBaselineConfig("ps+munas digits", nas.TaskGesture, defaultGestureSensing(), defaultAudioFrontEnd(), muNASGestureMACs(), 5),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Savings <= 0.1 {
		t.Fatalf("savings %.2f, expected substantial", cmp.Savings)
	}
	t500, ok := cmp.HarvestTimeS[500]
	if !ok || t500 <= 0 {
		t.Fatal("missing 500 lux harvest time")
	}
	if cmp.HarvestTimeS[1000] >= t500 || t500 >= cmp.HarvestTimeS[250] {
		t.Fatal("harvest time must decrease with illuminance")
	}
}

func TestSessionReportString(t *testing.T) {
	p := NewPlatform()
	rep, err := p.RunSession(Fig2Scenarios()[0])
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"E_E", "E_S", "E_M", "µJ"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q: %s", want, s)
		}
	}
}

func TestRunSessionValidation(t *testing.T) {
	p := NewPlatform()
	bad := SolarMLConfig("bad", nas.TaskGesture,
		dataset.GestureConfig{Channels: 0, RateHz: 60, Quant: quant.Config{Res: quant.Int, Bits: 8}},
		defaultAudioFrontEnd(), muNASGestureMACs(), 5)
	if _, err := p.RunSession(bad); err == nil {
		t.Fatal("invalid sensing config must be rejected")
	}
}

func TestIdleModeStrings(t *testing.T) {
	if IdleOff.String() != "off" || IdleDeepSleep.String() != "deep-sleep" || IdleContinuous.String() != "continuous" {
		t.Fatal("idle mode names")
	}
}
