package core

import (
	"fmt"

	"solarml/internal/dataset"
	"solarml/internal/detect"
	"solarml/internal/dsp"
	"solarml/internal/mcu"
	"solarml/internal/nas"
	"solarml/internal/nn"
	"solarml/internal/powertrace"
	"solarml/internal/quant"
)

// muNASGestureMACs is a representative μNAS-optimized gesture model
// (Fig 1 #5 / Fig 2 top): a small CNN whose inference lands near 1.2 mJ.
func muNASGestureMACs() map[nn.LayerKind]int64 {
	return map[nn.LayerKind]int64{
		nn.KindConv:    480_000,
		nn.KindDense:   60_000,
		nn.KindMaxPool: 18_000,
		nn.KindNorm:    28_000,
	}
}

// muNASKWSMACs is a representative μNAS-optimized KWS model
// (Fig 1 #6 / Fig 2 bottom): inference near 2.3 mJ.
func muNASKWSMACs() map[nn.LayerKind]int64 {
	return map[nn.LayerKind]int64{
		nn.KindConv:    900_000,
		nn.KindDWConv:  120_000,
		nn.KindDense:   90_000,
		nn.KindMaxPool: 40_000,
		nn.KindNorm:    60_000,
	}
}

// defaultGestureSensing is the full-fidelity sensing configuration used by
// sensing-unaware baselines.
func defaultGestureSensing() dataset.GestureConfig {
	return dataset.GestureConfig{
		Channels: 9, RateHz: 100,
		Quant: quant.Config{Res: quant.Float, Bits: 16},
	}
}

// defaultAudioFrontEnd is the standard 25 ms / 20 ms / 13-coefficient MFCC
// front-end.
func defaultAudioFrontEnd() dsp.FrontEndConfig {
	return dsp.FrontEndConfig{
		SampleRate: dataset.AudioRateHz, StripeMS: 20, DurationMS: 25, NumFeatures: 13,
	}
}

// Fig1Systems returns the six end-to-end configurations of Fig 1 with a 3 s
// event wait: two continuous-monitoring systems, two deep-sleep/actuator
// systems, and the paper's own gesture (#5) and audio (#6) tasks with
// μNAS-optimized models.
func Fig1Systems() []SessionConfig {
	const wait = 3
	return []SessionConfig{
		{
			// #1 PROS [12]: headband ECG, the MCU monitors continuously.
			Name: "#1 PROS (continuous)", Idle: IdleContinuous, IdleS: wait,
			Task: nas.TaskGesture,
			Gesture: dataset.GestureConfig{Channels: 1, RateHz: 50,
				Quant: quant.Config{Res: quant.Int, Bits: 8}},
			InferMACs:    map[nn.LayerKind]int64{nn.KindConv: 120_000, nn.KindDense: 30_000},
			SenseSeconds: 0.5, // short ECG analysis window
		},
		{
			// #2 FabToys [21]: fabric pressure array, continuous polling.
			Name: "#2 FabToys (continuous)", Idle: IdleContinuous, IdleS: wait,
			Task: nas.TaskGesture,
			Gesture: dataset.GestureConfig{Channels: 4, RateHz: 25,
				Quant: quant.Config{Res: quant.Int, Bits: 8}},
			InferMACs:    map[nn.LayerKind]int64{nn.KindDense: 80_000},
			SenseSeconds: 0.6, // brief pressure-tap capture
		},
		{
			// #3 Jokic et al. [22]: deep sleep + low-power camera trigger.
			Name: "#3 FaceRec (sleep+ToF)", Idle: IdleDeepSleep, IdleS: wait,
			Detector: detect.ToFSensor{},
			Task:     nas.TaskGesture,
			Gesture: dataset.GestureConfig{Channels: 9, RateHz: 80,
				Quant: quant.Config{Res: quant.Int, Bits: 8}},
			InferMACs: map[nn.LayerKind]int64{nn.KindConv: 1_500_000, nn.KindDense: 120_000},
		},
		{
			// #4 Sabovic et al. [26]: battery-less node, deep sleep + PS.
			Name: "#4 TinyML node (sleep+PS)", Idle: IdleDeepSleep, IdleS: wait,
			Detector: detect.ProximitySensor{},
			Task:     nas.TaskGesture,
			Gesture: dataset.GestureConfig{Channels: 2, RateHz: 100,
				Quant: quant.Config{Res: quant.Int, Bits: 8}},
			InferMACs: map[nn.LayerKind]int64{nn.KindConv: 700_000, nn.KindDense: 90_000},
		},
		{
			// #5 gesture recognition with a μNAS model (measured).
			Name: "#5 gesture (µNAS)", Idle: IdleDeepSleep, IdleS: wait,
			Detector:  detect.ProximitySensor{},
			Task:      nas.TaskGesture,
			Gesture:   defaultGestureSensing(),
			InferMACs: muNASGestureMACs(),
		},
		{
			// #6 audio KWS with a μNAS model (measured).
			Name: "#6 audio (µNAS)", Idle: IdleDeepSleep, IdleS: wait,
			Detector:  detect.ProximitySensor{},
			Task:      nas.TaskKWS,
			Audio:     defaultAudioFrontEnd(),
			InferMACs: muNASKWSMACs(),
		},
	}
}

// Fig2Scenarios returns the two energy-trace measurements of Fig 2: one
// minute of deep sleep (RTC wake) followed by a full gesture or KWS
// inference.
func Fig2Scenarios() []SessionConfig {
	return []SessionConfig{
		{
			Name: "gesture (Fig 2 top)", Idle: IdleDeepSleep, IdleS: 60,
			Task: nas.TaskGesture, Gesture: defaultGestureSensing(),
			InferMACs: muNASGestureMACs(),
		},
		{
			Name: "KWS (Fig 2 bottom)", Idle: IdleDeepSleep, IdleS: 60,
			Task: nas.TaskKWS, Audio: defaultAudioFrontEnd(),
			InferMACs: muNASKWSMACs(),
		},
	}
}

// Fig6Report captures the sleep-mechanism simulation: the power trace, a
// narrated event log, and whether the standby resume path was exercised.
type Fig6Report struct {
	Trace           *powertrace.Recorder
	Events          []string
	SecondInference bool
}

// SimulateSleepMechanism reproduces Fig 6: the platform is off until a
// hover powers it through the passive circuit, samples and infers, then
// holds a standby window; a second hover within the window triggers a
// second inference without a cold boot, otherwise the system powers down.
func (p *Platform) SimulateSleepMechanism(lux float64, rehover bool) (*Fig6Report, error) {
	rep := &Fig6Report{}
	dev := &mcu.Device{Profile: p.Profile, Trace: powertrace.New()}
	note := func(format string, args ...interface{}) {
		rep.Events = append(rep.Events, fmt.Sprintf(format, args...))
	}

	// Off, waiting. The passive detector is the only (≈2 µW) drain.
	const offWait = 5.0
	dev.Trace.Record(powertrace.PhaseOff, offWait, p.Detector.StandbyPowerW())
	note("t=%.1fs system off, passive detector armed", 0.0)

	// First hover: drive the real circuit and confirm it boots.
	v2Open := p.Array.DetectVoltage(lux, 0)
	v2Hover := p.Array.DetectVoltage(lux, 0.95)
	refVoc := p.Array.Cell.Voc(lux)
	capV := 3.0
	if !p.Event.Step(v2Hover, refVoc, capV) {
		return nil, fmt.Errorf("core: circuit failed to boot at %v lux", lux)
	}
	p.Event.SetHold(true)
	if !p.Event.Step(v2Open, refVoc, capV) {
		return nil, fmt.Errorf("core: latch failed to hold")
	}
	note("t=%.1fs hover detected, MCU powered (latched)", offWait)
	dev.WakeUp()

	// Sample until the ending hover, then process and infer.
	cfg := defaultGestureSensing()
	bits := cfg.Quant.EffectiveBits()
	dev.SampleGesture(cfg.Channels, float64(cfg.RateHz), dataset.GestureDurationS, bits)
	if p.Event.SenseV5(v2Hover) >= p.Event.VTrigger {
		return nil, fmt.Errorf("core: ending hover not visible on V5")
	}
	note("ending hover seen on V5, sampling stopped")
	samples := int64(float64(cfg.Channels) * float64(cfg.RateHz) * dataset.GestureDurationS)
	dev.Process(3 * samples)
	dev.Infer(p.Coeff.TrueEnergy(muNASGestureMACs()))
	note("first inference complete")

	// Standby window.
	const standby = 3.0
	dev.Standby(standby)
	if rehover {
		if !p.Event.Step(v2Hover, refVoc, capV) {
			return nil, fmt.Errorf("core: resume hover failed")
		}
		note("hover during standby: resuming without cold boot")
		dev.SampleGesture(cfg.Channels, float64(cfg.RateHz), dataset.GestureDurationS, bits)
		dev.Process(3 * samples)
		dev.Infer(p.Coeff.TrueEnergy(muNASGestureMACs()))
		rep.SecondInference = true
		note("second inference complete")
	}
	// Release the latch and power down.
	p.Event.SetHold(false)
	if p.Event.Step(v2Open, refVoc, capV) {
		return nil, fmt.Errorf("core: power-down failed")
	}
	dev.Trace.Record(powertrace.PhaseOff, 1, p.Detector.StandbyPowerW())
	note("latch released, system off")
	rep.Trace = dev.Trace
	return rep, nil
}
