package core

import (
	"solarml/internal/dataset"
	"solarml/internal/detect"
	"solarml/internal/dsp"
	"solarml/internal/nas"
	"solarml/internal/nn"
)

// SolarMLConfig builds the platform's own end-to-end session: fully off
// while idle, woken by the passive solar-cell detector (§V-D).
func SolarMLConfig(name string, task nas.Task, gesture dataset.GestureConfig,
	audio dsp.FrontEndConfig, macs map[nn.LayerKind]int64, waitS float64) SessionConfig {
	return SessionConfig{
		Name: name, Detector: detect.NewSolarML(), Idle: IdleOff, IdleS: waitS,
		Task: task, Gesture: gesture, Audio: audio, InferMACs: macs,
	}
}

// PSBaselineConfig builds the SOTA baseline session of §V-D: deep sleep
// with a proximity-sensor wake-up (the PROS configuration) running a
// sensing-unaware model.
func PSBaselineConfig(name string, task nas.Task, gesture dataset.GestureConfig,
	audio dsp.FrontEndConfig, macs map[nn.LayerKind]int64, waitS float64) SessionConfig {
	return SessionConfig{
		Name: name, Detector: detect.ProximitySensor{}, Idle: IdleDeepSleep, IdleS: waitS,
		Task: task, Gesture: gesture, Audio: audio, InferMACs: macs,
	}
}

// EndToEndComparison is the §V-D summary for one task.
type EndToEndComparison struct {
	SolarML  *SessionReport
	Baseline *SessionReport
	// Savings is 1 − SolarML.Total/Baseline.Total.
	Savings float64
	// HarvestTimeS maps illuminance (lux) to the charging time that funds
	// one SolarML session.
	HarvestTimeS map[float64]float64
}

// CompareEndToEnd simulates both sessions and the harvesting times at the
// paper's three illuminance levels (250, 500, 1000 lux).
func (p *Platform) CompareEndToEnd(solarml, baseline SessionConfig) (*EndToEndComparison, error) {
	sml, err := p.RunSession(solarml)
	if err != nil {
		return nil, err
	}
	base, err := p.RunSession(baseline)
	if err != nil {
		return nil, err
	}
	cmp := &EndToEndComparison{
		SolarML:      sml,
		Baseline:     base,
		Savings:      1 - sml.Total/base.Total,
		HarvestTimeS: make(map[float64]float64),
	}
	for _, lux := range []float64{250, 500, 1000} {
		cmp.HarvestTimeS[lux] = p.HarvestTime(sml.Total, lux)
	}
	return cmp, nil
}
