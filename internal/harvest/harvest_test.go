package harvest

import (
	"math"
	"testing"
)

func TestInputPowerAt500Lux(t *testing.T) {
	h := New()
	p := h.InputPower(500, false) * 1e6
	if p < 200 || p > 225 {
		t.Fatalf("input power at 500 lux = %.1f µW, want ≈215", p)
	}
}

func TestInputPowerDarknessIsZero(t *testing.T) {
	h := New()
	if p := h.InputPower(0, false); p != 0 {
		t.Fatalf("dark input power %v", p)
	}
}

func TestChargeRaisesVoltage(t *testing.T) {
	h := New()
	h.Cap.V = 2.0
	v0 := h.Cap.V
	h.Charge(1000, 10, false)
	if h.Cap.V <= v0 {
		t.Fatal("charging must raise voltage")
	}
}

func TestHarvestTimeDigitsAt500Lux(t *testing.T) {
	// §V-D: digit recognition (6660 µJ) needs ≈31 s at 500 lux.
	h := New()
	got := h.TimeToHarvest(6660e-6, 500)
	if math.Abs(got-31) > 4 {
		t.Fatalf("digit harvest time at 500 lux = %.1f s, paper ≈31", got)
	}
}

func TestHarvestTimeKWSAt500Lux(t *testing.T) {
	// §V-D: KWS (12746 µJ) needs ≈57 s at 500 lux.
	h := New()
	got := h.TimeToHarvest(12746e-6, 500)
	if math.Abs(got-57) > 7 {
		t.Fatalf("KWS harvest time at 500 lux = %.1f s, paper ≈57", got)
	}
}

func TestHarvestTimeAt1000Lux(t *testing.T) {
	// §V-D: ≈19 s (digits) and ≈36 s (KWS) near a window.
	h := New()
	if got := h.TimeToHarvest(6660e-6, 1000); math.Abs(got-19) > 4 {
		t.Fatalf("digit harvest time at 1000 lux = %.1f s, paper ≈19", got)
	}
	if got := h.TimeToHarvest(12746e-6, 1000); math.Abs(got-36) > 7 {
		t.Fatalf("KWS harvest time at 1000 lux = %.1f s, paper ≈36", got)
	}
}

func TestHarvestTimeAt250LuxOneToTwoMinutes(t *testing.T) {
	// §V-D: one to two minutes in dim light.
	h := New()
	digits := h.TimeToHarvest(6660e-6, 250)
	kws := h.TimeToHarvest(12746e-6, 250)
	if digits < 50 || digits > 130 {
		t.Fatalf("digit harvest time at 250 lux = %.0f s", digits)
	}
	if kws < 60 || kws > 140 {
		t.Fatalf("KWS harvest time at 250 lux = %.0f s", kws)
	}
}

func TestHarvestTimeScalesInverselyWithLux(t *testing.T) {
	h := New()
	t500 := h.TimeToHarvest(1e-3, 500)
	t1000 := h.TimeToHarvest(1e-3, 1000)
	if t1000 >= t500 {
		t.Fatal("brighter light must harvest faster")
	}
	if math.Abs(t500/t1000-2) > 0.1 {
		t.Fatalf("expected ≈2× speedup from 500→1000 lux, got %.2f", t500/t1000)
	}
}

func TestHarvestStallsInDarkness(t *testing.T) {
	h := New()
	if !math.IsInf(h.TimeToHarvest(1e-3, 0), 1) {
		t.Fatal("darkness must never finish harvesting")
	}
}

func TestTimeToHarvestZeroEnergy(t *testing.T) {
	h := New()
	if h.TimeToHarvest(0, 500) != 0 {
		t.Fatal("zero energy needs zero time")
	}
}

func TestSimulateTimeToVoltageAgreesWithAnalytic(t *testing.T) {
	h := New()
	h.Cap.V = 2.0
	target := 2.01
	// Analytic: ΔE = ½C(V₁²-V₀²).
	need := 0.5 * h.Cap.Farads * (target*target - 4)
	analytic := h.TimeToHarvest(need, 500)
	sim := h.SimulateTimeToVoltage(target, 500, 0.1)
	if math.Abs(sim-analytic)/analytic > 0.1 {
		t.Fatalf("simulated %v s vs analytic %v s", sim, analytic)
	}
}

func TestSimulateStallReturnsInf(t *testing.T) {
	h := New()
	h.Cap.V = 2.0
	if !math.IsInf(h.SimulateTimeToVoltage(2.5, 0, 1), 1) {
		t.Fatal("dark simulation must stall")
	}
}

func TestChargeShadedBetweenBounds(t *testing.T) {
	mk := func() *Harvester {
		h := New()
		h.Cap.V = 2.0
		return h
	}
	full := mk()
	full.Charge(500, 10, true)
	shaded := mk()
	shaded.ChargeShaded(500, 10, 0.5, 0.9, true)
	dark := mk()
	dark.ChargeShaded(500, 10, 1, 1, true)
	if !(dark.Cap.Energy() <= shaded.Cap.Energy() && shaded.Cap.Energy() < full.Cap.Energy()) {
		t.Fatalf("shaded charging out of order: dark %v, shaded %v, full %v",
			dark.Cap.Energy(), shaded.Cap.Energy(), full.Cap.Energy())
	}
}
